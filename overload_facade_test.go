package cep2asp

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// overloadPattern is a deliberately hot skip-till-any-match workload: the
// FCEP translation compiles SEQ under skip-till-any, so every retained q
// pairs with every later v in the window and partial-match state grows
// with the data rate.
func overloadPattern(t *testing.T) *Pattern {
	t.Helper()
	p, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 40 AND v.value <= 60
		WITHIN 30 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func matchSet(stats *RunStats) map[string]bool {
	set := make(map[string]bool, len(stats.Matches))
	for _, m := range stats.Matches {
		k := ""
		for _, e := range m.Events {
			k += fmt.Sprintf("%d:%d/", e.Type, e.TS)
		}
		set[k] = true
	}
	return set
}

// TestShedBudgetSubsetProperty checks the degradation contract: a run under
// a tight state budget with the Shed policy must complete, report its
// shedding, stay within the budget, and emit only matches the unbudgeted
// run also emits — degraded recall, never fabricated results.
func TestShedBudgetSubsetProperty(t *testing.T) {
	pattern := overloadPattern(t)
	q, v := GenerateQnV(10, 180, 11)

	for _, fcep := range []bool{true, false} {
		mode := "decomposed"
		if fcep {
			mode = "fcep"
		}
		t.Run(mode, func(t *testing.T) {
			run := func(budget int64) *RunStats {
				j := NewJob(pattern).
					AddStream("QnVQuantity", q).
					AddStream("QnVVelocity", v)
				if fcep {
					j.UseFCEP()
				}
				if budget > 0 {
					j.WithStateBudget(budget, 0).WithOverloadPolicy(OverloadShed)
				}
				stats, err := j.Run(context.Background())
				if err != nil {
					t.Fatalf("Run(budget=%d): %v", budget, err)
				}
				return stats
			}

			full := run(0)
			if full.Unique == 0 {
				t.Fatal("unbudgeted run produced no matches")
			}
			const budget = 48
			shed := run(budget)

			if shed.ShedRecords == 0 {
				t.Fatalf("budget %d never triggered shedding (unbudgeted peak %d)",
					budget, full.PeakStateRecords)
			}
			// The engine samples state per batch; allow one batch of slack
			// over the configured per-operator budget.
			if shed.PeakStateRecords > budget+16 {
				t.Fatalf("peak state %d records exceeds budget %d", shed.PeakStateRecords, budget)
			}
			fullSet := matchSet(full)
			for k := range matchSet(shed) {
				if !fullSet[k] {
					t.Fatalf("shed run fabricated match %s absent from unbudgeted run", k)
				}
			}
		})
	}
}

// TestFailPolicyFacade checks the default policy surfaces a structured,
// inspectable error instead of dying silently.
func TestFailPolicyFacade(t *testing.T) {
	pattern := overloadPattern(t)
	q, v := GenerateQnV(10, 180, 11)
	_, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		UseFCEP().
		WithStateBudget(48, 0).
		Run(context.Background())
	if !errors.Is(err, ErrStateBudget) {
		t.Fatalf("Run = %v, want ErrStateBudget", err)
	}
	var bex *StateBudgetExceededError
	if !errors.As(err, &bex) {
		t.Fatalf("Run = %v, want *StateBudgetExceededError", err)
	}
	if bex.Budget != 48 || bex.Records <= bex.Budget {
		t.Fatalf("budget error %+v: want Budget=48 and Records > Budget", bex)
	}
}

// TestWithStateBudgetValidation checks misuse fails fast at Run.
func TestWithStateBudgetValidation(t *testing.T) {
	pattern := overloadPattern(t)
	if _, err := NewJob(pattern).WithStateBudget(-1, 0).Run(context.Background()); err == nil {
		t.Fatal("negative budget should fail")
	}
	if _, err := NewJob(pattern).WithOverloadPolicy(OverloadPolicy(99)).Run(context.Background()); err == nil {
		t.Fatal("unknown policy should fail")
	}
}
