package cep2asp

// One benchmark per table and figure of the paper's evaluation (§5),
// driving the same experiment definitions as cmd/benchrunner at a reduced
// scale. Run the full-scale reproduction with:
//
//	go run ./cmd/benchrunner -exp all -scale full
//
// Each benchmark processes one complete workload per iteration and reports
// tuples/second as the custom metric "tps" alongside the standard ns/op.

import (
	"context"
	"fmt"
	"testing"

	"cep2asp/internal/harness"
)

// benchScale shrinks workloads so single benchmark iterations run in tens
// of milliseconds.
func benchScale() harness.Scale {
	sc := harness.BenchScale()
	return sc
}

func runBenchCase(b *testing.B, name string, pat func() *harness.RunResult) {
	b.Run(name, func(b *testing.B) {
		var events int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := pat()
			if r.Failed {
				b.Fatalf("run failed: %v", r.Err)
			}
			events = r.Events
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(events)*float64(b.N)/sec, "tps")
		}
	})
}

// experimentBench runs every row of one experiment as a sub-benchmark.
func experimentBench(b *testing.B, exp string) {
	sc := benchScale()
	// Discover the rows once, then re-run each configuration per iteration.
	rows := harness.Experiments[exp](context.Background(), sc)
	for _, probe := range rows {
		if probe.Failed {
			b.Fatalf("%s/%s failed during discovery: %v", probe.Name, probe.Approach, probe.Err)
		}
	}
	_ = rows
	b.Run("suite", func(b *testing.B) {
		var events int64
		for i := 0; i < b.N; i++ {
			rows := harness.Experiments[exp](context.Background(), sc)
			events = 0
			for _, r := range rows {
				if r.Failed {
					b.Fatalf("%s/%s: %v", r.Name, r.Approach, r.Err)
				}
				events += r.Events
			}
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(events)*float64(b.N)/sec, "tps")
		}
	})
}

// BenchmarkFig3aBaseline regenerates Figure 3a: elementary operator
// throughput (SEQ1, ITER3, NSEQ1) under FCEP / FASP / FASP-O1 / FASP-O2.
func BenchmarkFig3aBaseline(b *testing.B) { experimentBench(b, "fig3a") }

// BenchmarkFig3bSelectivity regenerates Figure 3b: the output-selectivity
// sweep on SEQ1 (throughput and detection latency).
func BenchmarkFig3bSelectivity(b *testing.B) { experimentBench(b, "fig3b") }

// BenchmarkFig3cWindow regenerates Figure 3c: the window-size sweep.
func BenchmarkFig3cWindow(b *testing.B) { experimentBench(b, "fig3c") }

// BenchmarkFig3dSeqLen regenerates Figure 3d: nested SEQ(n), n = 2..6.
func BenchmarkFig3dSeqLen(b *testing.B) { experimentBench(b, "fig3d") }

// BenchmarkFig3eIterChain regenerates Figure 3e: ITER^m with the
// subsequent-event constraint.
func BenchmarkFig3eIterChain(b *testing.B) { experimentBench(b, "fig3e") }

// BenchmarkFig3fIterThreshold regenerates Figure 3f: ITER^m with a
// threshold filter.
func BenchmarkFig3fIterThreshold(b *testing.B) { experimentBench(b, "fig3f") }

// BenchmarkFig4Keys regenerates Figure 4: keyed workloads under 16/32/128
// keys with O3 everywhere.
func BenchmarkFig4Keys(b *testing.B) { experimentBench(b, "fig4") }

// BenchmarkFig5Resources regenerates Figure 5: resource sampling during the
// keyed workloads.
func BenchmarkFig5Resources(b *testing.B) { experimentBench(b, "fig5") }

// BenchmarkFig5SEQBatch contrasts the fig5 SEQ workload with edge batching
// disabled (batch=1) and enabled (engine default): the smoke gate in
// scripts/bench_smoke.sh requires the batched run to beat the unbatched one.
func BenchmarkFig5SEQBatch(b *testing.B) {
	for _, bs := range []int{1, 0} { // 0 = engine default batch size
		name := "batch=1"
		if bs == 0 {
			name = "batch=default"
		}
		sc := benchScale()
		sc.BatchSize = bs
		runner := harness.Fig5SEQSmokeRunner(sc)
		runBenchCase(b, name, func() *harness.RunResult {
			r := runner(context.Background())
			return &r
		})
	}
}

// BenchmarkFig6Scalability regenerates Figure 6: scale-out over simulated
// workers.
func BenchmarkFig6Scalability(b *testing.B) { experimentBench(b, "fig6") }

// BenchmarkTable2Support regenerates Table 2 (operator support matrix); the
// "work" is the translation attempts themselves.
func BenchmarkTable2Support(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := harness.Table2Support(); len(s) == 0 {
			b.Fatal("empty support matrix")
		}
	}
}

// Per-approach single-pattern benchmarks, for profiling the two execution
// paths in isolation (the decomposition argument of §1 in one number).
func BenchmarkApproachesSEQ1(b *testing.B) {
	sc := benchScale()
	for _, a := range []harness.Approach{harness.FCEP, harness.FASP, harness.FASPO1} {
		a := a
		runBenchCase(b, a.Name, func() *harness.RunResult {
			r := harness.Run(context.Background(), harness.RunSpec{
				Name:     "bench/SEQ1",
				Pattern:  harness.PatternSEQ1(0.02, 15),
				Approach: a,
				Data:     benchQnV(sc),
				Engine:   benchEngine(sc),
			})
			return &r
		})
	}
}

func BenchmarkApproachesITER3(b *testing.B) {
	sc := benchScale()
	for _, a := range []harness.Approach{harness.FCEP, harness.FASP, harness.FASPO1, harness.FASPO2} {
		a := a
		runBenchCase(b, a.Name, func() *harness.RunResult {
			r := harness.Run(context.Background(), harness.RunSpec{
				Name:     "bench/ITER3",
				Pattern:  harness.PatternITER(3, 0.05, 15, true, false),
				Approach: a,
				Data:     benchVelocity(sc),
				Engine:   benchEngine(sc),
			})
			return &r
		})
	}
}

func benchQnV(sc harness.Scale) map[Type][]Event {
	q, v := GenerateQnV(sc.QnVSensors, sc.QnVMinutes, sc.Seed)
	return map[Type][]Event{
		RegisterType("QnVQuantity"): q,
		RegisterType("QnVVelocity"): v,
	}
}

func benchVelocity(sc harness.Scale) map[Type][]Event {
	_, v := GenerateQnV(sc.QnVSensors, sc.QnVMinutes, sc.Seed)
	return map[Type][]Event{RegisterType("QnVVelocity"): v}
}

func benchEngine(sc harness.Scale) EngineConfig {
	return EngineConfig{
		DefaultParallelism: sc.Slots,
		WatermarkInterval:  256,
		MaxOperatorState:   sc.StateBudget,
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationDedupIntermediate quantifies the intermediate-join
// duplicate suppression: SEQ(4) with and without it (the exponential
// blow-up analysis in DESIGN.md).
func BenchmarkAblationDedupIntermediate(b *testing.B) {
	// The public Options always dedup intermediates; the ablation contrast
	// is the O1 plan (interval joins, inherently duplicate-free) vs the
	// plain plan (deduped intermediates, duplicated final stage).
	sc := benchScale()
	pat := harness.PatternSEQN(4, 0.05, 15)
	data := map[Type][]Event{}
	q, v := GenerateQnV(sc.QnVSensors, sc.QnVMinutes, sc.Seed)
	pm10, pm25, _, _ := GenerateAirQuality(sc.AQSensors, sc.AQMinutes, sc.Seed)
	data[RegisterType("QnVQuantity")] = q
	data[RegisterType("QnVVelocity")] = v
	data[RegisterType("PM10")] = pm10
	data[RegisterType("PM25")] = pm25
	for _, a := range []harness.Approach{harness.FASP, harness.FASPO1} {
		a := a
		runBenchCase(b, a.Name, func() *harness.RunResult {
			r := harness.Run(context.Background(), harness.RunSpec{
				Name: "ablation/SEQ4", Pattern: pat, Approach: a,
				Data: data, Engine: benchEngine(sc),
			})
			return &r
		})
	}
}

// BenchmarkAblationParallelism sweeps O3 parallelism on a keyed pattern,
// isolating the partitioning benefit.
func BenchmarkAblationParallelism(b *testing.B) {
	sc := benchScale()
	sc.QnVSensors = 64
	pat := harness.PatternSEQ1Keyed(0.1, 15)
	data := benchQnV(sc)
	for _, par := range []int{1, 2, 4, 8} {
		par := par
		runBenchCase(b, fmt.Sprintf("slots=%d", par), func() *harness.RunResult {
			r := harness.Run(context.Background(), harness.RunSpec{
				Name:    "ablation/parallelism",
				Pattern: pat,
				Approach: harness.Approach{
					Name: fmt.Sprintf("FASP-O3/%d", par),
					Opts: Options{UsePartitioning: true, Parallelism: par},
				},
				Data:   data,
				Engine: benchEngine(sc),
			})
			return &r
		})
	}
}

// BenchmarkAblationChaining contrasts standalone filter nodes against
// edge-fused selections (operator chaining): same results, one fewer
// channel hop per event — the knob addressing the single-core pipeline
// tax discussed in EXPERIMENTS.md.
func BenchmarkAblationChaining(b *testing.B) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 95 AND v.value <= 5
		WITHIN 15 MINUTES`)
	if err != nil {
		b.Fatal(err)
	}
	q, v := GenerateQnV(20, 240, 1)
	for _, chain := range []bool{false, true} {
		chain := chain
		name := "filter-nodes"
		if chain {
			name = "chained"
		}
		b.Run(name, func(b *testing.B) {
			var events int64
			for i := 0; i < b.N; i++ {
				job := NewJob(pattern).
					DiscardMatches().
					AddStream("QnVQuantity", q).
					AddStream("QnVVelocity", v)
				if chain {
					job.ChainOperators()
				}
				stats, err := job.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				events = stats.Events
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)*float64(b.N)/sec, "tps")
			}
		})
	}
}

// BenchmarkAblationWatermarkInterval sweeps the watermark cadence: sparser
// watermarks mean larger batches between window firings.
func BenchmarkAblationWatermarkInterval(b *testing.B) {
	sc := benchScale()
	pat := harness.PatternSEQ1(0.02, 15)
	data := benchQnV(sc)
	for _, wi := range []int{16, 64, 256, 1024} {
		wi := wi
		runBenchCase(b, fmt.Sprintf("wm=%d", wi), func() *harness.RunResult {
			eng := benchEngine(sc)
			eng.WatermarkInterval = wi
			r := harness.Run(context.Background(), harness.RunSpec{
				Name: "ablation/wm", Pattern: pat,
				Approach: harness.FASP, Data: data, Engine: eng,
			})
			return &r
		})
	}
}
