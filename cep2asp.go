// Package cep2asp reproduces "Bridging the Gap: Complex Event Processing
// on Stream Processing Systems" (EDBT 2024): a general operator mapping
// that translates Complex Event Processing patterns — sequence,
// conjunction, disjunction, iteration, negated sequence, plus selections,
// projections and windows (the Simple Event Algebra) — into analytical
// stream processing queries built from filters, maps, unions, window joins
// and aggregations.
//
// The package is a facade over the full system:
//
//   - a SASE+-style pattern language with formal set semantics
//     (internal/sea);
//   - a from-scratch dataflow engine with event-time watermarks, keyed
//     parallelism and backpressure (internal/asp);
//   - the CEP→ASP translator with the paper's optimizations O1 (interval
//     joins), O2 (aggregation for iterations) and O3 (key partitioning)
//     (internal/core);
//   - an NFA-based unary CEP operator — the FlinkCEP-style baseline the
//     paper evaluates against (internal/nfa, internal/cep);
//   - synthetic workload generators matching the paper's traffic and
//     air-quality data sources (internal/workload).
//
// # Quick start
//
//	pattern, _ := cep2asp.Parse(`
//	    PATTERN SEQ(QnVQuantity q, QnVVelocity v)
//	    WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
//	    WITHIN 15 MINUTES`)
//	q, v := cep2asp.GenerateQnV(100, 240, 1)
//	stats, _ := cep2asp.NewJob(pattern).
//	    AddStream("QnVQuantity", q).
//	    AddStream("QnVVelocity", v).
//	    Run(context.Background())
//	fmt.Println(stats.Unique, "matches at", stats.ThroughputTps, "tpl/s")
package cep2asp

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/core"
	"cep2asp/internal/csvio"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/optimizer"
	"cep2asp/internal/overload"
	"cep2asp/internal/sea"
	"cep2asp/internal/supervise"
	"cep2asp/internal/trace"
	"cep2asp/internal/workload"
)

// Core data model types.
type (
	// Event is a stream tuple: (type, id, lat, lon, ts, value).
	Event = event.Event
	// Match is a composite event: the constituents of a pattern match.
	Match = event.Match
	// Type identifies an event type.
	Type = event.Type
)

// Pattern language types.
type (
	// Pattern is a parsed and validated SEA pattern.
	Pattern = sea.Pattern
	// PatternWindow is the mandatory sliding window of a pattern.
	PatternWindow = sea.Window
)

// Translation types.
type (
	// Options selects the mapping optimizations (O1/O2/O3) and the
	// parallelism of partitioned operators.
	Options = core.Options
	// Plan is a translated pattern; print Plan.Explain() to inspect the
	// operator decomposition.
	Plan = core.Plan
	// EngineConfig tunes the dataflow engine (parallelism, channel
	// capacities, watermark cadence, state budget).
	EngineConfig = asp.Config
	// CheckpointSpec enables aligned-barrier checkpointing
	// (EngineConfig.Checkpoint): a Store, a trigger Interval, and the
	// Restore/RestoreID recovery switches.
	CheckpointSpec = asp.CheckpointSpec
	// CheckpointStore persists completed snapshots; see
	// NewMemCheckpointStore and NewFileCheckpointStore.
	CheckpointStore = checkpoint.Store
)

// Observability types (internal/obs): the per-operator metrics registry
// attached through EngineConfig.Metrics or Job.WithMetrics.
type (
	// MetricsRegistry collects per-operator-instance counters and gauges
	// (records in/out, late arrivals, processing-time histograms,
	// watermarks and lag, per-edge queue depth and blocked-send time)
	// while a job runs. Snapshot may be called concurrently; ServeMetrics
	// exposes it live over HTTP.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time view of every instrument.
	MetricsSnapshot = obs.Snapshot
	// OperatorSnapshot is one operator instance's metrics.
	OperatorSnapshot = obs.OperatorSnapshot
	// EdgeSnapshot is one dataflow edge's metrics (queue fill,
	// backpressure time).
	EdgeSnapshot = obs.EdgeSnapshot
	// TraceSummary is the end-to-end latency breakdown of a traced run
	// (Job.WithTracing): span/trace counts, aggregate queue/processing/
	// network time, and per-trace end-to-end latency percentiles.
	TraceSummary = trace.Summary
)

// Supervision types (internal/supervise, internal/chaos): the failure
// handling attached through Job.WithRestartPolicy and Job.WithChaos.
type (
	// RestartPolicy governs supervised restarts: exponential backoff with
	// jitter, a restart budget over a rolling window, and the poison-record
	// threshold. See DefaultRestartPolicy.
	RestartPolicy = supervise.Policy
	// DeadLetter is one poison record routed to the dead-letter queue: a
	// record whose processing kept crashing the job until the supervisor
	// quarantined it.
	DeadLetter = supervise.Letter
	// DeadLetterQueue collects dead letters (Depth, Letters, WriteCSV).
	DeadLetterQueue = supervise.DLQ
	// ChaosInjector arms deterministic fault-injection points in the engine
	// (Job.WithChaos); ChaosFault describes one fault — a panic, delay or
	// stall at a named operator instance, fired at an exact hit count or on
	// an exact record.
	ChaosInjector = chaos.Injector
	ChaosFault    = chaos.Fault
	// OperatorFailure is the structured form of an isolated operator panic:
	// node, instance, panic value, stack, and the offending record. A job
	// whose restart budget is exhausted returns an error wrapping it.
	OperatorFailure = asp.OperatorFailure
	// ShutdownTimeoutError reports a teardown that exceeded the
	// Job.WithStopTimeout deadline, naming the stuck operator instances.
	ShutdownTimeoutError = asp.ErrShutdownTimeout
)

// Overload types (internal/overload): bounded-state execution attached
// through Job.WithStateBudget and Job.WithOverloadPolicy, or in full through
// EngineConfig.Overload.
type (
	// OverloadPolicy selects what happens when a state budget is reached:
	// OverloadFail aborts with a structured error, OverloadShed evicts the
	// oldest state first (counted, never silent), OverloadPause throttles
	// the sources until state drains below the low-water mark.
	OverloadPolicy = overload.Policy
	// StateBudget bounds the records a single operator instance
	// (PerOperator) and the whole job (PerJob) may retain.
	StateBudget = overload.Budget
	// OverloadSpec is the full overload configuration: budget, policy, and
	// the memory admission controller (EngineConfig.Overload).
	OverloadSpec = overload.Spec
	// MemoryConfig tunes the heap admission controller: a soft limit
	// (GOMEMLIMIT-aware), hysteresis watermarks and the sample interval.
	MemoryConfig = overload.MemConfig
	// StateBudgetExceededError reports which operator (or the job total)
	// blew its budget under the Fail policy; errors.Is(err, ErrStateBudget)
	// matches it.
	StateBudgetExceededError = asp.BudgetExceededError
	// ShedStrategy selects the victim order under the Shed policy:
	// ShedOldestFirst evicts the oldest state, ShedPatternAware evicts the
	// state least likely to still complete into a match (completion-
	// probability scoring), with every eviction charged to the recall
	// accounting either way.
	ShedStrategy = overload.ShedStrategy
	// QualitySpec declares per-job quality demands for Job.WithQuality: a
	// p99 detection-latency ceiling, a minimum recall estimate, and a
	// live-heap bound. Zero fields are unconstrained.
	QualitySpec = overload.QualityDemand
	// QualityInfeasibleError reports quality demands that conflict with
	// each other or with the job's overload configuration; Run fails fast
	// with it instead of degrading unpredictably.
	QualityInfeasibleError = overload.QualityInfeasibleError
)

// Overload policy constants.
const (
	OverloadFail  = overload.Fail
	OverloadShed  = overload.Shed
	OverloadPause = overload.Pause
)

// Shed-strategy constants (Job.WithShedStrategy).
const (
	ShedOldestFirst  = overload.OldestFirst
	ShedPatternAware = overload.PatternAware
)

// ErrStateBudget is the sentinel matched by budget-abort errors.
var ErrStateBudget = asp.ErrStateBudget

// ParseOverloadPolicy parses "fail", "shed" or "pause".
func ParseOverloadPolicy(s string) (OverloadPolicy, error) { return overload.ParsePolicy(s) }

// ParseShedStrategy parses "oldest" or "pattern".
func ParseShedStrategy(s string) (ShedStrategy, error) { return overload.ParseShedStrategy(s) }

// DefaultRestartPolicy returns the default supervision policy: up to 5
// restarts per rolling minute, 10ms initial backoff doubling to a 2s cap
// with 20% jitter, and a 3-strike poison-record threshold.
func DefaultRestartPolicy() RestartPolicy { return supervise.DefaultPolicy() }

// NewChaosInjector arms the given faults for Job.WithChaos. Share one
// injector across a job's lifetime: its hit counters stay monotonic across
// supervised restarts, so a once-only fault does not re-fire after recovery.
func NewChaosInjector(faults ...ChaosFault) *ChaosInjector { return chaos.NewInjector(faults...) }

// ParseChaosFaults parses a comma-separated fault list in the benchrunner's
// -chaos grammar: kind:node/inst[@hit][xN][%recordkey], with kind one of
// panic, stall, delay=<duration>.
func ParseChaosFaults(specs string) ([]ChaosFault, error) { return chaos.ParseFaults(specs) }

// NewMetricsRegistry creates an empty per-operator metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeMetrics starts a live observability endpoint on addr (":0" picks a
// free port): /metrics serves Prometheus text format, /debug/topology the
// DAG JSON with per-edge queue fill. Returns the server (Close it when
// done) and the bound address.
func ServeMetrics(addr string, reg *MetricsRegistry) (*http.Server, string, error) {
	return obs.Serve(addr, reg)
}

// NewMemCheckpointStore returns an in-process checkpoint store, suitable
// for kill-and-restore within one process (tests, embedded use).
func NewMemCheckpointStore() CheckpointStore { return checkpoint.NewMemStore() }

// NewFileCheckpointStore returns a checkpoint store writing one file per
// snapshot under dir (atomic rename, crash-safe); it survives process
// restarts, so a new process can resume a killed run's latest checkpoint.
func NewFileCheckpointStore(dir string) (CheckpointStore, error) {
	return checkpoint.NewFileStore(dir)
}

// NewFileCheckpointStoreRetained is NewFileCheckpointStore bounded to the
// keep most recent checkpoints: each save prunes older snapshot files after
// the new one is atomically in place, so long-running supervised jobs do not
// accumulate unbounded checkpoint history.
func NewFileCheckpointStoreRetained(dir string, keep int) (CheckpointStore, error) {
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	return fs.WithRetention(keep), nil
}

// Time unit constants of the engine's millisecond time model.
const (
	Millisecond = event.Millisecond
	Second      = event.Second
	Minute      = event.Minute
	Hour        = event.Hour
)

// RegisterType registers (or looks up) an event type by name.
func RegisterType(name string) Type { return event.RegisterType(name) }

// TypeNameOf returns the registered name of an event type.
func TypeNameOf(t Type) string { return event.TypeName(t) }

// Parse parses a PSL pattern:
//
//	PATTERN SEQ(T1 e1, !T2 e2, T3 e3)
//	WHERE e1.value <= e3.value AND e2.value > 10
//	WITHIN 15 MINUTES SLIDE 1 MINUTE
//	RETURN e1.id, e3.value AS speed
//
// Operators: SEQ, AND, OR, ITER(T e, m) (exactly m) and ITER(T e, m+) (at
// least m, requires optimization O2), plus negated elements inside SEQ.
func Parse(src string) (*Pattern, error) { return sea.Parse(src) }

// Programmatic pattern construction, mirroring the PSL.
var (
	// E declares an event leaf; NotE a negated one (inside Seq only).
	E    = sea.E
	NotE = sea.NotE
	// Seq, Conj and Disj build sequence, conjunction and disjunction.
	Seq  = sea.Seq
	Conj = sea.Conj
	Disj = sea.Disj
	// Iter and IterAtLeast build bounded/unbounded iterations.
	Iter        = sea.Iter
	IterAtLeast = sea.IterAtLeast
	// BuildPattern assembles and validates a pattern.
	BuildPattern = sea.Build
)

// Translate maps a pattern into a decomposed ASP plan (the paper's
// contribution). TranslateFCEP builds the single-operator NFA baseline.
func Translate(p *Pattern, opts Options) (*Plan, error) { return core.Translate(p, opts) }

// TranslateFCEP builds the unary-CEP-operator baseline plan (FlinkCEP
// analogue) for comparison runs.
func TranslateFCEP(p *Pattern, opts Options) (*Plan, error) { return core.TranslateFCEP(p, opts) }

// EvaluateReference executes the formal SEA set semantics (Eqs. 9-14)
// directly over a finite event slice — the correctness oracle. Intended for
// testing and small inputs only.
func EvaluateReference(p *Pattern, events []Event) []*Match { return sea.Evaluate(p, events) }

// StreamStats describes one stream's data characteristics for Advise.
type StreamStats = core.StreamStats

// Advise selects mapping optimizations automatically from the pattern's
// shape and stream statistics — the paper's future-work proposal (§7),
// codifying the guidance of §4.3: O3 for keyed patterns, O2 for root-level
// iterations, O1 unless the left-most stream floods its successor.
func Advise(p *Pattern, stats map[string]StreamStats, parallelism int) Options {
	return core.Advise(p, stats, parallelism)
}

// CheckCompleteness verifies Theorem 2's precondition against measured
// stream frequencies (events per minute): sliding windows detect every
// match only when the slide does not exceed the fastest stream's
// inter-arrival time. Returns a warning string, or "" when complete or
// unknown. Interval joins (O1) are content-based and immune.
func CheckCompleteness(p *Pattern, freqs map[string]float64) string {
	return core.CompletenessWarning(p, freqs)
}

// MeasureStats derives StreamStats from a sample of each stream: the mean
// event rate per minute. Feed the result to Advise.
func MeasureStats(streams map[string][]Event) map[string]StreamStats {
	out := make(map[string]StreamStats, len(streams))
	for name, events := range streams {
		st := workload.Describe(events)
		out[name] = StreamStats{Frequency: st.MeanRate}
	}
	return out
}

// OptimizerConfig parameterizes the cost-based pattern compiler
// (internal/optimizer): initial stream statistics, parallelism, and the
// online re-planning knobs (drift threshold, re-plan budget, poll
// interval). The zero value is a cold start: the first plan is heuristic
// and statistics are learned online.
type OptimizerConfig = optimizer.Config

// MeasurePatternStats derives exact per-stream statistics — event rate and
// the pass fraction of the pattern's pushed-down filters — from recorded
// streams. Feed the result to OptimizerConfig.Stats or Advise.
func MeasurePatternStats(p *Pattern, data map[Type][]Event) (map[string]StreamStats, error) {
	return optimizer.Measure(p, data)
}

// ExplainOptimized renders the cost-based plan for a pattern with per-node
// estimated cardinalities under the given statistics.
func ExplainOptimized(p *Pattern, stats map[string]StreamStats) (string, error) {
	o, err := optimizer.New(optimizer.Config{Stats: stats})
	if err != nil {
		return "", err
	}
	return o.Explain(p)
}

// GenerateQnV produces the synthetic traffic streams (quantity, velocity):
// one tuple per sensor per minute each, values uniform in [0, 100).
func GenerateQnV(sensors, minutes int, seed int64) (quantity, velocity []Event) {
	return workload.QnV(workload.QnVConfig{Sensors: sensors, Minutes: minutes, Seed: seed})
}

// GenerateAirQuality produces the synthetic air-quality streams (PM10,
// PM2.5, temperature, humidity): one tuple per sensor every 3-5 minutes.
func GenerateAirQuality(sensors, minutes int, seed int64) (pm10, pm25, temp, hum []Event) {
	return workload.AirQuality(workload.AQConfig{Sensors: sensors, Minutes: minutes, Seed: seed})
}

// WriteCSV serializes events in the evaluation's CSV exchange format
// (type,id,lat,lon,ts,value — the paper reads its workloads from such
// files, §5.1.2). ReadCSV parses it back; ReadCSVFile and WriteCSVFile
// operate on paths, and ReadCSVGrouped splits a mixed file by event type.
func WriteCSV(w io.Writer, events []Event) error { return csvio.Write(w, events) }

// ReadCSV parses a CSV event stream; see WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) { return csvio.Read(r) }

// WriteCSVFile writes events to a CSV file.
func WriteCSVFile(path string, events []Event) error { return csvio.WriteFile(path, events) }

// ReadCSVFile reads events from a CSV file.
func ReadCSVFile(path string) ([]Event, error) { return csvio.ReadFile(path) }

// ReadCSVGrouped reads a mixed CSV stream and groups it by event type,
// preserving per-type order.
func ReadCSVGrouped(r io.Reader) (map[Type][]Event, error) { return csvio.ReadGrouped(r) }

// DisorderStream perturbs a time-ordered stream into a bounded
// out-of-order arrival sequence (network jitter simulation): each event is
// delayed by at most maxDelay. Pair with Job.WithLateness(maxDelay).
func DisorderStream(events []Event, maxDelay time.Duration, seed int64) []Event {
	return workload.Disorder(events, event.DurationToMillis(maxDelay), seed)
}

// MeasureDisorder returns the largest event-time lateness present in a
// stream's arrival order.
func MeasureDisorder(events []Event) time.Duration {
	return time.Duration(workload.MaxDisorder(events)) * time.Millisecond
}

// Job configures and runs one pattern over in-memory streams.
type Job struct {
	pattern     *Pattern
	opts        Options
	fcep        bool
	engine      EngineConfig
	data        map[Type][]Event
	keep        bool
	lateness    event.Time
	chain       bool
	batchSize   int
	rate        float64
	metrics     *MetricsRegistry
	restart     *RestartPolicy
	chaosInj    *ChaosInjector
	stopTimeout time.Duration
	onLetter    func(DeadLetter)
	budget      StateBudget
	policy      OverloadPolicy
	policySet   bool
	shedStrat   ShedStrategy
	shedSet     bool
	quality     QualitySpec
	traceRate   float64
	traceOut    string
	optimize    *optimizer.Optimizer
	err         error
}

// NewJob starts a job for the given pattern with default options
// (plain FASP mapping, single-threaded, dedup sink, matches retained).
func NewJob(p *Pattern) *Job {
	return &Job{pattern: p, data: make(map[Type][]Event), keep: true}
}

// WithOptions selects mapping optimizations.
func (j *Job) WithOptions(opts Options) *Job { j.opts = opts; return j }

// WithOptimizer turns on the cost-based pattern compiler: plan selection
// (join order, O1/O2/O3) is derived from cfg.Stats instead of WithOptions,
// and the run re-plans online at a checkpoint barrier when observed
// statistics drift enough to change the plan — without losing or
// duplicating matches. Mutually exclusive with UseFCEP and
// WithRestartPolicy.
func (j *Job) WithOptimizer(cfg OptimizerConfig) *Job {
	o, err := optimizer.New(cfg)
	if err != nil {
		j.err = err
		return j
	}
	j.optimize = o
	return j
}

// WithEngine overrides the engine configuration.
func (j *Job) WithEngine(cfg EngineConfig) *Job { j.engine = cfg; return j }

// UseFCEP switches to the single-operator NFA baseline.
func (j *Job) UseFCEP() *Job { j.fcep = true; return j }

// DiscardMatches keeps only counts (for large runs).
func (j *Job) DiscardMatches() *Job { j.keep = false; return j }

// WithLateness declares the maximum event-time disorder of the input
// streams: watermarks trail by this bound so windows wait for stragglers.
// Streams must not be more disordered (see DisorderStream / MeasureDisorder).
func (j *Job) WithLateness(d time.Duration) *Job {
	j.lateness = event.DurationToMillis(d)
	return j
}

// WithBatchSize sets the number of records the engine accumulates per
// downstream channel before transferring them in one send (amortizing
// synchronization on the inter-operator hot path). 1 disables batching;
// values below 1 are a configuration error reported by Run. The default
// (when neither this nor EngineConfig.BatchSize is set) is the engine's
// DefaultBatchSize. Partial batches are bounded by the engine's idle flush
// and flush timeout, so batching never changes results — only throughput
// and, slightly, latency under very sparse input.
func (j *Job) WithBatchSize(n int) *Job {
	if n < 1 {
		j.err = fmt.Errorf("cep2asp: WithBatchSize(%d): batch size must be at least 1", n)
		return j
	}
	j.batchSize = n
	return j
}

// WithSourceRate throttles every source to the given wall-clock rate in
// events per second (sustainable-throughput experiments). The rate must be
// positive; zero or negative rates are a configuration error reported by
// Run.
func (j *Job) WithSourceRate(eventsPerSec float64) *Job {
	j.rate = eventsPerSec
	if j.rate == 0 {
		j.err = fmt.Errorf("cep2asp: WithSourceRate(0): rate must be positive")
	}
	return j
}

// WithMetrics attaches a per-operator metrics registry: while the job
// runs, reg serves live per-operator counters, watermark lag and per-edge
// queue fill (pair with ServeMetrics); the sink's detection-latency
// histogram is registered under "sink_detection_latency".
func (j *Job) WithMetrics(reg *MetricsRegistry) *Job { j.metrics = reg; return j }

// WithRestartPolicy runs the job supervised: an operator panic is isolated
// into a structured failure, the graph is rebuilt, restored from the latest
// aligned checkpoint and replayed — up to the policy's restart budget, with
// exponential backoff and jitter between attempts. A record that keeps
// crashing the job is quarantined after the policy's poison threshold and
// routed to the dead-letter queue (see OnDeadLetter and RunStats.DeadLetters)
// instead of crash-looping the job. When the engine configuration carries no
// CheckpointSpec, an in-memory store with a short trigger interval is
// installed automatically so restarts have a checkpoint to resume from.
func (j *Job) WithRestartPolicy(p RestartPolicy) *Job { j.restart = &p; return j }

// WithChaos arms deterministic fault-injection points in the engine: the
// injector's faults fire at exact hit counts or records inside the source
// and operator execution paths. Combine with WithRestartPolicy to exercise
// supervised recovery.
func (j *Job) WithChaos(inj *ChaosInjector) *Job { j.chaosInj = inj; return j }

// WithStopTimeout bounds teardown after the run is cancelled or fails: a
// wedged operator instance that does not return within d is abandoned and
// named in the returned ShutdownTimeoutError instead of hanging Run forever.
func (j *Job) WithStopTimeout(d time.Duration) *Job { j.stopTimeout = d; return j }

// OnDeadLetter registers a callback invoked synchronously with each poison
// record routed to the dead-letter queue during a supervised run.
func (j *Job) OnDeadLetter(fn func(DeadLetter)) *Job { j.onLetter = fn; return j }

// WithStateBudget bounds the records the job may retain: perOperator caps
// each stateful operator instance, perJob the sum across the job; zero
// disables the respective bound. What happens at the bound is selected by
// WithOverloadPolicy (default: fail with a StateBudgetExceededError).
func (j *Job) WithStateBudget(perOperator, perJob int64) *Job {
	if perOperator < 0 || perJob < 0 {
		j.err = fmt.Errorf("cep2asp: WithStateBudget(%d, %d): budgets must be non-negative", perOperator, perJob)
		return j
	}
	j.budget.PerOperator = perOperator
	j.budget.PerJob = perJob
	return j
}

// WithOverloadPolicy selects the reaction to a reached state budget:
// OverloadFail aborts the job, OverloadShed evicts the oldest state first
// (visible in RunStats.ShedRecords, never silent), OverloadPause throttles
// the sources until state drains below the budget's low-water mark.
func (j *Job) WithOverloadPolicy(p OverloadPolicy) *Job {
	if p != OverloadFail && p != OverloadShed && p != OverloadPause {
		j.err = fmt.Errorf("cep2asp: WithOverloadPolicy(%d): unknown policy", p)
		return j
	}
	j.policy = p
	j.policySet = true
	return j
}

// WithShedStrategy selects the victim order the Shed overload policy
// uses. ShedOldestFirst (the default) evicts the oldest state;
// ShedPatternAware scores every retained unit by its probability of
// still completing into a match — transitions remaining, time left in
// the window, observed arrival rates — and evicts the least valuable
// first, retaining measurably more matches at the same budget. The
// strategy can also be switched at runtime by a WithQuality controller.
func (j *Job) WithShedStrategy(s ShedStrategy) *Job {
	if s != ShedOldestFirst && s != ShedPatternAware {
		j.err = fmt.Errorf("cep2asp: WithShedStrategy(%d): unknown strategy (want ShedOldestFirst or ShedPatternAware)", int(s))
		return j
	}
	j.shedStrat = s
	j.shedSet = true
	return j
}

// WithQuality declares quality demands the runtime must hold by steering
// the degradation mechanisms it already has: a dip of the recall
// estimate toward spec.MinRecall first switches shedding to
// pattern-aware victim selection, then pauses intake; crossing
// spec.MaxStateBytes tightens admission until the heap drains; a
// spec.MaxP99Latency breach forces pattern-aware shedding. Every
// decision is reported in RunStats.QualityActions. Demands no controller
// decision could satisfy fail fast with a *QualityInfeasibleError.
// Drives the plain execution path only (not WithOptimizer or
// WithRestartPolicy).
func (j *Job) WithQuality(spec QualitySpec) *Job { j.quality = spec; return j }

// WithTracing samples end-to-end traces for the given fraction of source
// events (clamped to [0,1]; 0 disables, 1 traces everything). Sampling is
// deterministic by event identity, so repeated runs trace the same records.
// The traced spans — per-operator queue wait and processing, match
// derivations linked to their constituents — are summarized on
// RunStats.Trace; with a non-empty out path the full trace is additionally
// written as Chrome trace-event JSON, loadable in chrome://tracing or
// Perfetto. Rate 0 keeps the hot path untouched: no per-record cost.
func (j *Job) WithTracing(rate float64, out string) *Job {
	if rate < 0 || rate > 1 {
		j.err = fmt.Errorf("cep2asp: WithTracing(%g): rate must be in [0,1]", rate)
		return j
	}
	j.traceRate = rate
	j.traceOut = out
	return j
}

// ChainOperators fuses pushed-down selections into the source edges
// (operator chaining): filters run inside the producing instance, saving
// one channel hop per event. Results are identical; topology is tighter.
func (j *Job) ChainOperators() *Job { j.chain = true; return j }

// AddStream supplies the time-ordered events of one input type.
func (j *Job) AddStream(typeName string, events []Event) *Job {
	t, ok := event.LookupType(typeName)
	if !ok {
		j.err = fmt.Errorf("cep2asp: unknown event type %q; register it or use it in the pattern first", typeName)
		return j
	}
	j.data[t] = events
	return j
}

// RunStats reports a completed job.
type RunStats struct {
	// Events is the number of input tuples; Elapsed the wall-clock run
	// time; ThroughputTps their ratio.
	Events        int64
	Elapsed       time.Duration
	ThroughputTps float64
	// Total counts emitted matches including duplicates from overlapping
	// windows; Unique counts distinct matches.
	Total  int64
	Unique int64
	// Matches holds the distinct matches when retained.
	Matches []*Match
	// AvgLatency / MaxLatency are detection latencies (creation to sink).
	AvgLatency time.Duration
	MaxLatency time.Duration
	// P50/P90/P99Latency are detection-latency quantiles from the sink's
	// log-bucketed histogram (~3% bucket resolution).
	P50Latency time.Duration
	P90Latency time.Duration
	P99Latency time.Duration
	// Restarts is the number of supervised restarts performed (0 without
	// WithRestartPolicy); DeadLetters lists the poison records quarantined
	// and routed to the dead-letter queue during the run.
	Restarts    int
	DeadLetters []DeadLetter
	// ShedRecords counts state records evicted under the Shed overload
	// policy (0 otherwise — shedding is never silent); PeakStateRecords is
	// the high-water mark of records retained across the job while a budget
	// was armed; PeakHeapBytes is the peak live heap sampled by the memory
	// admission controller (0 when it never ran).
	ShedRecords      int64
	PeakStateRecords int64
	PeakHeapBytes    int64
	// RecallEstimate is the guaranteed lower bound on achieved recall:
	// Unique / (Unique + RecallLostBound), or 1 when nothing was shed.
	// RecallLostBound is the accumulated upper bound on the matches
	// evicted state could still have produced (0 without shedding).
	RecallEstimate  float64
	RecallLostBound float64
	// QualityActions lists the decisions a WithQuality controller took, in
	// order (empty without WithQuality).
	QualityActions []string
	// Trace is the end-to-end latency breakdown of the sampled traces
	// (zero value unless WithTracing enabled sampling).
	Trace TraceSummary
	// Plan is the executed plan, for inspection. Optimized runs
	// (WithOptimizer) leave it nil and report every plan generation's
	// cost-annotated explanation in Plans instead.
	Plan *Plan
	// Replans counts the mid-run plan switches an optimized run performed
	// (0 without WithOptimizer); Plans holds each plan generation's
	// explanation with estimated per-node cardinalities, in execution
	// order.
	Replans int
	Plans   []string
}

// Run translates, builds and executes the job, returning its statistics.
func (j *Job) Run(ctx context.Context) (*RunStats, error) {
	if j.err != nil {
		return nil, j.err
	}
	if j.optimize != nil {
		if j.fcep {
			return nil, fmt.Errorf("cep2asp: WithOptimizer requires the decomposed FASP mapping; it cannot drive the FCEP baseline")
		}
		if j.restart != nil {
			return nil, fmt.Errorf("cep2asp: WithOptimizer and WithRestartPolicy are mutually exclusive (online re-planning manages its own execution attempts)")
		}
	}
	var plan *Plan
	var err error
	switch {
	case j.optimize != nil:
		// The optimizer translates per attempt, re-planning as statistics
		// arrive; there is no single up-front plan.
	case j.fcep:
		plan, err = core.TranslateFCEP(j.pattern, j.opts)
	default:
		plan, err = core.Translate(j.pattern, j.opts)
	}
	if err != nil {
		return nil, err
	}
	engineCfg := j.engine
	if j.metrics != nil {
		engineCfg.Metrics = j.metrics
	}
	if j.chaosInj != nil {
		engineCfg.Chaos = j.chaosInj
	}
	if j.stopTimeout > 0 {
		engineCfg.ShutdownTimeout = j.stopTimeout
	}
	if j.batchSize > 0 {
		engineCfg.BatchSize = j.batchSize
	}
	if j.budget.Enabled() {
		engineCfg.Overload.Budget = j.budget
	}
	if j.policySet {
		engineCfg.Overload.Policy = j.policy
	}
	if j.shedSet {
		engineCfg.Overload.Shedding = j.shedStrat
	}
	if j.quality.Enabled() {
		if j.optimize != nil || j.restart != nil {
			return nil, fmt.Errorf("cep2asp: WithQuality drives the plain execution path; it cannot be combined with WithOptimizer or WithRestartPolicy")
		}
		if j.quality.MaxStateBytes > 0 && engineCfg.Overload.Memory.SoftLimitBytes == 0 {
			engineCfg.Overload.Memory.SoftLimitBytes = j.quality.MaxStateBytes
		}
	}
	tracer := trace.New(j.traceRate, 0)
	if engineCfg.Trace == nil {
		engineCfg.Trace = tracer
	} else {
		tracer = engineCfg.Trace
	}
	bc := core.BuildConfig{
		Engine:           engineCfg,
		Data:             j.data,
		StampIngest:      true,
		Lateness:         j.lateness,
		SourceRatePerSec: j.rate,
		DedupSink:        true,
		KeepMatches:      j.keep,
		ChainOperators:   j.chain,
	}
	var events int64
	for _, evs := range j.data {
		events += int64(len(evs))
	}
	registerLatency := func(res *asp.Results) {
		if j.metrics != nil {
			j.metrics.RegisterHistogram("sink_detection_latency", res.LatencyHistogram())
		}
	}

	var res *asp.Results
	var restarts int
	var letters []DeadLetter
	var lastEnv *asp.Environment
	var qc *overload.QualityController
	var replans int
	var planTexts []string
	start := time.Now()
	if j.optimize != nil {
		rep, rerr := j.optimize.Run(ctx, j.pattern, bc)
		if rerr != nil {
			return nil, rerr
		}
		res = rep.Results
		lastEnv = rep.Env
		replans = rep.Replans
		planTexts = rep.Plans
		registerLatency(res)
	} else if j.restart != nil {
		dlq := &DeadLetterQueue{OnLetter: j.onLetter}
		run, err := core.RunSupervised(ctx, []*core.Plan{plan}, bc, core.SuperviseConfig{
			Policy: *j.restart,
			DLQ:    dlq,
			OnAttempt: func(_ int, env *asp.Environment, results []*asp.Results) {
				lastEnv = env
				registerLatency(results[0])
			},
		})
		if err != nil {
			return nil, err
		}
		res = run.Results[0]
		restarts = run.Restarts
		letters = dlq.Letters()
	} else {
		env, r, err := core.Build(plan, bc)
		if err != nil {
			return nil, err
		}
		lastEnv = env
		registerLatency(r)
		if j.quality.Enabled() {
			probe, act := env.QualityHooks(func() time.Duration { return r.LatencyQuantile(0.99) })
			c, qerr := overload.NewQualityController(j.quality, engineCfg.Overload, probe, act)
			if qerr != nil {
				return nil, qerr
			}
			c.Start(0)
			qc = c
		}
		if err := env.Execute(ctx); err != nil {
			if qc != nil {
				qc.Stop()
			}
			return nil, err
		}
		res = r
	}
	if qc != nil {
		qc.Stop()
	}
	elapsed := time.Since(start)
	stats := &RunStats{
		Events:      events,
		Elapsed:     elapsed,
		Total:       res.Total(),
		Unique:      res.Unique(),
		Matches:     res.Matches(),
		AvgLatency:  res.AvgLatency(),
		MaxLatency:  res.MaxLatency(),
		Restarts:    restarts,
		DeadLetters: letters,
		Plan:        plan,
		Replans:     replans,
		Plans:       planTexts,
	}
	if lastEnv != nil {
		stats.ShedRecords = lastEnv.ShedRecords()
		stats.PeakStateRecords = lastEnv.PeakStateRecords()
		stats.PeakHeapBytes = lastEnv.PeakHeapBytes()
		// The final estimate uses the sink's deduped count: duplicates from
		// overlapping windows never inflate it, so it stays a lower bound.
		stats.RecallLostBound = lastEnv.LostMatchBound()
		stats.RecallEstimate = overload.RecallEstimate(res.Unique(), stats.RecallLostBound)
	}
	if qc != nil {
		stats.QualityActions = qc.Actions()
	}
	stats.P50Latency, stats.P90Latency, stats.P99Latency = res.LatencyPercentiles()
	if elapsed > 0 {
		stats.ThroughputTps = float64(events) / elapsed.Seconds()
	}
	if tracer != nil {
		stats.Trace = tracer.Summarize()
		if j.traceOut != "" {
			if werr := tracer.WriteFile(j.traceOut); werr != nil {
				return stats, fmt.Errorf("cep2asp: trace export: %w", werr)
			}
		}
	}
	return stats, nil
}

// Project extracts a pattern's RETURN projection from a match: the listed
// alias.attr values in clause order, or every constituent's value attribute
// for RETURN *.
func Project(p *Pattern, m *Match) []float64 {
	if len(p.Return) == 0 {
		out := make([]float64, len(m.Events))
		for i, e := range m.Events {
			out[i] = e.Value
		}
		return out
	}
	layout := p.Layout()
	out := make([]float64, 0, len(p.Return))
	for _, r := range p.Return {
		pos, ok := layout[r.Alias]
		if !ok || pos >= len(m.Events) {
			out = append(out, 0)
			continue
		}
		v, _ := m.Events[pos].Attr(r.Attr)
		out = append(out, v)
	}
	return out
}
