package cep2asp

import (
	"context"
	"strings"
	"testing"
)

func TestJobQuickstart(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(20, 120, 1)
	stats, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != int64(len(q)+len(v)) {
		t.Fatalf("events = %d, want %d", stats.Events, len(q)+len(v))
	}
	if stats.Unique == 0 {
		t.Fatal("expected matches")
	}
	if stats.ThroughputTps <= 0 || stats.AvgLatency <= 0 {
		t.Fatalf("missing metrics: %v / %v", stats.ThroughputTps, stats.AvgLatency)
	}
	if int64(len(stats.Matches)) != stats.Unique {
		t.Fatalf("retained %d matches, unique = %d", len(stats.Matches), stats.Unique)
	}
}

func TestJobFCEPvsFASPAgree(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 70 AND v.value <= 30
		WITHIN 10 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(5, 90, 3)
	run := func(fcep bool) *RunStats {
		j := NewJob(pattern).AddStream("QnVQuantity", q).AddStream("QnVVelocity", v)
		if fcep {
			j.UseFCEP()
		}
		stats, err := j.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	fasp, fcep := run(false), run(true)
	if fasp.Unique != fcep.Unique {
		t.Fatalf("unique matches differ: FASP %d vs FCEP %d", fasp.Unique, fcep.Unique)
	}
	// Oracle agreement.
	all := append(append([]Event{}, q...), v...)
	oracle := EvaluateReference(pattern, all)
	if int64(len(oracle)) != fasp.Unique {
		t.Fatalf("oracle %d != engine %d", len(oracle), fasp.Unique)
	}
}

func TestJobWithOptions(t *testing.T) {
	pattern, err := Parse(`
		PATTERN ITER(QnVVelocity v, 3)
		WHERE v[i].value < v[i+1].value AND v[i].id == v[i+1].id AND v.value <= 60
		WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	_, v := GenerateQnV(10, 60, 5)
	var uniques []int64
	for _, opts := range []Options{
		{},
		{UseIntervalJoin: true},
		{UsePartitioning: true, Parallelism: 4},
	} {
		stats, err := NewJob(pattern).
			WithOptions(opts).
			AddStream("QnVVelocity", v).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		uniques = append(uniques, stats.Unique)
	}
	if uniques[0] != uniques[1] || uniques[1] != uniques[2] {
		t.Fatalf("optimizations changed results: %v", uniques)
	}
}

func TestJobUnknownStream(t *testing.T) {
	pattern, _ := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	_, err := NewJob(pattern).AddStream("NoSuchType", nil).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown event type") {
		t.Fatalf("err = %v, want unknown-type error", err)
	}
}

func TestJobMissingStream(t *testing.T) {
	pattern, _ := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	q, _ := GenerateQnV(2, 10, 1)
	_, err := NewJob(pattern).AddStream("QnVQuantity", q).Run(context.Background())
	if err == nil {
		t.Fatal("missing stream should fail the build")
	}
}

func TestProject(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WITHIN 15 MINUTES
		RETURN q.id, v.value AS speed`)
	if err != nil {
		t.Fatal(err)
	}
	tq := RegisterType("QnVQuantity")
	tv := RegisterType("QnVVelocity")
	m := &Match{Events: []Event{
		{Type: tq, ID: 42, TS: 0, Value: 90},
		{Type: tv, ID: 42, TS: Minute, Value: 12},
	}}
	got := Project(pattern, m)
	if len(got) != 2 || got[0] != 42 || got[1] != 12 {
		t.Fatalf("Project = %v, want [42 12]", got)
	}
	// RETURN * projects every constituent's value.
	pattern2, _ := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 15 MINUTES`)
	star := Project(pattern2, m)
	if len(star) != 2 || star[0] != 90 || star[1] != 12 {
		t.Fatalf("Project* = %v, want [90 12]", star)
	}
}

func TestExplainAvailable(t *testing.T) {
	pattern, _ := Parse(`PATTERN AND(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	plan, err := Translate(pattern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "WindowJoin") {
		t.Fatalf("Explain:\n%s", plan.Explain())
	}
	if _, err := TranslateFCEP(pattern, Options{}); err == nil {
		t.Fatal("FCEP should reject AND (Table 2)")
	}
}

func TestBuilderAPI(t *testing.T) {
	p, err := BuildPattern("prog", Seq(E("QnVQuantity", "q"), E("QnVVelocity", "v")),
		nil, PatternWindow{Size: 10 * Minute})
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(3, 30, 9)
	stats, err := NewJob(p).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unique == 0 {
		t.Fatal("builder-made pattern found no matches")
	}
}

func TestJobWithOptimizer(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(20, 120, 1)

	baseline, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	stats, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithOptimizer(OptimizerConfig{Stats: map[string]StreamStats{
			"QnVQuantity": {Frequency: 20, FilterSelectivity: 0.2},
			"QnVVelocity": {Frequency: 20, FilterSelectivity: 0.2},
		}}).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unique != baseline.Unique {
		t.Fatalf("optimized run found %d matches, baseline %d", stats.Unique, baseline.Unique)
	}
	if len(stats.Plans) == 0 || !strings.Contains(stats.Plans[0], "est") {
		t.Fatalf("missing cost-annotated plan explanation: %q", stats.Plans)
	}

	// Invalid statistics fail fast at the builder.
	if _, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithOptimizer(OptimizerConfig{Stats: map[string]StreamStats{
			"QnVQuantity": {Frequency: 10, FilterSelectivity: 2},
		}}).
		Run(context.Background()); err == nil {
		t.Fatal("invalid selectivity accepted")
	}

	// Incompatible combinations are rejected.
	if _, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		UseFCEP().
		WithOptimizer(OptimizerConfig{}).
		Run(context.Background()); err == nil {
		t.Fatal("FCEP + optimizer accepted")
	}
	if _, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithRestartPolicy(RestartPolicy{MaxRestarts: 1}).
		WithOptimizer(OptimizerConfig{}).
		Run(context.Background()); err == nil {
		t.Fatal("restart policy + optimizer accepted")
	}
}

func TestMeasurePatternStats(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(10, 120, 3)
	qt := RegisterType("QnVQuantity")
	vt := RegisterType("QnVVelocity")
	stats, err := MeasurePatternStats(pattern, map[Type][]Event{qt: q, vt: v})
	if err != nil {
		t.Fatal(err)
	}
	s := stats["QnVQuantity"]
	if s.Frequency < 9 || s.Frequency > 11 {
		t.Fatalf("QnVQuantity rate %v, want ~10/min", s.Frequency)
	}
	if s.FilterSelectivity < 0.1 || s.FilterSelectivity > 0.3 {
		t.Fatalf("QnVQuantity selectivity %v, want ~0.2", s.FilterSelectivity)
	}
	if _, err := ExplainOptimized(pattern, stats); err != nil {
		t.Fatal(err)
	}
}
