package cep2asp

import (
	"context"
	"testing"
)

func TestAdviseEndToEnd(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(10, 120, 21)
	stats := MeasureStats(map[string][]Event{
		"QnVQuantity": q,
		"QnVVelocity": v,
	})
	if stats["QnVQuantity"].Frequency != 10 {
		t.Fatalf("measured frequency = %g, want 10 (sensors emit per minute)", stats["QnVQuantity"].Frequency)
	}
	opts := Advise(pattern, stats, 4)
	if !opts.UsePartitioning {
		t.Fatal("advisor should key the equi pattern")
	}
	if !opts.UseIntervalJoin {
		t.Fatal("balanced frequencies should pick interval joins")
	}

	// The advised configuration runs and agrees with the default.
	run := func(o Options) int64 {
		stats, err := NewJob(pattern).
			WithOptions(o).
			AddStream("QnVQuantity", q).
			AddStream("QnVVelocity", v).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return stats.Unique
	}
	if a, b := run(opts), run(Options{}); a != b {
		t.Fatalf("advised run found %d matches, default %d", a, b)
	}
}
