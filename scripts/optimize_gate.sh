#!/usr/bin/env bash
# optimize_gate.sh — cost-based optimizer gate.
#
# Runs the skewed-workload optimize experiment (dense QnV streams joined
# with the rare, heavily filtered PM10 stream) and asserts that the
# statistics-driven plan (FASP-OPT: rare stream joined first, O1/O2/O3
# auto-selected) sustains at least OPTIMIZE_MIN_RATIO times the naive
# pattern-order topology's throughput. Both runs must also agree on the
# unique match count — plan rewriting must never change semantics.
#
#   make optimize                  # default: optimized >= naive, 3 attempts
#   OPTIMIZE_MIN_RATIO=1.1 ...     # demand a 10% win
#   OPTIMIZE_ATTEMPTS=5 ...        # more retries for noisy machines
set -euo pipefail
cd "$(dirname "$0")/.."

min_ratio="${OPTIMIZE_MIN_RATIO:-1.0}"
attempts="${OPTIMIZE_ATTEMPTS:-3}"

run_once() {
	local out naive opt naive_uniq opt_uniq
	out=$(go run ./cmd/benchrunner -exp optimize -scale bench)
	echo "$out"

	# The experiment name/approach pair also prefixes the overload
	# accounting lines, so additionally require a numeric tpl/s column.
	naive=$(echo "$out" | awk '$1 == "optimize/SEQqvm" && $2 == "FASP" && $3 ~ /^[0-9.]+$/ {print $3; exit}')
	opt=$(echo "$out" | awk '$1 == "optimize/SEQqvm" && $2 == "FASP-OPT" && $3 ~ /^[0-9.]+$/ {print $3; exit}')
	naive_uniq=$(echo "$out" | awk '$1 == "optimize/SEQqvm" && $2 == "FASP" && $3 ~ /^[0-9.]+$/ {print $5; exit}')
	opt_uniq=$(echo "$out" | awk '$1 == "optimize/SEQqvm" && $2 == "FASP-OPT" && $3 ~ /^[0-9.]+$/ {print $5; exit}')

	case "$naive$opt" in
	'' | *[!0-9.]*)
		echo "optimize-gate: missing or failed rows (naive='$naive', optimized='$opt')" >&2
		return 1
		;;
	esac

	if [ "$naive_uniq" != "$opt_uniq" ]; then
		echo "optimize-gate: FAIL — match sets differ: naive $naive_uniq unique vs optimized $opt_uniq" >&2
		exit 1
	fi

	local ratio
	ratio=$(awk -v o="$opt" -v n="$naive" 'BEGIN{printf "%.2f", o / n}')
	echo "optimize-gate: naive $naive tpl/s, optimized $opt tpl/s (ratio ${ratio}, need >= ${min_ratio})"
	awk -v o="$opt" -v n="$naive" -v r="$min_ratio" 'BEGIN{exit !(o >= n * r)}'
}

for i in $(seq 1 "$attempts"); do
	echo "optimize-gate: attempt $i/$attempts"
	if run_once; then
		echo "optimize-gate: OK"
		exit 0
	fi
done
echo "optimize-gate: FAIL — the cost-based plan never reached ${min_ratio}x the naive throughput in $attempts attempts" >&2
exit 1
