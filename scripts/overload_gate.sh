#!/usr/bin/env bash
# overload_gate.sh — pattern-aware shedding gate.
#
# Runs the bounded-state overload experiment (ITER^3 over a dense velocity
# stream, severe per-job budget 256, Shed policy) with both victim-selection
# strategies and asserts that pattern-aware shedding (advancement-first
# completion ranking) retains at least OVERLOAD_MIN_GAIN times the matches
# of oldest-first eviction at the same budget.
#
#   make overload-aware            # default: pattern >= 1.15x oldest, 3 attempts
#   OVERLOAD_MIN_GAIN=1.05 ...     # relax the demanded win
#   OVERLOAD_ATTEMPTS=5 ...        # more retries for noisy machines
set -euo pipefail
cd "$(dirname "$0")/.."

min_gain="${OVERLOAD_MIN_GAIN:-1.15}"
attempts="${OVERLOAD_ATTEMPTS:-3}"

run_once() {
	local out oldest pattern
	out=$(go run ./cmd/benchrunner -exp overload -scale bench)
	echo "$out"

	# Result rows: "name approach tpl/s, N matches (U unique, ...)". The
	# overload accounting lines share the name prefix, so additionally
	# require the numeric throughput column before reading the matches
	# column ($5).
	oldest=$(echo "$out" | awk '$1 == "overload/ITER3/budget=256/shed=oldest" && $2 == "FCEP" && $3 ~ /^[0-9.]+$/ {print $5; exit}')
	pattern=$(echo "$out" | awk '$1 == "overload/ITER3/budget=256/shed=pattern" && $2 == "FCEP" && $3 ~ /^[0-9.]+$/ {print $5; exit}')

	case "$oldest$pattern" in
	'' | *[!0-9]*)
		echo "overload-gate: missing or failed rows (oldest='$oldest', pattern='$pattern')" >&2
		return 1
		;;
	esac

	local ratio
	ratio=$(awk -v p="$pattern" -v o="$oldest" 'BEGIN{if (o == 0) {print "inf"} else {printf "%.2f", p / o}}')
	echo "overload-gate: oldest-first retained $oldest matches, pattern-aware $pattern (ratio ${ratio}, need >= ${min_gain})"
	awk -v p="$pattern" -v o="$oldest" -v g="$min_gain" 'BEGIN{exit !(p > 0 && p >= o * g)}'
}

for i in $(seq 1 "$attempts"); do
	echo "overload-gate: attempt $i/$attempts"
	if run_once; then
		echo "overload-gate: OK"
		exit 0
	fi
done
echo "overload-gate: FAIL — pattern-aware shedding never retained ${min_gain}x the oldest-first matches in $attempts attempts" >&2
exit 1
