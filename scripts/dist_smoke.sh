#!/usr/bin/env bash
# dist_smoke.sh — end-to-end distributed smoke test with real processes.
#
# Builds the benchrunner and cep2asp-worker binaries (with -race by
# default), starts a coordinator expecting two external worker processes,
# runs the distsmoke experiment (a short keyed SEQ workload on the
# 3-process cluster), and fails if the distributed match set differs from
# the single-process run of the identical job. Workers run in respawn
# loops because the coordinator tears its control plane down between
# runs; each loop rejoins until the benchrunner exits.
#
# Usage: scripts/dist_smoke.sh [extra benchrunner args...]
#   RACE=0    disable the race detector (default: enabled)
#   WORKERS=N total cluster size incl. coordinator (default: 3)

set -euo pipefail
cd "$(dirname "$0")/.."

RACE="${RACE:-1}"
WORKERS="${WORKERS:-3}"
PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)"
LOG="${BIN}/workers.log"

BUILDFLAGS=()
if [[ "$RACE" == "1" ]]; then
    BUILDFLAGS+=(-race)
    # Make data races fatal in the spawned binaries, not just reported.
    export GORACE="halt_on_error=1"
fi

echo "building binaries (race=${RACE})..."
go build "${BUILDFLAGS[@]}" -o "$BIN/benchrunner" ./cmd/benchrunner
go build "${BUILDFLAGS[@]}" -o "$BIN/cep2asp-worker" ./cmd/cep2asp-worker

worker_pids=()
cleanup() {
    for pid in "${worker_pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    # The respawn loops run the workers in subshells; kill by binary path
    # (unique per invocation: it lives in this run's temp dir).
    pkill -f "$BIN/cep2asp-worker" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

for ((i = 1; i < WORKERS; i++)); do
    (
        while :; do
            "$BIN/cep2asp-worker" -join "$ADDR" -name "smoke-$i" >>"$LOG" 2>&1 || true
            sleep 0.2
        done
    ) &
    worker_pids+=($!)
done

echo "running distsmoke on $ADDR with $((WORKERS - 1)) external workers..."
if "$BIN/benchrunner" -exp distsmoke -scale bench \
    -dist-workers "$WORKERS" -dist-external -dist-listen "$ADDR" "$@"; then
    echo "dist-smoke: PASS"
else
    status=$?
    echo "dist-smoke: FAIL (exit $status); worker log tail:"
    tail -20 "$LOG" || true
    exit "$status"
fi
