#!/usr/bin/env bash
# dist_smoke.sh — end-to-end distributed smoke test with real processes.
#
# Builds the benchrunner and cep2asp-worker binaries (with -race by
# default), starts a coordinator expecting two external worker processes,
# runs the distsmoke experiment (a short keyed SEQ workload on the
# 3-process cluster), and fails if the distributed match set differs from
# the single-process run of the identical job. Workers run in respawn
# loops because the coordinator tears its control plane down between
# runs; each loop rejoins until the benchrunner exits.
#
# The run doubles as the observability-plane gate: every process serves
# metrics + pprof, the coordinator's /cluster/metrics federation is
# scraped and cross-checked against the run's match count
# (-cluster-check), and a fully sampled end-to-end trace is exported to
# TRACE_OUT and verified to contain spans from remote workers and
# network hops.
#
# A second phase re-runs the workload under transport chaos: a netreset
# severs the coordinator→worker data link mid-stream, and the run must
# heal it by transparent reconnect — zero restarts, reconnects_total >= 1
# in the /cluster/metrics scrape (-check-reconnects). `make dist-chaos`
# runs this phase alone.
#
# Usage: scripts/dist_smoke.sh [extra benchrunner args...]
#   RACE=0        disable the race detector (default: enabled)
#   WORKERS=N     total cluster size incl. coordinator (default: 3)
#   TRACE_OUT=P   Chrome trace JSON path (default: results/trace_distsmoke.json)
#   PHASES="..."  which phases to run: "base chaos" (default), "base", "chaos"

set -euo pipefail
cd "$(dirname "$0")/.."

RACE="${RACE:-1}"
WORKERS="${WORKERS:-3}"
TRACE_OUT="${TRACE_OUT:-results/trace_distsmoke.json}"
PHASES="${PHASES:-base chaos}"
PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)"
LOG="${BIN}/workers.log"

BUILDFLAGS=()
if [[ "$RACE" == "1" ]]; then
    BUILDFLAGS+=(-race)
    # Make data races fatal in the spawned binaries, not just reported.
    export GORACE="halt_on_error=1"
fi

echo "building binaries (race=${RACE})..."
go build "${BUILDFLAGS[@]}" -o "$BIN/benchrunner" ./cmd/benchrunner
go build "${BUILDFLAGS[@]}" -o "$BIN/cep2asp-worker" ./cmd/cep2asp-worker

worker_pids=()
cleanup() {
    for pid in "${worker_pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    # The respawn loops run the workers in subshells; kill by binary path
    # (unique per invocation: it lives in this run's temp dir).
    pkill -f "$BIN/cep2asp-worker" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

for ((i = 1; i < WORKERS; i++)); do
    (
        while :; do
            "$BIN/cep2asp-worker" -join "$ADDR" -name "smoke-$i" \
                -metrics-addr 127.0.0.1:0 >>"$LOG" 2>&1 || true
            sleep 0.2
        done
    ) &
    worker_pids+=($!)
done

if [[ " $PHASES " == *" base "* ]]; then
    echo "running distsmoke on $ADDR with $((WORKERS - 1)) external workers..."
    if "$BIN/benchrunner" -exp distsmoke -scale bench \
        -dist-workers "$WORKERS" -dist-external -dist-listen "$ADDR" \
        -metrics-addr 127.0.0.1:0 -cluster-check \
        -trace-rate 1 -trace-out "$TRACE_OUT" \
        -checkpoint-interval 10ms "$@"; then
        echo "dist-smoke: run PASS"
    else
        status=$?
        echo "dist-smoke: FAIL (exit $status); worker log tail:"
        tail -20 "$LOG" || true
        exit "$status"
    fi

    # The exported trace must be a real cluster trace: non-empty, with spans
    # attributed to at least one remote worker (pid > 0) and network-hop
    # spans crossing process boundaries.
    if [[ ! -s "$TRACE_OUT" ]]; then
        echo "dist-smoke: FAIL: trace file $TRACE_OUT missing or empty"
        exit 1
    fi
    for want in '"pid":1' '"cat":"net"'; do
        if ! grep -q "$want" "$TRACE_OUT"; then
            echo "dist-smoke: FAIL: trace $TRACE_OUT has no $want spans"
            exit 1
        fi
    done
    if ! grep -q '"cat":"barrier"' "$TRACE_OUT"; then
        # Barrier spans require at least one completed checkpoint; a very
        # fast run may legitimately finish before the first interval fires.
        echo "dist-smoke: note: no barrier spans (run completed before a checkpoint fired)"
    fi
    echo "dist-smoke: PASS (trace: $TRACE_OUT)"
fi

if [[ " $PHASES " == *" chaos "* ]]; then
    # The heal-by-reconnect gate: one mid-stream connection reset on the
    # coordinator→worker-1 data link at frame 3 (early — the smoke workload
    # only ships a handful of frames per link at the default batch size).
    # The transport must redial and retransmit — the run completes with
    # ZERO restarts, the match set still equals the single-process run
    # (distsmoke's own gate), and the /cluster/metrics scrape shows
    # cep2asp_net_reconnects_total >= 1.
    echo "running distsmoke under netreset chaos on $ADDR (heal-by-reconnect gate)..."
    if "$BIN/benchrunner" -exp distsmoke -scale bench \
        -dist-workers "$WORKERS" -dist-external -dist-listen "$ADDR" \
        -metrics-addr 127.0.0.1:0 -cluster-check \
        -chaos "netreset:0>1@3" -check-reconnects 1 \
        -checkpoint-interval 10ms "$@"; then
        echo "dist-chaos: PASS (netreset healed by reconnect, zero restarts)"
    else
        status=$?
        echo "dist-chaos: FAIL (exit $status); worker log tail:"
        tail -20 "$LOG" || true
        exit "$status"
    fi
fi
