#!/usr/bin/env bash
# bench_smoke.sh — guards the no-observability fast path.
#
# Runs BenchmarkPipelineNoRegistry (a full source -> filter -> sink run
# with no metrics registry attached, where every instrumentation hook must
# cost one nil pointer comparison) and fails if the best-of-N ns/op
# regresses more than 5% against the recorded baseline. With no baseline
# recorded yet, records one and succeeds.
#
#   make bench-smoke            # compare against results/bench_baseline.txt
#   BENCH_SMOKE_COUNT=10 ...    # more repetitions (default 5, best wins)
#   rm results/bench_baseline.txt && make bench-smoke   # re-record
set -euo pipefail
cd "$(dirname "$0")/.."

bench=BenchmarkPipelineNoRegistry
baseline_file=results/bench_baseline.txt
runs="${BENCH_SMOKE_COUNT:-5}"
benchtime="${BENCH_SMOKE_TIME:-0.3s}"

out=$(go test ./internal/asp/ -run '^$' -bench "^${bench}\$" \
	-count="$runs" -benchtime="$benchtime")
echo "$out"

best=$(echo "$out" | awk -v b="$bench" '$1 ~ "^"b {print $3}' | sort -n | head -1)
if [ -z "$best" ]; then
	echo "bench-smoke: no result for $bench" >&2
	exit 1
fi

if [ ! -f "$baseline_file" ]; then
	mkdir -p "$(dirname "$baseline_file")"
	printf '%s %s ns/op\n' "$bench" "$best" >"$baseline_file"
	echo "bench-smoke: recorded baseline $best ns/op in $baseline_file"
	exit 0
fi

base=$(awk -v b="$bench" '$1 == b {print $2}' "$baseline_file")
if [ -z "$base" ]; then
	echo "bench-smoke: $baseline_file has no entry for $bench; delete it to re-record" >&2
	exit 1
fi

echo "bench-smoke: best $best ns/op vs baseline $base ns/op (limit +5%)"
if awk -v best="$best" -v base="$base" 'BEGIN{exit !(best > base * 1.05)}'; then
	echo "bench-smoke: FAIL — no-registry fast path regressed more than 5%" >&2
	exit 1
fi
echo "bench-smoke: OK"
