#!/usr/bin/env bash
# bench_smoke.sh — performance smoke gates.
#
# Two gates, selected by the optional mode argument (default: all):
#
#   pipeline  BenchmarkPipelineNoRegistry (a full source -> filter -> sink
#             run with no metrics registry attached, where every
#             instrumentation hook must cost one nil pointer comparison)
#             must not regress more than 5% against the recorded baseline.
#             With no baseline recorded yet, records one and succeeds.
#   batch     BenchmarkFig5SEQBatch (the fig5 SEQ workload with edge
#             batching disabled vs the engine default) — the batched run
#             must be at least BENCH_BATCH_MIN_GAIN percent faster,
#             best-of-N on both sides. The measured pair is refreshed in
#             results/bench_baseline.txt for the record.
#
#   make bench-smoke            # both gates
#   make bench-batch            # batching gate only
#   BENCH_SMOKE_COUNT=10 ...    # more repetitions (default 5, best wins)
#   BENCH_BATCH_MIN_GAIN=10 ... # relax the batching bar (default 20%)
#   rm results/bench_baseline.txt && make bench-smoke   # re-record
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
baseline_file=results/bench_baseline.txt

pipeline_gate() {
	local bench=BenchmarkPipelineNoRegistry
	local runs="${BENCH_SMOKE_COUNT:-5}"
	local benchtime="${BENCH_SMOKE_TIME:-0.3s}"

	local out
	out=$(go test ./internal/asp/ -run '^$' -bench "^${bench}\$" \
		-count="$runs" -benchtime="$benchtime")
	echo "$out"

	local best
	best=$(echo "$out" | awk -v b="$bench" '$1 ~ "^"b {print $3}' | sort -n | head -1)
	if [ -z "$best" ]; then
		echo "bench-smoke: no result for $bench" >&2
		exit 1
	fi

	if [ ! -f "$baseline_file" ]; then
		mkdir -p "$(dirname "$baseline_file")"
		printf '%s %s ns/op\n' "$bench" "$best" >"$baseline_file"
		echo "bench-smoke: recorded baseline $best ns/op in $baseline_file"
		return
	fi

	local base
	base=$(awk -v b="$bench" '$1 == b {print $2}' "$baseline_file")
	if [ -z "$base" ]; then
		echo "bench-smoke: $baseline_file has no entry for $bench; delete it to re-record" >&2
		exit 1
	fi

	echo "bench-smoke: best $best ns/op vs baseline $base ns/op (limit +5%)"
	if awk -v best="$best" -v base="$base" 'BEGIN{exit !(best > base * 1.05)}'; then
		echo "bench-smoke: FAIL — no-registry fast path regressed more than 5%" >&2
		exit 1
	fi
	echo "bench-smoke: OK"
}

batch_gate() {
	local bench=BenchmarkFig5SEQBatch
	local min_gain="${BENCH_BATCH_MIN_GAIN:-20}"
	local runs="${BENCH_BATCH_COUNT:-4}"
	local benchtime="${BENCH_BATCH_TIME:-8x}"

	local out
	out=$(go test . -run '^$' -bench "^${bench}\$" \
		-count="$runs" -benchtime="$benchtime")
	echo "$out"

	local unbatched batched
	unbatched=$(echo "$out" | awk -v b="$bench/batch=1" '$1 ~ "^"b {print $3}' | sort -n | head -1)
	batched=$(echo "$out" | awk -v b="$bench/batch=default" '$1 ~ "^"b {print $3}' | sort -n | head -1)
	if [ -z "$unbatched" ] || [ -z "$batched" ]; then
		echo "bench-batch: missing results for $bench" >&2
		exit 1
	fi

	local gain
	gain=$(awk -v u="$unbatched" -v b="$batched" 'BEGIN{printf "%.1f", (u / b - 1) * 100}')
	echo "bench-batch: unbatched $unbatched ns/op, batched $batched ns/op: +${gain}% throughput"
	if awk -v u="$unbatched" -v b="$batched" -v g="$min_gain" \
		'BEGIN{exit !(u / b < 1 + g / 100)}'; then
		echo "bench-batch: FAIL — edge batching gained less than ${min_gain}%" >&2
		exit 1
	fi

	# Refresh the recorded pair, preserving every other baseline entry.
	mkdir -p "$(dirname "$baseline_file")"
	touch "$baseline_file"
	local tmp
	tmp=$(mktemp)
	grep -v "^${bench}/" "$baseline_file" | grep -v '^# batched' >"$tmp" || true
	{
		printf '%s/batch=1 %s ns/op\n' "$bench" "$unbatched"
		printf '%s/batch=default %s ns/op\n' "$bench" "$batched"
		printf '# batched throughput gain: +%s%%\n' "$gain"
	} >>"$tmp"
	mv "$tmp" "$baseline_file"
	echo "bench-batch: OK (recorded in $baseline_file)"
}

case "$mode" in
all)
	pipeline_gate
	batch_gate
	;;
pipeline) pipeline_gate ;;
batch) batch_gate ;;
*)
	echo "usage: $0 [all|pipeline|batch]" >&2
	exit 2
	;;
esac
