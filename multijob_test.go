package cep2asp

import (
	"context"
	"testing"
	"time"
)

func multiTestStreams(t *testing.T) (q, v []Event) {
	t.Helper()
	return GenerateQnV(10, 120, 31)
}

func TestMultiJobMatchesSingleRuns(t *testing.T) {
	seqPat, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 AND v.value <= 20
		WITHIN 10 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	andPat, err := Parse(`
		PATTERN AND(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 95 AND v.value <= 5 AND q.id == v.id
		WITHIN 10 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := multiTestStreams(t)

	single := func(p *Pattern, fcep bool) int64 {
		j := NewJob(p).AddStream("QnVQuantity", q).AddStream("QnVVelocity", v)
		if fcep {
			j.UseFCEP()
		}
		stats, err := j.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return stats.Unique
	}

	all, err := NewMultiJob().
		Add(seqPat, Options{}).
		Add(andPat, Options{UseIntervalJoin: true}).
		AddFCEP(seqPat, Options{}).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("got %d result sets, want 3", len(all))
	}
	if got, want := all[0].Unique, single(seqPat, false); got != want {
		t.Fatalf("shared-run SEQ found %d, solo %d", got, want)
	}
	if got, want := all[1].Unique, single(andPat, false); got != want {
		t.Fatalf("shared-run AND found %d, solo %d", got, want)
	}
	if all[2].Unique != all[0].Unique {
		t.Fatalf("FCEP and FASP in one job disagree: %d vs %d", all[2].Unique, all[0].Unique)
	}
	// Shared sources: events counted once.
	if all[0].Events != int64(len(q)+len(v)) {
		t.Fatalf("events = %d, want %d", all[0].Events, len(q)+len(v))
	}
}

func TestMultiJobErrors(t *testing.T) {
	if _, err := NewMultiJob().Run(context.Background()); err == nil {
		t.Fatal("empty multi-job should fail")
	}
	p, _ := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	if _, err := NewMultiJob().Add(p, Options{}).AddStream("Nope", nil).Run(context.Background()); err == nil {
		t.Fatal("unknown stream type should fail")
	}
	andPat, _ := Parse(`PATTERN AND(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	q, v := multiTestStreams(t)
	_, err := NewMultiJob().
		AddFCEP(andPat, Options{}).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		Run(context.Background())
	if err == nil {
		t.Fatal("FCEP cannot run AND (Table 2); multi-job must surface that")
	}
}

func TestMultiJobOutOfOrder(t *testing.T) {
	p, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 85 AND v.value <= 15
		WITHIN 10 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := multiTestStreams(t)
	ordered, err := NewMultiJob().
		Add(p, Options{}).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const lateness = 4 * time.Minute
	disQ := DisorderStream(q, lateness, 5)
	disV := DisorderStream(v, lateness, 5)
	if MeasureDisorder(disQ) > lateness {
		t.Fatal("disorder exceeds the declared bound")
	}
	disordered, err := NewMultiJob().
		Add(p, Options{}).
		WithLateness(lateness).
		AddStream("QnVQuantity", disQ).
		AddStream("QnVVelocity", disV).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ordered[0].Unique != disordered[0].Unique {
		t.Fatalf("disorder changed results: %d vs %d", ordered[0].Unique, disordered[0].Unique)
	}
}
