GO ?= go

.PHONY: build test race vet bench bench-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fails if the no-metrics-registry fast path regressed >5% vs the recorded
# baseline (results/bench_baseline.txt; delete it to re-record).
bench-smoke:
	./scripts/bench_smoke.sh

# Supervision under fault injection: panic isolation, chaos kills, restart
# policies and poison-record routing, all under the race detector.
chaos:
	$(GO) test -race -run 'Supervised|Chaos|Quarantine|Poison|Restart|Backoff|Budget|DLQ|ShutdownTimeout|Failure' \
		. ./internal/asp/ ./internal/chaos/ ./internal/supervise/ ./internal/cep/ ./internal/checkpoint/
