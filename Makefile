GO ?= go

.PHONY: build test race vet bench bench-smoke bench-batch chaos overload overload-aware dist-smoke dist-chaos optimize

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fails if the no-metrics-registry fast path regressed >5% vs the recorded
# baseline (results/bench_baseline.txt; delete it to re-record), or if edge
# batching stops delivering its throughput win on the fig5 SEQ workload.
bench-smoke:
	./scripts/bench_smoke.sh

# Only the edge-batching gate: the fig5 SEQ workload batched (engine
# default) vs unbatched (BatchSize 1); the batched run must win by at least
# BENCH_BATCH_MIN_GAIN percent (default 20).
bench-batch:
	./scripts/bench_smoke.sh batch

# Supervision under fault injection: panic isolation, chaos kills, restart
# policies and poison-record routing, all under the race detector.
chaos:
	$(GO) test -race -run 'Supervised|Chaos|Quarantine|Poison|Restart|Backoff|Budget|DLQ|ShutdownTimeout|Failure' \
		. ./internal/asp/ ./internal/chaos/ ./internal/supervise/ ./internal/cep/ ./internal/checkpoint/

# Bounded-state soak: budgets, shed/pause policies, memory admission and
# the DLQ cap, under the race detector with a real GOMEMLIMIT in force.
overload:
	GOMEMLIMIT=1GiB $(GO) test -race -run 'Overload|Shed|Pause|Budget|DLQ|StateStats|MemController|Gate|Recall|Quality' \
		. ./internal/asp/ ./internal/nfa/ ./internal/overload/ ./internal/supervise/ ./internal/harness/

# Pattern-aware shedding gate: on the bounded-state overload workload,
# completion-probability victim selection must retain at least
# OVERLOAD_MIN_GAIN times (default 1.15) the matches of oldest-first
# eviction at the same budget.
overload-aware:
	./scripts/overload_gate.sh

# Multi-process smoke: a coordinator plus two real cep2asp-worker
# processes (race-enabled binaries) run a short keyed SEQ workload over
# loopback TCP; the distributed match set must equal the single-process
# run. Also gates the observability plane: /cluster/metrics is scraped
# and must list every worker with match counters summing to the run's
# match count, and the exported Chrome trace
# (results/trace_distsmoke.json) must contain remote-worker and
# network-hop spans. Fails non-zero on any divergence or data race.
dist-smoke:
	./scripts/dist_smoke.sh

# Cost-based optimizer gate: on the skewed optimize workload (dense QnV
# streams, rare filtered PM10), the statistics-driven plan must sustain at
# least the naive pattern-order topology's throughput (OPTIMIZE_MIN_RATIO,
# default 1.0) with an identical unique match count.
optimize:
	./scripts/optimize_gate.sh

# Network fault-tolerance gate alone: the distsmoke workload with a
# netreset severing the coordinator→worker data link mid-stream. The
# transport must heal it by transparent reconnect — zero job restarts,
# cep2asp_net_reconnects_total >= 1 in the /cluster/metrics scrape, and
# the match set still equal to the single-process run.
dist-chaos:
	PHASES=chaos ./scripts/dist_smoke.sh
