GO ?= go

.PHONY: build test race vet bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fails if the no-metrics-registry fast path regressed >5% vs the recorded
# baseline (results/bench_baseline.txt; delete it to re-record).
bench-smoke:
	./scripts/bench_smoke.sh
