module cep2asp

go 1.22
