package cep2asp

import (
	"context"
	"fmt"
	"time"

	"cep2asp/internal/core"
	"cep2asp/internal/event"
)

// MultiJob runs several patterns over the same input streams in one
// dataflow: each event type is read once and fanned out to every pattern's
// pipeline. This is the hybrid-system capability the paper motivates —
// running many continuous requests in a single system — and the setting
// where its multi-query remarks apply (§6).
type MultiJob struct {
	entries  []multiEntry
	data     map[Type][]Event
	engine   EngineConfig
	lateness event.Time
	keep     bool
	err      error
}

type multiEntry struct {
	pattern *Pattern
	opts    Options
	fcep    bool
}

// NewMultiJob starts an empty multi-pattern job.
func NewMultiJob() *MultiJob {
	return &MultiJob{data: make(map[Type][]Event), keep: true}
}

// Add registers a pattern executed through the decomposed mapping.
func (m *MultiJob) Add(p *Pattern, opts Options) *MultiJob {
	m.entries = append(m.entries, multiEntry{pattern: p, opts: opts})
	return m
}

// AddFCEP registers a pattern executed through the unary NFA baseline.
func (m *MultiJob) AddFCEP(p *Pattern, opts Options) *MultiJob {
	m.entries = append(m.entries, multiEntry{pattern: p, opts: opts, fcep: true})
	return m
}

// AddStream supplies one input type's events, shared by all patterns.
func (m *MultiJob) AddStream(typeName string, events []Event) *MultiJob {
	t, ok := event.LookupType(typeName)
	if !ok {
		m.err = fmt.Errorf("cep2asp: unknown event type %q", typeName)
		return m
	}
	m.data[t] = events
	return m
}

// WithEngine overrides the engine configuration.
func (m *MultiJob) WithEngine(cfg EngineConfig) *MultiJob { m.engine = cfg; return m }

// WithLateness declares the input streams' event-time disorder bound.
func (m *MultiJob) WithLateness(d time.Duration) *MultiJob {
	m.lateness = event.DurationToMillis(d)
	return m
}

// DiscardMatches keeps only counts.
func (m *MultiJob) DiscardMatches() *MultiJob { m.keep = false; return m }

// Run executes all patterns concurrently and returns one RunStats per
// pattern, in Add order. Events and throughput count the shared inputs
// once.
func (m *MultiJob) Run(ctx context.Context) ([]*RunStats, error) {
	if m.err != nil {
		return nil, m.err
	}
	if len(m.entries) == 0 {
		return nil, fmt.Errorf("cep2asp: multi-job has no patterns")
	}
	plans := make([]*core.Plan, len(m.entries))
	for i, e := range m.entries {
		var err error
		if e.fcep {
			plans[i], err = core.TranslateFCEP(e.pattern, e.opts)
		} else {
			plans[i], err = core.Translate(e.pattern, e.opts)
		}
		if err != nil {
			return nil, fmt.Errorf("cep2asp: pattern %d: %w", i, err)
		}
	}
	env, sinks, err := core.BuildMulti(plans, core.BuildConfig{
		Engine:      m.engine,
		Data:        m.data,
		StampIngest: true,
		Lateness:    m.lateness,
		DedupSink:   true,
		KeepMatches: m.keep,
	})
	if err != nil {
		return nil, err
	}
	var events int64
	for _, evs := range m.data {
		events += int64(len(evs))
	}
	start := time.Now()
	if err := env.Execute(ctx); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	out := make([]*RunStats, len(sinks))
	for i, res := range sinks {
		st := &RunStats{
			Events:     events,
			Elapsed:    elapsed,
			Total:      res.Total(),
			Unique:     res.Unique(),
			Matches:    res.Matches(),
			AvgLatency: res.AvgLatency(),
			MaxLatency: res.MaxLatency(),
			Plan:       plans[i],
		}
		if elapsed > 0 {
			st.ThroughputTps = float64(events) / elapsed.Seconds()
		}
		out[i] = st
	}
	return out, nil
}
