package cep2asp

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"cep2asp/internal/chaos"
)

// Invalid tuning knobs must fail the job fast with a descriptive error, not
// silently no-op (Throttle on a built job used to be ignored entirely).
func TestJobTuningValidation(t *testing.T) {
	pattern, err := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(2, 10, 1)
	newJob := func() *Job {
		return NewJob(pattern).AddStream("QnVQuantity", q).AddStream("QnVVelocity", v)
	}

	cases := []struct {
		name string
		job  *Job
		want string
	}{
		{"batch size 0", newJob().WithBatchSize(0), "batch size must be at least 1"},
		{"batch size negative", newJob().WithBatchSize(-8), "batch size must be at least 1"},
		{"source rate 0", newJob().WithSourceRate(0), "rate must be positive"},
		{"source rate negative", newJob().WithSourceRate(-100), "rate must be positive"},
		{"negative lateness", newJob().WithLateness(-time.Second), "negative lateness"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.job.Run(context.Background())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// A valid positive source rate must still run (regression guard for the
// fail-fast rework of the Throttle plumbing).
func TestJobWithSourceRateRuns(t *testing.T) {
	pattern, err := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(2, 5, 1)
	stats, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithSourceRate(1e6). // effectively unthrottled, but exercises the path
		Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Events == 0 {
		t.Fatal("no events processed")
	}
}

// The batching property of this PR: enabling edge batching together with
// aligned checkpointing and injected operator panics must not change the
// match set of any pattern shape. The reference run is unbatched
// (BatchSize 1) and unfailed.
func TestBatchedChaosMatchesUnfailed(t *testing.T) {
	qSEQ, vSEQ := GenerateQnV(10, 80, 1)
	qAND, vAND := GenerateQnV(4, 25, 2)
	_, vITER := GenerateQnV(8, 50, 5)
	nseqPattern, nseqStreams := nseqChaosData()

	cases := []struct {
		name    string
		pattern string
		streams map[string][]Event
		victim  string
	}{
		{
			name: "SEQ",
			pattern: `
				PATTERN SEQ(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
				WITHIN 15 MINUTES`,
			streams: map[string][]Event{"QnVQuantity": qSEQ, "QnVVelocity": vSEQ},
			victim:  "src:QnVQuantity",
		},
		{
			name:    "AND",
			pattern: `PATTERN AND(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`,
			streams: map[string][]Event{"QnVQuantity": qAND, "QnVVelocity": vAND},
			victim:  "src:QnVVelocity",
		},
		{
			name: "ITER",
			pattern: `
				PATTERN ITER(QnVVelocity v, 3)
				WHERE v[i].value < v[i+1].value AND v[i].id == v[i+1].id AND v.value <= 60
				WITHIN 15 MINUTES`,
			streams: map[string][]Event{"QnVVelocity": vITER},
			victim:  "src:QnVVelocity",
		},
		{
			name:    "NSEQ",
			pattern: nseqPattern,
			streams: nseqStreams,
			victim:  "src:ChSupA",
		},
	}

	const kills = 2
	for _, tc := range cases {
		tc := tc
		for _, bs := range []int{4, 64} {
			bs := bs
			t.Run(fmt.Sprintf("%s/batch=%d", tc.name, bs), func(t *testing.T) {
				pattern, err := Parse(tc.pattern)
				if err != nil {
					t.Fatal(err)
				}
				run := func(batch int, inj *ChaosInjector) *RunStats {
					j := NewJob(pattern).WithBatchSize(batch)
					for name, evs := range tc.streams {
						j.AddStream(name, evs)
					}
					if inj != nil {
						policy := chaosTestPolicy(kills)
						j.WithEngine(EngineConfig{
							BatchSize:  batch,
							Checkpoint: &CheckpointSpec{Store: NewMemCheckpointStore(), Interval: time.Millisecond},
						}).
							WithChaos(inj).
							WithRestartPolicy(policy).
							WithStopTimeout(10 * time.Second)
					}
					stats, err := j.Run(context.Background())
					if err != nil {
						t.Fatalf("run failed: %v", err)
					}
					return stats
				}

				want := sortedMatchKeys(run(1, nil))
				if len(want) == 0 {
					t.Fatal("reference run produced no matches; the property would be vacuous")
				}

				inj := NewChaosInjector(ChaosFault{
					Kind: chaos.Panic, Node: tc.victim, Instance: -1,
					AtHit: 30, Times: kills,
				})
				stats := run(bs, inj)
				if stats.Restarts != kills {
					t.Fatalf("Restarts = %d, want %d", stats.Restarts, kills)
				}
				got := sortedMatchKeys(stats)
				if len(got) != len(want) {
					t.Fatalf("batched+chaos run (BatchSize=%d): %d matches, want %d", bs, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("BatchSize=%d diverged at %d: %q vs %q", bs, i, got[i], want[i])
					}
				}
			})
		}
	}
}
