package cep2asp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"cep2asp/internal/chaos"
)

// chaosTestPolicy is a fast deterministic restart policy for tests: enough
// budget for k injected kills, microsecond-scale backoff, no jitter. The
// poison threshold sits above k because an AtHit fault re-fires on the
// replayed record after each restart, which would otherwise quarantine a
// healthy record and change the match set.
func chaosTestPolicy(k int) RestartPolicy {
	p := DefaultRestartPolicy()
	p.MaxRestarts = k + 2
	p.Window = 0
	p.InitialBackoff = time.Millisecond
	p.MaxBackoff = 5 * time.Millisecond
	p.Jitter = 0
	p.PoisonThreshold = k + 1
	p.Seed = 1
	return p
}

func sortedMatchKeys(stats *RunStats) []string {
	keys := make([]string, len(stats.Matches))
	for i, m := range stats.Matches {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

// nseqChaosData builds three deterministic streams for the NSEQ chaos case:
// SEQ(ChSupA a, !ChSupX x, ChSupB b) with enough density that negation both
// blocks and admits matches.
func nseqChaosData() (pattern string, streams map[string][]Event) {
	a := RegisterType("ChSupA")
	x := RegisterType("ChSupX")
	b := RegisterType("ChSupB")
	var as, xs, bs []Event
	for i := 0; i < 240; i++ {
		ts := int64(i) * Minute / 2
		as = append(as, Event{Type: a, ID: int64(i % 5), TS: ts, Value: float64((i * 7) % 100)})
		xs = append(xs, Event{Type: x, ID: int64(i % 5), TS: ts + Minute/4, Value: float64((i * 13) % 100)})
		bs = append(bs, Event{Type: b, ID: int64(i % 5), TS: ts + Minute/3, Value: float64((i * 11) % 100)})
	}
	pattern = `
		PATTERN SEQ(ChSupA a, !ChSupX x, ChSupB b)
		WHERE a.value >= 50 AND b.value <= 50 AND x.value >= 90
		WITHIN 10 MINUTES`
	streams = map[string][]Event{"ChSupA": as, "ChSupX": xs, "ChSupB": bs}
	return pattern, streams
}

// The supervision property of ISSUE 3: killing an operator instance K times
// mid-run under a restart policy must not change the match set. Each pattern
// shape runs in decomposed mode (a source instance is killed) and, where the
// NFA baseline supports the pattern, in FCEP mode (the cep-nfa operator is
// killed).
func TestSupervisedChaosMatchesUnfailed(t *testing.T) {
	qSEQ, vSEQ := GenerateQnV(20, 120, 1)
	qAND, vAND := GenerateQnV(5, 30, 2)
	_, vITER := GenerateQnV(10, 60, 5)
	nseqPattern, nseqStreams := nseqChaosData()

	cases := []struct {
		name    string
		pattern string
		streams map[string][]Event
		victim  string // decomposed-mode node to kill
		fcep    bool   // NFA baseline supports the shape (no AND)
	}{
		{
			name: "SEQ",
			pattern: `
				PATTERN SEQ(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
				WITHIN 15 MINUTES`,
			streams: map[string][]Event{"QnVQuantity": qSEQ, "QnVVelocity": vSEQ},
			victim:  "src:QnVQuantity",
			fcep:    true,
		},
		{
			name:    "AND",
			pattern: `PATTERN AND(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`,
			streams: map[string][]Event{"QnVQuantity": qAND, "QnVVelocity": vAND},
			victim:  "src:QnVVelocity",
		},
		{
			name: "ITER",
			pattern: `
				PATTERN ITER(QnVVelocity v, 3)
				WHERE v[i].value < v[i+1].value AND v[i].id == v[i+1].id AND v.value <= 60
				WITHIN 15 MINUTES`,
			streams: map[string][]Event{"QnVVelocity": vITER},
			victim:  "src:QnVVelocity",
			fcep:    true,
		},
		{
			name:    "NSEQ",
			pattern: nseqPattern,
			streams: nseqStreams,
			victim:  "src:ChSupA",
			fcep:    true,
		},
	}

	const kills = 3
	for _, tc := range cases {
		pattern, err := Parse(tc.pattern)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		modes := []struct {
			name   string
			fcep   bool
			victim string
		}{{"decomposed", false, tc.victim}}
		if tc.fcep {
			modes = append(modes, struct {
				name   string
				fcep   bool
				victim string
			}{"fcep", true, "cep-nfa"})
		}
		for _, mode := range modes {
			mode := mode
			tc := tc
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				run := func(inj *ChaosInjector, policy *RestartPolicy) *RunStats {
					j := NewJob(pattern)
					if mode.fcep {
						j.UseFCEP()
					}
					for name, evs := range tc.streams {
						j.AddStream(name, evs)
					}
					if policy != nil {
						j.WithChaos(inj).
							WithRestartPolicy(*policy).
							WithStopTimeout(10 * time.Second)
					}
					stats, err := j.Run(context.Background())
					if err != nil {
						t.Fatalf("run failed: %v", err)
					}
					return stats
				}

				want := sortedMatchKeys(run(nil, nil))
				if len(want) == 0 {
					t.Fatal("reference run produced no matches; the property would be vacuous")
				}

				inj := NewChaosInjector(ChaosFault{
					Kind: chaos.Panic, Node: mode.victim, Instance: -1,
					AtHit: 40, Times: kills,
				})
				policy := chaosTestPolicy(kills)
				stats := run(inj, &policy)

				if fires := len(inj.Fires()); fires != kills {
					t.Fatalf("fault fired %d times, want %d", fires, kills)
				}
				if stats.Restarts != kills {
					t.Fatalf("stats.Restarts = %d, want %d", stats.Restarts, kills)
				}
				if len(stats.DeadLetters) != 0 {
					t.Fatalf("unexpected dead letters: %v", stats.DeadLetters)
				}
				got := sortedMatchKeys(stats)
				if len(got) != len(want) {
					t.Fatalf("supervised run: %d matches, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("supervised run diverged at %d: %q vs %q", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// A record whose processing keeps panicking is quarantined to the dead-letter
// queue after PoisonThreshold failures, and the job then completes with that
// record dropped — matching a reference run that never saw the event.
func TestSupervisedPoisonRecordDeadLetters(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(5, 40, 3)

	poison := q[12]
	// The stable poison identity the engine derives for an event record.
	key := fmt.Sprintf("e:%d:%d:%d:%g", poison.Type, poison.ID, poison.TS, poison.Value)

	// Reference: the same job with the poison event removed from the input.
	clean := append(append([]Event{}, q[:12]...), q[13:]...)
	refStats, err := NewJob(pattern).
		AddStream("QnVQuantity", clean).
		AddStream("QnVVelocity", v).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := sortedMatchKeys(refStats)

	policy := chaosTestPolicy(4)
	policy.PoisonThreshold = 2
	inj := NewChaosInjector(ChaosFault{
		Kind: chaos.Panic, Node: "src:QnVQuantity", Instance: -1,
		RecordKey: key, Times: int64(policy.PoisonThreshold),
	})
	var delivered []DeadLetter
	stats, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithChaos(inj).
		WithRestartPolicy(policy).
		OnDeadLetter(func(l DeadLetter) { delivered = append(delivered, l) }).
		Run(context.Background())
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}

	if stats.Restarts != policy.PoisonThreshold {
		t.Fatalf("stats.Restarts = %d, want %d", stats.Restarts, policy.PoisonThreshold)
	}
	if len(stats.DeadLetters) != 1 {
		t.Fatalf("DeadLetters = %v, want exactly one", stats.DeadLetters)
	}
	letter := stats.DeadLetters[0]
	if letter.Key != key {
		t.Fatalf("letter key = %q, want %q", letter.Key, key)
	}
	if letter.Node != "src:QnVQuantity" {
		t.Fatalf("letter node = %q", letter.Node)
	}
	if letter.Failures != policy.PoisonThreshold {
		t.Fatalf("letter failures = %d, want %d", letter.Failures, policy.PoisonThreshold)
	}
	if len(delivered) != 1 || delivered[0].Key != key {
		t.Fatalf("OnDeadLetter delivered %v", delivered)
	}

	got := sortedMatchKeys(stats)
	if len(got) != len(want) {
		t.Fatalf("poisoned run: %d matches, want %d (reference without the event)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("poisoned run diverged at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// With the restart budget exhausted the job must fail with the structured
// OperatorFailure naming the operator — never an uncaught panic.
func TestSupervisedBudgetExhaustedSurfacesOperatorFailure(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.id == v.id WITHIN 5 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(3, 20, 4)

	policy := chaosTestPolicy(1)
	policy.MaxRestarts = 1
	// More kills than the budget allows: every attempt dies.
	inj := NewChaosInjector(ChaosFault{
		Kind: chaos.Panic, Node: "src:QnVVelocity", Instance: -1,
		AtHit: 5, Times: 100,
	})
	_, err = NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithChaos(inj).
		WithRestartPolicy(policy).
		Run(context.Background())
	if err == nil {
		t.Fatal("expected budget-exhausted failure")
	}
	var f *OperatorFailure
	if !errors.As(err, &f) {
		t.Fatalf("error %v does not wrap an OperatorFailure", err)
	}
	if f.Node != "src:QnVVelocity" || !f.Source {
		t.Fatalf("failure = %+v, want source src:QnVVelocity", f)
	}
	if len(f.Stack) == 0 {
		t.Fatal("failure carries no stack")
	}
}
