package cep2asp

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJobWithTracing(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(20, 120, 1)
	out := filepath.Join(t.TempDir(), "trace.json")
	stats, err := NewJob(pattern).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithTracing(1, out).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unique == 0 {
		t.Fatal("expected matches")
	}
	tr := stats.Trace
	if tr.Spans == 0 || tr.Traces == 0 {
		t.Fatalf("rate-1 tracing recorded nothing: %+v", tr)
	}
	// At rate 1 every event is its own trace identity, and every unique
	// match contributes one more (its MatchID attribution span).
	if want := int(stats.Events + stats.Unique); tr.Traces != want {
		t.Fatalf("traced %d identities, want %d (%d events + %d matches)",
			tr.Traces, want, stats.Events, stats.Unique)
	}
	if tr.E2EP99 < tr.E2EP50 || tr.E2EMax < tr.E2EP99 {
		t.Fatalf("e2e percentiles not monotone: %+v", tr)
	}

	// The exported file must be valid Chrome trace-event JSON with match
	// spans linking back to their constituents (match attribution).
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var matches, linked int
	for _, ev := range events {
		if ev["cat"] != "match" {
			continue
		}
		matches++
		if args, ok := ev["args"].(map[string]any); ok {
			if links, ok := args["links"].([]any); ok && len(links) > 0 {
				linked++
			}
		}
	}
	if matches == 0 {
		t.Fatal("trace has no match spans despite matches being found")
	}
	if linked == 0 {
		t.Fatal("no match span links back to its constituent traces")
	}
}

func TestWithTracingValidatesRate(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewJob(pattern).WithTracing(1.5, "").Run(context.Background()); err == nil {
		t.Fatal("rate outside [0,1] must be a configuration error")
	}
	// Rate 0 is the disabled plane: no spans, no error.
	q, v := GenerateQnV(2, 30, 1)
	stats, err := NewJob(pattern).
		AddStream("QnVQuantity", q).AddStream("QnVVelocity", v).
		WithTracing(0, "").Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace.Spans != 0 {
		t.Fatalf("disabled tracing recorded %d spans", stats.Trace.Spans)
	}
}
