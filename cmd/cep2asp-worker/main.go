// Command cep2asp-worker hosts one worker process of a distributed
// cep2asp job. It joins a coordinator's control address, receives the job
// spec over the control connection, builds its slice of the dataflow
// graph, exchanges record batches with its peers over TCP, and exits when
// the coordinator disconnects.
//
// Usage:
//
//	cep2asp-worker -join 127.0.0.1:7400 [-listen 127.0.0.1:0] \
//	    [-name worker-a] [-metrics-addr 127.0.0.1:9401] [-log-level info]
//
// -metrics-addr also serves /healthz and the Go pprof endpoints
// (/debug/pprof/). The coordinator side is `benchrunner -experiment ...
// -workers N -listen ADDR`, which waits for N-1 workers to join before
// running.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"cep2asp/internal/exchange"
	"cep2asp/internal/obs"
)

// parseLevel maps a -log-level flag value onto a slog level.
func parseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
	}
	return l, nil
}

func main() {
	join := flag.String("join", "", "coordinator control address to join (required)")
	listen := flag.String("listen", "127.0.0.1:0", "data-plane listen address")
	name := flag.String("name", "", "worker name reported to the coordinator (default host:pid)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics, /healthz and pprof on this address (empty = off)")
	statsIntv := flag.Duration("stats-interval", 0, "metrics-federation push period, doubling as the worker's heartbeat — the coordinator's liveness deadline must comfortably exceed it (0 = default 1s)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Parse()

	if *join == "" {
		fmt.Fprintln(os.Stderr, "cep2asp-worker: -join is required")
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cep2asp-worker: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})).
		With("job", "cep2asp-worker", "name", *name)

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		srv, addr, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("cep2asp-worker: metrics server: %v", err)
		}
		defer srv.Close()
		logger.Info("metrics server up", "metrics", "http://"+addr+"/metrics", "pprof", "http://"+addr+"/debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, err := exchange.StartWorker(ctx, *join, exchange.WorkerOptions{
		Name:          *name,
		DataAddr:      *listen,
		Metrics:       reg,
		StatsInterval: *statsIntv,
		Log:           logger,
	})
	if err != nil {
		log.Fatalf("cep2asp-worker: %v", err)
	}
	log.Printf("cep2asp-worker: %s joined %s", *name, *join)

	errc := make(chan error, 1)
	go func() { errc <- w.Wait() }()
	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("cep2asp-worker: %v", err)
		}
	case <-ctx.Done():
		w.Close()
		<-errc
	}
	log.Printf("cep2asp-worker: %s exiting", *name)
}
