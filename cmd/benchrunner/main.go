// Command benchrunner regenerates the paper's evaluation: one experiment
// per figure (3a-3f, 4, 5, 6) plus the Table 2 support matrix. Results
// print as aligned tables and, optionally, CSV.
//
// Usage:
//
//	benchrunner -exp all -scale bench
//	benchrunner -exp fig3b -scale full -csv results.csv
//	benchrunner -exp fig5 -metrics-addr :9090 -csv results.csv
//
// With -metrics-addr, a live observability endpoint serves /metrics
// (Prometheus text format, per-operator counters/gauges) and
// /debug/topology (DAG JSON with per-edge queue fill) while experiments
// run, and an end-of-run per-operator CSV is written next to -csv.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/harness"
	"cep2asp/internal/metrics"
	"cep2asp/internal/obs"
	"cep2asp/internal/overload"
	"cep2asp/internal/supervise"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: all, table2, fig3a, fig3b, fig3c, fig3d, fig3e, fig3f, fig4, fig5, fig6, fig6dist, latency, overload, overloadcurve, distsmoke, optimize")
		optimize     = flag.Bool("optimize", false, "run the cost-based optimizer experiment (shorthand for -exp optimize) and print the naive vs cost-based plans with estimated per-node cardinalities")
		scale        = flag.String("scale", "bench", "workload scale: bench (seconds) or full (minutes)")
		csvPath      = flag.String("csv", "", "also append rows to this CSV file")
		timeout      = flag.Duration("timeout", 0, "override per-run timeout (0 = scale default)")
		ckptIntv     = flag.Duration("checkpoint-interval", 0, "enable aligned-barrier checkpointing at this period and report its overhead (0 = off)")
		metAddr      = flag.String("metrics-addr", "", "serve live per-operator metrics on this address (/metrics Prometheus text, /debug/topology JSON); also emits per-operator CSV next to -csv")
		restart      = flag.String("restart-policy", "", "run supervised with this restart budget, as N or N@window (e.g. 5@1m): isolated operator panics restart the run from the latest checkpoint")
		chaosStr     = flag.String("chaos", "", "comma-separated fault specs: node faults kind:node/inst[@hit][xN][%recordkey] with kind panic|stall|delay=<dur> (e.g. panic:cep-nfa/0@1000), network faults kind:from>to[@frame][xN] with kind netdrop|netreset|netcorrupt|netpartition|netdelay=<dur> and * as any-worker wildcard (e.g. netreset:0>1@20, netpartition:1>0@40x30)")
		batchSz      = flag.Int("batch-size", 0, "records per inter-operator channel transfer (0 = engine default, 1 = disable edge batching)")
		budget       = flag.Int64("state-budget", -1, "per-job state budget in retained records (-1 = scale default, 0 = unbounded)")
		policy       = flag.String("overload-policy", "", "reaction to a reached state budget: fail (abort), shed (evict oldest state), pause (throttle sources)")
		shedPolicy   = flag.String("shed-policy", "", "victim order of the shed overload policy: oldest (evict oldest state) or pattern (evict the state least likely to still complete into a match)")
		qualRecall   = flag.Float64("quality-recall", 0, "per-run MinRecall quality demand in (0,1]: a controller switches shedding to pattern-aware (then pauses intake) whenever the recall estimate dips below it (0 = off)")
		qualLatency  = flag.Duration("quality-latency", 0, "per-run MaxP99Latency quality demand: a p99 detection-latency breach forces pattern-aware shedding (0 = off)")
		distN        = flag.Int("dist-workers", 0, "fix the cluster size of distributed experiments (fig6dist, distsmoke) instead of their default sweep; counts the coordinator as worker 0")
		distLn       = flag.String("dist-listen", "", "coordinator control-plane listen address for distributed experiments (default loopback, ephemeral port)")
		distExt      = flag.Bool("dist-external", false, "wait for external cep2asp-worker processes to join distributed experiments instead of spawning in-process workers")
		traceRt      = flag.Float64("trace-rate", 0, "sample this fraction of source events for end-to-end tracing (0 = off, 1 = all); sampling is deterministic by event identity")
		traceOut     = flag.String("trace-out", "", "write the Chrome trace-event JSON of traced runs here (requires -trace-rate > 0; an experiment with several runs keeps the last run's trace)")
		logLevel     = flag.String("log-level", "", "emit structured logs to stderr at this level: debug, info, warn, error (empty = off)")
		clusterCheck = flag.Bool("cluster-check", false, "after distsmoke, scrape /cluster/metrics (requires -metrics-addr) and fail unless every worker reported and the per-worker match counters sum to the run's match count")
		checkReconn  = flag.Int("check-reconnects", 0, "after distsmoke, fail unless the cluster healed at least N transient network faults by reconnect (cep2asp_net_reconnects_total ≥ N) with ZERO job restarts; requires -metrics-addr")
		liveness     = flag.Duration("liveness", 0, "heartbeat failure-detection deadline of distributed experiments: a worker silent this long is declared dead and the job restarts from the latest checkpoint (0 = default 15s, negative disables)")
	)
	flag.Parse()

	var sc harness.Scale
	switch *scale {
	case "bench":
		sc = harness.BenchScale()
	case "full":
		sc = harness.FullScale()
	default:
		fmt.Fprintln(os.Stderr, "benchrunner: -scale must be bench or full")
		os.Exit(2)
	}
	if *timeout > 0 {
		sc.Timeout = *timeout
	}
	if *batchSz < 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: -batch-size must be >= 0")
		os.Exit(2)
	}
	sc.BatchSize = *batchSz
	// The effective value, for the CSV: 0 means the engine default applies.
	effBatch := sc.BatchSize
	if effBatch == 0 {
		effBatch = asp.DefaultBatchSize
	}
	if *budget >= 0 {
		sc.StateBudget = *budget
	}
	if *policy != "" {
		p, err := overload.ParsePolicy(*policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
		sc.OverloadPolicy = p
	}
	if *shedPolicy != "" {
		s, err := overload.ParseShedStrategy(*shedPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
		sc.ShedStrategy = s
	}
	if *qualRecall < 0 || *qualRecall > 1 {
		fmt.Fprintln(os.Stderr, "benchrunner: -quality-recall must be in [0, 1]")
		os.Exit(2)
	}
	sc.QualityRecall = *qualRecall
	sc.QualityLatency = *qualLatency
	sc.CheckpointInterval = *ckptIntv
	sc.DistWorkers = *distN
	sc.DistListen = *distLn
	sc.DistExternal = *distExt
	if *restart != "" {
		policy, err := parseRestartPolicy(*restart)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
		sc.RestartPolicy = &policy
	}
	if *traceRt < 0 || *traceRt > 1 {
		fmt.Fprintln(os.Stderr, "benchrunner: -trace-rate must be in [0,1]")
		os.Exit(2)
	}
	if *traceOut != "" && *traceRt == 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: -trace-out requires -trace-rate > 0")
		os.Exit(2)
	}
	sc.TraceRate = *traceRt
	sc.TraceOut = *traceOut
	if *logLevel != "" {
		var level slog.Level
		if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner: bad -log-level (want debug, info, warn, or error)")
			os.Exit(2)
		}
		sc.Log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}
	if *clusterCheck && *metAddr == "" {
		fmt.Fprintln(os.Stderr, "benchrunner: -cluster-check requires -metrics-addr")
		os.Exit(2)
	}
	if *checkReconn > 0 && *metAddr == "" {
		fmt.Fprintln(os.Stderr, "benchrunner: -check-reconnects requires -metrics-addr")
		os.Exit(2)
	}
	sc.DistLiveness = *liveness
	if *chaosStr != "" {
		faults, err := chaos.ParseFaults(*chaosStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
		sc.ChaosFaults = faults
		// Chaos stalls must not hang the suite: bound every teardown.
		sc.StopTimeout = 30 * time.Second
	}

	var metricsAddr string
	if *metAddr != "" {
		sc.Metrics = obs.NewRegistry()
		srv, addr, err := obs.Serve(*metAddr, sc.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner: metrics endpoint:", err)
			os.Exit(1)
		}
		defer srv.Close()
		metricsAddr = addr
		fmt.Printf("serving live metrics on http://%s/metrics (pprof on /debug/pprof/, cluster view on /cluster/metrics during distributed runs)\n", addr)
	}

	if *optimize && *exp == "all" {
		*exp = "optimize"
	}
	var names []string
	switch *exp {
	case "all":
		names = harness.ExperimentNames
		printTable2()
	case "table2":
		printTable2()
		return
	default:
		if _, ok := harness.Experiments[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}

	var writer *csv.Writer
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		defer f.Close()
		writer = csv.NewWriter(f)
		defer writer.Flush()
		writer.Write([]string{"experiment", "approach", "events", "elapsed_ms",
			"throughput_tps", "matches", "unique", "selectivity_pct",
			"avg_latency_us", "p50_latency_us", "p90_latency_us",
			"p99_latency_us", "max_latency_us", "failed",
			"checkpoints", "ckpt_bytes", "ckpt_pause_us",
			"restarts", "dead_letters", "batch_size",
			"peak_heap_bytes", "shed_records", "recall_estimate",
			"ckpt_p50_ms", "ckpt_p99_ms", "e2e_latency_p99_ms"})
	}

	// Per-operator CSV, written next to the results CSV when the
	// observability registry is attached.
	var opsWriter *csv.Writer
	if *csvPath != "" && sc.Metrics != nil {
		opsPath := opsCSVPath(*csvPath)
		f, err := os.OpenFile(opsPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		defer f.Close()
		opsWriter = csv.NewWriter(f)
		defer opsWriter.Flush()
		opsWriter.Write([]string{"experiment", "approach", "node", "instance",
			"records_in", "records_out", "late", "watermark_ms",
			"watermark_lag_ms", "partials", "state_bytes", "shed",
			"proc_count", "proc_p50_ns", "proc_p99_ns", "proc_max_ns"})
	}

	if *optimize {
		explain, err := harness.OptimizeExplain(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner: optimizer explain:", err)
			os.Exit(1)
		}
		fmt.Print(explain)
	}

	ctx := context.Background()
	exitCode := 0
	for _, name := range names {
		fmt.Printf("\n=== %s (scale=%s) ===\n", name, *scale)
		start := time.Now()
		rows := harness.Experiments[name](ctx, sc)
		printRows(rows)
		if sc.Metrics != nil {
			printOperators(rows)
		}
		if name == "fig5" {
			printResources(rows)
		}
		if *ckptIntv > 0 {
			printCheckpoints(rows)
		}
		if sc.RestartPolicy != nil {
			printSupervision(rows)
		}
		printOverload(rows)
		if sc.TraceRate > 0 {
			printTraces(rows, sc.TraceOut)
		}
		// distsmoke is a correctness gate, not a measurement: a failed row
		// (including a match-set mismatch) must fail the process for CI.
		if name == "distsmoke" {
			for _, r := range rows {
				if r.Failed {
					exitCode = 1
				}
			}
			if *clusterCheck {
				if err := checkCluster(metricsAddr, rows); err != nil {
					fmt.Fprintln(os.Stderr, "benchrunner: cluster check FAILED:", err)
					exitCode = 1
				} else {
					fmt.Println("cluster check passed: all workers reported, match counters agree")
				}
			}
			if *checkReconn > 0 {
				if err := checkReconnects(metricsAddr, rows, *checkReconn); err != nil {
					fmt.Fprintln(os.Stderr, "benchrunner: reconnect check FAILED:", err)
					exitCode = 1
				} else {
					fmt.Println("reconnect check passed: transient faults healed in place, zero restarts")
				}
			}
		}
		fmt.Printf("--- %s finished in %v\n", name, time.Since(start).Round(time.Millisecond))
		if writer != nil {
			for _, r := range rows {
				writer.Write([]string{
					r.Name, r.Approach,
					strconv.FormatInt(r.Events, 10),
					strconv.FormatInt(r.Elapsed.Milliseconds(), 10),
					strconv.FormatFloat(r.ThroughputTps, 'f', 0, 64),
					strconv.FormatInt(r.Matches, 10),
					strconv.FormatInt(r.Unique, 10),
					strconv.FormatFloat(r.SelectivityPct, 'f', 6, 64),
					strconv.FormatInt(r.AvgLatency.Microseconds(), 10),
					strconv.FormatInt(r.P50Latency.Microseconds(), 10),
					strconv.FormatInt(r.P90Latency.Microseconds(), 10),
					strconv.FormatInt(r.P99Latency.Microseconds(), 10),
					strconv.FormatInt(r.MaxLatency.Microseconds(), 10),
					strconv.FormatBool(r.Failed),
					strconv.FormatInt(r.Checkpoints, 10),
					strconv.FormatInt(r.CheckpointBytes, 10),
					strconv.FormatInt(r.CheckpointPause.Microseconds(), 10),
					strconv.Itoa(r.Restarts),
					strconv.Itoa(r.DeadLetters),
					strconv.Itoa(effBatch),
					strconv.FormatInt(r.PeakHeapBytes, 10),
					strconv.FormatInt(r.ShedRecords, 10),
					strconv.FormatFloat(r.RecallEstimate, 'f', 6, 64),
					ms(r.CkptP50), ms(r.CkptP99), ms(r.Trace.E2EP99),
				})
			}
		}
		if opsWriter != nil {
			for _, r := range rows {
				for _, o := range r.Operators {
					opsWriter.Write([]string{
						r.Name, r.Approach, o.Node,
						strconv.Itoa(o.Instance),
						strconv.FormatInt(o.In, 10),
						strconv.FormatInt(o.Out, 10),
						strconv.FormatInt(o.Late, 10),
						strconv.FormatInt(o.Watermark, 10),
						strconv.FormatInt(o.WatermarkLagMs, 10),
						strconv.FormatInt(o.Partials, 10),
						strconv.FormatInt(o.StateBytes, 10),
						strconv.FormatInt(o.Shed, 10),
						strconv.FormatInt(o.ProcCount, 10),
						strconv.FormatInt(o.ProcP50, 10),
						strconv.FormatInt(o.ProcP99, 10),
						strconv.FormatInt(o.ProcMax, 10),
					})
				}
			}
		}
	}
	if exitCode != 0 {
		// os.Exit skips the deferred flushes; do them by hand.
		if writer != nil {
			writer.Flush()
		}
		if opsWriter != nil {
			opsWriter.Flush()
		}
		os.Exit(exitCode)
	}
}

// parseRestartPolicy parses the -restart-policy flag: N restarts, or
// N@window for a rolling budget window (e.g. 5@1m). The remaining policy
// knobs (backoff, jitter, poison threshold) keep their defaults.
func parseRestartPolicy(s string) (supervise.Policy, error) {
	p := supervise.DefaultPolicy()
	numStr, winStr, hasWin := strings.Cut(s, "@")
	n, err := strconv.Atoi(numStr)
	if err != nil || n < 0 {
		return p, fmt.Errorf("-restart-policy %q: want N or N@window", s)
	}
	p.MaxRestarts = n
	if hasWin {
		w, err := time.ParseDuration(winStr)
		if err != nil {
			return p, fmt.Errorf("-restart-policy %q: %v", s, err)
		}
		p.Window = w
	}
	return p, nil
}

// ms renders a duration as fractional milliseconds for the CSV.
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e6, 'f', 3, 64)
}

// printTraces reports each traced run's end-to-end latency breakdown:
// how the traced records' lifetime split across input queues, operator
// processing, and network hops.
func printTraces(rows []harness.RunResult, out string) {
	fmt.Println("\ntracing (sampled end-to-end):")
	for _, r := range rows {
		t := r.Trace
		if t.Spans == 0 {
			continue
		}
		fmt.Printf("  %-24s %-14s %d spans / %d traces, e2e p50 %v p99 %v, queue %v proc %v net %v",
			r.Name, r.Approach, t.Spans, t.Traces,
			t.E2EP50.Round(time.Microsecond), t.E2EP99.Round(time.Microsecond),
			time.Duration(t.QueueNs).Round(time.Microsecond),
			time.Duration(t.ProcNs).Round(time.Microsecond),
			time.Duration(t.NetNs).Round(time.Microsecond))
		if t.Dropped > 0 {
			fmt.Printf(" (%d spans dropped at buffer cap)", t.Dropped)
		}
		fmt.Println()
	}
	if out != "" {
		fmt.Printf("  chrome trace written to %s (load in chrome://tracing or https://ui.perfetto.dev)\n", out)
	}
}

// checkCluster scrapes the federated /cluster/metrics endpoint after a
// distributed run and verifies the federation end to end: every worker of
// the cluster must have reported a stats push (its worker label appears),
// and the per-worker sink ingress counters must sum to the run's match
// count. Catches dead stats loops, mislabeled series, and double-merged
// snapshots.
func checkCluster(addr string, rows []harness.RunResult) error {
	var dist *harness.RunResult
	for i := range rows {
		if strings.HasSuffix(rows[i].Approach, "-dist") {
			dist = &rows[i]
		}
	}
	if dist == nil {
		return fmt.Errorf("no distributed run to check")
	}
	if dist.Failed {
		return fmt.Errorf("distributed run failed: %v", dist.Err)
	}
	workers := 0
	if _, n, ok := strings.Cut(dist.Name, "workers="); ok {
		workers, _ = strconv.Atoi(n)
	}
	if workers <= 0 {
		return fmt.Errorf("cannot determine cluster size from run name %q", dist.Name)
	}

	resp, err := http.Get("http://" + addr + "/cluster/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /cluster/metrics: %s", resp.Status)
	}
	seen := make(map[string]bool)
	var sinkIn int64
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scan.Scan() {
		line := scan.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, rest, ok := strings.Cut(line, `worker="`); ok {
			if w, _, ok := strings.Cut(rest, `"`); ok {
				seen[w] = true
			}
		}
		if strings.HasPrefix(line, "cep2asp_operator_records_in_total{") &&
			strings.Contains(line, `node="sink#`) {
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				v, err := strconv.ParseFloat(line[i+1:], 64)
				if err != nil {
					return fmt.Errorf("unparseable sample %q: %v", line, err)
				}
				sinkIn += int64(v)
			}
		}
	}
	if err := scan.Err(); err != nil {
		return err
	}
	for i := 0; i < workers; i++ {
		if !seen[strconv.Itoa(i)] {
			return fmt.Errorf("worker %d missing from /cluster/metrics (saw %d worker labels)", i, len(seen))
		}
	}
	if sinkIn != dist.Matches {
		return fmt.Errorf("match counters disagree: /cluster/metrics sink ingress sums to %d, run reported %d matches", sinkIn, dist.Matches)
	}
	return nil
}

// checkReconnects verifies the transient tier of network fault tolerance
// end to end: after a distsmoke run under reset/delay chaos, the cluster
// must have healed at least min faults by transparent reconnect
// (cep2asp_net_reconnects_total summed across workers) while the job
// itself completed with ZERO restarts — proving the faults were absorbed
// in place rather than escalated to checkpoint recovery.
func checkReconnects(addr string, rows []harness.RunResult, min int) error {
	var dist *harness.RunResult
	for i := range rows {
		if strings.HasSuffix(rows[i].Approach, "-dist") {
			dist = &rows[i]
		}
	}
	if dist == nil {
		return fmt.Errorf("no distributed run to check")
	}
	if dist.Failed {
		return fmt.Errorf("distributed run failed: %v", dist.Err)
	}
	if dist.Restarts != 0 {
		return fmt.Errorf("job restarted %d time(s): the transient fault escalated instead of healing by reconnect", dist.Restarts)
	}
	resp, err := http.Get("http://" + addr + "/cluster/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /cluster/metrics: %s", resp.Status)
	}
	var reconnects int64
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scan.Scan() {
		line := scan.Text()
		if !strings.HasPrefix(line, "cep2asp_net_reconnects_total") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				return fmt.Errorf("unparseable sample %q: %v", line, err)
			}
			reconnects += int64(v)
		}
	}
	if err := scan.Err(); err != nil {
		return err
	}
	if reconnects < int64(min) {
		return fmt.Errorf("cep2asp_net_reconnects_total sums to %d, want >= %d: the chaos fault never fired or healing bypassed the counter", reconnects, min)
	}
	return nil
}

// opsCSVPath derives the per-operator CSV path from the results path:
// results.csv -> results_operators.csv.
func opsCSVPath(path string) string {
	if i := strings.LastIndex(path, "."); i > 0 {
		return path[:i] + "_operators" + path[i:]
	}
	return path + "_operators.csv"
}

func printTable2() {
	fmt.Println("=== Table 2: operator support ===")
	fmt.Print(harness.Table2Support())
}

func printRows(rows []harness.RunResult) {
	fmt.Printf("%-24s %-14s %12s %12s %10s %12s %12s %12s %12s\n",
		"experiment", "approach", "tpl/s", "matches", "unique", "σo %", "lat p50", "lat p99", "avg lat")
	for _, r := range rows {
		if r.Failed {
			fmt.Printf("%-24s %-14s %s\n", r.Name, r.Approach, "FAILED: "+r.Err.Error())
			continue
		}
		fmt.Printf("%-24s %-14s %12.0f %12d %10d %12.6f %12v %12v %12v\n",
			r.Name, r.Approach, r.ThroughputTps, r.Matches, r.Unique,
			r.SelectivityPct, r.P50Latency.Round(time.Microsecond),
			r.P99Latency.Round(time.Microsecond), r.AvgLatency.Round(time.Microsecond))
	}
}

// printOperators reports the end-of-run per-operator series of each run:
// where records flowed, which operator was hot (proc p99), how far
// watermarks lagged, and where backpressure accumulated.
func printOperators(rows []harness.RunResult) {
	for _, r := range rows {
		if len(r.Operators) == 0 {
			continue
		}
		fmt.Printf("\noperators of %s/%s:\n", r.Name, r.Approach)
		fmt.Printf("  %-28s %10s %10s %8s %10s %12s %10s\n",
			"node/inst", "in", "out", "late", "partials", "proc p99", "wm lag")
		for _, o := range r.Operators {
			fmt.Printf("  %-28s %10d %10d %8d %10d %12v %10s\n",
				fmt.Sprintf("%s/%d", o.Node, o.Instance), o.In, o.Out, o.Late,
				o.Partials, time.Duration(o.ProcP99).Round(time.Microsecond),
				lagString(o))
		}
		for _, e := range r.OperatorEdges {
			if e.BlockedNanos == 0 {
				continue
			}
			fmt.Printf("  edge %s -> %s: blocked %v, %d sent\n",
				e.From, e.To, time.Duration(e.BlockedNanos).Round(time.Microsecond), e.Sent)
		}
	}
}

func lagString(o obs.OperatorSnapshot) string {
	if !o.WatermarkValid {
		return "-"
	}
	return fmt.Sprintf("%dms", o.WatermarkLagMs)
}

// printCheckpoints reports checkpoint overhead per run: how many completed,
// the largest serialized snapshot, and the worst alignment stall.
func printCheckpoints(rows []harness.RunResult) {
	fmt.Println("\ncheckpoint overhead:")
	for _, r := range rows {
		if r.Checkpoints == 0 {
			continue
		}
		fmt.Printf("  %-24s %-14s %4d checkpoints, max snapshot %6.1f KB, max align pause %v\n",
			r.Name, r.Approach, r.Checkpoints, float64(r.CheckpointBytes)/1e3,
			r.CheckpointPause.Round(time.Microsecond))
	}
}

// printSupervision reports recovery activity per supervised run: restarts
// performed and poison records dead-lettered.
func printSupervision(rows []harness.RunResult) {
	fmt.Println("\nsupervision:")
	for _, r := range rows {
		status := "completed"
		if r.Failed {
			status = "failed: " + r.Err.Error()
		}
		fmt.Printf("  %-24s %-14s %d restarts, %d dead letters, %s\n",
			r.Name, r.Approach, r.Restarts, r.DeadLetters, status)
	}
}

// printOverload reports bounded-state accounting for runs that shed state
// or ran under the memory admission controller; silent for all others.
func printOverload(rows []harness.RunResult) {
	var any bool
	for _, r := range rows {
		if r.ShedRecords > 0 || r.PeakHeapBytes > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Println("\noverload accounting:")
	for _, r := range rows {
		if r.ShedRecords == 0 && r.PeakHeapBytes == 0 {
			continue
		}
		fmt.Printf("  %-24s %-14s shed %d records, peak state %d records, peak heap %.1f MB, recall ≥ %.4g\n",
			r.Name, r.Approach, r.ShedRecords, r.PeakStateRecords, float64(r.PeakHeapBytes)/1e6, r.RecallEstimate)
		for _, a := range r.QualityActions {
			fmt.Printf("    quality: %s\n", a)
		}
	}
}

func printResources(rows []harness.RunResult) {
	fmt.Println("\nresource usage (peaks):")
	for _, r := range rows {
		if len(r.Resources) == 0 {
			continue
		}
		heap, cpu := metrics.Peak(r.Resources)
		var peakState int64
		for _, smp := range r.Resources {
			if smp.State > peakState {
				peakState = smp.State
			}
		}
		fmt.Printf("  %-24s %-14s peak heap %6.1f MB, peak CPU %5.1f%%, peak state %d, %d samples\n",
			r.Name, r.Approach, float64(heap)/1e6, cpu, peakState, len(r.Resources))
		printSeries(r.Resources)
	}
}

// printSeries renders a compact memory-over-time sparkline-style table.
func printSeries(samples []metrics.Sample) {
	if len(samples) == 0 {
		return
	}
	// Up to 8 evenly spaced points.
	step := len(samples) / 8
	if step == 0 {
		step = 1
	}
	var idxs []int
	for i := 0; i < len(samples); i += step {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	fmt.Print("    t(ms)/heap(MB)/cpu%/state:")
	for _, i := range idxs {
		s := samples[i]
		fmt.Printf("  %d/%.0f/%.0f/%d", s.At.Milliseconds(), float64(s.HeapBytes)/1e6, s.CPUPct, s.State)
	}
	fmt.Println()
}
