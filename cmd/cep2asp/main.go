// Command cep2asp translates PSL patterns into ASP query plans and
// optionally runs them against synthetic workloads.
//
// Usage:
//
//	cep2asp [flags] <pattern.psl | ->
//	echo 'PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 15 MIN' | cep2asp -
//
// Flags select the execution mode (-fcep) and optimizations (-o1, -o2,
// -o3 with -parallelism), print the plan (-explain, the default), or run
// the pattern against generated traffic/air-quality data (-run).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cep2asp"
)

func main() {
	var (
		o1          = flag.Bool("o1", false, "use interval joins (optimization O1)")
		o2          = flag.Bool("o2", false, "use aggregation for iterations (optimization O2)")
		o3          = flag.Bool("o3", false, "partition by equi-join keys (optimization O3)")
		auto        = flag.Bool("auto", false, "let the advisor pick optimizations from measured stream statistics")
		chain       = flag.Bool("chain", false, "fuse pushed-down filters into source edges (operator chaining)")
		parallelism = flag.Int("parallelism", 4, "task slots for partitioned operators (with -o3/-auto)")
		fcep        = flag.Bool("fcep", false, "use the single-operator NFA baseline instead of the mapping")
		run         = flag.Bool("run", false, "run the pattern against synthetic data and report metrics")
		sensors     = flag.Int("sensors", 50, "synthetic sensors per stream (with -run)")
		minutes     = flag.Int("minutes", 240, "synthetic stream duration in minutes (with -run)")
		seed        = flag.Int64("seed", 1, "workload seed (with -run)")
		dataCSV     = flag.String("data", "", "CSV file with the input events (type,id,lat,lon,ts,value); overrides the synthetic generators")
		maxPrint    = flag.Int("matches", 5, "matches to print (with -run)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cep2asp [flags] <pattern.psl | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := readPattern(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pattern, err := cep2asp.Parse(src)
	if err != nil {
		fatal(err)
	}

	opts := cep2asp.Options{
		UseIntervalJoin: *o1,
		UseAggregation:  *o2,
		UsePartitioning: *o3,
		Parallelism:     *parallelism,
	}
	q, v := cep2asp.GenerateQnV(*sensors, *minutes, *seed)
	pm10, pm25, temp, hum := cep2asp.GenerateAirQuality(*sensors, *minutes, *seed)
	streams := map[string][]cep2asp.Event{
		"QnVQuantity": q, "QnVVelocity": v,
		"PM10": pm10, "PM25": pm25, "Temp": temp, "Hum": hum,
	}
	measured := cep2asp.MeasureStats(streams)
	if *auto {
		opts = cep2asp.Advise(pattern, measured, *parallelism)
		fmt.Printf("advisor selected: %s\n\n", opts)
	}
	if !opts.UseIntervalJoin {
		freqs := make(map[string]float64, len(measured))
		for name, st := range measured {
			freqs[name] = st.Frequency
		}
		if w := cep2asp.CheckCompleteness(pattern, freqs); w != "" {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
	}
	var plan *cep2asp.Plan
	if *fcep {
		plan, err = cep2asp.TranslateFCEP(pattern, opts)
	} else {
		plan, err = cep2asp.Translate(pattern, opts)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Println("Pattern:")
	fmt.Println(indent(pattern.String()))
	fmt.Println("\nPlan:")
	fmt.Print(plan.Explain())

	if !*run {
		return
	}

	job := cep2asp.NewJob(pattern).WithOptions(opts)
	if *fcep {
		job.UseFCEP()
	}
	if *chain {
		job.ChainOperators()
	}
	needed := map[string]bool{}
	for _, l := range pattern.Leaves() {
		needed[l.TypeName] = true
	}
	if *dataCSV != "" {
		fmt.Printf("\nRunning against %s...\n", *dataCSV)
		events, err := cep2asp.ReadCSVFile(*dataCSV)
		if err != nil {
			fatal(err)
		}
		byName := map[string][]cep2asp.Event{}
		for _, e := range events {
			// Group rows by type name; per-type order is preserved.
			byName[typeNameOf(e)] = append(byName[typeNameOf(e)], e)
		}
		for name := range needed {
			evs, ok := byName[name]
			if !ok {
				fatal(fmt.Errorf("CSV file has no events of type %q", name))
			}
			job.AddStream(name, evs)
		}
	} else {
		fmt.Printf("\nRunning against synthetic data (%d sensors, %d minutes, seed %d)...\n",
			*sensors, *minutes, *seed)
		for name, evs := range streams {
			if needed[name] {
				job.AddStream(name, evs)
			}
		}
		for name := range needed {
			if _, ok := streams[name]; !ok {
				fatal(fmt.Errorf("no synthetic generator for event type %q; built-in types: QnVQuantity, QnVVelocity, PM10, PM25, Temp, Hum", name))
			}
		}
	}

	stats, err := job.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("events:      %d\n", stats.Events)
	fmt.Printf("elapsed:     %v\n", stats.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput:  %.0f tpl/s\n", stats.ThroughputTps)
	fmt.Printf("matches:     %d (%d unique)\n", stats.Total, stats.Unique)
	fmt.Printf("latency:     avg %v, max %v\n",
		stats.AvgLatency.Round(time.Microsecond), stats.MaxLatency.Round(time.Microsecond))
	for i, m := range stats.Matches {
		if i >= *maxPrint {
			fmt.Printf("... and %d more\n", len(stats.Matches)-*maxPrint)
			break
		}
		fmt.Println("  ", m)
	}
}

func readPattern(arg string) (string, error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}

// typeNameOf resolves an event's registered type name.
func typeNameOf(e cep2asp.Event) string { return cep2asp.TypeNameOf(e.Type) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cep2asp:", err)
	os.Exit(1)
}
