package cep2asp

import (
	"context"
	"sort"
	"testing"
	"time"
)

// The public checkpointing surface: a Job running with a CheckpointSpec must
// produce the same matches as an unadorned run, and a second Job pointed at
// the same store with Restore set must resume (or, with nothing persisted,
// start fresh) and again produce the identical match set.
func TestJobWithCheckpointing(t *testing.T) {
	pattern, err := Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 80 AND v.value <= 20 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	q, v := GenerateQnV(20, 120, 1)

	run := func(cfg EngineConfig) []string {
		stats, err := NewJob(pattern).
			WithEngine(cfg).
			AddStream("QnVQuantity", q).
			AddStream("QnVVelocity", v).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(stats.Matches))
		for i, m := range stats.Matches {
			keys[i] = m.Key()
		}
		sort.Strings(keys)
		return keys
	}

	want := run(EngineConfig{})
	if len(want) == 0 {
		t.Fatal("expected matches")
	}

	store, err := NewFileCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got := run(EngineConfig{Checkpoint: &CheckpointSpec{Store: store, Interval: time.Millisecond}})
	if len(got) != len(want) {
		t.Fatalf("checkpointed run: %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpointed run diverged at %d: %q vs %q", i, got[i], want[i])
		}
	}

	restored := run(EngineConfig{Checkpoint: &CheckpointSpec{Store: store, Restore: true}})
	if len(restored) != len(want) {
		t.Fatalf("restored run: %d matches, want %d", len(restored), len(want))
	}
	for i := range want {
		if restored[i] != want[i] {
			t.Fatalf("restored run diverged at %d: %q vs %q", i, restored[i], want[i])
		}
	}
}
