package cep2asp_test

import (
	"context"
	"fmt"
	"log"

	"cep2asp"
)

// ExampleParse shows the pattern specification language and the plan a
// pattern translates into.
func ExampleParse() {
	pattern, err := cep2asp.Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 90 AND v.value <= 10 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := cep2asp.Translate(pattern, cep2asp.Options{
		UsePartitioning: true,
		Parallelism:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Explain())
	// Output:
	// -- FASP-O3 plan for pattern (unnamed)
	// WindowJoin WITHIN 15 MINUTES SLIDE 1 MINUTE (ordered, partitioned by [0].id==[0].id, θ: q.id == v.id)
	//   Scan QnVQuantity AS q WHERE q.value >= 90
	//   Scan QnVVelocity AS v WHERE v.value <= 10
}

// ExampleNewJob runs a pattern over deterministic synthetic data.
func ExampleNewJob() {
	pattern, err := cep2asp.Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 95 AND v.value <= 5 AND q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		log.Fatal(err)
	}
	quantity, velocity := cep2asp.GenerateQnV(20, 120, 7)
	stats, err := cep2asp.NewJob(pattern).
		AddStream("QnVQuantity", quantity).
		AddStream("QnVVelocity", velocity).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tuples, %d matches\n", stats.Events, stats.Unique)
	// Output:
	// 4800 tuples, 67 matches
}

// ExampleEvaluateReference demonstrates the executable formal semantics —
// the oracle every execution path is tested against.
func ExampleEvaluateReference() {
	pattern, err := cep2asp.Parse(`
		PATTERN SEQ(ExT1 a, !ExT2 x, ExT3 c)
		WITHIN 10 MINUTES`)
	if err != nil {
		log.Fatal(err)
	}
	t1 := cep2asp.RegisterType("ExT1")
	t2 := cep2asp.RegisterType("ExT2")
	t3 := cep2asp.RegisterType("ExT3")
	events := []cep2asp.Event{
		{Type: t1, ID: 1, TS: 0 * cep2asp.Minute},
		{Type: t2, ID: 1, TS: 2 * cep2asp.Minute}, // blocker
		{Type: t3, ID: 1, TS: 4 * cep2asp.Minute},
		{Type: t1, ID: 1, TS: 5 * cep2asp.Minute},
		{Type: t3, ID: 1, TS: 7 * cep2asp.Minute},
	}
	matches := cep2asp.EvaluateReference(pattern, events)
	for _, m := range matches {
		fmt.Printf("match: T1@%dmin -> T3@%dmin\n",
			m.Events[0].TS/cep2asp.Minute, m.Events[1].TS/cep2asp.Minute)
	}
	// Output:
	// match: T1@5min -> T3@7min
}

// ExampleAdvise lets the advisor pick optimizations from measured stream
// statistics.
func ExampleAdvise() {
	pattern, err := cep2asp.Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.id == v.id
		WITHIN 15 MINUTES`)
	if err != nil {
		log.Fatal(err)
	}
	opts := cep2asp.Advise(pattern, map[string]cep2asp.StreamStats{
		"QnVQuantity": {Frequency: 10},
		"QnVVelocity": {Frequency: 10},
	}, 8)
	fmt.Println(opts)
	// Output:
	// FASP-O1+O3
}
