// Air-quality alerting with a negated sequence — the operator FlinkCEP
// evaluates retrospectively but the mapping handles with a streaming UDF
// (§4.1): a high particulate reading followed by high humidity with NO
// intervening temperature rise (which would disperse the particles).
//
// The example contrasts both execution paths on the same data and verifies
// they detect the identical alert set, then prints the alerts.
//
//	go run ./examples/airquality
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cep2asp"
)

func main() {
	pattern, err := cep2asp.Parse(`
		PATTERN SEQ(PM10 p, !Temp t, Hum h)
		WHERE p.value >= 85 AND h.value >= 85 AND t.value >= 60
		  AND p.id == h.id AND t.id == p.id
		WITHIN 30 MINUTES
		RETURN p.id, p.value AS pm10, h.value AS humidity`)
	if err != nil {
		log.Fatal(err)
	}

	pm10, _, temp, hum := cep2asp.GenerateAirQuality(150, 720, 11)
	streams := map[string][]cep2asp.Event{"PM10": pm10, "Temp": temp, "Hum": hum}

	run := func(label string, configure func(*cep2asp.Job)) *cep2asp.RunStats {
		job := cep2asp.NewJob(pattern)
		configure(job)
		for name, evs := range streams {
			job.AddStream(name, evs)
		}
		stats, err := job.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.0f tpl/s, %4d alerts, latency avg %v\n",
			label, stats.ThroughputTps, stats.Unique, stats.AvgLatency.Round(time.Microsecond))
		return stats
	}

	fmt.Println("negated sequence on three heterogeneous sensor streams:")
	fasp := run("decomposed mapping", func(*cep2asp.Job) {})
	faspO1 := run("mapping + O1", func(j *cep2asp.Job) {
		j.WithOptions(cep2asp.Options{UseIntervalJoin: true})
	})
	fcep := run("unary CEP operator", func(j *cep2asp.Job) { j.UseFCEP() })

	if fasp.Unique != fcep.Unique || fasp.Unique != faspO1.Unique {
		log.Fatalf("alert sets diverge: %d / %d / %d", fasp.Unique, faspO1.Unique, fcep.Unique)
	}
	fmt.Printf("\nall approaches agree on %d alerts; first few:\n", fasp.Unique)
	for i, m := range fasp.Matches {
		if i == 6 {
			break
		}
		vals := cep2asp.Project(pattern, m)
		fmt.Printf("  station %3.0f: PM10 %5.1f µg/m³ at minute %4d, humidity %4.1f%% at minute %4d\n",
			vals[0], vals[1], m.Events[0].TS/cep2asp.Minute, vals[2], m.Events[1].TS/cep2asp.Minute)
	}
}
