// Dashboard: several continuous patterns sharing one set of input streams
// in a single dataflow — the "workloads of both paradigms in a single
// system" capability that motivates hybrid stream processing (paper §1).
// Each input type is read once and fanned out to every pattern's pipeline;
// the advisor picks each pattern's optimizations automatically from
// measured stream statistics (the paper's future-work proposal, §7).
//
//	go run ./examples/dashboard
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cep2asp"
)

func main() {
	// Shared synthetic city feeds: traffic plus air quality.
	quantity, velocity := cep2asp.GenerateQnV(80, 360, 17)
	pm10, pm25, _, _ := cep2asp.GenerateAirQuality(80, 360, 17)
	streams := map[string][]cep2asp.Event{
		"QnVQuantity": quantity,
		"QnVVelocity": velocity,
		"PM10":        pm10,
		"PM25":        pm25,
	}
	stats := cep2asp.MeasureStats(streams)

	patterns := []struct {
		name string
		src  string
	}{
		{"congestion", `
			PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 90 AND v.value <= 10 AND q.id == v.id
			WITHIN 15 MINUTES`},
		{"smog episode", `
			PATTERN AND(PM10 c, PM25 f)
			WHERE c.value >= 90 AND f.value >= 90 AND c.id == f.id
			WITHIN 10 MINUTES`},
		{"pollution after jam", `
			PATTERN SEQ(QnVQuantity q, PM10 p)
			WHERE q.value >= 92 AND p.value >= 92 AND q.id == p.id
			WITHIN 30 MINUTES`},
		{"sustained slowdown", `
			PATTERN ITER(QnVVelocity v, 3)
			WHERE v[i].id == v[i+1].id AND v[i].value > v[i+1].value AND v.value <= 20
			WITHIN 20 MINUTES`},
	}

	job := cep2asp.NewMultiJob()
	for name, evs := range streams {
		job.AddStream(name, evs)
	}
	var names []string
	for _, p := range patterns {
		pat, err := cep2asp.Parse(p.src)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		opts := cep2asp.Advise(pat, stats, 4)
		job.Add(pat, opts)
		names = append(names, p.name)
	}

	results, err := job.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("one dataflow, %d shared input tuples, %d concurrent patterns (%.0f tpl/s overall)\n\n",
		results[0].Events, len(results), results[0].ThroughputTps)
	fmt.Printf("%-22s %10s %12s %28s\n", "pattern", "alerts", "avg latency", "advised plan")
	for i, r := range results {
		fmt.Printf("%-22s %10d %12v %28s\n",
			names[i], r.Unique, r.AvgLatency.Round(time.Microsecond), r.Plan.Opts)
	}
}
