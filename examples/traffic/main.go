// Traffic congestion monitoring — the paper's motivating IoT scenario —
// with an iteration pattern and the full optimization stack: a road segment
// whose measured speed keeps falling across four consecutive readings.
//
// The example shows the decomposed plan (Explain), runs it partitioned by
// sensor id across 8 task slots (optimization O3) with interval joins
// (optimization O1), and prints per-segment alarm counts.
//
//	go run ./examples/traffic
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"cep2asp"
)

func main() {
	pattern, err := cep2asp.Parse(`
		-- speed strictly decreasing across four readings of one segment
		PATTERN ITER(QnVVelocity v, 4)
		WHERE v[i].value > v[i+1].value
		  AND v[i].id == v[i+1].id
		  AND v.value <= 18
		WITHIN 20 MINUTES`)
	if err != nil {
		log.Fatal(err)
	}

	opts := cep2asp.Options{
		UseIntervalJoin: true, // O1: content-based windows, no duplicates
		UsePartitioning: true, // O3: hash by the pairwise id equality
		Parallelism:     8,
	}
	plan, err := cep2asp.Translate(pattern, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Explain())

	_, velocity := cep2asp.GenerateQnV(200, 360, 7)
	stats, err := cep2asp.NewJob(pattern).
		WithOptions(opts).
		AddStream("QnVVelocity", velocity).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d velocity tuples in %v (%.0f tpl/s), %d slowdown alarms\n\n",
		stats.Events, stats.Elapsed.Round(time.Millisecond), stats.ThroughputTps, stats.Unique)

	// Aggregate alarms per road segment.
	perSegment := map[int64]int{}
	for _, m := range stats.Matches {
		perSegment[m.Events[0].ID]++
	}
	type seg struct {
		id int64
		n  int
	}
	var segs []seg
	for id, n := range perSegment {
		segs = append(segs, seg{id, n})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n > segs[j].n })
	fmt.Println("most congested segments:")
	for i, s := range segs {
		if i == 8 {
			break
		}
		fmt.Printf("  segment %3d: %3d sustained slowdowns\n", s.id, s.n)
	}
}
