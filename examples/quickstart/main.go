// Quickstart: parse a pattern, run it over synthetic traffic data, print
// the matches.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cep2asp"
)

func main() {
	// A congestion motif: many cars counted, followed within 15 minutes by
	// a low average speed at the same road segment.
	pattern, err := cep2asp.Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 90 AND v.value <= 10 AND q.id == v.id
		WITHIN 15 MINUTES
		RETURN q.id, q.value AS cars, v.value AS speed`)
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic data: 50 road-segment sensors reporting once per minute
	// for four hours (the original mCLOUD data is no longer available).
	quantity, velocity := cep2asp.GenerateQnV(50, 240, 42)

	stats, err := cep2asp.NewJob(pattern).
		AddStream("QnVQuantity", quantity).
		AddStream("QnVVelocity", velocity).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d tuples in %v (%.0f tpl/s)\n",
		stats.Events, stats.Elapsed.Round(time.Millisecond), stats.ThroughputTps)
	fmt.Printf("found %d congestion matches (avg detection latency %v)\n\n",
		stats.Unique, stats.AvgLatency.Round(time.Microsecond))

	for i, m := range stats.Matches {
		if i == 10 {
			fmt.Printf("... and %d more\n", len(stats.Matches)-10)
			break
		}
		vals := cep2asp.Project(pattern, m)
		fmt.Printf("segment %3.0f: %5.1f cars/min at minute %3d, speed %4.1f km/h at minute %3d\n",
			vals[0], vals[1], m.Events[0].TS/cep2asp.Minute, vals[2], m.Events[1].TS/cep2asp.Minute)
	}
}
