// Comparison: the paper's headline experiment in miniature. One keyed
// sequence pattern runs under every execution strategy — the unary CEP
// operator (FlinkCEP analogue) and the decomposed mapping with each
// optimization — on identical data, printing a throughput/latency table
// and verifying all strategies detect the same matches.
//
//	go run ./examples/comparison
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cep2asp"
)

func main() {
	pattern, err := cep2asp.Parse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v, PM10 p)
		WHERE q.id == v.id AND v.id == p.id
		  AND q.value >= 85 AND v.value <= 15 AND p.value >= 85
		WITHIN 15 MINUTES`)
	if err != nil {
		log.Fatal(err)
	}

	quantity, velocity := cep2asp.GenerateQnV(64, 480, 3)
	pm10, _, _, _ := cep2asp.GenerateAirQuality(64, 480, 3)

	type strategy struct {
		label string
		fcep  bool
		opts  cep2asp.Options
	}
	strategies := []strategy{
		{"FCEP (unary NFA operator)", true, cep2asp.Options{}},
		{"FCEP + keyed state", true, cep2asp.Options{UsePartitioning: true, Parallelism: 8}},
		{"FASP (decomposed joins)", false, cep2asp.Options{}},
		{"FASP-O1 (interval joins)", false, cep2asp.Options{UseIntervalJoin: true}},
		{"FASP-O3 (partitioned)", false, cep2asp.Options{UsePartitioning: true, Parallelism: 8}},
		{"FASP-O1+O3", false, cep2asp.Options{UseIntervalJoin: true, UsePartitioning: true, Parallelism: 8}},
	}

	fmt.Printf("%-28s %12s %10s %12s %12s\n", "strategy", "tpl/s", "matches", "avg lat", "max lat")
	var baseline int64 = -1
	for _, s := range strategies {
		job := cep2asp.NewJob(pattern).
			WithOptions(s.opts).
			AddStream("QnVQuantity", quantity).
			AddStream("QnVVelocity", velocity).
			AddStream("PM10", pm10)
		if s.fcep {
			job.UseFCEP()
		}
		stats, err := job.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.0f %10d %12v %12v\n",
			s.label, stats.ThroughputTps, stats.Unique,
			stats.AvgLatency.Round(time.Microsecond), stats.MaxLatency.Round(time.Microsecond))
		if baseline == -1 {
			baseline = stats.Unique
		} else if stats.Unique != baseline {
			log.Fatalf("%s found %d matches, baseline found %d — semantic divergence",
				s.label, stats.Unique, baseline)
		}
	}
	fmt.Printf("\nall %d strategies agree on %d unique matches\n", len(strategies), baseline)
}
