package cep2asp

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// shedJob builds a tightly budgeted Shed-policy job over the given
// streams, in FCEP or decomposed mode, with the chosen victim strategy.
func shedJob(t *testing.T, pattern string, streams map[string][]Event, fcep bool, budget int64, strat ShedStrategy) *RunStats {
	t.Helper()
	p, err := Parse(pattern)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJob(p)
	for name, evs := range streams {
		j.AddStream(name, evs)
	}
	if fcep {
		j.UseFCEP()
	}
	if budget > 0 {
		j.WithStateBudget(budget, 0).
			WithOverloadPolicy(OverloadShed).
			WithShedStrategy(strat)
	}
	stats, err := j.Run(context.Background())
	if err != nil {
		t.Fatalf("Run(%s, budget=%d): %v", pattern, budget, err)
	}
	return stats
}

// TestRecallEstimateLowerBound checks the recall accounting contract on
// seeded workloads across the operator spectrum — SEQ, AND, ITER and
// NSEQ, in both engine modes and under both victim strategies: the
// reported RecallEstimate must never over-report the recall actually
// achieved against the unbudgeted reference run, and an unshed run must
// report estimate 1.
func TestRecallEstimateLowerBound(t *testing.T) {
	q, v := GenerateQnV(4, 120, 11)
	pm10, _, _, _ := GenerateAirQuality(4, 120, 13)
	qnv := map[string][]Event{"QnVQuantity": q, "QnVVelocity": v}
	nseqStreams := map[string][]Event{"QnVQuantity": q, "QnVVelocity": v, "PM10": pm10}

	cases := []struct {
		name    string
		pattern string
		streams map[string][]Event
		budget  int64
		noFCEP  bool // conjunction is decomposed-only (paper Table 2)
	}{
		{"SEQ", `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 WITHIN 30 MINUTES`, qnv, 48, false},
		{"AND", `PATTERN AND(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 30 AND v.value <= 70 WITHIN 15 MIN`, qnv, 32, true},
		{"ITER", `PATTERN ITER(QnVVelocity v, 3)
			WHERE v.value <= 40 WITHIN 15 MINUTES`, map[string][]Event{"QnVVelocity": v}, 32, false},
		{"NSEQ", `PATTERN SEQ(QnVQuantity q, !PM10 x, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND x.value >= 60 WITHIN 15 MIN`, nseqStreams, 32, false},
	}

	for _, tc := range cases {
		for _, fcep := range []bool{true, false} {
			if fcep && tc.noFCEP {
				continue
			}
			mode := "decomposed"
			if fcep {
				mode = "fcep"
			}
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				full := shedJob(t, tc.pattern, tc.streams, fcep, 0, ShedOldestFirst)
				if full.RecallEstimate != 1 {
					t.Errorf("unbudgeted run: RecallEstimate %g, want 1", full.RecallEstimate)
				}
				if full.Unique == 0 {
					t.Skip("reference run produced no matches at this seed")
				}
				for _, strat := range []ShedStrategy{ShedOldestFirst, ShedPatternAware} {
					shed := shedJob(t, tc.pattern, tc.streams, fcep, tc.budget, strat)
					if shed.RecallEstimate < 0 || shed.RecallEstimate > 1 {
						t.Fatalf("%v: RecallEstimate %g outside [0, 1]", strat, shed.RecallEstimate)
					}
					achieved := float64(shed.Unique) / float64(full.Unique)
					if shed.RecallEstimate > achieved+1e-9 {
						t.Fatalf("%v: RecallEstimate %g over-reports achieved recall %g (unique %d of %d, lost bound %g)",
							strat, shed.RecallEstimate, achieved, shed.Unique, full.Unique, shed.RecallLostBound)
					}
					if shed.ShedRecords > 0 && shed.RecallEstimate >= 1 {
						t.Fatalf("%v: shed %d records but RecallEstimate stayed %g",
							strat, shed.ShedRecords, shed.RecallEstimate)
					}
				}
			})
		}
	}
}

// TestPatternAwareRetainsAtLeastOldestFacade checks the end-to-end gate
// property on a seeded workload: at an equal budget the pattern-aware
// strategy retains at least as many unique matches as oldest-first, all
// of them from the unbudgeted match set.
func TestPatternAwareRetainsAtLeastOldestFacade(t *testing.T) {
	q, v := GenerateQnV(10, 180, 11)
	streams := map[string][]Event{"QnVQuantity": q, "QnVVelocity": v}
	pattern := `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 40 AND v.value <= 60 WITHIN 30 MINUTES`

	full := shedJob(t, pattern, streams, true, 0, ShedOldestFirst)
	oldest := shedJob(t, pattern, streams, true, 48, ShedOldestFirst)
	aware := shedJob(t, pattern, streams, true, 48, ShedPatternAware)

	if oldest.ShedRecords == 0 || aware.ShedRecords == 0 {
		t.Fatalf("budget never triggered shedding (oldest %d, aware %d)",
			oldest.ShedRecords, aware.ShedRecords)
	}
	if aware.Unique < oldest.Unique {
		t.Fatalf("pattern-aware retained %d unique matches, oldest-first %d",
			aware.Unique, oldest.Unique)
	}
	fullSet := matchSet(full)
	for k := range matchSet(aware) {
		if !fullSet[k] {
			t.Fatalf("pattern-aware fabricated match %s absent from unbudgeted run", k)
		}
	}
}

// TestWithQualityHoldsMinRecall runs a demanding MinRecall against a
// workload that must shed: the quality controller has to notice the
// recall estimate dipping and switch the victim strategy to
// pattern-aware at runtime, recording the decision in QualityActions.
func TestWithQualityHoldsMinRecall(t *testing.T) {
	// Throttled sources keep the run in flight across many controller
	// polls (10ms cadence), so the strategy switch lands mid-execution —
	// the sustained-overload shape the controller is built for.
	q, v := GenerateQnV(10, 150, 11)
	p, err := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 40 AND v.value <= 60 WITHIN 30 MINUTES`)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := NewJob(p).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		UseFCEP().
		WithSourceRate(15000).
		WithStateBudget(24, 0).
		WithOverloadPolicy(OverloadShed).
		WithQuality(QualitySpec{MinRecall: 0.99}).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShedRecords == 0 {
		t.Fatal("workload never shed; the quality demand was never exercised")
	}
	var switched bool
	for _, a := range stats.QualityActions {
		if strings.HasPrefix(a, "shed-pattern-aware") {
			switched = true
		}
	}
	if !switched {
		t.Fatalf("controller never switched to pattern-aware shedding; actions: %v", stats.QualityActions)
	}
	if stats.RecallEstimate >= 1 {
		t.Fatalf("shed run reports RecallEstimate %g", stats.RecallEstimate)
	}
}

// TestWithQualityInfeasibleFailsFast pins the structured error contract:
// demands no controller decision could satisfy abort before execution.
func TestWithQualityInfeasibleFailsFast(t *testing.T) {
	q, v := GenerateQnV(2, 10, 1)
	p, err := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	if err != nil {
		t.Fatal(err)
	}
	// MinRecall under the Fail policy with a budget: nothing to trade.
	_, err = NewJob(p).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithStateBudget(16, 0).
		WithQuality(QualitySpec{MinRecall: 0.9}).
		Run(context.Background())
	var inf *QualityInfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want *QualityInfeasibleError", err)
	}

	// Quality demands drive the plain execution path only.
	_, err = NewJob(p).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithRestartPolicy(RestartPolicy{MaxRestarts: 1}).
		WithQuality(QualitySpec{MinRecall: 0.5}).
		Run(context.Background())
	if err == nil {
		t.Fatal("WithQuality+WithRestartPolicy did not error")
	}

	// Malformed demand.
	_, err = NewJob(p).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithQuality(QualitySpec{MinRecall: 1.5}).
		Run(context.Background())
	if err == nil {
		t.Fatal("MinRecall above 1 did not error")
	}
}

// TestWithShedStrategyValidation pins the builder error path.
func TestWithShedStrategyValidation(t *testing.T) {
	q, v := GenerateQnV(2, 10, 1)
	p, err := Parse(`PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 5 MIN`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewJob(p).
		AddStream("QnVQuantity", q).
		AddStream("QnVVelocity", v).
		WithShedStrategy(ShedStrategy(42)).
		Run(context.Background())
	if err == nil {
		t.Fatal("unknown shed strategy did not error")
	}
	if s, perr := ParseShedStrategy("pattern"); perr != nil || s != ShedPatternAware {
		t.Fatalf("ParseShedStrategy(pattern) = %v, %v", s, perr)
	}
	if _, perr := ParseShedStrategy("bogus"); perr == nil {
		t.Fatal("ParseShedStrategy(bogus) did not error")
	}
}
