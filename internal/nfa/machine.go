package nfa

import (
	"math"
	"sort"

	"cep2asp/internal/event"
	"cep2asp/internal/overload"
)

// Emit receives completed matches. The match's event time for downstream
// processing is its last constituent's timestamp.
type Emit func(m *event.Match)

// Machine executes a Program over a single (unioned) input stream. It is
// the paper's unary CEP operator: all state — partial matches per prefix
// state, pending full matches awaiting negation resolution, and blocker
// buffers — lives in this one operator (§5.1.2).
//
// Machine is not safe for concurrent use; the engine serializes calls per
// operator instance.
type Machine struct {
	prog   *Program
	groups map[int64]*group
	// OnState, when set, receives buffered-element deltas for the state
	// budget accounting (the FlinkCEP memory-exhaustion analogue).
	OnState func(delta int64)

	stateCount int64
	elems      int64 // constituent events across all buffered units

	// Insertion-time state cap (SetBudget). capFn/lowFn are consulted
	// before every partial/pending insert so the embedding operator can
	// share one budget between its own buffers and the machine.
	capFn, lowFn func() int64
	onShed       func(dropped int64)

	// Pattern-aware shedding state: the completion-score priority heap
	// over live partials and pendings (maintained only while armed, so
	// the oldest-first and unbudgeted paths pay nothing), live per-type
	// arrival rates, the event-time clock, and the accumulated upper
	// bound on matches lost to eviction.
	patternAware bool
	heap         *overload.ValueHeap
	rates        map[event.Type]*overload.Rate
	curTS        event.Time
	lost         float64
}

type partial struct {
	events  []event.Event
	firstTS event.Time
	// stage is the index of the last accepted stage; fixed at creation
	// (advancing copies into a new partial, it never mutates this one).
	stage int
	item  *overload.HeapItem
	// dead marks a unit shed under state pressure. Tombstoning instead of
	// slice surgery keeps shedTo safe to call mid-OnEvent, while that call
	// still iterates the stage slices; compaction happens lazily at the
	// next OnEvent/OnWatermark pass.
	dead bool
}

type pendingMatch struct {
	events []event.Event
	lastTS event.Time
	item   *overload.HeapItem
	dead   bool
}

type group struct {
	// partials[k] holds partial matches whose accepted prefix is stages
	// 0..k.
	partials [][]*partial
	pending  []*pendingMatch
	// blockers per negation index, sorted by timestamp.
	blockers [][]event.Event
}

// NewMachine compiles the program into an executable machine.
func NewMachine(prog *Program) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	rates := make(map[event.Type]*overload.Rate, len(prog.Stages))
	for _, st := range prog.Stages {
		if rates[st.Type] == nil {
			rates[st.Type] = overload.NewRate(0)
		}
	}
	return &Machine{prog: prog, groups: make(map[int64]*group), rates: rates}, nil
}

// SetPatternAware switches shed-victim selection between oldest-first and
// completion-score order. Enabling mid-run builds the score heap over the
// live state once; disabling drops it so the hot path pays nothing.
func (m *Machine) SetPatternAware(on bool) {
	if on == m.patternAware {
		return
	}
	m.patternAware = on
	if on {
		m.heap = &overload.ValueHeap{}
		for _, g := range m.groups {
			for k := range g.partials {
				for _, p := range g.partials[k] {
					if !p.dead {
						p.item = m.heap.Push(m.score(p.stage, p.firstTS), p)
					}
				}
			}
			for _, pm := range g.pending {
				if !pm.dead {
					pm.item = m.heap.Push(pendingScore, pm)
				}
			}
		}
		return
	}
	m.heap = nil
	for _, g := range m.groups {
		for k := range g.partials {
			for _, p := range g.partials[k] {
				p.item = nil
			}
		}
		for _, pm := range g.pending {
			pm.item = nil
		}
	}
}

// LostMatchBound returns the accumulated upper bound on matches that
// evicted state could still have produced — the numerator of the recall
// accounting. Monotone non-decreasing; only eviction raises it, normal
// expiry and consumption never do.
func (m *Machine) LostMatchBound() float64 { return m.lost }

// pendingScore is the heap rank of pending full matches: a detected
// match is certain value, shed only when no partial remains to evict.
const pendingScore = math.MaxFloat64

// score is the shedding rank of a unit whose last accepted stage is
// stage: advancement first (a unit one transition from completing emits
// matches without consuming budget, so it outranks every earlier-stage
// unit), freshness within a stage (expected qualifying arrivals left, at
// the live rate of the next required type). The rank, unlike the raw
// completion probability, keeps discriminating on dense streams where
// nearly every unit is near-certain to complete at least once.
func (m *Machine) score(stage int, firstTS event.Time) float64 {
	transLeft := len(m.prog.Stages) - 1 - stage
	timeLeft := int64(m.prog.Window) - int64(m.curTS-firstTS)
	var rate float64
	if transLeft > 0 {
		if r := m.rates[m.prog.Stages[stage+1].Type]; r != nil {
			rate = r.PerTimeUnit()
		}
	}
	return overload.CompletionValue(transLeft, timeLeft, int64(m.prog.Window), rate)
}

// lossBound bounds the matches a unit at the given stage could still have
// produced: the expected number of ordered completions — the product over
// the remaining stages of rate*timeLeft, divided by the factorial of the
// transitions left (each completion consumes one time-ordered choice per
// stage) — padded by the LossSafety factor and floored at 1. Over-counting
// is safe — it only lowers the recall estimate — but the expectation-based
// form stays finite on dense streams, where compounding per-stage safety
// pads would drown the estimate in noise.
func (m *Machine) lossBound(stage int, firstTS event.Time) float64 {
	timeLeft := int64(m.prog.Window) - int64(m.curTS-firstTS)
	if timeLeft < 0 {
		timeLeft = 0
	}
	bound := float64(overload.LossSafety)
	for j := stage + 1; j < len(m.prog.Stages); j++ {
		var rate float64
		if r := m.rates[m.prog.Stages[j].Type]; r != nil {
			rate = r.PerTimeUnit()
		}
		bound *= rate * float64(timeLeft) / float64(j-stage)
	}
	if bound < 1 {
		return 1
	}
	return bound
}

// LostEventBound bounds the matches a dropped raw input event could still
// have participated in: for every stage the event's type can fill, the
// product over the other stages of the expected qualifying arrivals in a
// full window. Grossly conservative — safe, since over-counting only
// lowers the recall estimate.
func (m *Machine) LostEventBound(e event.Event) float64 {
	var bound float64
	w := int64(m.prog.Window)
	for j, st := range m.prog.Stages {
		if st.Type != e.Type {
			continue
		}
		b := 1.0
		for i, other := range m.prog.Stages {
			if i == j {
				continue
			}
			var rate float64
			if r := m.rates[other.Type]; r != nil {
				rate = r.PerTimeUnit()
			}
			b *= overload.ExpectedArrivals(rate, w)
		}
		bound += b
	}
	return bound
}

// shedPartial tombstones a partial under state pressure, charging its
// loss bound to the recall account.
func (m *Machine) shedPartial(p *partial) {
	m.lost += m.lossBound(p.stage, p.firstTS)
	p.dead = true
	m.elems -= int64(len(p.events))
	p.events = nil
	if p.item != nil {
		m.heap.Remove(p.item)
		p.item = nil
	}
	m.addState(-1)
}

// shedPending tombstones a pending match under state pressure: at most
// one match lost.
func (m *Machine) shedPending(pm *pendingMatch) {
	m.lost++
	pm.dead = true
	m.elems -= int64(len(pm.events))
	pm.events = nil
	if pm.item != nil {
		m.heap.Remove(pm.item)
		pm.item = nil
	}
	m.addState(-1)
}

// detach removes a unit's heap presence on its normal death paths
// (expiry, consumption, resolution) — no loss is charged there.
func (m *Machine) detachPartial(p *partial) {
	if p.item != nil {
		m.heap.Remove(p.item)
		p.item = nil
	}
}

func (m *Machine) detachPending(pm *pendingMatch) {
	if pm.item != nil {
		m.heap.Remove(pm.item)
		pm.item = nil
	}
}

func (m *Machine) addState(delta int64) {
	m.stateCount += delta
	if m.OnState != nil {
		m.OnState(delta)
	}
}

// StateSize returns the current number of buffered elements (partials,
// pending matches and blockers).
func (m *Machine) StateSize() int64 { return m.stateCount }

// StateElems returns the total constituent events held across all buffered
// units — the O(1) basis for approximate byte accounting.
func (m *Machine) StateElems() int64 { return m.elems }

// SetBudget arms insertion-time state capping. Before any partial or
// pending match is stored the machine consults cap(); at or above it the
// oldest partials and pending matches are shed down to low() and reported
// through onShed. When shedding cannot free room (blockers dominate, or
// cap() <= 0 because the embedding operator's own buffers exhaust the
// budget) the incoming unit itself is dropped and counted as shed.
// Blockers are never capped or shed: losing one would resolve a negation
// as "no occurrence" and emit matches an unbudgeted run suppresses.
// Function-valued bounds let the cap track the embedder's buffer size
// dynamically. Pass nil functions to disarm.
func (m *Machine) SetBudget(capFn, lowFn func() int64, onShed func(dropped int64)) {
	m.capFn, m.lowFn, m.onShed = capFn, lowFn, onShed
}

// admit reports whether one more partial/pending unit may be stored,
// shedding oldest state first when the cap is reached. The un-budgeted
// fast path is a single nil check.
func (m *Machine) admit() bool {
	if m.capFn == nil {
		return true
	}
	max := m.capFn()
	if max > 0 && m.stateCount < max {
		return true
	}
	low := int64(0)
	if m.lowFn != nil {
		low = m.lowFn()
	}
	if low < 0 {
		low = 0
	}
	var d int64
	if m.patternAware {
		d = m.shedLowestValue(low)
	} else {
		d = m.shedTo(low)
	}
	if d > 0 && m.onShed != nil {
		m.onShed(d)
	}
	if max > 0 && m.stateCount < max {
		return true
	}
	if m.onShed != nil {
		m.onShed(1) // the incoming unit itself
	}
	return false
}

// Negated reports whether the program contains negations. Embedding
// operators must not drop raw input events of a negated program: a lost
// blocker would resolve a negation as "no occurrence" and fabricate
// matches.
func (m *Machine) Negated() bool { return len(m.prog.Negations) > 0 }

// ShedTo sheds the oldest partials and pending matches until at most
// target non-blocker units remain, returning the number dropped. Unlike
// the insertion-time cap, the count is NOT reported through the SetBudget
// onShed hook — the caller accounts it.
func (m *Machine) ShedTo(target int64) int64 { return m.shedTo(target) }

// shedTo tombstones the globally oldest partials (by firstTS) and pending
// matches (by first constituent TS) until at most target non-blocker units
// remain, returning the number dropped. Shedding only removes would-be
// matches, so a shed run's match set stays a subset of the unshed run's.
// Tombstones are compacted on the next OnEvent/OnWatermark pass over the
// affected slices.
func (m *Machine) shedTo(target int64) int64 {
	excess := m.stateCount - target
	if excess <= 0 {
		return 0
	}
	ts := make([]event.Time, 0, excess)
	for _, g := range m.groups {
		for k := range g.partials {
			for _, p := range g.partials[k] {
				if !p.dead {
					ts = append(ts, p.firstTS)
				}
			}
		}
		for _, pm := range g.pending {
			if !pm.dead {
				ts = append(ts, pm.events[0].TS)
			}
		}
	}
	if int64(len(ts)) < excess {
		excess = int64(len(ts))
	}
	if excess == 0 {
		return 0
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	cutoff := ts[excess-1] // ties shed together; may slightly undershoot target
	var dropped int64
	for _, g := range m.groups {
		for k := range g.partials {
			for _, p := range g.partials[k] {
				if !p.dead && p.firstTS <= cutoff {
					m.shedPartial(p)
					dropped++
				}
			}
		}
		for _, pm := range g.pending {
			if !pm.dead && pm.events[0].TS <= cutoff {
				m.shedPending(pm)
				dropped++
			}
		}
	}
	return dropped
}

// ShedLowestValue sheds in completion-score order until at most target
// non-blocker units remain, returning the number dropped: hopeless state
// (few transitions left in little time, at low arrival rates) goes first,
// partial matches one transition from completing go last. Falls back to
// oldest-first when pattern-aware selection is not armed. Like ShedTo,
// the count is NOT reported through the SetBudget onShed hook.
func (m *Machine) ShedLowestValue(target int64) int64 {
	if !m.patternAware {
		return m.shedTo(target)
	}
	return m.shedLowestValue(target)
}

func (m *Machine) shedLowestValue(target int64) int64 {
	excess := m.stateCount - target
	var dropped int64
	for dropped < excess && m.heap.Len() > 0 {
		it := m.heap.PopMin()
		switch u := it.Payload.(type) {
		case *partial:
			// Lazy rescore: stored scores are upper bounds frozen at
			// creation (completion probability only decays), so recompute
			// now and re-queue when the unit outranks the next candidate.
			// Scores are stable within one shed call, so a re-queued exact
			// score is final and the loop terminates.
			cur := m.score(u.stage, u.firstTS)
			if next := m.heap.PeekMin(); next != nil && cur > next.Score {
				u.item = m.heap.Push(cur, u)
				continue
			}
			u.item = nil
			m.shedPartial(u)
		case *pendingMatch:
			// Pendings carry the ceiling score: one popping here means
			// no partial remains to evict instead.
			u.item = nil
			m.shedPending(u)
		}
		dropped++
	}
	return dropped
}

func (m *Machine) group(e event.Event) *group {
	var key int64
	if m.prog.Key != nil {
		key = m.prog.Key(e)
	}
	g := m.groups[key]
	if g == nil {
		g = &group{
			partials: make([][]*partial, len(m.prog.Stages)),
			blockers: make([][]event.Event, len(m.prog.Negations)),
		}
		m.groups[key] = g
	}
	return g
}

// OnEvent feeds one event of the unioned input stream into the automaton.
func (m *Machine) OnEvent(e event.Event, emit Emit) {
	if e.TS > m.curTS {
		m.curTS = e.TS
	}
	if m.capFn != nil || m.patternAware {
		if r := m.rates[e.Type]; r != nil {
			r.Observe(int64(e.TS))
		}
	}
	g := m.group(e)

	// Record potential blockers for retrospective negation evaluation.
	for i, neg := range m.prog.Negations {
		if e.Type == neg.Type {
			g.blockers[i] = insertSorted(g.blockers[i], e)
			m.addState(1)
			m.elems++
		}
	}

	advanced := make(map[*partial]bool)
	lastStage := len(m.prog.Stages) - 1

	for k, stage := range m.prog.Stages {
		if e.Type != stage.Type {
			continue
		}
		if k == 0 {
			if stage.Pred == nil || stage.Pred(nil, e) {
				if lastStage == 0 {
					m.complete(g, []event.Event{e}, emit)
				} else if m.admit() {
					p := &partial{events: []event.Event{e}, firstTS: e.TS}
					if m.patternAware {
						p.item = m.heap.Push(m.score(0, e.TS), p)
					}
					g.partials[0] = append(g.partials[0], p)
					m.addState(1)
					m.elems++
				} else {
					m.lost += m.lossBound(0, e.TS)
				}
			}
			continue
		}
		prev := g.partials[k-1]
		var kept []*partial
		for _, p := range prev {
			if p.dead {
				continue // shed earlier in this call; compact lazily
			}
			last := p.events[len(p.events)-1]
			ok := e.TS > last.TS &&
				e.TS-p.firstTS < m.prog.Window &&
				(stage.Pred == nil || stage.Pred(p.events, e))
			if !ok {
				kept = append(kept, p)
				continue
			}
			events := make([]event.Event, len(p.events)+1)
			copy(events, p.events)
			events[len(p.events)] = e
			if k == lastStage {
				m.complete(g, events, emit)
			} else if m.admit() {
				adv := &partial{events: events, firstTS: p.firstTS, stage: k}
				if m.patternAware {
					adv.item = m.heap.Push(m.score(k, p.firstTS), adv)
				}
				g.partials[k] = append(g.partials[k], adv)
				m.addState(1)
				m.elems += int64(len(events))
			} else {
				m.lost += m.lossBound(k, p.firstTS)
			}
			// admit/complete may have shed p itself; only account the
			// consumption of a still-live partial.
			switch {
			case p.dead:
			case m.prog.Policy == SkipTillAnyMatch:
				// Branch: the original partial survives and may combine
				// with later events — the exponential behaviour.
				kept = append(kept, p)
			default:
				// SkipTillNextMatch / StrictContiguity: the partial is
				// consumed by its next relevant event.
				advanced[p] = true
				m.detachPartial(p)
				m.addState(-1)
				m.elems -= int64(len(p.events))
			}
		}
		g.partials[k-1] = kept
	}

	// Strict contiguity: any event that did not advance a partial of the
	// same key kills it.
	if m.prog.Policy == StrictContiguity {
		for k := range g.partials {
			var kept []*partial
			for _, p := range g.partials[k] {
				if p.dead {
					continue
				}
				if advanced[p] || p.events[len(p.events)-1].TS == e.TS {
					kept = append(kept, p)
				} else {
					m.detachPartial(p)
					m.addState(-1)
					m.elems -= int64(len(p.events))
				}
			}
			g.partials[k] = kept
		}
	}
}

// complete handles a fully matched constituent list: with negations it is
// parked until the watermark confirms all potential blockers were seen;
// otherwise it is emitted immediately.
func (m *Machine) complete(g *group, events []event.Event, emit Emit) {
	if len(m.prog.Negations) == 0 {
		emit(event.NewMatch(events...))
		return
	}
	if !m.admit() {
		m.lost++ // shed: the would-be match is dropped, never fabricated
		return
	}
	pm := &pendingMatch{
		events: events,
		lastTS: events[len(events)-1].TS,
	}
	if m.patternAware {
		pm.item = m.heap.Push(pendingScore, pm)
	}
	g.pending = append(g.pending, pm)
	m.addState(1)
	m.elems += int64(len(events))
}

// OnWatermark prunes expired partials, resolves pending negated matches,
// and evicts dead blockers.
func (m *Machine) OnWatermark(wm event.Time, emit Emit) {
	if wm > m.curTS {
		m.curTS = wm
	}
	for key, g := range m.groups {
		// Partials that can no longer complete within the window.
		for k := range g.partials {
			var kept []*partial
			for _, p := range g.partials[k] {
				if p.dead {
					continue
				}
				if p.firstTS+m.prog.Window-1 > wm {
					kept = append(kept, p)
				} else {
					m.detachPartial(p)
					m.addState(-1)
					m.elems -= int64(len(p.events))
				}
			}
			g.partials[k] = kept
		}
		// Pending matches whose blocker intervals are fully observed.
		var still []*pendingMatch
		for _, pm := range g.pending {
			if pm.dead {
				continue
			}
			if pm.lastTS-1 > wm {
				still = append(still, pm)
				continue
			}
			m.detachPending(pm)
			m.addState(-1)
			m.elems -= int64(len(pm.events))
			if m.survivesNegations(g, pm.events) {
				emit(event.NewMatch(pm.events...))
			}
		}
		g.pending = still
		m.evictBlockers(g, wm)
		if m.groupEmpty(g) {
			delete(m.groups, key)
		}
	}
}

func (m *Machine) survivesNegations(g *group, events []event.Event) bool {
	for i, neg := range m.prog.Negations {
		after := events[neg.After].TS
		before := events[neg.After+1].TS
		bs := g.blockers[i]
		from := sort.Search(len(bs), func(k int) bool { return bs[k].TS > after })
		for j := from; j < len(bs) && bs[j].TS < before; j++ {
			if neg.Pred == nil || neg.Pred(events, bs[j]) {
				return false
			}
		}
	}
	return true
}

// evictBlockers drops blockers no live or future match can reference: a
// blocker matters only when some match's first constituent precedes it, and
// future partials start strictly after the watermark.
func (m *Machine) evictBlockers(g *group, wm event.Time) {
	minFirst := wm
	for k := range g.partials {
		for _, p := range g.partials[k] {
			if !p.dead && p.firstTS < minFirst {
				minFirst = p.firstTS
			}
		}
	}
	for _, pm := range g.pending {
		if !pm.dead && pm.events[0].TS < minFirst {
			minFirst = pm.events[0].TS
		}
	}
	for i := range g.blockers {
		bs := g.blockers[i]
		cut := 0
		for cut < len(bs) && bs[cut].TS <= minFirst {
			cut++
		}
		if cut > 0 {
			m.addState(-int64(cut))
			m.elems -= int64(cut)
			n := copy(bs, bs[cut:])
			g.blockers[i] = bs[:n]
		}
	}
}

func (m *Machine) groupEmpty(g *group) bool {
	for k := range g.partials {
		if len(g.partials[k]) > 0 {
			return false
		}
	}
	if len(g.pending) > 0 {
		return false
	}
	for i := range g.blockers {
		if len(g.blockers[i]) > 0 {
			return false
		}
	}
	return true
}

// Hold returns the watermark hold required by pending negated matches: they
// will be emitted with their last constituent's (past) timestamp.
func (m *Machine) Hold() event.Time {
	h := event.MaxWatermark
	for _, g := range m.groups {
		for _, pm := range g.pending {
			if !pm.dead && pm.lastTS-1 < h {
				h = pm.lastTS - 1
			}
		}
	}
	return h
}

func insertSorted(buf []event.Event, e event.Event) []event.Event {
	i := len(buf)
	for i > 0 && buf[i-1].TS > e.TS {
		i--
	}
	buf = append(buf, event.Event{})
	copy(buf[i+1:], buf[i:])
	buf[i] = e
	return buf
}
