package nfa

import (
	"sort"

	"cep2asp/internal/event"
)

// Emit receives completed matches. The match's event time for downstream
// processing is its last constituent's timestamp.
type Emit func(m *event.Match)

// Machine executes a Program over a single (unioned) input stream. It is
// the paper's unary CEP operator: all state — partial matches per prefix
// state, pending full matches awaiting negation resolution, and blocker
// buffers — lives in this one operator (§5.1.2).
//
// Machine is not safe for concurrent use; the engine serializes calls per
// operator instance.
type Machine struct {
	prog   *Program
	groups map[int64]*group
	// OnState, when set, receives buffered-element deltas for the state
	// budget accounting (the FlinkCEP memory-exhaustion analogue).
	OnState func(delta int64)

	stateCount int64
}

type partial struct {
	events  []event.Event
	firstTS event.Time
}

type pendingMatch struct {
	events []event.Event
	lastTS event.Time
}

type group struct {
	// partials[k] holds partial matches whose accepted prefix is stages
	// 0..k.
	partials [][]*partial
	pending  []*pendingMatch
	// blockers per negation index, sorted by timestamp.
	blockers [][]event.Event
}

// NewMachine compiles the program into an executable machine.
func NewMachine(prog *Program) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &Machine{prog: prog, groups: make(map[int64]*group)}, nil
}

func (m *Machine) addState(delta int64) {
	m.stateCount += delta
	if m.OnState != nil {
		m.OnState(delta)
	}
}

// StateSize returns the current number of buffered elements (partials,
// pending matches and blockers).
func (m *Machine) StateSize() int64 { return m.stateCount }

func (m *Machine) group(e event.Event) *group {
	var key int64
	if m.prog.Key != nil {
		key = m.prog.Key(e)
	}
	g := m.groups[key]
	if g == nil {
		g = &group{
			partials: make([][]*partial, len(m.prog.Stages)),
			blockers: make([][]event.Event, len(m.prog.Negations)),
		}
		m.groups[key] = g
	}
	return g
}

// OnEvent feeds one event of the unioned input stream into the automaton.
func (m *Machine) OnEvent(e event.Event, emit Emit) {
	g := m.group(e)

	// Record potential blockers for retrospective negation evaluation.
	for i, neg := range m.prog.Negations {
		if e.Type == neg.Type {
			g.blockers[i] = insertSorted(g.blockers[i], e)
			m.addState(1)
		}
	}

	advanced := make(map[*partial]bool)
	lastStage := len(m.prog.Stages) - 1

	for k, stage := range m.prog.Stages {
		if e.Type != stage.Type {
			continue
		}
		if k == 0 {
			if stage.Pred == nil || stage.Pred(nil, e) {
				p := &partial{events: []event.Event{e}, firstTS: e.TS}
				if lastStage == 0 {
					m.complete(g, p.events, emit)
				} else {
					g.partials[0] = append(g.partials[0], p)
					m.addState(1)
				}
			}
			continue
		}
		prev := g.partials[k-1]
		var kept []*partial
		for _, p := range prev {
			last := p.events[len(p.events)-1]
			ok := e.TS > last.TS &&
				e.TS-p.firstTS < m.prog.Window &&
				(stage.Pred == nil || stage.Pred(p.events, e))
			if !ok {
				kept = append(kept, p)
				continue
			}
			events := make([]event.Event, len(p.events)+1)
			copy(events, p.events)
			events[len(p.events)] = e
			if k == lastStage {
				m.complete(g, events, emit)
			} else {
				g.partials[k] = append(g.partials[k], &partial{events: events, firstTS: p.firstTS})
				m.addState(1)
			}
			switch m.prog.Policy {
			case SkipTillAnyMatch:
				// Branch: the original partial survives and may combine
				// with later events — the exponential behaviour.
				kept = append(kept, p)
			default:
				// SkipTillNextMatch / StrictContiguity: the partial is
				// consumed by its next relevant event.
				advanced[p] = true
				m.addState(-1)
			}
		}
		g.partials[k-1] = kept
	}

	// Strict contiguity: any event that did not advance a partial of the
	// same key kills it.
	if m.prog.Policy == StrictContiguity {
		for k := range g.partials {
			var kept []*partial
			for _, p := range g.partials[k] {
				if advanced[p] || p.events[len(p.events)-1].TS == e.TS {
					kept = append(kept, p)
				} else {
					m.addState(-1)
				}
			}
			g.partials[k] = kept
		}
	}
}

// complete handles a fully matched constituent list: with negations it is
// parked until the watermark confirms all potential blockers were seen;
// otherwise it is emitted immediately.
func (m *Machine) complete(g *group, events []event.Event, emit Emit) {
	if len(m.prog.Negations) == 0 {
		emit(event.NewMatch(events...))
		return
	}
	g.pending = append(g.pending, &pendingMatch{
		events: events,
		lastTS: events[len(events)-1].TS,
	})
	m.addState(1)
}

// OnWatermark prunes expired partials, resolves pending negated matches,
// and evicts dead blockers.
func (m *Machine) OnWatermark(wm event.Time, emit Emit) {
	for key, g := range m.groups {
		// Partials that can no longer complete within the window.
		for k := range g.partials {
			var kept []*partial
			for _, p := range g.partials[k] {
				if p.firstTS+m.prog.Window-1 > wm {
					kept = append(kept, p)
				} else {
					m.addState(-1)
				}
			}
			g.partials[k] = kept
		}
		// Pending matches whose blocker intervals are fully observed.
		var still []*pendingMatch
		for _, pm := range g.pending {
			if pm.lastTS-1 > wm {
				still = append(still, pm)
				continue
			}
			m.addState(-1)
			if m.survivesNegations(g, pm.events) {
				emit(event.NewMatch(pm.events...))
			}
		}
		g.pending = still
		m.evictBlockers(g, wm)
		if m.groupEmpty(g) {
			delete(m.groups, key)
		}
	}
}

func (m *Machine) survivesNegations(g *group, events []event.Event) bool {
	for i, neg := range m.prog.Negations {
		after := events[neg.After].TS
		before := events[neg.After+1].TS
		bs := g.blockers[i]
		from := sort.Search(len(bs), func(k int) bool { return bs[k].TS > after })
		for j := from; j < len(bs) && bs[j].TS < before; j++ {
			if neg.Pred == nil || neg.Pred(events, bs[j]) {
				return false
			}
		}
	}
	return true
}

// evictBlockers drops blockers no live or future match can reference: a
// blocker matters only when some match's first constituent precedes it, and
// future partials start strictly after the watermark.
func (m *Machine) evictBlockers(g *group, wm event.Time) {
	minFirst := wm
	for k := range g.partials {
		for _, p := range g.partials[k] {
			if p.firstTS < minFirst {
				minFirst = p.firstTS
			}
		}
	}
	for _, pm := range g.pending {
		if pm.events[0].TS < minFirst {
			minFirst = pm.events[0].TS
		}
	}
	for i := range g.blockers {
		bs := g.blockers[i]
		cut := 0
		for cut < len(bs) && bs[cut].TS <= minFirst {
			cut++
		}
		if cut > 0 {
			m.addState(-int64(cut))
			n := copy(bs, bs[cut:])
			g.blockers[i] = bs[:n]
		}
	}
}

func (m *Machine) groupEmpty(g *group) bool {
	for k := range g.partials {
		if len(g.partials[k]) > 0 {
			return false
		}
	}
	if len(g.pending) > 0 {
		return false
	}
	for i := range g.blockers {
		if len(g.blockers[i]) > 0 {
			return false
		}
	}
	return true
}

// Hold returns the watermark hold required by pending negated matches: they
// will be emitted with their last constituent's (past) timestamp.
func (m *Machine) Hold() event.Time {
	h := event.MaxWatermark
	for _, g := range m.groups {
		for _, pm := range g.pending {
			if pm.lastTS-1 < h {
				h = pm.lastTS - 1
			}
		}
	}
	return h
}

func insertSorted(buf []event.Event, e event.Event) []event.Event {
	i := len(buf)
	for i > 0 && buf[i-1].TS > e.TS {
		i--
	}
	buf = append(buf, event.Event{})
	copy(buf[i+1:], buf[i:])
	buf[i] = e
	return buf
}
