package nfa

import (
	"testing"

	"cep2asp/internal/event"
)

// runSeq3 executes SEQ(A,B,C) under a 2-unit budget with the given
// victim-selection strategy and returns the matches plus the final
// lost-match bound.
func runSeq3(t *testing.T, patternAware bool, events []event.Event) ([]*event.Match, float64) {
	t.Helper()
	prog := &Program{
		Name: "seq3",
		Stages: []Stage{
			{Name: "a", Type: tA},
			{Name: "b", Type: tB},
			{Name: "c", Type: tC},
		},
		Window: 100 * event.Minute,
		Policy: SkipTillAnyMatch,
	}
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	m.SetPatternAware(patternAware)
	m.SetBudget(
		func() int64 { return 2 },
		func() int64 { return 1 },
		func(int64) {},
	)
	var out []*event.Match
	emit := func(ma *event.Match) { out = append(out, ma) }
	for _, e := range events {
		m.OnEvent(e, emit)
	}
	m.OnWatermark(event.MaxWatermark, emit)
	return out, m.LostMatchBound()
}

// TestShedPatternAwareKeepsNearCompletePartial pins the scenario
// oldest-first gets wrong: a partial one transition from completing is
// older than a crowd of fresh first-stage partials, so age-order eviction
// kills it just before its closing event arrives. Pattern-aware selection
// ranks advancement above freshness and must retain a superset of the
// oldest-first matches here.
func TestShedPatternAwareKeepsNearCompletePartial(t *testing.T) {
	events := []event.Event{
		ev(tA, 0, 1), // seeds the stage-0 partial...
		ev(tB, 1, 1), // ...which advances: (A0,B1) is one C from a match
		ev(tA, 2, 1), // fresh stage-0 pressure; the 2-unit budget forces
		ev(tA, 3, 1), // eviction on every insert from here on
		ev(tC, 4, 1), // the closing event
	}

	oldest, _ := runSeq3(t, false, events)
	aware, lost := runSeq3(t, true, events)

	if len(oldest) != 0 {
		t.Fatalf("oldest-first unexpectedly completed %d matches; the scenario no longer discriminates", len(oldest))
	}
	if len(aware) != 1 {
		t.Fatalf("pattern-aware completed %d matches, want the 1 near-complete partial", len(aware))
	}
	got := matchKey(aware[0])
	want := matchKey(&event.Match{Events: []event.Event{ev(tA, 0, 1), ev(tB, 1, 1), ev(tC, 4, 1)}})
	if got != want {
		t.Fatalf("pattern-aware match %s, want %s", got, want)
	}

	// Superset property: every oldest-first match is a pattern-aware match.
	awareSet := make(map[string]bool, len(aware))
	for _, ma := range aware {
		awareSet[matchKey(ma)] = true
	}
	for _, ma := range oldest {
		if !awareSet[matchKey(ma)] {
			t.Fatalf("oldest-first match %s missing from pattern-aware run", matchKey(ma))
		}
	}

	// Eviction under pattern-aware selection still charges the recall
	// account: the shed stage-0 partials were worth at least one potential
	// match each.
	if lost < 1 {
		t.Fatalf("lost-match bound %g after shedding, want >= 1", lost)
	}
}

// TestShedPatternAwareSupersetOnDenseStream checks the same ordering on a
// seeded dense skip-till-any workload: at an equal budget the
// pattern-aware run must retain at least as many matches as oldest-first,
// every one of them drawn from the unbudgeted match set.
func TestShedPatternAwareSupersetOnDenseStream(t *testing.T) {
	// Repeating A-runs punctuated by B,C bursts: stage-1 partials formed in
	// one burst complete in the next only if eviction spares them.
	var events []event.Event
	ts := int64(0)
	for round := 0; round < 12; round++ {
		for i := 0; i < 6; i++ {
			events = append(events, ev(tA, ts, float64(i)))
			ts++
		}
		events = append(events, ev(tB, ts, 0))
		ts++
		events = append(events, ev(tC, ts, 0))
		ts++
	}

	prog := &Program{
		Name: "seq3dense",
		Stages: []Stage{
			{Name: "a", Type: tA},
			{Name: "b", Type: tB},
			{Name: "c", Type: tC},
		},
		Window: 100 * event.Minute,
		Policy: SkipTillAnyMatch,
	}
	full := collect(t, prog, events)
	fullSet := make(map[string]bool, len(full))
	for _, ma := range full {
		fullSet[matchKey(ma)] = true
	}

	oldest, _ := runSeq3(t, false, events)
	aware, _ := runSeq3(t, true, events)

	if len(aware) < len(oldest) {
		t.Fatalf("pattern-aware retained %d matches, oldest-first %d", len(aware), len(oldest))
	}
	if len(aware) == 0 {
		t.Fatal("pattern-aware run produced no matches")
	}
	for _, ma := range aware {
		if !fullSet[matchKey(ma)] {
			t.Fatalf("pattern-aware fabricated match %s absent unbudgeted", matchKey(ma))
		}
	}
}
