package nfa

import (
	"math/rand"
	"testing"

	"cep2asp/internal/event"
)

// Additional selection-policy and robustness tests for the NFA machine.

func TestSkipTillNextWithPredicates(t *testing.T) {
	prog := seqAB(SkipTillNextMatch)
	prog.Stages[1].Pred = func(_ []event.Event, e event.Event) bool { return e.Value > 10 }
	// The first B fails the predicate; stnm skips irrelevant events (an
	// event failing its predicate is irrelevant) until the next relevant
	// one.
	events := []event.Event{ev(tA, 0, 1), ev(tB, 1, 5), ev(tB, 2, 20)}
	got := collect(t, prog, events)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
	if got[0].Events[1].Value != 20 {
		t.Fatalf("stnm should take the next RELEVANT event: %v", got[0])
	}
}

func TestStrictContiguityRelevantBreaks(t *testing.T) {
	// Under strict contiguity even a same-type event that fails the
	// predicate breaks the partial.
	prog := seqAB(StrictContiguity)
	prog.Stages[1].Pred = func(_ []event.Event, e event.Event) bool { return e.Value > 10 }
	events := []event.Event{ev(tA, 0, 1), ev(tB, 1, 5), ev(tB, 2, 20)}
	got := collect(t, prog, events)
	if len(got) != 0 {
		t.Fatalf("sc: failing middle event must kill the partial, got %d", len(got))
	}
}

func TestStrictContiguityPerKey(t *testing.T) {
	// Contiguity is judged within the key's own sub-stream: another key's
	// event in between must not break the partial.
	prog := seqAB(StrictContiguity)
	prog.Key = func(e event.Event) int64 { return e.ID }
	other := ev(tC, 1, 0)
	other.ID = 99
	events := []event.Event{ev(tA, 0, 1), other, ev(tB, 2, 3)}
	got := collect(t, prog, events)
	if len(got) != 1 {
		t.Fatalf("cross-key event broke contiguity: got %d matches", len(got))
	}
}

func TestNegationWithIteration(t *testing.T) {
	// SEQ(A, !B, ITER-expanded C C): negation interval ends at the first
	// C constituent.
	prog := &Program{
		Name:      "neg-iter",
		Stages:    []Stage{{Type: tA}, {Type: tC}, {Type: tC}},
		Negations: []Negation{{Type: tB, After: 0}},
		Window:    10 * event.Minute,
		Policy:    SkipTillAnyMatch,
	}
	events := []event.Event{
		ev(tA, 0, 1),
		ev(tB, 1, 0), // blocks everything starting at a@0
		ev(tC, 2, 2),
		ev(tC, 3, 3),
	}
	got := collect(t, prog, events)
	if len(got) != 0 {
		t.Fatalf("blocker before first C must void, got %d", len(got))
	}
	// Blocker after the first C does not fall into (a.ts, c1.ts).
	events = []event.Event{
		ev(tA, 0, 1),
		ev(tC, 2, 2),
		ev(tB, 3, 0),
		ev(tC, 4, 3),
	}
	got = collect(t, prog, events)
	if len(got) != 1 {
		t.Fatalf("blocker outside the absence interval voided the match, got %d", len(got))
	}
}

func TestWatermarkIdempotent(t *testing.T) {
	m, err := NewMachine(seqAB(SkipTillAnyMatch))
	if err != nil {
		t.Fatal(err)
	}
	emit := func(*event.Match) {}
	m.OnEvent(ev(tA, 0, 1), emit)
	m.OnWatermark(2*event.Minute, emit)
	s1 := m.StateSize()
	m.OnWatermark(2*event.Minute, emit)
	if m.StateSize() != s1 {
		t.Fatal("repeated watermark changed state")
	}
}

func TestHoldWithoutNegations(t *testing.T) {
	m, _ := NewMachine(seqAB(SkipTillAnyMatch))
	if h := m.Hold(); h != event.MaxWatermark {
		t.Fatalf("hold without pendings = %d, want MaxWatermark", h)
	}
}

// Fuzz-ish robustness: random event soup must never panic and state must
// drain to zero after the final watermark.
func TestRandomSoupDrains(t *testing.T) {
	prog := &Program{
		Name:      "soup",
		Stages:    []Stage{{Type: tA}, {Type: tB}, {Type: tC}},
		Negations: []Negation{{Type: tB, After: 1}},
		Window:    7 * event.Minute,
		Policy:    SkipTillAnyMatch,
		Key:       func(e event.Event) int64 { return e.ID },
	}
	for trial := 0; trial < 20; trial++ {
		m, err := NewMachine(prog)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(trial)))
		emit := func(*event.Match) {}
		types := []event.Type{tA, tB, tC}
		ts := event.Time(0)
		for i := 0; i < 200; i++ {
			ts += event.Time(rng.Int63n(3)) * event.Minute
			e := event.Event{
				Type:  types[rng.Intn(3)],
				ID:    int64(rng.Intn(4)),
				TS:    ts,
				Value: float64(rng.Intn(100)),
			}
			m.OnEvent(e, emit)
			if rng.Intn(5) == 0 {
				m.OnWatermark(ts-event.Minute, emit)
			}
		}
		m.OnWatermark(event.MaxWatermark, emit)
		if m.StateSize() != 0 {
			t.Fatalf("trial %d: state %d after final watermark", trial, m.StateSize())
		}
	}
}
