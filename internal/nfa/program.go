// Package nfa implements the order-based pattern detection mechanism of
// traditional CEP systems (§2, "Processing Model"): a nondeterministic
// finite automaton whose states are pattern prefixes, with a shared buffer
// of partial matches that arriving events extend. It is the faithful
// stand-in for FlinkCEP in the paper's evaluation (§5.1.2): a single
// stateful unary operator applied to the union of all input streams, using
// implicit (predicate-based) windowing, supporting the selection policies
// strict-contiguity, skip-till-next-match and skip-till-any-match, bounded
// iteration with allowCombinations, and retrospectively evaluated negation
// (notFollowedBy).
//
// Its performance characteristics are the point: partial-match state grows
// with selectivity, window size and pattern length, and negation forces
// full matches to be buffered until the watermark — which is precisely what
// the paper measures FlinkCEP doing.
package nfa

import (
	"fmt"

	"cep2asp/internal/event"
)

// Policy is the selection policy governing how irrelevant events affect
// partial matches (§3.1.4, third impact).
type Policy int

const (
	// SkipTillAnyMatch considers any combination of relevant events,
	// branching on every accepted event (FlinkCEP .followedByAny). The
	// most flexible and most expensive policy, with worst-case exponential
	// partial-match growth.
	SkipTillAnyMatch Policy = iota
	// SkipTillNextMatch extends a partial match with the next relevant
	// event only (FlinkCEP .followedBy).
	SkipTillNextMatch
	// StrictContiguity requires matching events to arrive back-to-back
	// with no irrelevant event in between (FlinkCEP .next).
	StrictContiguity
)

func (p Policy) String() string {
	switch p {
	case SkipTillAnyMatch:
		return "skip-till-any-match"
	case SkipTillNextMatch:
		return "skip-till-next-match"
	case StrictContiguity:
		return "strict-contiguity"
	}
	return "unknown-policy"
}

// StagePred evaluates a stage's predicates incrementally: prefix holds the
// constituents accepted so far (in stage order) and e is the candidate.
// Compilers bind each WHERE conjunct to the earliest stage at which all its
// aliases are available.
type StagePred func(prefix []event.Event, e event.Event) bool

// Stage is one positive state transition of the automaton. Bounded
// iterations are expanded into consecutive stages of the same type, which
// under SkipTillAnyMatch yields exactly the allowCombinations semantics.
type Stage struct {
	Name string
	Type event.Type
	Pred StagePred
}

// Negation is a notFollowedBy constraint between two consecutive stages:
// no event of Type satisfying Pred may occur strictly between the events
// accepted at stage After and stage After+1.
type Negation struct {
	Type event.Type
	// After is the index of the positive stage preceding the negation.
	After int
	// Pred receives the full candidate match and the potential blocker.
	Pred func(match []event.Event, blocker event.Event) bool
}

// Program is a compiled pattern ready for execution by a Machine.
type Program struct {
	Name      string
	Stages    []Stage
	Negations []Negation
	// Window is the implicit window: a match's events must satisfy
	// last.TS - first.TS < Window. Traditional CEP systems turn the
	// window constraint into such predicates (§3.1.1).
	Window event.Time
	Policy Policy
	// Key partitions state; nil runs one global automaton (the paper's
	// non-partitionable patterns run FlinkCEP single-threaded, §5.1.2).
	Key func(event.Event) int64
}

// Validate checks structural sanity before execution.
func (p *Program) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("nfa: program %q has no stages", p.Name)
	}
	if p.Window <= 0 {
		return fmt.Errorf("nfa: program %q needs a positive window", p.Name)
	}
	for _, n := range p.Negations {
		if n.After < 0 || n.After >= len(p.Stages)-1 {
			return fmt.Errorf("nfa: negation after stage %d out of range (stages: %d); negation must sit between two positive stages", n.After, len(p.Stages))
		}
	}
	return nil
}
