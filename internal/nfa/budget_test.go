package nfa

import (
	"fmt"
	"testing"

	"cep2asp/internal/event"
)

// matchKey identifies a match by its constituent timestamps.
func matchKey(m *event.Match) string {
	s := ""
	for _, e := range m.Events {
		s += fmt.Sprintf("%d/", e.TS)
	}
	return s
}

func TestSetBudgetCapsStateAndKeepsSubset(t *testing.T) {
	// Dense skip-till-any input: many As, each later B pairs with all of
	// them — the state-multiplying workload.
	var events []event.Event
	for i := int64(0); i < 20; i++ {
		events = append(events, ev(tA, i, float64(i)))
	}
	events = append(events, ev(tB, 20, 0), ev(tB, 21, 0))

	prog := &Program{
		Name:   "seq",
		Stages: []Stage{{Name: "a", Type: tA}, {Name: "b", Type: tB}},
		Window: 100 * event.Minute,
		Policy: SkipTillAnyMatch,
	}

	unbudgeted := collect(t, prog, events)
	full := make(map[string]bool, len(unbudgeted))
	for _, m := range unbudgeted {
		full[matchKey(m)] = true
	}

	const budget = 4
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	var shed int64
	m.SetBudget(
		func() int64 { return budget },
		func() int64 { return budget / 2 },
		func(n int64) { shed += n },
	)
	var capped []*event.Match
	emit := func(ma *event.Match) { capped = append(capped, ma) }
	for _, e := range events {
		m.OnEvent(e, emit)
		if got := m.StateSize(); got > budget {
			t.Fatalf("StateSize = %d after event at %d, budget %d", got, e.TS, budget)
		}
	}
	m.OnWatermark(event.MaxWatermark, emit)

	if shed == 0 {
		t.Fatal("expected non-zero shed count under a tight budget")
	}
	if len(capped) == 0 {
		t.Fatal("capped run should still produce some matches")
	}
	if len(capped) >= len(unbudgeted) {
		t.Fatalf("capped run found %d matches, unbudgeted %d: expected fewer", len(capped), len(unbudgeted))
	}
	for _, ma := range capped {
		if !full[matchKey(ma)] {
			t.Fatalf("capped run fabricated match %v not present unbudgeted", ma.Events)
		}
	}
}

func TestSetBudgetNeverShedsBlockers(t *testing.T) {
	// SEQ(A, !C, B): the C blocker between a and b must survive shedding,
	// so the negated match is still suppressed under a budget of 2.
	prog := &Program{
		Name:      "nseq",
		Stages:    []Stage{{Name: "a", Type: tA}, {Name: "b", Type: tB}},
		Negations: []Negation{{Type: tC, After: 0}},
		Window:    100 * event.Minute,
		Policy:    SkipTillAnyMatch,
	}
	events := []event.Event{
		ev(tA, 0, 0), ev(tA, 1, 0), ev(tA, 2, 0), ev(tA, 3, 0),
		ev(tC, 4, 0), // blocks every (a, b) pair below
		ev(tB, 5, 0),
	}
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	m.SetBudget(func() int64 { return 2 }, func() int64 { return 1 }, nil)
	var out []*event.Match
	emit := func(ma *event.Match) { out = append(out, ma) }
	for _, e := range events {
		m.OnEvent(e, emit)
	}
	m.OnWatermark(event.MaxWatermark, emit)
	if len(out) != 0 {
		t.Fatalf("got %d matches, want 0: shedding must never drop blockers", len(out))
	}
}

func TestShedToReturnsDropped(t *testing.T) {
	prog := seqAB(SkipTillAnyMatch)
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(*event.Match) {}
	for i := int64(0); i < 6; i++ {
		m.OnEvent(ev(tA, i, 0), emit)
	}
	if got := m.StateSize(); got != 6 {
		t.Fatalf("StateSize = %d, want 6", got)
	}
	if d := m.ShedTo(2); d != 4 {
		t.Fatalf("ShedTo(2) dropped %d, want 4", d)
	}
	if got := m.StateSize(); got != 2 {
		t.Fatalf("StateSize after shed = %d, want 2", got)
	}
	if got := m.StateElems(); got != 2 {
		t.Fatalf("StateElems after shed = %d, want 2", got)
	}
}
