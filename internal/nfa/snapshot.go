package nfa

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cep2asp/internal/event"
)

// machineState is the gob snapshot DTO of a Machine: every group's partial
// matches, pending (negation-parked) matches and blocker buffers. The
// program itself is not serialized — a snapshot may only be restored into a
// machine compiled from the same program shape.
type machineState struct {
	Groups map[int64]*machineGroupState
}

type machineGroupState struct {
	Partials [][]*machinePartialState
	Pending  []*machinePendingState
	Blockers [][]event.Event
}

type machinePartialState struct {
	Events  []event.Event
	FirstTS event.Time
}

type machinePendingState struct {
	Events []event.Event
	LastTS event.Time
}

// Snapshot serializes the machine's full matching state. The caller must
// ensure no OnEvent/OnWatermark call is concurrent with it.
func (m *Machine) Snapshot() ([]byte, error) {
	st := machineState{Groups: make(map[int64]*machineGroupState, len(m.groups))}
	for key, g := range m.groups {
		gs := &machineGroupState{
			Partials: make([][]*machinePartialState, len(g.partials)),
			Pending:  make([]*machinePendingState, 0, len(g.pending)),
			Blockers: g.blockers,
		}
		for k, ps := range g.partials {
			out := make([]*machinePartialState, 0, len(ps))
			for _, p := range ps {
				if p.dead {
					continue // shed units are logically gone
				}
				out = append(out, &machinePartialState{Events: p.events, FirstTS: p.firstTS})
			}
			gs.Partials[k] = out
		}
		for _, pm := range g.pending {
			if pm.dead {
				continue
			}
			gs.Pending = append(gs.Pending, &machinePendingState{Events: pm.events, LastTS: pm.lastTS})
		}
		st.Groups[key] = gs
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore replaces the machine's state with a snapshot taken from a machine
// running the same program. StateSize is recomputed from the restored
// buffers; OnState is deliberately not invoked — the embedding operator
// re-accounts the budget itself after restoring.
func (m *Machine) Restore(data []byte) error {
	var st machineState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	groups := make(map[int64]*group, len(st.Groups))
	var count, elems int64
	for key, gs := range st.Groups {
		if len(gs.Partials) != len(m.prog.Stages) || len(gs.Blockers) != len(m.prog.Negations) {
			return fmt.Errorf("nfa: snapshot shape (%d stages, %d negations) does not match program (%d stages, %d negations)",
				len(gs.Partials), len(gs.Blockers), len(m.prog.Stages), len(m.prog.Negations))
		}
		g := &group{
			partials: make([][]*partial, len(gs.Partials)),
			pending:  make([]*pendingMatch, len(gs.Pending)),
			blockers: gs.Blockers,
		}
		if g.blockers == nil {
			g.blockers = make([][]event.Event, len(m.prog.Negations))
		}
		for k, ps := range gs.Partials {
			in := make([]*partial, len(ps))
			for i, p := range ps {
				in[i] = &partial{events: p.Events, firstTS: p.FirstTS, stage: k}
				count++
				elems += int64(len(p.Events))
			}
			g.partials[k] = in
		}
		for i, pm := range gs.Pending {
			g.pending[i] = &pendingMatch{events: pm.Events, lastTS: pm.LastTS}
			count++
			elems += int64(len(pm.Events))
		}
		for _, bs := range g.blockers {
			count += int64(len(bs))
			elems += int64(len(bs))
		}
		groups[key] = g
	}
	m.groups = groups
	m.stateCount = count
	m.elems = elems
	if m.patternAware {
		// Rebuild the score heap over the restored state.
		m.patternAware = false
		m.heap = nil
		m.SetPatternAware(true)
	}
	return nil
}
