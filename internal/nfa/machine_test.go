package nfa

import (
	"sort"
	"testing"

	"cep2asp/internal/event"
)

var (
	tA = event.RegisterType("NfaA")
	tB = event.RegisterType("NfaB")
	tC = event.RegisterType("NfaC")
)

func ev(t event.Type, minute int64, value float64) event.Event {
	return event.Event{Type: t, ID: 1, TS: minute * event.Minute, Value: value}
}

func collect(t *testing.T, prog *Program, events []event.Event) []*event.Match {
	t.Helper()
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out []*event.Match
	emit := func(ma *event.Match) { out = append(out, ma) }
	for _, e := range events {
		m.OnEvent(e, emit)
	}
	m.OnWatermark(event.MaxWatermark, emit)
	return out
}

func seqAB(policy Policy) *Program {
	return &Program{
		Name:   "seq",
		Stages: []Stage{{Name: "a", Type: tA}, {Name: "b", Type: tB}},
		Window: 5 * event.Minute,
		Policy: policy,
	}
}

func TestSeqSkipTillAnyMatch(t *testing.T) {
	events := []event.Event{ev(tA, 0, 1), ev(tA, 1, 2), ev(tB, 2, 3), ev(tB, 3, 4)}
	got := collect(t, seqAB(SkipTillAnyMatch), events)
	// All in-window ordered pairs: (a0,b2),(a0,b3),(a1,b2),(a1,b3).
	if len(got) != 4 {
		t.Fatalf("stam: got %d matches, want 4", len(got))
	}
}

func TestSeqSkipTillNextMatch(t *testing.T) {
	events := []event.Event{ev(tA, 0, 1), ev(tA, 1, 2), ev(tB, 2, 3), ev(tB, 3, 4)}
	got := collect(t, seqAB(SkipTillNextMatch), events)
	// Each partial is consumed by its next relevant event: (a0,b2),(a1,b2).
	if len(got) != 2 {
		t.Fatalf("stnm: got %d matches, want 2: %v", len(got), got)
	}
	for _, m := range got {
		if m.Events[1].TS != 2*event.Minute {
			t.Fatalf("stnm must take the next match: %v", m)
		}
	}
}

func TestSeqStrictContiguity(t *testing.T) {
	// a, then an irrelevant C in between kills the partial.
	events := []event.Event{ev(tA, 0, 1), ev(tC, 1, 0), ev(tB, 2, 3)}
	got := collect(t, seqAB(StrictContiguity), events)
	if len(got) != 0 {
		t.Fatalf("sc: intervening event must kill the partial, got %d", len(got))
	}
	// Directly consecutive: matches.
	events = []event.Event{ev(tA, 0, 1), ev(tB, 1, 3)}
	got = collect(t, seqAB(StrictContiguity), events)
	if len(got) != 1 {
		t.Fatalf("sc: got %d matches, want 1", len(got))
	}
}

func TestWindowExpiry(t *testing.T) {
	events := []event.Event{ev(tA, 0, 1), ev(tB, 5, 2)} // exactly W apart
	got := collect(t, seqAB(SkipTillAnyMatch), events)
	if len(got) != 0 {
		t.Fatalf("pair exactly W apart must not match, got %d", len(got))
	}
}

func TestPartialPrunedOnWatermark(t *testing.T) {
	prog := seqAB(SkipTillAnyMatch)
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(*event.Match) {}
	m.OnEvent(ev(tA, 0, 1), emit)
	if m.StateSize() != 1 {
		t.Fatalf("state = %d, want 1", m.StateSize())
	}
	m.OnWatermark(10*event.Minute, emit)
	if m.StateSize() != 0 {
		t.Fatalf("expired partial not pruned: state = %d", m.StateSize())
	}
}

func TestStatePredicate(t *testing.T) {
	prog := seqAB(SkipTillAnyMatch)
	prog.Stages[0].Pred = func(_ []event.Event, e event.Event) bool { return e.Value > 10 }
	prog.Stages[1].Pred = func(prefix []event.Event, e event.Event) bool {
		return e.Value > prefix[0].Value
	}
	events := []event.Event{
		ev(tA, 0, 5),  // fails stage-0 pred
		ev(tA, 1, 20), // passes
		ev(tB, 2, 15), // fails cross pred (15 <= 20)
		ev(tB, 3, 25), // passes
	}
	got := collect(t, prog, events)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
	if got[0].Events[1].Value != 25 {
		t.Fatalf("wrong match: %v", got[0])
	}
}

func TestIterationAllowCombinations(t *testing.T) {
	prog := &Program{
		Name:   "iter3",
		Stages: []Stage{{Type: tA}, {Type: tA}, {Type: tA}},
		Window: 10 * event.Minute,
		Policy: SkipTillAnyMatch,
	}
	events := []event.Event{ev(tA, 0, 1), ev(tA, 1, 2), ev(tA, 2, 3), ev(tA, 3, 4)}
	got := collect(t, prog, events)
	if len(got) != 4 { // C(4,3)
		t.Fatalf("got %d combinations, want 4", len(got))
	}
}

func TestNegationBlocksRetrospectively(t *testing.T) {
	prog := &Program{
		Name:      "nseq",
		Stages:    []Stage{{Type: tA}, {Type: tC}},
		Negations: []Negation{{Type: tB, After: 0}},
		Window:    10 * event.Minute,
		Policy:    SkipTillAnyMatch,
	}
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out []*event.Match
	emit := func(ma *event.Match) { out = append(out, ma) }
	m.OnEvent(ev(tA, 0, 1), emit)
	m.OnEvent(ev(tB, 2, 0), emit) // blocker
	m.OnEvent(ev(tC, 4, 2), emit)
	m.OnEvent(ev(tA, 5, 3), emit)
	m.OnEvent(ev(tC, 7, 4), emit)
	// Nothing emitted before the watermark confirms the intervals.
	if len(out) != 0 {
		t.Fatalf("negated matches must be withheld until the watermark, got %d", len(out))
	}
	// The machine must hold the watermark for pending matches.
	if h := m.Hold(); h >= 4*event.Minute {
		t.Fatalf("hold = %d, want < first pending last-TS", h)
	}
	m.OnWatermark(event.MaxWatermark, emit)
	// (a0,c4) blocked by b2; (a0,c7) blocked; (a5,c7) clean.
	if len(out) != 1 {
		t.Fatalf("got %d matches, want 1: %v", len(out), out)
	}
	if out[0].Events[0].TS != 5*event.Minute {
		t.Fatalf("wrong surviving match: %v", out[0])
	}
}

func TestNegationPredicate(t *testing.T) {
	prog := &Program{
		Name:   "nseq-pred",
		Stages: []Stage{{Type: tA}, {Type: tC}},
		Negations: []Negation{{
			Type: tB, After: 0,
			Pred: func(_ []event.Event, blocker event.Event) bool { return blocker.Value > 10 },
		}},
		Window: 10 * event.Minute,
		Policy: SkipTillAnyMatch,
	}
	events := []event.Event{ev(tA, 0, 1), ev(tB, 2, 5), ev(tC, 4, 2)}
	got := collect(t, prog, events)
	// Blocker fails its predicate -> match survives.
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
}

func TestKeyedPartitioning(t *testing.T) {
	prog := seqAB(SkipTillAnyMatch)
	prog.Key = func(e event.Event) int64 { return e.ID }
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out []*event.Match
	emit := func(ma *event.Match) { out = append(out, ma) }
	a1 := ev(tA, 0, 1)
	b2 := ev(tB, 1, 2)
	b2.ID = 2 // different key: no match
	m.OnEvent(a1, emit)
	m.OnEvent(b2, emit)
	if len(out) != 0 {
		t.Fatalf("cross-key match produced: %v", out)
	}
	b1 := ev(tB, 2, 3)
	m.OnEvent(b1, emit)
	if len(out) != 1 {
		t.Fatalf("same-key match missing, got %d", len(out))
	}
}

func TestStateGrowsWithSelectivity(t *testing.T) {
	// The paper's core observation: under skip-till-any-match, partial
	// match state grows with the number of relevant events in the window.
	prog := seqAB(SkipTillAnyMatch)
	prog.Window = 1000 * event.Minute
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(*event.Match) {}
	for i := int64(0); i < 100; i++ {
		m.OnEvent(ev(tA, i, 1), emit)
	}
	if m.StateSize() != 100 {
		t.Fatalf("state = %d, want 100 (one partial per A)", m.StateSize())
	}
	// Each B matches all 100 partials but consumes none under stam.
	m.OnEvent(ev(tB, 100, 1), emit)
	if m.StateSize() != 100 {
		t.Fatalf("stam must keep partials after matching: %d", m.StateSize())
	}
}

func TestGroupsCleanedUp(t *testing.T) {
	prog := seqAB(SkipTillAnyMatch)
	prog.Key = func(e event.Event) int64 { return e.ID }
	m, _ := NewMachine(prog)
	emit := func(*event.Match) {}
	for id := int64(0); id < 50; id++ {
		e := ev(tA, 0, 1)
		e.ID = id
		m.OnEvent(e, emit)
	}
	m.OnWatermark(event.MaxWatermark, emit)
	if len(m.groups) != 0 {
		t.Fatalf("%d empty groups retained", len(m.groups))
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Program{
		{Name: "no stages", Window: event.Minute},
		{Name: "no window", Stages: []Stage{{Type: tA}}},
		{Name: "neg out of range", Stages: []Stage{{Type: tA}, {Type: tB}},
			Window: event.Minute, Negations: []Negation{{Type: tC, After: 1}}},
	}
	for _, p := range bad {
		if _, err := NewMachine(p); err == nil {
			t.Errorf("NewMachine(%s) succeeded, want error", p.Name)
		}
	}
}

func TestPolicyOrderingInvariant(t *testing.T) {
	// stnm and sc results are subsets of stam (§3.1.4).
	events := []event.Event{
		ev(tA, 0, 1), ev(tB, 1, 2), ev(tA, 2, 3), ev(tC, 3, 0), ev(tB, 4, 4),
	}
	keys := func(ms []*event.Match) map[string]bool {
		out := make(map[string]bool)
		for _, m := range ms {
			out[m.Key()] = true
		}
		return out
	}
	stam := keys(collect(t, seqAB(SkipTillAnyMatch), events))
	stnm := keys(collect(t, seqAB(SkipTillNextMatch), events))
	sc := keys(collect(t, seqAB(StrictContiguity), events))
	for k := range stnm {
		if !stam[k] {
			t.Fatalf("stnm match %q missing from stam", k)
		}
	}
	for k := range sc {
		if !stam[k] {
			t.Fatalf("sc match %q missing from stam", k)
		}
	}
	if len(sc) > len(stnm) || len(stnm) > len(stam) {
		t.Fatalf("policy sizes not nested: sc=%d stnm=%d stam=%d", len(sc), len(stnm), len(stam))
	}
}

func TestMatchesSortedConstituents(t *testing.T) {
	events := []event.Event{ev(tA, 3, 1), ev(tB, 4, 2)}
	got := collect(t, seqAB(SkipTillAnyMatch), events)
	if len(got) != 1 {
		t.Fatalf("got %d", len(got))
	}
	ts := []int64{got[0].Events[0].TS, got[0].Events[1].TS}
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i] < ts[j] }) {
		t.Fatal("constituents out of order")
	}
}
