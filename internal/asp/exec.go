package asp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cep2asp/internal/event"
)

// ErrStateBudget reports that the configured MaxOperatorState was exceeded.
// It models the failure mode the paper observes for FlinkCEP under high
// ingestion rates: unbounded operator state exhausting memory (§5.2.3,
// §5.2.4).
var ErrStateBudget = errors.New("asp: operator state exceeded the configured budget")

// Collector is the emission context handed to operator instances. All
// methods must be called from the instance's own goroutine.
type Collector struct {
	env     *Environment
	metrics *NodeMetrics
	senders []edgeSender
	done    <-chan struct{}
	aborted bool
	lastWM  event.Time
}

type edgeSender struct {
	e     *edge
	srcID uint16
	// forwardTo pins the downstream instance for nil-partitioner edges
	// (stateless forwarding preserves the upstream partitioning).
	forwardTo int
}

// Emit sends a data record downstream.
func (c *Collector) Emit(r Record) {
	if c.aborted {
		return
	}
	c.metrics.Out.Add(1)
	for i := range c.senders {
		s := &c.senders[i]
		if s.e.filter != nil && r.Kind == KindEvent && !s.e.filter(r.Event) {
			continue // chained selection: dropped before the channel hop
		}
		out := r
		out.Port = s.e.port
		out.Src = s.srcID
		var target int
		if s.e.partition == nil {
			target = s.forwardTo
		} else {
			target = s.e.partition(out, len(s.e.chans))
		}
		if !c.send(s.e.chans[target], out) {
			return
		}
	}
}

// EmitEvent sends a single event timestamped with its event time.
func (c *Collector) EmitEvent(e event.Event) { c.Emit(EventRecord(e)) }

// EmitMatch sends a composite with the given assigned event time.
func (c *Collector) EmitMatch(ts event.Time, m *event.Match) { c.Emit(MatchRecord(ts, m)) }

// forwardWatermark broadcasts a watermark to every downstream instance.
// Watermarks are monotonic per sender; regressions are dropped.
func (c *Collector) forwardWatermark(wm event.Time) {
	if c.aborted || wm <= c.lastWM {
		return
	}
	c.lastWM = wm
	for i := range c.senders {
		s := &c.senders[i]
		r := Record{Kind: KindWatermark, TS: wm, Port: s.e.port, Src: s.srcID}
		for _, ch := range s.e.chans {
			if !c.send(ch, r) {
				return
			}
		}
	}
}

// eos broadcasts end-of-stream to every downstream instance.
func (c *Collector) eos() {
	if c.aborted {
		return
	}
	for i := range c.senders {
		s := &c.senders[i]
		r := Record{Kind: KindEOS, Port: s.e.port, Src: s.srcID}
		for _, ch := range s.e.chans {
			if !c.send(ch, r) {
				return
			}
		}
	}
}

func (c *Collector) send(ch chan Record, r Record) bool {
	select {
	case ch <- r:
		return true
	default:
	}
	select {
	case ch <- r:
		return true
	case <-c.done:
		c.aborted = true
		return false
	}
}

// AddState accounts a change in the number of buffered elements held by the
// calling operator instance. Stateful operators report additions and
// evictions; when the environment-wide total exceeds the configured budget
// the run aborts with ErrStateBudget.
func (c *Collector) AddState(delta int64) {
	total := c.env.totalState.Add(delta)
	if b := c.env.cfg.MaxOperatorState; b > 0 && total > b {
		c.env.fail(fmt.Errorf("%w: %d elements buffered (budget %d)", ErrStateBudget, total, b))
	}
}

// StateSize returns the environment-wide buffered element count.
func (env *Environment) StateSize() int64 { return env.totalState.Load() }

// NodeStats returns the metrics of every node, in construction order.
func (env *Environment) NodeStats() []*NodeMetrics {
	out := make([]*NodeMetrics, len(env.nodes))
	for i, n := range env.nodes {
		out[i] = n.metrics
	}
	return out
}

func (env *Environment) fail(err error) {
	if env.abort != nil {
		env.abort(err)
	}
}

// Execute runs the dataflow graph to completion: until all sources are
// exhausted and every record has been fully processed, or until the context
// is cancelled or the state budget is exceeded. It may be called once.
func (env *Environment) Execute(ctx context.Context) error {
	if env.executed {
		return errors.New("asp: environment already executed")
	}
	env.executed = true
	if err := env.validate(); err != nil {
		return err
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	env.abort = func(err error) { cancel(err) }
	done := ctx.Done()

	// Allocate input channels and sender ID ranges.
	type nodeRuntime struct {
		in   []chan Record
		nSrc int
	}
	rts := make([]nodeRuntime, len(env.nodes))
	for i, n := range env.nodes {
		rt := &rts[i]
		if len(n.inEdges) > 0 {
			rt.in = make([]chan Record, n.parallelism)
			for j := range rt.in {
				rt.in[j] = make(chan Record, env.cfg.ChannelCapacity)
			}
		}
		for _, e := range n.inEdges {
			e.srcBase = rt.nSrc
			rt.nSrc += e.from.parallelism
			e.chans = rt.in
		}
	}

	newCollector := func(n *node) func(instance int) *Collector {
		return func(instance int) *Collector {
			c := &Collector{env: env, metrics: n.metrics, done: done, lastWM: event.MinWatermark}
			for _, e := range n.outEdges {
				c.senders = append(c.senders, edgeSender{
					e:         e,
					srcID:     uint16(e.srcBase + instance),
					forwardTo: instance % maxIntExec(1, e.to.parallelism),
				})
			}
			return c
		}
	}

	var wg sync.WaitGroup
	for i, n := range env.nodes {
		rt := &rts[i]
		mkCol := newCollector(n)
		for inst := 0; inst < n.parallelism; inst++ {
			wg.Add(1)
			if n.source != nil {
				go func(n *node, inst int) {
					defer wg.Done()
					runSource(env, n, inst, mkCol(inst))
				}(n, inst)
			} else {
				go func(n *node, inst int, in chan Record, nSrc int) {
					defer wg.Done()
					runInstance(n, inst, in, nSrc, mkCol(inst), done)
				}(n, inst, rt.in[inst], rt.nSrc)
			}
		}
	}
	wg.Wait()

	// A non-nil cause is either the state-budget failure raised through
	// env.fail or the parent context's cancellation; normal completion
	// never cancels before this point.
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return nil
}

func maxIntExec(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func runSource(env *Environment, n *node, inst int, col *Collector) {
	events := n.source.events[inst]
	interval := env.cfg.WatermarkInterval
	maxTS := event.MinWatermark
	var pace func(i int)
	if rate := n.source.ratePerSec; rate > 0 {
		start := time.Now()
		perEvent := float64(time.Second) / rate
		pace = func(i int) {
			due := start.Add(time.Duration(float64(i) * perEvent))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-col.done:
					col.aborted = true
				}
			}
		}
	}
	for i, e := range events {
		if pace != nil {
			pace(i)
			if col.aborted {
				return
			}
		}
		if n.source.stampIngest {
			e.Ingest = time.Now().UnixNano()
		}
		if e.TS > maxTS {
			maxTS = e.TS
		}
		col.EmitEvent(e)
		if col.aborted {
			return
		}
		if (i+1)%interval == 0 {
			// The watermark trails the maximum seen event time by the
			// source's disorder bound (zero for time-ordered streams).
			col.forwardWatermark(maxTS - n.source.lateness - 1)
			if col.aborted {
				return
			}
		}
	}
	col.eos()
}

func runInstance(n *node, inst int, in chan Record, nSrc int, col *Collector, done <-chan struct{}) {
	op := n.newOp(inst)
	holder, _ := op.(WatermarkHolder)
	wms := make([]event.Time, maxIntExec(nSrc, 1))
	for i := range wms {
		wms[i] = event.MinWatermark
	}
	remaining := nSrc
	curWM := event.MinWatermark

	advance := func(src uint16, wm event.Time) {
		if wm <= wms[src] {
			return
		}
		wms[src] = wm
		min := wms[0]
		for _, w := range wms[1:] {
			if w < min {
				min = w
			}
		}
		if min > curWM {
			curWM = min
			op.OnWatermark(curWM, col)
			fw := curWM
			if holder != nil {
				if h := holder.Hold(); h < fw {
					fw = h
				}
			}
			col.forwardWatermark(fw)
		}
	}

	for {
		select {
		case r := <-in:
			switch r.Kind {
			case KindEOS:
				remaining--
				advance(r.Src, event.MaxWatermark)
				if remaining == 0 {
					op.OnClose(col)
					col.forwardWatermark(event.MaxWatermark)
					col.eos()
					return
				}
			case KindWatermark:
				advance(r.Src, r.TS)
			default:
				n.metrics.In.Add(1)
				op.OnRecord(int(r.Port), r, col)
			}
			if col.aborted {
				return
			}
		case <-done:
			return
		}
	}
}
