package asp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/overload"
	"cep2asp/internal/trace"
)

// ErrStateBudget reports that the configured MaxOperatorState was exceeded.
// It models the failure mode the paper observes for FlinkCEP under high
// ingestion rates: unbounded operator state exhausting memory (§5.2.3,
// §5.2.4).
var ErrStateBudget = errors.New("asp: operator state exceeded the configured budget")

// Collector is the emission context handed to operator instances. All
// methods must be called from the instance's own goroutine.
type Collector struct {
	env     *Environment
	metrics *NodeMetrics
	senders []edgeSender
	done    <-chan struct{}
	aborted bool
	lastWM  event.Time
	// obsOp instruments this instance when a metrics registry is attached
	// (asp.Config.Metrics); nil otherwise — every instrumentation site
	// nil-checks it, keeping the un-observed path at a pointer comparison.
	obsOp *obs.OperatorMetrics
	// cur/curSet track the data record currently inside OnRecord (or being
	// emitted by a source), so the instance's panic-recovery wrapper can
	// attribute a failure to the offending record. cur points at the
	// instance loop's record variable — valid whenever curSet is true, and
	// only read by guard on the same goroutine after a panic.
	cur    *Record
	curSet bool
	// batch is the edge batch size (Config.BatchSize); pool recycles the
	// batch buffers carrying records across channels.
	batch int
	pool  *batchPool
	// Bounded-state execution (Config.Overload). budgeted gates every
	// extra AddState step so the un-budgeted hot path keeps its single
	// atomic add; instState mirrors this instance's share of totalState
	// (same-goroutine, non-atomic); failPolicy enables the historical
	// abort-on-overrun checks inside AddState; node/instance attribute
	// budget errors.
	budgeted      bool
	failPolicy    bool
	perOp, perJob int64
	instState     int64
	node          string
	instance      int
	// tracer is the end-to-end tracing plane (Config.Trace); nil disables
	// tracing and keeps every trace site at a pointer comparison.
	tracer *trace.Tracer
}

type edgeSender struct {
	e     *edge
	srcID uint16
	// forwardTo pins the downstream instance for nil-partitioner edges
	// (stateless forwarding preserves the upstream partitioning).
	forwardTo int
	// obsEdge mirrors e.obs, cached to avoid the pointer chase per send.
	obsEdge *obs.EdgeMetrics
	// pending accumulates one partial batch per target channel; a batch is
	// transferred whole when it reaches Config.BatchSize, when a barrier or
	// EOS marker is appended, and on idle/timer flushes.
	pending [][]Record
}

// Obs returns the instance's observability handle, or nil when no metrics
// registry is attached. Operators may use it to publish operator-specific
// gauges (the NFA operator reports its partial-match count).
func (c *Collector) Obs() *obs.OperatorMetrics { return c.obsOp }

// Emit sends a data record downstream.
func (c *Collector) Emit(r Record) {
	if c.aborted {
		return
	}
	c.metrics.Out.Add(1)
	if c.obsOp != nil {
		c.obsOp.Out.Add(1)
	}
	if c.tracer != nil {
		c.traceEmit(&r)
	}
	for i := range c.senders {
		s := &c.senders[i]
		if s.e.filter != nil && r.Kind == KindEvent && !s.e.filter(r.Event) {
			continue // chained selection: dropped before the channel hop
		}
		out := r
		out.Port = s.e.port
		out.Src = s.srcID
		var target int
		if s.e.partition == nil {
			target = s.forwardTo
		} else {
			target = s.e.partition(out, len(s.e.chans))
		}
		if !c.push(s, target, out) {
			return
		}
	}
}

// traceEmit stamps an outgoing record with the tracing context. Only called
// when tracing is enabled. An output inherits sampling from the record under
// processing (c.cur): matches and projected events derived from a traced
// input stay traced, and the refreshed handoff timestamp starts the next
// hop's queue clock. A sampled match additionally emits an attribution span
// whose Links name the traces of its sampled constituents.
func (c *Collector) traceEmit(r *Record) {
	sampled := r.TraceNs != 0
	if !sampled && c.curSet && c.cur != nil && c.cur.TraceNs != 0 {
		sampled = true
	}
	if r.Kind == KindMatch && r.Match != nil {
		// Matches fired from window/watermark handling have no traced input
		// record under processing; their sampling is recomputed from the
		// constituents' deterministic identities instead, so a match is
		// traced exactly when at least one of its constituents is.
		var links []uint64
		for _, e := range r.Match.Events {
			if id, ok := c.tracer.Sample(e); ok {
				links = append(links, id)
			}
		}
		if len(links) > 0 {
			sampled = true
		}
		if !sampled {
			return
		}
		now := time.Now().UnixNano()
		r.TraceNs = now
		c.tracer.Add(trace.Span{
			Trace: trace.MatchID(r.Match.Events), Kind: trace.KindMatch,
			Name: c.node, Instance: c.instance, StartNs: now, Links: links,
		})
		return
	}
	if !sampled {
		return
	}
	r.TraceNs = time.Now().UnixNano()
}

// traceIDOf recomputes a record's deterministic trace identity from its
// payload — the property that lets Record carry only a timestamp.
func traceIDOf(r *Record) uint64 {
	if r.Kind == KindMatch && r.Match != nil {
		return trace.MatchID(r.Match.Events)
	}
	return trace.ID(r.Event)
}

// push appends a record to the sender's pending batch for the target
// channel, transferring the batch when it fills. Adjacent watermarks within
// a batch coalesce to the newer (= maximum, per-sender watermarks are
// monotonic) one: no record sits between them, so the collapsed watermark
// carries exactly the same information downstream.
func (c *Collector) push(s *edgeSender, target int, r Record) bool {
	b := s.pending[target]
	if r.Kind == KindWatermark && len(b) > 0 && b[len(b)-1].Kind == KindWatermark {
		b[len(b)-1] = r
		return true
	}
	if b == nil {
		b = c.pool.get()
	}
	b = append(b, r)
	s.pending[target] = b
	if len(b) >= c.batch {
		return c.flushTarget(s, target)
	}
	return true
}

// flushTarget transfers the pending batch for one target channel, if any.
func (c *Collector) flushTarget(s *edgeSender, target int) bool {
	b := s.pending[target]
	if len(b) == 0 {
		return true
	}
	s.pending[target] = nil
	return c.send(s.e.chans[target], b, s)
}

// flush transfers every pending partial batch. Instances call it before
// blocking on drained input (the idle flush), on the flush timer, and as
// part of barrier/EOS forwarding, so batching delays records only while
// both sides are demonstrably busy.
func (c *Collector) flush() bool {
	if c.aborted {
		return false
	}
	for i := range c.senders {
		s := &c.senders[i]
		for t := range s.pending {
			if !c.flushTarget(s, t) {
				return false
			}
		}
	}
	return true
}

// EmitEvent sends a single event timestamped with its event time.
func (c *Collector) EmitEvent(e event.Event) { c.Emit(EventRecord(e)) }

// EmitMatch sends a composite with the given assigned event time.
func (c *Collector) EmitMatch(ts event.Time, m *event.Match) { c.Emit(MatchRecord(ts, m)) }

// forwardWatermark broadcasts a watermark to every downstream instance.
// Watermarks are monotonic per sender; regressions are dropped.
func (c *Collector) forwardWatermark(wm event.Time) {
	if c.aborted || wm <= c.lastWM {
		return
	}
	c.lastWM = wm
	if c.obsOp != nil {
		c.obsOp.Watermark.Store(int64(wm))
	}
	for i := range c.senders {
		s := &c.senders[i]
		r := Record{Kind: KindWatermark, TS: wm, Port: s.e.port, Src: s.srcID}
		for t := range s.e.chans {
			if !c.push(s, t, r) {
				return
			}
		}
	}
}

// forwardBarrier broadcasts a checkpoint barrier to every downstream
// instance. Like watermarks and EOS markers, barriers bypass edge filters
// and partitioners: every downstream instance must see the barrier from
// every sender to align.
func (c *Collector) forwardBarrier(id int64) {
	if c.aborted {
		return
	}
	// Barriers are rare, so they always carry their send timestamp: the
	// receiving instance turns it into barrier-propagation latency (and a
	// barrier span when tracing is on).
	sentNs := time.Now().UnixNano()
	for i := range c.senders {
		s := &c.senders[i]
		r := Record{Kind: KindBarrier, TS: id, Port: s.e.port, Src: s.srcID, TraceNs: sentNs}
		for t := range s.e.chans {
			// Barriers flush immediately: alignment downstream must not
			// wait for a batch to fill.
			if !c.push(s, t, r) || !c.flushTarget(s, t) {
				return
			}
		}
	}
}

// eos broadcasts end-of-stream to every downstream instance.
func (c *Collector) eos() {
	if c.aborted {
		return
	}
	for i := range c.senders {
		s := &c.senders[i]
		r := Record{Kind: KindEOS, Port: s.e.port, Src: s.srcID}
		for t := range s.e.chans {
			// EOS flushes: any pending records and watermarks precede the
			// marker in the batch, preserving per-sender order.
			if !c.push(s, t, r) || !c.flushTarget(s, t) {
				return
			}
		}
	}
}

// send transfers one batch over a channel. Sent counts records (not
// transfers) so throughput accounting is batching-independent; the Batch
// histogram records the transfer size; queued tracks the receiving node's
// buffered record count for the queue-depth gauge.
func (c *Collector) send(ch chan []Record, b []Record, s *edgeSender) bool {
	em := s.obsEdge
	n := int64(len(b))
	select {
	case ch <- b:
		if em != nil {
			em.Sent.Add(n)
			em.Batch.Record(n)
			s.e.queued.Add(n)
		}
		return true
	default:
	}
	// Slow path: the channel is full, so the sender blocks — the engine's
	// backpressure signal. The stall is accounted on the edge when a
	// metrics registry is attached.
	var t0 time.Time
	if em != nil {
		t0 = time.Now()
	}
	select {
	case ch <- b:
		if em != nil {
			em.BlockedNanos.Add(time.Since(t0).Nanoseconds())
			em.Sent.Add(n)
			em.Batch.Record(n)
			s.e.queued.Add(n)
		}
		return true
	case <-c.done:
		if em != nil {
			em.BlockedNanos.Add(time.Since(t0).Nanoseconds())
		}
		c.aborted = true
		return false
	}
}

// AddState accounts a change in the number of buffered elements held by the
// calling operator instance. Stateful operators report additions and
// evictions; under the Fail policy, exceeding a budget aborts the run with
// an error wrapping ErrStateBudget. On budgeted runs the instance's own
// share and the job-wide peak are tracked as well; un-budgeted runs pay
// one atomic add and one branch.
func (c *Collector) AddState(delta int64) {
	total := c.env.totalState.Add(delta)
	if !c.budgeted {
		return
	}
	c.instState += delta
	for {
		peak := c.env.peakState.Load()
		if total <= peak || c.env.peakState.CompareAndSwap(peak, total) {
			break
		}
	}
	if !c.failPolicy {
		return
	}
	if c.perOp > 0 && c.instState > c.perOp {
		c.env.fail(&BudgetExceededError{
			Node: c.node, Instance: c.instance,
			Records: c.instState, Budget: c.perOp,
		})
	}
	if c.perJob > 0 && total > c.perJob {
		c.env.fail(&BudgetExceededError{
			Node: c.node, Instance: c.instance,
			Records: total, Budget: c.perJob, PerJob: true,
		})
	}
}

// recordShed accounts n units evicted by this instance under the Shed
// policy: node counter, job-wide total, and the per-operator obs counter.
func (c *Collector) recordShed(n int64) {
	if n <= 0 {
		return
	}
	c.metrics.Shed.Add(n)
	c.env.shedRecords.Add(n)
	if c.obsOp != nil {
		c.obsOp.Shed.Add(n)
	}
}

// AddLostMatches accounts an increase in the upper bound on matches the
// calling instance's evicted state could still have produced — the loss
// side of the job's recall estimate. Shedding paths call it with the
// bound computed at eviction time; d <= 0 is ignored.
func (c *Collector) AddLostMatches(d float64) {
	if d <= 0 || math.IsNaN(d) {
		return
	}
	for {
		old := c.env.lostBound.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if c.env.lostBound.CompareAndSwap(old, nv) {
			return
		}
	}
}

// StateSize returns the environment-wide buffered element count.
func (env *Environment) StateSize() int64 { return env.totalState.Load() }

// LostMatchBound returns the accumulated upper bound on matches evicted
// state could still have produced (0 on unshed runs).
func (env *Environment) LostMatchBound() float64 {
	return math.Float64frombits(env.lostBound.Load())
}

// MatchesEmitted counts matches delivered to terminal (sink) nodes so
// far. Readable while running; the quality controller polls it.
func (env *Environment) MatchesEmitted() int64 { return env.matchesEmitted.Load() }

// RecallEstimate returns the live guaranteed lower bound on achieved
// recall: emitted matches over emitted plus the lost-match bound (1 when
// nothing was lost). Final per-run estimates should instead be computed
// from the sink's deduplicated match count, which is never larger.
func (env *Environment) RecallEstimate() float64 {
	return overload.RecallEstimate(env.matchesEmitted.Load(), env.LostMatchBound())
}

// ShedStrategy returns the live shed-victim selection strategy.
func (env *Environment) ShedStrategy() overload.ShedStrategy {
	return overload.ShedStrategy(env.shedStrategy.Load())
}

// SetShedStrategy switches the shed-victim selection strategy while the
// job runs. Operator instances observe the change at their next overload
// check; safe to call from any goroutine.
func (env *Environment) SetShedStrategy(s overload.ShedStrategy) {
	env.shedStrategy.Store(int32(s))
}

// ShedRecords returns the total accounting units evicted under the Shed
// overload policy (0 on unshed runs).
func (env *Environment) ShedRecords() int64 { return env.shedRecords.Load() }

// PeakStateRecords returns the largest job-wide buffered element count
// observed. Only maintained on budgeted runs; 0 otherwise.
func (env *Environment) PeakStateRecords() int64 { return env.peakState.Load() }

// PeakHeapBytes returns the largest live heap the admission controller
// sampled during Execute (0 when overload is not configured).
func (env *Environment) PeakHeapBytes() int64 {
	if env.memCtl == nil {
		return 0
	}
	return env.memCtl.PeakHeapBytes()
}

// LiveHeapBytes returns the heap admission controller's most recent
// heap sample (0 when overload is not configured or before the first
// sample lands).
func (env *Environment) LiveHeapBytes() int64 {
	if env.memCtl == nil {
		return 0
	}
	return env.memCtl.LiveHeapBytes()
}

// MemThrottled returns how many times the heap admission controller
// paused source intake.
func (env *Environment) MemThrottled() int64 {
	if env.memCtl == nil {
		return 0
	}
	return env.memCtl.Throttled()
}

// NodeStats returns the metrics of every node, in construction order.
func (env *Environment) NodeStats() []*NodeMetrics {
	out := make([]*NodeMetrics, len(env.nodes))
	for i, n := range env.nodes {
		out[i] = n.metrics
	}
	return out
}

func (env *Environment) fail(err error) {
	if env.abort != nil {
		env.abort(err)
	}
}

// Fail aborts a running execution with err, exactly as if an operator had
// failed with it: Execute returns err (subject to the usual first-cause
// rule) and the supervisor classifies it through errors.As. External
// subsystems that detect failures outside the graph — the network
// transport's receive side, the distributed worker runtime — use it to
// route their faults into the run. Safe to call from any goroutine at any
// time; a failure reported before Execute starts is buffered and aborts
// the run at startup. A nil err is ignored.
func (env *Environment) Fail(err error) {
	if env == nil || err == nil {
		return
	}
	env.failMu.Lock()
	abort := env.extAbort
	if abort == nil && env.pendingFail == nil {
		env.pendingFail = err
	}
	env.failMu.Unlock()
	if abort != nil {
		abort(err)
	}
}

// Execute runs the dataflow graph to completion: until all sources are
// exhausted and every record has been fully processed, or until the context
// is cancelled or the state budget is exceeded. It may be called once.
func (env *Environment) Execute(ctx context.Context) error {
	if env.executed {
		return errors.New("asp: environment already executed")
	}
	env.executed = true
	if err := env.validate(); err != nil {
		return err
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	env.abort = func(err error) { cancel(err) }
	env.failMu.Lock()
	env.extAbort = env.abort
	pending := env.pendingFail
	env.pendingFail = nil
	env.failMu.Unlock()
	if pending != nil {
		cancel(pending)
	}
	done := ctx.Done()

	if err := env.setupCheckpointing(); err != nil {
		return err
	}

	// Bounded-state execution: the admission gate and heap controller
	// exist only when overload is configured, keeping ordinary runs at
	// nil comparisons.
	ov := env.cfg.Overload
	if ov.Budget.Enabled() || ov.Memory.SoftLimitBytes > 0 {
		if env.gate == nil {
			env.gate = new(overload.Gate)
		}
		env.memCtl = overload.NewController(ov.Memory, env.gate)
		env.memCtl.Start()
		defer env.memCtl.Stop()
	}

	// Allocate input channels and sender ID ranges. Channels carry whole
	// batches; their capacity is kept at ~ChannelCapacity records by sizing
	// them in batches.
	chanCap := maxIntExec(1, env.cfg.ChannelCapacity/env.cfg.BatchSize)
	type nodeRuntime struct {
		in   []chan []Record
		nSrc int
		// queued counts records buffered across this node's input channels
		// (allocated only when a metrics registry is attached).
		queued *atomic.Int64
	}
	rts := make([]nodeRuntime, len(env.nodes))
	for i, n := range env.nodes {
		rt := &rts[i]
		if len(n.inEdges) > 0 {
			rt.in = make([]chan []Record, n.parallelism)
			for j := range rt.in {
				rt.in[j] = make(chan []Record, chanCap)
			}
		}
		for _, e := range n.inEdges {
			e.srcBase = rt.nSrc
			rt.nSrc += e.from.parallelism
			e.chans = rt.in
		}
	}

	// Attach the observability registry: one handle per operator instance,
	// one per edge with a live queue-depth probe over the receiver channels.
	// The registry is reset first so a long-lived registry (live HTTP
	// endpoint across runs) always describes the executing graph.
	reg := env.cfg.Metrics
	var obsOps [][]*obs.OperatorMetrics
	if reg != nil {
		reg.ResetGraph()
		// Job-level overload counters are pulled from the environment at
		// snapshot time, so /metrics and /cluster/metrics expose shed
		// totals, peak state and the live recall estimate while running.
		armed := ov.Budget.Enabled() || ov.Memory.SoftLimitBytes > 0
		reg.SetOverloadSource(func() obs.OverloadStats {
			return obs.OverloadStats{
				Armed:          armed,
				ShedRecords:    env.shedRecords.Load(),
				PeakState:      env.peakState.Load(),
				Matches:        env.matchesEmitted.Load(),
				LostBound:      env.LostMatchBound(),
				RecallEstimate: env.RecallEstimate(),
			}
		})
		obsOps = make([][]*obs.OperatorMetrics, len(env.nodes))
		for i, n := range env.nodes {
			obsOps[i] = make([]*obs.OperatorMetrics, n.parallelism)
			for inst := 0; inst < n.parallelism; inst++ {
				obsOps[i][inst] = reg.Operator(n.name, inst)
			}
		}
		for i, n := range env.nodes {
			to := n.name
			if len(n.inEdges) > 0 {
				rts[i].queued = new(atomic.Int64)
			}
			for _, e := range n.inEdges {
				// Channels hold batches, so len(chan) no longer measures
				// records; senders and receivers maintain a shared record
				// counter instead. It may dip below zero transiently (the
				// receiver can drain a batch before the sender's post-send
				// increment lands), hence the clamp.
				e.queued = rts[i].queued
				q := rts[i].queued
				e.obs = reg.Edge(e.from.name, to, chanCap*env.cfg.BatchSize*len(e.chans), func() int {
					if v := q.Load(); v > 0 {
						return int(v)
					}
					return 0
				})
			}
		}
	}

	// Barrier/checkpoint observability: named histograms for barrier
	// propagation, alignment stall and checkpoint duration, exported through
	// the registry alongside the operator metrics.
	if ckr := env.ckpt.Load(); ckr != nil && reg != nil {
		ckr.propHist = new(obs.Histogram)
		ckr.alignHist = new(obs.Histogram)
		ckr.durHist = new(obs.Histogram)
		reg.RegisterHistogram("barrier_propagation", ckr.propHist)
		reg.RegisterHistogram("barrier_alignment", ckr.alignHist)
		reg.RegisterHistogram("checkpoint_duration", ckr.durHist)
	}

	if l := env.cfg.Log; l != nil {
		l.Debug("asp: executing graph",
			"nodes", len(env.nodes), "batch", env.cfg.BatchSize,
			"distributed", env.cfg.Dist != nil)
	}

	// The environment-wide batch buffer pool; hit/miss counters are
	// published through the registry when one is attached.
	pool := newBatchPool(env.cfg.BatchSize, reg.Pool("batch"))

	newCollector := func(n *node) func(instance int) *Collector {
		return func(instance int) *Collector {
			c := &Collector{
				env: env, metrics: n.metrics, done: done,
				lastWM: event.MinWatermark,
				batch:  env.cfg.BatchSize, pool: pool,
				node: n.name, instance: instance,
				tracer: env.cfg.Trace,
			}
			if obsOps != nil {
				c.obsOp = obsOps[n.id][instance]
			}
			if ov.Budget.Enabled() {
				c.budgeted = true
				c.failPolicy = ov.Policy == overload.Fail
				c.perOp = ov.Budget.PerOperator
				c.perJob = ov.Budget.PerJob
			}
			for _, e := range n.outEdges {
				c.senders = append(c.senders, edgeSender{
					e:         e,
					srcID:     uint16(e.srcBase + instance),
					forwardTo: instance % maxIntExec(1, e.to.parallelism),
					obsEdge:   e.obs,
					pending:   make([][]Record, len(e.chans)),
				})
			}
			return c
		}
	}

	// Distributed splicing. Every worker builds the identical graph; the
	// placement function decides which instances run here. Remote-owned
	// instances fed by at least one local sender get their input channel
	// replaced by a proxy channel (visible to senders through the aliased
	// e.chans slices) drained by an egress pump that hands batches to the
	// transport; locally-owned instances register their input channel as a
	// network ingress so remote senders' frames are delivered into it.
	// Watermarks, barriers and EOS markers ride along unchanged.
	dist := env.cfg.Dist
	localInst := func(n *node, inst int) bool {
		return dist == nil || dist.Owner(n.name, inst) == dist.Worker
	}
	var wg sync.WaitGroup
	var live []*liveInstance
	if dist != nil {
		for i, n := range env.nodes {
			rt := &rts[i]
			if len(n.inEdges) == 0 {
				continue
			}
			// Local sender instances feeding this node, counted per edge:
			// each one delivers exactly one EOS marker per target instance,
			// which is how an egress pump knows its local upstreams are done.
			localSenders := 0
			for _, e := range n.inEdges {
				for s := 0; s < e.from.parallelism; s++ {
					if localInst(e.from, s) {
						localSenders++
					}
				}
			}
			for t := 0; t < n.parallelism; t++ {
				owner := dist.Owner(n.name, t)
				if owner == dist.Worker {
					dist.Transport.Ingress(n.name, n.id, t, rt.in[t], rt.queued)
					continue
				}
				if localSenders == 0 {
					continue // nothing local ever writes to this input
				}
				send, err := dist.Transport.Egress(owner, n.name, n.id, t)
				if err != nil {
					return fmt.Errorf("asp: no egress to worker %d for %s/%d: %w", owner, n.name, t, err)
				}
				proxy := make(chan []Record, chanCap)
				rt.in[t] = proxy
				wg.Add(1)
				ir := &liveInstance{task: fmt.Sprintf("net:%s/%d>w%d", n.name, t, owner)}
				live = append(live, ir)
				nq := rt.queued
				go func(n *node, t, expect int, ir *liveInstance) {
					defer wg.Done()
					defer ir.done.Store(true)
					eos := 0
					for eos < expect {
						select {
						case batch := <-proxy:
							for _, r := range batch {
								if r.Kind == KindEOS {
									eos++
								}
							}
							err := send(batch)
							if nq != nil {
								nq.Add(int64(-len(batch)))
							}
							pool.put(batch)
							if err != nil {
								env.fail(&NetworkFailure{Node: n.name, Target: t, Worker: owner, Err: err})
								return
							}
						case <-done:
							return
						}
					}
				}(n, t, localSenders, ir)
			}
		}
	}

	// Every instance goroutine runs under a panic-recovery guard that
	// converts a panic in operator or user code into a structured
	// OperatorFailure and cancels the run, draining the rest of the graph
	// through the shared done channel instead of crashing the process. The
	// liveness flags let a shutdown deadline name instances that refuse to
	// drain.
	for i, n := range env.nodes {
		rt := &rts[i]
		mkCol := newCollector(n)
		for inst := 0; inst < n.parallelism; inst++ {
			if !localInst(n, inst) {
				continue
			}
			wg.Add(1)
			ir := &liveInstance{task: taskID(n, inst)}
			live = append(live, ir)
			if n.source != nil {
				go func(n *node, inst int, ir *liveInstance) {
					defer wg.Done()
					defer ir.done.Store(true)
					col := mkCol(inst)
					defer guard(env, n, inst, true, col)
					runSource(env, n, inst, col)
				}(n, inst, ir)
			} else {
				go func(n *node, inst int, in chan []Record, nSrc int, nq *atomic.Int64, ir *liveInstance) {
					defer wg.Done()
					defer ir.done.Store(true)
					col := mkCol(inst)
					defer guard(env, n, inst, false, col)
					runInstance(env, n, inst, in, nSrc, nq, col, done)
				}(n, inst, rt.in[inst], rt.nSrc, rt.queued, ir)
			}
		}
	}

	// Periodic checkpoint triggering: one checkpoint in flight at a time;
	// the ticker simply retries while the previous one completes.
	var tickerDone, tickerStop chan struct{}
	if spec := env.cfg.Checkpoint; spec != nil && spec.Interval > 0 {
		tickerDone = make(chan struct{})
		tickerStop = make(chan struct{})
		go func() {
			defer close(tickerDone)
			ticker := time.NewTicker(spec.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					env.TriggerCheckpoint()
				case <-done:
					return
				case <-tickerStop:
					return
				}
			}
		}()
	}
	// Wait for the dataflow, bounding teardown by the shutdown deadline:
	// once the run is cancelled or fails, a wedged instance (stuck in user
	// code, a chaos stall) must not hang Execute forever — after the
	// deadline the stuck goroutines are abandoned and named in the error.
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	var stuck *ErrShutdownTimeout
	select {
	case <-waitDone:
	case <-done:
		if to := env.cfg.ShutdownTimeout; to > 0 {
			timer := time.NewTimer(to)
			select {
			case <-waitDone:
				timer.Stop()
			case <-timer.C:
				var names []string
				for _, ir := range live {
					if !ir.done.Load() {
						names = append(names, ir.task)
					}
				}
				stuck = &ErrShutdownTimeout{Timeout: to, Stuck: names, Cause: context.Cause(ctx)}
				if l := env.cfg.Log; l != nil {
					l.Warn("asp: shutdown deadline exceeded, abandoning stuck instances",
						"timeout", to, "stuck", names)
				}
			}
		} else {
			<-waitDone
		}
	}
	if tickerDone != nil {
		close(tickerStop)
		<-tickerDone
	}
	if stuck != nil {
		return stuck
	}

	// A non-nil cause is either a failure raised through env.fail (state
	// budget, isolated panic, snapshot error) or the parent context's
	// cancellation; normal completion never cancels before this point.
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return nil
}

// liveInstance tracks one instance goroutine's liveness for the shutdown
// deadline's stuck-instance report.
type liveInstance struct {
	task string
	done atomic.Bool
}

// guard is deferred around every instance goroutine: it converts a panic
// into a structured OperatorFailure — attributed to the record under
// processing when one is — and fails the run, which drains the remaining
// instances cleanly via cancellation.
func guard(env *Environment, n *node, inst int, source bool, col *Collector) {
	p := recover()
	if p == nil {
		return
	}
	f := &OperatorFailure{
		Node:     n.name,
		Instance: inst,
		Task:     taskID(n, inst),
		Source:   source,
		Panic:    p,
		Stack:    debug.Stack(),
	}
	if col.curSet && col.cur != nil {
		f.RecordSummary = summarize(*col.cur)
		f.RecordKey = poisonKey(*col.cur)
	}
	env.fail(f)
}

func maxIntExec(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// setupCheckpointing builds the coordinator and, when requested, loads the
// snapshot to restore. Called by Execute before the dataflow starts.
func (env *Environment) setupCheckpointing() error {
	spec := env.cfg.Checkpoint
	if spec == nil {
		return nil
	}
	fp := env.fingerprint()
	if spec.Ack != nil {
		// Remote (distributed-worker) mode: acknowledgements are forwarded
		// to the coordinator process; completion is decided there. Restores
		// come from the snapshot shipped in the job spec, not a store.
		ck := &ckptRuntime{ack: spec.Ack}
		if spec.Snapshot != nil {
			if spec.Snapshot.Fingerprint != fp {
				return fmt.Errorf("asp: shipped snapshot %d was taken on a different graph", spec.Snapshot.ID)
			}
			ck.restored = spec.Snapshot
			ck.base = spec.Snapshot.ID
		}
		ck.requested.Store(ck.base)
		env.ckpt.Store(ck)
		return nil
	}
	if spec.Store == nil {
		return errors.New("asp: checkpoint spec has no store")
	}
	// The task list always spans the FULL graph, even when this process is
	// a distributed coordinator running only a slice of it: remote workers'
	// acknowledgements are forwarded into this coordinator, and a
	// checkpoint completes only once every instance everywhere has acked.
	var tasks []string
	for _, n := range env.nodes {
		for inst := 0; inst < n.parallelism; inst++ {
			tasks = append(tasks, taskID(n, inst))
		}
	}
	ck := &ckptRuntime{onTrigger: spec.OnTrigger}
	if spec.Restore {
		var err error
		if spec.RestoreID > 0 {
			ck.restored, err = spec.Store.Load(spec.RestoreID)
		} else {
			ck.restored, err = spec.Store.Latest()
		}
		if err != nil {
			return fmt.Errorf("asp: loading snapshot: %w", err)
		}
		if ck.restored != nil {
			if ck.restored.Fingerprint != fp {
				return fmt.Errorf("asp: snapshot %d was taken on a different graph", ck.restored.ID)
			}
			ck.base = ck.restored.ID
		}
	}
	ck.coord = checkpoint.NewCoordinator(spec.Store, fp, tasks, ck.base)
	ck.coord.OnError = env.fail
	ck.coord.OnComplete = env.onCheckpointComplete
	ck.ack = ck.coord
	ck.requested.Store(ck.base)
	env.ckpt.Store(ck)
	return nil
}

// onCheckpointComplete publishes every completed checkpoint to the tracing
// and metrics planes and logs it. Invoked by the coordinator with its lock
// held — it must not call back into the coordinator.
func (env *Environment) onCheckpointComplete(st checkpoint.Stat) {
	if ckr := env.ckpt.Load(); ckr != nil && ckr.durHist != nil {
		ckr.durHist.Record(st.Duration.Nanoseconds())
	}
	if tr := env.cfg.Trace; tr != nil {
		end := st.CompletedAt.UnixNano()
		tr.Add(trace.Span{
			Trace: uint64(st.ID), Kind: trace.KindBarrier,
			Name:    fmt.Sprintf("checkpoint-%d", st.ID),
			StartNs: end - st.Duration.Nanoseconds(), DurNs: st.Duration.Nanoseconds(),
		})
	}
	if l := env.cfg.Log; l != nil {
		l.Debug("asp: checkpoint complete",
			"id", st.ID, "duration", st.Duration,
			"align_pause", st.AlignPause, "bytes", st.Bytes, "tasks", st.Tasks)
	}
}

// sourceState is the serialized state of a source instance: the offset of
// the next event to emit and the maximum event time seen, so replayed
// watermarks keep the same disorder bound.
type sourceState struct {
	Offset int
	MaxTS  event.Time
}

func runSource(env *Environment, n *node, inst int, col *Collector) {
	events := n.source.events[inst]
	interval := env.cfg.WatermarkInterval
	maxTS := event.MinWatermark
	start := 0
	ck := env.ckpt.Load()
	var task string
	var lastBarrier int64
	if ck != nil {
		task = taskID(n, inst)
		lastBarrier = ck.base
		if ck.restored != nil {
			if data := ck.restored.Tasks[task]; len(data) > 0 {
				var st sourceState
				if err := gobDecode(data, &st); err != nil {
					env.fail(fmt.Errorf("asp: restoring source %s: %w", task, err))
					return
				}
				start, maxTS = st.Offset, st.MaxTS
				if start > len(events) {
					start = len(events)
				}
			}
		}
	}
	// snapshotAt serializes the source position with offset events emitted.
	snapshotAt := func(offset int) []byte {
		data, err := gobEncode(sourceState{Offset: offset, MaxTS: maxTS})
		if err != nil {
			env.fail(fmt.Errorf("asp: snapshotting source %s: %w", task, err))
		}
		return data
	}
	// Fault-injection point and quarantined key set for this instance; both
	// are nil in ordinary runs, keeping the per-event overhead at two
	// pointer comparisons.
	pt := env.cfg.Chaos.Point(n.name, inst)
	qkeys := env.cfg.Quarantine.keysFor(n.name)
	var pace func(i int)
	if rate := n.source.ratePerSec; rate > 0 {
		startAt := time.Now()
		perEvent := float64(time.Second) / rate
		pace = func(i int) {
			due := startAt.Add(time.Duration(float64(i) * perEvent))
			if d := time.Until(due); d > 0 {
				// Idle flush: a paced source must not sit on a partial
				// batch while downstream waits for it.
				if !col.flush() {
					return
				}
				select {
				case <-time.After(d):
				case <-col.done:
					col.aborted = true
				}
			}
		}
	}
	// gate is the overload admission switch (Pause policy / heap
	// controller); nil on ordinary runs — one pointer comparison per event.
	gate := env.gate
	emitted := 0
	// rec is hoisted so panic attribution can point at it without copying
	// the record on every emit.
	var rec Record
	col.cur = &rec
	for i := start; i < len(events); i++ {
		if gate != nil && gate.Paused() {
			// Intake is suspended: trickle instead of halting outright —
			// watermarks must keep advancing or downstream state would
			// never drain and the pause would deadlock. One short sleep
			// per event throttles the source by ~3 orders of magnitude.
			if !col.flush() {
				return
			}
			select {
			case <-time.After(time.Millisecond):
			case <-col.done:
				col.aborted = true
				return
			}
		}
		if ck != nil {
			// Barrier injection: snapshot the replay position, ack the
			// coordinator and emit the barrier before the next event, so
			// everything before the barrier is pre-checkpoint.
			if id := ck.requested.Load(); id > lastBarrier {
				lastBarrier = id
				ck.ack.Ack(id, task, snapshotAt(i), 0)
				col.forwardBarrier(id)
				if col.aborted {
					return
				}
			}
		}
		e := events[i]
		if pace != nil {
			pace(emitted)
			if col.aborted {
				return
			}
		}
		emitted++
		if n.source.stampIngest {
			e.Ingest = time.Now().UnixNano()
		}
		rec = EventRecord(e)
		if qkeys != nil {
			// Quarantined records leave the stream here, before they can
			// advance the watermark — the replayed run behaves as if the
			// poison event never existed.
			if k := poisonKey(rec); hasQuarantined(qkeys, k) {
				if cb := env.cfg.Quarantine.OnDrop; cb != nil {
					cb(n.name, inst, k, summarize(rec))
				}
				continue
			}
		}
		if e.TS > maxTS {
			maxTS = e.TS
			// Publish the stream-wide max event time: the reference point
			// for every operator's watermark lag (nil-safe, no-op when no
			// metrics registry is attached).
			col.obsOp.ObserveEventTime(int64(e.TS))
		}
		if tr := col.tracer; tr != nil {
			// Deterministic sampling decision: the same event is sampled in
			// every run and on every worker, so traces stay reproducible.
			if id, ok := tr.Sample(e); ok {
				rec.TraceNs = time.Now().UnixNano()
				tr.Add(trace.Span{
					Trace: id, Kind: trace.KindSource,
					Name: n.name, Instance: inst, StartNs: rec.TraceNs,
				})
			}
		}
		col.curSet = true
		if pt != nil {
			var k string
			if pt.NeedKey {
				k = poisonKey(rec)
			}
			pt.Hit(k)
		}
		col.Emit(rec)
		col.curSet = false
		if col.aborted {
			return
		}
		if (i+1)%interval == 0 {
			// The watermark trails the maximum seen event time by the
			// source's disorder bound (zero for time-ordered streams).
			col.forwardWatermark(sourceWatermark(maxTS, n.source.lateness))
			if col.aborted {
				return
			}
		}
	}
	if ck != nil {
		if id := ck.requested.Load(); id > lastBarrier {
			ck.ack.Ack(id, task, snapshotAt(len(events)), 0)
			col.forwardBarrier(id)
			if col.aborted {
				return
			}
		}
		ck.ack.FinishTask(task, snapshotAt(len(events)))
	}
	col.eos()
}

// sourceWatermark computes the watermark a source may emit after seeing a
// maximum event time of maxTS under the given disorder bound: maxTS -
// lateness - 1, saturating at MinWatermark instead of wrapping around when
// no event has been seen yet (maxTS == event.MinWatermark, e.g. a source
// restored from a pre-first-event checkpoint) or when maxTS sits near the
// bottom of the time domain. A wrapped watermark would jump ahead of every
// event time and fire all downstream windows prematurely.
func sourceWatermark(maxTS, lateness event.Time) event.Time {
	wm := maxTS - lateness - 1
	if wm > maxTS { // int64 underflow wrapped around
		return event.MinWatermark
	}
	return wm
}

func runInstance(env *Environment, n *node, inst int, in chan []Record, nSrc int, nq *atomic.Int64, col *Collector, done <-chan struct{}) {
	op := n.newOp(inst)
	// Fault-injection point and quarantined key set for this instance; both
	// are nil in ordinary runs (two pointer comparisons per data record).
	pt := env.cfg.Chaos.Point(n.name, inst)
	qkeys := env.cfg.Quarantine.keysFor(n.name)
	// acct feeds the per-operator state gauges (Partials, StateBytes)
	// after every watermark; checkState enforces the Shed/Pause overload
	// policies after every record and watermark. Both are nil on ordinary
	// runs — one nil comparison each on the hot path.
	acct, _ := op.(StateAccountant)
	var checkState func()
	if ov := env.cfg.Overload; ov.Budget.Enabled() && ov.Policy != overload.Fail {
		perOp, perJob := ov.Budget.PerOperator, ov.Budget.PerJob
		lw := ov.Budget.EffectiveLowWater()
		switch ov.Policy {
		case overload.Shed:
			shedder, canShed := op.(Shedder)
			valueShedder, canValue := op.(ValueShedder)
			stratSetter, canArm := op.(ShedStrategySetter)
			if ss, ok := op.(SelfShedder); ok {
				// Operators whose state can multiply within a single call
				// (the NFA under skip-till-any-match) cap themselves at
				// insertion time; post-call checks cannot bound that growth.
				eff := perOp
				if eff <= 0 || (perJob > 0 && perJob < eff) {
					eff = perJob
				}
				if eff > 0 {
					ss.SetStateBudget(eff, int64(lw*float64(eff)), col.recordShed)
				}
			}
			// The live strategy may be switched mid-run by a quality
			// controller; syncStrategy observes the change on this
			// instance's own goroutine, arming or disarming the operator's
			// scoring structures exactly once per flip.
			armed := false
			syncStrategy := func() bool {
				aware := env.ShedStrategy() == overload.PatternAware
				if canArm && aware != armed {
					stratSetter.SetShedStrategy(aware)
					armed = aware
				}
				return aware
			}
			syncStrategy()
			shed := func(target int64, aware bool) int64 {
				if aware && canValue {
					return valueShedder.ShedLowestValue(target, col)
				}
				return shedder.ShedOldest(target, col)
			}
			failOver := func(records, budget int64, perJobScope bool) {
				env.fail(&BudgetExceededError{
					Node: n.name, Instance: inst,
					Records: records, Budget: budget, PerJob: perJobScope,
				})
				col.aborted = true
			}
			checkState = func() {
				aware := syncStrategy()
				if perOp > 0 && col.instState >= perOp {
					if !canShed {
						failOver(col.instState, perOp, false)
						return
					}
					col.recordShed(shed(int64(lw*float64(perOp)), aware))
				}
				if perJob <= 0 || col.instState == 0 {
					return
				}
				if total := env.totalState.Load(); total >= perJob {
					if !canShed {
						failOver(total, perJob, true)
						return
					}
					// The noticing instance sheds the job-wide excess from
					// its own state (it cannot reach the others'); every
					// stateful instance runs this check, so pressure lands
					// where state actually sits.
					target := col.instState - (total - int64(lw*float64(perJob)))
					if target < 0 {
						target = 0
					}
					col.recordShed(shed(target, aware))
				}
			}
		case overload.Pause:
			gate := env.gate
			lowOp := int64(lw * float64(perOp))
			lowJob := int64(lw * float64(perJob))
			raised := false
			checkState = func() {
				if !raised {
					if (perOp > 0 && col.instState >= perOp) ||
						(perJob > 0 && env.totalState.Load() >= perJob) {
						raised = true
						gate.Raise()
					}
					return
				}
				if (perOp <= 0 || col.instState <= lowOp) &&
					(perJob <= 0 || env.totalState.Load() <= lowJob) {
					raised = false
					gate.Lower()
				}
			}
			defer func() {
				if raised {
					gate.Lower()
				}
			}()
		}
	}
	// Stateful window operators cannot tolerate data records at or below
	// their merged watermark (they would re-open fired windows); the engine
	// drops such over-disordered records at the operator's input.
	_, dropLate := op.(LateDropper)
	ck := env.ckpt.Load()
	var task string
	if ck != nil {
		task = taskID(n, inst)
		if ck.restored != nil {
			if data := ck.restored.Tasks[task]; len(data) > 0 {
				s, ok := op.(Snapshotter)
				if !ok {
					env.fail(fmt.Errorf("asp: snapshot carries state for non-snapshottable %s", task))
					return
				}
				if err := s.RestoreState(data); err != nil {
					env.fail(fmt.Errorf("asp: restoring %s: %w", task, err))
					return
				}
				if sc, ok := op.(StateCounter); ok {
					col.AddState(sc.BufferedState())
				}
			}
		}
	}
	holder, _ := op.(WatermarkHolder)
	wms := make([]event.Time, maxIntExec(nSrc, 1))
	for i := range wms {
		wms[i] = event.MinWatermark
	}
	finished := make([]bool, maxIntExec(nSrc, 1))
	remaining := nSrc
	curWM := event.MinWatermark

	advance := func(src uint16, wm event.Time) {
		if wm <= wms[src] {
			return
		}
		wms[src] = wm
		min := wms[0]
		for _, w := range wms[1:] {
			if w < min {
				min = w
			}
		}
		if min > curWM {
			curWM = min
			op.OnWatermark(curWM, col)
			if checkState != nil {
				checkState()
			}
			if acct != nil && col.obsOp != nil {
				// Publish the state gauges on watermark cadence: often
				// enough for /debug/topology to show hotspots, cheap
				// enough to stay off the per-record path.
				st := acct.StateStats()
				col.obsOp.Partials.Store(st.Records)
				col.obsOp.StateBytes.Store(st.Bytes)
			}
			fw := curWM
			if holder != nil {
				if h := holder.Hold(); h < fw {
					fw = h
				}
			}
			col.forwardWatermark(fw)
		}
	}

	// Aligned-barrier checkpointing state. While a checkpoint is aligning,
	// records from senders whose barrier already arrived are stashed and
	// replayed after the snapshot, so the captured state reflects exactly
	// the pre-barrier prefix of every input. A sender's EOS counts as its
	// barrier for the current and all future checkpoints.
	var (
		alignID    int64 // checkpoint being aligned; 0 = none
		alignGot   []bool
		alignStart time.Time
		stash      []Record
	)
	if ck != nil {
		alignGot = make([]bool, maxIntExec(nSrc, 1))
	}
	aligned := func() bool {
		for s := 0; s < nSrc; s++ {
			if !alignGot[s] && !finished[s] {
				return false
			}
		}
		return true
	}
	completeAlignment := func() {
		var data []byte
		if s, ok := op.(Snapshotter); ok {
			t0 := time.Now()
			var err error
			data, err = s.SnapshotState()
			if err != nil {
				env.fail(fmt.Errorf("asp: snapshotting %s: %w", task, err))
				col.aborted = true
				return
			}
			n.metrics.Ckpts.Add(1)
			n.metrics.CkptBytes.Add(int64(len(data)))
			n.metrics.CkptNanos.Add(time.Since(t0).Nanoseconds())
		}
		pause := time.Since(alignStart)
		ck.ack.Ack(alignID, task, data, pause)
		if ck.alignHist != nil {
			ck.alignHist.Record(pause.Nanoseconds())
		}
		if col.tracer != nil {
			col.tracer.Add(trace.Span{
				Trace: uint64(alignID), Kind: trace.KindBarrier,
				Name: "align:" + n.name, Instance: inst,
				StartNs: alignStart.UnixNano(), DurNs: pause.Nanoseconds(),
			})
		}
		col.forwardBarrier(alignID)
		alignID = 0
	}
	maybeAlign := func() {
		if alignID != 0 && aligned() {
			completeAlignment()
		}
	}

	// process handles one in-order record; it returns false when the
	// instance is done (all inputs exhausted or the run aborted). It takes a
	// pointer so panic attribution and the fault/quarantine checks avoid
	// copying the record on the hot path.
	process := func(r *Record) bool {
		switch r.Kind {
		case KindEOS:
			remaining--
			finished[r.Src] = true
			advance(r.Src, event.MaxWatermark)
			if ck != nil {
				maybeAlign()
			}
			if remaining == 0 {
				// No stashed record can remain here: a sender's EOS is
				// stashed, not processed, while that sender is aligned.
				op.OnClose(col)
				col.forwardWatermark(event.MaxWatermark)
				if ck != nil {
					// Post-flush state is the task's implicit ack for all
					// future checkpoints (nil for stateless operators).
					var final []byte
					if s, ok := op.(Snapshotter); ok {
						var err error
						if final, err = s.SnapshotState(); err != nil {
							env.fail(fmt.Errorf("asp: snapshotting finished %s: %w", task, err))
							col.aborted = true
							return false
						}
					}
					ck.ack.FinishTask(task, final)
				}
				col.eos()
				return false
			}
		case KindWatermark:
			advance(r.Src, r.TS)
		case KindBarrier:
			if ck == nil {
				return true
			}
			if r.TraceNs != 0 {
				// Barrier propagation latency: sender's forwardBarrier stamp
				// to receipt here, covering queue wait (and the network hop
				// on spliced edges).
				if d := time.Now().UnixNano() - r.TraceNs; d >= 0 {
					if ck.propHist != nil {
						ck.propHist.Record(d)
					}
					if col.tracer != nil {
						col.tracer.Add(trace.Span{
							Trace: uint64(r.TS), Kind: trace.KindBarrier,
							Name: "barrier:" + n.name, Instance: inst,
							StartNs: r.TraceNs, DurNs: d,
						})
					}
				}
			}
			if alignID == 0 {
				alignID = r.TS
				alignStart = time.Now()
				for i := range alignGot {
					alignGot[i] = false
				}
			}
			if r.TS == alignID {
				alignGot[r.Src] = true
				maybeAlign()
			}
		default:
			if qkeys != nil {
				if k := poisonKey(*r); hasQuarantined(qkeys, k) {
					if cb := env.cfg.Quarantine.OnDrop; cb != nil {
						cb(n.name, inst, k, summarize(*r))
					}
					return true
				}
			}
			// Track the record under processing so a panic inside OnRecord
			// (or an injected fault) is attributed to it.
			col.cur, col.curSet = r, true
			if pt != nil {
				var k string
				if pt.NeedKey {
					k = poisonKey(*r)
				}
				pt.Hit(k)
			}
			n.metrics.In.Add(1)
			om := col.obsOp
			late := r.TS <= curWM
			if om != nil {
				om.In.Add(1)
				if late {
					// Arrived at or below the merged watermark: over-
					// disordered input (or a restore/replay race).
					om.Late.Add(1)
				}
			}
			if late && dropLate {
				// A late data record would move the operator's window
				// bookkeeping (nextFire) below windows that already fired,
				// duplicating or losing firings. The Late counter above is
				// the drop count.
				col.curSet = false
				return true
			}
			if r.Kind == KindMatch && len(col.senders) == 0 {
				// A match reaching a terminal node is a detected match;
				// the count feeds the live recall estimate.
				env.matchesEmitted.Add(1)
			}
			traced := col.tracer != nil && r.TraceNs != 0
			if om != nil || traced {
				t0 := time.Now()
				op.OnRecord(int(r.Port), *r, col)
				d := time.Since(t0).Nanoseconds()
				if om != nil {
					om.Proc.Record(d)
				}
				if traced {
					start := t0.UnixNano()
					q := start - r.TraceNs
					if q < 0 {
						q = 0
					}
					col.tracer.Add(trace.Span{
						Trace: traceIDOf(r), Kind: trace.KindOp,
						Name: n.name, Instance: inst,
						StartNs: start, DurNs: d, QueueNs: q,
					})
				}
			} else {
				op.OnRecord(int(r.Port), *r, col)
			}
			if checkState != nil {
				checkState()
			}
			col.curSet = false
		}
		return !col.aborted
	}

	// r is hoisted so process can take its address without a per-iteration
	// heap allocation. Batches are unpacked record by record (stashing
	// copies records out, so the buffer can be recycled immediately after
	// the loop); the flush timer bounds how long this instance's own
	// partial output batches can age while input keeps arriving.
	var r Record
	flushEvery := env.cfg.FlushTimeout
	var lastFlush time.Time
	if flushEvery > 0 {
		lastFlush = time.Now()
	}
	for {
		var batch []Record
		select {
		case batch = <-in:
		default:
			// Input drained: flush pending output (idle flush) so partial
			// batches and coalesced watermarks never wait on further
			// input, then block.
			if !col.flush() {
				return
			}
			select {
			case batch = <-in:
			case <-done:
				return
			}
		}
		if nq != nil {
			nq.Add(-int64(len(batch)))
		}
		for bi := range batch {
			r = batch[bi]
			if alignID != 0 && alignGot[r.Src] {
				stash = append(stash, r)
				continue
			}
			if !process(&r) {
				return
			}
			// Replay stashed records once the alignment completed. A
			// stashed barrier may start the next alignment mid-replay, in
			// which case records from its already-aligned senders are
			// re-stashed in scan order, preserving per-sender FIFO.
			for alignID == 0 && len(stash) > 0 {
				replay := stash
				stash = nil
				for i := range replay {
					rr := &replay[i]
					if alignID != 0 && alignGot[rr.Src] {
						stash = append(stash, *rr)
						continue
					}
					if !process(rr) {
						return
					}
				}
			}
		}
		col.pool.put(batch)
		if flushEvery > 0 && time.Since(lastFlush) >= flushEvery {
			if !col.flush() {
				return
			}
			lastFlush = time.Now()
		}
	}
}
