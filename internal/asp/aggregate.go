package asp

import (
	"sort"
	"unsafe"

	"cep2asp/internal/event"
)

// AggResult is the incremental aggregate of one sliding window and key.
type AggResult struct {
	Count    int64
	Sum      float64
	Min, Max float64
	// Ingest tracks the latest wall-clock creation time among contributing
	// events, so detection latency stays measurable after aggregation.
	Ingest int64
}

func (a *AggResult) add(v float64) {
	if a.Count == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Count++
	a.Sum += v
}

func (a *AggResult) addEvent(e event.Event) {
	a.add(e.Value)
	if e.Ingest > a.Ingest {
		a.Ingest = e.Ingest
	}
}

func (a *AggResult) merge(b AggResult) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	a.Count += b.Count
	a.Sum += b.Sum
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	if b.Ingest > a.Ingest {
		a.Ingest = b.Ingest
	}
}

// Mean returns the running average, or 0 for empty aggregates.
func (a AggResult) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// WindowAggregateSpec configures the sliding window aggregation used by
// optimization O2 (§4.3.2): instead of enumerating iteration combinations,
// count the relevant events per window and emit one approximate result
// tuple when the count reaches m (the skip-till-any-match Kleene+
// variation). Sum/Min/Max/Mean are maintained alongside the count, enabling
// the accumulated-information analyses the paper notes plain ITER results
// barely support.
//
// Windows that receive no event never fire — which is why O2 cannot express
// Kleene* (§4.3.2).
type WindowAggregateSpec struct {
	Window, Slide event.Time
	Key           KeyFn
	// MinCount suppresses windows with fewer events (the n >= m test).
	MinCount int64
	// Output builds the result tuple for a firing window; nil uses
	// DefaultAggOutput.
	Output func(key int64, windowEnd event.Time, a AggResult) event.Event
}

// DefaultAggOutput emits a tuple of the input schema (§4.3.2): the key as
// ID, the window end as timestamp, and the count as value.
func DefaultAggOutput(key int64, windowEnd event.Time, a AggResult) event.Event {
	return event.Event{ID: key, TS: windowEnd, Value: float64(a.Count), Ingest: a.Ingest}
}

// NewWindowAggregate returns the operator factory for Stream.Process.
func NewWindowAggregate(spec WindowAggregateSpec) func(int) Operator {
	if spec.Output == nil {
		spec.Output = DefaultAggOutput
	}
	return func(int) Operator {
		return &windowAggregate{
			spec:     spec,
			state:    make(map[int64]map[event.Time]*AggResult),
			nextFire: event.MaxWatermark,
		}
	}
}

type windowAggregate struct {
	spec      WindowAggregateSpec
	state     map[int64]map[event.Time]*AggResult // key -> pane -> partial
	paneCount int64                               // live panes across groups
	nextFire  event.Time
	freeAgg   []*AggResult // recycled pane partials
}

// DropsLateRecords implements LateDropper: the nextFire tracking in OnRecord
// assumes records arrive above the merged watermark; a late record would
// re-open windows that already fired, so the engine drops it at the input.
func (w *windowAggregate) DropsLateRecords() {}

func (w *windowAggregate) OnRecord(_ int, r Record, out *Collector) {
	if r.Kind != KindEvent {
		return // aggregation is defined over plain event streams
	}
	var key int64
	if w.spec.Key != nil {
		key = w.spec.Key(r)
	}
	panes := w.state[key]
	if panes == nil {
		panes = make(map[event.Time]*AggResult)
		w.state[key] = panes
		out.AddState(1) // account groups, not events: panes hold O(1) state
	}
	idx := event.PaneIndex(r.TS, w.spec.Slide)
	p := panes[idx]
	if p == nil {
		if l := len(w.freeAgg); l > 0 {
			p = w.freeAgg[l-1]
			w.freeAgg = w.freeAgg[:l-1]
			*p = AggResult{}
		} else {
			p = &AggResult{}
		}
		panes[idx] = p
		w.paneCount++
	}
	p.addEvent(r.Event)

	kLo, _ := event.WindowsOf(r.TS, w.spec.Window, w.spec.Slide)
	if ws := kLo * w.spec.Slide; ws < w.nextFire {
		w.nextFire = ws
	}
}

func (w *windowAggregate) OnWatermark(wm event.Time, out *Collector) {
	for w.nextFire <= wm-w.spec.Window+1 {
		pmin, ok := w.minPane()
		if !ok {
			w.nextFire = event.MaxWatermark
			return
		}
		if first := alignUp((pmin+1)*w.spec.Slide-w.spec.Window, w.spec.Slide); first > w.nextFire {
			w.nextFire = first
			continue
		}
		w.fire(w.nextFire, out)
		w.evictBefore(w.nextFire+w.spec.Slide, out)
		w.nextFire += w.spec.Slide
	}
}

func (w *windowAggregate) minPane() (event.Time, bool) {
	min, ok := event.Time(0), false
	for _, panes := range w.state {
		for idx := range panes {
			if !ok || idx < min {
				min, ok = idx, true
			}
		}
	}
	return min, ok
}

func (w *windowAggregate) OnClose(*Collector) {}

// aggState is the gob snapshot DTO of a windowAggregate instance.
type aggState struct {
	Panes    map[int64]map[event.Time]*AggResult
	NextFire event.Time
}

// SnapshotState implements Snapshotter.
func (w *windowAggregate) SnapshotState() ([]byte, error) {
	return gobEncode(aggState{Panes: w.state, NextFire: w.nextFire})
}

// RestoreState implements Snapshotter.
func (w *windowAggregate) RestoreState(data []byte) error {
	var st aggState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	w.state = st.Panes
	if w.state == nil {
		w.state = make(map[int64]map[event.Time]*AggResult)
	}
	w.paneCount = 0
	for _, panes := range w.state {
		w.paneCount += int64(len(panes))
	}
	w.nextFire = st.NextFire
	return nil
}

// BufferedState implements StateCounter: key groups, matching the AddState
// accounting of OnRecord/evictBefore (panes hold O(1) state per group).
func (w *windowAggregate) BufferedState() int64 {
	return int64(len(w.state))
}

// StateStats implements StateAccountant. Records counts key groups — the
// same unit AddState mirrors — while Bytes approximates the live pane
// partials, which is where the memory actually sits.
func (w *windowAggregate) StateStats() StateStats {
	return StateStats{
		Records: int64(len(w.state)),
		Bytes:   w.paneCount * int64(unsafe.Sizeof(AggResult{})),
	}
}

// windowsPerPane bounds the sliding-window firings one pane contributes
// to: ceil(Window/Slide). Used as the per-pane lost-output bound —
// coarse (it ignores MinCount suppression and co-dropped panes sharing
// a firing), but over-counting only lowers the recall estimate, which
// must stay a lower bound.
func (w *windowAggregate) windowsPerPane() float64 {
	return float64((w.spec.Window + w.spec.Slide - 1) / w.spec.Slide)
}

// ShedOldest implements Shedder: the oldest pane is dropped from every key
// group until at most target groups remain (a group only counts against the
// budget while it holds panes). Shed windows fire with underestimated
// aggregates — or, once below MinCount, not at all — so degradation shows up
// as suppressed or lowered counts, never fabricated ones. Every dropped
// pane charges the firings it could have fed.
func (w *windowAggregate) ShedOldest(target int64, out *Collector) int64 {
	var dropped int64
	var lost float64
	for int64(len(w.state)) > target {
		pmin, ok := w.minPane()
		if !ok {
			break
		}
		for key, panes := range w.state {
			if p, hit := panes[pmin]; hit {
				if len(w.freeAgg) < freeListCap {
					w.freeAgg = append(w.freeAgg, p)
				}
				delete(panes, pmin)
				w.paneCount--
				lost += w.windowsPerPane()
			}
			if len(panes) == 0 {
				delete(w.state, key)
				dropped++
				out.AddState(-1)
			}
		}
	}
	out.AddLostMatches(lost)
	return dropped
}

// ShedLowestValue implements ValueShedder: whole key groups with the
// lowest accumulated event count are dropped first — they are the least
// likely to reach MinCount before their windows close, so sacrificing
// them preserves the groups that will actually fire. Ties break on key
// for determinism. The budget unit is groups, matching ShedOldest.
func (w *windowAggregate) ShedLowestValue(target int64, out *Collector) int64 {
	if int64(len(w.state)) <= target {
		return 0
	}
	type aggVictim struct {
		key   int64
		count int64
		panes int
	}
	victims := make([]aggVictim, 0, len(w.state))
	for key, panes := range w.state {
		var c int64
		for _, p := range panes {
			c += p.Count
		}
		victims = append(victims, aggVictim{key, c, len(panes)})
	}
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].count != victims[b].count {
			return victims[a].count < victims[b].count
		}
		return victims[a].key < victims[b].key
	})
	var dropped int64
	var lost float64
	for _, v := range victims {
		if int64(len(w.state)) <= target {
			break
		}
		for _, p := range w.state[v.key] {
			if len(w.freeAgg) < freeListCap {
				w.freeAgg = append(w.freeAgg, p)
			}
		}
		w.paneCount -= int64(v.panes)
		delete(w.state, v.key)
		dropped++
		out.AddState(-1)
		lost += float64(v.panes) * w.windowsPerPane()
	}
	out.AddLostMatches(lost)
	return dropped
}

func (w *windowAggregate) fire(ws event.Time, out *Collector) {
	paneLo := event.PaneIndex(ws, w.spec.Slide)
	paneHi := event.PaneIndex(ws+w.spec.Window-1, w.spec.Slide)
	for key, panes := range w.state {
		var total AggResult
		for p := paneLo; p <= paneHi; p++ {
			if part := panes[p]; part != nil {
				total.merge(*part)
			}
		}
		if total.Count == 0 || total.Count < w.spec.MinCount {
			continue
		}
		e := w.spec.Output(key, ws+w.spec.Window-1, total)
		out.EmitEvent(e)
	}
}

func (w *windowAggregate) evictBefore(liveStart event.Time, out *Collector) {
	cutoff := event.PaneIndex(liveStart, w.spec.Slide)
	for key, panes := range w.state {
		for idx, p := range panes {
			if idx < cutoff {
				if len(w.freeAgg) < freeListCap {
					w.freeAgg = append(w.freeAgg, p)
				}
				delete(panes, idx)
				w.paneCount--
			}
		}
		if len(panes) == 0 {
			delete(w.state, key)
			out.AddState(-1)
		}
	}
}
