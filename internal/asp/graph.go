package asp

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/overload"
	"cep2asp/internal/trace"
)

// Config tunes the execution environment.
type Config struct {
	// DefaultParallelism is the number of instances per stateful node when
	// a stream is keyed; one worker of the paper's testbed corresponds to
	// 16 task slots (§5.1.1). Defaults to 1.
	DefaultParallelism int
	// ChannelCapacity bounds each inter-instance channel; full channels
	// block the sender, propagating backpressure to the sources exactly as
	// Flink's bounded network buffers do (§5.2.4). Defaults to 1024.
	ChannelCapacity int
	// WatermarkInterval is the number of records a source emits between
	// watermarks. Defaults to 64.
	WatermarkInterval int
	// BatchSize is the number of records a sender accumulates per downstream
	// channel before transferring them in one channel operation, amortizing
	// channel synchronization the way Flink's network buffers do. Barriers
	// and EOS markers flush immediately; partial batches flush whenever an
	// instance drains its input (idle flush) and at least every
	// FlushTimeout. 1 disables batching (every record crosses alone);
	// values <= 0 select the default of 64.
	BatchSize int
	// FlushTimeout bounds how long a partial output batch may sit in a
	// busy instance before being flushed, keeping downstream progress (and
	// coalesced watermarks) flowing when an operator emits far fewer
	// records than it consumes. Zero selects the default of 5ms; negative
	// disables the timer (idle and full-batch flushes still apply).
	FlushTimeout time.Duration
	// MaxOperatorState, when positive, bounds the total number of buffered
	// elements across all stateful operators. Exceeding it aborts the run
	// with ErrStateBudget — the analogue of the paper's FlinkCEP runs
	// failing with memory exhaustion (§5.2.3/§5.2.4). It is shorthand for
	// Overload.Budget.PerJob; the policy applied at the bound comes from
	// Overload.Policy (Fail unless configured otherwise).
	MaxOperatorState int64
	// Overload configures bounded-state execution (internal/overload):
	// per-operator and per-job state budgets, the policy applied when a
	// budget is reached (Fail / Shed / Pause), and the heap admission
	// controller. The zero value disables all of it; the un-budgeted hot
	// path keeps its single atomic add per state change.
	Overload overload.Spec
	// Checkpoint enables the aligned-barrier checkpointing and recovery
	// subsystem (internal/checkpoint); nil disables it.
	Checkpoint *CheckpointSpec
	// Metrics attaches the per-operator observability registry
	// (internal/obs): records in/out, late arrivals, per-record processing
	// time, watermarks and lag, per-edge queue depth and blocked-send time.
	// Nil disables instrumentation; the un-observed hot path costs one
	// pointer comparison per record.
	Metrics *obs.Registry
	// Chaos arms deterministic fault-injection points (internal/chaos) in
	// the source, operator and sink execution paths; nil (the default)
	// keeps the un-faulted hot path at one nil comparison per record.
	Chaos *chaos.Injector
	// Quarantine drops dead-lettered poison records before they reach an
	// operator; a supervisor populates it between restarts. Nil disables.
	Quarantine *Quarantine
	// ShutdownTimeout bounds teardown after the run is cancelled or fails:
	// if an operator instance is wedged and does not return within the
	// deadline, Execute abandons it and returns ErrShutdownTimeout listing
	// the stuck instances. Zero waits forever (the pre-supervision
	// behaviour).
	ShutdownTimeout time.Duration
	// Dist, when non-nil, runs this process as one worker of a distributed
	// execution: only locally-owned instances are spawned, and edges
	// crossing a process boundary are spliced through Dist.Transport.
	// Nil (the default) executes the whole graph in-process.
	Dist *DistSpec
	// Trace attaches the end-to-end tracing plane (internal/trace): a
	// deterministic sample of source events is followed through every
	// operator hop, network frame and match derivation, producing
	// queue/proc/network spans plus barrier spans for every checkpoint.
	// Nil disables tracing; the untraced hot path costs one pointer
	// comparison per record.
	Trace *trace.Tracer
	// Log receives structured lifecycle events (execution start/finish,
	// checkpoint completion, shutdown timeouts) with node/instance attrs.
	// Nil disables logging entirely.
	Log *slog.Logger
}

// CheckpointSpec configures checkpointing for one execution.
type CheckpointSpec struct {
	// Store receives completed snapshots and serves restores. Required.
	Store checkpoint.Store
	// Interval auto-triggers a checkpoint this often while the dataflow
	// runs; zero leaves triggering to explicit TriggerCheckpoint calls.
	// Only one checkpoint is in flight at a time, so an interval shorter
	// than the end-to-end barrier round trip degrades to back-to-back
	// checkpoints rather than piling up.
	Interval time.Duration
	// Restore loads a complete snapshot before running: operator state is
	// handed to each instance's RestoreState and sources resume from the
	// recorded offsets. The graph must be built identically to the run
	// that produced the snapshot (same nodes, names and parallelism).
	Restore bool
	// RestoreID selects the snapshot to restore; zero means the latest.
	RestoreID int64

	// The three fields below configure the *remote* half of distributed
	// checkpointing and are mutually exclusive with Store/Interval/Restore:
	// a worker process acknowledges snapshots into Ack (a network forwarder
	// to the coordinator process) instead of a local
	// checkpoint.Coordinator, and restores directly from Snapshot shipped
	// in the job spec instead of reading a store.

	// Ack, when non-nil, receives this process's task acknowledgements;
	// checkpoint completion is decided elsewhere (the coordinator process).
	Ack checkpoint.AckSink
	// Snapshot, when non-nil with Ack set, is restored before running.
	Snapshot *checkpoint.Snapshot
	// OnTrigger, when set on the coordinating process, observes every
	// locally triggered checkpoint ID so it can be broadcast to remote
	// workers (which inject the same barrier via InjectBarrier).
	OnTrigger func(id int64)
}

func (c Config) withDefaults() Config {
	if c.DefaultParallelism <= 0 {
		c.DefaultParallelism = 1
	}
	if c.ChannelCapacity <= 0 {
		c.ChannelCapacity = 1024
	}
	if c.WatermarkInterval <= 0 {
		c.WatermarkInterval = DefaultWatermarkInterval
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 5 * time.Millisecond
	}
	if c.MaxOperatorState > 0 && !c.Overload.Budget.Enabled() {
		// The coarse job-wide budget is the per-job bound of the overload
		// layer; with no policy configured it keeps its historical Fail
		// semantics.
		c.Overload.Budget.PerJob = c.MaxOperatorState
	}
	return c
}

// DefaultBatchSize is the edge batch size used when Config.BatchSize is
// unset: large enough to amortize channel synchronization, small enough to
// keep per-edge buffering far below the default channel capacity.
const DefaultBatchSize = 64

// DefaultWatermarkInterval is the per-source record count between
// watermarks when Config.WatermarkInterval is unset. Exported so replay
// computations (internal/optimizer) can reproduce the watermark a source
// had emitted at a checkpointed offset.
const DefaultWatermarkInterval = 64

// Environment assembles a dataflow graph and executes it. It is not safe
// for concurrent construction; Execute may be called once.
type Environment struct {
	cfg      Config
	nodes    []*node
	executed bool
	// buildErr records the first graph-construction misuse (e.g. Throttle
	// on a non-source stream); Execute surfaces it instead of running a
	// silently misconfigured graph.
	buildErr error

	totalState atomic.Int64
	// shedRecords and peakState quantify bounded-state degradation: total
	// accounting units evicted under the Shed policy, and the largest
	// job-wide state observed on budgeted runs (0 otherwise — peak
	// tracking is gated so the un-budgeted AddState stays one atomic add).
	shedRecords atomic.Int64
	peakState   atomic.Int64
	// matchesEmitted counts matches delivered to terminal (sink) nodes;
	// lostBound (float64 bits) accumulates the upper bound on matches
	// evicted state could still have produced. Together they yield the
	// run's recall estimate — a guaranteed lower bound on achieved recall.
	matchesEmitted atomic.Int64
	lostBound      atomic.Uint64
	// shedStrategy is the live shed-victim selection strategy
	// (overload.ShedStrategy); a quality controller may switch it while
	// the job runs, and operator instances observe the change at their
	// next overload check.
	shedStrategy atomic.Int32
	// gate suspends source intake under the Pause policy and the heap
	// admission controller; nil when neither is configured (one pointer
	// comparison per source event).
	gate   *overload.Gate
	memCtl *overload.Controller
	abort  func(error)
	// failMu guards the externally-visible failure path (Fail): external
	// subsystems — the network transport's receive side, the distributed
	// worker runtime — may report failures before Execute has wired the
	// run's cancellation; such failures are buffered in pendingFail and
	// applied the moment Execute starts.
	failMu      sync.Mutex
	extAbort    func(error)
	pendingFail error
	// ckpt is published by Execute before the dataflow starts; tests may
	// call TriggerCheckpoint concurrently, hence the atomic pointer.
	ckpt atomic.Pointer[ckptRuntime]
}

// ckptRuntime is the per-execution checkpoint machinery.
type ckptRuntime struct {
	// coord decides checkpoint completion; nil on distributed worker
	// processes, where completion is decided by the coordinator process and
	// ack is a network forwarder.
	coord *checkpoint.Coordinator
	// ack receives task acknowledgements — coord locally, a remote
	// forwarder on workers. Never nil while checkpointing is enabled.
	ack       checkpoint.AckSink
	onTrigger func(id int64)
	restored  *checkpoint.Snapshot
	base      int64
	// requested is the latest checkpoint ID sources should inject a
	// barrier for; sources poll it between events.
	requested atomic.Int64
	// Barrier observability (nil without a metrics registry): propHist
	// records per-edge barrier propagation latency (send to receipt),
	// alignHist the per-instance alignment stall, durHist the wall-clock
	// duration of each completed checkpoint. All in nanoseconds.
	propHist  *obs.Histogram
	alignHist *obs.Histogram
	durHist   *obs.Histogram
}

// fingerprint describes the graph shape; snapshots record it so a restore
// into a structurally different graph fails instead of silently
// misassigning state.
func (env *Environment) fingerprint() string {
	var b strings.Builder
	for _, n := range env.nodes {
		fmt.Fprintf(&b, "%d:%s/%d;", n.id, n.name, n.parallelism)
	}
	return b.String()
}

// taskID identifies one operator or source instance across runs of an
// identically built graph.
func taskID(n *node, inst int) string {
	return fmt.Sprintf("%d:%s/%d", n.id, n.name, inst)
}

// TriggerCheckpoint requests a checkpoint and returns its ID. It returns 0
// when checkpointing is not configured, the dataflow is not executing, or
// another checkpoint is still in flight. Safe to call concurrently with
// Execute.
func (env *Environment) TriggerCheckpoint() int64 {
	ck := env.ckpt.Load()
	if ck == nil || ck.coord == nil {
		return 0
	}
	id, ok := ck.coord.Begin()
	if !ok {
		return 0
	}
	ck.requested.Store(id)
	if ck.onTrigger != nil {
		ck.onTrigger(id)
	}
	return id
}

// InjectBarrier asks this process's sources to emit the barrier for an
// externally assigned checkpoint ID — the worker-side counterpart of
// TriggerCheckpoint in a distributed run, where the coordinator process
// assigns IDs and broadcasts them. Monotonic: stale IDs are ignored.
func (env *Environment) InjectBarrier(id int64) {
	ck := env.ckpt.Load()
	if ck == nil {
		return
	}
	for {
		cur := ck.requested.Load()
		if id <= cur {
			return
		}
		if ck.requested.CompareAndSwap(cur, id) {
			return
		}
	}
}

// CheckpointStats returns completion statistics for every checkpoint
// finished so far (empty without checkpointing).
func (env *Environment) CheckpointStats() []checkpoint.Stat {
	ck := env.ckpt.Load()
	if ck == nil || ck.coord == nil {
		return nil
	}
	return ck.coord.Stats()
}

// CompletedCheckpoints returns the number of checkpoints completed so far.
func (env *Environment) CompletedCheckpoints() int64 {
	ck := env.ckpt.Load()
	if ck == nil || ck.coord == nil {
		return 0
	}
	return ck.coord.Completed() - ck.base
}

// AckSink returns the sink receiving this execution's checkpoint
// acknowledgements, or nil without checkpointing. The distributed
// coordinator forwards remote workers' acks into it.
func (env *Environment) AckSink() checkpoint.AckSink {
	ck := env.ckpt.Load()
	if ck == nil {
		return nil
	}
	return ck.ack
}

// NewEnvironment creates an empty environment with the given configuration.
func NewEnvironment(cfg Config) *Environment {
	env := &Environment{cfg: cfg.withDefaults()}
	env.shedStrategy.Store(int32(env.cfg.Overload.Shedding))
	if ov := env.cfg.Overload; ov.Budget.Enabled() || ov.Memory.SoftLimitBytes > 0 {
		// The admission gate is allocated here, not in Execute, so a
		// quality controller built before the run starts can pause intake
		// without racing the gate pointer.
		env.gate = new(overload.Gate)
	}
	return env
}

// NodeMetrics exposes per-node record counters, readable while running.
// The Ckpt* counters accumulate checkpoint overhead across this node's
// instances: snapshots taken, serialized bytes, and time spent capturing
// state.
type NodeMetrics struct {
	Name      string
	In        atomic.Int64
	Out       atomic.Int64
	Ckpts     atomic.Int64
	CkptBytes atomic.Int64
	CkptNanos atomic.Int64
	// Shed counts accounting units this node's instances evicted under
	// the Shed overload policy: the quantified quality loss of a
	// degraded-but-surviving run.
	Shed atomic.Int64
}

type node struct {
	id          int
	name        string
	parallelism int
	newOp       func(instance int) Operator
	inEdges     []*edge
	outEdges    []*edge
	source      *sourceSpec
	metrics     *NodeMetrics
}

type edge struct {
	from, to  *node
	port      uint8
	partition PartitionFn
	// filter, when set, drops single-event records failing the predicate
	// before they cross the channel — operator chaining in the style of
	// Flink's chained tasks: the selection executes inside the upstream
	// instance, saving one channel hop per event.
	filter func(event.Event) bool
	// Filled at execution time:
	chans   []chan []Record
	srcBase int
	// queued counts the records currently buffered in the receiving node's
	// input channels (all in-edges of a node share them). Only maintained
	// when a metrics registry is attached; len(chan) cannot serve as the
	// queue-depth probe anymore because channels carry batches.
	queued *atomic.Int64
	// obs instruments the edge when a metrics registry is attached. All
	// in-edges of a node share the receiver channels, so the queue-depth
	// gauge reports the receiving node's shared input queue.
	obs *obs.EdgeMetrics
}

// PartitionFn routes a data record to one of n downstream instances.
type PartitionFn func(r Record, n int) int

// HashPartition routes by key — the shuffle enabling optimization O3.
func HashPartition(key KeyFn) PartitionFn {
	return func(r Record, n int) int {
		k := key(r)
		// Fibonacci hashing spreads small integer keys.
		h := uint64(k) * 0x9E3779B97F4A7C15
		return int(h % uint64(n))
	}
}

// SinglePartition sends everything to instance 0 — the global-window case
// of non-partitionable patterns (§5.1.2).
func SinglePartition() PartitionFn { return func(Record, int) int { return 0 } }

// Stream is a handle to the output of a node, used to chain operators.
type Stream struct {
	env  *Environment
	node *node
	// edgeFilter is applied on the edges this stream handle creates
	// (FilterFused); nil passes everything.
	edgeFilter func(event.Event) bool
}

// Metrics returns the record counters of the stream's producing node.
func (s *Stream) Metrics() *NodeMetrics { return s.node.metrics }

type sourceSpec struct {
	events [][]event.Event // one slice per instance
	// stampIngest, when set, assigns wall-clock ingest times on emission.
	stampIngest bool
	// lateness bounds how far behind the maximum seen event time an
	// arriving event may be; watermarks trail by this much. Zero means
	// the stream is time-ordered.
	lateness event.Time
	// ratePerSec throttles emission to the given wall-clock rate; zero
	// emits at full speed. Throttled sources measure detection latency at
	// a controlled ingestion rate rather than under full backpressure —
	// the sustainable-throughput methodology of the paper's benchmarking
	// reference (Karimov et al., its [53]).
	ratePerSec float64
}

func (env *Environment) addNode(name string, parallelism int, newOp func(int) Operator) *node {
	n := &node{
		id:          len(env.nodes),
		name:        name,
		parallelism: parallelism,
		newOp:       newOp,
		metrics:     &NodeMetrics{Name: name},
	}
	env.nodes = append(env.nodes, n)
	return n
}

func (env *Environment) connect(from, to *node, port uint8, part PartitionFn) *edge {
	e := &edge{from: from, to: to, port: port, partition: part}
	from.outEdges = append(from.outEdges, e)
	to.inEdges = append(to.inEdges, e)
	return e
}

// connectFrom wires a stream handle, carrying its fused edge filter.
func (env *Environment) connectFrom(s *Stream, to *node, port uint8, part PartitionFn) {
	e := env.connect(s.node, to, port, part)
	e.filter = s.edgeFilter
}

// FilterFused attaches a selection to the stream's future edges instead of
// creating a filter node: the predicate runs inside the upstream operator
// instance (operator chaining), eliminating one channel hop per event.
// Semantically identical to Filter; composes with an existing fused filter.
func (s *Stream) FilterFused(pred func(event.Event) bool) *Stream {
	prev := s.edgeFilter
	combined := pred
	if prev != nil {
		combined = func(e event.Event) bool { return prev(e) && pred(e) }
	}
	return &Stream{env: s.env, node: s.node, edgeFilter: combined}
}

// Source adds a single-instance source emitting the given pre-generated,
// per-source time-ordered events. stampIngest assigns wall-clock creation
// times used for detection latency (§5.1.3).
func (env *Environment) Source(name string, events []event.Event, stampIngest bool) *Stream {
	n := env.addNode(name, 1, nil)
	n.source = &sourceSpec{events: [][]event.Event{events}, stampIngest: stampIngest}
	return &Stream{env: env, node: n}
}

// Throttle limits the stream's source to the given wall-clock emission
// rate in events per second. Only valid on source streams with a positive
// rate; misuse is recorded and surfaces as an error from Execute.
func (s *Stream) Throttle(ratePerSec float64) *Stream {
	if s.node.source == nil {
		s.env.recordBuildErr(fmt.Errorf("asp: Throttle on %q: only source streams can be throttled", s.node.name))
		return s
	}
	if !(ratePerSec > 0) { // rejects zero, negatives and NaN
		s.env.recordBuildErr(fmt.Errorf("asp: Throttle on %q: rate must be positive, got %v events/s", s.node.name, ratePerSec))
		return s
	}
	s.node.source.ratePerSec = ratePerSec
	return s
}

// recordBuildErr retains the first graph-construction error for validate.
func (env *Environment) recordBuildErr(err error) {
	if env.buildErr == nil {
		env.buildErr = err
	}
}

// SourceOutOfOrder adds a source whose events may arrive out of event-time
// order by at most lateness: watermarks trail the maximum seen event time
// by that bound, so downstream windows wait for stragglers. Events more
// disordered than the bound arrive late: window operators (LateDropper)
// drop them before processing and count them in the per-operator Late
// metric — a non-zero counter means the declared bound is too tight.
func (env *Environment) SourceOutOfOrder(name string, events []event.Event, stampIngest bool, lateness event.Time) *Stream {
	if lateness < 0 {
		env.recordBuildErr(fmt.Errorf("asp: source %q: negative lateness %d; a disorder bound cannot be negative", name, lateness))
		lateness = 0
	}
	n := env.addNode(name, 1, nil)
	n.source = &sourceSpec{events: [][]event.Event{events}, stampIngest: stampIngest, lateness: lateness}
	return &Stream{env: env, node: n}
}

// ParallelSource adds a source with one instance per event slice; each
// slice must be time-ordered.
func (env *Environment) ParallelSource(name string, perInstance [][]event.Event, stampIngest bool) *Stream {
	n := env.addNode(name, len(perInstance), nil)
	n.source = &sourceSpec{events: perInstance, stampIngest: stampIngest}
	return &Stream{env: env, node: n}
}

// Filter appends a selection operator (stateless, same parallelism,
// forward-connected).
func (s *Stream) Filter(name string, pred func(event.Event) bool) *Stream {
	return s.chainStateless(name, func(int) Operator {
		return &filterOperator{pred: pred}
	})
}

// FilterMatch appends a residual predicate over composite constituents.
func (s *Stream) FilterMatch(name string, pred func([]event.Event) bool) *Stream {
	return s.chainStateless(name, func(int) Operator {
		return &matchFilterOperator{pred: pred}
	})
}

// Map appends a projection operator.
func (s *Stream) Map(name string, fn func(event.Event) event.Event) *Stream {
	return s.chainStateless(name, func(int) Operator {
		return &mapOperator{fn: fn}
	})
}

// Apply appends a custom stateless stage given by a plain function.
func (s *Stream) Apply(name string, fn func(port int, r Record, out *Collector)) *Stream {
	return s.chainStateless(name, func(int) Operator {
		return &funcOperator{fn: fn}
	})
}

func (s *Stream) chainStateless(name string, newOp func(int) Operator) *Stream {
	n := s.env.addNode(name, s.node.parallelism, newOp)
	// Stateless stages preserve partitioning: instance i feeds instance i;
	// a nil partitioner marks forwarding, resolved per sender in exec.go.
	s.env.connectFrom(s, n, 0, nil)
	return &Stream{env: s.env, node: n}
}

// Union merges this stream with others into one logical stream (the ∪
// mapping of disjunction, §4.1). The result runs at parallelism 1 unless
// rekeyed afterwards; merging is performed by the engine's multi-sender
// channels through a pass-through node.
func (s *Stream) Union(name string, others ...*Stream) *Stream {
	n := s.env.addNode(name, 1, func(int) Operator { return passOperator{} })
	s.env.connectFrom(s, n, 0, SinglePartition())
	for _, o := range others {
		s.env.connectFrom(o, n, 0, SinglePartition())
	}
	return &Stream{env: s.env, node: n}
}

// KeyBy re-partitions the stream by key over parallelism instances — the
// shuffle step of §2's processing model discussion.
func (s *Stream) KeyBy(name string, key KeyFn, parallelism int) *Stream {
	if parallelism <= 0 {
		parallelism = s.env.cfg.DefaultParallelism
	}
	n := s.env.addNode(name, parallelism, func(int) Operator { return passOperator{} })
	s.env.connectFrom(s, n, 0, HashPartition(key))
	return &Stream{env: s.env, node: n}
}

// Process appends a custom stateful operator at the given parallelism,
// hash-partitioned by key (or single-instance when key is nil).
func (s *Stream) Process(name string, parallelism int, key KeyFn, newOp func(int) Operator) *Stream {
	if parallelism <= 0 || key == nil {
		parallelism = 1
	}
	n := s.env.addNode(name, parallelism, newOp)
	part := SinglePartition()
	if key != nil {
		part = HashPartition(key)
	}
	s.env.connectFrom(s, n, 0, part)
	return &Stream{env: s.env, node: n}
}

// Connect2 appends a two-input stateful operator (a join) consuming s on
// port 0 and right on port 1, hash-partitioned by the respective keys (or
// single-instance when keys are nil — the global-window fallback of
// §5.1.2).
func (s *Stream) Connect2(name string, right *Stream, parallelism int, leftKey, rightKey KeyFn, newOp func(int) Operator) *Stream {
	if parallelism <= 0 || leftKey == nil || rightKey == nil {
		parallelism = 1
	}
	n := s.env.addNode(name, parallelism, newOp)
	lp, rp := SinglePartition(), SinglePartition()
	if leftKey != nil && rightKey != nil {
		lp, rp = HashPartition(leftKey), HashPartition(rightKey)
	}
	s.env.connectFrom(s, n, 0, lp)
	s.env.connectFrom(right, n, 1, rp)
	return &Stream{env: s.env, node: n}
}

// Sink terminates the stream in a single-instance consumer.
func (s *Stream) Sink(name string, newOp func(int) Operator) *Stream {
	n := s.env.addNode(name, 1, newOp)
	s.env.connectFrom(s, n, 0, SinglePartition())
	return &Stream{env: s.env, node: n}
}

// validate checks graph well-formedness before execution.
func (env *Environment) validate() error {
	if env.buildErr != nil {
		return env.buildErr
	}
	if err := env.cfg.Overload.Budget.Validate(); err != nil {
		return err
	}
	if len(env.nodes) == 0 {
		return fmt.Errorf("asp: empty dataflow graph")
	}
	for _, n := range env.nodes {
		if n.source == nil && len(n.inEdges) == 0 {
			return fmt.Errorf("asp: node %q has no inputs and is not a source", n.name)
		}
		if n.source != nil && len(n.inEdges) > 0 {
			return fmt.Errorf("asp: source %q cannot have inputs", n.name)
		}
		if n.parallelism <= 0 {
			return fmt.Errorf("asp: node %q has parallelism %d", n.name, n.parallelism)
		}
	}
	return nil
}
