package asp

import "fmt"

// StateStats describes one operator instance's retained state: the
// number of accounting units it holds (records for joins and buffers,
// groups for aggregations — the same units AddState reports) and an
// approximate byte footprint. Both are maintained incrementally, so
// reading them is O(1).
type StateStats struct {
	Records int64
	Bytes   int64
}

// StateAccountant is implemented by stateful operators that report their
// retained state. The engine polls it after every watermark to publish
// the per-operator Partials and StateBytes gauges; the overload layer
// uses it to verify budgets.
type StateAccountant interface {
	StateStats() StateStats
}

// Shedder is implemented by stateful operators that can evict oldest
// state first under the Shed overload policy. ShedOldest drops retained
// state — oldest panes, groups, pending buffers or partial matches
// first — until at most target accounting units remain, accounts the
// evictions through out.AddState, and returns the number of units
// dropped. Implementations must preserve the subset property: a shed
// run may lose matches but must never produce a match the unshed run
// would not.
type Shedder interface {
	ShedOldest(target int64, out *Collector) int64
}

// ValueShedder is implemented by stateful operators that can evict
// lowest-value state first under pattern-aware shedding: retained units
// are scored by completion probability (transitions remaining, time left
// in the window, live arrival rates) and the least likely to still
// produce a match go first. Like ShedOldest, implementations must
// preserve the subset property, account evictions through out.AddState,
// and additionally bound the matches the evicted state could still have
// produced through out.AddLostMatches.
type ValueShedder interface {
	ShedLowestValue(target int64, out *Collector) int64
}

// ShedStrategySetter is implemented by operators that maintain scoring
// structures for pattern-aware shedding (the NFA's completion-score
// heap). The engine arms them when the live strategy is PatternAware and
// disarms them when it switches back, so the structures cost nothing
// while oldest-first is in effect.
type ShedStrategySetter interface {
	SetShedStrategy(patternAware bool)
}

// SelfShedder is implemented by operators whose state can grow
// arbitrarily within a single record or watermark (the NFA operator
// under skip-till-any-match: one event can spawn many partial matches).
// The engine's post-record budget checks cannot bound such growth, so
// the operator caps itself at insertion time: once armed, it must keep
// its retained state at or below max, shedding oldest state down to low
// when an insertion would exceed it, reporting every eviction batch
// through onShed.
type SelfShedder interface {
	SetStateBudget(max, low int64, onShed func(dropped int64))
}

// BudgetExceededError reports a state budget exceeded under the Fail
// policy (or under Shed by an operator that cannot shed). It unwraps to
// ErrStateBudget, so existing errors.Is(err, ErrStateBudget) checks keep
// working. Deliberately not Restartable: a budget overrun is
// deterministic under replay, so a supervised restart would crash-loop.
type BudgetExceededError struct {
	// Node and Instance attribute the overrun to the operator instance
	// that detected it (empty for job-wide detections by the collector).
	Node     string
	Instance int
	// Records is the retained state observed; Budget the bound it broke.
	Records int64
	Budget  int64
	// PerJob distinguishes the job-wide budget from the per-operator one.
	PerJob bool
}

func (e *BudgetExceededError) Error() string {
	scope := fmt.Sprintf("operator %s/%d", e.Node, e.Instance)
	if e.PerJob {
		scope = "job"
	}
	return fmt.Sprintf("%v: %d elements buffered (budget %d, %s)",
		ErrStateBudget, e.Records, e.Budget, scope)
}

func (e *BudgetExceededError) Unwrap() error { return ErrStateBudget }
