package asp

import (
	"testing"

	"cep2asp/internal/event"
)

func TestRecordConstituents(t *testing.T) {
	e := event.Event{Type: tQ, ID: 1, TS: 5}
	r := EventRecord(e)
	got := r.Constituents(nil)
	if len(got) != 1 || got[0] != e {
		t.Fatalf("event constituents = %v", got)
	}
	m := event.NewMatch(e, event.Event{Type: tV, ID: 1, TS: 9})
	rm := MatchRecord(9, m)
	got = rm.Constituents(got[:0])
	if len(got) != 2 {
		t.Fatalf("match constituents = %d, want 2", len(got))
	}
	// Scratch reuse must not allocate fresh backing unnecessarily.
	scratch := make([]event.Event, 0, 4)
	out := rm.Constituents(scratch)
	if cap(out) != cap(scratch) {
		t.Fatal("Constituents reallocated despite sufficient capacity")
	}
}

func TestRecordSpan(t *testing.T) {
	e := event.Event{Type: tQ, TS: 7}
	if b, x := EventRecord(e).Span(); b != 7 || x != 7 {
		t.Fatalf("event span = %d,%d", b, x)
	}
	m := event.NewMatch(event.Event{TS: 3}, event.Event{TS: 11})
	if b, x := MatchRecord(11, m).Span(); b != 3 || x != 11 {
		t.Fatalf("match span = %d,%d", b, x)
	}
}

func TestRecordToMatch(t *testing.T) {
	e := event.Event{Type: tQ, TS: 7}
	m := EventRecord(e).ToMatch()
	if len(m.Events) != 1 || m.Events[0] != e {
		t.Fatalf("ToMatch of event = %v", m)
	}
	existing := event.NewMatch(e)
	if got := MatchRecord(7, existing).ToMatch(); got != existing {
		t.Fatal("ToMatch of match should return the same composite")
	}
}

func TestRecordIngest(t *testing.T) {
	e := event.Event{Type: tQ, TS: 7, Ingest: 42}
	if got := EventRecord(e).Ingest(); got != 42 {
		t.Fatalf("event ingest = %d", got)
	}
	m := event.NewMatch(event.Event{Ingest: 5}, event.Event{Ingest: 99})
	if got := MatchRecord(0, m).Ingest(); got != 99 {
		t.Fatalf("match ingest = %d", got)
	}
}

func TestHashPartitionSpreadsKeys(t *testing.T) {
	part := HashPartition(func(r Record) int64 { return r.Event.ID })
	counts := make([]int, 8)
	for id := int64(0); id < 800; id++ {
		r := EventRecord(event.Event{ID: id})
		idx := part(r, 8)
		if idx < 0 || idx >= 8 {
			t.Fatalf("partition index %d out of range", idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c < 50 || c > 150 {
			t.Fatalf("instance %d received %d of 800 keys; poor spread %v", i, c, counts)
		}
	}
	// Stability: the same key always routes identically.
	r := EventRecord(event.Event{ID: 42})
	first := part(r, 8)
	for i := 0; i < 10; i++ {
		if part(r, 8) != first {
			t.Fatal("HashPartition not deterministic")
		}
	}
}

func TestSinglePartitionAlwaysZero(t *testing.T) {
	part := SinglePartition()
	for id := int64(0); id < 10; id++ {
		if got := part(EventRecord(event.Event{ID: id}), 4); got != 0 {
			t.Fatalf("SinglePartition routed to %d", got)
		}
	}
}

func TestResultsAccessors(t *testing.T) {
	res := NewResults(true, true)
	e1 := event.Event{Type: tQ, ID: 1, TS: 5, Ingest: 1}
	res.add(EventRecord(e1))
	res.add(EventRecord(e1)) // duplicate
	if res.Total() != 2 || res.Unique() != 1 {
		t.Fatalf("total/unique = %d/%d", res.Total(), res.Unique())
	}
	if len(res.Keys()) != 1 {
		t.Fatalf("keys = %v", res.Keys())
	}
	if res.AvgLatency() <= 0 || res.MaxLatency() < res.AvgLatency() {
		t.Fatalf("latency accessors inconsistent: %v / %v", res.AvgLatency(), res.MaxLatency())
	}
	// Keep=false retains nothing.
	res2 := NewResults(false, false)
	res2.add(EventRecord(e1))
	if len(res2.Matches()) != 0 || res2.Total() != 1 {
		t.Fatalf("discarding sink kept matches: %v", res2.Matches())
	}
}
