package asp

import (
	"sort"
	"testing"
	"time"

	"cep2asp/internal/event"
)

func TestFilterFusedEquivalentToFilterNode(t *testing.T) {
	events := mkEvents(tQ, 1, []int64{0, 1, 2, 3, 4, 5}, []float64{5, 50, 7, 70, 9, 90})
	pred := func(e event.Event) bool { return e.Value >= 10 }

	viaNode := NewResults(false, true)
	env1 := NewEnvironment(Config{})
	env1.Source("src", events, false).Filter("f", pred).Sink("sink", viaNode.Operator())
	run(t, env1)

	viaEdge := NewResults(false, true)
	env2 := NewEnvironment(Config{})
	env2.Source("src", events, false).FilterFused(pred).Sink("sink", viaEdge.Operator())
	run(t, env2)

	if viaNode.Total() != viaEdge.Total() {
		t.Fatalf("fused filter delivered %d, node filter %d", viaEdge.Total(), viaNode.Total())
	}
	if viaEdge.Total() != 3 {
		t.Fatalf("fused filter delivered %d, want 3", viaEdge.Total())
	}
}

func TestFilterFusedComposes(t *testing.T) {
	events := mkEvents(tQ, 1, []int64{0, 1, 2, 3}, []float64{5, 15, 25, 35})
	res := NewResults(false, true)
	env := NewEnvironment(Config{})
	env.Source("src", events, false).
		FilterFused(func(e event.Event) bool { return e.Value >= 10 }).
		FilterFused(func(e event.Event) bool { return e.Value <= 30 }).
		Sink("sink", res.Operator())
	run(t, env)
	if res.Total() != 2 { // 15 and 25
		t.Fatalf("composed fused filters delivered %d, want 2", res.Total())
	}
}

func TestFilterFusedPassesWatermarksAndMatches(t *testing.T) {
	// Fused filters must only drop events, never watermarks — a join fed
	// through a fused edge still fires its windows.
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 1}, []float64{1, 99}), false).
		FilterFused(func(e event.Event) bool { return e.Value > 50 })
	right := env.Source("v", mkEvents(tV, 1, []int64{2}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute,
		Slide:  event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := res.Unique(); got != 1 {
		t.Fatalf("fused-edge join found %d matches, want 1", got)
	}
}

func TestThrottleSlowsSource(t *testing.T) {
	events := mkEvents(tQ, 1, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, nil)
	res := NewResults(false, false)
	env := NewEnvironment(Config{})
	env.Source("src", events, false).Throttle(100). // 100 events/s -> >= ~90ms
							Sink("sink", res.Operator())
	start := time.Now()
	run(t, env)
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("throttled run finished in %v, expected >= ~90ms", elapsed)
	}
	if res.Total() != 10 {
		t.Fatalf("throttling lost records: %d", res.Total())
	}
}

func TestSourceOutOfOrderDeliversAll(t *testing.T) {
	// Bounded disorder: events swapped within 2 minutes; the lateness
	// bound makes the windows wait, so the join still finds its match.
	events := []event.Event{
		{Type: tQ, ID: 1, TS: 2 * event.Minute, Value: 1},
		{Type: tQ, ID: 1, TS: 0, Value: 2}, // late by 2 minutes
		{Type: tQ, ID: 1, TS: 3 * event.Minute, Value: 3},
		{Type: tQ, ID: 1, TS: 1 * event.Minute, Value: 4}, // late by 2 minutes
	}
	rights := mkEvents(tV, 1, []int64{4}, nil)
	res := NewResults(true, true)
	env := NewEnvironment(Config{WatermarkInterval: 1})
	left := env.SourceOutOfOrder("q", events, false, 2*event.Minute)
	right := env.Source("v", rights, false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 10 * event.Minute,
		Slide:  event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	// All four q events pair with v@4.
	if got := res.Unique(); got != 4 {
		t.Fatalf("out-of-order join found %d matches, want 4", got)
	}
	// Constituent order inside matches is canonical regardless of arrival.
	keys := res.Keys()
	sort.Strings(keys)
	if len(keys) != 4 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestSourceOutOfOrderNFAOrdering(t *testing.T) {
	// The CEP operator's event-time buffer must also absorb disorder; the
	// funcOperator here asserts the engine's watermark discipline by
	// checking monotonicity of delivered watermark-passed batches.
	events := []event.Event{
		{Type: tQ, ID: 1, TS: 3 * event.Minute},
		{Type: tQ, ID: 1, TS: 1 * event.Minute},
		{Type: tQ, ID: 1, TS: 4 * event.Minute},
		{Type: tQ, ID: 1, TS: 2 * event.Minute},
	}
	var wms []event.Time
	res := NewResults(false, false)
	env := NewEnvironment(Config{WatermarkInterval: 1})
	env.SourceOutOfOrder("q", events, false, 2*event.Minute).
		Apply("probe", func(_ int, r Record, out *Collector) { out.Emit(r) }).
		Sink("sink", res.Operator())
	run(t, env)
	for i := 1; i < len(wms); i++ {
		if wms[i] < wms[i-1] {
			t.Fatal("watermarks regressed")
		}
	}
	if res.Total() != 4 {
		t.Fatalf("delivered %d, want 4", res.Total())
	}
}
