// Package asp implements the analytical stream processing substrate: a
// from-scratch dataflow engine in the style of the systems the paper builds
// on (Flink's DataStream API, §2 "Processing Model"). Queries are directed
// graphs of operators between sources and sinks; operators run as one or
// more parallel instances (task slots) connected by bounded channels, which
// provide backpressure; event-time watermarks drive window firing.
//
// The engine provides exactly the operator vocabulary the paper's mapping
// targets (Table 1): filter (selection), map (projection), union, sliding
// window join with arbitrary θ predicates, interval join (optimization O1),
// sliding window aggregation (optimization O2), hash partitioning by key
// (optimization O3), plus the NSEQ next-occurrence UDF operator of §4.1.
package asp

import (
	"cep2asp/internal/event"
)

// RecordKind discriminates the payload of a Record.
type RecordKind uint8

const (
	// KindEvent carries a single event (the zero-allocation fast path).
	KindEvent RecordKind = iota
	// KindMatch carries a composite (partial or complete pattern match).
	KindMatch
	// KindWatermark carries a watermark: no later record on this channel
	// will have an event time <= TS.
	KindWatermark
	// KindEOS signals that one upstream sender is exhausted.
	KindEOS
	// KindBarrier carries a checkpoint barrier: TS holds the checkpoint
	// ID. Operators align barriers across all input senders, snapshot
	// their state, and forward the barrier downstream (aligned-barrier
	// checkpointing, internal/checkpoint).
	KindBarrier
)

// Record is the unit flowing through channels between operator instances.
// Port identifies the logical input (0 = left/only, 1 = right) and Src the
// upstream sender, which watermark merging needs to take the minimum across
// all senders.
type Record struct {
	Kind  RecordKind
	TS    event.Time
	Event event.Event
	Match *event.Match
	Port  uint8
	Src   uint16
	// TraceNs carries the end-to-end tracing context: non-zero iff the
	// record is sampled (internal/trace decides deterministically from the
	// payload), holding the wall-clock UnixNano of the last hop handoff so
	// the next hop can attribute queue/network wait. The trace identity
	// itself is not carried — any hop recomputes it from the payload
	// (trace.ID / trace.MatchID), keeping the per-record cost of disabled
	// tracing at one zero-valued field. Barrier records reuse the field as
	// their send timestamp for barrier-propagation latency.
	TraceNs int64
}

// EventRecord wraps a single event, timestamped with its event time.
func EventRecord(e event.Event) Record {
	return Record{Kind: KindEvent, TS: e.TS, Event: e}
}

// MatchRecord wraps a composite with an explicitly assigned event time.
// After a decomposed join the assigned time is the firing window's end
// (watermark-safe); ordering constraints between constituents are expressed
// as predicates over the constituents themselves (§4.2.2).
func MatchRecord(ts event.Time, m *event.Match) Record {
	return Record{Kind: KindMatch, TS: ts, Match: m}
}

// Constituents appends the record's constituent events to scratch and
// returns the result. Single events yield one constituent; composites yield
// their full list.
func (r Record) Constituents(scratch []event.Event) []event.Event {
	if r.Kind == KindMatch {
		return append(scratch, r.Match.Events...)
	}
	return append(scratch, r.Event)
}

// Span returns the first and last constituent event times.
func (r Record) Span() (tsB, tsE event.Time) {
	if r.Kind == KindMatch {
		return r.Match.TsB, r.Match.TsE
	}
	return r.Event.TS, r.Event.TS
}

// ToMatch converts the record payload into a composite, allocating for
// single events.
func (r Record) ToMatch() *event.Match {
	if r.Kind == KindMatch {
		return r.Match
	}
	return event.NewMatch(r.Event)
}

// Ingest returns the wall-clock creation time relevant for detection
// latency: the latest constituent's ingest time.
func (r Record) Ingest() int64 {
	if r.Kind == KindMatch {
		return r.Match.Ingest()
	}
	return r.Event.Ingest
}

// KeyFn extracts the partitioning key of a record. The translator compiles
// key functions from equi-join attributes (optimization O3); a nil KeyFn
// means all records share one key (a single global window, §5.1.2).
type KeyFn func(Record) int64
