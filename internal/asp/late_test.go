package asp

import (
	"sort"
	"testing"

	"cep2asp/internal/event"
	"cep2asp/internal/obs"
)

var tLate = event.RegisterType("LateV")

// lateAggEvents is an over-disordered stream: the second v@1m arrives after
// the watermark already passed 10m-1 (lateness bound 0), so it is late at
// the aggregate.
func lateAggEvents() []event.Event {
	return mkEvents(tLate, 1, []int64{0, 1, 2, 10, 1, 20}, nil)
}

// TestAggregateDropsLateRecords is the regression test for the late-record
// bug: a record at or below the merged watermark used to move the window
// aggregate's nextFire below windows that had already fired, re-firing them
// with partial contents. The engine must drop it instead and count it.
//
// Deterministic trace (tumbling 5m window, watermark interval 1, lateness 0):
// v@0,1,2 fill window [0,5); v@10 advances the watermark to 10m-1 and fires
// it with count 3. The late v@1 must be dropped — before the fix it
// recreated pane 0 and window [0,5) fired a second time with count 1.
func TestAggregateDropsLateRecords(t *testing.T) {
	reg := obs.NewRegistry()
	env := NewEnvironment(Config{WatermarkInterval: 1, Metrics: reg})
	res := NewResults(false, true)
	env.SourceOutOfOrder("src", lateAggEvents(), false, 0).
		Process("agg", 1, nil, NewWindowAggregate(WindowAggregateSpec{
			Window: 5 * event.Minute,
			Slide:  5 * event.Minute,
		})).
		Sink("sink", res.Operator())
	run(t, env)

	ms := res.Matches()
	var got []float64
	for _, m := range ms {
		got = append(got, m.Events[0].Value)
	}
	sort.Float64s(got)
	// One firing per non-empty window: [0,5)=3, [10,15)=1, [20,25)=1.
	want := []float64{1, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("got %d window firings (%v), want %d — late record re-fired a window", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window counts = %v, want %v", got, want)
		}
	}

	late := int64(0)
	for _, op := range reg.Snapshot().Operators {
		if op.Node == "agg" {
			late += op.Late
		}
	}
	if late != 1 {
		t.Fatalf("agg Late counter = %d, want 1 (the dropped record)", late)
	}
}

// windowJoinLateRun executes SEQ-style self-join over qs and returns the sink.
func windowJoinLateRun(t *testing.T, qs []event.Event, reg *obs.Registry) *Results {
	t.Helper()
	env := NewEnvironment(Config{WatermarkInterval: 1, Metrics: reg})
	res := NewResults(true, true)
	src := env.SourceOutOfOrder("src", qs, false, 0)
	src.Connect2("join", src, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute,
		Slide:  event.Minute,
		Predicate: func(l, r []event.Event) bool {
			return l[0].TS < r[0].TS
		},
	})).Sink("sink", res.Operator())
	run(t, env)
	return res
}

// TestWindowJoinDropsLateRecords is the window-join regression for the same
// bug: the late d@1m used to rewind nextFire below the windows that had
// already fired around the (x@6m, y@7m) pair — whose panes survive eviction —
// so those windows re-fired and emitted duplicate matches. With the fix the
// late record is dropped and the run is identical to one that never saw it.
func TestWindowJoinDropsLateRecords(t *testing.T) {
	clean := mkEvents(tLate, 1, []int64{6, 7, 10, 20}, nil)
	dirty := mkEvents(tLate, 1, []int64{6, 7, 10, 1, 20}, nil) // d@1m is late after v@10m

	ref := windowJoinLateRun(t, clean, nil)
	reg := obs.NewRegistry()
	got := windowJoinLateRun(t, dirty, reg)

	if got.Total() != ref.Total() {
		t.Fatalf("late record changed emissions: total %d, want %d (duplicate firings)", got.Total(), ref.Total())
	}
	if got.Unique() != ref.Unique() {
		t.Fatalf("late record changed match set: unique %d, want %d", got.Unique(), ref.Unique())
	}
	gk, rk := resKeys(got), resKeys(ref)
	for i := range rk {
		if gk[i] != rk[i] {
			t.Fatalf("match sets diverge: %s vs %s", gk[i], rk[i])
		}
	}

	late := int64(0)
	for _, op := range reg.Snapshot().Operators {
		if op.Node == "join" {
			late += op.Late
		}
	}
	// The late event reaches the join once per input port (self-join), but
	// lateness is judged against the merged watermark: a copy delivered
	// before the other sender's first watermark is not late. At least the
	// last-delivered copy must be counted and dropped.
	if late < 1 {
		t.Fatalf("join Late counter = %d, want >= 1", late)
	}
}

func resKeys(res *Results) []string {
	ms := res.Matches()
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestNextOccurrenceDropsLateRecords guards the NSEQ watermark hold: a late
// T1 used to move the operator's hold below the already-forwarded watermark,
// regressing event time downstream. It must be dropped instead.
func TestNextOccurrenceDropsLateRecords(t *testing.T) {
	lateT1 := []event.Event{
		{Type: tLate, ID: 1, TS: 30 * event.Minute},
		{Type: tLate, ID: 1, TS: 2 * event.Minute}, // late after wm = 30m-1
	}
	reg := obs.NewRegistry()
	env := NewEnvironment(Config{WatermarkInterval: 1, Metrics: reg})
	res := NewResults(false, true)
	env.SourceOutOfOrder("src", lateT1, false, 0).
		Process("nseq", 1, nil, NewNextOccurrence(NextOccurrenceSpec{
			T1: tLate, T2: event.Type(-1), Window: 5 * event.Minute,
		})).
		Sink("sink", res.Operator())
	run(t, env)
	// Only the in-order T1 resolves; the late one is dropped.
	if got := len(res.Matches()); got != 1 {
		t.Fatalf("got %d resolved T1 events, want 1 (late T1 dropped)", got)
	}
	if got := res.Matches()[0].Events[0].TS; got != 30*event.Minute {
		t.Fatalf("resolved T1 TS = %d, want %d", got, 30*event.Minute)
	}
	late := int64(0)
	for _, op := range reg.Snapshot().Operators {
		if op.Node == "nseq" {
			late += op.Late
		}
	}
	if late != 1 {
		t.Fatalf("nseq Late counter = %d, want 1", late)
	}
}
