package asp

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cep2asp/internal/event"
	"cep2asp/internal/overload"
)

// ovKey identifies a match by its constituent timestamps.
func ovKey(m *event.Match) string {
	s := ""
	for _, e := range m.Events {
		s += fmt.Sprintf("%d/", e.TS)
	}
	return s
}

// ovJoinGraph builds the huge-window join of TestStateBudgetAborts: every
// buffered record is retained for 1000 minutes, so any budget below 16 is
// exceeded.
func ovJoinGraph(cfg Config) (*Environment, *Results) {
	env := NewEnvironment(cfg)
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 1, 2, 3, 4, 5, 6, 7}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{0, 1, 2, 3, 4, 5, 6, 7}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 1000 * event.Minute,
		Slide:  event.Minute,
		Predicate: func(l, r []event.Event) bool {
			return l[0].TS < r[0].TS
		},
	})).Sink("sink", res.Operator())
	return env, res
}

func TestShedPolicyCompletes(t *testing.T) {
	// Reference run without a budget.
	fullEnv, fullRes := ovJoinGraph(Config{})
	run(t, fullEnv)
	full := make(map[string]bool)
	for _, m := range fullRes.Matches() {
		full[ovKey(m)] = true
	}
	if len(full) == 0 {
		t.Fatal("reference run produced no matches")
	}

	const budget = 6
	env, res := ovJoinGraph(Config{Overload: overload.Spec{
		Budget: overload.Budget{PerJob: budget},
		Policy: overload.Shed,
	}})
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute under Shed policy: %v", err)
	}
	if env.ShedRecords() == 0 {
		t.Fatal("expected non-zero shed accounting under a tight budget")
	}
	// The engine checks state after each batch, so a batch can briefly
	// overshoot before shedding trims back; allow one batch of slack.
	if peak := env.PeakStateRecords(); peak > budget+4 {
		t.Fatalf("peak state %d records, budget %d", peak, budget)
	}
	for _, m := range res.Matches() {
		if !full[ovKey(m)] {
			t.Fatalf("shed run fabricated match %v absent from unbudgeted run", m.Events)
		}
	}
	if res.Unique() >= fullRes.Unique() {
		t.Fatalf("shed run found %d unique matches, unbudgeted %d: expected degradation", res.Unique(), fullRes.Unique())
	}
}

func TestPausePolicyCompletes(t *testing.T) {
	fullEnv, fullRes := ovJoinGraph(Config{})
	run(t, fullEnv)

	env, res := ovJoinGraph(Config{Overload: overload.Spec{
		Budget: overload.Budget{PerJob: 6},
		Policy: overload.Pause,
	}})
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute under Pause policy: %v", err)
	}
	if env.ShedRecords() != 0 {
		t.Fatalf("Pause policy shed %d records, want 0", env.ShedRecords())
	}
	// Pause degrades throughput, never results: the match set is intact.
	if res.Unique() != fullRes.Unique() {
		t.Fatalf("paused run found %d unique matches, unbudgeted %d", res.Unique(), fullRes.Unique())
	}
}

func TestFailPolicyViaOverloadSpec(t *testing.T) {
	env, _ := ovJoinGraph(Config{Overload: overload.Spec{
		Budget: overload.Budget{PerOperator: 4},
		Policy: overload.Fail,
	}})
	err := env.Execute(context.Background())
	var bex *BudgetExceededError
	if !errors.As(err, &bex) {
		t.Fatalf("Execute = %v, want *BudgetExceededError", err)
	}
	if bex.Node != "join" {
		t.Fatalf("budget error names node %q, want join", bex.Node)
	}
}
