package asp

import (
	"sort"
	"unsafe"

	"cep2asp/internal/event"
	"cep2asp/internal/overload"
)

// IntervalJoinSpec configures an interval join (optimization O1, §4.3.1):
// a right element r joins a left element l when
//
//	r.TS ∈ (l.TS+Lower, l.TS+Upper)   — both bounds exclusive.
//
// The paper derives the bounds from the window size W: conjunction uses
// (-W, +W), all order-constrained operators use (0, +W). Windows are thus
// content-based — created per left element — so the join detects every
// match without producing the duplicates of overlapping sliding windows.
type IntervalJoinSpec struct {
	Lower, Upper      event.Time
	LeftKey, RightKey KeyFn
	// Predicate must be stateless (shared across instances); use
	// NewPredicate for per-instance predicates with scratch space.
	Predicate    JoinPredicate
	NewPredicate func() JoinPredicate
}

// NewIntervalJoin returns the operator factory for Stream.Connect2.
func NewIntervalJoin(spec IntervalJoinSpec) func(int) Operator {
	return func(int) Operator {
		j := &intervalJoin{spec: spec, pred: spec.Predicate, state: make(map[int64]*ijGroup)}
		if spec.NewPredicate != nil {
			j.pred = spec.NewPredicate()
		}
		return j
	}
}

type ijGroup struct {
	left  []Record // sorted by TS
	right []Record // sorted by TS
}

type intervalJoin struct {
	spec  IntervalJoinSpec
	pred  JoinPredicate
	state map[int64]*ijGroup
	elems int64 // records buffered across groups (mirrors AddState)
	// Shedding statistics: per-side arrival rates and the max event time
	// seen, feeding completion scores and lost-match bounds.
	lRate, rRate arrivalRate
	maxTS        event.Time
	scratchL     []event.Event
	scratchR     []event.Event
	freeRecs     [][]Record // recycled group buffers
}

// DropsLateRecords implements LateDropper: OnWatermark evicts buffered
// elements assuming no record at or below the watermark can still arrive; a
// late record would silently miss join partners, so the engine drops it at
// the input and counts it instead.
func (j *intervalJoin) DropsLateRecords() {}

func (j *intervalJoin) key(port int, r Record) int64 {
	k := j.spec.LeftKey
	if port == 1 {
		k = j.spec.RightKey
	}
	if k == nil {
		return 0
	}
	return k(r)
}

func insertByTS(buf []Record, r Record) []Record {
	i := sort.Search(len(buf), func(k int) bool { return buf[k].TS > r.TS })
	buf = append(buf, Record{})
	copy(buf[i+1:], buf[i:])
	buf[i] = r
	return buf
}

func (j *intervalJoin) OnRecord(port int, r Record, out *Collector) {
	key := j.key(port, r)
	g := j.state[key]
	if g == nil {
		g = &ijGroup{left: takeSlice(&j.freeRecs), right: takeSlice(&j.freeRecs)}
		j.state[key] = g
	}
	if port == 0 {
		// Probe buffered rights with TS in (l.TS+Lower, l.TS+Upper).
		j.scratchL = r.Constituents(j.scratchL[:0])
		lo, hi := r.TS+j.spec.Lower, r.TS+j.spec.Upper
		from := sort.Search(len(g.right), func(k int) bool { return g.right[k].TS > lo })
		for i := from; i < len(g.right) && g.right[i].TS < hi; i++ {
			j.emit(r, g.right[i], out)
		}
		g.left = insertByTS(g.left, r)
	} else {
		// Probe buffered lefts with l.TS in (r.TS-Upper, r.TS-Lower).
		lo, hi := r.TS-j.spec.Upper, r.TS-j.spec.Lower
		from := sort.Search(len(g.left), func(k int) bool { return g.left[k].TS > lo })
		for i := from; i < len(g.left) && g.left[i].TS < hi; i++ {
			j.emit(g.left[i], r, out)
		}
		g.right = insertByTS(g.right, r)
	}
	if port == 0 {
		j.lRate.observe(r.TS)
	} else {
		j.rRate.observe(r.TS)
	}
	if r.TS > j.maxTS {
		j.maxTS = r.TS
	}
	j.elems++
	out.AddState(1)
}

func (j *intervalJoin) emit(l, r Record, out *Collector) {
	j.scratchL = l.Constituents(j.scratchL[:0])
	j.scratchR = r.Constituents(j.scratchR[:0])
	if j.pred != nil && !j.pred(j.scratchL, j.scratchR) {
		return
	}
	ts := l.TS
	if r.TS > ts {
		ts = r.TS
	}
	// Assemble constituents directly from the probe scratch buffers; the
	// match takes ownership of the new slice (one allocation instead of the
	// intermediate matches Concat would build).
	evs := make([]event.Event, 0, len(j.scratchL)+len(j.scratchR))
	evs = append(evs, j.scratchL...)
	evs = append(evs, j.scratchR...)
	out.EmitMatch(ts, event.WrapMatch(evs))
}

func (j *intervalJoin) OnWatermark(wm event.Time, out *Collector) {
	for key, g := range j.state {
		// A left l is dead once every future right (TS > wm) lies at or
		// beyond the exclusive upper bound: wm >= l.TS+Upper-1.
		nl := 0
		for _, l := range g.left {
			if l.TS+j.spec.Upper-1 > wm {
				g.left[nl] = l
				nl++
			}
		}
		j.elems -= int64(len(g.left) - nl)
		out.AddState(-int64(len(g.left) - nl))
		g.left = g.left[:nl]
		// A right r is dead once every future left (TS > wm) lies at or
		// beyond r's exclusive lower bound: wm >= r.TS-Lower-1.
		nr := 0
		for _, r := range g.right {
			if r.TS-j.spec.Lower-1 > wm {
				g.right[nr] = r
				nr++
			}
		}
		j.elems -= int64(len(g.right) - nr)
		out.AddState(-int64(len(g.right) - nr))
		g.right = g.right[:nr]
		if len(g.left) == 0 && len(g.right) == 0 {
			stashSlice(&j.freeRecs, g.left)
			stashSlice(&j.freeRecs, g.right)
			delete(j.state, key)
		}
	}
}

func (j *intervalJoin) OnClose(*Collector) {}

// ijState is the gob snapshot DTO of an intervalJoin instance.
type ijState struct {
	Groups map[int64]*ijGroupState
}

type ijGroupState struct {
	Left, Right []Record
}

// SnapshotState implements Snapshotter.
func (j *intervalJoin) SnapshotState() ([]byte, error) {
	st := ijState{Groups: make(map[int64]*ijGroupState, len(j.state))}
	for key, g := range j.state {
		st.Groups[key] = &ijGroupState{Left: g.left, Right: g.right}
	}
	return gobEncode(st)
}

// RestoreState implements Snapshotter.
func (j *intervalJoin) RestoreState(data []byte) error {
	var st ijState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	j.state = make(map[int64]*ijGroup, len(st.Groups))
	j.elems = 0
	for key, g := range st.Groups {
		j.state[key] = &ijGroup{left: g.Left, right: g.Right}
		j.elems += int64(len(g.Left) + len(g.Right))
	}
	return nil
}

// BufferedState implements StateCounter.
func (j *intervalJoin) BufferedState() int64 {
	var n int64
	for _, g := range j.state {
		n += int64(len(g.left) + len(g.right))
	}
	return n
}

// StateStats implements StateAccountant.
func (j *intervalJoin) StateStats() StateStats {
	return StateStats{Records: j.elems, Bytes: j.elems * int64(unsafe.Sizeof(Record{}))}
}

// recordLife is the event time a buffered record can still join across:
// a left l pairs with rights in (l.TS+Lower, l.TS+Upper), a right r with
// lefts in (r.TS-Upper, r.TS-Lower), so their content-based windows
// close at l.TS+Upper-1 and r.TS-Lower-1 respectively.
func (j *intervalJoin) recordLife(r Record, isLeft bool) int64 {
	if isLeft {
		return clampTimeLeft(r.TS + j.spec.Upper - 1 - j.maxTS)
	}
	return clampTimeLeft(r.TS - j.spec.Lower - 1 - j.maxTS)
}

// recordLoss bounds the matches a dropped buffered record could still
// have produced. The interval join emits at insertion time, so a
// buffered record's only future value is joining opposite-side records
// that have not arrived yet: the expected arrivals within its remaining
// content-based window (padded by overload.LossSafety, floored at 1).
// Over-counting is safe; under-counting is not.
func (j *intervalJoin) recordLoss(r Record, isLeft bool) float64 {
	rate := j.rRate.perTimeUnit()
	if !isLeft {
		rate = j.lRate.perTimeUnit()
	}
	return overload.ExpectedArrivals(rate, j.recordLife(r, isLeft))
}

// recordScore is the completion probability of a buffered record: at
// least one opposite-side arrival within its remaining content-based
// window, under the observed opposite-side rate.
func (j *intervalJoin) recordScore(r Record, isLeft bool) float64 {
	rate := j.rRate.perTimeUnit()
	if !isLeft {
		rate = j.lRate.perTimeUnit()
	}
	return overload.CompletionValue(1, j.recordLife(r, isLeft), int64(j.spec.Upper-j.spec.Lower), rate)
}

// ShedOldest implements Shedder: the globally oldest buffered elements
// (across both sides of every key group) are dropped first until at most
// target remain. Dropping buffered elements only removes potential join
// partners, so the shed run's matches are a subset of the unshed run's.
// Every dropped element charges its lost-match bound.
func (j *intervalJoin) ShedOldest(target int64, out *Collector) int64 {
	excess := j.elems - target
	if excess <= 0 {
		return 0
	}
	// The per-group buffers are TS-sorted but the groups are not aligned:
	// find the global age cutoff by collecting every buffered timestamp.
	ts := make([]event.Time, 0, j.elems)
	for _, g := range j.state {
		for _, r := range g.left {
			ts = append(ts, r.TS)
		}
		for _, r := range g.right {
			ts = append(ts, r.TS)
		}
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	if excess > int64(len(ts)) {
		excess = int64(len(ts))
	}
	cutoff := ts[excess-1] // drop everything at or below (ties shed together)
	var lost float64
	trim := func(buf []Record, isLeft bool) ([]Record, int64) {
		i := sort.Search(len(buf), func(k int) bool { return buf[k].TS > cutoff })
		if i == 0 {
			return buf, 0
		}
		for k := 0; k < i; k++ {
			lost += j.recordLoss(buf[k], isLeft)
		}
		n := copy(buf, buf[i:])
		return buf[:n], int64(i)
	}
	var dropped int64
	for key, g := range j.state {
		var dl, dr int64
		g.left, dl = trim(g.left, true)
		g.right, dr = trim(g.right, false)
		dropped += dl + dr
		if len(g.left) == 0 && len(g.right) == 0 {
			stashSlice(&j.freeRecs, g.left)
			stashSlice(&j.freeRecs, g.right)
			delete(j.state, key)
		}
	}
	j.elems -= dropped
	out.AddState(-dropped)
	out.AddLostMatches(lost)
	return dropped
}

// ShedLowestValue implements ValueShedder: buffered elements are dropped
// in order of ascending completion score instead of age. With symmetric
// arrival rates this degenerates to oldest-first (older records have
// less life left), but under side-asymmetric rates it keeps the records
// whose missing partner is actually likely to arrive. Mirrors the
// cutoff idiom of ShedOldest: collect every score, take the excess-th
// smallest as the cutoff, and trim everything at or below it (ties shed
// together). Filtering preserves each buffer's TS order.
func (j *intervalJoin) ShedLowestValue(target int64, out *Collector) int64 {
	excess := j.elems - target
	if excess <= 0 {
		return 0
	}
	scores := make([]float64, 0, j.elems)
	for _, g := range j.state {
		for _, r := range g.left {
			scores = append(scores, j.recordScore(r, true))
		}
		for _, r := range g.right {
			scores = append(scores, j.recordScore(r, false))
		}
	}
	sort.Float64s(scores)
	if excess > int64(len(scores)) {
		excess = int64(len(scores))
	}
	cutoff := scores[excess-1]
	var dropped int64
	var lost float64
	trim := func(buf []Record, isLeft bool) []Record {
		n := 0
		for _, r := range buf {
			if j.recordScore(r, isLeft) <= cutoff {
				lost += j.recordLoss(r, isLeft)
				dropped++
				continue
			}
			buf[n] = r
			n++
		}
		return buf[:n]
	}
	for key, g := range j.state {
		g.left = trim(g.left, true)
		g.right = trim(g.right, false)
		if len(g.left) == 0 && len(g.right) == 0 {
			stashSlice(&j.freeRecs, g.left)
			stashSlice(&j.freeRecs, g.right)
			delete(j.state, key)
		}
	}
	j.elems -= dropped
	out.AddState(-dropped)
	out.AddLostMatches(lost)
	return dropped
}
