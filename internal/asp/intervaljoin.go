package asp

import (
	"sort"
	"unsafe"

	"cep2asp/internal/event"
)

// IntervalJoinSpec configures an interval join (optimization O1, §4.3.1):
// a right element r joins a left element l when
//
//	r.TS ∈ (l.TS+Lower, l.TS+Upper)   — both bounds exclusive.
//
// The paper derives the bounds from the window size W: conjunction uses
// (-W, +W), all order-constrained operators use (0, +W). Windows are thus
// content-based — created per left element — so the join detects every
// match without producing the duplicates of overlapping sliding windows.
type IntervalJoinSpec struct {
	Lower, Upper      event.Time
	LeftKey, RightKey KeyFn
	// Predicate must be stateless (shared across instances); use
	// NewPredicate for per-instance predicates with scratch space.
	Predicate    JoinPredicate
	NewPredicate func() JoinPredicate
}

// NewIntervalJoin returns the operator factory for Stream.Connect2.
func NewIntervalJoin(spec IntervalJoinSpec) func(int) Operator {
	return func(int) Operator {
		j := &intervalJoin{spec: spec, pred: spec.Predicate, state: make(map[int64]*ijGroup)}
		if spec.NewPredicate != nil {
			j.pred = spec.NewPredicate()
		}
		return j
	}
}

type ijGroup struct {
	left  []Record // sorted by TS
	right []Record // sorted by TS
}

type intervalJoin struct {
	spec     IntervalJoinSpec
	pred     JoinPredicate
	state    map[int64]*ijGroup
	elems    int64 // records buffered across groups (mirrors AddState)
	scratchL []event.Event
	scratchR []event.Event
	freeRecs [][]Record // recycled group buffers
}

// DropsLateRecords implements LateDropper: OnWatermark evicts buffered
// elements assuming no record at or below the watermark can still arrive; a
// late record would silently miss join partners, so the engine drops it at
// the input and counts it instead.
func (j *intervalJoin) DropsLateRecords() {}

func (j *intervalJoin) key(port int, r Record) int64 {
	k := j.spec.LeftKey
	if port == 1 {
		k = j.spec.RightKey
	}
	if k == nil {
		return 0
	}
	return k(r)
}

func insertByTS(buf []Record, r Record) []Record {
	i := sort.Search(len(buf), func(k int) bool { return buf[k].TS > r.TS })
	buf = append(buf, Record{})
	copy(buf[i+1:], buf[i:])
	buf[i] = r
	return buf
}

func (j *intervalJoin) OnRecord(port int, r Record, out *Collector) {
	key := j.key(port, r)
	g := j.state[key]
	if g == nil {
		g = &ijGroup{left: takeSlice(&j.freeRecs), right: takeSlice(&j.freeRecs)}
		j.state[key] = g
	}
	if port == 0 {
		// Probe buffered rights with TS in (l.TS+Lower, l.TS+Upper).
		j.scratchL = r.Constituents(j.scratchL[:0])
		lo, hi := r.TS+j.spec.Lower, r.TS+j.spec.Upper
		from := sort.Search(len(g.right), func(k int) bool { return g.right[k].TS > lo })
		for i := from; i < len(g.right) && g.right[i].TS < hi; i++ {
			j.emit(r, g.right[i], out)
		}
		g.left = insertByTS(g.left, r)
	} else {
		// Probe buffered lefts with l.TS in (r.TS-Upper, r.TS-Lower).
		lo, hi := r.TS-j.spec.Upper, r.TS-j.spec.Lower
		from := sort.Search(len(g.left), func(k int) bool { return g.left[k].TS > lo })
		for i := from; i < len(g.left) && g.left[i].TS < hi; i++ {
			j.emit(g.left[i], r, out)
		}
		g.right = insertByTS(g.right, r)
	}
	j.elems++
	out.AddState(1)
}

func (j *intervalJoin) emit(l, r Record, out *Collector) {
	j.scratchL = l.Constituents(j.scratchL[:0])
	j.scratchR = r.Constituents(j.scratchR[:0])
	if j.pred != nil && !j.pred(j.scratchL, j.scratchR) {
		return
	}
	ts := l.TS
	if r.TS > ts {
		ts = r.TS
	}
	// Assemble constituents directly from the probe scratch buffers; the
	// match takes ownership of the new slice (one allocation instead of the
	// intermediate matches Concat would build).
	evs := make([]event.Event, 0, len(j.scratchL)+len(j.scratchR))
	evs = append(evs, j.scratchL...)
	evs = append(evs, j.scratchR...)
	out.EmitMatch(ts, event.WrapMatch(evs))
}

func (j *intervalJoin) OnWatermark(wm event.Time, out *Collector) {
	for key, g := range j.state {
		// A left l is dead once every future right (TS > wm) lies at or
		// beyond the exclusive upper bound: wm >= l.TS+Upper-1.
		nl := 0
		for _, l := range g.left {
			if l.TS+j.spec.Upper-1 > wm {
				g.left[nl] = l
				nl++
			}
		}
		j.elems -= int64(len(g.left) - nl)
		out.AddState(-int64(len(g.left) - nl))
		g.left = g.left[:nl]
		// A right r is dead once every future left (TS > wm) lies at or
		// beyond r's exclusive lower bound: wm >= r.TS-Lower-1.
		nr := 0
		for _, r := range g.right {
			if r.TS-j.spec.Lower-1 > wm {
				g.right[nr] = r
				nr++
			}
		}
		j.elems -= int64(len(g.right) - nr)
		out.AddState(-int64(len(g.right) - nr))
		g.right = g.right[:nr]
		if len(g.left) == 0 && len(g.right) == 0 {
			stashSlice(&j.freeRecs, g.left)
			stashSlice(&j.freeRecs, g.right)
			delete(j.state, key)
		}
	}
}

func (j *intervalJoin) OnClose(*Collector) {}

// ijState is the gob snapshot DTO of an intervalJoin instance.
type ijState struct {
	Groups map[int64]*ijGroupState
}

type ijGroupState struct {
	Left, Right []Record
}

// SnapshotState implements Snapshotter.
func (j *intervalJoin) SnapshotState() ([]byte, error) {
	st := ijState{Groups: make(map[int64]*ijGroupState, len(j.state))}
	for key, g := range j.state {
		st.Groups[key] = &ijGroupState{Left: g.left, Right: g.right}
	}
	return gobEncode(st)
}

// RestoreState implements Snapshotter.
func (j *intervalJoin) RestoreState(data []byte) error {
	var st ijState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	j.state = make(map[int64]*ijGroup, len(st.Groups))
	j.elems = 0
	for key, g := range st.Groups {
		j.state[key] = &ijGroup{left: g.Left, right: g.Right}
		j.elems += int64(len(g.Left) + len(g.Right))
	}
	return nil
}

// BufferedState implements StateCounter.
func (j *intervalJoin) BufferedState() int64 {
	var n int64
	for _, g := range j.state {
		n += int64(len(g.left) + len(g.right))
	}
	return n
}

// StateStats implements StateAccountant.
func (j *intervalJoin) StateStats() StateStats {
	return StateStats{Records: j.elems, Bytes: j.elems * int64(unsafe.Sizeof(Record{}))}
}

// ShedOldest implements Shedder: the globally oldest buffered elements
// (across both sides of every key group) are dropped first until at most
// target remain. Dropping buffered elements only removes potential join
// partners, so the shed run's matches are a subset of the unshed run's.
func (j *intervalJoin) ShedOldest(target int64, out *Collector) int64 {
	excess := j.elems - target
	if excess <= 0 {
		return 0
	}
	// The per-group buffers are TS-sorted but the groups are not aligned:
	// find the global age cutoff by collecting every buffered timestamp.
	ts := make([]event.Time, 0, j.elems)
	for _, g := range j.state {
		for _, r := range g.left {
			ts = append(ts, r.TS)
		}
		for _, r := range g.right {
			ts = append(ts, r.TS)
		}
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	if excess > int64(len(ts)) {
		excess = int64(len(ts))
	}
	cutoff := ts[excess-1] // drop everything at or below (ties shed together)
	trim := func(buf []Record) ([]Record, int64) {
		i := sort.Search(len(buf), func(k int) bool { return buf[k].TS > cutoff })
		if i == 0 {
			return buf, 0
		}
		n := copy(buf, buf[i:])
		return buf[:n], int64(i)
	}
	var dropped int64
	for key, g := range j.state {
		var dl, dr int64
		g.left, dl = trim(g.left)
		g.right, dr = trim(g.right)
		dropped += dl + dr
		if len(g.left) == 0 && len(g.right) == 0 {
			stashSlice(&j.freeRecs, g.left)
			stashSlice(&j.freeRecs, g.right)
			delete(j.state, key)
		}
	}
	j.elems -= dropped
	out.AddState(-dropped)
	return dropped
}
