package asp

import (
	"fmt"
	"sync/atomic"
)

// Distributed execution support. The engine stays transport-agnostic: a
// DistSpec tells Execute which slice of the graph this process owns and
// hands it a Transport that moves record batches to and from the other
// worker processes. Everything else — graph shape, channel wiring, operator
// code, watermark merging, barrier alignment — is identical to a local run,
// because every worker builds the *same* graph and only spawns the
// instances it owns. Remote edges are spliced in behind the existing
// channel abstraction:
//
//   - A locally-owned instance whose node has remote senders receives their
//     records as decoded batches on its ordinary input channel, which the
//     Transport delivers into (Ingress).
//   - A remotely-owned instance with local senders is replaced by a proxy
//     channel drained by an egress pump goroutine that hands each batch to
//     the Transport (Egress). Senders are oblivious: they keep writing to
//     e.chans[target].
//
// Watermarks, EOS markers and checkpoint barriers flow through network
// edges unchanged, so event-time processing and aligned-barrier
// checkpointing extend to process granularity for free.

// DistSpec configures one worker process's slice of a distributed
// execution.
type DistSpec struct {
	// Worker is this process's worker index (0..N-1). By convention the
	// coordinator process participates as worker 0.
	Worker int
	// Workers is the total worker count; Owner must return values in
	// [0, Workers).
	Workers int
	// Owner assigns each (node, instance) to a worker. It must be a pure
	// function and identical across all workers of a job, or the workers
	// would disagree about who runs what.
	Owner func(node string, instance int) int
	// Transport moves record batches across process boundaries.
	Transport Transport
}

// Transport is the network exchange layer of a distributed execution
// (implemented by internal/exchange; the engine never imports net). Execute
// calls Ingress/Egress during graph wiring, before any instance starts.
type Transport interface {
	// Ingress registers the input channel of a locally-owned instance:
	// frames addressed to (nodeID, target) are decoded and delivered into
	// ch, blocking when it is full (backpressure extends over the
	// network). queued, when non-nil, is incremented by the record count
	// of each delivered batch (the shared queue-depth gauge).
	Ingress(node string, nodeID, target int, ch chan<- []Record, queued *atomic.Int64)
	// Egress returns a function transferring one batch to the remote
	// instance (nodeID, target) owned by worker owner. The returned
	// function is called from a single pump goroutine; it must not retain
	// the batch after returning.
	Egress(owner int, node string, nodeID, target int) (func(batch []Record) error, error)
}

// NetworkFailure reports a failed batch transfer on a network edge — a
// peer worker died or the connection broke mid-run. It is restartable: the
// supervisor replaces the dead worker and restores from the latest
// checkpoint, exactly like an in-process operator panic.
type NetworkFailure struct {
	// Node/Target identify the remote instance the transfer addressed;
	// Worker is the peer that owned it.
	Node   string
	Target int
	Worker int
	Err    error
}

func (e *NetworkFailure) Error() string {
	return fmt.Sprintf("asp: network send to %s/%d on worker %d: %v", e.Node, e.Target, e.Worker, e.Err)
}

func (e *NetworkFailure) Unwrap() error { return e.Err }

// Restartable marks the failure recoverable by a supervised restart.
func (e *NetworkFailure) Restartable() bool { return true }

// NodeInfo describes one graph node for placement and tooling.
type NodeInfo struct {
	ID          int
	Name        string
	Parallelism int
	Source      bool
}

// Nodes returns the graph's nodes in construction order. Placement
// functions and tests use it to locate nodes by name without reaching into
// engine internals.
func (env *Environment) Nodes() []NodeInfo {
	out := make([]NodeInfo, len(env.nodes))
	for i, n := range env.nodes {
		out[i] = NodeInfo{ID: n.id, Name: n.name, Parallelism: n.parallelism, Source: n.source != nil}
	}
	return out
}

// Fingerprint exposes the graph-shape fingerprint recorded in snapshots:
// the distributed coordinator compares it against workers' graphs before
// starting a job.
func (env *Environment) Fingerprint() string { return env.fingerprint() }
