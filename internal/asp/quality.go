package asp

import (
	"time"

	"cep2asp/internal/overload"
)

// QualityHooks adapts a (not yet executed or running) environment to the
// quality controller's probe and actuator interfaces. p99, when non-nil,
// supplies the live p99 detection latency; nil leaves it unknown (0), so
// a MaxP99Latency demand never binds. Everything else — emitted matches,
// the lost-match bound, live heap — is read from the environment's own
// counters, and the actuator drives the environment's shed-strategy
// switch and admission gate.
func (env *Environment) QualityHooks(p99 func() time.Duration) (overload.QualityProbe, overload.QualityActuator) {
	return envProbe{env: env, p99: p99}, envActuator{env: env}
}

type envProbe struct {
	env *Environment
	p99 func() time.Duration
}

func (p envProbe) Matches() int64          { return p.env.MatchesEmitted() }
func (p envProbe) LostMatchBound() float64 { return p.env.LostMatchBound() }

func (p envProbe) P99Latency() time.Duration {
	if p.p99 == nil {
		return 0
	}
	return p.p99()
}

func (p envProbe) StateBytes() int64 { return p.env.LiveHeapBytes() }

type envActuator struct{ env *Environment }

func (a envActuator) SetPatternAware(on bool) {
	s := overload.OldestFirst
	if on {
		s = overload.PatternAware
	}
	a.env.SetShedStrategy(s)
}

func (a envActuator) PauseIntake() {
	if g := a.env.gate; g != nil {
		g.Raise()
	}
}

func (a envActuator) ResumeIntake() {
	if g := a.env.gate; g != nil {
		g.Lower()
	}
}
