package asp

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"cep2asp/internal/event"
)

// OperatorFailure is the structured form of a panic isolated inside one
// operator or source instance: instead of crashing the process, the engine
// recovers the panic, cancels the run with this failure as the cause, and
// drains the rest of the graph cleanly. Supervisors recognize it as
// restartable (internal/supervise) and, when the same record keeps
// crashing the job, use its poison key to quarantine the record.
type OperatorFailure struct {
	// Node and Instance locate the failed operator instance; Task is its
	// stable cross-restart identifier (graph position, name, instance).
	Node     string
	Instance int
	Task     string
	// Source marks failures inside a source instance.
	Source bool
	// Panic is the recovered panic value and Stack the goroutine stack at
	// recovery time.
	Panic any
	Stack []byte
	// RecordSummary renders the data record whose processing panicked
	// ("" when the panic fired outside record processing, e.g. during a
	// window firing); RecordKey is the record's stable poison identity.
	RecordSummary string
	RecordKey     string
}

func (f *OperatorFailure) Error() string {
	var b strings.Builder
	kind := "operator"
	if f.Source {
		kind = "source"
	}
	fmt.Fprintf(&b, "asp: %s %s/%d panicked: %v", kind, f.Node, f.Instance, f.Panic)
	if f.RecordSummary != "" {
		fmt.Fprintf(&b, " (processing %s)", f.RecordSummary)
	}
	return b.String()
}

// Restartable implements supervise.RestartableError: a panic is isolated
// to one instance and the job may be rebuilt and replayed from the latest
// checkpoint.
func (f *OperatorFailure) Restartable() bool { return true }

// PoisonKey implements supervise.PoisonError.
func (f *OperatorFailure) PoisonKey() string { return f.RecordKey }

// poisonKey derives a record's stable identity across restarts: replayed
// records carry the same content, while engine-level fields (Src, Port)
// shift with the rebuilt topology. Control records have no identity.
func poisonKey(r Record) string {
	switch r.Kind {
	case KindEvent:
		e := r.Event
		return fmt.Sprintf("e:%d:%d:%d:%g", e.Type, e.ID, e.TS, e.Value)
	case KindMatch:
		return "m:" + r.Match.Key()
	}
	return ""
}

// summarize renders a record for failure reports and dead letters.
func summarize(r Record) string {
	switch r.Kind {
	case KindEvent:
		e := r.Event
		return fmt.Sprintf("event{type=%s id=%d ts=%d value=%g}", event.TypeName(e.Type), e.ID, e.TS, e.Value)
	case KindMatch:
		return fmt.Sprintf("match{%s}", r.Match.Key())
	case KindWatermark:
		return fmt.Sprintf("watermark{%d}", r.TS)
	case KindBarrier:
		return fmt.Sprintf("barrier{%d}", r.TS)
	case KindEOS:
		return "eos"
	}
	return fmt.Sprintf("record{kind=%d}", r.Kind)
}

// Quarantine holds the poison records a supervisor has dead-lettered: data
// records whose processing panicked repeatedly across restarts. Operator
// instances consult it before processing — a quarantined record is dropped
// and reported through OnDrop instead of crashing the job again.
//
// Add is safe between executions (the supervisor quarantines records
// before rebuilding the graph); instances snapshot the per-node key set at
// startup.
type Quarantine struct {
	// OnDrop, when set, observes each dropped record from the dropping
	// instance's goroutine: the dead-letter routing hook.
	OnDrop func(node string, instance int, key, summary string)

	mu    sync.RWMutex
	nodes map[string]map[string]struct{}
}

// NewQuarantine creates an empty quarantine.
func NewQuarantine() *Quarantine {
	return &Quarantine{nodes: make(map[string]map[string]struct{})}
}

// Add quarantines one record key at one node: every instance of the node
// drops records with that poison key on sight.
func (q *Quarantine) Add(node, key string) {
	if q == nil || key == "" {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	keys := q.nodes[node]
	if keys == nil {
		keys = make(map[string]struct{})
		q.nodes[node] = keys
	}
	keys[key] = struct{}{}
}

// Len returns the total number of quarantined (node, key) entries.
func (q *Quarantine) Len() int {
	if q == nil {
		return 0
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	n := 0
	for _, keys := range q.nodes {
		n += len(keys)
	}
	return n
}

// keysFor returns the node's quarantined key set, or nil when the node has
// none — the common case, which instances detect with one nil check.
func (q *Quarantine) keysFor(node string) map[string]struct{} {
	if q == nil {
		return nil
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	keys := q.nodes[node]
	if len(keys) == 0 {
		return nil
	}
	out := make(map[string]struct{}, len(keys))
	for k := range keys {
		out[k] = struct{}{}
	}
	return out
}

// hasQuarantined reports whether key k (non-empty) is in the snapshot set.
func hasQuarantined(keys map[string]struct{}, k string) bool {
	if k == "" {
		return false
	}
	_, ok := keys[k]
	return ok
}

// ErrShutdownTimeout reports a teardown that could not complete: after the
// run was cancelled or failed, one or more operator instances did not
// return within the configured shutdown deadline (wedged in user code, a
// chaos stall, or an unbounded loop). The stuck goroutines are abandoned —
// the process survives, but their task IDs are reported so the wedge is
// diagnosable.
type ErrShutdownTimeout struct {
	// Timeout is the deadline that expired.
	Timeout time.Duration
	// Stuck lists the task IDs of the instances still running.
	Stuck []string
	// Cause is the error that initiated teardown, if any.
	Cause error
}

func (e *ErrShutdownTimeout) Error() string {
	msg := fmt.Sprintf("asp: shutdown deadline %v exceeded; stuck instances: %s",
		e.Timeout, strings.Join(e.Stuck, ", "))
	if e.Cause != nil {
		msg += fmt.Sprintf(" (teardown initiated by: %v)", e.Cause)
	}
	return msg
}

// Unwrap exposes the teardown cause to errors.Is/As.
func (e *ErrShutdownTimeout) Unwrap() error { return e.Cause }
