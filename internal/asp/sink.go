package asp

import (
	"sync"
	"time"

	"cep2asp/internal/event"
	"cep2asp/internal/obs"
)

// Results is a sink handle: it gathers the matches reaching the end of a
// pipeline together with count and detection-latency statistics. Detection
// latency is sink arrival wall-clock time minus the latest contributing
// event's creation time, following the paper's metric definition (§5.1.3).
//
// With Dedup set, duplicate matches produced by overlapping sliding windows
// (§3.1.4) are counted separately and excluded from Matches; semantic
// equivalence of two executions is judged on the deduplicated sets (§4).
type Results struct {
	// Dedup eliminates duplicate matches by identity (Match.Key).
	Dedup bool
	// Keep retains match values (disable for throughput benchmarks where
	// only counts matter).
	Keep bool

	mu      sync.Mutex
	matches []*event.Match
	seen    map[string]struct{}
	total   int64
	unique  int64
	// lat is the detection-latency histogram (nanoseconds): log-bucketed,
	// so p50/p90/p99 are available alongside mean and max.
	lat obs.Histogram
}

// NewResults creates a sink handle; attach it with Stream.Sink(name,
// r.Operator()).
func NewResults(dedup, keep bool) *Results {
	return &Results{Dedup: dedup, Keep: keep, seen: make(map[string]struct{})}
}

// Operator returns the operator factory for Stream.Sink.
func (r *Results) Operator() func(int) Operator {
	return func(int) Operator { return &resultSink{res: r} }
}

type resultSink struct {
	BaseOperator
	res *Results
}

func (s *resultSink) OnRecord(_ int, rec Record, _ *Collector) {
	s.res.add(rec)
}

// SnapshotState implements Snapshotter: the sink's accumulated results are
// part of the checkpoint, so a restored run converges on exactly the output
// of an uninterrupted one (exactly-once at the sink for replayable sources).
func (s *resultSink) SnapshotState() ([]byte, error) { return s.res.snapshot() }

// RestoreState implements Snapshotter.
func (s *resultSink) RestoreState(data []byte) error { return s.res.restore(data) }

// resultsState is the gob snapshot DTO of a Results sink. Seen is a slice
// because map[string]struct{} has no gob encoding; the latency histogram is
// captured as its sparse bucket state.
type resultsState struct {
	Matches []*event.Match
	Seen    []string
	Total   int64
	Unique  int64
	Lat     obs.HistogramState
}

func (r *Results) snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := resultsState{
		Matches: r.matches,
		Seen:    make([]string, 0, len(r.seen)),
		Total:   r.total,
		Unique:  r.unique,
		Lat:     r.lat.State(),
	}
	for k := range r.seen {
		st.Seen = append(st.Seen, k)
	}
	return gobEncode(st)
}

func (r *Results) restore(data []byte) error {
	var st resultsState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.matches = st.Matches
	r.seen = make(map[string]struct{}, len(st.Seen))
	for _, k := range st.Seen {
		r.seen[k] = struct{}{}
	}
	r.total = st.Total
	r.unique = st.Unique
	r.lat.Restore(st.Lat)
	return nil
}

func (r *Results) add(rec Record) {
	now := time.Now().UnixNano()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if ing := rec.Ingest(); ing > 0 {
		r.lat.Record(now - ing)
	}
	m := rec.ToMatch()
	if r.Dedup {
		k := m.Key()
		if _, dup := r.seen[k]; dup {
			return
		}
		r.seen[k] = struct{}{}
	}
	r.unique++
	if r.Keep {
		r.matches = append(r.matches, m)
	}
}

// Total returns the number of records that reached the sink, duplicates
// included.
func (r *Results) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Unique returns the number of distinct matches (equals Total when Dedup is
// off).
func (r *Results) Unique() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.unique
}

// Matches returns the retained matches. The slice is shared; callers must
// not modify it while the pipeline runs.
func (r *Results) Matches() []*event.Match {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.matches
}

// Keys returns the sorted-insertion-order identity keys of the retained
// matches; convenient for set comparisons in tests.
func (r *Results) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.matches))
	for i, m := range r.matches {
		out[i] = m.Key()
	}
	return out
}

// AvgLatency returns the mean detection latency observed at the sink.
func (r *Results) AvgLatency() time.Duration {
	return time.Duration(r.lat.Mean())
}

// MaxLatency returns the largest detection latency observed at the sink.
func (r *Results) MaxLatency() time.Duration {
	return time.Duration(r.lat.Max())
}

// LatencyQuantile returns the q-quantile (0 < q <= 1) of the detection
// latency distribution, within the histogram's ~3% bucket resolution.
func (r *Results) LatencyQuantile(q float64) time.Duration {
	return time.Duration(r.lat.Quantile(q))
}

// LatencyPercentiles returns the p50/p90/p99 detection latencies.
func (r *Results) LatencyPercentiles() (p50, p90, p99 time.Duration) {
	return r.LatencyQuantile(0.50), r.LatencyQuantile(0.90), r.LatencyQuantile(0.99)
}

// LatencyHistogram exposes the underlying histogram, e.g. for registration
// with an obs.Registry (live /metrics export).
func (r *Results) LatencyHistogram() *obs.Histogram { return &r.lat }
