package asp

import (
	"context"
	"errors"
	"sort"
	"testing"

	"cep2asp/internal/event"
)

var (
	tQ = event.RegisterType("EngQ")
	tV = event.RegisterType("EngV")
	tP = event.RegisterType("EngP")
)

// mkEvents builds a minute-spaced stream of one type and key.
func mkEvents(t event.Type, id int64, minutes []int64, values []float64) []event.Event {
	out := make([]event.Event, len(minutes))
	for i, m := range minutes {
		v := float64(i)
		if values != nil {
			v = values[i]
		}
		out[i] = event.Event{Type: t, ID: id, TS: m * event.Minute, Value: v}
	}
	return out
}

func run(t *testing.T, env *Environment) {
	t.Helper()
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
}

func TestSourceFilterMapSink(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	env.Source("src", mkEvents(tQ, 1, []int64{0, 1, 2, 3}, []float64{5, 50, 7, 70}), false).
		Filter("filter", func(e event.Event) bool { return e.Value >= 10 }).
		Map("map", func(e event.Event) event.Event { e.Value *= 2; return e }).
		Sink("sink", res.Operator())
	run(t, env)
	ms := res.Matches()
	if len(ms) != 2 {
		t.Fatalf("got %d results, want 2", len(ms))
	}
	if ms[0].Events[0].Value != 100 || ms[1].Events[0].Value != 140 {
		t.Fatalf("map not applied: %v", ms)
	}
}

func TestUnionMergesStreams(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	a := env.Source("a", mkEvents(tQ, 1, []int64{0, 2}, nil), false)
	b := env.Source("b", mkEvents(tV, 1, []int64{1, 3}, nil), false)
	a.Union("union", b).Sink("sink", res.Operator())
	run(t, env)
	if got := res.Total(); got != 4 {
		t.Fatalf("union delivered %d records, want 4", got)
	}
}

func TestWindowJoinBasic(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 10}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{2, 30}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute,
		Slide:  event.Minute,
		Predicate: func(l, r []event.Event) bool {
			return l[0].TS < r[0].TS // sequence order
		},
	})).Sink("sink", res.Operator())
	run(t, env)
	// q@0 with v@2 is the only pair within a 5-minute window in order.
	if got := res.Unique(); got != 1 {
		t.Fatalf("got %d unique matches, want 1 (total %d)", got, res.Total())
	}
	// Duplicates from overlapping windows must exist (pair fits 3 windows:
	// starts 0, -1, -2 contain both ts=0 and ts=2... windows aligned at
	// minute multiples: starts -2..0 → 3 windows).
	if res.Total() <= res.Unique() {
		t.Fatalf("sliding window join should emit duplicates: total=%d unique=%d", res.Total(), res.Unique())
	}
}

func TestWindowJoinSpanExactlyW(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{5}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute,
		Slide:  event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := res.Unique(); got != 0 {
		t.Fatalf("pair exactly W apart must not join, got %d", got)
	}
}

func TestWindowJoinKeyed(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(true, true)
	key := func(r Record) int64 { return r.Event.ID }
	lEvents := append(mkEvents(tQ, 1, []int64{0}, nil), mkEvents(tQ, 2, []int64{0}, nil)...)
	rEvents := append(mkEvents(tV, 1, []int64{1}, nil), mkEvents(tV, 2, []int64{1}, nil)...)
	sort.Slice(lEvents, func(i, j int) bool { return lEvents[i].TS < lEvents[j].TS })
	left := env.Source("q", lEvents, false)
	right := env.Source("v", rEvents, false)
	left.Connect2("join", right, 4, key, key, NewWindowJoin(WindowJoinSpec{
		Window:   5 * event.Minute,
		Slide:    event.Minute,
		LeftKey:  key,
		RightKey: key,
	})).Sink("sink", res.Operator())
	run(t, env)
	// Keyed join: only same-ID pairs -> 2 matches, not 4.
	if got := res.Unique(); got != 2 {
		t.Fatalf("keyed join: got %d unique matches, want 2", got)
	}
	for _, m := range res.Matches() {
		if m.Events[0].ID != m.Events[1].ID {
			t.Fatalf("cross-key join result: %v", m)
		}
	}
}

func TestIntervalJoinNoDuplicates(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 10}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{2, 30}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewIntervalJoin(IntervalJoinSpec{
		Lower: 0,
		Upper: 5 * event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if res.Unique() != 1 || res.Total() != 1 {
		t.Fatalf("interval join: unique=%d total=%d, want 1/1 (no duplicates)", res.Unique(), res.Total())
	}
}

func TestIntervalJoinBoundsExclusive(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(true, true)
	// r at exactly l.TS (lower bound 0, exclusive) and exactly l.TS+W
	// (upper, exclusive) must both be excluded; within must be included.
	left := env.Source("q", mkEvents(tQ, 1, []int64{10}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{10, 12, 15}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewIntervalJoin(IntervalJoinSpec{
		Lower: 0,
		Upper: 5 * event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := res.Unique(); got != 1 {
		t.Fatalf("exclusive bounds: got %d matches, want 1 (only v@12)", got)
	}
}

func TestIntervalJoinSymmetricBounds(t *testing.T) {
	// Conjunction bounds (-W, +W): order must not matter.
	env := NewEnvironment(Config{})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{10}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{7}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewIntervalJoin(IntervalJoinSpec{
		Lower: -5 * event.Minute,
		Upper: 5 * event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := res.Unique(); got != 1 {
		t.Fatalf("symmetric bounds: got %d, want 1", got)
	}
}

func TestWindowAggregateCounts(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	env.Source("v", mkEvents(tV, 1, []int64{0, 1, 2, 10}, nil), false).
		Process("agg", 1, nil, NewWindowAggregate(WindowAggregateSpec{
			Window:   5 * event.Minute,
			Slide:    5 * event.Minute, // tumbling for easy counting
			MinCount: 3,
		})).
		Sink("sink", res.Operator())
	run(t, env)
	// Window [0,5) has 3 events -> fires; [10,15) has 1 -> suppressed.
	ms := res.Matches()
	if len(ms) != 1 {
		t.Fatalf("got %d aggregate outputs, want 1", len(ms))
	}
	if got := ms[0].Events[0].Value; got != 3 {
		t.Fatalf("count = %g, want 3", got)
	}
}

func TestWindowAggregateEmptyWindowsSilent(t *testing.T) {
	// O2 cannot express Kleene*: windows with no events never fire.
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	env.Source("v", mkEvents(tV, 1, []int64{0, 100}, nil), false).
		Process("agg", 1, nil, NewWindowAggregate(WindowAggregateSpec{
			Window: 5 * event.Minute,
			Slide:  5 * event.Minute,
		})).
		Sink("sink", res.Operator())
	run(t, env)
	// Two fired windows only (those containing events), not ~20.
	if got := len(res.Matches()); got != 2 {
		t.Fatalf("got %d outputs, want 2 (empty windows silent)", got)
	}
}

func TestNextOccurrenceAnnotates(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	t1s := mkEvents(tQ, 1, []int64{0, 10}, nil)
	t2s := mkEvents(tV, 1, []int64{3}, nil)
	a := env.Source("t1", t1s, false)
	b := env.Source("t2", t2s, false)
	a.Union("union", b).
		Process("nseq", 1, nil, NewNextOccurrence(NextOccurrenceSpec{
			T1: tQ, T2: tV, Window: 5 * event.Minute,
		})).
		Sink("sink", res.Operator())
	run(t, env)
	ms := res.Matches()
	if len(ms) != 2 {
		t.Fatalf("got %d annotated events, want 2", len(ms))
	}
	byTS := map[event.Time]event.Event{}
	for _, m := range ms {
		byTS[m.Events[0].TS] = m.Events[0]
	}
	// e1@0: next V within (0, 5min) is v@3 -> ats = 3min.
	if got := byTS[0].AuxTS; got != 3*event.Minute {
		t.Fatalf("ats(e1@0) = %d, want %d", got, 3*event.Minute)
	}
	// e1@10: no V in (10, 15) -> ats = 15min.
	if got := byTS[10*event.Minute].AuxTS; got != 15*event.Minute {
		t.Fatalf("ats(e1@10) = %d, want %d", got, 15*event.Minute)
	}
}

func TestNextOccurrenceBlockerPredicate(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	t1s := mkEvents(tQ, 1, []int64{0}, nil)
	t2s := mkEvents(tV, 1, []int64{1, 3}, []float64{5, 50})
	a := env.Source("t1", t1s, false)
	b := env.Source("t2", t2s, false)
	a.Union("union", b).
		Process("nseq", 1, nil, NewNextOccurrence(NextOccurrenceSpec{
			T1: tQ, T2: tV, Window: 5 * event.Minute,
			Blocker: func(_, e2 event.Event) bool { return e2.Value > 10 },
		})).
		Sink("sink", res.Operator())
	run(t, env)
	ms := res.Matches()
	if len(ms) != 1 {
		t.Fatalf("got %d events, want 1", len(ms))
	}
	// v@1 fails the blocker predicate; earliest valid blocker is v@3.
	if got := ms[0].Events[0].AuxTS; got != 3*event.Minute {
		t.Fatalf("ats = %d, want %d", got, 3*event.Minute)
	}
}

func TestStateBudgetAborts(t *testing.T) {
	env := NewEnvironment(Config{MaxOperatorState: 4})
	res := NewResults(false, false)
	// A huge window buffers everything -> exceeds the budget of 4.
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 1, 2, 3, 4, 5, 6, 7}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{0, 1, 2, 3, 4, 5, 6, 7}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 1000 * event.Minute,
		Slide:  event.Minute,
	})).Sink("sink", res.Operator())
	err := env.Execute(context.Background())
	if !errors.Is(err, ErrStateBudget) {
		t.Fatalf("Execute = %v, want ErrStateBudget", err)
	}
}

func TestContextCancellation(t *testing.T) {
	env := NewEnvironment(Config{ChannelCapacity: 1})
	res := NewResults(false, false)
	big := make([]event.Event, 100000)
	for i := range big {
		big[i] = event.Event{Type: tQ, ID: 1, TS: int64(i) * event.Minute}
	}
	env.Source("q", big, false).
		Filter("f", func(event.Event) bool { return true }).
		Sink("sink", res.Operator())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := env.Execute(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute = %v, want context.Canceled", err)
	}
}

func TestExecuteTwiceFails(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, false)
	env.Source("q", mkEvents(tQ, 1, []int64{0}, nil), false).Sink("sink", res.Operator())
	run(t, env)
	if err := env.Execute(context.Background()); err == nil {
		t.Fatal("second Execute should fail")
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	env := NewEnvironment(Config{})
	if err := env.Execute(context.Background()); err == nil {
		t.Fatal("empty graph should fail validation")
	}
}

func TestLatencyMeasured(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	env.Source("q", mkEvents(tQ, 1, []int64{0, 1, 2}, nil), true).
		Sink("sink", res.Operator())
	run(t, env)
	if res.AvgLatency() <= 0 {
		t.Fatal("expected positive detection latency with ingest stamping")
	}
	if res.MaxLatency() < res.AvgLatency() {
		t.Fatal("max latency below average")
	}
}

func TestParallelSourceAndKeyBy(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	perInstance := [][]event.Event{
		mkEvents(tQ, 1, []int64{0, 2}, nil),
		mkEvents(tQ, 2, []int64{1, 3}, nil),
	}
	key := func(r Record) int64 { return r.Event.ID }
	env.ParallelSource("src", perInstance, false).
		KeyBy("shuffle", key, 4).
		Filter("f", func(event.Event) bool { return true }).
		Sink("sink", res.Operator())
	run(t, env)
	if got := res.Total(); got != 4 {
		t.Fatalf("got %d records, want 4", got)
	}
}

func TestWatermarkMergingAcrossSources(t *testing.T) {
	// A slow source must hold back the join's watermark; all matches must
	// still be found once both sources complete.
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 1, 2, 3, 4}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{2}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 3 * event.Minute,
		Slide:  event.Minute,
		Predicate: func(l, r []event.Event) bool {
			return l[0].TS < r[0].TS
		},
	})).Sink("sink", res.Operator())
	run(t, env)
	// q@0,q@1 precede v@2 within 3 minutes.
	if got := res.Unique(); got != 2 {
		t.Fatalf("got %d unique matches, want 2", got)
	}
}

func TestChainedJoins(t *testing.T) {
	// SEQ(Q, V, P) as two consecutive joins — the decomposition of §4.2.2.
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(true, true)
	w := 5 * event.Minute
	q := env.Source("q", mkEvents(tQ, 1, []int64{0}, nil), false)
	v := env.Source("v", mkEvents(tV, 1, []int64{1}, nil), false)
	p := env.Source("p", mkEvents(tP, 1, []int64{2}, nil), false)
	j1 := q.Connect2("join1", v, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: w, Slide: event.Minute,
		Predicate: func(l, r []event.Event) bool { return l[0].TS < r[0].TS },
	}))
	j1.Connect2("join2", p, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		// Enlarged window: the partial's assigned time is its firing
		// window end, up to W beyond the constituents (see core package).
		Window: 2 * w, Slide: event.Minute,
		Predicate: func(l, r []event.Event) bool {
			last := l[len(l)-1]
			if last.TS >= r[0].TS {
				return false
			}
			// Span check: all constituents within W.
			return r[0].TS-l[0].TS < w
		},
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := res.Unique(); got != 1 {
		t.Fatalf("chained joins: got %d unique matches, want 1 (total %d)", got, res.Total())
	}
	m := res.Matches()[0]
	if len(m.Events) != 3 {
		t.Fatalf("match has %d constituents, want 3", len(m.Events))
	}
}
