package asp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"cep2asp/internal/event"
)

// Failure-injection tests: aborted runs must terminate every goroutine and
// report the right cause.

func goroutinesSettled(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestStateBudgetAbortLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnvironment(Config{MaxOperatorState: 8, ChannelCapacity: 4})
	res := NewResults(false, false)
	var minutes []int64
	for i := int64(0); i < 500; i++ {
		minutes = append(minutes, i)
	}
	left := env.Source("q", mkEvents(tQ, 1, minutes, nil), false)
	right := env.Source("v", mkEvents(tV, 1, minutes, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 100000 * event.Minute,
		Slide:  event.Minute,
	})).Sink("sink", res.Operator())
	err := env.Execute(context.Background())
	if !errors.Is(err, ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
	goroutinesSettled(t, before)
}

func TestMidRunCancellationLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnvironment(Config{ChannelCapacity: 2})
	res := NewResults(false, false)
	var minutes []int64
	for i := int64(0); i < 200000; i++ {
		minutes = append(minutes, i)
	}
	env.Source("src", mkEvents(tQ, 1, minutes, nil), false).
		Filter("slow", func(e event.Event) bool {
			time.Sleep(10 * time.Microsecond)
			return true
		}).
		Sink("sink", res.Operator())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := env.Execute(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	goroutinesSettled(t, before)
}

func TestTimeoutReportsDeadline(t *testing.T) {
	env := NewEnvironment(Config{ChannelCapacity: 2})
	res := NewResults(false, false)
	var minutes []int64
	for i := int64(0); i < 100000; i++ {
		minutes = append(minutes, i)
	}
	env.Source("src", mkEvents(tQ, 1, minutes, nil), false).
		Filter("slow", func(e event.Event) bool {
			time.Sleep(10 * time.Microsecond)
			return true
		}).
		Sink("sink", res.Operator())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := env.Execute(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestBudgetRecoveryAcrossRuns(t *testing.T) {
	// A failed run must not poison subsequent environments (the budget is
	// per-environment).
	for i := 0; i < 2; i++ {
		env := NewEnvironment(Config{MaxOperatorState: 1_000_000})
		res := NewResults(false, false)
		left := env.Source("q", mkEvents(tQ, 1, []int64{0, 1}, nil), false)
		right := env.Source("v", mkEvents(tV, 1, []int64{0, 1}, nil), false)
		left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
			Window: 5 * event.Minute, Slide: event.Minute,
		})).Sink("sink", res.Operator())
		if err := env.Execute(context.Background()); err != nil {
			t.Fatalf("run %d failed: %v", i, err)
		}
	}
}

func TestEmptySourcesComplete(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, false)
	left := env.Source("q", nil, false)
	right := env.Source("v", nil, false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute, Slide: event.Minute,
	})).Sink("sink", res.Operator())
	done := make(chan error, 1)
	go func() { done <- env.Execute(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("empty run failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("empty-source pipeline did not terminate")
	}
	if res.Total() != 0 {
		t.Fatalf("empty sources produced %d records", res.Total())
	}
}
