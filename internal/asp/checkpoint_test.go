package asp

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
)

// Checkpoint tests: aligned-barrier snapshots must be complete, restorable,
// and a restored run must emit exactly what an uninterrupted run emits.

func minutesUpTo(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func sortedResultKeys(t *testing.T, res *Results) []string {
	t.Helper()
	keys := res.Keys()
	sort.Strings(keys)
	return keys
}

// killRestoreCompare runs the same graph three times: uninterrupted
// (oracle), checkpointed-and-killed mid-stream, and restored from the
// killed run's latest complete snapshot. The restored run must emit exactly
// the oracle's match set.
func killRestoreCompare(t *testing.T, build func(env *Environment) *Results) {
	t.Helper()

	oracleEnv := NewEnvironment(Config{WatermarkInterval: 16})
	oracleRes := build(oracleEnv)
	if err := oracleEnv.Execute(context.Background()); err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	want := sortedResultKeys(t, oracleRes)
	if len(want) == 0 {
		t.Fatal("oracle produced no matches; test data is inert")
	}

	store := checkpoint.NewMemStore()
	ckEnv := NewEnvironment(Config{
		WatermarkInterval: 16,
		Checkpoint:        &CheckpointSpec{Store: store, Interval: time.Millisecond},
	})
	build(ckEnv)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if ids, _ := store.IDs(); len(ids) > 0 {
				// Let the run advance past the snapshot before killing it.
				time.Sleep(2 * time.Millisecond)
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
	}()
	if err := ckEnv.Execute(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("checkpointed run: %v", err)
	}
	ids, err := store.IDs()
	if err != nil || len(ids) == 0 {
		t.Fatalf("no complete checkpoint before the kill (ids %v, err %v)", ids, err)
	}

	restEnv := NewEnvironment(Config{
		WatermarkInterval: 16,
		Checkpoint:        &CheckpointSpec{Store: store, Restore: true},
	})
	restRes := build(restEnv)
	if err := restEnv.Execute(context.Background()); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	got := sortedResultKeys(t, restRes)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored run emitted %d matches, oracle %d:\ngot  %v\nwant %v",
			len(got), len(want), got, want)
	}
}

func TestKillRestoreWindowJoin(t *testing.T) {
	killRestoreCompare(t, func(env *Environment) *Results {
		res := NewResults(true, true)
		left := env.Source("q", mkEvents(tQ, 1, minutesUpTo(400), nil), false).Throttle(4000)
		right := env.Source("v", mkEvents(tV, 1, minutesUpTo(400), nil), false).Throttle(4000)
		left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
			Window: 5 * event.Minute,
			Slide:  event.Minute,
			Predicate: func(l, r []event.Event) bool {
				return l[0].TS < r[0].TS
			},
			DedupEmits: true,
		})).Sink("sink", res.Operator())
		return res
	})
}

func TestKillRestoreIntervalJoin(t *testing.T) {
	killRestoreCompare(t, func(env *Environment) *Results {
		res := NewResults(true, true)
		left := env.Source("q", mkEvents(tQ, 1, minutesUpTo(400), nil), false).Throttle(4000)
		right := env.Source("v", mkEvents(tV, 1, minutesUpTo(400), nil), false).Throttle(4000)
		left.Connect2("join", right, 1, nil, nil, NewIntervalJoin(IntervalJoinSpec{
			Lower: 0,
			Upper: 5 * event.Minute,
		})).Sink("sink", res.Operator())
		return res
	})
}

func TestKillRestoreAggregate(t *testing.T) {
	killRestoreCompare(t, func(env *Environment) *Results {
		res := NewResults(true, true)
		env.Source("v", mkEvents(tV, 1, minutesUpTo(400), nil), false).Throttle(4000).
			Process("agg", 1, nil, NewWindowAggregate(WindowAggregateSpec{
				Window:   5 * event.Minute,
				Slide:    5 * event.Minute,
				MinCount: 2,
			})).
			Sink("sink", res.Operator())
		return res
	})
}

func TestKillRestoreNSEQ(t *testing.T) {
	killRestoreCompare(t, func(env *Environment) *Results {
		res := NewResults(true, true)
		t1 := env.Source("t1", mkEvents(tQ, 1, minutesUpTo(300), nil), false).Throttle(3000)
		t2 := env.Source("t2", mkEvents(tV, 1, []int64{3, 50, 120, 250}, nil), false).Throttle(3000)
		t1.Union("union", t2).
			Process("nseq", 1, nil, NewNextOccurrence(NextOccurrenceSpec{
				T1: tQ, T2: tV, Window: 10 * event.Minute,
			})).
			Sink("sink", res.Operator())
		return res
	})
}

func TestCheckpointCompletesWhileRunning(t *testing.T) {
	store := checkpoint.NewMemStore()
	env := NewEnvironment(Config{
		WatermarkInterval: 16,
		Checkpoint:        &CheckpointSpec{Store: store, Interval: time.Millisecond},
	})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, minutesUpTo(300), nil), false).Throttle(3000)
	right := env.Source("v", mkEvents(tV, 1, minutesUpTo(300), nil), false).Throttle(3000)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute, Slide: event.Minute,
		Predicate: func(l, r []event.Event) bool { return l[0].TS < r[0].TS },
	})).Sink("sink", res.Operator())
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if env.CompletedCheckpoints() == 0 {
		t.Fatal("no checkpoint completed during a ~100ms run with 1ms interval")
	}
	stats := env.CheckpointStats()
	if len(stats) == 0 {
		t.Fatal("no checkpoint stats")
	}
	var sawState bool
	for _, st := range stats {
		if st.Bytes > 0 {
			sawState = true
		}
	}
	if !sawState {
		t.Fatal("no checkpoint captured any serialized state")
	}
	// The join node must have recorded per-checkpoint snapshot metrics.
	var joinCkpts int64
	for _, m := range env.NodeStats() {
		if m.Name == "join" {
			joinCkpts = m.Ckpts.Load()
		}
	}
	if joinCkpts == 0 {
		t.Fatal("join recorded no snapshots")
	}
}

func TestRestoreAtEndEmitsNothingNew(t *testing.T) {
	store := checkpoint.NewMemStore()
	build := func(env *Environment) (*Stream, *Results) {
		res := NewResults(true, true)
		src := env.Source("q", mkEvents(tQ, 1, minutesUpTo(50), nil), false)
		src.Filter("f", func(event.Event) bool { return true }).
			Sink("sink", res.Operator())
		return src, res
	}

	env := NewEnvironment(Config{Checkpoint: &CheckpointSpec{Store: store}})
	_, res := build(env)
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// All tasks finished: a post-run trigger completes instantly from their
	// final states — a snapshot of the fully drained pipeline.
	if id := env.TriggerCheckpoint(); id == 0 {
		t.Fatal("post-run TriggerCheckpoint refused")
	}
	if env.CompletedCheckpoints() != 1 {
		t.Fatalf("CompletedCheckpoints = %d, want 1", env.CompletedCheckpoints())
	}

	env2 := NewEnvironment(Config{Checkpoint: &CheckpointSpec{Store: store, Restore: true}})
	src2, res2 := build(env2)
	if err := env2.Execute(context.Background()); err != nil {
		t.Fatalf("restored Execute: %v", err)
	}
	if out := src2.Metrics().Out.Load(); out != 0 {
		t.Fatalf("restored source re-emitted %d events; offsets not restored", out)
	}
	if res2.Total() != res.Total() || res2.Unique() != res.Unique() {
		t.Fatalf("restored sink totals %d/%d, want %d/%d (exactly-once)",
			res2.Total(), res2.Unique(), res.Total(), res.Unique())
	}
	got, want := sortedResultKeys(t, res2), sortedResultKeys(t, res)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored matches differ:\ngot  %v\nwant %v", got, want)
	}
}

func TestFileStoreRecoveryEndToEnd(t *testing.T) {
	fs, err := checkpoint.NewFileStore(t.TempDir() + "/ckpts")
	if err != nil {
		t.Fatal(err)
	}
	build := func(env *Environment) *Results {
		res := NewResults(true, true)
		left := env.Source("q", mkEvents(tQ, 1, minutesUpTo(200), nil), false).Throttle(4000)
		right := env.Source("v", mkEvents(tV, 1, minutesUpTo(200), nil), false).Throttle(4000)
		left.Connect2("join", right, 1, nil, nil, NewIntervalJoin(IntervalJoinSpec{
			Lower: 0, Upper: 3 * event.Minute,
		})).Sink("sink", res.Operator())
		return res
	}

	oracleEnv := NewEnvironment(Config{WatermarkInterval: 16})
	oracleRes := build(oracleEnv)
	if err := oracleEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}

	ckEnv := NewEnvironment(Config{
		WatermarkInterval: 16,
		Checkpoint:        &CheckpointSpec{Store: fs, Interval: time.Millisecond},
	})
	build(ckEnv)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if ids, _ := fs.IDs(); len(ids) > 0 {
				time.Sleep(2 * time.Millisecond)
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	if err := ckEnv.Execute(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	// A fresh store handle over the same directory simulates a process
	// restart: recovery state must live entirely on disk.
	fs2, err := checkpoint.NewFileStore(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	restEnv := NewEnvironment(Config{
		WatermarkInterval: 16,
		Checkpoint:        &CheckpointSpec{Store: fs2, Restore: true},
	})
	restRes := build(restEnv)
	if err := restEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, want := sortedResultKeys(t, restRes), sortedResultKeys(t, oracleRes)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file-store recovery diverged:\ngot  %v\nwant %v", got, want)
	}
}

func TestRestoreRefusesDifferentGraph(t *testing.T) {
	store := checkpoint.NewMemStore()
	env := NewEnvironment(Config{Checkpoint: &CheckpointSpec{Store: store}})
	res := NewResults(false, false)
	env.Source("q", mkEvents(tQ, 1, minutesUpTo(10), nil), false).Sink("sink", res.Operator())
	if err := env.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if env.TriggerCheckpoint() == 0 {
		t.Fatal("trigger refused")
	}

	other := NewEnvironment(Config{Checkpoint: &CheckpointSpec{Store: store, Restore: true}})
	res2 := NewResults(false, false)
	other.Source("different-name", mkEvents(tQ, 1, minutesUpTo(10), nil), false).
		Sink("sink", res2.Operator())
	err := other.Execute(context.Background())
	if err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Fatalf("restore into different graph = %v, want fingerprint error", err)
	}
}

func TestCheckpointRequiresStore(t *testing.T) {
	env := NewEnvironment(Config{Checkpoint: &CheckpointSpec{}})
	res := NewResults(false, false)
	env.Source("q", mkEvents(tQ, 1, minutesUpTo(2), nil), false).Sink("sink", res.Operator())
	if err := env.Execute(context.Background()); err == nil {
		t.Fatal("checkpoint spec without store must fail")
	}
}
