package asp

import (
	"cep2asp/internal/event"

	"cep2asp/internal/overload"
)

// arrivalRate is a cheap long-run arrival-rate estimate for one input
// side of a stateful operator: events seen over the event-time span they
// covered. It costs two compares and an increment per record, so the
// operators maintain it unconditionally and the overload layer consumes
// it only when shedding actually happens — for completion scores
// (pattern-aware victim selection) and for lost-match bounds (recall
// accounting).
type arrivalRate struct {
	seen        int64
	first, last event.Time
	primed      bool
}

func (a *arrivalRate) observe(ts event.Time) {
	if !a.primed {
		a.primed = true
		a.first, a.last = ts, ts
		a.seen = 1
		return
	}
	if ts > a.last {
		a.last = ts
	}
	a.seen++
}

// perTimeUnit returns events per event-time unit (0 until the observed
// span is non-empty).
func (a *arrivalRate) perTimeUnit() float64 {
	if !a.primed || a.last <= a.first {
		return 0
	}
	return float64(a.seen-1) / float64(a.last-a.first)
}

// clampTimeLeft floors a remaining-lifetime computation at zero; expired
// state still gets the ExpectedArrivals floor of one potential partner.
func clampTimeLeft(t event.Time) int64 {
	if t < 0 {
		return 0
	}
	return int64(t)
}

// partnerBound bounds the matches one dropped buffered record could
// still have produced: every live opposite-side record it had not yet
// been joined with, plus the expected opposite-side arrivals within its
// remaining lifetime (rate padded by overload.LossSafety, floored at 1).
func partnerBound(liveOpposite int, oppositeRate float64, timeLeft int64) float64 {
	return float64(liveOpposite) + overload.ExpectedArrivals(oppositeRate, timeLeft)
}
