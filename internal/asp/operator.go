package asp

import (
	"cep2asp/internal/event"
)

// Operator is the unit of computation of a dataflow node. One Operator
// value is created per parallel instance, so implementations need no
// internal locking: the engine serializes all calls to a given instance.
type Operator interface {
	// OnRecord processes one data record arriving on the given port.
	OnRecord(port int, r Record, out *Collector)
	// OnWatermark is invoked when the instance's merged input watermark
	// advances to wm; window operators fire completed windows here. The
	// engine forwards the watermark downstream after this call returns.
	OnWatermark(wm event.Time, out *Collector)
	// OnClose is invoked once after all inputs reached end-of-stream and a
	// final MaxWatermark has been delivered; remaining state should flush.
	OnClose(out *Collector)
}

// WatermarkHolder is implemented by operators that may emit records with
// event times earlier than their input watermark (e.g. the NSEQ
// next-occurrence operator, which releases T1 events only once their
// absence interval is decided). The engine forwards
// min(input watermark, Hold()) downstream.
type WatermarkHolder interface {
	// Hold returns the earliest event time the operator may still emit,
	// minus one, or event.MaxWatermark when nothing is held.
	Hold() event.Time
}

// LateDropper is implemented by stateful window operators whose firing
// bookkeeping assumes every data record arrives strictly above the merged
// input watermark. For such operators a late record (TS <= watermark) would
// re-open windows that already fired — duplicating or losing emissions — so
// the engine drops late data records before OnRecord and counts them in the
// operator's Late metric.
type LateDropper interface {
	DropsLateRecords()
}

// Snapshotter is implemented by stateful operators that participate in
// aligned-barrier checkpointing. SnapshotState is invoked by the engine
// once the instance has aligned a barrier across all input senders — no
// other call is concurrent with it — and must return a self-contained
// serialization of the instance's state. RestoreState is invoked once,
// before any record is delivered, when the engine recovers from a
// checkpoint. Operators not implementing Snapshotter are treated as
// stateless: they acknowledge checkpoints with empty state.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState(data []byte) error
}

// StateCounter is implemented alongside Snapshotter by operators whose
// buffered elements are tracked by the state budget (Collector.AddState):
// after RestoreState the engine re-accounts BufferedState() elements so a
// recovered run keeps the same budget semantics as an uninterrupted one.
type StateCounter interface {
	BufferedState() int64
}

// BaseOperator provides no-op OnWatermark and OnClose for stateless
// operators; embed it and implement OnRecord.
type BaseOperator struct{}

// OnWatermark implements Operator.
func (BaseOperator) OnWatermark(event.Time, *Collector) {}

// OnClose implements Operator.
func (BaseOperator) OnClose(*Collector) {}

// filterOperator drops records whose predicate fails. It corresponds to the
// selection σ_θ of §2 and is the target of filter pushdown.
type filterOperator struct {
	BaseOperator
	pred    func(event.Event) bool
	scratch []event.Event
}

func (f *filterOperator) OnRecord(_ int, r Record, out *Collector) {
	if r.Kind == KindEvent {
		if f.pred(r.Event) {
			out.Emit(r)
		}
		return
	}
	// Filters over composites are rare (post-join residual predicates use
	// matchFilterOperator); apply to the first constituent for symmetry.
	f.scratch = r.Constituents(f.scratch[:0])
	if len(f.scratch) > 0 && f.pred(f.scratch[0]) {
		out.Emit(r)
	}
}

// matchFilterOperator applies a compiled predicate over all constituents of
// a composite; the translator uses it for residual (multi-alias) predicates
// that could not be pushed into a join.
type matchFilterOperator struct {
	BaseOperator
	pred    func([]event.Event) bool
	scratch []event.Event
}

func (f *matchFilterOperator) OnRecord(_ int, r Record, out *Collector) {
	f.scratch = r.Constituents(f.scratch[:0])
	if f.pred(f.scratch) {
		out.Emit(r)
	}
}

// mapOperator transforms each event (projection Π_m of §2). Used for schema
// alignment before unions (§4.1, disjunction discussion).
type mapOperator struct {
	BaseOperator
	fn func(event.Event) event.Event
}

func (m *mapOperator) OnRecord(_ int, r Record, out *Collector) {
	if r.Kind == KindEvent {
		e := m.fn(r.Event)
		out.Emit(Record{Kind: KindEvent, TS: e.TS, Event: e})
		return
	}
	out.Emit(r)
}

// passOperator forwards records unchanged; union nodes use it, the actual
// merge being performed by the engine's multi-sender channels.
type passOperator struct{ BaseOperator }

func (passOperator) OnRecord(_ int, r Record, out *Collector) { out.Emit(r) }

// funcOperator adapts a plain function as an operator, for tests and small
// custom stages.
type funcOperator struct {
	BaseOperator
	fn func(port int, r Record, out *Collector)
}

func (f *funcOperator) OnRecord(port int, r Record, out *Collector) { f.fn(port, r, out) }
