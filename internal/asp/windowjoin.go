package asp

import (
	"sort"
	"unsafe"

	"cep2asp/internal/event"
	"cep2asp/internal/overload"
)

// JoinPredicate is the θ predicate of a join, evaluated over the constituent
// events of the left and right (partial) matches. The translator compiles
// it from the pattern's temporal-order constraints, the window-span check,
// and any pushed-down multi-alias predicates.
type JoinPredicate func(left, right []event.Event) bool

// WindowJoinSpec configures a sliding window join: the direct mapping of
// conjunction (Cartesian product), sequence (θ join) and iteration (θ self
// join) under explicit windowing (Table 1).
//
// Events are bucketed into panes of the slide size; a window is the union
// of Window/Slide consecutive panes, aligned at multiples of Slide (Eqs.
// 4-5). When the watermark passes a window's end, the window's left and
// right contents are cross-joined under the predicate. Matches contained in
// several overlapping windows are emitted once per window — the duplicate
// behaviour inherent to this mapping (§3.1.4, second impact) that
// optimization O1 eliminates.
type WindowJoinSpec struct {
	Window, Slide event.Time
	// LeftKey/RightKey group events within an instance; nil means one
	// global group (the non-partitionable case of §5.1.2).
	LeftKey, RightKey KeyFn
	// Predicate filters joined pairs; nil joins everything (pure Cartesian
	// product). It is shared across parallel instances and must be
	// stateless; predicates with internal scratch must use NewPredicate.
	Predicate JoinPredicate
	// NewPredicate, when set, builds one predicate per operator instance
	// and takes precedence over Predicate.
	NewPredicate func() JoinPredicate
	// DedupEmits suppresses the per-overlapping-window duplicate emissions
	// of one join stage. Chained joins of a decomposed nested pattern
	// multiply duplicates by ~Window/Slide per stage — exponential in the
	// chain depth — so the translator dedups every intermediate join and
	// leaves only the final stage's duplicates observable (§3.1.4).
	DedupEmits bool
}

// NewWindowJoin returns the operator factory for Stream.Connect2.
func NewWindowJoin(spec WindowJoinSpec) func(int) Operator {
	return func(int) Operator {
		j := &windowJoin{
			spec:     spec,
			pred:     spec.Predicate,
			state:    make(map[int64]map[event.Time]*joinPane),
			nextFire: event.MaxWatermark,
		}
		if spec.NewPredicate != nil {
			j.pred = spec.NewPredicate()
		}
		if spec.DedupEmits {
			j.seen = make(map[string]event.Time)
		}
		return j
	}
}

type joinPane struct {
	left, right []Record
}

type windowJoin struct {
	spec     WindowJoinSpec
	pred     JoinPredicate
	state    map[int64]map[event.Time]*joinPane // key -> pane index -> pane
	nextFire event.Time                         // start of the earliest unfired window
	seen     map[string]event.Time              // emitted match keys (DedupEmits)
	recCount int64                              // records buffered across panes (mirrors AddState)
	// Shedding statistics: per-side arrival rates and the max event time
	// seen, feeding completion scores (pattern-aware victim selection)
	// and lost-match bounds (recall accounting).
	lRate, rRate arrivalRate
	maxTS        event.Time
	scratchL     []event.Event
	scratchR     []event.Event
	freeEvs      [][]event.Event // recycled match constituent buffers
	freeRecs     [][]Record      // recycled pane buffers
}

// DropsLateRecords implements LateDropper: OnRecord's nextFire tracking is
// only correct for records above the merged watermark, so the engine drops
// late data records at this operator's input.
func (j *windowJoin) DropsLateRecords() {}

func (j *windowJoin) getEvs(n int) []event.Event {
	if s := takeSlice(&j.freeEvs); s != nil && cap(s) >= n {
		return s
	}
	return make([]event.Event, 0, n)
}

func (j *windowJoin) putEvs(s []event.Event) { stashSlice(&j.freeEvs, s) }

func (j *windowJoin) getRecs() []Record {
	return takeSlice(&j.freeRecs) // nil when empty; append allocates lazily
}

func (j *windowJoin) putRecs(s []Record) { stashSlice(&j.freeRecs, s) }

// Hold implements WatermarkHolder: outputs carry their real (maximum
// constituent) event time, which lies anywhere inside the firing window, so
// the downstream watermark may only advance past windows that have fired.
// This is what keeps chained joins of a decomposed nested pattern (§4.2.2)
// working with windows of the original size W.
func (j *windowJoin) Hold() event.Time {
	if j.nextFire == event.MaxWatermark {
		return event.MaxWatermark
	}
	return j.nextFire - 1
}

func (j *windowJoin) key(port int, r Record) int64 {
	k := j.spec.LeftKey
	if port == 1 {
		k = j.spec.RightKey
	}
	if k == nil {
		return 0
	}
	return k(r)
}

func (j *windowJoin) OnRecord(port int, r Record, out *Collector) {
	key := j.key(port, r)
	panes := j.state[key]
	if panes == nil {
		panes = make(map[event.Time]*joinPane)
		j.state[key] = panes
	}
	idx := event.PaneIndex(r.TS, j.spec.Slide)
	p := panes[idx]
	if p == nil {
		p = &joinPane{}
		panes[idx] = p
	}
	if port == 0 {
		if p.left == nil {
			p.left = j.getRecs()
		}
		p.left = append(p.left, r)
		j.lRate.observe(r.TS)
	} else {
		if p.right == nil {
			p.right = j.getRecs()
		}
		p.right = append(p.right, r)
		j.rRate.observe(r.TS)
	}
	if r.TS > j.maxTS {
		j.maxTS = r.TS
	}
	j.recCount++
	out.AddState(1)

	// Track the earliest window that could contain this record. The engine
	// drops late records at our input (DropsLateRecords), so the record's
	// time exceeds the merged input watermark and this can only move
	// nextFire below windows that have not fired yet.
	kLo, _ := event.WindowsOf(r.TS, j.spec.Window, j.spec.Slide)
	if ws := kLo * j.spec.Slide; ws < j.nextFire {
		j.nextFire = ws
	}
}

func (j *windowJoin) OnWatermark(wm event.Time, out *Collector) {
	for j.nextFire <= wm-j.spec.Window+1 {
		// Skip ahead over empty windows: without buffered panes there is
		// nothing to fire (essential on the final MaxWatermark flush).
		pmin, ok := j.minPane()
		if !ok {
			j.nextFire = event.MaxWatermark
			return
		}
		// First slide-aligned window start whose window still covers pane
		// pmin: the smallest multiple of Slide > pmin*Slide - Window.
		if first := alignUp((pmin+1)*j.spec.Slide-j.spec.Window, j.spec.Slide); first > j.nextFire {
			j.nextFire = first
			continue
		}
		j.fire(j.nextFire, out)
		j.evictBefore(j.nextFire+j.spec.Slide, out)
		j.nextFire += j.spec.Slide
	}
	if j.seen != nil {
		// A duplicate of an emitted match can only recur while some window
		// still covers its constituents: evict once the watermark passes
		// the last such window's end.
		for k, tsE := range j.seen {
			if tsE+j.spec.Window-1 <= wm {
				delete(j.seen, k)
				out.AddState(-1)
			}
		}
	}
}

// alignUp rounds ts up to the next multiple of step.
func alignUp(ts, step event.Time) event.Time {
	return event.FloorDiv(ts+step-1, step) * step
}

// minPane returns the smallest buffered pane index across all key groups.
func (j *windowJoin) minPane() (event.Time, bool) {
	min, ok := event.Time(0), false
	for _, panes := range j.state {
		for idx := range panes {
			if !ok || idx < min {
				min, ok = idx, true
			}
		}
	}
	return min, ok
}

func (j *windowJoin) OnClose(*Collector) {}

// fire cross-joins the window [ws, ws+Window) for every key group. The
// output carries its true event time (maximum constituent timestamp); the
// watermark hold above keeps that safe for downstream windows.
func (j *windowJoin) fire(ws event.Time, out *Collector) {
	paneLo := event.PaneIndex(ws, j.spec.Slide)
	paneHi := event.PaneIndex(ws+j.spec.Window-1, j.spec.Slide)
	for _, panes := range j.state {
		for pl := paneLo; pl <= paneHi; pl++ {
			lp := panes[pl]
			if lp == nil || len(lp.left) == 0 {
				continue
			}
			for _, l := range lp.left {
				j.scratchL = l.Constituents(j.scratchL[:0])
				for pr := paneLo; pr <= paneHi; pr++ {
					rp := panes[pr]
					if rp == nil {
						continue
					}
					for _, r := range rp.right {
						j.scratchR = r.Constituents(j.scratchR[:0])
						if j.pred != nil && !j.pred(j.scratchL, j.scratchR) {
							continue
						}
						// Assemble constituents into a recycled buffer; the
						// match takes ownership. Emitted matches are never
						// recycled (downstream shares the pointer); only
						// dedup-rejected buffers return to the free list.
						evs := j.getEvs(len(j.scratchL) + len(j.scratchR))
						evs = append(evs, j.scratchL...)
						evs = append(evs, j.scratchR...)
						m := event.WrapMatch(evs)
						if j.seen != nil {
							k := m.Key()
							if _, dup := j.seen[k]; dup {
								j.putEvs(evs)
								continue
							}
							j.seen[k] = m.TsE
							out.AddState(1)
						}
						out.EmitMatch(m.TsE, m)
					}
				}
			}
		}
	}
}

// windowJoinState is the gob snapshot DTO of a windowJoin instance.
type windowJoinState struct {
	Panes    map[int64]map[event.Time]*joinPaneState
	NextFire event.Time
	Seen     map[string]event.Time
}

type joinPaneState struct {
	Left, Right []Record
}

// SnapshotState implements Snapshotter.
func (j *windowJoin) SnapshotState() ([]byte, error) {
	st := windowJoinState{
		Panes:    make(map[int64]map[event.Time]*joinPaneState, len(j.state)),
		NextFire: j.nextFire,
		Seen:     j.seen,
	}
	for key, panes := range j.state {
		ps := make(map[event.Time]*joinPaneState, len(panes))
		for idx, p := range panes {
			ps[idx] = &joinPaneState{Left: p.left, Right: p.right}
		}
		st.Panes[key] = ps
	}
	return gobEncode(st)
}

// RestoreState implements Snapshotter.
func (j *windowJoin) RestoreState(data []byte) error {
	var st windowJoinState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	j.state = make(map[int64]map[event.Time]*joinPane, len(st.Panes))
	for key, ps := range st.Panes {
		panes := make(map[event.Time]*joinPane, len(ps))
		for idx, p := range ps {
			panes[idx] = &joinPane{left: p.Left, right: p.Right}
		}
		j.state[key] = panes
	}
	j.nextFire = st.NextFire
	if j.spec.DedupEmits {
		j.seen = st.Seen
		if j.seen == nil {
			j.seen = make(map[string]event.Time)
		}
	}
	j.recCount = 0
	for _, panes := range j.state {
		for _, p := range panes {
			j.recCount += int64(len(p.left) + len(p.right))
		}
	}
	return nil
}

// BufferedState implements StateCounter: buffered records plus dedup keys,
// matching the AddState accounting of OnRecord/fire/evict.
func (j *windowJoin) BufferedState() int64 {
	var n int64
	for _, panes := range j.state {
		for _, p := range panes {
			n += int64(len(p.left) + len(p.right))
		}
	}
	return n + int64(len(j.seen))
}

// evictBefore drops panes entirely before the earliest live window start.
func (j *windowJoin) evictBefore(liveStart event.Time, out *Collector) {
	cutoff := event.PaneIndex(liveStart, j.spec.Slide)
	for key, panes := range j.state {
		for idx, p := range panes {
			if idx < cutoff {
				n := int64(len(p.left) + len(p.right))
				j.recCount -= n
				out.AddState(-n)
				j.putRecs(p.left)
				j.putRecs(p.right)
				delete(panes, idx)
			}
		}
		if len(panes) == 0 {
			delete(j.state, key)
		}
	}
}

// wjSeenEntryBytes approximates the footprint of one dedup-map entry
// (string header + short key + map overhead).
const wjSeenEntryBytes = 48

// StateStats implements StateAccountant: O(1) from the incremental record
// counter and the dedup-map length.
func (j *windowJoin) StateStats() StateStats {
	return StateStats{
		Records: j.recCount + int64(len(j.seen)),
		Bytes:   j.recCount*int64(unsafe.Sizeof(Record{})) + int64(len(j.seen))*wjSeenEntryBytes,
	}
}

// paneDeadline is the last partner timestamp a record in pane idx can
// still join with: the end of the latest slide-aligned window covering
// the pane.
func (j *windowJoin) paneDeadline(idx event.Time) event.Time {
	return idx*j.spec.Slide + j.spec.Window - 1
}

// dupFactor bounds emissions per joined pair: one per covering window
// unless this stage dedups (§3.1.4).
func (j *windowJoin) dupFactor() float64 {
	if j.seen != nil {
		return 1
	}
	return float64((j.spec.Window + j.spec.Slide - 1) / j.spec.Slide)
}

// paneLoss bounds the matches dropped with pane p of one key group: each
// dropped record could have joined every live opposite-side record of
// its group plus the expected opposite-side arrivals before the pane's
// deadline, emitted once per covering window. liveL/liveR count the
// group's buffered records including p itself. Over-counting is safe —
// it only lowers the reported recall estimate; under-counting is not.
func (j *windowJoin) paneLoss(p *joinPane, idx event.Time, liveL, liveR int) float64 {
	timeLeft := clampTimeLeft(j.paneDeadline(idx) - j.maxTS)
	loss := float64(len(p.left))*partnerBound(liveR, j.rRate.perTimeUnit(), timeLeft) +
		float64(len(p.right))*partnerBound(liveL, j.lRate.perTimeUnit(), timeLeft)
	return loss * j.dupFactor()
}

// groupCounts sums a key group's buffered records per side.
func groupCounts(panes map[event.Time]*joinPane) (liveL, liveR int) {
	for _, p := range panes {
		liveL += len(p.left)
		liveR += len(p.right)
	}
	return
}

// dropPane removes one pane from a key group, recycling its buffers and
// updating the record accounting. Returns the records dropped.
func (j *windowJoin) dropPane(key int64, idx event.Time, out *Collector) int64 {
	panes := j.state[key]
	p := panes[idx]
	n := int64(len(p.left) + len(p.right))
	j.recCount -= n
	out.AddState(-n)
	j.putRecs(p.left)
	j.putRecs(p.right)
	delete(panes, idx)
	if len(panes) == 0 {
		delete(j.state, key)
	}
	return n
}

// ShedOldest implements Shedder: whole oldest panes are dropped first
// (across every key group) until at most target accounted units remain.
// The dedup set is never shed — losing it could re-emit suppressed
// duplicates, breaking the subset property; a shed pane only removes
// records from unfired windows, which can only lose matches. Every
// dropped pane charges its lost-match bound so the recall estimate
// stays a sound lower bound.
func (j *windowJoin) ShedOldest(target int64, out *Collector) int64 {
	var dropped int64
	var lost float64
	for j.recCount+int64(len(j.seen)) > target {
		pmin, ok := j.minPane()
		if !ok {
			break
		}
		for key, panes := range j.state {
			if p := panes[pmin]; p != nil {
				liveL, liveR := groupCounts(panes)
				lost += j.paneLoss(p, pmin, liveL, liveR)
				dropped += j.dropPane(key, pmin, out)
			}
		}
	}
	out.AddLostMatches(lost)
	return dropped
}

// ShedLowestValue implements ValueShedder: panes are dropped in order of
// ascending completion value instead of age. A pane whose key group
// holds records on both sides will produce matches with no further
// arrivals and scores 1; a one-sided group only fires if the missing
// side arrives before the pane's last covering window closes, so it
// scores the Poisson completion probability of one such arrival. Ties
// break oldest-pane-first, matching ShedOldest. Scores are computed
// once per invocation (shedding is rare; staleness within one sweep
// only reorders equally doomed panes). The dedup set is never shed.
func (j *windowJoin) ShedLowestValue(target int64, out *Collector) int64 {
	type wjVictim struct {
		key   int64
		idx   event.Time
		score float64
	}
	var victims []wjVictim
	for key, panes := range j.state {
		liveL, liveR := groupCounts(panes)
		for idx := range panes {
			score := 1.0
			if liveL == 0 || liveR == 0 {
				rate := j.rRate.perTimeUnit() // group waits on right-side arrivals
				if liveL == 0 {
					rate = j.lRate.perTimeUnit()
				}
				timeLeft := clampTimeLeft(j.paneDeadline(idx) - j.maxTS)
				score = overload.CompletionValue(1, timeLeft, int64(j.spec.Window), rate)
			}
			victims = append(victims, wjVictim{key, idx, score})
		}
	}
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].score != victims[b].score {
			return victims[a].score < victims[b].score
		}
		return victims[a].idx < victims[b].idx
	})
	var dropped int64
	var lost float64
	for _, v := range victims {
		if j.recCount+int64(len(j.seen)) <= target {
			break
		}
		panes := j.state[v.key]
		if panes == nil || panes[v.idx] == nil {
			continue
		}
		liveL, liveR := groupCounts(panes)
		lost += j.paneLoss(panes[v.idx], v.idx, liveL, liveR)
		dropped += j.dropPane(v.key, v.idx, out)
	}
	out.AddLostMatches(lost)
	return dropped
}
