package asp

import (
	"sync"

	"cep2asp/internal/obs"
)

// batchPool recycles the []Record slices that carry batched records across
// inter-instance channels. The lifecycle is fully engine-controlled: a
// sender gets a buffer, fills it and hands it to the channel; the receiver
// iterates the records (copying each by value into its processing loop) and
// puts the buffer back. No operator or sink ever holds a reference to a
// batch slice, so recycling cannot be observed outside the engine.
type batchPool struct {
	pool sync.Pool
	size int
	obs  *obs.PoolMetrics // nil without a metrics registry
}

func newBatchPool(size int, pm *obs.PoolMetrics) *batchPool {
	return &batchPool{size: size, obs: pm}
}

// get returns an empty buffer with capacity for one full batch.
func (p *batchPool) get() []Record {
	if v := p.pool.Get(); v != nil {
		p.obs.Hit()
		return (*(v.(*[]Record)))[:0]
	}
	p.obs.Miss()
	return make([]Record, 0, p.size)
}

// put recycles a buffer. Records are not zeroed: any Match pointers they
// carry stay reachable at most until the GC clears the pool, and the next
// get overwrites them before anything reads the slice.
func (p *batchPool) put(b []Record) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}

// Per-operator-instance free lists. Stateful operators buffer records and
// constituent slices whose lifetime the operator fully controls (evicted
// panes, deleted groups, dedup-rejected match buffers); instead of leaving
// them to the GC they return to a small per-instance free list. No locking:
// the engine serializes all calls to one instance.

// freeListCap bounds per-instance free lists; beyond it, slices are left to
// the GC rather than retained indefinitely after a burst.
const freeListCap = 256

// takeSlice pops a recycled slice (length 0) from the free list, or returns
// nil when the list is empty.
func takeSlice[T any](free *[][]T) []T {
	l := len(*free)
	if l == 0 {
		return nil
	}
	s := (*free)[l-1]
	*free = (*free)[:l-1]
	return s[:0]
}

// stashSlice returns a slice's storage to the free list. Elements are not
// zeroed; the next take truncates to length 0 and appends over them.
func stashSlice[T any](free *[][]T, s []T) {
	if cap(s) > 0 && len(*free) < freeListCap {
		*free = append(*free, s[:0])
	}
}
