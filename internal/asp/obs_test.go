package asp

import (
	"context"
	"sync"
	"testing"
	"time"

	"cep2asp/internal/event"
	"cep2asp/internal/obs"
)

// slowSink delays every record, keeping the bounded input channel full so
// upstream sends block — the backpressure scenario.
type slowSink struct {
	BaseOperator
	delay time.Duration
}

func (s *slowSink) OnRecord(int, Record, *Collector) { time.Sleep(s.delay) }

func TestBackpressureAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	env := NewEnvironment(Config{ChannelCapacity: 2, Metrics: reg})
	const n = 200
	minutes := make([]int64, n)
	for i := range minutes {
		minutes[i] = int64(i)
	}
	env.Source("src", mkEvents(tQ, 1, minutes, nil), false).
		Sink("slow", func(int) Operator { return &slowSink{delay: 500 * time.Microsecond} })

	// Poll queue depth while the run is in flight: the bounded channel must
	// cap it at the edge's capacity, and backpressure should keep it busy.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var maxQueued, overCap int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range reg.Snapshot().Edges {
				if e.Queued > maxQueued {
					maxQueued = e.Queued
				}
				if e.Queued > e.Capacity {
					overCap = e.Queued
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	run(t, env)
	close(stop)
	wg.Wait()

	if overCap != 0 {
		t.Fatalf("queue depth %d exceeded channel capacity", overCap)
	}
	if maxQueued == 0 {
		t.Fatal("saturated edge never showed a queued record")
	}
	snap := reg.Snapshot()
	var edge *obs.EdgeSnapshot
	for i := range snap.Edges {
		if snap.Edges[i].From == "src" && snap.Edges[i].To == "slow" {
			edge = &snap.Edges[i]
		}
	}
	if edge == nil {
		t.Fatalf("edge src->slow not registered; edges: %+v", snap.Edges)
	}
	// Sent counts every record crossing the edge: the n events plus
	// control records (watermarks, end-of-stream).
	if edge.Sent < n {
		t.Fatalf("edge sent %d records, want >= %d", edge.Sent, n)
	}
	if edge.BlockedNanos == 0 {
		t.Fatal("slow sink produced no blocked-send time on the upstream edge")
	}
	for _, o := range snap.Operators {
		if o.Node == "slow" && o.In != n {
			t.Fatalf("sink counted %d records in, want %d", o.In, n)
		}
		if o.Node == "src" && o.Out != n {
			t.Fatalf("source counted %d records out, want %d", o.Out, n)
		}
	}
}

func TestSourceWatermarkUnderflow(t *testing.T) {
	cases := []struct{ maxTS, lateness, want event.Time }{
		{100, 10, 89},
		{0, 0, -1},
		{-5, 2, -8},
		{event.MinWatermark, 0, event.MinWatermark},
		{event.MinWatermark, 5 * event.Minute, event.MinWatermark},
		{event.MinWatermark + 3, 10, event.MinWatermark},
	}
	for _, c := range cases {
		if got := sourceWatermark(c.maxTS, c.lateness); got != c.want {
			t.Errorf("sourceWatermark(%d, %d) = %d, want %d", c.maxTS, c.lateness, got, c.want)
		}
	}
}

// wmRecorder captures every watermark delivered to a sink instance.
type wmRecorder struct {
	BaseOperator
	mu  sync.Mutex
	wms []event.Time
}

func (w *wmRecorder) OnRecord(int, Record, *Collector) {}

func (w *wmRecorder) OnWatermark(wm event.Time, _ *Collector) {
	w.mu.Lock()
	w.wms = append(w.wms, wm)
	w.mu.Unlock()
}

// A source whose max event time sits closer to the bottom of the time
// domain than its lateness bound must not emit a wrapped-around watermark:
// before the saturation guard, maxTS - lateness - 1 underflowed int64 and
// jumped ahead of every event time, firing downstream windows prematurely.
func TestSourceWatermarkUnderflowEndToEnd(t *testing.T) {
	rec := &wmRecorder{}
	env := NewEnvironment(Config{WatermarkInterval: 1})
	events := []event.Event{
		{Type: tQ, ID: 1, TS: event.MinWatermark + 2},
		{Type: tQ, ID: 1, TS: event.MinWatermark + 3},
	}
	env.SourceOutOfOrder("src", events, false, 100).
		Sink("rec", func(int) Operator { return rec })
	run(t, env)
	maxTS := events[1].TS
	for _, wm := range rec.wms {
		if wm > maxTS && wm != event.MaxWatermark {
			t.Fatalf("watermark %d wrapped past max event time %d", wm, maxTS)
		}
	}
}

func TestResultsLatencyPercentiles(t *testing.T) {
	res := NewResults(false, false)
	base := time.Now().UnixNano()
	// 100 records with detection latencies 1ms..100ms: the exact p50/p90/p99
	// are 50/90/99ms; the log-bucketed histogram may overshoot by its ~3%
	// bucket width plus the wall-clock skew between stamping and add().
	for i := 1; i <= 100; i++ {
		e := event.Event{Type: tQ, ID: int64(i), TS: int64(i)}
		e.Ingest = base - int64(i)*int64(time.Millisecond)
		res.add(EventRecord(e))
	}
	p50, p90, p99 := res.LatencyPercentiles()
	check := func(name string, got time.Duration, exact time.Duration) {
		t.Helper()
		if got < exact || got > exact+exact/8+5*time.Millisecond {
			t.Fatalf("%s = %v, want within [%v, %v]", name, got, exact, exact+exact/8+5*time.Millisecond)
		}
	}
	check("p50", p50, 50*time.Millisecond)
	check("p90", p90, 90*time.Millisecond)
	check("p99", p99, 99*time.Millisecond)
	if !(p50 <= p90 && p90 <= p99 && p99 <= res.MaxLatency()) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v max=%v", p50, p90, p99, res.MaxLatency())
	}
	if res.MaxLatency() < 100*time.Millisecond {
		t.Fatalf("max latency %v below the largest recorded value", res.MaxLatency())
	}
}

// benchPipeline drives a full source -> filter -> sink run per iteration;
// the nil-registry variant is the no-observability fast path guarded by
// scripts/bench_smoke.sh (every hook must cost one pointer comparison).
func benchPipeline(b *testing.B, reg *obs.Registry) {
	const n = 5000
	minutes := make([]int64, n)
	for i := range minutes {
		minutes[i] = int64(i)
	}
	events := mkEvents(tQ, 1, minutes, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := NewEnvironment(Config{Metrics: reg})
		res := NewResults(false, false)
		env.Source("src", events, false).
			Filter("filter", func(e event.Event) bool { return e.Value >= 0 }).
			Sink("sink", res.Operator())
		if err := env.Execute(context.Background()); err != nil {
			b.Fatal(err)
		}
		if res.Total() != n {
			b.Fatalf("sink saw %d records, want %d", res.Total(), n)
		}
	}
}

func BenchmarkPipelineNoRegistry(b *testing.B)   { benchPipeline(b, nil) }
func BenchmarkPipelineWithRegistry(b *testing.B) { benchPipeline(b, obs.NewRegistry()) }
