package asp

import (
	"context"
	"testing"

	"cep2asp/internal/event"
)

// Focused operator-level tests complementing engine_test.go: state
// accounting, eviction, watermark holds, dedup, and aggregation details.

func TestWindowJoinStateEvicted(t *testing.T) {
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(false, false)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 1, 2, 50, 51}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{0, 1, 2, 50, 51}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute,
		Slide:  event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := env.StateSize(); got != 0 {
		t.Fatalf("state after completion = %d, want 0 (all panes evicted)", got)
	}
}

func TestIntervalJoinStateEvicted(t *testing.T) {
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(false, false)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 10, 20, 30}, nil), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{5, 15, 25}, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewIntervalJoin(IntervalJoinSpec{
		Lower: 0, Upper: 5 * event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := env.StateSize(); got != 0 {
		t.Fatalf("state after completion = %d, want 0 (buffers evicted)", got)
	}
}

func TestNextOccurrenceStateEvicted(t *testing.T) {
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(false, false)
	a := env.Source("t1", mkEvents(tQ, 1, []int64{0, 5, 10}, nil), false)
	b := env.Source("t2", mkEvents(tV, 1, []int64{2, 7}, nil), false)
	a.Union("u", b).Process("no", 1, nil, NewNextOccurrence(NextOccurrenceSpec{
		T1: tQ, T2: tV, Window: 5 * event.Minute,
	})).Sink("sink", res.Operator())
	run(t, env)
	if got := env.StateSize(); got != 0 {
		t.Fatalf("state after completion = %d, want 0", got)
	}
	if got := res.Total(); got != 3 {
		t.Fatalf("annotated %d events, want 3", got)
	}
}

func TestWindowJoinDedupEmits(t *testing.T) {
	runJoin := func(dedup bool) (total int64) {
		env := NewEnvironment(Config{WatermarkInterval: 1})
		res := NewResults(false, false)
		left := env.Source("q", mkEvents(tQ, 1, []int64{10}, nil), false)
		right := env.Source("v", mkEvents(tV, 1, []int64{11}, nil), false)
		left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
			Window:     5 * event.Minute,
			Slide:      event.Minute,
			DedupEmits: dedup,
		})).Sink("sink", res.Operator())
		run(t, env)
		return res.Total()
	}
	withDup := runJoin(false)
	deduped := runJoin(true)
	if deduped != 1 {
		t.Fatalf("deduped emissions = %d, want 1", deduped)
	}
	// The pair co-occurs in 4 windows (starts 7..10 contain both ts=10,11).
	if withDup != 4 {
		t.Fatalf("duplicate emissions = %d, want 4", withDup)
	}
}

func TestWindowJoinHoldReleasesWatermark(t *testing.T) {
	// A chained pipeline would deadlock at EOS if the hold never released;
	// completing at all proves the release path.
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(true, true)
	w := 5 * event.Minute
	q := env.Source("q", mkEvents(tQ, 1, []int64{0, 30}, nil), false)
	v := env.Source("v", mkEvents(tV, 1, []int64{1, 31}, nil), false)
	p := env.Source("p", mkEvents(tP, 1, []int64{2, 32}, nil), false)
	j1 := q.Connect2("j1", v, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: w, Slide: event.Minute, DedupEmits: true,
		Predicate: func(l, r []event.Event) bool { return l[0].TS < r[0].TS },
	}))
	j1.Connect2("j2", p, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: w, Slide: event.Minute,
		Predicate: func(l, r []event.Event) bool {
			return l[len(l)-1].TS < r[0].TS && r[0].TS-l[0].TS < w
		},
	})).Sink("sink", res.Operator())
	run(t, env)
	// Two disjoint triples, both must be found despite the hold.
	if got := res.Unique(); got != 2 {
		t.Fatalf("chained join with holds found %d matches, want 2", got)
	}
}

func TestAggregateStatistics(t *testing.T) {
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(false, true)
	var captured []AggResult
	env.Source("v", mkEvents(tV, 1, []int64{0, 1, 2}, []float64{10, 30, 20}), false).
		Process("agg", 1, nil, NewWindowAggregate(WindowAggregateSpec{
			Window: 5 * event.Minute,
			Slide:  5 * event.Minute,
			Output: func(key int64, end event.Time, a AggResult) event.Event {
				captured = append(captured, a)
				return event.Event{ID: key, TS: end, Value: a.Mean()}
			},
		})).
		Sink("sink", res.Operator())
	run(t, env)
	if len(captured) != 1 {
		t.Fatalf("windows fired = %d, want 1", len(captured))
	}
	a := captured[0]
	if a.Count != 3 || a.Sum != 60 || a.Min != 10 || a.Max != 30 || a.Mean() != 20 {
		t.Fatalf("aggregate = %+v", a)
	}
	if res.Matches()[0].Events[0].Value != 20 {
		t.Fatalf("mean output = %g, want 20", res.Matches()[0].Events[0].Value)
	}
}

func TestAggregateKeyed(t *testing.T) {
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(false, true)
	events := append(mkEvents(tV, 1, []int64{0, 1, 2}, nil), mkEvents(tV, 2, []int64{0, 1}, nil)...)
	key := func(r Record) int64 { return r.Event.ID }
	env.Source("v", sortByTS(events), false).
		Process("agg", 2, key, NewWindowAggregate(WindowAggregateSpec{
			Window: 5 * event.Minute,
			Slide:  5 * event.Minute,
			Key:    key,
		})).
		Sink("sink", res.Operator())
	run(t, env)
	counts := map[int64]float64{}
	for _, m := range res.Matches() {
		counts[m.Events[0].ID] = m.Events[0].Value
	}
	if counts[1] != 3 || counts[2] != 2 {
		t.Fatalf("keyed counts = %v, want 1:3 2:2", counts)
	}
}

func TestAggResultMergeEmpty(t *testing.T) {
	var a AggResult
	b := AggResult{Count: 2, Sum: 10, Min: 3, Max: 7, Ingest: 99}
	a.merge(b)
	if a != b {
		t.Fatalf("merge into empty = %+v, want %+v", a, b)
	}
	var empty AggResult
	b.merge(empty)
	if b.Count != 2 {
		t.Fatal("merging empty changed the aggregate")
	}
	if empty.Mean() != 0 {
		t.Fatal("Mean of empty aggregate should be 0")
	}
}

func TestUnionManyStreams(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, false)
	var streams []*Stream
	for i := 0; i < 5; i++ {
		streams = append(streams, env.Source(
			mkName("s", i), mkEvents(tQ, int64(i), []int64{int64(i)}, nil), false))
	}
	streams[0].Union("u", streams[1:]...).Sink("sink", res.Operator())
	run(t, env)
	if got := res.Total(); got != 5 {
		t.Fatalf("union of 5 singleton streams delivered %d", got)
	}
}

func TestNextOccurrenceKeyed(t *testing.T) {
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(false, true)
	t1s := append(mkEvents(tQ, 1, []int64{0}, nil), mkEvents(tQ, 2, []int64{0}, nil)...)
	t2s := mkEvents(tV, 1, []int64{2}, nil) // blocker only for key 1
	key := func(r Record) int64 { return r.Event.ID }
	a := env.Source("t1", sortByTS(t1s), false)
	b := env.Source("t2", t2s, false)
	a.Union("u", b).Process("no", 2, key, NewNextOccurrence(NextOccurrenceSpec{
		T1: tQ, T2: tV, Window: 5 * event.Minute, Key: key,
	})).Sink("sink", res.Operator())
	run(t, env)
	ats := map[int64]event.Time{}
	for _, m := range res.Matches() {
		ats[m.Events[0].ID] = m.Events[0].AuxTS
	}
	if ats[1] != 2*event.Minute {
		t.Fatalf("key 1 ats = %d, want blocker at 2min", ats[1])
	}
	if ats[2] != 5*event.Minute {
		t.Fatalf("key 2 ats = %d, want window end (no blocker)", ats[2])
	}
}

func TestNodeStatsCounters(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, false)
	env.Source("src", mkEvents(tQ, 1, []int64{0, 1, 2, 3}, nil), false).
		Filter("f", func(e event.Event) bool { return e.TS >= 2*event.Minute }).
		Sink("sink", res.Operator())
	run(t, env)
	stats := env.NodeStats()
	byName := map[string]*NodeMetrics{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if got := byName["src"].Out.Load(); got != 4 {
		t.Fatalf("src out = %d, want 4", got)
	}
	if got := byName["f"].In.Load(); got != 4 {
		t.Fatalf("filter in = %d, want 4", got)
	}
	if got := byName["f"].Out.Load(); got != 2 {
		t.Fatalf("filter out = %d, want 2", got)
	}
	if got := byName["sink"].In.Load(); got != 2 {
		t.Fatalf("sink in = %d, want 2", got)
	}
}

func mkName(prefix string, i int) string { return prefix + string(rune('0'+i)) }

func sortByTS(events []event.Event) []event.Event {
	out := append([]event.Event{}, events...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].TS > out[j].TS; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func TestMatchFilterOperator(t *testing.T) {
	env := NewEnvironment(Config{WatermarkInterval: 1})
	res := NewResults(true, true)
	left := env.Source("q", mkEvents(tQ, 1, []int64{0, 1}, []float64{5, 50}), false)
	right := env.Source("v", mkEvents(tV, 1, []int64{2}, []float64{20}), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute, Slide: event.Minute,
	})).
		FilterMatch("residual", func(es []event.Event) bool {
			return es[0].Value < es[1].Value
		}).
		Sink("sink", res.Operator())
	run(t, env)
	if got := res.Unique(); got != 1 {
		t.Fatalf("residual filter kept %d matches, want 1", got)
	}
	if res.Matches()[0].Events[0].Value != 5 {
		t.Fatalf("wrong match survived: %v", res.Matches()[0])
	}
}

func TestApplyCustomStage(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	env.Source("src", mkEvents(tQ, 1, []int64{0, 1}, nil), false).
		Apply("double", func(_ int, r Record, out *Collector) {
			out.Emit(r)
			out.Emit(r)
		}).
		Sink("sink", res.Operator())
	run(t, env)
	if got := res.Total(); got != 4 {
		t.Fatalf("custom stage emitted %d, want 4", got)
	}
}

func TestCancelledBeforeExecute(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, false)
	env.Source("src", mkEvents(tQ, 1, []int64{0}, nil), false).Sink("sink", res.Operator())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := env.Execute(ctx); err == nil {
		t.Fatal("expected cancellation error")
	}
}
