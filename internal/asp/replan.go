package asp

import (
	"fmt"
	"strings"

	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
)

// SourceProgress is a source's replay position extracted from a checkpoint
// snapshot: the offset of the next event to emit and the maximum event
// time seen so far. The optimizer's online re-planning uses it to compute
// how far the rebuilt plan must rewind to regenerate every in-flight
// window (see internal/optimizer).
type SourceProgress struct {
	Offset int
	MaxTS  event.Time
}

// SourceOffsets extracts per-source replay positions from a snapshot, keyed
// by source node name (e.g. "src:QnVQuantity"). Parallel source instances
// are merged conservatively: the smallest offset and the largest MaxTS win,
// so a rewind based on the result never skips an unemitted event.
func SourceOffsets(snap *checkpoint.Snapshot) (map[string]SourceProgress, error) {
	if snap == nil {
		return nil, fmt.Errorf("asp: no snapshot to read source offsets from")
	}
	out := make(map[string]SourceProgress)
	for task, data := range snap.Tasks {
		// Task IDs are "<node>:<name>/<instance>"; only sources carry a
		// sourceState payload.
		colon := strings.Index(task, ":")
		slash := strings.LastIndex(task, "/")
		if colon < 0 || slash < colon {
			continue
		}
		name := task[colon+1 : slash]
		if !strings.HasPrefix(name, "src:") || len(data) == 0 {
			continue
		}
		var st sourceState
		if err := gobDecode(data, &st); err != nil {
			return nil, fmt.Errorf("asp: decoding source state of %s: %w", task, err)
		}
		cur, ok := out[name]
		if !ok {
			out[name] = SourceProgress{Offset: st.Offset, MaxTS: st.MaxTS}
			continue
		}
		if st.Offset < cur.Offset {
			cur.Offset = st.Offset
		}
		if st.MaxTS > cur.MaxTS {
			cur.MaxTS = st.MaxTS
		}
		out[name] = cur
	}
	return out, nil
}

// SourceWatermarkAt exposes the source watermark rule — maxTS - lateness -
// 1, saturating at event.MinWatermark — so replay-cutoff computations use
// exactly the watermark a source would have emitted.
func SourceWatermarkAt(maxTS, lateness event.Time) event.Time {
	return sourceWatermark(maxTS, lateness)
}
