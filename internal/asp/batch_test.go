package asp

import (
	"context"
	"sort"
	"strings"
	"testing"

	"cep2asp/internal/event"
	"cep2asp/internal/obs"
)

var (
	tBQ = event.RegisterType("BatchQ")
	tBV = event.RegisterType("BatchV")
)

// seqTopology builds a small SEQ(Q,V) window-join pipeline over the given
// environment and returns its result sink.
func seqTopology(env *Environment, n int) *Results {
	res := NewResults(true, true)
	minsQ := make([]int64, n)
	minsV := make([]int64, n)
	for i := range minsQ {
		minsQ[i] = int64(i * 2)
		minsV[i] = int64(i*2 + 1)
	}
	left := env.Source("q", mkEvents(tBQ, 1, minsQ, nil), false)
	right := env.Source("v", mkEvents(tBV, 1, minsV, nil), false)
	left.Connect2("join", right, 1, nil, nil, NewWindowJoin(WindowJoinSpec{
		Window: 5 * event.Minute,
		Slide:  event.Minute,
		Predicate: func(l, r []event.Event) bool {
			return l[0].TS < r[0].TS
		},
		DedupEmits: true,
	})).Sink("sink", res.Operator())
	return res
}

// matchKeys returns the sorted distinct match keys of a result sink.
func matchKeys(res *Results) []string {
	ms := res.Matches()
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

func TestBatchEquivalenceAcrossSizes(t *testing.T) {
	const n = 200
	var refKeys []string
	var refTotal int64
	for _, bs := range []int{1, 2, 7, 64, 4096} {
		env := NewEnvironment(Config{BatchSize: bs, WatermarkInterval: 1})
		res := seqTopology(env, n)
		if err := env.Execute(context.Background()); err != nil {
			t.Fatalf("BatchSize=%d: Execute: %v", bs, err)
		}
		keys := matchKeys(res)
		if len(keys) == 0 {
			t.Fatalf("BatchSize=%d: no matches found", bs)
		}
		if refKeys == nil {
			refKeys, refTotal = keys, res.Total()
			continue
		}
		if res.Total() != refTotal {
			t.Errorf("BatchSize=%d: total %d, want %d (batching must not change results)", bs, res.Total(), refTotal)
		}
		if len(keys) != len(refKeys) {
			t.Fatalf("BatchSize=%d: %d unique matches, want %d", bs, len(keys), len(refKeys))
		}
		for i := range keys {
			if keys[i] != refKeys[i] {
				t.Fatalf("BatchSize=%d: match set diverges at %d: %s vs %s", bs, i, keys[i], refKeys[i])
			}
		}
	}
}

// TestWatermarkCoalescingInBatch drives the Collector directly: adjacent
// watermarks pushed into one pending batch must collapse to the newest one,
// and a record in between must keep both.
func TestWatermarkCoalescingInBatch(t *testing.T) {
	e := &edge{chans: []chan []Record{make(chan []Record, 4)}}
	c := &Collector{
		metrics: &NodeMetrics{},
		senders: []edgeSender{{e: e, pending: make([][]Record, 1)}},
		done:    make(chan struct{}),
		batch:   16,
		pool:    newBatchPool(16, nil),
	}
	s := &c.senders[0]
	push := func(r Record) {
		if !c.push(s, 0, r) {
			t.Fatal("push aborted")
		}
	}
	push(Record{Kind: KindWatermark, TS: 1})
	push(Record{Kind: KindWatermark, TS: 2})
	push(Record{Kind: KindWatermark, TS: 3})
	if got := len(s.pending[0]); got != 1 {
		t.Fatalf("adjacent watermarks not coalesced: %d pending records, want 1", got)
	}
	if got := s.pending[0][0].TS; got != 3 {
		t.Fatalf("coalesced watermark TS = %d, want the newest (3)", got)
	}
	push(Record{Kind: KindEvent, TS: 5, Event: event.Event{TS: 5}})
	push(Record{Kind: KindWatermark, TS: 5})
	if got := len(s.pending[0]); got != 3 {
		t.Fatalf("watermark across a data record must not coalesce: %d pending, want 3", got)
	}
	// Filling the batch must transfer it as one channel operation.
	for i := 0; i < 13; i++ {
		push(Record{Kind: KindEvent, TS: 10 + event.Time(i)})
	}
	select {
	case b := <-e.chans[0]:
		if len(b) != 16 {
			t.Fatalf("transferred batch has %d records, want 16", len(b))
		}
	default:
		t.Fatal("full batch was not transferred")
	}
	if s.pending[0] != nil {
		t.Fatalf("pending not cleared after transfer")
	}
}

// TestBatchObsMetrics checks that edge transfers are amortized (fewer
// channel operations than records on an unpaced source edge), that the batch
// histogram and pool counters are populated, and that Sent still counts
// records so existing accounting is unchanged.
func TestBatchObsMetrics(t *testing.T) {
	const n = 5000
	reg := obs.NewRegistry()
	env := NewEnvironment(Config{BatchSize: 64, Metrics: reg})
	res := NewResults(false, true)
	mins := make([]int64, n)
	for i := range mins {
		mins[i] = int64(i)
	}
	env.Source("src", mkEvents(tBQ, 1, mins, nil), false).
		Filter("filter", func(event.Event) bool { return true }).
		Sink("sink", res.Operator())
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := res.Total(); got != n {
		t.Fatalf("sink received %d records, want %d", got, n)
	}
	snap := reg.Snapshot()
	var srcEdge *obs.EdgeSnapshot
	for i := range snap.Edges {
		if snap.Edges[i].From == "src" {
			srcEdge = &snap.Edges[i]
		}
	}
	if srcEdge == nil {
		t.Fatal("no src edge in snapshot")
	}
	if srcEdge.Sent < n {
		t.Fatalf("edge Sent = %d, want >= %d (records, not transfers)", srcEdge.Sent, n)
	}
	// An unpaced source flushes only on full batches and EOS, so transfers
	// must be a small fraction of records.
	if srcEdge.Batches == 0 || srcEdge.Batches > srcEdge.Sent/8 {
		t.Fatalf("edge Batches = %d for Sent = %d; expected amortized transfers", srcEdge.Batches, srcEdge.Sent)
	}
	if srcEdge.BatchMax < 64 {
		t.Fatalf("BatchMax = %d, want >= 64 (full batches)", srcEdge.BatchMax)
	}
	var pool *obs.PoolSnapshot
	for i := range snap.Pools {
		if snap.Pools[i].Name == "batch" {
			pool = &snap.Pools[i]
		}
	}
	if pool == nil {
		t.Fatal("no batch pool in snapshot")
	}
	if pool.Hits+pool.Misses == 0 {
		t.Fatal("pool counters untouched")
	}
	if pool.Hits == 0 {
		t.Fatal("expected pool hits: receivers recycle batch buffers")
	}
}

func TestThrottleValidation(t *testing.T) {
	t.Run("non-source", func(t *testing.T) {
		env := NewEnvironment(Config{})
		res := NewResults(false, false)
		env.Source("src", mkEvents(tBQ, 1, []int64{0}, nil), false).
			Filter("f", func(event.Event) bool { return true }).
			Throttle(100).
			Sink("sink", res.Operator())
		err := env.Execute(context.Background())
		if err == nil || !strings.Contains(err.Error(), "only source streams") {
			t.Fatalf("Execute = %v, want non-source Throttle error", err)
		}
	})
	for _, rate := range []float64{0, -5} {
		env := NewEnvironment(Config{})
		res := NewResults(false, false)
		env.Source("src", mkEvents(tBQ, 1, []int64{0}, nil), false).
			Throttle(rate).
			Sink("sink", res.Operator())
		err := env.Execute(context.Background())
		if err == nil || !strings.Contains(err.Error(), "rate must be positive") {
			t.Fatalf("Throttle(%v): Execute = %v, want rate error", rate, err)
		}
	}
}

func TestSourceOutOfOrderNegativeLateness(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, false)
	env.SourceOutOfOrder("src", mkEvents(tBQ, 1, []int64{0}, nil), false, -event.Minute).
		Sink("sink", res.Operator())
	err := env.Execute(context.Background())
	if err == nil || !strings.Contains(err.Error(), "negative lateness") {
		t.Fatalf("Execute = %v, want negative-lateness error", err)
	}
}

// TestBuildErrReportsFirst ensures the first misuse wins when several occur.
func TestBuildErrReportsFirst(t *testing.T) {
	env := NewEnvironment(Config{})
	res := NewResults(false, false)
	env.Source("src", mkEvents(tBQ, 1, []int64{0}, nil), false).
		Throttle(-1).
		Throttle(0).
		Sink("sink", res.Operator())
	err := env.Execute(context.Background())
	if err == nil || !strings.Contains(err.Error(), "got -1") {
		t.Fatalf("Execute = %v, want the first recorded error (rate -1)", err)
	}
}
