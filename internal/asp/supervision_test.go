package asp

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"cep2asp/internal/chaos"
	"cep2asp/internal/event"
)

// Supervised-execution tests: panics in operator and source code must become
// structured OperatorFailures with full attribution, never process crashes;
// wedged instances must be named by the shutdown deadline; quarantined
// records must leave the stream through the dead-letter hook.

func TestOperatorPanicBecomesFailure(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnvironment(Config{})
	res := NewResults(false, true)
	env.Source("src", mkEvents(tQ, 1, []int64{0, 1, 2, 3}, []float64{5, 50, 7, 70}), false).
		Map("map", func(e event.Event) event.Event {
			if e.Value == 50 {
				panic("bad record")
			}
			return e
		}).
		Sink("sink", res.Operator())
	err := env.Execute(context.Background())
	var f *OperatorFailure
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *OperatorFailure", err)
	}
	if f.Node != "map" || f.Instance != 0 || f.Source {
		t.Fatalf("failure misattributed: %+v", f)
	}
	if f.Panic != "bad record" {
		t.Fatalf("Panic = %v, want the panic value", f.Panic)
	}
	if !strings.Contains(string(f.Stack), "goroutine") {
		t.Fatal("failure carries no stack trace")
	}
	if !strings.Contains(f.RecordSummary, "id=1") || !strings.Contains(f.RecordSummary, "value=50") {
		t.Fatalf("RecordSummary = %q, want the offending record", f.RecordSummary)
	}
	if f.RecordKey == "" || !strings.HasPrefix(f.RecordKey, "e:") {
		t.Fatalf("RecordKey = %q, want a stable event key", f.RecordKey)
	}
	if !f.Restartable() {
		t.Fatal("operator failures must be restartable")
	}
	goroutinesSettled(t, before)
}

func TestChaosPanicAtSource(t *testing.T) {
	before := runtime.NumGoroutine()
	inj := chaos.NewInjector(chaos.Fault{Kind: chaos.Panic, Node: "src", Instance: 0, AtHit: 3})
	env := NewEnvironment(Config{Chaos: inj})
	res := NewResults(false, true)
	env.Source("src", mkEvents(tQ, 1, []int64{0, 1, 2, 3, 4}, nil), false).
		Sink("sink", res.Operator())
	err := env.Execute(context.Background())
	var f *OperatorFailure
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *OperatorFailure", err)
	}
	if !f.Source || f.Node != "src" {
		t.Fatalf("failure misattributed: %+v", f)
	}
	var inj2 *chaos.Injected
	if !errors.As(asErr(f.Panic), &inj2) {
		t.Fatalf("Panic = %v, want *chaos.Injected", f.Panic)
	}
	if fires := inj.Fires(); len(fires) != 1 {
		t.Fatalf("fires = %v, want exactly one", fires)
	}
	goroutinesSettled(t, before)
}

// asErr coerces a recovered panic value into an error for errors.As.
func asErr(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return nil
}

func TestChaosPanicFiresOnceAcrossRuns(t *testing.T) {
	// A shared injector keeps hit counters across executions, so a Times=1
	// fault does not re-fire on the rerun — the property supervised restart
	// relies on.
	inj := chaos.NewInjector(chaos.Fault{Kind: chaos.Panic, Node: "map", Instance: 0, AtHit: 2})
	for attempt := 0; attempt < 2; attempt++ {
		env := NewEnvironment(Config{Chaos: inj})
		res := NewResults(false, true)
		env.Source("src", mkEvents(tQ, 1, []int64{0, 1, 2}, nil), false).
			Map("map", func(e event.Event) event.Event { return e }).
			Sink("sink", res.Operator())
		err := env.Execute(context.Background())
		if attempt == 0 {
			var f *OperatorFailure
			if !errors.As(err, &f) {
				t.Fatalf("attempt 0: err = %v, want *OperatorFailure", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("attempt 1: fault re-fired: %v", err)
		}
		if res.Total() != 3 {
			t.Fatalf("attempt 1 delivered %d records, want 3", res.Total())
		}
	}
}

func TestShutdownTimeoutNamesStuckInstance(t *testing.T) {
	inj := chaos.NewInjector(chaos.Fault{Kind: chaos.Stall, Node: "map", Instance: 0})
	env := NewEnvironment(Config{Chaos: inj, ShutdownTimeout: 50 * time.Millisecond, ChannelCapacity: 2})
	res := NewResults(false, false)
	env.Source("src", mkEvents(tQ, 1, []int64{0, 1, 2, 3}, nil), false).
		Map("map", func(e event.Event) event.Event { return e }).
		Sink("sink", res.Operator())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond) // let the map instance wedge first
		cancel()
	}()
	err := env.Execute(ctx)
	var st *ErrShutdownTimeout
	if !errors.As(err, &st) {
		t.Fatalf("err = %v, want *ErrShutdownTimeout", err)
	}
	found := false
	for _, task := range st.Stuck {
		if strings.Contains(task, "map/0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Stuck = %v, want the wedged map instance", st.Stuck)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("timeout should wrap the teardown cause, got %v", err)
	}
	// Unblock the abandoned goroutine so it does not leak into other tests.
	inj.ReleaseStalls()
	goroutinesSettled(t, runtime.NumGoroutine())
}

func TestQuarantineDropsPoisonRecord(t *testing.T) {
	events := mkEvents(tQ, 1, []int64{0, 1, 2, 3}, nil)
	poison := poisonKey(EventRecord(events[2]))

	q := NewQuarantine()
	q.Add("map", poison)
	type drop struct {
		node string
		inst int
		key  string
	}
	var drops []drop
	q.OnDrop = func(node string, instance int, key, summary string) {
		drops = append(drops, drop{node, instance, key})
		if !strings.Contains(summary, "id=1") {
			t.Errorf("drop summary %q does not render the record", summary)
		}
	}

	env := NewEnvironment(Config{Quarantine: q})
	res := NewResults(false, true)
	env.Source("src", events, false).
		Map("map", func(e event.Event) event.Event { return e }).
		Sink("sink", res.Operator())
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Total() != 3 {
		t.Fatalf("delivered %d records, want 3 (one quarantined)", res.Total())
	}
	if len(drops) != 1 || drops[0] != (drop{"map", 0, poison}) {
		t.Fatalf("drops = %+v, want one at map/0 with the poison key", drops)
	}
}

func TestQuarantineAtSource(t *testing.T) {
	events := mkEvents(tQ, 1, []int64{0, 1, 2, 3}, nil)
	poison := poisonKey(EventRecord(events[1]))
	q := NewQuarantine()
	q.Add("src", poison)
	dropped := 0
	q.OnDrop = func(string, int, string, string) { dropped++ }

	env := NewEnvironment(Config{Quarantine: q})
	res := NewResults(false, true)
	env.Source("src", events, false).Sink("sink", res.Operator())
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Total() != 3 || dropped != 1 {
		t.Fatalf("delivered %d, dropped %d; want 3 and 1", res.Total(), dropped)
	}
}

func TestChaosRecordKeyFault(t *testing.T) {
	events := mkEvents(tQ, 1, []int64{0, 1, 2, 3}, nil)
	key := poisonKey(EventRecord(events[3]))
	inj := chaos.NewInjector(chaos.Fault{Kind: chaos.Panic, Node: "map", Instance: -1, RecordKey: key})
	env := NewEnvironment(Config{Chaos: inj})
	res := NewResults(false, true)
	env.Source("src", events, false).
		Map("map", func(e event.Event) event.Event { return e }).
		Sink("sink", res.Operator())
	err := env.Execute(context.Background())
	var f *OperatorFailure
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *OperatorFailure", err)
	}
	if f.RecordKey != key {
		t.Fatalf("RecordKey = %q, want %q — chaos fired on the wrong record", f.RecordKey, key)
	}
}
