package asp

import (
	"sort"
	"unsafe"

	"cep2asp/internal/event"
	"cep2asp/internal/overload"
)

// NextOccurrenceSpec configures the negated-sequence UDF of §4.1: it
// consumes the union of streams T1 and T2 and annotates every T1 event e1
// with an additional timestamp attribute ats — the timestamp of the next T2
// occurrence within (e1.TS, e1.TS+Window) that satisfies the blocker
// predicate, or e1.TS+Window when none occurred. The subsequent
// SEQ(T1', T3) join then applies the selection ats >= e3.ts, which encodes
// "no e2 in the open interval (e1.ts, e3.ts)" of Eq. 14.
//
// Because an e1 can only be released once its next-occurrence is decided,
// the operator may emit events older than its input watermark; it therefore
// implements WatermarkHolder, and the engine delays the downstream
// watermark accordingly.
type NextOccurrenceSpec struct {
	T1, T2 event.Type
	Window event.Time
	// Key groups T1/T2 per partition key (nil: one global group). Blockers
	// only void T1 events of the same group — the equi-correlated negation
	// of keyed patterns.
	Key KeyFn
	// Blocker decides whether a T2 candidate voids e1 (per-event
	// thresholds on e2 plus equi correlations with e1); nil accepts all.
	Blocker func(e1, e2 event.Event) bool
}

// NewNextOccurrence returns the operator factory for Stream.Process.
func NewNextOccurrence(spec NextOccurrenceSpec) func(int) Operator {
	return func(int) Operator {
		return &nextOccurrence{spec: spec, groups: make(map[int64]*noGroup)}
	}
}

type noGroup struct {
	pending []event.Event // T1 events awaiting resolution, sorted by TS
	t2      []event.Event // T2 events, sorted by TS
}

type nextOccurrence struct {
	spec   NextOccurrenceSpec
	groups map[int64]*noGroup
	elems  int64 // pending + t2 events buffered (mirrors AddState)
	// Shedding statistics: overall input rate and max event time seen. The
	// downstream SEQ(T1', T3) partner rate is invisible here, so the input
	// rate is the documented proxy in loss bounds (LossSafety pads it).
	inRate  arrivalRate
	maxTS   event.Time
	hold    event.Time
	freeEvs [][]event.Event // recycled group buffers
}

// DropsLateRecords implements LateDropper: a late T1 would move the
// watermark hold backwards (regressing the downstream watermark) and a late
// T2 could contradict absence decisions already emitted, so the engine drops
// late records at this operator's input.
func (n *nextOccurrence) DropsLateRecords() {}

// Hold implements WatermarkHolder: the earliest pending T1 event time - 1.
func (n *nextOccurrence) Hold() event.Time { return n.hold }

func (n *nextOccurrence) recomputeHold() {
	h := event.MaxWatermark
	for _, g := range n.groups {
		if len(g.pending) > 0 && g.pending[0].TS-1 < h {
			h = g.pending[0].TS - 1
		}
	}
	n.hold = h
}

func (n *nextOccurrence) OnRecord(_ int, r Record, out *Collector) {
	if r.Kind != KindEvent {
		return
	}
	var key int64
	if n.spec.Key != nil {
		key = n.spec.Key(r)
	}
	g := n.groups[key]
	if g == nil {
		g = &noGroup{pending: takeSlice(&n.freeEvs), t2: takeSlice(&n.freeEvs)}
		n.groups[key] = g
	}
	n.inRate.observe(r.Event.TS)
	if r.Event.TS > n.maxTS {
		n.maxTS = r.Event.TS
	}
	switch r.Event.Type {
	case n.spec.T1:
		g.pending = insertEventByTS(g.pending, r.Event)
		n.elems++
		out.AddState(1)
		if r.Event.TS-1 < n.hold {
			n.hold = r.Event.TS - 1
		}
	case n.spec.T2:
		g.t2 = insertEventByTS(g.t2, r.Event)
		n.elems++
		out.AddState(1)
	}
}

func insertEventByTS(buf []event.Event, e event.Event) []event.Event {
	i := len(buf)
	for i > 0 && buf[i-1].TS > e.TS {
		i--
	}
	buf = append(buf, event.Event{})
	copy(buf[i+1:], buf[i:])
	buf[i] = e
	return buf
}

func (n *nextOccurrence) OnWatermark(wm event.Time, out *Collector) {
	for key, g := range n.groups {
		n.resolve(g, wm, out)
		n.evictT2(g, wm, out)
		if len(g.pending) == 0 && len(g.t2) == 0 {
			stashSlice(&n.freeEvs, g.pending)
			stashSlice(&n.freeEvs, g.t2)
			delete(n.groups, key)
		}
	}
	n.recomputeHold()
}

// resolve decides pending T1 events whose next-occurrence is known:
// either a blocker with TS <= wm was found (no earlier T2 can still
// arrive), or the whole interval (e1.TS, e1.TS+W) is below the watermark.
func (n *nextOccurrence) resolve(g *noGroup, wm event.Time, out *Collector) {
	keep := g.pending[:0]
	for _, e1 := range g.pending {
		blocker, found := n.earliestBlocker(g, e1)
		switch {
		case found && blocker.TS <= wm:
			e1.AuxTS = blocker.TS
		case !found && wm >= e1.TS+n.spec.Window-1:
			e1.AuxTS = e1.TS + n.spec.Window
		case found && wm >= e1.TS+n.spec.Window-1:
			// Blocker seen but beyond wm cannot happen here: the interval
			// is fully below wm, so any seen blocker has TS <= wm and was
			// handled by the first case. Defensive: resolve with it.
			e1.AuxTS = blocker.TS
		default:
			keep = append(keep, e1)
			continue
		}
		n.elems--
		out.AddState(-1)
		out.EmitEvent(e1)
	}
	g.pending = keep
}

func (n *nextOccurrence) earliestBlocker(g *noGroup, e1 event.Event) (event.Event, bool) {
	for _, e2 := range g.t2 {
		if e2.TS <= e1.TS {
			continue
		}
		if e2.TS >= e1.TS+n.spec.Window {
			break
		}
		if n.spec.Blocker == nil || n.spec.Blocker(e1, e2) {
			return e2, true
		}
	}
	return event.Event{}, false
}

// evictT2 drops T2 events no pending or future T1 can need: future T1 have
// TS > wm, and a blocker must satisfy e2.TS > e1.TS.
func (n *nextOccurrence) evictT2(g *noGroup, wm event.Time, out *Collector) {
	minPending := event.MaxWatermark
	if len(g.pending) > 0 {
		minPending = g.pending[0].TS
	}
	cut := 0
	for _, e2 := range g.t2 {
		if e2.TS <= wm && e2.TS <= minPending {
			cut++
			continue
		}
		break
	}
	if cut > 0 {
		n.elems -= int64(cut)
		out.AddState(-int64(cut))
		m := copy(g.t2, g.t2[cut:])
		g.t2 = g.t2[:m]
	}
}

func (n *nextOccurrence) OnClose(*Collector) {}

// noState is the gob snapshot DTO of a nextOccurrence instance.
type noState struct {
	Groups map[int64]*noGroupState
}

type noGroupState struct {
	Pending, T2 []event.Event
}

// SnapshotState implements Snapshotter.
func (n *nextOccurrence) SnapshotState() ([]byte, error) {
	st := noState{Groups: make(map[int64]*noGroupState, len(n.groups))}
	for key, g := range n.groups {
		st.Groups[key] = &noGroupState{Pending: g.pending, T2: g.t2}
	}
	return gobEncode(st)
}

// RestoreState implements Snapshotter.
func (n *nextOccurrence) RestoreState(data []byte) error {
	var st noState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	n.groups = make(map[int64]*noGroup, len(st.Groups))
	n.elems = 0
	for key, g := range st.Groups {
		n.groups[key] = &noGroup{pending: g.Pending, t2: g.T2}
		n.elems += int64(len(g.Pending) + len(g.T2))
	}
	n.recomputeHold()
	return nil
}

// BufferedState implements StateCounter.
func (n *nextOccurrence) BufferedState() int64 {
	var c int64
	for _, g := range n.groups {
		c += int64(len(g.pending) + len(g.t2))
	}
	return c
}

// StateStats implements StateAccountant.
func (n *nextOccurrence) StateStats() StateStats {
	return StateStats{Records: n.elems, Bytes: n.elems * int64(unsafe.Sizeof(event.Event{}))}
}

// pendingLoss bounds the matches a dropped pending T1 could still have
// fed: had it resolved, its T1' event would join T3 partners arriving
// within (e1.TS, e1.TS+Window) downstream. The T3 rate is unknown at
// this operator, so the overall input rate stands in for it —
// over-counting (the input mixes T1 and T2 too) is safe, and the
// LossSafety padding plus floor-at-1 inside ExpectedArrivals covers the
// already-buffered downstream partners this operator cannot see.
func (n *nextOccurrence) pendingLoss(e1 event.Event) float64 {
	return overload.ExpectedArrivals(n.inRate.perTimeUnit(),
		clampTimeLeft(e1.TS+n.spec.Window-1-n.maxTS))
}

// ShedOldest implements Shedder. Only the oldest pending T1 events are
// shed: an undecided T1 that disappears simply never feeds the downstream
// sequence join (matches lost, none gained). T2 blocker events are NEVER
// shed — losing a blocker would resolve a negation as "no occurrence" and
// emit matches the unshed run suppresses, violating the subset property.
// target may therefore be unreachable when T2 events dominate. Every
// dropped pending T1 charges its lost-match bound.
func (n *nextOccurrence) ShedOldest(target int64, out *Collector) int64 {
	excess := n.elems - target
	if excess <= 0 {
		return 0
	}
	ts := make([]event.Time, 0, excess)
	for _, g := range n.groups {
		for _, e1 := range g.pending {
			ts = append(ts, e1.TS)
		}
	}
	if int64(len(ts)) < excess {
		excess = int64(len(ts))
	}
	if excess == 0 {
		return 0
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	cutoff := ts[excess-1]
	var dropped int64
	var lost float64
	for key, g := range n.groups {
		i := sort.Search(len(g.pending), func(k int) bool { return g.pending[k].TS > cutoff })
		if i > 0 {
			for k := 0; k < i; k++ {
				lost += n.pendingLoss(g.pending[k])
			}
			dropped += int64(i)
			m := copy(g.pending, g.pending[i:])
			g.pending = g.pending[:m]
		}
		if len(g.pending) == 0 && len(g.t2) == 0 {
			stashSlice(&n.freeEvs, g.pending)
			stashSlice(&n.freeEvs, g.t2)
			delete(n.groups, key)
		}
	}
	n.elems -= dropped
	out.AddState(-dropped)
	out.AddLostMatches(lost)
	n.recomputeHold()
	return dropped
}

// ShedLowestValue implements ValueShedder: the NEWEST pending T1 events
// are shed first. An old pending T1 is the most valuable state this
// operator holds — its negation interval is nearly closed, so it is
// about to resolve and feed the downstream join (and it is what the
// watermark hold is waiting on); a fresh T1 must survive a full window
// of blocker candidates before producing anything. T2 blockers are
// still never shed (see ShedOldest). Mirrors the cutoff idiom from the
// top: the excess-th largest pending timestamp becomes the cutoff and
// everything at or above it is dropped (ties shed together).
func (n *nextOccurrence) ShedLowestValue(target int64, out *Collector) int64 {
	excess := n.elems - target
	if excess <= 0 {
		return 0
	}
	ts := make([]event.Time, 0, excess)
	for _, g := range n.groups {
		for _, e1 := range g.pending {
			ts = append(ts, e1.TS)
		}
	}
	if int64(len(ts)) < excess {
		excess = int64(len(ts))
	}
	if excess == 0 {
		return 0
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] > ts[b] }) // descending
	cutoff := ts[excess-1]                                       // excess-th largest
	var dropped int64
	var lost float64
	for key, g := range n.groups {
		i := sort.Search(len(g.pending), func(k int) bool { return g.pending[k].TS >= cutoff })
		if i < len(g.pending) {
			for k := i; k < len(g.pending); k++ {
				lost += n.pendingLoss(g.pending[k])
			}
			dropped += int64(len(g.pending) - i)
			g.pending = g.pending[:i]
		}
		if len(g.pending) == 0 && len(g.t2) == 0 {
			stashSlice(&n.freeEvs, g.pending)
			stashSlice(&n.freeEvs, g.t2)
			delete(n.groups, key)
		}
	}
	n.elems -= dropped
	out.AddState(-dropped)
	out.AddLostMatches(lost)
	n.recomputeHold()
	return dropped
}
