package asp

import (
	"bytes"
	"encoding/gob"
)

// gobEncode serializes a snapshot DTO. Operators exchange state with the
// checkpoint coordinator as opaque byte slices; gob keeps the format
// self-describing so snapshots survive field additions to the DTOs.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// gobDecode deserializes a snapshot DTO produced by gobEncode.
func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
