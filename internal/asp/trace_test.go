package asp

import (
	"testing"
	"time"

	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
	"cep2asp/internal/trace"
)

// TestTraceSpanCausality runs a fully sampled pipeline and checks the
// causal structure of the emitted spans: every traced source event opens
// with a source span, every operator hop's queue wait begins no earlier
// than the upstream handoff, and durations/queue waits are non-negative.
func TestTraceSpanCausality(t *testing.T) {
	tr := trace.New(1, 0)
	env := NewEnvironment(Config{Trace: tr})
	const n = 300
	minutes := make([]int64, n)
	for i := range minutes {
		minutes[i] = int64(i)
	}
	res := NewResults(false, false)
	env.Source("src", mkEvents(tQ, 1, minutes, nil), false).
		Filter("filter", func(e event.Event) bool { return e.Value >= 0 }).
		Sink("sink", res.Operator())
	run(t, env)
	if res.Total() != n {
		t.Fatalf("sink saw %d records, want %d", res.Total(), n)
	}

	spans := tr.Spans()
	var sources, ops int
	srcStart := make(map[uint64]int64) // trace -> source span start
	for _, s := range spans {
		if s.DurNs < 0 || s.QueueNs < 0 {
			t.Fatalf("negative time in span %+v", s)
		}
		switch s.Kind {
		case trace.KindSource:
			sources++
			if s.Trace == 0 {
				t.Fatalf("source span without trace identity: %+v", s)
			}
			srcStart[s.Trace] = s.StartNs
		case trace.KindOp:
			ops++
		}
	}
	if sources != n {
		t.Fatalf("rate-1 sampling produced %d source spans for %d events", sources, n)
	}
	if ops == 0 {
		t.Fatal("no operator spans recorded")
	}
	// Causality: an op span's queue wait starts at the upstream handoff
	// (StartNs - QueueNs), which cannot precede the trace's source span.
	for _, s := range spans {
		if s.Kind != trace.KindOp {
			continue
		}
		start, ok := srcStart[s.Trace]
		if !ok {
			t.Fatalf("op span for unknown trace %x: %+v", s.Trace, s)
		}
		if handoff := s.StartNs - s.QueueNs; handoff < start {
			t.Fatalf("op span precedes its source: handoff %d < source start %d (%+v)",
				handoff, start, s)
		}
	}
	sum := tr.Summarize()
	if sum.Traces != n {
		t.Fatalf("summary found %d traces, want %d", sum.Traces, n)
	}
	if sum.E2EP50 < 0 || sum.E2EP99 < sum.E2EP50 || sum.E2EMax < sum.E2EP99 {
		t.Fatalf("e2e quantiles not monotone: p50=%v p99=%v max=%v", sum.E2EP50, sum.E2EP99, sum.E2EMax)
	}
}

// TestTraceDisabledAddsNothing: the disabled tracer is a nil pointer all
// the way down — records stay untraced and no spans accumulate.
func TestTraceDisabledAddsNothing(t *testing.T) {
	var tr *trace.Tracer // = trace.New(0, 0)
	env := NewEnvironment(Config{Trace: tr})
	res := NewResults(false, false)
	env.Source("src", mkEvents(tQ, 1, []int64{0, 1, 2}, nil), false).
		Sink("sink", res.Operator())
	run(t, env)
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("disabled tracer holds %d spans", len(got))
	}
}

// TestBarrierSpansPerCheckpoint: a checkpointing run must publish barrier
// spans (alignment and completion) carrying the checkpoint ID as their
// trace identity.
func TestBarrierSpansPerCheckpoint(t *testing.T) {
	tr := trace.New(1, 0)
	env := NewEnvironment(Config{
		Trace:      tr,
		Checkpoint: &CheckpointSpec{Store: checkpoint.NewMemStore(), Interval: 5 * time.Millisecond},
	})
	res := NewResults(false, false)
	minutes := make([]int64, 2000)
	for i := range minutes {
		minutes[i] = int64(i)
	}
	env.Source("src", mkEvents(tQ, 1, minutes, nil), false).
		Filter("filter", func(e event.Event) bool { time.Sleep(10 * time.Microsecond); return true }).
		Sink("sink", res.Operator())
	run(t, env)
	stats := env.CheckpointStats()
	if len(stats) == 0 {
		t.Skip("no checkpoint completed within the run")
	}
	byKind := make(map[string]int)
	ids := make(map[uint64]bool)
	for _, s := range tr.Spans() {
		if s.Kind != trace.KindBarrier {
			continue
		}
		byKind[s.Name]++
		ids[s.Trace] = true
	}
	if len(ids) == 0 {
		t.Fatal("checkpointing run produced no barrier spans")
	}
	for _, st := range stats {
		if !ids[uint64(st.ID)] {
			t.Fatalf("completed checkpoint %d has no barrier span; spans by name: %v", st.ID, byKind)
		}
	}
}
