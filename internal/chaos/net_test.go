package chaos

import (
	"testing"
	"time"
)

func TestParseNetFaults(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"netreset:0>1@20", Fault{Kind: NetReset, Instance: -1, From: 0, To: 1, AtHit: 20}},
		{"netdrop:1>*@5", Fault{Kind: NetDrop, Instance: -1, From: 1, To: -1, AtHit: 5}},
		{"netcorrupt:*>0@9x2", Fault{Kind: NetCorrupt, Instance: -1, From: -1, To: 0, AtHit: 9, Times: 2}},
		{"netdelay=50ms:0>2@1x10", Fault{Kind: NetDelay, Delay: 50 * time.Millisecond, Instance: -1, From: 0, To: 2, AtHit: 1, Times: 10}},
		{"netpartition:1>0x5000", Fault{Kind: NetPartition, Instance: -1, From: 1, To: 0, Times: 5000}},
	}
	for _, tc := range cases {
		got, err := ParseFault(tc.spec)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseFault(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{
		"netdrop:0/1",        // node syntax on a net fault
		"netreset:0>x",       // bad worker
		"netreset:->2",       // negative worker
		"netfrob:0>1",        // unknown kind
		"netdelay=zzz:0>1",   // bad duration
		"netdrop:0>1@frames", // bad frame count
	} {
		if _, err := ParseFault(bad); err == nil {
			t.Fatalf("ParseFault(%q) accepted a malformed spec", bad)
		}
	}
}

func TestNetFaultStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"netreset:0>1@20",
		"netdrop:1>*@5",
		"netcorrupt:*>0@9x2",
		"netdelay=50ms:0>2x10",
		"netpartition:1>0@2x5000",
	} {
		f, err := ParseFault(spec)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", spec, err)
		}
		back, err := ParseFault(f.String())
		if err != nil {
			t.Fatalf("re-parsing %q (from %q): %v", f.String(), spec, err)
		}
		if back != f {
			t.Fatalf("String round trip of %q: %+v != %+v", spec, back, f)
		}
	}
}

// TestNetPointScoping: faults match only their directed link, wildcards
// match everything, and node faults never leak into NetPoints (nor net
// faults into node Points).
func TestNetPointScoping(t *testing.T) {
	inj := NewInjector(
		Fault{Kind: NetDrop, From: 0, To: 1},
		Fault{Kind: Panic, Node: "sink#0", Instance: -1},
	)
	if p := inj.NetPoint(1, 0); p != nil {
		t.Fatal("reverse direction resolved a NetPoint: net faults must be asymmetric")
	}
	if p := inj.NetPoint(0, 2); p != nil {
		t.Fatal("unrelated link resolved a NetPoint")
	}
	p := inj.NetPoint(0, 1)
	if p == nil {
		t.Fatal("matching link resolved no NetPoint")
	}
	if len(p.faults) != 1 {
		t.Fatalf("NetPoint carries %d faults, want 1 (the node fault must not leak in)", len(p.faults))
	}
	if np := inj.Point("sink#0", 0); np == nil || len(np.faults) != 1 {
		t.Fatalf("node Point = %+v, want exactly the panic fault", np)
	}

	wild := NewInjector(Fault{Kind: NetReset, From: -1, To: -1})
	if wild.NetPoint(3, 7) == nil {
		t.Fatal("wildcard fault did not match an arbitrary link")
	}
	var nilInj *Injector
	if nilInj.NetPoint(0, 1) != nil || nilInj.HasNetFaults() {
		t.Fatal("nil injector must resolve nothing")
	}
	var nilPoint *NetPoint
	if nilPoint.Frame() != NetPass || nilPoint.Partitioned() {
		t.Fatal("nil NetPoint must be a no-op")
	}
}

// TestNetPointFrameWindow: @hit/xN select an exact frame window, counters
// are shared across NetPoints of the same injector (monotonic across
// restarts), and exhausted faults never re-fire.
func TestNetPointFrameWindow(t *testing.T) {
	inj := NewInjector(Fault{Kind: NetDrop, From: 0, To: 1, AtHit: 3, Times: 2})
	p := inj.NetPoint(0, 1)
	want := []NetAction{NetPass, NetPass, NetDropFrame, NetDropFrame, NetPass, NetPass}
	for i, w := range want {
		if got := p.Frame(); got != w {
			t.Fatalf("frame %d: action %v, want %v", i+1, got, w)
		}
	}
	// A fresh NetPoint (post-restart re-resolution) shares the counters.
	if got := inj.NetPoint(0, 1).Frame(); got != NetPass {
		t.Fatalf("exhausted fault re-fired after re-resolution: %v", got)
	}
	if fires := inj.Fires(); len(fires) != 1 {
		t.Fatalf("want exactly one recorded fire for the window, got %v", fires)
	}
}

// TestPartitionWindow: Partitioned() consults only netpartition faults, so
// control-plane gating never consumes the frame counters of frame-precise
// faults, while data frames and control sends share the partition window.
func TestPartitionWindow(t *testing.T) {
	inj := NewInjector(
		Fault{Kind: NetDrop, From: 1, To: 0, AtHit: 2},
		Fault{Kind: NetPartition, From: 1, To: 0, Times: 3},
	)
	p := inj.NetPoint(1, 0)
	if !p.Partitioned() || !p.Partitioned() {
		t.Fatal("partition window did not swallow control sends")
	}
	// Third partition hit comes from the data plane.
	if got := p.Frame(); got != NetBlackhole {
		t.Fatalf("frame inside partition window: %v, want blackhole", got)
	}
	// Window exhausted; the netdrop fault must still be at hit 1 of 2 —
	// Partitioned() must not have advanced it — so the next frame drops.
	if got := p.Frame(); got != NetDropFrame {
		t.Fatalf("post-partition frame: %v, want drop (netdrop counter must be untouched by control gating)", got)
	}
	if p.Partitioned() {
		t.Fatal("partition window re-fired after exhaustion")
	}
}

// TestNetDelayInline: delay faults sleep but pass the frame through.
func TestNetDelayInline(t *testing.T) {
	inj := NewInjector(Fault{Kind: NetDelay, Delay: 20 * time.Millisecond, From: 0, To: 1})
	p := inj.NetPoint(0, 1)
	start := time.Now()
	if got := p.Frame(); got != NetPass {
		t.Fatalf("delayed frame action %v, want pass", got)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("netdelay slept %v, want >= 20ms", d)
	}
}
