// Network fault injection: directed, frame-counted faults on the links
// between workers. Unlike node faults — which fire inside an operator
// instance — net faults fire inside the exchange transport's send path, so
// a fired fault exercises the real codec, framing, reconnect and failure
// detection machinery of the receiving side. Faults are scoped by worker
// pair and direction (`from>to`), so asymmetric partitions — A hears B but
// B never hears A — are expressible.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

const (
	// NetDrop silently discards one outbound data frame. The sender
	// believes the write succeeded; the receiver observes a sequence gap
	// at the next frame and must escalate to a restart.
	NetDrop Kind = iota + 16
	// NetDelay sleeps Fault.Delay before an outbound frame is written,
	// modelling a congested or lossy-with-retransmit link.
	NetDelay
	// NetReset closes the connection immediately before the write,
	// modelling a mid-stream TCP RST. The frame itself is never lost at
	// the application layer — the sender still holds it — so a transport
	// with reconnect support heals this without a restart.
	NetReset
	// NetCorrupt flips bits in the encoded frame after the length prefix,
	// modelling payload corruption the checksum must catch.
	NetCorrupt
	// NetPartition blackholes the link for a window of sends: frames (and,
	// for links toward the coordinator, control-plane messages) vanish
	// without any error at either end. Use xN to size the window; the
	// partition heals when the window is exhausted.
	NetPartition
)

// netKind reports whether k is a network fault kind.
func netKind(k Kind) bool {
	return k >= NetDrop && k <= NetPartition
}

func netKindString(k Kind) string {
	switch k {
	case NetDrop:
		return "netdrop"
	case NetDelay:
		return "netdelay"
	case NetReset:
		return "netreset"
	case NetCorrupt:
		return "netcorrupt"
	case NetPartition:
		return "netpartition"
	}
	return ""
}

// NetAction is the transport-visible outcome of registering one frame at a
// NetPoint.
type NetAction uint8

const (
	// NetPass lets the frame through unchanged.
	NetPass NetAction = iota
	// NetDropFrame discards the frame but reports success to the sender.
	NetDropFrame
	// NetResetConn severs the connection before the write.
	NetResetConn
	// NetCorruptFrame flips bits in the frame before the write.
	NetCorruptFrame
	// NetBlackhole swallows the frame as part of a partition window.
	NetBlackhole
)

func (a NetAction) String() string {
	switch a {
	case NetPass:
		return "pass"
	case NetDropFrame:
		return "drop"
	case NetResetConn:
		return "reset"
	case NetCorruptFrame:
		return "corrupt"
	case NetBlackhole:
		return "blackhole"
	}
	return fmt.Sprintf("netaction(%d)", a)
}

// NetPoint is the per-link handle of the network inject site for a
// directed worker pair. The transport resolves one per outbound
// connection; a nil NetPoint (no armed fault matches the link) costs one
// pointer comparison per frame.
type NetPoint struct {
	inj        *Injector
	link       string
	faults     []*armed
	partitions []*armed
}

// NetPoint resolves the inject site for the directed link from worker
// `from` to worker `to`, or nil when no armed network fault matches it.
// Nil-safe on a nil Injector. A fault's From/To of -1 match any worker.
func (inj *Injector) NetPoint(from, to int) *NetPoint {
	if inj == nil {
		return nil
	}
	p := &NetPoint{inj: inj, link: fmt.Sprintf("w%d>w%d", from, to)}
	for _, f := range inj.faults {
		if !netKind(f.Kind) {
			continue
		}
		if f.From >= 0 && f.From != from {
			continue
		}
		if f.To >= 0 && f.To != to {
			continue
		}
		p.faults = append(p.faults, f)
		if f.Kind == NetPartition {
			p.partitions = append(p.partitions, f)
		}
	}
	if len(p.faults) == 0 {
		return nil
	}
	return p
}

// Frame registers one outbound data frame on the link and returns the
// action the transport must apply. NetDelay faults sleep inline and still
// return NetPass (a delayed frame is eventually written). When several
// faults fire on the same frame the first destructive action wins. Hit
// counters are shared with every NetPoint of the same fault — including
// the control-plane gate — and count monotonically across restarts.
func (p *NetPoint) Frame() NetAction {
	if p == nil {
		return NetPass
	}
	act := NetPass
	for _, f := range p.faults {
		if !p.fire(f) {
			continue
		}
		if f.Kind == NetDelay {
			time.Sleep(f.Delay)
			continue
		}
		if act != NetPass {
			continue
		}
		switch f.Kind {
		case NetDrop:
			act = NetDropFrame
		case NetReset:
			act = NetResetConn
		case NetCorrupt:
			act = NetCorruptFrame
		case NetPartition:
			act = NetBlackhole
		}
	}
	return act
}

// Partitioned registers one control-plane send on the link and reports
// whether an armed NetPartition window swallows it. Only partition faults
// are consulted — frame-precise faults like netdrop must not have their
// hit counters consumed by heartbeat traffic.
func (p *NetPoint) Partitioned() bool {
	if p == nil {
		return false
	}
	blocked := false
	for _, f := range p.partitions {
		if p.fire(f) {
			blocked = true
		}
	}
	return blocked
}

// fire advances f's hit window for one send and reports whether it fires.
// Only the first firing is recorded in Fires() — partition windows span
// thousands of sends and would otherwise drown the log.
func (p *NetPoint) fire(f *armed) bool {
	if f.hits.Add(1) < f.AtHit {
		return false
	}
	n := f.fired.Add(1)
	if n > f.Times {
		return false
	}
	if n == 1 {
		p.inj.recordFire(f, p.link)
	}
	return true
}

// parseNetLink parses the tail of a network fault spec: from>to[@frame][xN]
// with * as the any-worker wildcard.
func parseNetLink(f Fault, spec, rest string) (Fault, error) {
	if i := strings.LastIndex(rest, "x"); i >= 0 {
		if n, err := strconv.ParseInt(rest[i+1:], 10, 64); err == nil {
			f.Times = n
			rest = rest[:i]
		}
	}
	if i := strings.LastIndex(rest, "@"); i >= 0 {
		n, err := strconv.ParseInt(rest[i+1:], 10, 64)
		if err != nil {
			return f, fmt.Errorf("chaos: fault %q: bad frame count %q", spec, rest[i+1:])
		}
		f.AtHit = n
		rest = rest[:i]
	}
	from, to, ok := strings.Cut(rest, ">")
	if !ok {
		return f, fmt.Errorf("chaos: fault %q: want from>to[@frame][xN]", spec)
	}
	worker := func(s string) (int, error) {
		if s == "*" {
			return -1, nil
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("chaos: fault %q: bad worker %q", spec, s)
		}
		return n, nil
	}
	var err error
	if f.From, err = worker(from); err != nil {
		return f, err
	}
	if f.To, err = worker(to); err != nil {
		return f, err
	}
	return f, nil
}

// HasNetFaults reports whether any armed fault is a network fault, so the
// transport can skip NetPoint resolution entirely on clean runs.
func (inj *Injector) HasNetFaults() bool {
	if inj == nil {
		return false
	}
	for _, f := range inj.faults {
		if netKind(f.Kind) {
			return true
		}
	}
	return false
}
