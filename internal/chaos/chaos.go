// Package chaos provides deterministic fault injection for the dataflow
// engine: named inject sites compiled into the operator, source and sink
// execution paths fire configured faults — panic, delay, channel stall —
// at an exact hit count or on an exact record, so tests and the benchrunner
// can kill arbitrary operator instances mid-run and prove that supervised
// recovery preserves exactly-once match semantics (the Jepsen-lineage
// methodology for streaming systems).
//
// The package is engine-agnostic: sites are identified by a node name and
// instance index, records by an opaque key string. A nil *Injector — and a
// nil *Point, which the engine caches per instance — is a no-op, keeping
// the un-faulted fast path at one pointer comparison per record.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects the failure mode a fault injects.
type Kind uint8

const (
	// Panic panics the hitting goroutine — the engine's recovery wrappers
	// convert it into a structured OperatorFailure.
	Panic Kind = iota
	// Delay sleeps the hitting goroutine for Fault.Delay, modelling a slow
	// or GC-stalled operator.
	Delay
	// Stall blocks the hitting goroutine until Injector.ReleaseStalls,
	// modelling a wedged operator that never returns — the case the
	// engine's shutdown deadline exists for.
	Stall
	// KillWorker kills the whole worker process hosting the hitting
	// instance: the injector's OnKill hook (wired by the distributed
	// worker runtime) abruptly severs the worker's network connections,
	// modelling a process crash the coordinator only observes as dead
	// TCP connections. Without a hook the fault degrades to Panic, so
	// single-process runs still fail loudly instead of silently passing.
	KillWorker
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case KillWorker:
		return "killworker"
	}
	if s := netKindString(k); s != "" {
		return s
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Fault arms one failure at one inject site.
type Fault struct {
	// Kind is the failure mode; Delay holds the sleep for Kind == Delay.
	Kind  Kind
	Delay time.Duration
	// Node names the dataflow node whose instances carry the site; it must
	// match exactly. Instance selects one parallel instance, or any when
	// negative.
	Node     string
	Instance int
	// AtHit fires the fault starting at the Nth matching hit (1-based);
	// zero behaves like 1. Hits count across restarts: a shared Injector
	// keeps counting while a supervisor rebuilds and replays the graph.
	AtHit int64
	// Times bounds how many hits fire the fault in total (default 1). A
	// panic fault with Times > 1 re-fires after each restart — the
	// crash-loop a poison record produces.
	Times int64
	// RecordKey, when set, matches hits by record identity instead of hit
	// count: the fault fires on every processing attempt of exactly that
	// record (see the engine's poison-record key format) until Times is
	// exhausted. This is what makes poison-record injection deterministic
	// across restarts, where hit counts shift with the replay offset.
	RecordKey string
	// From and To scope a network fault (net.go) to the directed link from
	// one worker to another; -1 matches any worker. Ignored — and zero —
	// for node faults, keeping old specs gob-compatible on the wire.
	From, To int
}

func (f Fault) String() string {
	s := f.Kind.String()
	if f.Kind == Delay || f.Kind == NetDelay {
		s += "=" + f.Delay.String()
	}
	if netKind(f.Kind) {
		from, to := "*", "*"
		if f.From >= 0 {
			from = strconv.Itoa(f.From)
		}
		if f.To >= 0 {
			to = strconv.Itoa(f.To)
		}
		s += ":" + from + ">" + to
		if f.AtHit > 1 {
			s += "@" + strconv.FormatInt(f.AtHit, 10)
		}
		if f.Times > 1 {
			s += "x" + strconv.FormatInt(f.Times, 10)
		}
		return s
	}
	inst := "*"
	if f.Instance >= 0 {
		inst = strconv.Itoa(f.Instance)
	}
	s += ":" + f.Node + "/" + inst
	if f.RecordKey != "" {
		s += "%" + f.RecordKey
	} else if f.AtHit > 1 {
		s += "@" + strconv.FormatInt(f.AtHit, 10)
	}
	if f.Times > 1 {
		s += "x" + strconv.FormatInt(f.Times, 10)
	}
	return s
}

// armed is one fault plus its live counters, shared by every matching point.
type armed struct {
	Fault
	hits  atomic.Int64
	fired atomic.Int64
}

// Injected is the panic value of a Panic fault; recovery wrappers surface
// it inside the structured failure so tests can tell injected crashes from
// real bugs.
type Injected struct {
	Fault string
	Site  string
}

func (p *Injected) Error() string {
	return fmt.Sprintf("chaos: injected panic (%s) at %s", p.Fault, p.Site)
}

// Injector holds a set of armed faults. One Injector is attached to an
// engine configuration; sharing it across restarts of the same job keeps
// the hit and fire counters monotonic, so a once-only fault does not
// re-fire after recovery.
type Injector struct {
	faults []*armed
	stall  chan struct{}

	mu     sync.Mutex
	fires  []string
	onKill func(site string)
}

// SetOnKill installs the KillWorker hook: the distributed worker runtime
// registers a function that severs the process's network connections and
// cancels its jobs, simulating an abrupt process death. Nil-safe; without
// a hook KillWorker faults degrade to Panic.
func (inj *Injector) SetOnKill(fn func(site string)) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.onKill = fn
	inj.mu.Unlock()
}

// killHook returns the registered KillWorker hook, or nil.
func (inj *Injector) killHook() func(site string) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.onKill
}

// NewInjector arms the given faults.
func NewInjector(faults ...Fault) *Injector {
	inj := &Injector{stall: make(chan struct{})}
	for _, f := range faults {
		if f.AtHit <= 0 {
			f.AtHit = 1
		}
		if f.Times <= 0 {
			f.Times = 1
		}
		inj.faults = append(inj.faults, &armed{Fault: f})
	}
	return inj
}

// Point is the per-instance handle of an inject site. The engine resolves
// one Point per operator/source instance at startup; a nil Point (no fault
// targets the instance) costs one pointer comparison per record.
type Point struct {
	inj  *Injector
	site string
	// NeedKey reports whether any fault at this point matches by record
	// key, so the engine only computes keys when a fault asks for them.
	NeedKey bool
	faults  []*armed
}

// Point resolves the inject site for one node instance, or nil when no
// armed fault targets it. Nil-safe on a nil Injector.
func (inj *Injector) Point(node string, instance int) *Point {
	if inj == nil {
		return nil
	}
	p := &Point{inj: inj, site: fmt.Sprintf("%s/%d", node, instance)}
	for _, f := range inj.faults {
		if f.Node != node || (f.Instance >= 0 && f.Instance != instance) {
			continue
		}
		p.faults = append(p.faults, f)
		if f.RecordKey != "" {
			p.NeedKey = true
		}
	}
	if len(p.faults) == 0 {
		return nil
	}
	return p
}

// Hit registers one record-processing attempt at the point. key is the
// record's identity (may be empty unless NeedKey). It panics, sleeps or
// stalls when an armed fault fires.
func (p *Point) Hit(key string) {
	if p == nil {
		return
	}
	for _, f := range p.faults {
		if f.RecordKey != "" {
			if key != f.RecordKey {
				continue
			}
		} else if f.hits.Add(1) < f.AtHit {
			continue
		}
		if f.fired.Add(1) > f.Times {
			continue // exhausted
		}
		p.inj.recordFire(f, p.site)
		switch f.Kind {
		case Panic:
			panic(&Injected{Fault: f.Fault.String(), Site: p.site})
		case Delay:
			time.Sleep(f.Delay)
		case Stall:
			<-p.inj.stall
		case KillWorker:
			if kill := p.inj.killHook(); kill != nil {
				kill(p.site)
				// The hook tears the process's connections down; the hitting
				// goroutine stalls here until the run's cancellation drains
				// it, like a thread inside a dying process.
				<-p.inj.stall
				return
			}
			panic(&Injected{Fault: f.Fault.String(), Site: p.site})
		}
	}
}

func (inj *Injector) recordFire(f *armed, site string) {
	inj.mu.Lock()
	inj.fires = append(inj.fires, fmt.Sprintf("%s at %s", f.Fault.String(), site))
	inj.mu.Unlock()
}

// Fires returns a description of every fault firing so far, in order.
func (inj *Injector) Fires() []string {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]string(nil), inj.fires...)
}

// ReleaseStalls unblocks every goroutine blocked in a Stall fault (and all
// future Stall hits). Tests use it to reclaim stalled goroutines after
// asserting the shutdown-deadline behaviour.
func (inj *Injector) ReleaseStalls() {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	select {
	case <-inj.stall:
	default:
		close(inj.stall)
	}
}

// ParseFault parses one fault spec of the form
//
//	kind:node/inst[@hit][xN][%recordkey]
//
// where kind is panic, stall, killworker or delay=<duration>; inst is an instance
// index or * for any; @hit fires starting at the Nth matching hit
// (default 1); xN lets the fault fire N times (default 1); and %key
// switches to record-key matching. Examples:
//
//	panic:⋈w#1/0@100      kill instance 0 of node ⋈w#1 on its 100th record
//	delay=5ms:src:A/0     sleep 5ms before the source's first event
//	stall:sink#0/*        wedge any sink instance on its first record
//	panic:σ:q#1/0x9%e:3:7 panic every attempt (up to 9) at record e:3:7
//	killworker:⋈w#1/1@50  kill the worker process hosting instance 1 of
//	                      node ⋈w#1 on that instance's 50th record
//
// Network faults (net.go) address a directed worker link instead of a node:
//
//	netkind:from>to[@frame][xN]
//
// where kind is netdrop, netreset, netcorrupt, netpartition or
// netdelay=<duration>; from/to are worker indices or * for any; @frame
// fires starting at the Nth frame on the link (default 1); xN fires on N
// consecutive frames (default 1). Examples:
//
//	netreset:0>1@20          RST worker 0's data link to worker 1 before
//	                         its 20th frame — heals by reconnect
//	netdrop:1>*@5            silently lose worker 1's 5th outbound frame
//	netcorrupt:*>0@9x2       flip bits in frames 9-10 toward the coordinator
//	netdelay=50ms:0>2@1x10   delay the first 10 frames on 0>2 by 50ms
//	netpartition:1>0@1x5000  blackhole worker 1's link to the coordinator
//	                         (data and control) for 5000 sends
func ParseFault(spec string) (Fault, error) {
	f := Fault{Instance: -1}
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return f, fmt.Errorf("chaos: fault %q: want kind:node/inst[@hit][xN][%%key]", spec)
	}
	switch {
	case kind == "panic":
		f.Kind = Panic
	case kind == "stall":
		f.Kind = Stall
	case kind == "killworker":
		f.Kind = KillWorker
	case strings.HasPrefix(kind, "delay="):
		d, err := time.ParseDuration(strings.TrimPrefix(kind, "delay="))
		if err != nil {
			return f, fmt.Errorf("chaos: fault %q: %w", spec, err)
		}
		f.Kind, f.Delay = Delay, d
	case kind == "netdrop":
		f.Kind = NetDrop
	case kind == "netreset":
		f.Kind = NetReset
	case kind == "netcorrupt":
		f.Kind = NetCorrupt
	case kind == "netpartition":
		f.Kind = NetPartition
	case strings.HasPrefix(kind, "netdelay="):
		d, err := time.ParseDuration(strings.TrimPrefix(kind, "netdelay="))
		if err != nil {
			return f, fmt.Errorf("chaos: fault %q: %w", spec, err)
		}
		f.Kind, f.Delay = NetDelay, d
	default:
		return f, fmt.Errorf("chaos: fault %q: unknown kind %q", spec, kind)
	}
	if netKind(f.Kind) {
		return parseNetLink(f, spec, rest)
	}
	if i := strings.Index(rest, "%"); i >= 0 {
		f.RecordKey = rest[i+1:]
		rest = rest[:i]
	}
	if i := strings.LastIndex(rest, "x"); i >= 0 {
		if n, err := strconv.ParseInt(rest[i+1:], 10, 64); err == nil {
			f.Times = n
			rest = rest[:i]
		}
	}
	if i := strings.LastIndex(rest, "@"); i >= 0 {
		n, err := strconv.ParseInt(rest[i+1:], 10, 64)
		if err != nil {
			return f, fmt.Errorf("chaos: fault %q: bad hit count %q", spec, rest[i+1:])
		}
		f.AtHit = n
		rest = rest[:i]
	}
	slash := strings.LastIndex(rest, "/")
	if slash < 0 {
		return f, fmt.Errorf("chaos: fault %q: want node/inst", spec)
	}
	f.Node = rest[:slash]
	inst := rest[slash+1:]
	if inst != "*" {
		n, err := strconv.Atoi(inst)
		if err != nil {
			return f, fmt.Errorf("chaos: fault %q: bad instance %q", spec, inst)
		}
		f.Instance = n
	}
	if f.Node == "" {
		return f, fmt.Errorf("chaos: fault %q: empty node name", spec)
	}
	return f, nil
}

// ParseFaults parses a comma-separated list of fault specs.
func ParseFaults(specs string) ([]Fault, error) {
	var out []Fault
	for _, s := range strings.Split(specs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		f, err := ParseFault(s)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
