package chaos

import (
	"testing"
	"time"
)

func TestPointResolution(t *testing.T) {
	inj := NewInjector(
		Fault{Kind: Panic, Node: "join", Instance: 1},
		Fault{Kind: Delay, Delay: time.Millisecond, Node: "src", Instance: -1},
	)
	if p := inj.Point("join", 0); p != nil {
		t.Fatal("instance 0 should not resolve a point for an instance-1 fault")
	}
	if p := inj.Point("join", 1); p == nil {
		t.Fatal("instance 1 should resolve a point")
	}
	if p := inj.Point("other", 1); p != nil {
		t.Fatal("unrelated node should not resolve a point")
	}
	for inst := 0; inst < 3; inst++ {
		if p := inj.Point("src", inst); p == nil {
			t.Fatalf("wildcard-instance fault should match src/%d", inst)
		}
	}
	var nilInj *Injector
	if p := nilInj.Point("join", 1); p != nil {
		t.Fatal("nil injector must resolve nil points")
	}
	var nilPt *Point
	nilPt.Hit("") // must not crash
}

func TestPanicFiresAtHit(t *testing.T) {
	inj := NewInjector(Fault{Kind: Panic, Node: "op", Instance: 0, AtHit: 3})
	p := inj.Point("op", 0)
	hit := func() (panicked bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*Injected); !ok {
					t.Fatalf("panic value %T, want *Injected", r)
				}
				panicked = true
			}
		}()
		p.Hit("")
		return false
	}
	if hit() || hit() {
		t.Fatal("fault fired before its hit count")
	}
	if !hit() {
		t.Fatal("fault did not fire at its hit count")
	}
	// Times defaults to 1: exhausted after one firing even though the hit
	// count stays past AtHit.
	if hit() {
		t.Fatal("exhausted fault re-fired")
	}
	if n := len(inj.Fires()); n != 1 {
		t.Fatalf("Fires() recorded %d firings, want 1", n)
	}
}

func TestTimesBudgetRefires(t *testing.T) {
	inj := NewInjector(Fault{Kind: Panic, Node: "op", Instance: 0, AtHit: 2, Times: 2})
	p := inj.Point("op", 0)
	panics := 0
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			p.Hit("")
		}()
	}
	if panics != 2 {
		t.Fatalf("fault fired %d times, want 2", panics)
	}
}

func TestRecordKeyMatching(t *testing.T) {
	inj := NewInjector(Fault{Kind: Panic, Node: "op", Instance: -1, RecordKey: "e:7:100", Times: 3})
	if p := inj.Point("op", 0); !p.NeedKey {
		t.Fatal("key-matched fault should set NeedKey")
	}
	p := inj.Point("op", 0)
	panics := 0
	try := func(key string) {
		defer func() {
			if recover() != nil {
				panics++
			}
		}()
		p.Hit(key)
	}
	try("e:1:1")
	try("e:7:100")
	try("e:2:2")
	try("e:7:100")
	try("e:7:100")
	try("e:7:100") // 4th match: Times=3 exhausted
	if panics != 3 {
		t.Fatalf("key fault fired %d times, want 3", panics)
	}
}

func TestDelayAndStall(t *testing.T) {
	inj := NewInjector(
		Fault{Kind: Delay, Delay: 10 * time.Millisecond, Node: "slow", Instance: 0},
		Fault{Kind: Stall, Node: "wedge", Instance: 0},
	)
	start := time.Now()
	inj.Point("slow", 0).Hit("")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay fault slept %v, want >= 10ms", d)
	}

	released := make(chan struct{})
	go func() {
		inj.Point("wedge", 0).Hit("")
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("stall fault did not block")
	case <-time.After(20 * time.Millisecond):
	}
	inj.ReleaseStalls()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("ReleaseStalls did not unblock the stalled goroutine")
	}
	inj.ReleaseStalls() // idempotent
}

func TestParseFault(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"panic:⋈w#1/0@100", Fault{Kind: Panic, Node: "⋈w#1", Instance: 0, AtHit: 100}},
		{"panic:σ:q#1/*", Fault{Kind: Panic, Node: "σ:q#1", Instance: -1}},
		{"delay=5ms:src:A/0", Fault{Kind: Delay, Delay: 5 * time.Millisecond, Node: "src:A", Instance: 0}},
		{"stall:sink#0/1", Fault{Kind: Stall, Node: "sink#0", Instance: 1}},
		{"panic:op/0@10x3", Fault{Kind: Panic, Node: "op", Instance: 0, AtHit: 10, Times: 3}},
		{"panic:op/0x9%e:3:7:50", Fault{Kind: Panic, Node: "op", Instance: 0, RecordKey: "e:3:7:50", Times: 9}},
		{"panic:nextOcc#2/0", Fault{Kind: Panic, Node: "nextOcc#2", Instance: 0}},
	}
	for _, c := range cases {
		got, err := ParseFault(c.spec)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseFault(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"", "panic", "boom:op/0", "panic:op", "panic:/0", "panic:op/zero", "delay=xx:op/0"} {
		if _, err := ParseFault(bad); err == nil {
			t.Fatalf("ParseFault(%q) should fail", bad)
		}
	}

	fs, err := ParseFaults("panic:a/0, stall:b/*")
	if err != nil || len(fs) != 2 {
		t.Fatalf("ParseFaults: %v, %d faults", err, len(fs))
	}
}
