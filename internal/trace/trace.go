// Package trace provides the end-to-end tracing plane of the engine: a
// sampled subset of source events is followed through every operator hop,
// network frame, and match derivation, yielding per-hop queue/processing/
// network spans that are exportable as Chrome trace-event JSON
// (chrome://tracing, Perfetto) and summarizable as an end-to-end latency
// breakdown.
//
// Sampling is deterministic: the trace identity of an event is a hash of
// its (type, id, event-time) tuple, and the event is sampled iff that hash
// falls below rate * 2^64. Two executions of the same workload therefore
// trace exactly the same records — equivalence tests and A/B runs stay
// reproducible — and any hop can recompute a record's trace ID from the
// payload alone, so the hot-path record only needs to carry one extra
// timestamp, not a full context struct.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cep2asp/internal/event"
)

// Span kinds. A span's Kind selects the Chrome trace category and the
// bucket it contributes to in the Summary breakdown.
const (
	KindSource  = "source"  // event admitted at a source (sampling decision)
	KindOp      = "op"      // one operator hop: queue wait + processing
	KindNet     = "net"     // one network hop between worker processes
	KindMatch   = "match"   // a match derived; Links name contributing traces
	KindBarrier = "barrier" // checkpoint machinery: propagation, alignment, completion
)

// Span is one timed segment of a trace. StartNs/DurNs are wall-clock
// UnixNano values; QueueNs is the portion of the hop spent waiting in the
// receiving instance's input queue (op spans only).
type Span struct {
	Trace    uint64   // trace identity (checkpoint ID for barrier spans)
	Kind     string   // one of the Kind* constants
	Name     string   // node name, "net:wA>wB", "checkpoint-N", ...
	Worker   int      // producing worker process (0 single-process)
	Instance int      // operator instance, where applicable
	StartNs  int64    // wall-clock start, UnixNano
	DurNs    int64    // duration
	QueueNs  int64    // input-queue wait preceding the hop (op spans)
	Links    []uint64 // contributing trace IDs (match spans)
}

// EndNs returns the span's wall-clock end.
func (s Span) EndNs() int64 { return s.StartNs + s.DurNs }

// ID computes the deterministic trace identity of an event: a splitmix64
// mix of its type, producer ID, and event time. The same event hashes to
// the same identity in every process of a cluster.
func ID(e event.Event) uint64 {
	h := mix(uint64(e.Type))
	h = mix(h ^ uint64(e.ID))
	h = mix(h ^ uint64(e.TS))
	if h == 0 { // 0 means "untraced" throughout; remap the pathological hash
		h = 1
	}
	return h
}

// MatchID derives a trace identity for a composite from its constituents,
// so a match span's own trace is as deterministic as its inputs'.
func MatchID(events []event.Event) uint64 {
	var h uint64 = 0x9E3779B97F4A7C15
	for _, e := range events {
		h = mix(h ^ ID(e))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// mix is the splitmix64 finalizer: a cheap, well-dispersed 64-bit mix.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DefaultMaxSpans bounds a tracer's buffered spans; the cap exists so a
// high sampling rate on a long run degrades to a truncated trace (with a
// Dropped count) instead of unbounded memory growth.
const DefaultMaxSpans = 1 << 20

// Tracer collects spans for one process. A nil *Tracer is the disabled
// state everywhere: every hot-path call site gates on one pointer
// comparison before touching it.
type Tracer struct {
	threshold uint64 // sample iff ID(e) < threshold
	worker    int
	maxSpans  int

	mu      sync.Mutex
	spans   []Span
	dropped int64
}

// New creates a tracer sampling the given fraction of source events
// (clamped to [0,1]) on behalf of the given worker index. A rate <= 0
// returns nil — the disabled tracer — so callers can pass the configured
// rate straight through.
func New(rate float64, worker int) *Tracer {
	if rate <= 0 || math.IsNaN(rate) {
		return nil
	}
	t := &Tracer{worker: worker, maxSpans: DefaultMaxSpans}
	f := rate * float64(math.MaxUint64)
	if rate >= 1 || f >= float64(math.MaxUint64) {
		t.threshold = math.MaxUint64
	} else {
		t.threshold = uint64(f)
	}
	return t
}

// Worker returns the worker index the tracer stamps on its spans.
func (t *Tracer) Worker() int { return t.worker }

// Sample decides whether an event is traced and returns its trace ID.
// Deterministic: the decision depends only on the event's identity and the
// configured rate.
func (t *Tracer) Sample(e event.Event) (uint64, bool) {
	id := ID(e)
	if t.threshold == math.MaxUint64 {
		return id, true
	}
	return id, id < t.threshold
}

// Sampled reports whether an event's deterministic trace ID falls inside
// the sampling threshold — the attribution check for match constituents.
func (t *Tracer) Sampled(e event.Event) bool {
	_, ok := t.Sample(e)
	return ok
}

// Add records one span.
func (t *Tracer) Add(s Span) {
	s.Worker = t.worker
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// AddBatch merges spans collected elsewhere (a remote worker's Drain) into
// this tracer, preserving their Worker stamps. Nil-safe.
func (t *Tracer) AddBatch(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, s := range spans {
		if len(t.spans) >= t.maxSpans {
			t.dropped += int64(len(spans))
			break
		}
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Drain removes and returns all buffered spans — the federation push path:
// workers periodically drain into a control-plane message, the coordinator
// AddBatches them into its own tracer.
func (t *Tracer) Drain() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.spans
	t.spans = nil
	t.mu.Unlock()
	return out
}

// Spans returns a copy of the buffered spans. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped returns the number of spans discarded at the buffer cap. Nil-safe.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Summary is the end-to-end latency breakdown of a trace: how much of the
// traced records' lifetime went to input queues, operator processing, and
// network hops, plus the distribution of per-trace end-to-end latency
// (first span start to last span end of each trace identity).
type Summary struct {
	Spans   int
	Traces  int
	Dropped int64
	// Aggregate time across all op/net spans.
	QueueNs int64
	ProcNs  int64
	NetNs   int64
	// Per-trace end-to-end wall time distribution.
	E2EP50 time.Duration
	E2EP99 time.Duration
	E2EMax time.Duration
}

// Summarize computes the latency breakdown over the buffered spans.
// Barrier spans are excluded from the per-trace end-to-end distribution
// (their Trace field is a checkpoint ID, not a record trace).
func (t *Tracer) Summarize() Summary {
	spans := t.Spans()
	sum := Summary{Spans: len(spans), Dropped: t.Dropped()}
	type bounds struct{ first, last int64 }
	traces := make(map[uint64]*bounds)
	for _, s := range spans {
		switch s.Kind {
		case KindOp:
			sum.QueueNs += s.QueueNs
			sum.ProcNs += s.DurNs
		case KindNet:
			sum.NetNs += s.DurNs
		}
		if s.Kind == KindBarrier || s.Trace == 0 {
			continue
		}
		b := traces[s.Trace]
		if b == nil {
			traces[s.Trace] = &bounds{first: s.StartNs, last: s.EndNs()}
			continue
		}
		if s.StartNs < b.first {
			b.first = s.StartNs
		}
		if e := s.EndNs(); e > b.last {
			b.last = e
		}
	}
	sum.Traces = len(traces)
	if len(traces) == 0 {
		return sum
	}
	e2e := make([]int64, 0, len(traces))
	for _, b := range traces {
		e2e = append(e2e, b.last-b.first)
	}
	sort.Slice(e2e, func(i, j int) bool { return e2e[i] < e2e[j] })
	quant := func(q float64) time.Duration {
		i := int(q * float64(len(e2e)-1))
		return time.Duration(e2e[i])
	}
	sum.E2EP50 = quant(0.50)
	sum.E2EP99 = quant(0.99)
	sum.E2EMax = time.Duration(e2e[len(e2e)-1])
	return sum
}

// chromeEvent is one Chrome trace-event ("X" complete events only). ts and
// dur are microseconds; pid groups by worker process, tid by node/instance.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the buffered spans in Chrome trace-event JSON (the
// array form), loadable in chrome://tracing or https://ui.perfetto.dev.
// Spans are sorted by start time; pid is the worker index and tid a stable
// small integer per node/instance lane.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartNs < spans[j].StartNs })
	lanes := make(map[string]int)
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		lane := fmt.Sprintf("w%d/%s/%d", s.Worker, s.Name, s.Instance)
		tid, ok := lanes[lane]
		if !ok {
			tid = len(lanes) + 1
			lanes[lane] = tid
		}
		args := map[string]any{"trace": fmt.Sprintf("%016x", s.Trace)}
		if s.QueueNs > 0 {
			args["queue_us"] = float64(s.QueueNs) / 1e3
		}
		if len(s.Links) > 0 {
			links := make([]string, len(s.Links))
			for i, l := range s.Links {
				links[i] = fmt.Sprintf("%016x", l)
			}
			args["links"] = links
		}
		dur := float64(s.DurNs) / 1e3
		if dur <= 0 {
			// chrome://tracing hides zero-width complete events; keep every
			// span visible at the 1us floor.
			dur = 1
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Kind,
			Ph:   "X",
			TS:   float64(s.StartNs) / 1e3,
			Dur:  dur,
			PID:  s.Worker,
			TID:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteFile writes the Chrome trace to path, creating parent directories.
func (t *Tracer) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
