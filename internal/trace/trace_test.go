package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"cep2asp/internal/event"
)

func TestSamplingDeterministicAndProportional(t *testing.T) {
	tr := New(0.25, 0)
	tr2 := New(0.25, 1)
	n, sampled := 20000, 0
	for i := 0; i < n; i++ {
		e := event.Event{Type: 1, ID: int64(i % 64), TS: int64(i)}
		id, ok := tr.Sample(e)
		id2, ok2 := tr2.Sample(e)
		if id != id2 || ok != ok2 {
			t.Fatalf("sampling not deterministic across tracers: %x/%v vs %x/%v", id, ok, id2, ok2)
		}
		if id == 0 {
			t.Fatal("trace ID 0 is reserved for untraced records")
		}
		if ok {
			sampled++
		}
	}
	frac := float64(sampled) / float64(n)
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("sampled fraction %.3f far from configured 0.25", frac)
	}
}

func TestRateEdges(t *testing.T) {
	if New(0, 0) != nil || New(-1, 0) != nil || New(math.NaN(), 0) != nil {
		t.Fatal("non-positive rates must return the nil (disabled) tracer")
	}
	all := New(1, 0)
	for i := 0; i < 1000; i++ {
		if !all.Sampled(event.Event{Type: 2, ID: int64(i), TS: int64(i)}) {
			t.Fatal("rate 1.0 must sample every event")
		}
	}
}

func TestSummaryBreakdown(t *testing.T) {
	tr := New(1, 0)
	// One trace: source -> op (queue 10us, proc 5us) -> net 20us.
	tr.Add(Span{Trace: 7, Kind: KindSource, Name: "src", StartNs: 1000})
	tr.Add(Span{Trace: 7, Kind: KindOp, Name: "σ", StartNs: 12_000, DurNs: 5_000, QueueNs: 10_000})
	tr.Add(Span{Trace: 7, Kind: KindNet, Name: "net:w0>w1", StartNs: 17_000, DurNs: 20_000})
	// Barrier spans must not join the e2e distribution.
	tr.Add(Span{Trace: 3, Kind: KindBarrier, Name: "checkpoint-3", StartNs: 0, DurNs: 1_000_000})

	s := tr.Summarize()
	if s.Spans != 4 || s.Traces != 1 {
		t.Fatalf("got %d spans / %d traces, want 4 / 1", s.Spans, s.Traces)
	}
	if s.QueueNs != 10_000 || s.ProcNs != 5_000 || s.NetNs != 20_000 {
		t.Fatalf("breakdown queue=%d proc=%d net=%d", s.QueueNs, s.ProcNs, s.NetNs)
	}
	if got := int64(s.E2EMax); got != 36_000 {
		t.Fatalf("e2e max %d, want 36000 (1000 .. 37000)", got)
	}
}

func TestDrainAndMerge(t *testing.T) {
	worker := New(1, 1)
	worker.Add(Span{Trace: 1, Kind: KindOp, Name: "a"})
	worker.Add(Span{Trace: 2, Kind: KindOp, Name: "b"})
	got := worker.Drain()
	if len(got) != 2 || len(worker.Spans()) != 0 {
		t.Fatalf("drain returned %d spans, left %d", len(got), len(worker.Spans()))
	}
	for _, s := range got {
		if s.Worker != 1 {
			t.Fatalf("span not stamped with worker index: %+v", s)
		}
	}
	coord := New(1, 0)
	coord.AddBatch(got)
	if len(coord.Spans()) != 2 {
		t.Fatalf("merged %d spans, want 2", len(coord.Spans()))
	}
	if coord.Spans()[0].Worker != 1 {
		t.Fatal("AddBatch must preserve the remote worker stamp")
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := New(1, 0)
	tr.Add(Span{Trace: 9, Kind: KindOp, Name: "⋈w", Instance: 2, StartNs: 5_000, DurNs: 2_000, QueueNs: 500})
	tr.Add(Span{Trace: 9, Kind: KindMatch, Name: "match", StartNs: 8_000, Links: []uint64{1, 2}})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Fatalf("malformed chrome event: %v", ev)
		}
	}
}

func TestSpanCapCountsDropped(t *testing.T) {
	tr := New(1, 0)
	tr.maxSpans = 4
	for i := 0; i < 10; i++ {
		tr.Add(Span{Trace: uint64(i + 1), Kind: KindOp})
	}
	if len(tr.Spans()) != 4 {
		t.Fatalf("kept %d spans, want cap 4", len(tr.Spans()))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
}

func TestMatchIDDeterministic(t *testing.T) {
	evs := []event.Event{{Type: 1, ID: 2, TS: 3}, {Type: 4, ID: 5, TS: 6}}
	if MatchID(evs) != MatchID(evs) {
		t.Fatal("MatchID must be deterministic")
	}
	if MatchID(evs) == MatchID(evs[:1]) {
		t.Fatal("MatchID should depend on the constituent set")
	}
}
