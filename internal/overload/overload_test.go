package overload

import (
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"fail", Fail, true},
		{"shed", Shed, true},
		{"pause", Pause, true},
		{"", Fail, false},
		{"drop", Fail, false},
	} {
		got, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePolicy(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, p := range []Policy{Fail, Shed, Pause} {
		rt, err := ParsePolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %v: got %v, %v", p, rt, err)
		}
	}
}

func TestBudgetDefaults(t *testing.T) {
	var b Budget
	if b.Enabled() {
		t.Error("zero budget should be disabled")
	}
	if got := b.EffectiveLowWater(); got != DefaultLowWater {
		t.Errorf("EffectiveLowWater = %v, want %v", got, DefaultLowWater)
	}
	b = Budget{PerOperator: 10, LowWater: 0.5}
	if !b.Enabled() {
		t.Error("budget with PerOperator should be enabled")
	}
	if got := b.EffectiveLowWater(); got != 0.5 {
		t.Errorf("EffectiveLowWater = %v, want 0.5", got)
	}
	if !(Budget{PerJob: 1}).Enabled() {
		t.Error("budget with PerJob should be enabled")
	}
}

func TestGateCounting(t *testing.T) {
	var g Gate
	if g.Paused() {
		t.Fatal("fresh gate paused")
	}
	g.Raise()
	g.Raise()
	if !g.Paused() {
		t.Fatal("raised gate not paused")
	}
	g.Lower()
	if !g.Paused() {
		t.Fatal("gate with one outstanding Raise should stay paused")
	}
	g.Lower()
	if g.Paused() {
		t.Fatal("balanced gate still paused")
	}
}

// TestControllerHysteresis drives the state machine deterministically
// through the high/low watermarks and checks the gate transitions
// exactly at the band edges.
func TestControllerHysteresis(t *testing.T) {
	var gate Gate
	c := NewController(MemConfig{
		SoftLimitBytes: 1000,
		HighWater:      0.8,
		LowWater:       0.5,
	}, &gate)

	c.step(100)
	if gate.Paused() {
		t.Fatal("paused below high water")
	}
	c.step(801) // cross high water
	if !gate.Paused() {
		t.Fatal("not paused above high water")
	}
	if c.Throttled() != 1 {
		t.Fatalf("Throttled = %d, want 1", c.Throttled())
	}
	c.step(600) // inside the band: stays paused (hysteresis)
	if !gate.Paused() {
		t.Fatal("un-paused inside hysteresis band")
	}
	c.step(499) // below low water
	if gate.Paused() {
		t.Fatal("still paused below low water")
	}
	c.step(900)
	c.step(400)
	if c.Throttled() != 2 {
		t.Fatalf("Throttled = %d, want 2", c.Throttled())
	}
	if c.PeakHeapBytes() != 900 {
		t.Fatalf("PeakHeapBytes = %d, want 900", c.PeakHeapBytes())
	}
}

func TestControllerNoLimitNeverThrottles(t *testing.T) {
	var gate Gate
	c := NewController(MemConfig{}, &gate)
	if c.Limit() != GoMemLimit() {
		t.Fatalf("Limit = %d, want GOMEMLIMIT fallback %d", c.Limit(), GoMemLimit())
	}
	cNo := &Controller{cfg: MemConfig{}.withDefaults(), gate: &gate, stop: make(chan struct{})}
	cNo.step(1 << 40)
	if gate.Paused() {
		t.Fatal("no-limit controller throttled")
	}
	if cNo.PeakHeapBytes() != 1<<40 {
		t.Fatal("peak not tracked without a limit")
	}
}

func TestControllerStartStopReleasesGate(t *testing.T) {
	var gate Gate
	c := NewController(MemConfig{
		SoftLimitBytes: 1, // any heap is over the limit
		SampleInterval: time.Millisecond,
	}, &gate)
	c.Start()
	deadline := time.After(2 * time.Second)
	for !gate.Paused() {
		select {
		case <-deadline:
			t.Fatal("controller never throttled with a 1-byte limit")
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	if gate.Paused() {
		t.Fatal("Stop left the gate raised")
	}
	if c.PeakHeapBytes() == 0 {
		t.Fatal("no heap samples recorded")
	}
}

func TestMemConfigDefaults(t *testing.T) {
	m := MemConfig{}.withDefaults()
	if m.HighWater != DefaultHighWater || m.LowWater != DefaultMemLowWater {
		t.Errorf("defaults = %v/%v, want %v/%v", m.HighWater, m.LowWater, DefaultHighWater, DefaultMemLowWater)
	}
	if m.SampleInterval != DefaultSampleInterval {
		t.Errorf("SampleInterval = %v, want %v", m.SampleInterval, DefaultSampleInterval)
	}
	// A low water above the high water collapses to half the band.
	m = MemConfig{HighWater: 0.4, LowWater: 0.9}.withDefaults()
	if m.LowWater >= m.HighWater {
		t.Errorf("LowWater %v not below HighWater %v", m.LowWater, m.HighWater)
	}
}
