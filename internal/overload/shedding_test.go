package overload

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestPolicyStringFallback(t *testing.T) {
	if got := Policy(99).String(); got != "policy(99)" {
		t.Errorf("Policy(99).String() = %q, want policy(99)", got)
	}
	if got := ShedStrategy(7).String(); got != "strategy(7)" {
		t.Errorf("ShedStrategy(7).String() = %q, want strategy(7)", got)
	}
}

func TestParseShedStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ShedStrategy
		ok   bool
	}{
		{"oldest", OldestFirst, true},
		{"pattern", PatternAware, true},
		{"", OldestFirst, false},
		{"newest", OldestFirst, false},
		{"Pattern", OldestFirst, false},
	} {
		got, err := ParseShedStrategy(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShedStrategy(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseShedStrategy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, s := range []ShedStrategy{OldestFirst, PatternAware} {
		rt, err := ParseShedStrategy(s.String())
		if err != nil || rt != s {
			t.Errorf("round-trip %v: got %v, %v", s, rt, err)
		}
	}
}

func TestBudgetValidateLowWaterBand(t *testing.T) {
	ok := []Budget{
		{},                                // zero means DefaultLowWater
		{PerOperator: 10, LowWater: 0.01}, // bottom of the band
		{PerOperator: 10, LowWater: 0.8},  //
		{PerJob: 5, LowWater: 1},          // top of the band: shed exactly to budget
	}
	for _, b := range ok {
		if err := b.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", b, err)
		}
	}
	bad := []Budget{
		{PerOperator: -1},
		{PerJob: -3},
		{PerOperator: 10, LowWater: -0.5},
		{PerOperator: 10, LowWater: 1.5},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", b)
		}
	}
}

// TestCompletionValueOrderings pins the orderings pattern-aware victim
// selection relies on: advancement dominates (the lexicographic bands
// never overlap), freshness breaks ties within a band, expired units
// rank at zero, and complete units at the ceiling.
func TestCompletionValueOrderings(t *testing.T) {
	const window, rate = 1000, 0.5

	if got := CompletionValue(0, 500, window, rate); got != 1 {
		t.Errorf("complete unit: score %g, want 1", got)
	}
	if got := CompletionValue(2, 0, window, rate); got != 0 {
		t.Errorf("expired unit: score %g, want 0", got)
	}
	if got := CompletionValue(2, -5, window, rate); got != 0 {
		t.Errorf("past-expired unit: score %g, want 0", got)
	}

	// Band separation: the most hopeless k-transition unit still outranks
	// the freshest k+1-transition unit, with and without a rate estimate.
	for _, r := range []float64{rate, 0} {
		for k := 1; k < 5; k++ {
			worse := CompletionValue(k+1, window, window, r)
			better := CompletionValue(k, 1, window, r)
			if better <= worse {
				t.Errorf("rate=%g: stale k=%d (%g) should outrank fresh k=%d (%g)",
					r, k, better, k+1, worse)
			}
		}
	}

	// Freshness within a band, again under both the Poisson rank and the
	// rate-free fallback.
	for _, r := range []float64{rate, 0} {
		old := CompletionValue(2, 10, window, r)
		young := CompletionValue(2, 900, window, r)
		if young <= old {
			t.Errorf("rate=%g: younger unit %g should outrank older %g", r, young, old)
		}
	}

	// The rank must not saturate on dense streams: two fresh units of the
	// same stage but different remaining time stay strictly ordered even
	// when both are near-certain to complete.
	dense := 50.0
	a := CompletionValue(1, 400, window, dense)
	b := CompletionValue(1, 900, window, dense)
	if b <= a {
		t.Errorf("dense stream: scores saturated (%g vs %g)", a, b)
	}

	// Decay: for a fixed unit the score only falls as time advances, the
	// invariant the lazy-rescore shedding loop depends on.
	prev := CompletionValue(2, 1000, window, rate)
	for left := int64(900); left >= 0; left -= 100 {
		cur := CompletionValue(2, left, window, rate)
		if cur > prev {
			t.Errorf("score rose from %g to %g as timeLeft fell to %d", prev, cur, left)
		}
		prev = cur
	}
}

func TestCompletionScoreTail(t *testing.T) {
	// Probability semantics: bounded by 1, monotone in time left and in
	// transitions required.
	if got := CompletionScore(0, 100, 1000, 1); got != 1 {
		t.Errorf("complete unit: %g, want 1", got)
	}
	if got := CompletionScore(3, 0, 1000, 1); got != 0 {
		t.Errorf("expired unit: %g, want 0", got)
	}
	p1 := CompletionScore(1, 100, 1000, 0.01)
	p3 := CompletionScore(3, 100, 1000, 0.01)
	if p1 <= p3 {
		t.Errorf("needing 1 transition (%g) should be likelier than 3 (%g)", p1, p3)
	}
	if p1 <= 0 || p1 > 1 {
		t.Errorf("tail %g outside (0, 1]", p1)
	}
	// On a dense stream the tail saturates — the documented reason
	// CompletionValue exists.
	if got := CompletionScore(3, 1000, 1000, 1); got < 0.999 {
		t.Errorf("dense-stream tail %g, expected saturation near 1", got)
	}
}

func TestRateEWMA(t *testing.T) {
	dense := NewRate(0)
	for ts := int64(0); ts < 100; ts += 2 {
		dense.Observe(ts)
	}
	sparse := NewRate(0)
	for ts := int64(0); ts < 1000; ts += 20 {
		sparse.Observe(ts)
	}
	if dense.PerTimeUnit() <= sparse.PerTimeUnit() {
		t.Errorf("dense rate %g not above sparse %g", dense.PerTimeUnit(), sparse.PerTimeUnit())
	}
	// Out-of-order timestamps bias upward, never panic or go negative.
	r := NewRate(0)
	r.Observe(100)
	r.Observe(50)
	r.Observe(50)
	if r.PerTimeUnit() <= 0 {
		t.Errorf("out-of-order arrivals produced rate %g", r.PerTimeUnit())
	}
	if NewRate(0).PerTimeUnit() != 0 {
		t.Error("unprimed rate should read 0")
	}
}

func TestExpectedArrivalsFloor(t *testing.T) {
	if got := ExpectedArrivals(0, 1000); got != 1 {
		t.Errorf("no-rate bound %g, want floor 1", got)
	}
	if got := ExpectedArrivals(5, 0); got != 1 {
		t.Errorf("expired bound %g, want floor 1", got)
	}
	if got := ExpectedArrivals(2, 100); got != LossSafety*2*100 {
		t.Errorf("bound %g, want %d", got, LossSafety*2*100)
	}
}

func TestRecallEstimate(t *testing.T) {
	if got := RecallEstimate(10, 0); got != 1 {
		t.Errorf("no loss: estimate %g, want 1", got)
	}
	if got := RecallEstimate(0, 5); got != 0 {
		t.Errorf("no matches with loss: estimate %g, want 0", got)
	}
	if got := RecallEstimate(75, 25); got != 0.75 {
		t.Errorf("estimate %g, want 0.75", got)
	}
}

func TestValueHeapOrderAndRemoval(t *testing.T) {
	h := &ValueHeap{}
	rng := rand.New(rand.NewSource(7))
	var items []*HeapItem
	for i := 0; i < 200; i++ {
		items = append(items, h.Push(rng.Float64(), i))
	}
	// Remove a third by handle, including the current minimum.
	h.Remove(h.PeekMin())
	for i := 0; i < len(items); i += 3 {
		h.Remove(items[i])
	}
	h.Remove(items[3])      // double-remove is a no-op
	h.Remove(nil)           // nil-remove is a no-op
	h.Update(items[3], 0.5) // update of a removed item is a no-op
	if h.PeekMin() != nil {
		h.Update(h.PeekMin(), h.PeekMin().Score/2)
	}
	var drained []float64
	for it := h.PopMin(); it != nil; it = h.PopMin() {
		drained = append(drained, it.Score)
	}
	if !sort.Float64sAreSorted(drained) {
		t.Fatalf("PopMin sequence not ascending: %v", drained)
	}
	if h.Len() != 0 || h.PopMin() != nil {
		t.Fatal("drained heap not empty")
	}
}

// fakeProbe and fakeActuator drive the quality controller's ladder
// deterministically.
type fakeProbe struct {
	matches int64
	lost    float64
	p99     time.Duration
	bytes   int64
}

func (p *fakeProbe) Matches() int64            { return p.matches }
func (p *fakeProbe) LostMatchBound() float64   { return p.lost }
func (p *fakeProbe) P99Latency() time.Duration { return p.p99 }
func (p *fakeProbe) StateBytes() int64         { return p.bytes }

type fakeActuator struct {
	patternAware bool
	pauses       int
}

func (a *fakeActuator) SetPatternAware(on bool) { a.patternAware = on }
func (a *fakeActuator) PauseIntake()            { a.pauses++ }
func (a *fakeActuator) ResumeIntake()           { a.pauses-- }

func TestQualityControllerRecallLadder(t *testing.T) {
	probe := &fakeProbe{matches: 100}
	act := &fakeActuator{}
	c, err := NewQualityController(QualityDemand{MinRecall: 0.9}, Spec{Policy: Shed}, probe, act)
	if err != nil {
		t.Fatal(err)
	}

	c.Step() // recall estimate 1: no action
	if act.patternAware || act.pauses != 0 {
		t.Fatalf("healthy run acted: aware=%v pauses=%d", act.patternAware, act.pauses)
	}

	probe.lost = 12 // estimate 100/112 ≈ 0.893 < 0.9: escalate to pattern-aware
	c.Step()
	if !act.patternAware {
		t.Fatal("recall dip did not switch shedding to pattern-aware")
	}
	if act.pauses != 0 {
		t.Fatal("first escalation should not pause intake")
	}

	probe.lost = 30 // estimate ≈ 0.769 < MinRecall while already aware: pause
	c.Step()
	if act.pauses != 1 {
		t.Fatalf("deep recall breach should pause intake once, got %d", act.pauses)
	}
	c.Step() // still breached: the held pause is not stacked
	if act.pauses != 1 {
		t.Fatalf("pause stacked to %d", act.pauses)
	}

	probe.matches, probe.lost = 1000, 30 // estimate ≈ 0.971 clears the band
	c.Step()
	if act.pauses != 0 {
		t.Fatalf("recovery did not release the pause, held %d", act.pauses)
	}

	got := c.Actions()
	if len(got) != 3 {
		t.Fatalf("actions = %v, want escalate/pause/resume", got)
	}
	c.Stop()
	if act.pauses != 0 {
		t.Fatalf("Stop left %d pauses held", act.pauses)
	}
}

func TestQualityControllerStateAndLatency(t *testing.T) {
	probe := &fakeProbe{matches: 10, bytes: 100}
	act := &fakeActuator{}
	c, err := NewQualityController(
		QualityDemand{MaxStateBytes: 1 << 20, MaxP99Latency: 50 * time.Millisecond},
		Spec{Policy: Shed}, probe, act)
	if err != nil {
		t.Fatal(err)
	}

	probe.bytes = 2 << 20 // heap breach: tighten admission
	c.Step()
	if act.pauses != 1 {
		t.Fatalf("state breach pauses = %d, want 1", act.pauses)
	}
	probe.bytes = 1 << 19 // drained below 0.8x: relax
	c.Step()
	if act.pauses != 0 {
		t.Fatalf("state drain pauses = %d, want 0", act.pauses)
	}

	probe.p99 = 80 * time.Millisecond // latency breach: force pattern-aware
	c.Step()
	if !act.patternAware {
		t.Fatal("latency breach did not switch shedding to pattern-aware")
	}
	probe.p99 = 10 * time.Millisecond // breach clears
	c.Step()
	probe.p99 = 90 * time.Millisecond // re-breach with degradation already maximal
	before := len(c.Actions())
	c.Step()
	c.Step() // sustained: recorded once, not per tick
	if extra := len(c.Actions()) - before; extra != 1 {
		t.Fatalf("re-breach with maximal degradation recorded %d extra actions, want 1", extra)
	}
	c.Stop()
}

func TestQualityDemandValidate(t *testing.T) {
	budget := Spec{Policy: Fail, Budget: Budget{PerOperator: 64}}
	var inf *QualityInfeasibleError
	if err := (QualityDemand{MinRecall: 0.9}).Validate(budget); !errors.As(err, &inf) {
		t.Errorf("MinRecall under Fail+budget: err=%v, want QualityInfeasibleError", err)
	}
	shed := Spec{Policy: Shed, Budget: Budget{PerOperator: 64}}
	if err := (QualityDemand{MinRecall: 1, MaxP99Latency: time.Second}).Validate(shed); !errors.As(err, &inf) {
		t.Errorf("perfect recall + latency ceiling under budget: err=%v, want QualityInfeasibleError", err)
	} else if inf.Error() == "" {
		t.Error("empty infeasibility message")
	}
	if err := (QualityDemand{MinRecall: 1.5}).Validate(shed); err == nil {
		t.Error("MinRecall above 1 accepted")
	}
	if err := (QualityDemand{MinRecall: -0.1}).Validate(shed); err == nil {
		t.Error("negative MinRecall accepted")
	}
	if err := (QualityDemand{MaxStateBytes: -1}).Validate(shed); err == nil {
		t.Error("negative MaxStateBytes accepted")
	}
	if err := (QualityDemand{MaxP99Latency: -time.Second}).Validate(shed); err == nil {
		t.Error("negative MaxP99Latency accepted")
	}
	if err := (QualityDemand{MinRecall: 0.9}).Validate(shed); err != nil {
		t.Errorf("feasible demand rejected: %v", err)
	}
	if (QualityDemand{}).Enabled() {
		t.Error("zero demand reports enabled")
	}
	if !(QualityDemand{MinRecall: 0.5}).Enabled() {
		t.Error("recall demand reports disabled")
	}
}
