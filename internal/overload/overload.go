// Package overload defines state budgets and overload policies for
// bounded-state execution: how much retained state a job may hold, what
// to do when it would exceed that bound (fail, shed oldest state, or
// pause intake), and a memory admission controller that throttles
// sources between heap watermarks so a surviving-but-degraded run is the
// default instead of a crash.
//
// The package is dependency-free (no engine imports) so the engine's
// Config can embed a Spec without an import cycle.
package overload

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects what the engine does when a state budget is reached.
type Policy int

const (
	// Fail aborts the job with a structured budget error as soon as a
	// budget is exceeded — today's implicit behavior made explicit. This
	// is the zero value: budgets without a policy fail, never silently
	// degrade.
	Fail Policy = iota
	// Shed evicts oldest state first (oldest panes, groups, partial
	// matches) until the operator is back under its low-water mark.
	// Every evicted record is counted in per-operator shed counters;
	// degradation is quantified, never silent.
	Shed
	// Pause propagates backpressure: intake is suspended (sources
	// trickle) while retained state sits above the budget, and resumes
	// once watermark progress drains it below the low-water mark.
	Pause
)

// String returns the flag-grammar name of the policy.
func (p Policy) String() string {
	switch p {
	case Fail:
		return "fail"
	case Shed:
		return "shed"
	case Pause:
		return "pause"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the flag grammar: fail, shed or pause.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fail":
		return Fail, nil
	case "shed":
		return Shed, nil
	case "pause":
		return Pause, nil
	default:
		return Fail, fmt.Errorf("overload: unknown policy %q (want fail, shed or pause)", s)
	}
}

// DefaultLowWater is the fraction of a budget that shedding or pausing
// drains to before normal intake resumes. The gap between 1.0 and the
// low-water mark is the hysteresis band that prevents shed/pause
// flapping at the boundary.
const DefaultLowWater = 0.8

// Budget bounds retained state, counted in accounting units (records
// for joins and buffers, groups for aggregations — the same units the
// engine's StateSize reports). A zero field means unbounded.
type Budget struct {
	// PerOperator caps each operator instance's retained state.
	PerOperator int64
	// PerJob caps the job-wide total across all instances.
	PerJob int64
	// LowWater is the drain target as a fraction of the exceeded
	// budget, in (0, 1); zero means DefaultLowWater.
	LowWater float64
}

// Enabled reports whether any bound is set.
func (b Budget) Enabled() bool { return b.PerOperator > 0 || b.PerJob > 0 }

// EffectiveLowWater returns the configured low-water fraction, or the
// default when unset.
func (b Budget) EffectiveLowWater() float64 {
	if b.LowWater > 0 && b.LowWater <= 1 {
		return b.LowWater
	}
	return DefaultLowWater
}

// Validate rejects malformed budgets: negative bounds, or a low-water
// hysteresis fraction outside (0, 1] (zero means DefaultLowWater). Before
// this check, an out-of-band LowWater was silently replaced by the
// default.
func (b Budget) Validate() error {
	if b.PerOperator < 0 {
		return fmt.Errorf("overload: PerOperator budget %d negative", b.PerOperator)
	}
	if b.PerJob < 0 {
		return fmt.Errorf("overload: PerJob budget %d negative", b.PerJob)
	}
	if b.LowWater != 0 && (b.LowWater <= 0 || b.LowWater > 1) {
		return fmt.Errorf("overload: LowWater %g outside (0, 1]", b.LowWater)
	}
	return nil
}

// Spec is the full overload configuration an engine run carries: the
// state budget, the policy applied when it is reached, the shed-victim
// selection strategy, and the memory admission controller's tuning.
type Spec struct {
	Budget Budget
	Policy Policy
	// Shedding selects how the Shed policy picks victims: OldestFirst
	// (the zero value) or PatternAware. The engine may also switch the
	// strategy at runtime under a quality controller.
	Shedding ShedStrategy
	Memory   MemConfig
}

// Gate is the admission switch shared by the memory controller and the
// Pause policy: any party may raise it (pause intake) and lower it
// (resume); sources trickle while raised. Raisers are counted so two
// independent pressure signals (heap and state) do not un-pause each
// other.
type Gate struct {
	raised atomic.Int64
}

// Raise pauses intake. Each Raise must be balanced by one Lower.
func (g *Gate) Raise() { g.raised.Add(1) }

// Lower releases one Raise.
func (g *Gate) Lower() { g.raised.Add(-1) }

// Paused reports whether intake is currently suspended.
func (g *Gate) Paused() bool { return g.raised.Load() > 0 }

// Memory controller defaults: sample cadence and hysteresis band.
const (
	DefaultHighWater      = 0.85
	DefaultMemLowWater    = 0.70
	DefaultSampleInterval = 20 * time.Millisecond
)

// MemConfig tunes the heap admission controller.
type MemConfig struct {
	// SoftLimitBytes is the heap soft limit the watermarks apply to.
	// Zero means derive it from GOMEMLIMIT when one is set; when
	// neither is set the controller stays off.
	SoftLimitBytes int64
	// HighWater and LowWater are fractions of the soft limit: intake
	// pauses when live heap crosses above HighWater x limit and
	// resumes when it drains below LowWater x limit. Zero values mean
	// DefaultHighWater / DefaultMemLowWater.
	HighWater, LowWater float64
	// SampleInterval is the ReadMemStats cadence; zero means
	// DefaultSampleInterval.
	SampleInterval time.Duration
}

func (m MemConfig) withDefaults() MemConfig {
	if m.HighWater <= 0 || m.HighWater > 1 {
		m.HighWater = DefaultHighWater
	}
	if m.LowWater <= 0 || m.LowWater >= m.HighWater {
		m.LowWater = DefaultMemLowWater
		if m.LowWater >= m.HighWater {
			m.LowWater = m.HighWater / 2
		}
	}
	if m.SampleInterval <= 0 {
		m.SampleInterval = DefaultSampleInterval
	}
	return m
}

// GoMemLimit returns the process GOMEMLIMIT in bytes, or 0 when unset
// (the runtime reports math.MaxInt64 for "no limit").
func GoMemLimit() int64 {
	lim := debug.SetMemoryLimit(-1) // -1 queries without changing it
	if lim == math.MaxInt64 {
		return 0
	}
	return lim
}

// Controller is the hysteresis admission controller: a sampler goroutine
// reads live heap at a fixed cadence and raises/lowers a Gate as heap
// crosses the high/low watermarks of the soft limit. It also tracks the
// peak heap observed, which the harness and benchrunner report.
type Controller struct {
	cfg   MemConfig
	limit int64
	gate  *Gate

	peak      atomic.Int64
	cur       atomic.Int64
	throttled atomic.Int64
	paused    bool // sampler-goroutine-only hysteresis state

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewController builds a controller over gate. The soft limit resolves
// from cfg.SoftLimitBytes, falling back to GOMEMLIMIT; when both are
// unset the controller still samples peak heap but never throttles.
func NewController(cfg MemConfig, gate *Gate) *Controller {
	cfg = cfg.withDefaults()
	limit := cfg.SoftLimitBytes
	if limit <= 0 {
		limit = GoMemLimit()
	}
	return &Controller{cfg: cfg, limit: limit, gate: gate, stop: make(chan struct{})}
}

// Limit returns the resolved soft limit in bytes (0 = none; peak
// tracking only).
func (c *Controller) Limit() int64 { return c.limit }

// PeakHeapBytes returns the largest live heap observed by the sampler.
func (c *Controller) PeakHeapBytes() int64 { return c.peak.Load() }

// LiveHeapBytes returns the most recent heap sample (0 before the first
// sample lands). The quality controller polls it against MaxStateBytes.
func (c *Controller) LiveHeapBytes() int64 { return c.cur.Load() }

// Throttled counts high-water crossings: how many times the controller
// paused intake.
func (c *Controller) Throttled() int64 { return c.throttled.Load() }

// step advances the hysteresis state machine with one heap sample.
// Factored out of the sampler loop so tests can drive it
// deterministically.
func (c *Controller) step(heap int64) {
	c.cur.Store(heap)
	for {
		cur := c.peak.Load()
		if heap <= cur || c.peak.CompareAndSwap(cur, heap) {
			break
		}
	}
	if c.limit <= 0 {
		return
	}
	high := int64(float64(c.limit) * c.cfg.HighWater)
	low := int64(float64(c.limit) * c.cfg.LowWater)
	if !c.paused && heap > high {
		c.paused = true
		c.throttled.Add(1)
		c.gate.Raise()
	} else if c.paused && heap < low {
		c.paused = false
		c.gate.Lower()
	}
}

// Start launches the sampler goroutine. Stop must be called to release
// it (and any raised gate).
func (c *Controller) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		var ms runtime.MemStats
		tick := time.NewTicker(c.cfg.SampleInterval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				if c.paused {
					c.paused = false
					c.gate.Lower()
				}
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				c.step(int64(ms.HeapAlloc))
			}
		}
	}()
}

// Stop terminates the sampler, lowering the gate if it was raised.
func (c *Controller) Stop() {
	close(c.stop)
	c.wg.Wait()
}
