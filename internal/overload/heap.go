package overload

// ValueHeap is the per-operator priority structure of pattern-aware
// shedding: a min-heap of retained state units keyed by completion score,
// with handle-based O(log n) update and removal so operators can keep
// items current as partial matches advance stages or expire. The heap
// stores upper-bound scores — completion probability only decreases as
// event time advances — so popping the minimum stored score yields a
// sound (approximate) lowest-value victim without rescoring every item.
// Not goroutine-safe: each operator instance owns its heap.
type ValueHeap struct {
	items []*HeapItem
}

// HeapItem is one scored unit of state. Payload identifies the unit to
// its operator; Score is the completion score it was last assigned.
type HeapItem struct {
	Score   float64
	Payload any
	index   int
}

// Len returns the number of live items.
func (h *ValueHeap) Len() int { return len(h.items) }

// Push inserts a unit with the given score and returns its handle.
func (h *ValueHeap) Push(score float64, payload any) *HeapItem {
	it := &HeapItem{Score: score, Payload: payload, index: len(h.items)}
	h.items = append(h.items, it)
	h.up(it.index)
	return it
}

// Update re-scores an item, restoring heap order in O(log n). A nil or
// already-removed item is ignored.
func (h *ValueHeap) Update(it *HeapItem, score float64) {
	if it == nil || it.index < 0 {
		return
	}
	it.Score = score
	h.fix(it.index)
}

// Remove detaches an item in O(log n). A nil or already-removed item is
// ignored, so operators can unconditionally Remove on every state
// death path.
func (h *ValueHeap) Remove(it *HeapItem) {
	if it == nil || it.index < 0 {
		return
	}
	i := it.index
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	it.index = -1
	if i < last {
		h.fix(i)
	}
}

// PeekMin returns the lowest-scored item without removing it, or nil
// when empty.
func (h *ValueHeap) PeekMin() *HeapItem {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// PopMin removes and returns the lowest-scored item, or nil when empty.
func (h *ValueHeap) PopMin() *HeapItem {
	if len(h.items) == 0 {
		return nil
	}
	it := h.items[0]
	h.Remove(it)
	return it
}

func (h *ValueHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *ValueHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *ValueHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Score <= h.items[i].Score {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *ValueHeap) down(i int) bool {
	moved := false
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return moved
		}
		min := left
		if right := left + 1; right < n && h.items[right].Score < h.items[left].Score {
			min = right
		}
		if h.items[i].Score <= h.items[min].Score {
			return moved
		}
		h.swap(i, min)
		i = min
		moved = true
	}
}
