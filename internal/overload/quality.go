package overload

import (
	"fmt"
	"sync"
	"time"
)

// QualityDemand declares per-job quality bounds the runtime must hold by
// picking among the degradation mechanisms it already has: pattern-aware
// shedding, intake pausing, and admission tightening. Zero fields are
// unconstrained.
type QualityDemand struct {
	// MaxP99Latency bounds the p99 detection latency.
	MaxP99Latency time.Duration
	// MinRecall is the minimum acceptable recall estimate in (0, 1]: the
	// guaranteed lower bound on achieved recall computed from emitted
	// matches and the accumulated lost-match bound.
	MinRecall float64
	// MaxStateBytes bounds the live heap; crossing it tightens admission
	// (intake pauses until it drains).
	MaxStateBytes int64
}

// Enabled reports whether any demand is declared.
func (d QualityDemand) Enabled() bool {
	return d.MaxP99Latency > 0 || d.MinRecall > 0 || d.MaxStateBytes > 0
}

// Validate fails fast on malformed or conflicting demands, before the job
// runs. Conflicts return a *QualityInfeasibleError.
func (d QualityDemand) Validate(spec Spec) error {
	if d.MinRecall < 0 || d.MinRecall > 1 {
		return fmt.Errorf("overload: MinRecall %g outside [0, 1]", d.MinRecall)
	}
	if d.MaxStateBytes < 0 {
		return fmt.Errorf("overload: MaxStateBytes %d negative", d.MaxStateBytes)
	}
	if d.MaxP99Latency < 0 {
		return fmt.Errorf("overload: MaxP99Latency %v negative", d.MaxP99Latency)
	}
	if d.MinRecall > 0 && spec.Policy == Fail && spec.Budget.Enabled() {
		return &QualityInfeasibleError{Demand: d, Reason: "the Fail overload policy aborts at the state budget, leaving no degradation mechanism to trade for recall; use the Shed or Pause policy"}
	}
	if d.MinRecall == 1 && d.MaxP99Latency > 0 && spec.Budget.Enabled() {
		return &QualityInfeasibleError{Demand: d, Reason: "perfect recall under a state budget requires pausing intake when the budget is reached, which breaks any latency ceiling under sustained overload; relax MinRecall below 1 or drop MaxP99Latency"}
	}
	return nil
}

// QualityInfeasibleError reports quality demands that conflict with each
// other or with the job's overload configuration: no controller decision
// could satisfy them, so the job fails fast instead of degrading
// unpredictably.
type QualityInfeasibleError struct {
	Demand QualityDemand
	Reason string
}

func (e *QualityInfeasibleError) Error() string {
	return fmt.Sprintf("overload: quality demands infeasible (MinRecall=%g, MaxP99Latency=%v, MaxStateBytes=%d): %s",
		e.Demand.MinRecall, e.Demand.MaxP99Latency, e.Demand.MaxStateBytes, e.Reason)
}

// RecallEstimate computes the guaranteed lower bound on achieved recall
// from the matches actually emitted and the accumulated upper bound on
// matches evicted state could still have produced. With nothing lost the
// estimate is 1; every unit of bounded loss pulls it down.
func RecallEstimate(matches int64, lostBound float64) float64 {
	if lostBound <= 0 {
		return 1
	}
	m := float64(matches)
	if m <= 0 {
		return 0
	}
	return m / (m + lostBound)
}

// QualityProbe reads the live signals the controller decides on. The
// engine adapts its environment and metrics behind this interface so the
// controller stays dependency-free.
type QualityProbe interface {
	// Matches counts matches emitted so far.
	Matches() int64
	// LostMatchBound is the accumulated upper bound on matches lost to
	// eviction.
	LostMatchBound() float64
	// P99Latency is the current p99 detection latency (0 = unknown).
	P99Latency() time.Duration
	// StateBytes is the current live heap (0 = unknown).
	StateBytes() int64
}

// QualityActuator applies the controller's decisions to the running job.
type QualityActuator interface {
	// SetPatternAware switches the shed-victim selection strategy at
	// runtime.
	SetPatternAware(on bool)
	// PauseIntake raises the admission gate (counted; each PauseIntake
	// must be balanced by one ResumeIntake).
	PauseIntake()
	// ResumeIntake lowers one PauseIntake.
	ResumeIntake()
}

// recallMargin is the hysteresis band around MinRecall: the controller
// escalates to pattern-aware shedding as soon as the estimate dips into
// the band and de-escalates a pause only once the estimate clears it.
const recallMargin = 0.02

// DefaultQualityInterval is the controller's poll cadence.
const DefaultQualityInterval = 10 * time.Millisecond

// QualityController holds a job to its declared quality demands by
// polling the probe and escalating through the degradation ladder:
// recall pressure first switches shedding to pattern-aware victim
// selection, then pauses intake; a state-bytes breach tightens admission;
// a latency breach forces pattern-aware shedding (smaller state, less
// work per watermark). Every decision is recorded, so a degraded run
// explains itself.
type QualityController struct {
	demand QualityDemand
	probe  QualityProbe
	act    QualityActuator

	mu           sync.Mutex
	actions      []string
	patternAware bool
	recallPaused bool
	statePaused  bool
	latencyHot   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewQualityController validates the demands against the job's overload
// spec and builds the controller. patternAware seeds the strategy state
// with what the job is already configured to use.
func NewQualityController(d QualityDemand, spec Spec, probe QualityProbe, act QualityActuator) (*QualityController, error) {
	if err := d.Validate(spec); err != nil {
		return nil, err
	}
	return &QualityController{
		demand:       d,
		probe:        probe,
		act:          act,
		patternAware: spec.Shedding == PatternAware,
		stop:         make(chan struct{}),
	}, nil
}

// Start launches the poll loop at the given cadence (<= 0 selects
// DefaultQualityInterval), taking one immediate step so demands bind
// before the first tick. Stop must be called to release it.
func (c *QualityController) Start(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultQualityInterval
	}
	c.Step()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.Step()
			}
		}
	}()
}

// Stop terminates the poll loop and releases any pause the controller
// still holds.
func (c *QualityController) Stop() {
	close(c.stop)
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.recallPaused {
		c.recallPaused = false
		c.act.ResumeIntake()
	}
	if c.statePaused {
		c.statePaused = false
		c.act.ResumeIntake()
	}
}

// Step runs one control decision. Exported so tests can drive the ladder
// deterministically without the poll goroutine.
func (c *QualityController) Step() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.demand.MinRecall > 0 {
		est := RecallEstimate(c.probe.Matches(), c.probe.LostMatchBound())
		band := c.demand.MinRecall + recallMargin
		if band > 1 {
			band = 1
		}
		switch {
		case est < band && !c.patternAware:
			c.patternAware = true
			c.act.SetPatternAware(true)
			c.record("shed-pattern-aware: recall estimate %.4f below %.4f", est, band)
		case est < c.demand.MinRecall && c.patternAware && !c.recallPaused:
			c.recallPaused = true
			c.act.PauseIntake()
			c.record("pause-intake: recall estimate %.4f below MinRecall %.4f", est, c.demand.MinRecall)
		case c.recallPaused && est >= band:
			c.recallPaused = false
			c.act.ResumeIntake()
			c.record("resume-intake: recall estimate %.4f recovered above %.4f", est, band)
		}
	}
	if c.demand.MaxStateBytes > 0 {
		bytes := c.probe.StateBytes()
		switch {
		case bytes > c.demand.MaxStateBytes && !c.statePaused:
			c.statePaused = true
			c.act.PauseIntake()
			c.record("tighten-admission: live heap %d above MaxStateBytes %d", bytes, c.demand.MaxStateBytes)
		case c.statePaused && float64(bytes) < 0.8*float64(c.demand.MaxStateBytes):
			c.statePaused = false
			c.act.ResumeIntake()
			c.record("relax-admission: live heap %d drained below MaxStateBytes %d", bytes, c.demand.MaxStateBytes)
		}
	}
	if c.demand.MaxP99Latency > 0 {
		p99 := c.probe.P99Latency()
		if p99 > c.demand.MaxP99Latency {
			if !c.patternAware {
				c.patternAware = true
				c.act.SetPatternAware(true)
				c.record("shed-pattern-aware: p99 latency %v above %v", p99, c.demand.MaxP99Latency)
			} else if !c.latencyHot {
				c.record("latency-breach: p99 latency %v above %v with degradation already maximal", p99, c.demand.MaxP99Latency)
			}
			c.latencyHot = true
		} else {
			c.latencyHot = false
		}
	}
}

func (c *QualityController) record(format string, args ...any) {
	c.actions = append(c.actions, fmt.Sprintf(format, args...))
}

// Actions returns the decisions taken so far, in order.
func (c *QualityController) Actions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.actions))
	copy(out, c.actions)
	return out
}

// PatternAware reports whether the controller has switched (or was
// seeded with) pattern-aware shedding.
func (c *QualityController) PatternAware() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.patternAware
}
