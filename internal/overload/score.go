package overload

import "math"

// Rate is an exponentially weighted moving average of an arrival rate in
// events per event-time unit, fed one timestamp per arrival. It is the
// live stream statistic the completion scorer and the recall accountant
// consume. Not goroutine-safe: each operator instance owns its rates and
// observes them from its single processing goroutine.
type Rate struct {
	alpha  float64
	last   int64
	value  float64
	primed bool
}

// DefaultRateAlpha weights recent inter-arrival gaps heavily enough to
// track bursts while smoothing single outliers.
const DefaultRateAlpha = 0.2

// NewRate builds an EWMA rate tracker; alpha <= 0 selects the default.
func NewRate(alpha float64) *Rate {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultRateAlpha
	}
	return &Rate{alpha: alpha}
}

// Observe feeds one arrival at event time ts. Out-of-order or equal
// timestamps count as a minimal gap, biasing the rate upward — safe for
// both consumers (a higher rate only raises loss bounds and completion
// scores of competing state uniformly).
func (r *Rate) Observe(ts int64) {
	if !r.primed {
		r.primed = true
		r.last = ts
		return
	}
	gap := ts - r.last
	r.last = ts
	if gap < 1 {
		gap = 1
	}
	sample := 1 / float64(gap)
	if r.value == 0 {
		r.value = sample
		return
	}
	r.value = r.alpha*sample + (1-r.alpha)*r.value
}

// PerTimeUnit returns the current rate estimate in events per event-time
// unit (0 until two arrivals have been observed).
func (r *Rate) PerTimeUnit() float64 { return r.value }

// CompletionScore estimates the probability that a unit of partial state
// still completes into a match: the probability that at least
// transitionsLeft further qualifying events arrive within timeLeft, under
// a Poisson arrival model at the observed rate. With no rate estimate it
// degrades to a shape heuristic — fraction of window remaining, damped by
// the transitions still required — that preserves the orderings shedding
// relies on: more-advanced state scores higher, and within a stage older
// state (less time left) scores lower.
func CompletionScore(transitionsLeft int, timeLeft, window int64, rate float64) float64 {
	if transitionsLeft <= 0 {
		return 1
	}
	if timeLeft <= 0 {
		return 0
	}
	if rate > 0 {
		return poissonTail(transitionsLeft, rate*float64(timeLeft))
	}
	if window <= 0 {
		window = 1
	}
	frac := float64(timeLeft) / float64(window)
	if frac > 1 {
		frac = 1
	}
	return frac / float64(1+transitionsLeft)
}

// poissonTail returns P(X >= k) for X ~ Poisson(lambda).
func poissonTail(k int, lambda float64) float64 {
	if k <= 0 {
		return 1
	}
	if lambda <= 0 {
		return 0
	}
	// 1 - CDF(k-1), accumulating terms e^-λ λ^i / i! iteratively.
	term := math.Exp(-lambda)
	cdf := term
	for i := 1; i < k; i++ {
		term *= lambda / float64(i)
		cdf += term
	}
	tail := 1 - cdf
	if tail < 0 {
		return 0
	}
	return tail
}

// CompletionValue ranks a unit of partial state for victim selection:
// primarily by how few transitions it still needs, and within a stage by
// lambda = rate*timeLeft, the expected number of qualifying arrivals it
// has left (fresher units rank higher). Near-complete state is the
// engine's match production under sustained overload — completing emits
// without consuming budget, so evicting a one-transition-away unit
// forfeits imminent matches, while early-stage state is re-seeded from
// the live stream for free. The two orderings compose lexicographically
// in a single float,
//
//	score = 1 / (k + 1/(1+lambda))
//
// which lies in the non-overlapping band [1/(k+1), 1/k): every unit
// needing k transitions outranks every unit needing k+1, and within a
// band the score grows with lambda. Unlike the saturating tail
// probability CompletionScore, the rank keeps discriminating on dense
// streams where nearly all state is near-certain to complete at least
// once. With no rate estimate the fraction of window time remaining
// stands in for lambda, preserving both orderings.
func CompletionValue(transitionsLeft int, timeLeft, window int64, rate float64) float64 {
	if transitionsLeft <= 0 {
		return 1
	}
	if timeLeft <= 0 {
		return 0
	}
	var lambda float64
	if rate > 0 {
		lambda = rate * float64(timeLeft)
	} else {
		if window <= 0 {
			window = 1
		}
		lambda = float64(timeLeft) / float64(window)
		if lambda > 1 {
			lambda = 1
		}
	}
	return 1 / (float64(transitionsLeft) + 1/(1+lambda))
}

// LossSafety is the multiplier applied to rate-derived expected-arrival
// counts when bounding the matches an evicted unit could still have
// produced. Over-counting lost matches is safe — it only lowers the
// recall estimate, which must stay a lower bound — so the bound pads the
// expectation by this factor to cover bursts the EWMA smooths away.
const LossSafety = 4

// ExpectedArrivals bounds the number of qualifying events expected within
// timeLeft at the observed rate, padded by LossSafety and floored at 1
// (an evicted unit could always have completed with a single arrival).
func ExpectedArrivals(rate float64, timeLeft int64) float64 {
	if timeLeft <= 0 {
		return 1
	}
	n := LossSafety * rate * float64(timeLeft)
	if n < 1 {
		return 1
	}
	return n
}
