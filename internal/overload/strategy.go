package overload

import "fmt"

// ShedStrategy selects how the Shed policy picks victims when a budget
// is exceeded.
type ShedStrategy int

const (
	// OldestFirst evicts state in event-time order: oldest panes, groups
	// and partial matches first. Pattern-blind but cheap and predictable —
	// the behavior bounded-state execution shipped with.
	OldestFirst ShedStrategy = iota
	// PatternAware evicts lowest-value state first: each retained unit is
	// scored by its completion probability (transitions remaining, time
	// left in the window, live arrival rates), so partial matches one
	// transition away from completing are protected while hopeless ones
	// go first. Operators that cannot score their state fall back to
	// OldestFirst.
	PatternAware
)

// String returns the flag-grammar name of the strategy.
func (s ShedStrategy) String() string {
	switch s {
	case OldestFirst:
		return "oldest"
	case PatternAware:
		return "pattern"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseShedStrategy parses the flag grammar: oldest or pattern.
func ParseShedStrategy(s string) (ShedStrategy, error) {
	switch s {
	case "oldest":
		return OldestFirst, nil
	case "pattern":
		return PatternAware, nil
	default:
		return OldestFirst, fmt.Errorf("overload: unknown shed strategy %q (want oldest or pattern)", s)
	}
}
