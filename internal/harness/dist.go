package harness

import (
	"context"
	"fmt"
	"time"

	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/exchange"
	"cep2asp/internal/metrics"
	"cep2asp/internal/obs"
	"cep2asp/internal/workload"
)

// Distributed experiments: the same Figure 6 scale-out sweep as
// Fig6Scalability, but with real worker processes (or in-process worker
// runtimes over loopback TCP) instead of simulated slot counts, plus a
// fast correctness smoke for CI. The coordinator participates as worker 0;
// key-partitioned operator instances spread across the remaining workers,
// so every run moves real record batches through the network shuffle.

// distPatternSEQ7 is PatternSEQ7's source text (the distributed job spec
// ships pattern text, not parsed ASTs).
func distPatternSEQ7(f float64, wMinutes int) string {
	return fmt.Sprintf(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v, PM10 p)
		WHERE q.id == v.id AND v.id == p.id
		  AND q.value >= %g AND v.value <= %g AND p.value <= %g
		WITHIN %d MINUTES SLIDE 1 MINUTE`,
		100*(1-f), 100*f, 100*f, wMinutes)
}

// distEngine converts the Scale's engine configuration to the wire form.
func (sc Scale) distEngine() exchange.EngineSettings {
	return exchange.EngineSettings{
		DefaultParallelism: sc.Slots,
		WatermarkInterval:  256,
		BatchSize:          sc.BatchSize,
		MaxOperatorState:   sc.StateBudget,
	}
}

// runDistributed executes one pattern on a freshly spawned in-process
// cluster of the given size and folds the outcome into a RunResult. With
// DistExternal set, real cep2asp-worker processes are expected to join
// instead — the coordinator address is printed for them.
func (sc Scale) runDistributed(ctx context.Context, name, pattern string, fcep bool, opts core.Options, workers int, data map[event.Type][]event.Event) RunResult {
	approach := "FASP-dist"
	if fcep {
		approach = "FCEP-dist"
	}
	res := RunResult{Name: name, Approach: approach}

	coord, err := exchange.NewCoordinator(exchange.CoordinatorOptions{
		ListenAddr: sc.DistListen,
		Workers:    workers,
		Metrics:    sc.Metrics,
		Policy:     sc.RestartPolicy,
		Liveness:   sc.DistLiveness,
		Log:        sc.Log,
	})
	if err != nil {
		res.Err = err
		return res
	}
	defer coord.Close()

	// Spawn in-process workers unless external worker processes are
	// expected to join (DistExternal: the benchrunner prints the address
	// and real cep2asp-worker processes connect).
	var spawned []*exchange.Worker
	if !sc.DistExternal {
		for i := 1; i < workers; i++ {
			// Each in-process worker gets its own registry so the
			// coordinator's /cluster/metrics federation reports per-worker
			// series instead of one commingled set.
			w, err := exchange.StartWorker(ctx, coord.ControlAddr(), exchange.WorkerOptions{
				Name:    fmt.Sprintf("inproc-%d", i),
				Metrics: obs.NewRegistry(),
				Log:     sc.Log,
			})
			if err != nil {
				res.Err = err
				return res
			}
			spawned = append(spawned, w)
		}
	} else {
		fmt.Printf("coordinator listening on %s; waiting for %d workers to join\n",
			coord.ControlAddr(), workers-1)
	}
	defer func() {
		for _, w := range spawned {
			w.Close()
		}
	}()
	if err := coord.WaitForWorkers(ctx); err != nil {
		res.Err = err
		return res
	}

	job := exchange.Job{
		Pattern: pattern,
		FCEP:    fcep,
		Opts:    opts,
		Engine:  sc.distEngine(),
		Streams: exchange.BuildStreams(data),
		// Counts only: retaining millions of matches would swamp the
		// scale-out measurement with sink memory traffic.
		DedupSink:          true,
		CheckpointInterval: sc.CheckpointInterval,
		Faults:             sc.ChaosFaults,
		Timeout:            sc.Timeout,
		TraceRate:          sc.TraceRate,
	}
	start := time.Now()
	jr, err := coord.RunJob(ctx, job)
	if jr != nil {
		res.Events = jr.Events
		res.Elapsed = jr.Elapsed
		res.ThroughputTps = jr.ThroughputTps
		res.Matches = jr.Total
		res.Unique = jr.Unique
		res.Checkpoints = jr.Checkpoints
		res.Restarts = jr.Restarts
		if jr.Events > 0 {
			res.SelectivityPct = float64(jr.Unique) / float64(jr.Events) * 100
		}
		for _, st := range jr.CheckpointStats {
			if st.Bytes > res.CheckpointBytes {
				res.CheckpointBytes = st.Bytes
			}
			if st.AlignPause > res.CheckpointPause {
				res.CheckpointPause = st.AlignPause
			}
			res.CheckpointSeries = append(res.CheckpointSeries, metrics.CheckpointPoint{
				ID:         st.ID,
				At:         st.CompletedAt.Sub(start),
				Duration:   st.Duration,
				AlignPause: st.AlignPause,
				Bytes:      st.Bytes,
			})
		}
		res.CkptP50, res.CkptP99 = ckptPercentiles(res.CheckpointSeries)
	}
	// The coordinator's tracer holds its own spans plus every span the
	// workers pushed over the control plane: the cluster-wide trace.
	if tr := coord.Tracer(); tr != nil {
		res.Trace = tr.Summarize()
		if sc.TraceOut != "" {
			if werr := tr.WriteFile(sc.TraceOut); werr != nil && err == nil {
				err = fmt.Errorf("trace export: %w", werr)
			}
		}
	}
	res.Err = err
	res.Failed = err != nil
	return res
}

// Fig6Distributed is the multi-process Figure 6: the SEQ7(3) scale-out
// sweep over 1, 2 and 4 workers where each worker is a separate dataflow
// slice connected by TCP shuffles (in-process worker runtimes over
// loopback by default — separate OS processes when external workers
// join). The 1-worker run is the degenerate baseline: the same code path
// with nothing remote, so the deltas isolate real serialization and
// network cost.
func Fig6Distributed(ctx context.Context, sc Scale) []RunResult {
	kc := sc
	kc.QnVSensors, kc.AQSensors = 128, 128
	qnv := kc.qnvData()
	aq := kc.aqData()
	data := mergedData(qnv, only(aq, workload.TypePM10))
	pat := distPatternSEQ7(fSeq7, 15)
	var out []RunResult
	workerCounts := []int{1, 2, 4}
	if kc.DistWorkers > 0 {
		workerCounts = []int{kc.DistWorkers}
	}
	for _, workers := range workerCounts {
		parallelism := workers * maxInt(1, sc.Slots)
		name := fmt.Sprintf("fig6dist/SEQ7/workers=%d", workers)
		for _, fcep := range []bool{true, false} {
			opts := core.Options{UsePartitioning: true, Parallelism: parallelism}
			if !fcep {
				opts.UseIntervalJoin = true // FASP-O1+O3, matching Fig6Scalability
			}
			out = append(out, kc.runDistributed(ctx, name, pat, fcep, opts, workers, data))
		}
	}
	return out
}

// DistSmoke is the CI gate: a short keyed SEQ workload on a 2-worker
// loopback cluster whose deduplicated match count must equal the
// single-process run of the identical job. A mismatch fails the run
// (Err set), which the benchrunner turns into a non-zero exit.
func DistSmoke(ctx context.Context, sc Scale) []RunResult {
	kc := sc
	kc.QnVSensors, kc.AQSensors = 16, 16
	if kc.QnVMinutes == 0 || kc.QnVMinutes > 60 {
		kc.QnVMinutes = 60
	}
	qnv := kc.qnvData()
	pattern := `
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
		WITHIN 10 MINUTES SLIDE 1 MINUTE`
	workers := kc.DistWorkers
	if workers <= 0 {
		workers = 2
	}
	parallelism := maxInt(4, workers)

	single := kc.run(ctx, "distsmoke/single-process", mustParse(pattern), WithO3(FASP, parallelism), qnv)

	opts := core.Options{UsePartitioning: true, Parallelism: parallelism}
	dist := kc.runDistributed(ctx, fmt.Sprintf("distsmoke/workers=%d", workers), pattern, false, opts, workers, qnv)
	if dist.Err == nil && dist.Unique != single.Unique {
		dist.Err = fmt.Errorf("distsmoke: match sets diverged: single-process %d unique, distributed %d unique",
			single.Unique, dist.Unique)
		dist.Failed = true
	}
	return []RunResult{single, dist}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
