package harness

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/cep"
	"cep2asp/internal/chaos"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
	"cep2asp/internal/obs"
	"cep2asp/internal/optimizer"
	"cep2asp/internal/overload"
	"cep2asp/internal/sea"
	"cep2asp/internal/supervise"
	"cep2asp/internal/workload"
)

// Scale parameterizes the experiment suite so the same definitions drive
// both the full runs (cmd/benchrunner) and the reduced testing.B benchmarks
// (bench_test.go). The paper's setup corresponds to Full: ~2.5k QnV road
// segments (§5.1.3) and workers with 16 task slots (§5.1.1).
type Scale struct {
	QnVSensors int
	QnVMinutes int
	AQSensors  int
	AQMinutes  int
	// Slots is the per-worker task-slot count (parallelism unit).
	Slots int
	// StateBudget bounds total buffered elements; what happens at the bound
	// is selected by OverloadPolicy. Zero disables.
	StateBudget int64
	// OverloadPolicy selects the reaction to a reached StateBudget: the
	// zero value (overload.Fail) aborts the run — the memory-exhaustion
	// analogue (§5.2.3) — while overload.Shed evicts oldest state and
	// overload.Pause throttles the sources.
	OverloadPolicy overload.Policy
	// ShedStrategy selects the Shed policy's victim order: the zero value
	// evicts oldest-first, overload.PatternAware evicts the state least
	// likely to still complete into a match.
	ShedStrategy overload.ShedStrategy
	// QualityRecall / QualityLatency declare per-run quality demands (a
	// MinRecall floor and a p99 detection-latency ceiling); zero values
	// disable the quality controller.
	QualityRecall  float64
	QualityLatency time.Duration
	Seed           int64
	// CheckpointInterval enables aligned-barrier checkpointing during every
	// experiment run, measuring its overhead (0 = off).
	CheckpointInterval time.Duration
	// Metrics, when set, attaches the per-operator observability registry
	// to every experiment run (live /metrics endpoint, per-operator rows in
	// results). Each run resets the registry's graph, so a shared registry
	// always reflects the currently executing run.
	Metrics *obs.Registry
	// Timeout per run; zero means unbounded.
	Timeout time.Duration
	// RestartPolicy runs every experiment supervised (restart from the
	// latest checkpoint on isolated operator panics); nil runs unsupervised.
	RestartPolicy *supervise.Policy
	// ChaosFaults arms the given faults on every run. Each run gets its own
	// injector so hit counters do not leak between experiments (within one
	// supervised run the injector is shared across restarts).
	ChaosFaults []chaos.Fault
	// StopTimeout bounds each run's teardown after cancellation or failure.
	StopTimeout time.Duration
	// BatchSize overrides the engine's edge batch size for every run
	// (records per inter-operator channel transfer); 0 keeps the engine
	// default, 1 disables batching.
	BatchSize int
	// DistWorkers overrides the worker-count sweep of the distributed
	// experiments (fig6dist, distsmoke) with a single fixed cluster size;
	// 0 keeps each experiment's default.
	DistWorkers int
	// DistListen is the coordinator control-plane listen address for
	// distributed experiments ("" = loopback, ephemeral port).
	DistListen string
	// DistExternal makes distributed experiments wait for external
	// cep2asp-worker processes to join instead of spawning in-process
	// worker runtimes; the coordinator address is printed at startup.
	DistExternal bool
	// DistLiveness overrides the coordinator's heartbeat failure-detection
	// deadline for distributed experiments (0 = exchange default, negative
	// disables detection).
	DistLiveness time.Duration
	// TraceRate samples end-to-end traces on every run: the fraction of
	// source events followed through operator hops, network frames, and
	// match derivations (0 = off, 1 = every event). Sampling is
	// deterministic by event identity, so repeated runs trace the same
	// records.
	TraceRate float64
	// TraceOut, when non-empty, writes the Chrome trace-event JSON of
	// each traced run there (an experiment with several runs overwrites;
	// the last run's trace wins).
	TraceOut string
	// Log receives structured engine and control-plane events; nil
	// discards them.
	Log *slog.Logger
}

// BenchScale is small enough for unit benchmarks.
func BenchScale() Scale {
	return Scale{
		QnVSensors: 20, QnVMinutes: 120,
		AQSensors: 20, AQMinutes: 120,
		Slots: 4, StateBudget: 2_000_000, Seed: 1,
		Timeout: 2 * time.Minute,
	}
}

// FullScale approximates the paper's data volumes within a single-machine
// budget: one to two orders of magnitude below the cluster runs, with the
// same stream shapes and ratios.
func FullScale() Scale {
	return Scale{
		QnVSensors: 500, QnVMinutes: 2000,
		AQSensors: 500, AQMinutes: 2000,
		Slots: 16, StateBudget: 30_000_000, Seed: 1,
		Timeout: 10 * time.Minute,
	}
}

func (sc Scale) engine() asp.Config {
	return asp.Config{
		DefaultParallelism: sc.Slots,
		WatermarkInterval:  256,
		MaxOperatorState:   sc.StateBudget,
		BatchSize:          sc.BatchSize,
		Overload:           overload.Spec{Policy: sc.OverloadPolicy, Shedding: sc.ShedStrategy},
	}
}

// qnvData generates the traffic streams keyed by type.
func (sc Scale) qnvData() map[event.Type][]event.Event {
	q, v := workload.QnV(workload.QnVConfig{Sensors: sc.QnVSensors, Minutes: sc.QnVMinutes, Seed: sc.Seed})
	return map[event.Type][]event.Event{
		workload.TypeQuantity: q,
		workload.TypeVelocity: v,
	}
}

// aqData generates the air-quality streams keyed by type.
func (sc Scale) aqData() map[event.Type][]event.Event {
	pm10, pm25, temp, hum := workload.AirQuality(workload.AQConfig{Sensors: sc.AQSensors, Minutes: sc.AQMinutes, Seed: sc.Seed})
	return map[event.Type][]event.Event{
		workload.TypePM10: pm10,
		workload.TypePM25: pm25,
		workload.TypeTemp: temp,
		workload.TypeHum:  hum,
	}
}

// fracFor returns the filter fraction that lets approximately target
// events of a stream pass — the knob the evaluation turns to reach the
// paper's output-selectivity regimes (σo from 0.00005% up to 30%, §5.2).
func fracFor(target, streamEvents int) float64 {
	if streamEvents <= 0 {
		return 1
	}
	f := float64(target) / float64(streamEvents)
	if f > 1 {
		return 1
	}
	return f
}

// passesForSelectivity inverts the SEQ(2) match-count model to find the
// per-stream filter pass count that yields a target output selectivity:
// matches ≈ p² · W / (2 · duration) and σo = matches / events.
func passesForSelectivity(sigma float64, events int, durationMin, wMin int) int {
	p := math.Sqrt(2 * sigma * float64(events) * float64(durationMin) / float64(wMin))
	if p < 4 {
		return 4
	}
	return int(p)
}

func mustParse(src string) *sea.Pattern {
	p, err := sea.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("harness: bad experiment pattern: %v\n%s", err, src))
	}
	return p
}

// Pattern generators. Values are uniform in [0,100), so a filter fraction f
// translates to thresholds selecting f of each stream.

// PatternSEQ1 is the paper's SEQ1(2): quantity followed by velocity — the
// congestion motif (high quantity, then low speed).
func PatternSEQ1(f float64, wMinutes int) *sea.Pattern {
	return mustParse(fmt.Sprintf(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= %g AND v.value <= %g
		WITHIN %d MINUTES SLIDE 1 MINUTE`,
		100*(1-f), 100*f, wMinutes))
}

// PatternSEQ1Keyed adds the sensor-id equality enabling O3.
func PatternSEQ1Keyed(f float64, wMinutes int) *sea.Pattern {
	return mustParse(fmt.Sprintf(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v)
		WHERE q.value >= %g AND v.value <= %g AND q.id == v.id
		WITHIN %d MINUTES SLIDE 1 MINUTE`,
		100*(1-f), 100*f, wMinutes))
}

// PatternITER is ITER^m over velocity: pairwise-increasing values when
// chain is set (the paper's ITER_2 constraint), a plain threshold otherwise
// (ITER_3). keyed adds the pairwise id equality for O3.
func PatternITER(m int, f float64, wMinutes int, chain, keyed bool) *sea.Pattern {
	var preds []string
	if chain {
		preds = append(preds, "v[i].value < v[i+1].value")
		// A threshold keeps the relevant-event rate controllable even for
		// the chained variant, like the paper's constant-σo calibration.
		preds = append(preds, fmt.Sprintf("v.value <= %g", 100*f))
	} else {
		preds = append(preds, fmt.Sprintf("v.value <= %g", 100*f))
	}
	if keyed {
		preds = append(preds, "v[i].id == v[i+1].id")
	}
	return mustParse(fmt.Sprintf(`
		PATTERN ITER(QnVVelocity v, %d)
		WHERE %s
		WITHIN %d MINUTES SLIDE 1 MINUTE`,
		m, strings.Join(preds, " AND "), wMinutes))
}

// PatternNSEQ1 is the paper's NSEQ1(3): quantity followed by velocity with
// no high particulate reading in between (traffic + air-quality sources).
func PatternNSEQ1(f float64, wMinutes int) *sea.Pattern {
	return mustParse(fmt.Sprintf(`
		PATTERN SEQ(QnVQuantity q, !PM10 x, QnVVelocity v)
		WHERE q.value >= %g AND v.value <= %g AND x.value >= %g
		WITHIN %d MINUTES SLIDE 1 MINUTE`,
		100*(1-f), 100*f, 100*(1-f), wMinutes))
}

// seqTypes lists the event types used to grow SEQ(n), in the paper's
// source-introduction order (§5.2.2): QnV first, then SDS011, then DHT22.
var seqTypes = []struct {
	typeName string
	typ      *event.Type
}{
	{"QnVQuantity", &workload.TypeQuantity},
	{"QnVVelocity", &workload.TypeVelocity},
	{"PM10", &workload.TypePM10},
	{"PM25", &workload.TypePM25},
	{"Temp", &workload.TypeTemp},
	{"Hum", &workload.TypeHum},
}

// PatternSEQN is the nested sequence SEQ(n) over the first n types.
func PatternSEQN(n int, f float64, wMinutes int) *sea.Pattern {
	var elems, preds []string
	for i := 0; i < n; i++ {
		alias := fmt.Sprintf("e%d", i+1)
		elems = append(elems, seqTypes[i].typeName+" "+alias)
		preds = append(preds, fmt.Sprintf("%s.value <= %g", alias, 100*f))
	}
	return mustParse(fmt.Sprintf(`
		PATTERN SEQ(%s)
		WHERE %s
		WITHIN %d MINUTES SLIDE 1 MINUTE`,
		strings.Join(elems, ", "), strings.Join(preds, " AND "), wMinutes))
}

// PatternSEQ7 is the keyed three-stream sequence of the data-characteristics
// experiment (§5.2.3): equi joins on sensor id enable O3.
func PatternSEQ7(f float64, wMinutes int) *sea.Pattern {
	return mustParse(fmt.Sprintf(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v, PM10 p)
		WHERE q.id == v.id AND v.id == p.id
		  AND q.value >= %g AND v.value <= %g AND p.value <= %g
		WITHIN %d MINUTES SLIDE 1 MINUTE`,
		100*(1-f), 100*f, 100*f, wMinutes))
}

// PatternITER4 is the keyed iteration of the data-characteristics
// experiment: four readings of one sensor within 90 minutes.
func PatternITER4(f float64, wMinutes int) *sea.Pattern {
	return PatternITER(4, f, wMinutes, false, true)
}

// mergedData combines the stream maps needed by a pattern.
func mergedData(maps ...map[event.Type][]event.Event) map[event.Type][]event.Event {
	out := make(map[event.Type][]event.Event)
	for _, m := range maps {
		for t, evs := range m {
			out[t] = evs
		}
	}
	return out
}

// only restricts a data map to the given types.
func only(data map[event.Type][]event.Event, types ...event.Type) map[event.Type][]event.Event {
	out := make(map[event.Type][]event.Event, len(types))
	for _, t := range types {
		out[t] = data[t]
	}
	return out
}

func (sc Scale) run(ctx context.Context, name string, pat *sea.Pattern, a Approach, data map[event.Type][]event.Event) RunResult {
	spec := RunSpec{
		Name:               name,
		Pattern:            pat,
		Approach:           a,
		Data:               data,
		Engine:             sc.engine(),
		CheckpointInterval: sc.CheckpointInterval,
		Metrics:            sc.Metrics,
		Timeout:            sc.Timeout,
		RestartPolicy:      sc.RestartPolicy,
		StopTimeout:        sc.StopTimeout,
		TraceRate:          sc.TraceRate,
		TraceOut:           sc.TraceOut,
		Log:                sc.Log,
		Quality:            overload.QualityDemand{MinRecall: sc.QualityRecall, MaxP99Latency: sc.QualityLatency},
	}
	if len(sc.ChaosFaults) > 0 {
		spec.Chaos = chaos.NewInjector(sc.ChaosFaults...)
	}
	return Run(ctx, spec)
}

// Fig3aBaseline reproduces Figure 3a: elementary operator throughput for
// SEQ1(2), ITER^3(1) and NSEQ1(3) under FCEP, FASP, FASP-O1, and (for the
// iteration) FASP-O2. Expected shape: FASP ≥ FCEP for SEQ/ITER (tens of
// percent), FASP ≫ FCEP for NSEQ (order of magnitude), O2 fastest on ITER.
func Fig3aBaseline(ctx context.Context, sc Scale) []RunResult {
	const w = 15
	qnv := sc.qnvData()
	aq := sc.aqData()
	streamEvents := sc.QnVSensors * sc.QnVMinutes
	// The paper's baseline selectivity is minuscule (σo = 0.00005%): the
	// filters pass only a handful of events.
	f := fracFor(passesForSelectivity(1e-5, 2*streamEvents, sc.QnVMinutes, w), streamEvents)
	var out []RunResult

	seq1 := PatternSEQ1(f, w)
	for _, a := range []Approach{FCEP, FASP, FASPO1} {
		out = append(out, sc.run(ctx, "fig3a/SEQ1", seq1, a, qnv))
	}

	// Iterations need enough relevant events per window to form chains.
	fIter := fracFor(6*sc.QnVMinutes/w, streamEvents)
	iter3 := PatternITER(3, fIter, w, true, false)
	for _, a := range []Approach{FCEP, FASP, FASPO1, FASPO2} {
		out = append(out, sc.run(ctx, "fig3a/ITER3_1", iter3, a, only(qnv, workload.TypeVelocity)))
	}

	nseq1 := PatternNSEQ1(f, w)
	data := mergedData(qnv, only(aq, workload.TypePM10))
	for _, a := range []Approach{FCEP, FASP, FASPO1} {
		out = append(out, sc.run(ctx, "fig3a/NSEQ1", nseq1, a, data))
	}
	return out
}

// Fig3bSelectivity reproduces Figure 3b: SEQ1 throughput and latency under
// rising output selectivity. Expected shape: FCEP collapses by orders of
// magnitude; FASP stays flat until the highest selectivities; O1 wins at
// the top by avoiding duplicate window computations.
func Fig3bSelectivity(ctx context.Context, sc Scale) []RunResult {
	// Quadratic match growth: restrict the key count so the largest
	// setting stays tractable, like the paper's filter-selectivity knob.
	sub := sc
	if sub.QnVSensors > 10 {
		sub.QnVSensors = 10
	}
	qnv := sub.qnvData()
	streamEvents := sub.QnVSensors * sub.QnVMinutes
	events := 2 * streamEvents
	var out []RunResult
	// Output-selectivity targets spanning the paper's sweep, 0.003%-30%.
	for _, sigma := range []float64{0.00003, 0.0003, 0.003, 0.03, 0.3} {
		target := passesForSelectivity(sigma, events, sub.QnVMinutes, 15)
		f := fracFor(target, streamEvents)
		pat := PatternSEQ1(f, 15)
		for _, a := range []Approach{FCEP, FASP, FASPO1} {
			out = append(out, sub.run(ctx, fmt.Sprintf("fig3b/σo≈%.3f%%", sigma*100), pat, a, qnv))
		}
	}
	return out
}

// Fig3cWindow reproduces Figure 3c: SEQ1 under growing window sizes.
// Expected shape: FCEP throughput decays with W (larger state, more partial
// matches); FASP and O1 stay roughly constant.
func Fig3cWindow(ctx context.Context, sc Scale) []RunResult {
	// Windows up to 360 minutes need streams several times that long.
	sub := sc
	if sub.QnVSensors > 5 {
		sub.QnVSensors = 5
	}
	if sub.QnVMinutes < 1080 {
		sub.QnVMinutes = 1080
	}
	qnv := sub.qnvData()
	f := fracFor(12, sub.QnVSensors*sub.QnVMinutes)
	var out []RunResult
	for _, w := range []int{30, 90, 180, 360} {
		pat := PatternSEQ1(f, w)
		for _, a := range []Approach{FCEP, FASP, FASPO1} {
			out = append(out, sub.run(ctx, fmt.Sprintf("fig3c/W=%d", w), pat, a, qnv))
		}
	}
	return out
}

// Fig3dSeqLength reproduces Figure 3d: nested SEQ(n) for n = 2..6.
// Expected shape: FCEP drops sharply as sources are added (the union grows
// and the NFA deepens); FASP holds steady through pipeline parallelism.
func Fig3dSeqLength(ctx context.Context, sc Scale) []RunResult {
	all := mergedData(sc.qnvData(), sc.aqData())
	var out []RunResult
	f := fracFor(8*sc.QnVMinutes/15, sc.QnVSensors*sc.QnVMinutes)
	for n := 2; n <= 6; n++ {
		pat := PatternSEQN(n, f, 15)
		types := make([]event.Type, n)
		for i := 0; i < n; i++ {
			types[i] = *seqTypes[i].typ
		}
		data := only(all, types...)
		for _, a := range []Approach{FCEP, FASP, FASPO1} {
			out = append(out, sc.run(ctx, fmt.Sprintf("fig3d/SEQ%d", n), pat, a, data))
		}
	}
	return out
}

// Fig3eIterChain reproduces Figure 3e: ITER^m with the constraint between
// subsequent events, m = 3..9. Expected shape: FCEP decays with m (more
// partials, ancestor tests); FASP variants stay flat, O2 on top.
func Fig3eIterChain(ctx context.Context, sc Scale) []RunResult {
	return iterSweep(ctx, sc, "fig3e", true)
}

// Fig3fIterThreshold reproduces Figure 3f: ITER^m with a threshold filter,
// m = 3..9. Same shape as 3e but with a milder FCEP decline.
func Fig3fIterThreshold(ctx context.Context, sc Scale) []RunResult {
	return iterSweep(ctx, sc, "fig3f", false)
}

func iterSweep(ctx context.Context, sc Scale, label string, chain bool) []RunResult {
	data := only(sc.qnvData(), workload.TypeVelocity)
	var out []RunResult
	for _, m := range []int{3, 5, 7, 9} {
		// The paper raises the constraint selectivity with m to keep σo
		// roughly constant (§5.2.2): pick the per-window relevant-event
		// count k whose expected match count is ~2 per window — for the
		// chained variant an increasing subsequence, C(k,m)/m!; for the
		// threshold variant any combination, C(k,m).
		k := perWindowForIter(m, chain)
		f := fracFor(k*sc.QnVMinutes/15, sc.QnVSensors*sc.QnVMinutes)
		pat := PatternITER(m, f, 15, chain, false)
		for _, a := range []Approach{FCEP, FASP, FASPO1, FASPO2} {
			out = append(out, sc.run(ctx, fmt.Sprintf("%s/m=%d", label, m), pat, a, data))
		}
	}
	return out
}

// perWindowForIter finds the smallest per-window relevant-event count k
// whose expected ITER^m match count reaches ~2 per window.
func perWindowForIter(m int, chain bool) int {
	expected := func(k int) float64 {
		// C(k, m), optionally divided by m! for the probability that a
		// random m-combination of distinct uniform values increases.
		c := 1.0
		for i := 0; i < m; i++ {
			c = c * float64(k-i) / float64(i+1)
		}
		if chain {
			for i := 2; i <= m; i++ {
				c /= float64(i)
			}
		}
		return c
	}
	for k := m; k < m+40; k++ {
		if expected(k) >= 2 {
			return k
		}
	}
	return m + 40
}

// Filter fractions of the keyed experiments (figures 4-6), tuned so the
// output selectivity lands near the paper's σo = 1% regime: SEQ7 expects
// about two relevant quantity/velocity readings per key and window;
// ITER4's 90-minute window holds about five relevant readings per key,
// yielding a handful of 4-combinations.
const (
	fSeq7  = 0.10
	fIter4 = 0.016
)

// Fig4Keys reproduces Figure 4: data characteristics under growing key
// counts (16/32/128) for the keyed SEQ7(3) and ITER4(1), with O3 enabled
// everywhere. Expected shape: every FASP variant above FCEP; FASP gains
// beyond 16 keys while FCEP stagnates; O2+O3 on top for the iteration.
func Fig4Keys(ctx context.Context, sc Scale) []RunResult {
	var out []RunResult
	for _, keys := range []int{16, 32, 128} {
		kc := sc
		kc.QnVSensors, kc.AQSensors = keys, keys
		qnv := kc.qnvData()
		aq := kc.aqData()

		seq7 := PatternSEQ7(fSeq7, 15)
		dataSeq := mergedData(qnv, only(aq, workload.TypePM10))
		for _, a := range []Approach{WithO3(FCEP, sc.Slots), WithO3(FASP, sc.Slots), WithO3(FASPO1, sc.Slots)} {
			out = append(out, kc.run(ctx, fmt.Sprintf("fig4/SEQ7/k=%d", keys), seq7, a, dataSeq))
		}

		iter4 := PatternITER4(fIter4, 90)
		dataIter := only(qnv, workload.TypeVelocity)
		for _, a := range []Approach{WithO3(FCEP, sc.Slots), WithO3(FASP, sc.Slots), WithO3(FASPO1, sc.Slots), WithO3(FASPO2, sc.Slots)} {
			out = append(out, kc.run(ctx, fmt.Sprintf("fig4/ITER4/k=%d", keys), iter4, a, dataIter))
		}
	}
	return out
}

// Fig5Resources reproduces Figure 5: memory and CPU over time for SEQ7 and
// ITER4 at 32 and 128 keys. Expected shape: FCEP's memory at or above
// FASP's despite ingesting at a far lower rate.
func Fig5Resources(ctx context.Context, sc Scale) []RunResult {
	var out []RunResult
	for _, keys := range []int{32, 128} {
		kc := sc
		kc.QnVSensors, kc.AQSensors = keys, keys
		qnv := kc.qnvData()
		aq := kc.aqData()
		seq7 := PatternSEQ7(fSeq7, 15)
		iter4 := PatternITER4(fIter4, 90)
		cases := []struct {
			name string
			pat  *sea.Pattern
			data map[event.Type][]event.Event
			as   []Approach
		}{
			{"SEQ7", seq7, mergedData(qnv, only(aq, workload.TypePM10)),
				[]Approach{WithO3(FCEP, sc.Slots), WithO3(FASP, sc.Slots), WithO3(FASPO1, sc.Slots)}},
			{"ITER4", iter4, only(qnv, workload.TypeVelocity),
				[]Approach{WithO3(FCEP, sc.Slots), WithO3(FASP, sc.Slots), WithO3(FASPO1, sc.Slots), WithO3(FASPO2, sc.Slots)}},
		}
		for _, c := range cases {
			for _, a := range c.as {
				out = append(out, Run(ctx, RunSpec{
					Name:            fmt.Sprintf("fig5/%s/k=%d", c.name, keys),
					Pattern:         c.pat,
					Approach:        a,
					Data:            c.data,
					Engine:          kc.engine(),
					Timeout:         kc.Timeout,
					Metrics:         kc.Metrics,
					SampleResources: true,
					SamplePeriod:    100 * time.Millisecond,
				}))
			}
		}
	}
	return out
}

// Fig5SEQSmoke runs the single fig5 SEQ7 row (32 keys, decomposed FASP with
// O3 partitioning) once, without resource sampling. It is the smoke workload
// scripts/bench_smoke.sh uses to gate the edge-batching throughput win: a
// multi-stage decomposed plan whose per-record channel hops dominate, so the
// batch size directly moves end-to-end throughput.
func Fig5SEQSmoke(ctx context.Context, sc Scale) RunResult {
	return Fig5SEQSmokeRunner(sc)(ctx)
}

// Fig5SEQSmokeRunner prebuilds the smoke workload (pattern and generated
// streams) and returns a function executing one run, so benchmarks amortize
// data generation across iterations and measure only the engine.
func Fig5SEQSmokeRunner(sc Scale) func(context.Context) RunResult {
	kc := sc
	kc.QnVSensors, kc.AQSensors = 32, 32
	qnv := kc.qnvData()
	aq := kc.aqData()
	pat := PatternSEQ7(fSeq7, 15)
	data := mergedData(qnv, only(aq, workload.TypePM10))
	// A fine watermark cadence makes the smoke run representative of
	// low-latency deployments: watermark records flow on every edge, so the
	// gate also covers the coalescing path, not just data-record batching.
	eng := kc.engine()
	eng.WatermarkInterval = 8
	return func(ctx context.Context) RunResult {
		return Run(ctx, RunSpec{
			Name:     "fig5smoke/SEQ7/k=32",
			Pattern:  pat,
			Approach: WithO3(FASP, sc.Slots),
			Data:     data,
			Engine:   eng,
			Timeout:  kc.Timeout,
		})
	}
}

// Fig6Scalability reproduces Figure 6: scale-out over 1, 2 and 4 simulated
// workers (16 task slots each) at 128 keys. Expected shape: both approaches
// speed up with added slots; FASP stays 25-80% ahead.
func Fig6Scalability(ctx context.Context, sc Scale) []RunResult {
	kc := sc
	kc.QnVSensors, kc.AQSensors = 128, 128
	qnv := kc.qnvData()
	aq := kc.aqData()
	seq7 := PatternSEQ7(fSeq7, 15)
	iter4 := PatternITER4(fIter4, 90)
	var out []RunResult
	for _, workers := range []int{1, 2, 4} {
		slots := workers * sc.Slots
		dataSeq := mergedData(qnv, only(aq, workload.TypePM10))
		for _, a := range []Approach{WithO3(FCEP, slots), WithO3(FASP, slots), WithO3(FASPO1, slots)} {
			out = append(out, kc.run(ctx, fmt.Sprintf("fig6/SEQ7/workers=%d", workers), seq7, a, dataSeq))
		}
		dataIter := only(qnv, workload.TypeVelocity)
		for _, a := range []Approach{WithO3(FCEP, slots), WithO3(FASP, slots), WithO3(FASPO1, slots), WithO3(FASPO2, slots)} {
			out = append(out, kc.run(ctx, fmt.Sprintf("fig6/ITER4/workers=%d", workers), iter4, a, dataIter))
		}
	}
	return out
}

// LatencyAtSustainableRate measures detection latency the way the paper's
// benchmarking reference prescribes (its [53], Karimov et al.): first find
// each approach's maximum sustained throughput at full speed, then replay
// the workload throttled to the given fraction of it and report the
// latency observed without backpressure queueing. Reported alongside the
// §5.2.2 latency narrative.
func LatencyAtSustainableRate(ctx context.Context, sc Scale, fraction float64) []RunResult {
	if fraction <= 0 || fraction > 1 {
		fraction = 0.7
	}
	qnv := sc.qnvData()
	pat := PatternSEQ1(fracFor(passesForSelectivity(1e-4, 2*sc.QnVSensors*sc.QnVMinutes, sc.QnVMinutes, 15), sc.QnVSensors*sc.QnVMinutes), 15)
	var out []RunResult
	for _, a := range []Approach{FCEP, FASP, FASPO1} {
		full := sc.run(ctx, "latency/full-speed", pat, a, qnv)
		out = append(out, full)
		if full.Failed || full.ThroughputTps <= 0 {
			continue
		}
		// Split the sustainable rate across the pattern's sources.
		perSource := full.ThroughputTps * fraction / 2
		throttled := Run(ctx, RunSpec{
			Name:             fmt.Sprintf("latency/%d%%-rate", int(fraction*100)),
			Pattern:          pat,
			Approach:         a,
			Data:             qnv,
			Engine:           sc.engine(),
			Timeout:          sc.Timeout,
			Metrics:          sc.Metrics,
			SourceRatePerSec: perSource,
		})
		out = append(out, throttled)
	}
	return out
}

// OverloadSurvival runs the skip-till-any-match hot workload — ITER^3 over
// a dense velocity stream, the pattern whose NFA partial-match state
// multiplies combinatorially (§5.2.2) — under a tight per-job state budget
// with the Shed policy, in both engine modes. The expected shape is the
// memory-survival story of bounded-state execution: the decomposed mapping
// (O2 aggregation holds one O(1) pane per key group) completes without
// shedding a single record, while the monolithic NFA operator must shed
// partial matches to stay inside the same budget — degradation that is
// visible in ShedRecords, never silent, instead of the unbudgeted run's
// memory exhaustion.
// The FCEP run is measured under both shed strategies: pattern-aware
// victim selection (advancement-first completion ranking) retains
// measurably more matches than oldest-first at the same budget, with the
// retained recall reported as RecallEstimate. The budget is deliberately
// severe — the regime where victim selection decides what survives; see
// OverloadCurve for how the two strategies converge as the budget
// loosens.
func OverloadSurvival(ctx context.Context, sc Scale) []RunResult {
	kc := sc
	kc.StateBudget = 256
	kc.OverloadPolicy = overload.Shed
	data := only(kc.qnvData(), workload.TypeVelocity)
	// A generous filter fraction keeps many relevant events per window, so
	// the NFA's stage buffers grow well past the budget.
	pat := PatternITER(3, 0.3, 15, false, false)
	var out []RunResult
	for _, strat := range []overload.ShedStrategy{overload.OldestFirst, overload.PatternAware} {
		sk := kc
		sk.ShedStrategy = strat
		out = append(out, sk.run(ctx, "overload/ITER3/budget=256/shed="+strat.String(), pat, FCEP, data))
	}
	out = append(out, kc.run(ctx, "overload/ITER3/budget=256", pat, FASPO2, data))
	return out
}

// OverloadCurve sweeps the per-job state budget for the OverloadSurvival
// workload under both shed strategies, producing the retained-matches-vs-
// budget curve of graceful degradation. Beyond the returned rows it
// writes results/overload_curve.csv (budget, strategy, matches, unique,
// shed_records, recall_estimate) for plotting.
func OverloadCurve(ctx context.Context, sc Scale) []RunResult {
	kc := sc
	kc.OverloadPolicy = overload.Shed
	data := only(kc.qnvData(), workload.TypeVelocity)
	pat := PatternITER(3, 0.3, 15, false, false)
	budgets := []int64{256, 512, 1024, 2048, 4096}
	var out []RunResult
	var b strings.Builder
	b.WriteString("budget,strategy,matches,unique,shed_records,recall_estimate\n")
	for _, budget := range budgets {
		for _, strat := range []overload.ShedStrategy{overload.OldestFirst, overload.PatternAware} {
			sk := kc
			sk.StateBudget = budget
			sk.ShedStrategy = strat
			r := sk.run(ctx, fmt.Sprintf("overloadcurve/ITER3/budget=%d/shed=%s", budget, strat), pat, FCEP, data)
			out = append(out, r)
			fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%.6f\n",
				budget, strat, r.Matches, r.Unique, r.ShedRecords, r.RecallEstimate)
		}
	}
	if err := os.MkdirAll("results", 0o755); err == nil {
		if werr := os.WriteFile(filepath.Join("results", "overload_curve.csv"), []byte(b.String()), 0o644); werr != nil && sc.Log != nil {
			sc.Log.Warn("harness: overload curve export failed", "err", werr)
		}
	}
	return out
}

// Table2Support reproduces Table 2: the operator and selection-policy
// support matrix, derived by actually attempting each translation.
func Table2Support() string {
	type probe struct {
		op  string
		src string
	}
	probes := []probe{
		{"AND", `PATTERN AND(QnVQuantity q, QnVVelocity v) WITHIN 15 MIN`},
		{"SEQ", `PATTERN SEQ(QnVQuantity q, QnVVelocity v) WITHIN 15 MIN`},
		{"OR", `PATTERN OR(QnVQuantity q, QnVVelocity v) WITHIN 15 MIN`},
		{"ITER", `PATTERN ITER(QnVVelocity v, 3) WITHIN 15 MIN`},
		{"NSEQ", `PATTERN SEQ(QnVQuantity q, !PM10 x, QnVVelocity v) WITHIN 15 MIN`},
	}
	mark := func(err error) string {
		if err != nil {
			return "✗"
		}
		return "✓"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %-6s %s\n", "Operator", "FASP", "FCEP", "FCEP policies")
	for _, p := range probes {
		pat := mustParse(p.src)
		_, faspErr := core.Translate(pat, core.Options{})
		_, fcepErr := cep.Compile(pat, nfa.SkipTillAnyMatch, nil)
		policies := "-"
		if fcepErr == nil {
			policies = "stam, stnm, sc"
		}
		fmt.Fprintf(&b, "%-8s %-6s %-6s %s\n", p.op, mark(faspErr), mark(fcepErr), policies)
	}
	b.WriteString("FASP selection policy: skip-till-any-match (stam) only.\n")
	return b.String()
}

// OptimizeSkew demonstrates the cost-based pattern compiler on a skewed
// workload: a three-way sequence over two dense QnV streams and the rare
// PM10 stream. The naive topology joins the pattern-order (dense ⋈ dense)
// pair first and wades through its cross product; the optimizer measures
// the streams, joins the rare stream first (greedy cheapest-pair, §4.2.2
// generalized by the §7 cost model), and skips most of that work. Rows:
// FASP (naive) vs FASP-OPT (statistics-driven), same pattern and data.
func OptimizeSkew(ctx context.Context, sc Scale) []RunResult {
	pat, data := sc.optimizeWorkload()

	out := []RunResult{sc.run(ctx, "optimize/SEQqvm", pat, FASP, data)}

	stats, err := optimizer.Measure(pat, data)
	if err != nil {
		return out
	}
	o, err := optimizer.New(optimizer.Config{Stats: stats})
	if err != nil {
		return out
	}
	opt := Approach{Name: "FASP-OPT", Opts: o.Advise(pat)}
	out = append(out, sc.run(ctx, "optimize/SEQqvm", pat, opt, data))
	return out
}

func (sc Scale) optimizeWorkload() (*sea.Pattern, map[event.Type][]event.Event) {
	qnv := sc.qnvData()
	aq := sc.aqData()
	data := mergedData(qnv, only(aq, workload.TypePM10))
	// The dense QnV streams pass their filters often; the PM10 stream is
	// rare by arrival AND heavily filtered. Total match volume stays small
	// (m gates everything), but the naive pattern-order plan pays the
	// dense q ⋈ v cross product first while the cost-based plan joins the
	// rare m stream first.
	pat := mustParse(`
		PATTERN SEQ(QnVQuantity q, QnVVelocity v, PM10 m)
		WHERE q.value < 60 AND v.value < 60 AND m.value < 5
		WITHIN 15 MIN SLIDE 1 MIN`)
	return pat, data
}

// OptimizeExplain renders the optimize experiment's two plans — the naive
// pattern-order topology and the cost-based one, annotated with estimated
// per-node cardinalities from measured statistics — the diagnostic behind
// benchrunner's -optimize flag.
func OptimizeExplain(sc Scale) (string, error) {
	pat, data := sc.optimizeWorkload()
	naive, err := core.Translate(pat, core.Options{})
	if err != nil {
		return "", err
	}
	stats, err := optimizer.Measure(pat, data)
	if err != nil {
		return "", err
	}
	o, err := optimizer.New(optimizer.Config{Stats: stats})
	if err != nil {
		return "", err
	}
	optimized, err := core.Translate(pat, o.Advise(pat))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("naive plan:\n")
	b.WriteString(optimizer.ExplainPlan(naive, stats))
	b.WriteString("cost-based plan (measured statistics):\n")
	b.WriteString(optimizer.ExplainPlan(optimized, stats))
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats[name]
		fmt.Fprintf(&b, "  measured %-14s %8.2f events/min, selectivity %.3f\n",
			name, s.Frequency, s.FilterSelectivity)
	}
	return b.String(), nil
}

// Experiments indexes every experiment by the identifier used in
// DESIGN.md / cmd/benchrunner.
var Experiments = map[string]func(context.Context, Scale) []RunResult{
	"latency": func(ctx context.Context, sc Scale) []RunResult {
		return LatencyAtSustainableRate(ctx, sc, 0.7)
	},
	"fig3a":         Fig3aBaseline,
	"fig3b":         Fig3bSelectivity,
	"fig3c":         Fig3cWindow,
	"fig3d":         Fig3dSeqLength,
	"fig3e":         Fig3eIterChain,
	"fig3f":         Fig3fIterThreshold,
	"fig4":          Fig4Keys,
	"fig5":          Fig5Resources,
	"fig6":          Fig6Scalability,
	"fig6dist":      Fig6Distributed,
	"distsmoke":     DistSmoke,
	"overload":      OverloadSurvival,
	"overloadcurve": OverloadCurve,
	"optimize":      OptimizeSkew,
}

// ExperimentNames lists the experiment identifiers in figure order; the
// trailing "latency" entry is the controlled-rate latency measurement
// supporting the §5.2.2 narrative, and "overload" the bounded-state
// memory-survival run.
var ExperimentNames = []string{"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig4", "fig5", "fig6", "fig6dist", "latency", "overload", "overloadcurve", "distsmoke", "optimize"}
