// Package harness runs pattern workloads under the paper's execution
// approaches and measures the evaluation's metrics (§5.1.3): maximum
// sustained throughput in tuples per second (run-to-completion rate under
// the engine's backpressure), detection latency from tuple creation time,
// output selectivity, peak operator state, and optional resource-usage time
// series. It also defines one experiment per paper figure (experiments.go).
package harness

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"sync/atomic"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/metrics"
	"cep2asp/internal/obs"
	"cep2asp/internal/overload"
	"cep2asp/internal/sea"
	"cep2asp/internal/supervise"
	"cep2asp/internal/trace"
)

// Approach selects an execution strategy for a pattern.
type Approach struct {
	// Name labels result rows: FCEP, FASP, FASP-O1, FASP-O2, FASP-O3 and
	// combinations.
	Name string
	// FCEP runs the unary NFA operator baseline instead of the mapping.
	FCEP bool
	Opts core.Options
}

// The standard approaches of the evaluation.
var (
	FCEP   = Approach{Name: "FCEP", FCEP: true}
	FASP   = Approach{Name: "FASP"}
	FASPO1 = Approach{Name: "FASP-O1", Opts: core.Options{UseIntervalJoin: true}}
	FASPO2 = Approach{Name: "FASP-O2", Opts: core.Options{UseAggregation: true}}
)

// WithO3 returns the approach extended with partitioning at the given
// parallelism (FCEP partitions its NFA state; FASP partitions its joins).
func WithO3(a Approach, parallelism int) Approach {
	a.Opts.UsePartitioning = true
	a.Opts.Parallelism = parallelism
	if a.Name == "FASP" {
		a.Name = "FASP-O3"
	} else {
		a.Name += "+O3"
	}
	return a
}

// RunSpec is one measured execution.
type RunSpec struct {
	Name     string
	Pattern  *sea.Pattern
	Approach Approach
	Data     map[event.Type][]event.Event
	Engine   asp.Config
	// SampleResources records a memory/CPU time series (Figure 5).
	SampleResources bool
	SamplePeriod    time.Duration
	// KeepMatches retains matches (small runs only).
	KeepMatches bool
	// SourceRatePerSec throttles sources to a controlled ingestion rate
	// (0 = full speed). Latency measured under throttling reflects
	// detection delay rather than backpressure queueing.
	SourceRatePerSec float64
	// CheckpointInterval enables aligned-barrier checkpointing at the given
	// period (0 = off), measuring its overhead alongside the run.
	CheckpointInterval time.Duration
	// CheckpointStore receives the snapshots; nil defaults to an in-memory
	// store discarded with the run.
	CheckpointStore checkpoint.Store
	// Metrics attaches the per-operator observability registry: operator
	// and edge series become available live (obs.Serve) and as a final
	// snapshot on the result. The sink's detection-latency histogram is
	// registered under "sink_detection_latency".
	Metrics *obs.Registry
	// Timeout bounds the run; zero means none.
	Timeout time.Duration
	// RestartPolicy, when set, runs the spec supervised: isolated operator
	// panics restart the job from the latest checkpoint under the policy's
	// backoff and budget. Without a configured CheckpointStore an in-memory
	// store with a short trigger interval is installed automatically.
	RestartPolicy *supervise.Policy
	// Chaos arms deterministic fault-injection points for the run (shared
	// across supervised restarts, so hit counters stay monotonic).
	Chaos *chaos.Injector
	// StopTimeout bounds teardown after cancellation or failure; a wedged
	// instance is abandoned and named in the error instead of hanging the
	// run. Zero waits forever.
	StopTimeout time.Duration
	// TraceRate samples end-to-end traces: the fraction of source events
	// followed through operator hops and match derivations (0 = off).
	// The trace summary lands on the result; TraceOut, when non-empty,
	// additionally writes the Chrome trace-event JSON there.
	TraceRate float64
	TraceOut  string
	// Quality declares per-job quality demands: a controller polls the
	// run's recall estimate, p99 latency and live heap, switching the shed
	// strategy or pausing intake to hold them (unsupervised runs only —
	// incompatible with RestartPolicy). Decisions land on
	// RunResult.QualityActions.
	Quality overload.QualityDemand
	// Log receives structured engine lifecycle events; nil discards them.
	Log *slog.Logger
}

// RunResult reports one measured execution.
type RunResult struct {
	Name     string
	Approach string
	// Events is the total number of input tuples across all sources.
	Events int64
	// Elapsed is the wall-clock run time; ThroughputTps = Events/Elapsed.
	Elapsed       time.Duration
	ThroughputTps float64
	// Matches counts sink records (duplicates included); Unique counts
	// distinct matches; SelectivityPct = Unique/Events*100 (§5.1.3).
	Matches        int64
	Unique         int64
	SelectivityPct float64
	AvgLatency     time.Duration
	MaxLatency     time.Duration
	// Detection-latency quantiles from the sink's log-bucketed histogram
	// (~3% bucket resolution).
	P50Latency time.Duration
	P90Latency time.Duration
	P99Latency time.Duration
	// Failed marks runs aborted by the state budget — the analogue of the
	// paper's FlinkCEP memory-exhaustion failures (§5.2.3).
	Failed bool
	Err    error
	// Resources is the sampled memory/CPU series when requested.
	Resources []metrics.Sample
	// Checkpoint overhead (populated when CheckpointInterval > 0):
	// completed checkpoints, the largest serialized snapshot, the worst
	// single-instance alignment stall, and the per-checkpoint series.
	Checkpoints      int64
	CheckpointBytes  int64
	CheckpointPause  time.Duration
	CheckpointSeries []metrics.CheckpointPoint
	// Operators / OperatorEdges are the end-of-run per-operator-instance
	// and per-edge metrics (populated when RunSpec.Metrics is set).
	Operators     []obs.OperatorSnapshot
	OperatorEdges []obs.EdgeSnapshot
	// Restarts counts supervised restarts; DeadLetters the poison records
	// quarantined to the dead-letter queue (RunSpec.RestartPolicy only).
	Restarts    int
	DeadLetters int
	// Overload accounting (populated when the engine ran with a state
	// budget): ShedRecords counts state evicted under the Shed policy,
	// PeakStateRecords is the job-wide state high-water mark, and
	// PeakHeapBytes the peak live heap seen by the memory admission
	// controller (0 when it never ran).
	ShedRecords      int64
	PeakStateRecords int64
	PeakHeapBytes    int64
	// RecallEstimate is the guaranteed lower bound on achieved recall
	// (1 when nothing was shed); RecallLostBound the accumulated upper
	// bound on matches evicted state could still have produced.
	RecallEstimate  float64
	RecallLostBound float64
	// QualityActions lists the decisions the RunSpec.Quality controller
	// took, in order (empty without quality demands).
	QualityActions []string
	// CkptP50/CkptP99 are checkpoint wall-clock duration percentiles over
	// the per-checkpoint series (populated when checkpoints completed).
	CkptP50 time.Duration
	CkptP99 time.Duration
	// Trace is the end-to-end latency breakdown of the sampled traces
	// (populated when TraceRate > 0): queue/processing/network time and
	// per-trace end-to-end percentiles.
	Trace trace.Summary
}

func (r RunResult) String() string {
	status := fmt.Sprintf("%.0f tpl/s, %d matches (%d unique, σo=%.5f%%), lat avg %v",
		r.ThroughputTps, r.Matches, r.Unique, r.SelectivityPct, r.AvgLatency.Round(time.Microsecond))
	if r.Failed {
		status = "FAILED: " + r.Err.Error()
	}
	return fmt.Sprintf("%-28s %-14s %s", r.Name, r.Approach, status)
}

// Run executes one specification to completion and measures it.
func Run(ctx context.Context, spec RunSpec) RunResult {
	res := RunResult{Name: spec.Name, Approach: spec.Approach.Name}
	for _, evs := range spec.Data {
		res.Events += int64(len(evs))
	}
	if spec.Quality.Enabled() && spec.RestartPolicy != nil {
		res.Failed, res.Err = true, fmt.Errorf("harness: quality demands drive the unsupervised execution path; drop RestartPolicy")
		return res
	}

	var plan *core.Plan
	var err error
	if spec.Approach.FCEP {
		plan, err = core.TranslateFCEP(spec.Pattern, spec.Approach.Opts)
	} else {
		plan, err = core.Translate(spec.Pattern, spec.Approach.Opts)
	}
	if err != nil {
		res.Failed, res.Err = true, err
		return res
	}

	engineCfg := spec.Engine
	engineCfg.Metrics = spec.Metrics
	engineCfg.Chaos = spec.Chaos
	engineCfg.ShutdownTimeout = spec.StopTimeout
	tracer := trace.New(spec.TraceRate, 0)
	if engineCfg.Trace == nil {
		engineCfg.Trace = tracer
	} else {
		tracer = engineCfg.Trace
	}
	if engineCfg.Log == nil {
		engineCfg.Log = spec.Log
	}
	if spec.CheckpointInterval > 0 {
		store := spec.CheckpointStore
		if store == nil {
			store = checkpoint.NewMemStore()
		}
		engineCfg.Checkpoint = &asp.CheckpointSpec{Store: store, Interval: spec.CheckpointInterval}
	}
	bc := core.BuildConfig{
		Engine:           engineCfg,
		Data:             spec.Data,
		StampIngest:      true,
		DedupSink:        true,
		KeepMatches:      spec.KeepMatches,
		SourceRatePerSec: spec.SourceRatePerSec,
	}

	// curEnv/curSink track the executing attempt: supervised restarts
	// rebuild both, and the sampler and post-run accounting must follow.
	var curEnv atomic.Pointer[asp.Environment]
	var curSink atomic.Pointer[asp.Results]
	bind := func(env *asp.Environment, sink *asp.Results) {
		curEnv.Store(env)
		curSink.Store(sink)
		if spec.Metrics != nil {
			// Export the sink's detection-latency histogram alongside the
			// per-operator series (named histograms survive the graph reset
			// Execute performs when it attaches, and re-registering under
			// the same name replaces the previous attempt's histogram).
			spec.Metrics.RegisterHistogram("sink_detection_latency", sink.LatencyHistogram())
		}
	}

	var sampler *metrics.Sampler
	if spec.SampleResources {
		sampler = metrics.NewSampler(spec.SamplePeriod)
		sampler.StateFn = func() int64 {
			if env := curEnv.Load(); env != nil {
				return env.StateSize()
			}
			return 0
		}
		if spec.CheckpointInterval > 0 {
			sampler.CheckpointCountFn = func() int64 {
				if env := curEnv.Load(); env != nil {
					return env.CompletedCheckpoints()
				}
				return 0
			}
		}
		if spec.Metrics != nil {
			sampler.ObsFn = spec.Metrics.Snapshot
		}
		sampler.Start()
	}

	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}

	start := time.Now()
	var execErr error
	if spec.RestartPolicy != nil {
		run, err := core.RunSupervised(ctx, []*core.Plan{plan}, bc, core.SuperviseConfig{
			Policy: *spec.RestartPolicy,
			OnAttempt: func(_ int, env *asp.Environment, results []*asp.Results) {
				bind(env, results[0])
			},
		})
		execErr = err
		res.Restarts = run.Restarts
		res.DeadLetters = run.DLQ.Depth()
	} else {
		env, sink, err := core.Build(plan, bc)
		if err != nil {
			res.Failed, res.Err = true, err
			if sampler != nil {
				sampler.Stop()
			}
			return res
		}
		bind(env, sink)
		var qc *overload.QualityController
		if spec.Quality.Enabled() {
			probe, act := env.QualityHooks(func() time.Duration { return sink.LatencyQuantile(0.99) })
			c, qerr := overload.NewQualityController(spec.Quality, engineCfg.Overload, probe, act)
			if qerr != nil {
				res.Failed, res.Err = true, qerr
				if sampler != nil {
					sampler.Stop()
				}
				return res
			}
			c.Start(0)
			qc = c
		}
		execErr = env.Execute(ctx)
		if qc != nil {
			qc.Stop()
			res.QualityActions = qc.Actions()
		}
	}
	res.Elapsed = time.Since(start)
	env, sink := curEnv.Load(), curSink.Load()
	if env == nil || sink == nil {
		// Supervised build failed before any attempt ran.
		res.Failed, res.Err = true, execErr
		if sampler != nil {
			sampler.Stop()
		}
		return res
	}

	if spec.CheckpointInterval > 0 {
		for _, st := range env.CheckpointStats() {
			res.Checkpoints++
			if st.Bytes > res.CheckpointBytes {
				res.CheckpointBytes = st.Bytes
			}
			if st.AlignPause > res.CheckpointPause {
				res.CheckpointPause = st.AlignPause
			}
			res.CheckpointSeries = append(res.CheckpointSeries, metrics.CheckpointPoint{
				ID:         st.ID,
				At:         st.CompletedAt.Sub(start),
				Duration:   st.Duration,
				AlignPause: st.AlignPause,
				Bytes:      st.Bytes,
			})
		}
		if sampler != nil {
			sampler.RecordCheckpoints(res.CheckpointSeries)
		}
		res.CkptP50, res.CkptP99 = ckptPercentiles(res.CheckpointSeries)
	}
	if sampler != nil {
		res.Resources = sampler.Stop()
	}
	if spec.Metrics != nil {
		snap := spec.Metrics.Snapshot()
		res.Operators = snap.Operators
		res.OperatorEdges = snap.Edges
	}
	if tracer != nil {
		res.Trace = tracer.Summarize()
		if spec.TraceOut != "" {
			if werr := tracer.WriteFile(spec.TraceOut); werr != nil && spec.Log != nil {
				spec.Log.Warn("harness: trace export failed", "path", spec.TraceOut, "err", werr)
			}
		}
	}
	res.ShedRecords = env.ShedRecords()
	res.PeakStateRecords = env.PeakStateRecords()
	res.PeakHeapBytes = env.PeakHeapBytes()
	// The recall estimate uses the sink's deduped count so duplicates from
	// overlapping windows never inflate it (lower bound stays sound).
	res.RecallLostBound = env.LostMatchBound()
	res.RecallEstimate = overload.RecallEstimate(sink.Unique(), res.RecallLostBound)
	if execErr != nil {
		res.Failed = true
		res.Err = execErr
		if errors.Is(execErr, asp.ErrStateBudget) {
			res.Err = fmt.Errorf("memory exhaustion analogue: %w", execErr)
		}
		return res
	}

	if res.Elapsed > 0 {
		res.ThroughputTps = float64(res.Events) / res.Elapsed.Seconds()
	}
	res.Matches = sink.Total()
	res.Unique = sink.Unique()
	if res.Events > 0 {
		res.SelectivityPct = float64(res.Unique) / float64(res.Events) * 100
	}
	res.AvgLatency = sink.AvgLatency()
	res.MaxLatency = sink.MaxLatency()
	res.P50Latency, res.P90Latency, res.P99Latency = sink.LatencyPercentiles()
	return res
}

// ckptPercentiles computes wall-clock duration percentiles over a
// per-checkpoint series.
func ckptPercentiles(series []metrics.CheckpointPoint) (p50, p99 time.Duration) {
	if len(series) == 0 {
		return 0, 0
	}
	durs := make([]time.Duration, len(series))
	for i, pt := range series {
		durs[i] = pt.Duration
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	quant := func(q float64) time.Duration {
		return durs[int(q*float64(len(durs)-1))]
	}
	return quant(0.50), quant(0.99)
}
