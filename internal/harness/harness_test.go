package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"cep2asp/internal/workload"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale {
	return Scale{
		QnVSensors: 5, QnVMinutes: 60,
		AQSensors: 5, AQMinutes: 60,
		Slots: 2, StateBudget: 1_000_000, Seed: 42,
		Timeout: time.Minute,
	}
}

func TestRunSEQ1BothApproaches(t *testing.T) {
	sc := tinyScale()
	qnv := sc.qnvData()
	pat := PatternSEQ1(0.2, 15)
	fcep := sc.run(context.Background(), "t", pat, FCEP, qnv)
	fasp := sc.run(context.Background(), "t", pat, FASP, qnv)
	for _, r := range []RunResult{fcep, fasp} {
		if r.Failed {
			t.Fatalf("%s failed: %v", r.Approach, r.Err)
		}
		if r.Events != int64(2*sc.QnVSensors*sc.QnVMinutes) {
			t.Fatalf("%s events = %d", r.Approach, r.Events)
		}
		if r.ThroughputTps <= 0 {
			t.Fatalf("%s throughput = %f", r.Approach, r.ThroughputTps)
		}
		if r.AvgLatency <= 0 {
			t.Fatalf("%s latency = %v", r.Approach, r.AvgLatency)
		}
	}
	// Semantic equivalence: same unique match count.
	if fcep.Unique != fasp.Unique {
		t.Fatalf("unique matches differ: FCEP %d vs FASP %d", fcep.Unique, fasp.Unique)
	}
	if fasp.Unique == 0 {
		t.Fatal("expected some matches at 20% filter fraction")
	}
}

func TestRunAllApproachesAgreeOnITER(t *testing.T) {
	sc := tinyScale()
	data := only(sc.qnvData(), workload.TypeVelocity)
	pat := PatternITER(3, 0.3, 10, true, false)
	var uniques []int64
	for _, a := range []Approach{FCEP, FASP, FASPO1} {
		r := sc.run(context.Background(), "t", pat, a, data)
		if r.Failed {
			t.Fatalf("%s failed: %v", a.Name, r.Err)
		}
		uniques = append(uniques, r.Unique)
	}
	if uniques[0] != uniques[1] || uniques[1] != uniques[2] {
		t.Fatalf("unique counts disagree: %v", uniques)
	}
	// O2 is approximate: one output per qualifying window, not per combo.
	r := sc.run(context.Background(), "t", pat, FASPO2, data)
	if r.Failed {
		t.Fatalf("O2 failed: %v", r.Err)
	}
}

func TestRunNSEQAgree(t *testing.T) {
	sc := tinyScale()
	data := mergedData(sc.qnvData(), only(sc.aqData(), workload.TypePM10))
	pat := PatternNSEQ1(0.3, 15)
	fcep := sc.run(context.Background(), "t", pat, FCEP, data)
	fasp := sc.run(context.Background(), "t", pat, FASP, data)
	if fcep.Failed || fasp.Failed {
		t.Fatalf("failures: %v / %v", fcep.Err, fasp.Err)
	}
	if fcep.Unique != fasp.Unique {
		t.Fatalf("NSEQ unique matches differ: FCEP %d vs FASP %d", fcep.Unique, fasp.Unique)
	}
}

func TestKeyedApproachesAgree(t *testing.T) {
	sc := tinyScale()
	qnv := sc.qnvData()
	data := mergedData(qnv, only(sc.aqData(), workload.TypePM10))
	pat := PatternSEQ7(0.4, 15)
	var uniques []int64
	for _, a := range []Approach{WithO3(FCEP, 4), WithO3(FASP, 4), WithO3(FASPO1, 4)} {
		r := sc.run(context.Background(), "t", pat, a, data)
		if r.Failed {
			t.Fatalf("%s failed: %v", a.Name, r.Err)
		}
		uniques = append(uniques, r.Unique)
	}
	if uniques[0] != uniques[1] || uniques[1] != uniques[2] {
		t.Fatalf("keyed unique counts disagree: %v", uniques)
	}
}

func TestStateBudgetFailureReported(t *testing.T) {
	sc := tinyScale()
	sc.StateBudget = 50 // absurdly small: every stateful run must fail
	qnv := sc.qnvData()
	r := sc.run(context.Background(), "t", PatternSEQ1(0.5, 60), FCEP, qnv)
	if !r.Failed {
		t.Fatal("expected state-budget failure")
	}
	if r.Err == nil || !strings.Contains(r.Err.Error(), "state") {
		t.Fatalf("unexpected error: %v", r.Err)
	}
}

func TestTable2Support(t *testing.T) {
	table := Table2Support()
	for _, want := range []string{"AND", "SEQ", "OR", "ITER", "NSEQ"} {
		if !strings.Contains(table, want) {
			t.Fatalf("Table 2 missing %s:\n%s", want, table)
		}
	}
	// FCEP must reject AND and OR, FASP must support everything.
	lines := strings.Split(table, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "AND") || strings.HasPrefix(l, "OR") {
			if !strings.Contains(l, "✗") {
				t.Fatalf("FCEP should not support %q", l)
			}
		}
		if strings.HasPrefix(l, "SEQ") || strings.HasPrefix(l, "ITER") || strings.HasPrefix(l, "NSEQ") {
			if strings.Contains(l, "✗") {
				t.Fatalf("unexpected unsupported entry: %q", l)
			}
		}
	}
}

func TestWorkloadGenerators(t *testing.T) {
	q, v := workload.QnV(workload.QnVConfig{Sensors: 3, Minutes: 10, Seed: 7})
	if len(q) != 30 || len(v) != 30 {
		t.Fatalf("QnV sizes = %d/%d, want 30/30", len(q), len(v))
	}
	st := workload.Describe(q)
	if st.Sensors != 3 {
		t.Fatalf("sensors = %d, want 3", st.Sensors)
	}
	// Determinism.
	q2, _ := workload.QnV(workload.QnVConfig{Sensors: 3, Minutes: 10, Seed: 7})
	for i := range q {
		if q[i] != q2[i] {
			t.Fatal("QnV not deterministic")
		}
	}
	// Time order.
	for i := 1; i < len(q); i++ {
		if q[i-1].TS > q[i].TS {
			t.Fatal("QnV stream not time-ordered")
		}
	}
	pm10, pm25, temp, hum := workload.AirQuality(workload.AQConfig{Sensors: 3, Minutes: 60, Seed: 7})
	for _, s := range [][]int{{len(pm10)}, {len(pm25)}, {len(temp)}, {len(hum)}} {
		if s[0] == 0 {
			t.Fatal("empty AQ stream")
		}
	}
	// Inter-arrival 3-5 minutes per sensor.
	perSensor := map[int64][]int64{}
	for _, e := range pm10 {
		perSensor[e.ID] = append(perSensor[e.ID], e.TS)
	}
	for id, tss := range perSensor {
		for i := 1; i < len(tss); i++ {
			gap := tss[i] - tss[i-1]
			if gap < 3*60000 || gap > 5*60000 {
				t.Fatalf("sensor %d inter-arrival %d out of [3,5] minutes", id, gap)
			}
		}
	}
}

func TestFig3aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled experiment")
	}
	sc := tinyScale()
	rows := Fig3aBaseline(context.Background(), sc)
	if len(rows) != 10 {
		t.Fatalf("fig3a rows = %d, want 10", len(rows))
	}
	byKey := map[string]RunResult{}
	for _, r := range rows {
		if r.Failed {
			t.Fatalf("%s/%s failed: %v", r.Name, r.Approach, r.Err)
		}
		byKey[r.Name+"/"+r.Approach] = r
	}
	// Semantic equivalence within each pattern (O2 excluded: approximate).
	for _, pat := range []string{"fig3a/SEQ1", "fig3a/ITER3_1", "fig3a/NSEQ1"} {
		fcep, fasp := byKey[pat+"/FCEP"], byKey[pat+"/FASP"]
		if fcep.Unique != fasp.Unique {
			t.Errorf("%s: unique FCEP %d != FASP %d", pat, fcep.Unique, fasp.Unique)
		}
		o1 := byKey[pat+"/FASP-O1"]
		if o1.Unique != fasp.Unique {
			t.Errorf("%s: unique O1 %d != FASP %d", pat, o1.Unique, fasp.Unique)
		}
	}
}

func TestLatencyAtSustainableRate(t *testing.T) {
	sc := tinyScale()
	rows := LatencyAtSustainableRate(context.Background(), sc, 0.5)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 approaches x full+throttled)", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		full, throttled := rows[i], rows[i+1]
		if full.Failed || throttled.Failed {
			t.Fatalf("latency runs failed: %v / %v", full.Err, throttled.Err)
		}
		if throttled.Unique != full.Unique {
			t.Fatalf("%s: throttling changed results: %d vs %d", full.Approach, throttled.Unique, full.Unique)
		}
		// The throttled run must actually be slower than full speed.
		if throttled.ThroughputTps >= full.ThroughputTps {
			t.Fatalf("%s: throttled %.0f >= full %.0f tpl/s", full.Approach, throttled.ThroughputTps, full.ThroughputTps)
		}
	}
}
