// Package exchange is the distributed execution layer: it moves the
// engine's []Record batches — events, composite matches, watermarks,
// checkpoint barriers and EOS markers — between worker processes over TCP,
// assigns graph instances to workers, and drives distributed job start,
// checkpointing and recovery. The asp engine stays network-free: it sees
// the exchange only through the asp.Transport interface.
package exchange

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
)

// frameVersion is bumped on any change to the frame or record layout; a
// decoder refuses frames of an unknown version instead of misreading them.
// Version 2 added the optional per-record trace context (kindTraceFlag);
// version 3 added the CRC32-C checksum and the per-connection-stream frame
// sequence number, the integrity layer of the network fault tolerance
// design (corrupted frames are rejected, lost or duplicated frames show up
// as sequence gaps at the receiver). v1/v2 frames still decode.
const (
	frameVersion   = 3
	frameVersionV2 = 2
	frameVersionV1 = 1
)

// castagnoli is the CRC32-C polynomial table (the iSCSI/ext4 checksum,
// hardware-accelerated on amd64/arm64). The checksum covers everything
// after the crc field itself, so any bit flip in seq, addressing or records
// is caught before the payload is interpreted.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// kindTraceFlag marks a record whose kind byte is followed (after the ts
// varint) by a uvarint trace timestamp (asp.Record.TraceNs). Record kinds
// occupy the low bits; the flag rides the top bit so v1 decoders would have
// rejected rather than misread it.
const kindTraceFlag = 0x80

// TypeTable translates event types between their process-local registry
// values and stable wire identifiers. Type registries grow in registration
// order, so two processes generally disagree about the numeric value of
// "QnVQuantity"; the job spec's stream list fixes a canonical order, and
// the wire carries the index into it (1-based; 0 is reserved).
type TypeTable struct {
	toWire  map[event.Type]uint64
	toLocal []event.Type // index = wire id - 1
}

// NewTypeTable builds the table for the given canonical stream type names,
// registering each name in the process-local registry (idempotently).
func NewTypeTable(names []string) *TypeTable {
	t := &TypeTable{
		toWire:  make(map[event.Type]uint64, len(names)),
		toLocal: make([]event.Type, len(names)),
	}
	for i, name := range names {
		lt := event.RegisterType(name)
		t.toWire[lt] = uint64(i + 1)
		t.toLocal[i] = lt
	}
	return t
}

// Frame layout (data plane), after the 4-byte little-endian length prefix:
//
//	version  1 byte
//	crc32c   4 bytes LE — v3+ only: CRC32-C over every following byte
//	seq      uvarint    — v3+ only: frame sequence number, continuous per
//	                      sender/peer stream across reconnects, so the
//	                      receiver can tell a healed reset (seq continues)
//	                      from in-flight loss or duplication (seq jumps)
//	nodeID   uvarint   — graph node of the receiving instance
//	target   uvarint   — instance index within the node
//	count    uvarint   — records in the batch
//	records  count × record
//
// Record layout:
//
//	kind     1 byte    — asp.RecordKind; top bit = kindTraceFlag (v2+)
//	port     1 byte
//	src      uvarint   — sender ID for watermark merging
//	ts       varint    — record timestamp (watermark time / barrier ID)
//	tracens  uvarint   — only when kindTraceFlag is set: trace handoff
//	                     timestamp (UnixNano), non-zero iff sampled
//	body     kind-dependent:
//	           KindEvent:  1 event (timestamps delta-coded against ts)
//	           KindMatch:  uvarint n, then n constituent events
//	           KindWatermark / KindEOS / KindBarrier: empty
//
// Event layout: type uvarint (wire id), ts varint (delta from base), id
// varint, lat/lon/value 8-byte LE float bits, ingest varint, auxts varint
// (delta from base).

// AppendFrame encodes one batch addressed to (nodeID, target) with the
// given stream sequence number and appends the complete frame — length
// prefix, checksum included — to dst.
func AppendFrame(dst []byte, table *TypeTable, seq uint64, nodeID, target int, batch []asp.Record) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	dst = append(dst, frameVersion)
	dst = append(dst, 0, 0, 0, 0) // crc32c back-patched below
	body := len(dst)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(nodeID))
	dst = binary.AppendUvarint(dst, uint64(target))
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		var err error
		dst, err = appendRecord(dst, table, &batch[i])
		if err != nil {
			return nil, err
		}
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	binary.LittleEndian.PutUint32(dst[start+5:], crc32.Checksum(dst[body:], castagnoli))
	return dst, nil
}

func appendRecord(dst []byte, table *TypeTable, r *asp.Record) ([]byte, error) {
	kind := byte(r.Kind)
	if r.TraceNs != 0 {
		kind |= kindTraceFlag
	}
	dst = append(dst, kind, r.Port)
	dst = binary.AppendUvarint(dst, uint64(r.Src))
	dst = binary.AppendVarint(dst, int64(r.TS))
	if r.TraceNs != 0 {
		dst = binary.AppendUvarint(dst, uint64(r.TraceNs))
	}
	switch r.Kind {
	case asp.KindEvent:
		return appendEvent(dst, table, r.Event, r.TS)
	case asp.KindMatch:
		dst = binary.AppendUvarint(dst, uint64(len(r.Match.Events)))
		for _, e := range r.Match.Events {
			var err error
			dst, err = appendEvent(dst, table, e, r.TS)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	case asp.KindWatermark, asp.KindEOS, asp.KindBarrier:
		return dst, nil
	}
	return nil, fmt.Errorf("exchange: cannot encode record kind %d", r.Kind)
}

func appendEvent(dst []byte, table *TypeTable, e event.Event, base event.Time) ([]byte, error) {
	wire, ok := table.toWire[e.Type]
	if !ok {
		return nil, fmt.Errorf("exchange: event type %s is not in the job's stream list", event.TypeName(e.Type))
	}
	dst = binary.AppendUvarint(dst, wire)
	dst = binary.AppendVarint(dst, int64(e.TS-base))
	dst = binary.AppendVarint(dst, e.ID)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Lat))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Lon))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Value))
	dst = binary.AppendVarint(dst, e.Ingest)
	dst = binary.AppendVarint(dst, int64(e.AuxTS-base))
	return dst, nil
}

// decoder walks one frame payload (everything after the length prefix).
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("exchange: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("frame truncated at byte %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("frame truncated at byte %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) event(table *TypeTable, base event.Time) event.Event {
	var e event.Event
	wire := d.uvarint()
	if d.err == nil {
		if wire == 0 || wire > uint64(len(table.toLocal)) {
			d.fail("unknown wire type id %d", wire)
		} else {
			e.Type = table.toLocal[wire-1]
		}
	}
	e.TS = base + event.Time(d.varint())
	e.ID = d.varint()
	e.Lat = d.float()
	e.Lon = d.float()
	e.Value = d.float()
	e.Ingest = d.varint()
	e.AuxTS = base + event.Time(d.varint())
	return e
}

// maxFrameRecords bounds the decoded batch size, protecting the receiver
// from a corrupt or hostile count field before any allocation happens.
const maxFrameRecords = 1 << 20

// FrameHeader is the addressing and integrity metadata of one decoded
// frame. HasSeq is false for v1/v2 frames, which predate sequence numbers;
// receivers skip stream-continuity checks for them.
type FrameHeader struct {
	NodeID, Target int
	Seq            uint64
	HasSeq         bool
}

// DecodeFrame decodes one frame payload (after the length prefix) into its
// header and record batch, verifying the v3 checksum first. The batch is
// freshly allocated; receivers recycle it through the engine's batch pool.
func DecodeFrame(payload []byte, table *TypeTable) (hdr FrameHeader, batch []asp.Record, err error) {
	d := &decoder{buf: payload}
	version := d.byte()
	if d.err == nil {
		switch version {
		case frameVersion:
			if len(payload) < 5 {
				return hdr, nil, fmt.Errorf("exchange: v3 frame truncated before checksum")
			}
			want := binary.LittleEndian.Uint32(payload[1:5])
			if got := crc32.Checksum(payload[5:], castagnoli); got != want {
				return hdr, nil, fmt.Errorf("exchange: frame checksum mismatch: crc32c %08x, frame claims %08x — payload corrupted on the wire", got, want)
			}
			d.off = 5
			hdr.Seq = d.uvarint()
			hdr.HasSeq = true
		case frameVersionV1, frameVersionV2:
			// Pre-checksum frames: decode on trust, as their senders did.
		default:
			return hdr, nil, fmt.Errorf("exchange: frame version %d, want %d..%d", version, frameVersionV1, frameVersion)
		}
	}
	hdr.NodeID = int(d.uvarint())
	hdr.Target = int(d.uvarint())
	count := d.uvarint()
	if d.err == nil && count > maxFrameRecords {
		d.fail("frame claims %d records", count)
	}
	if d.err != nil {
		return hdr, nil, d.err
	}
	batch = make([]asp.Record, 0, count)
	for i := uint64(0); i < count && d.err == nil; i++ {
		var r asp.Record
		kind := d.byte()
		traced := version >= frameVersionV2 && kind&kindTraceFlag != 0
		r.Kind = asp.RecordKind(kind &^ kindTraceFlag)
		if d.err == nil && version == frameVersionV1 && kind&kindTraceFlag != 0 {
			// v1 never set the flag bit; an unknown high bit is corruption.
			d.fail("unknown record kind %d in v1 frame", kind)
		}
		r.Port = d.byte()
		r.Src = uint16(d.uvarint())
		r.TS = event.Time(d.varint())
		if traced {
			r.TraceNs = int64(d.uvarint())
		}
		switch r.Kind {
		case asp.KindEvent:
			r.Event = d.event(table, r.TS)
		case asp.KindMatch:
			n := d.uvarint()
			if d.err == nil && n > maxFrameRecords {
				d.fail("match claims %d constituents", n)
				break
			}
			events := make([]event.Event, 0, n)
			for j := uint64(0); j < n && d.err == nil; j++ {
				events = append(events, d.event(table, r.TS))
			}
			if d.err == nil {
				r.Match = event.WrapMatch(events)
			}
		case asp.KindWatermark, asp.KindEOS, asp.KindBarrier:
		default:
			d.fail("unknown record kind %d", r.Kind)
		}
		if d.err == nil {
			batch = append(batch, r)
		}
	}
	if d.err != nil {
		return hdr, nil, d.err
	}
	if d.off != len(payload) {
		return hdr, nil, fmt.Errorf("exchange: %d trailing bytes after frame", len(payload)-d.off)
	}
	return hdr, batch, nil
}
