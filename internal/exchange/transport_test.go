package exchange

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"cep2asp/internal/asp"
)

// TestTransportBidirectional wires two transports through their data
// listeners and proves frames flow both ways.
func TestTransportBidirectional(t *testing.T) {
	table := testTable()
	ctx := context.Background()

	dl0, err := newDataListener("")
	if err != nil {
		t.Fatal(err)
	}
	defer dl0.Close()
	dl1, err := newDataListener("")
	if err != nil {
		t.Fatal(err)
	}
	defer dl1.Close()

	t0 := newTransport(ctx, transportCfg{me: 0, table: table, net: defaultNetConfig()})
	t1 := newTransport(ctx, transportCfg{me: 1, table: table, net: defaultNetConfig()})
	defer t0.Close()
	defer t1.Close()

	ch0 := make(chan []asp.Record, 4)
	ch1 := make(chan []asp.Record, 4)
	var q0, q1 atomic.Int64
	t0.Ingress("sink", 5, 0, ch0, &q0)
	t1.Ingress("join", 3, 1, ch1, &q1)

	dl0.setCurrent(t0)
	dl1.setCurrent(t1)

	addrs := map[int]string{0: dl0.Addr(), 1: dl1.Addr()}
	if err := t0.Dial(addrs, time.Second); err != nil {
		t.Fatalf("t0 dial: %v", err)
	}
	if err := t1.Dial(addrs, time.Second); err != nil {
		t.Fatalf("t1 dial: %v", err)
	}

	send01, err := t0.Egress(1, "join", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	send10, err := t1.Egress(0, "sink", 5, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := send01([]asp.Record{{Kind: asp.KindEOS, Src: 7}}); err != nil {
		t.Fatalf("send 0->1: %v", err)
	}
	if err := send10([]asp.Record{{Kind: asp.KindWatermark, TS: 42, Src: 9}}); err != nil {
		t.Fatalf("send 1->0: %v", err)
	}

	select {
	case b := <-ch1:
		if len(b) != 1 || b[0].Kind != asp.KindEOS || b[0].Src != 7 {
			t.Fatalf("0->1 corrupted: %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("0->1 frame never arrived")
	}
	select {
	case b := <-ch0:
		if len(b) != 1 || b[0].Kind != asp.KindWatermark || b[0].TS != 42 {
			t.Fatalf("1->0 corrupted: %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("1->0 frame never arrived")
	}
}
