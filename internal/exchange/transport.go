package exchange

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/obs"
	"cep2asp/internal/trace"
)

// dataMagic opens every data-plane connection, followed by the dialing
// worker's index (u32 LE) and the attempt number (u32 LE). The receiver
// routes the connection to the transport of the matching attempt, or
// closes it (stale attempt, dead job).
var dataMagic = [4]byte{'c', '2', 'a', frameVersion}

// defaultDialTimeout bounds each peer dial; an unreachable peer yields a
// structured DialError instead of a hang.
const defaultDialTimeout = 5 * time.Second

// DialError reports one unreachable peer at connect time.
type DialError struct {
	Worker int
	Addr   string
	Err    error
}

func (e *DialError) Error() string {
	return fmt.Sprintf("exchange: dialing worker %d at %s: %v", e.Worker, e.Addr, e.Err)
}

func (e *DialError) Unwrap() error { return e.Err }

// Transport is one attempt's data-plane endpoint in one process: the
// outbound connections to every peer worker, the inbound connections
// routed to it by the process's data listener, and the ingress
// registrations of locally-owned operator instances. It implements
// asp.Transport.
type Transport struct {
	me      int
	attempt int
	table   *TypeTable
	ctx     context.Context
	cancel  context.CancelFunc
	reg     *obs.Registry
	// tracer records a network-hop span per traced record arriving from a
	// peer; nil when tracing is off.
	tracer *trace.Tracer

	mu       sync.Mutex
	cond     *sync.Cond // signals ingress registrations and Close
	out      map[int]*dataConn
	ingress  map[ikey]ingressReg
	accepted []net.Conn
	closed   bool
}

type ikey struct{ node, target int }

type ingressReg struct {
	ch     chan<- []asp.Record
	queued *atomic.Int64
}

// dataConn is one outbound connection; concurrent egress pumps to the same
// peer serialize on the mutex and share the encode buffer.
type dataConn struct {
	mu  sync.Mutex
	c   net.Conn
	buf []byte
	nm  *obs.NetMetrics
}

func newTransport(parent context.Context, me, attempt int, table *TypeTable, reg *obs.Registry, tracer *trace.Tracer) *Transport {
	ctx, cancel := context.WithCancel(parent)
	t := &Transport{
		me: me, attempt: attempt, table: table, ctx: ctx, cancel: cancel, reg: reg, tracer: tracer,
		out:     make(map[int]*dataConn),
		ingress: make(map[ikey]ingressReg),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Dial connects to every listed peer (worker index → data address),
// performing the attempt handshake. Each dial is bounded by timeout and
// the transport's context; the first unreachable peer aborts with a
// DialError.
func (t *Transport) Dial(addrs map[int]string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = defaultDialTimeout
	}
	var d net.Dialer
	for w, addr := range addrs {
		if w == t.me {
			continue
		}
		dialCtx, cancel := context.WithTimeout(t.ctx, timeout)
		c, err := d.DialContext(dialCtx, "tcp", addr)
		cancel()
		if err != nil {
			return &DialError{Worker: w, Addr: addr, Err: err}
		}
		var hs [12]byte
		copy(hs[:4], dataMagic[:])
		binary.LittleEndian.PutUint32(hs[4:], uint32(t.me))
		binary.LittleEndian.PutUint32(hs[8:], uint32(t.attempt))
		c.SetWriteDeadline(time.Now().Add(timeout))
		if _, err := c.Write(hs[:]); err != nil {
			c.Close()
			return &DialError{Worker: w, Addr: addr, Err: err}
		}
		c.SetWriteDeadline(time.Time{})
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return fmt.Errorf("exchange: transport closed during dial")
		}
		t.out[w] = &dataConn{c: c, nm: t.reg.Net(fmt.Sprintf("w%d", w))}
		t.mu.Unlock()
	}
	return nil
}

// Ingress implements asp.Transport: frames addressed to (nodeID, target)
// are decoded and delivered into ch.
func (t *Transport) Ingress(node string, nodeID, target int, ch chan<- []asp.Record, queued *atomic.Int64) {
	t.mu.Lock()
	t.ingress[ikey{nodeID, target}] = ingressReg{ch: ch, queued: queued}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// waitIngress blocks until (nodeID, target) registers or the transport
// closes. Peers start pumping frames the moment their own Execute starts,
// which can be before this process's Execute has reached the wiring step
// that registers ingress channels — the frames must wait, not be dropped.
// Placement is a pure function over an identical graph, so an instance a
// frame addresses is guaranteed to register here (a frame that never
// matches would mean divergent placement, and the job hangs loudly at its
// timeout rather than losing data silently).
func (t *Transport) waitIngress(k ikey) (ingressReg, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if reg, ok := t.ingress[k]; ok {
			return reg, true
		}
		if t.closed {
			return ingressReg{}, false
		}
		t.cond.Wait()
	}
}

// Egress implements asp.Transport: it returns the batch-transfer function
// for the remote instance (nodeID, target) on worker owner.
func (t *Transport) Egress(owner int, node string, nodeID, target int) (func(batch []asp.Record) error, error) {
	t.mu.Lock()
	dc := t.out[owner]
	t.mu.Unlock()
	if dc == nil {
		return nil, fmt.Errorf("exchange: not connected to worker %d (needed for %s/%d)", owner, node, target)
	}
	return func(batch []asp.Record) error {
		dc.mu.Lock()
		defer dc.mu.Unlock()
		buf, err := AppendFrame(dc.buf[:0], t.table, nodeID, target, batch)
		if err != nil {
			return err
		}
		dc.buf = buf[:0] // keep the grown buffer for the next frame
		if _, err := dc.c.Write(buf); err != nil {
			return err
		}
		dc.nm.SentFrame(len(buf))
		return nil
	}, nil
}

// accept adopts one inbound peer connection (handshake already consumed)
// and serves its frames until EOF, error, or transport shutdown.
func (t *Transport) accept(from int, c net.Conn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	t.accepted = append(t.accepted, c)
	t.mu.Unlock()
	go t.serve(from, c)
}

// maxFrameBytes bounds a single frame; larger length prefixes indicate
// corruption. Generous: a full batch of worst-case matches stays far below.
const maxFrameBytes = 64 << 20

func (t *Transport) serve(from int, c net.Conn) {
	defer c.Close()
	nm := t.reg.Net(fmt.Sprintf("w%d", from))
	var lenBuf [4]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return // peer done, peer dead, or our own Close
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrameBytes {
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(c, payload); err != nil {
			return
		}
		nm.RecvFrame(int(n) + 4)
		nodeID, target, batch, err := DecodeFrame(payload, t.table)
		if err != nil {
			return
		}
		if t.tracer != nil {
			t.traceArrivals(from, batch)
		}
		reg, ok := t.waitIngress(ikey{nodeID, target})
		if !ok {
			return // transport closed while waiting
		}
		// Blocking delivery into the instance's bounded input channel:
		// a full channel stalls this connection's reads, extending the
		// engine's backpressure over the network (with the usual aligned-
		// checkpoint caveat that distinct logical edges multiplexed on one
		// TCP connection share head-of-line blocking).
		select {
		case reg.ch <- batch:
			if reg.queued != nil {
				reg.queued.Add(int64(len(batch)))
			}
		case <-t.ctx.Done():
			return
		}
	}
}

// traceArrivals records one network-hop span per traced data record in an
// inbound batch: the sender's emit timestamp to local arrival, covering
// upstream batching, the wire, and decode. The handoff timestamp is then
// reset to the arrival time so the receiving instance's queue span measures
// only local queueing. Barrier records keep their original stamp — their
// propagation latency is measured end-to-end at the aligning instance.
func (t *Transport) traceArrivals(from int, batch []asp.Record) {
	now := time.Now().UnixNano()
	name := fmt.Sprintf("net:w%d>w%d", from, t.me)
	for i := range batch {
		r := &batch[i]
		if r.TraceNs == 0 || (r.Kind != asp.KindEvent && r.Kind != asp.KindMatch) {
			continue
		}
		d := now - r.TraceNs
		if d < 0 {
			d = 0 // clock skew between workers; keep the span well-formed
		}
		var id uint64
		if r.Kind == asp.KindMatch {
			id = trace.MatchID(r.Match.Events)
		} else {
			id = trace.ID(r.Event)
		}
		t.tracer.Add(trace.Span{
			Trace: id, Kind: trace.KindNet, Name: name,
			Instance: from, StartNs: r.TraceNs, DurNs: d,
		})
		r.TraceNs = now
	}
}

// Close severs every connection of this attempt and stops ingress
// deliveries. Idempotent.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	outs := make([]*dataConn, 0, len(t.out))
	for _, dc := range t.out {
		outs = append(outs, dc)
	}
	ins := append([]net.Conn(nil), t.accepted...)
	t.cond.Broadcast()
	t.mu.Unlock()
	t.cancel()
	for _, dc := range outs {
		dc.c.Close()
	}
	for _, c := range ins {
		c.Close()
	}
}

// dataListener is one process's persistent data-plane listener: it owns
// the TCP listen socket across attempts and routes each accepted peer
// connection — identified by the handshake's attempt tag — to the current
// transport.
type dataListener struct {
	ln net.Listener

	mu  sync.Mutex
	cur *Transport
}

func newDataListener(addr string) (*dataListener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("exchange: data listener: %w", err)
	}
	dl := &dataListener{ln: ln}
	go dl.run()
	return dl, nil
}

func (dl *dataListener) Addr() string { return dl.ln.Addr().String() }

// setCurrent installs the transport accepting this attempt's connections,
// closing the previous attempt's transport if still open.
func (dl *dataListener) setCurrent(t *Transport) {
	dl.mu.Lock()
	prev := dl.cur
	dl.cur = t
	dl.mu.Unlock()
	if prev != nil && prev != t {
		prev.Close()
	}
}

func (dl *dataListener) run() {
	for {
		c, err := dl.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go dl.handshake(c)
	}
}

func (dl *dataListener) handshake(c net.Conn) {
	var hs [12]byte
	c.SetReadDeadline(time.Now().Add(defaultDialTimeout))
	if _, err := io.ReadFull(c, hs[:]); err != nil || [4]byte(hs[:4]) != dataMagic {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	from := int(binary.LittleEndian.Uint32(hs[4:]))
	attempt := int(binary.LittleEndian.Uint32(hs[8:]))
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	dl.mu.Lock()
	cur := dl.cur
	dl.mu.Unlock()
	if cur == nil || cur.attempt != attempt {
		c.Close() // stale attempt: its transport is gone
		return
	}
	cur.accept(from, c)
}

func (dl *dataListener) Close() {
	dl.ln.Close()
	dl.mu.Lock()
	cur := dl.cur
	dl.cur = nil
	dl.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}
