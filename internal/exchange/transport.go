package exchange

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/obs"
	"cep2asp/internal/supervise"
	"cep2asp/internal/trace"
)

// dataMagic opens every data-plane connection, followed by the dialing
// worker's index (u32 LE) and the attempt number (u32 LE). The receiver
// routes the connection to the transport of the matching attempt, or
// closes it (stale attempt, dead job).
var dataMagic = [4]byte{'c', '2', 'a', frameVersion}

// defaultDialTimeout bounds each peer dial; an unreachable peer yields a
// structured DialError instead of a hang.
const defaultDialTimeout = 5 * time.Second

// defaultWriteTimeout bounds each data-plane frame write. A blackholed
// receiver — one that accepted the connection but stopped draining it —
// eventually fills the kernel send buffer; without a deadline the sending
// goroutine blocks forever and the job hangs instead of failing over.
const defaultWriteTimeout = 10 * time.Second

// netConfig bundles the transport's fault-tolerance knobs. The zero value
// is not useful; start from defaultNetConfig.
type netConfig struct {
	dialTimeout  time.Duration // per dial attempt (connect + handshake)
	writeTimeout time.Duration // per-frame write deadline; <= 0 disables
	dialRetries  int           // extra attempts per peer at connect time
	reconnects   int           // mid-run reconnect attempts per frame
	backoff      supervise.Policy
}

func defaultNetConfig() netConfig {
	return netConfig{
		dialTimeout:  defaultDialTimeout,
		writeTimeout: defaultWriteTimeout,
		dialRetries:  2,
		reconnects:   5,
		backoff: supervise.Policy{
			InitialBackoff: 20 * time.Millisecond,
			MaxBackoff:     500 * time.Millisecond,
			Multiplier:     2,
			Jitter:         0.2,
		},
	}
}

// DialError reports one unreachable peer at connect time.
type DialError struct {
	Worker int
	Addr   string
	Err    error
}

func (e *DialError) Error() string {
	return fmt.Sprintf("exchange: dialing worker %d at %s: %v", e.Worker, e.Addr, e.Err)
}

func (e *DialError) Unwrap() error { return e.Err }

// TransportFailure reports a data-plane integrity fault detected at the
// receiving end: a corrupted frame (checksum or structure), an implausible
// length prefix, or a sequence gap proving frames were lost or duplicated
// in flight. The stream cannot be trusted past that point, so the failure
// is restartable — the supervisor rebuilds the attempt from the latest
// checkpoint.
type TransportFailure struct {
	From int // peer worker whose frame stream broke
	Err  error
}

func (f *TransportFailure) Error() string {
	return fmt.Sprintf("exchange: data plane from worker %d: %v", f.From, f.Err)
}

func (f *TransportFailure) Unwrap() error     { return f.Err }
func (f *TransportFailure) Restartable() bool { return true }

// transportCfg bundles the constructor parameters of a Transport.
type transportCfg struct {
	me      int
	attempt int
	table   *TypeTable
	reg     *obs.Registry
	tracer  *trace.Tracer
	inj     *chaos.Injector // nil disables network chaos
	net     netConfig
	log     *slog.Logger
}

// Transport is one attempt's data-plane endpoint in one process: the
// outbound connections to every peer worker, the inbound connections
// routed to it by the process's data listener, and the ingress
// registrations of locally-owned operator instances. It implements
// asp.Transport.
type Transport struct {
	me      int
	attempt int
	table   *TypeTable
	ctx     context.Context
	cancel  context.CancelFunc
	reg     *obs.Registry
	// tracer records a network-hop span per traced record arriving from a
	// peer; nil when tracing is off.
	tracer *trace.Tracer
	inj    *chaos.Injector
	nc     netConfig
	log    *slog.Logger

	mu       sync.Mutex
	cond     *sync.Cond // signals ingress registrations, rx handovers, Close
	out      map[int]*dataConn
	ingress  map[ikey]ingressReg
	rx       map[int]*rxState
	accepted []net.Conn
	onFail   func(error)
	closed   bool
}

type ikey struct{ node, target int }

type ingressReg struct {
	ch     chan<- []asp.Record
	queued *atomic.Int64
}

// rxState is the receiver's per-peer frame-stream state. Sequence numbers
// are continuous across a peer's reconnects, so expect/seen live here —
// outside any single connection. active serializes serve loops: a
// replacement connection is not read until the previous connection's serve
// loop has drained and exited, so frames never interleave across conns.
// expect/seen are only touched by the goroutine holding active, with the
// handover through t.mu ordering the accesses.
type rxState struct {
	active bool
	seen   bool
	expect uint64
}

// dataConn is one outbound peer link; concurrent egress pumps to the same
// peer serialize on mu and share the encode buffer. The conn pointer has
// its own lock so Close never waits behind an in-flight write or backoff.
type dataConn struct {
	peer int
	addr string
	nm   *obs.NetMetrics
	np   *chaos.NetPoint
	rng  *rand.Rand

	mu         sync.Mutex
	buf        []byte
	seq        uint64
	blackholed int64

	cmu sync.Mutex
	c   net.Conn
}

func (dc *dataConn) conn() net.Conn {
	dc.cmu.Lock()
	defer dc.cmu.Unlock()
	return dc.c
}

// swapConn installs a replacement connection and returns the old one.
func (dc *dataConn) swapConn(c net.Conn) net.Conn {
	dc.cmu.Lock()
	old := dc.c
	dc.c = c
	dc.cmu.Unlock()
	return old
}

func newTransport(parent context.Context, cfg transportCfg) *Transport {
	ctx, cancel := context.WithCancel(parent)
	if cfg.log == nil {
		cfg.log = noLog
	}
	t := &Transport{
		me: cfg.me, attempt: cfg.attempt, table: cfg.table, ctx: ctx, cancel: cancel,
		reg: cfg.reg, tracer: cfg.tracer, inj: cfg.inj, nc: cfg.net, log: cfg.log,
		out:     make(map[int]*dataConn),
		ingress: make(map[ikey]ingressReg),
		rx:      make(map[int]*rxState),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// OnFail installs the handler receiving data-plane integrity faults
// (TransportFailure) detected by this endpoint's receive side. The worker
// runtime routes them into the running environment; the coordinator routes
// them into its failure channel. Without a handler faults are only logged.
func (t *Transport) OnFail(fn func(error)) {
	t.mu.Lock()
	t.onFail = fn
	t.mu.Unlock()
}

func (t *Transport) reportRx(from int, err error) {
	t.mu.Lock()
	fn := t.onFail
	t.mu.Unlock()
	t.log.Warn("exchange: data-plane fault", "from", from, "err", err)
	if fn != nil {
		fn(&TransportFailure{From: from, Err: err})
	}
}

// Dial connects to every listed peer (worker index → data address),
// performing the attempt handshake. Each peer gets 1+dialRetries bounded
// attempts with backoff; an unreachable peer yields a DialError.
func (t *Transport) Dial(addrs map[int]string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = t.nc.dialTimeout
	}
	for w, addr := range addrs {
		if w == t.me {
			continue
		}
		rng := rand.New(rand.NewSource(int64(t.me)<<16 ^ int64(w)<<4 ^ int64(t.attempt)))
		var c net.Conn
		var err error
		for n := 0; ; n++ {
			c, err = t.dialPeer(addr, timeout)
			if err == nil || n >= t.nc.dialRetries {
				break
			}
			select {
			case <-t.ctx.Done():
				return &DialError{Worker: w, Addr: addr, Err: err}
			case <-time.After(t.nc.backoff.Backoff(n, rng)):
			}
		}
		if err != nil {
			return &DialError{Worker: w, Addr: addr, Err: err}
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return fmt.Errorf("exchange: transport closed during dial")
		}
		t.out[w] = &dataConn{
			peer: w, addr: addr, c: c,
			nm:  t.reg.Net(fmt.Sprintf("w%d", w)),
			np:  t.inj.NetPoint(t.me, w),
			rng: rng,
		}
		t.mu.Unlock()
	}
	return nil
}

// dialPeer performs one bounded connect + handshake to a peer address.
func (t *Transport) dialPeer(addr string, timeout time.Duration) (net.Conn, error) {
	var d net.Dialer
	dialCtx, cancel := context.WithTimeout(t.ctx, timeout)
	c, err := d.DialContext(dialCtx, "tcp", addr)
	cancel()
	if err != nil {
		return nil, err
	}
	var hs [12]byte
	copy(hs[:4], dataMagic[:])
	binary.LittleEndian.PutUint32(hs[4:], uint32(t.me))
	binary.LittleEndian.PutUint32(hs[8:], uint32(t.attempt))
	c.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.Write(hs[:]); err != nil {
		c.Close()
		return nil, err
	}
	c.SetWriteDeadline(time.Time{})
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return c, nil
}

// Ingress implements asp.Transport: frames addressed to (nodeID, target)
// are decoded and delivered into ch.
func (t *Transport) Ingress(node string, nodeID, target int, ch chan<- []asp.Record, queued *atomic.Int64) {
	t.mu.Lock()
	t.ingress[ikey{nodeID, target}] = ingressReg{ch: ch, queued: queued}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// waitIngress blocks until (nodeID, target) registers or the transport
// closes. Peers start pumping frames the moment their own Execute starts,
// which can be before this process's Execute has reached the wiring step
// that registers ingress channels — the frames must wait, not be dropped.
// Placement is a pure function over an identical graph, so an instance a
// frame addresses is guaranteed to register here (a frame that never
// matches would mean divergent placement, and the job hangs loudly at its
// timeout rather than losing data silently).
func (t *Transport) waitIngress(k ikey) (ingressReg, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if reg, ok := t.ingress[k]; ok {
			return reg, true
		}
		if t.closed {
			return ingressReg{}, false
		}
		t.cond.Wait()
	}
}

// Egress implements asp.Transport: it returns the batch-transfer function
// for the remote instance (nodeID, target) on worker owner.
func (t *Transport) Egress(owner int, node string, nodeID, target int) (func(batch []asp.Record) error, error) {
	t.mu.Lock()
	dc := t.out[owner]
	t.mu.Unlock()
	if dc == nil {
		return nil, fmt.Errorf("exchange: not connected to worker %d (needed for %s/%d)", owner, node, target)
	}
	return func(batch []asp.Record) error {
		dc.mu.Lock()
		defer dc.mu.Unlock()
		buf, err := AppendFrame(dc.buf[:0], t.table, dc.seq, nodeID, target, batch)
		if err != nil {
			return err
		}
		dc.buf = buf[:0] // keep the grown buffer for the next frame
		// The sequence number is consumed even when chaos discards the
		// frame below: the receiver sees the gap at the next frame and
		// escalates — exactly what real in-flight loss looks like.
		dc.seq++
		return t.send(dc, buf)
	}, nil
}

// send pushes one encoded frame through the chaos site and onto the wire,
// transparently reconnecting on write failure. Called with dc.mu held.
func (t *Transport) send(dc *dataConn, buf []byte) error {
	switch act := dc.np.Frame(); act {
	case chaos.NetDropFrame:
		return nil // the sender believes the write succeeded
	case chaos.NetBlackhole:
		dc.blackholed++
		return nil
	case chaos.NetResetConn:
		if c := dc.conn(); c != nil {
			c.Close() // the write below hits a dead socket: mid-stream RST
		}
	case chaos.NetCorruptFrame:
		// Flip bits inside the payload, never the length prefix: framing
		// stays synchronized and the receiver's checksum must do the work.
		buf[4+(len(buf)-4)/2] ^= 0x55
	}
	healing := dc.blackholed > 0
	err := t.writeFrame(dc, buf)
	if err != nil {
		err = t.resend(dc, buf, err)
	}
	if err == nil && healing {
		// First frame delivered after a blackhole window: the partition
		// healed. The receiver decides whether the gap needs a restart.
		dc.blackholed = 0
		t.reg.RecordPartitionHealed()
		t.log.Info("exchange: partition healed", "peer", dc.peer, "addr", dc.addr)
	}
	return err
}

// writeFrame performs one deadline-bounded write of a complete frame.
func (t *Transport) writeFrame(dc *dataConn, buf []byte) error {
	c := dc.conn()
	if c == nil {
		return fmt.Errorf("exchange: no connection to worker %d", dc.peer)
	}
	if t.nc.writeTimeout > 0 {
		c.SetWriteDeadline(time.Now().Add(t.nc.writeTimeout))
	}
	_, err := c.Write(buf)
	if err != nil {
		return err
	}
	if t.nc.writeTimeout > 0 {
		c.SetWriteDeadline(time.Time{})
	}
	dc.nm.SentFrame(len(buf))
	return nil
}

// resend re-establishes the peer link with exponential backoff + jitter
// and retransmits the frame. The sender always closes the old connection
// before writing on the new one, and sequence numbers are continuous
// across the reconnect, so the receiver can verify nothing was lost: a
// torn half-written frame is discarded with the old connection and the
// retransmit carries the same seq the receiver expects. Transient resets
// therefore heal exactly-once, with no job restart. Called with dc.mu held.
func (t *Transport) resend(dc *dataConn, buf []byte, cause error) error {
	for n := 0; n < t.nc.reconnects; n++ {
		select {
		case <-t.ctx.Done():
			return cause
		case <-time.After(t.nc.backoff.Backoff(n, dc.rng)):
		}
		c, err := t.dialPeer(dc.addr, t.nc.dialTimeout)
		if err != nil {
			cause = err
			continue
		}
		if old := dc.swapConn(c); old != nil {
			old.Close()
		}
		t.reg.RecordReconnect()
		dc.nm.Reconnect()
		t.log.Info("exchange: data link re-established",
			"peer", dc.peer, "addr", dc.addr, "dials", n+1, "cause", cause)
		if err := t.writeFrame(dc, buf); err == nil {
			return nil
		} else {
			cause = err
		}
	}
	return fmt.Errorf("exchange: data link to worker %d at %s: %d reconnect attempts exhausted: %w",
		dc.peer, dc.addr, t.nc.reconnects, cause)
}

// accept adopts one inbound peer connection (handshake already consumed)
// and serves its frames until EOF, error, or transport shutdown. When the
// peer reconnects mid-run the replacement connection waits here until the
// previous connection's serve loop has fully drained — cross-connection
// frame ordering is what makes the sequence check sound.
func (t *Transport) accept(from int, c net.Conn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	t.accepted = append(t.accepted, c)
	rx := t.rx[from]
	if rx == nil {
		rx = &rxState{}
		t.rx[from] = rx
	}
	for rx.active && !t.closed {
		t.cond.Wait()
	}
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	rx.active = true
	t.mu.Unlock()
	go func() {
		t.serve(from, rx, c)
		t.mu.Lock()
		rx.active = false
		t.cond.Broadcast()
		t.mu.Unlock()
	}()
}

// maxFrameBytes bounds a single frame; larger length prefixes indicate
// corruption. Generous: a full batch of worst-case matches stays far below.
const maxFrameBytes = 64 << 20

func (t *Transport) serve(from int, rx *rxState, c net.Conn) {
	defer c.Close()
	nm := t.reg.Net(fmt.Sprintf("w%d", from))
	var lenBuf [4]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			// Clean EOF (peer done), torn connection (peer reconnecting —
			// the seq check on the replacement conn audits the handover),
			// or our own Close. Never a failure by itself.
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrameBytes {
			t.reportRx(from, fmt.Errorf("implausible frame length %d: stream corrupted", n))
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(c, payload); err != nil {
			return // torn mid-frame: same as a torn length prefix above
		}
		nm.RecvFrame(int(n) + 4)
		hdr, batch, err := DecodeFrame(payload, t.table)
		if err != nil {
			t.reportRx(from, err)
			return
		}
		if hdr.HasSeq {
			if rx.seen && hdr.Seq != rx.expect {
				t.reportRx(from, fmt.Errorf("frame stream jumped from seq %d to %d: frame(s) lost or duplicated in flight", rx.expect, hdr.Seq))
				return
			}
			rx.seen, rx.expect = true, hdr.Seq+1
		}
		if t.tracer != nil {
			t.traceArrivals(from, batch)
		}
		reg, ok := t.waitIngress(ikey{hdr.NodeID, hdr.Target})
		if !ok {
			return // transport closed while waiting
		}
		// Blocking delivery into the instance's bounded input channel:
		// a full channel stalls this connection's reads, extending the
		// engine's backpressure over the network (with the usual aligned-
		// checkpoint caveat that distinct logical edges multiplexed on one
		// TCP connection share head-of-line blocking).
		select {
		case reg.ch <- batch:
			if reg.queued != nil {
				reg.queued.Add(int64(len(batch)))
			}
		case <-t.ctx.Done():
			return
		}
	}
}

// traceArrivals records one network-hop span per traced data record in an
// inbound batch: the sender's emit timestamp to local arrival, covering
// upstream batching, the wire, and decode. The handoff timestamp is then
// reset to the arrival time so the receiving instance's queue span measures
// only local queueing. Barrier records keep their original stamp — their
// propagation latency is measured end-to-end at the aligning instance.
func (t *Transport) traceArrivals(from int, batch []asp.Record) {
	now := time.Now().UnixNano()
	name := fmt.Sprintf("net:w%d>w%d", from, t.me)
	for i := range batch {
		r := &batch[i]
		if r.TraceNs == 0 || (r.Kind != asp.KindEvent && r.Kind != asp.KindMatch) {
			continue
		}
		d := now - r.TraceNs
		if d < 0 {
			d = 0 // clock skew between workers; keep the span well-formed
		}
		var id uint64
		if r.Kind == asp.KindMatch {
			id = trace.MatchID(r.Match.Events)
		} else {
			id = trace.ID(r.Event)
		}
		t.tracer.Add(trace.Span{
			Trace: id, Kind: trace.KindNet, Name: name,
			Instance: from, StartNs: r.TraceNs, DurNs: d,
		})
		r.TraceNs = now
	}
}

// Close severs every connection of this attempt and stops ingress
// deliveries. Idempotent.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	outs := make([]*dataConn, 0, len(t.out))
	for _, dc := range t.out {
		outs = append(outs, dc)
	}
	ins := append([]net.Conn(nil), t.accepted...)
	t.cond.Broadcast()
	t.mu.Unlock()
	t.cancel()
	for _, dc := range outs {
		if c := dc.conn(); c != nil {
			c.Close()
		}
	}
	for _, c := range ins {
		c.Close()
	}
}

// dataListener is one process's persistent data-plane listener: it owns
// the TCP listen socket across attempts and routes each accepted peer
// connection — identified by the handshake's attempt tag — to the current
// transport.
type dataListener struct {
	ln net.Listener

	mu  sync.Mutex
	cur *Transport
}

func newDataListener(addr string) (*dataListener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("exchange: data listener: %w", err)
	}
	dl := &dataListener{ln: ln}
	go dl.run()
	return dl, nil
}

func (dl *dataListener) Addr() string { return dl.ln.Addr().String() }

// setCurrent installs the transport accepting this attempt's connections,
// closing the previous attempt's transport if still open.
func (dl *dataListener) setCurrent(t *Transport) {
	dl.mu.Lock()
	prev := dl.cur
	dl.cur = t
	dl.mu.Unlock()
	if prev != nil && prev != t {
		prev.Close()
	}
}

func (dl *dataListener) run() {
	for {
		c, err := dl.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go dl.handshake(c)
	}
}

func (dl *dataListener) handshake(c net.Conn) {
	var hs [12]byte
	c.SetReadDeadline(time.Now().Add(defaultDialTimeout))
	if _, err := io.ReadFull(c, hs[:]); err != nil || [4]byte(hs[:4]) != dataMagic {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	from := int(binary.LittleEndian.Uint32(hs[4:]))
	attempt := int(binary.LittleEndian.Uint32(hs[8:]))
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	dl.mu.Lock()
	cur := dl.cur
	dl.mu.Unlock()
	if cur == nil || cur.attempt != attempt {
		c.Close() // stale attempt: its transport is gone
		return
	}
	cur.accept(from, c)
}

func (dl *dataListener) Close() {
	dl.ln.Close()
	dl.mu.Lock()
	cur := dl.cur
	dl.cur = nil
	dl.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}
