package exchange

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
)

var testStreamNames = []string{"CodecTypeA", "CodecTypeB", "CodecTypeC"}

func testTable() *TypeTable { return NewTypeTable(testStreamNames) }

// randEvent draws an event over the table's types with adversarial
// timestamp spreads (delta coding must survive negative deltas, extremes).
func randEvent(rng *rand.Rand, table *TypeTable) event.Event {
	ts := rng.Int63n(1<<40) - 1<<39
	return event.Event{
		Type:   table.toLocal[rng.Intn(len(table.toLocal))],
		ID:     rng.Int63n(1 << 32),
		Lat:    rng.NormFloat64() * 90,
		Lon:    rng.NormFloat64() * 180,
		Value:  rng.Float64() * 100,
		TS:     ts,
		Ingest: rng.Int63(),
		AuxTS:  ts + rng.Int63n(1<<20) - 1<<19,
	}
}

func randRecord(rng *rand.Rand, table *TypeTable) asp.Record {
	r := asp.Record{
		Port: uint8(rng.Intn(4)),
		Src:  uint16(rng.Intn(1 << 10)),
		TS:   rng.Int63n(1<<40) - 1<<39,
	}
	switch rng.Intn(5) {
	case 0:
		r.Kind = asp.KindWatermark
	case 1:
		r.Kind = asp.KindEOS
	case 2:
		r.Kind = asp.KindBarrier
		r.TS = rng.Int63n(1 << 20) // barrier IDs are small positives
	case 3:
		r.Kind = asp.KindMatch
		n := 1 + rng.Intn(6)
		events := make([]event.Event, n)
		for i := range events {
			events[i] = randEvent(rng, table)
		}
		r.Match = event.WrapMatch(events)
	default:
		r.Kind = asp.KindEvent
		r.Event = randEvent(rng, table)
	}
	if rng.Intn(3) == 0 {
		// Sampled records carry the trace handoff timestamp (v2+ frames).
		r.TraceNs = 1 + rng.Int63()
	}
	return r
}

func recordsEqual(t *testing.T, want, got asp.Record) {
	t.Helper()
	if want.Kind != got.Kind || want.Port != got.Port || want.Src != got.Src || want.TS != got.TS {
		t.Fatalf("record header mismatch: want %+v got %+v", want, got)
	}
	if want.TraceNs != got.TraceNs {
		t.Fatalf("trace context mismatch: want %d got %d", want.TraceNs, got.TraceNs)
	}
	switch want.Kind {
	case asp.KindEvent:
		if want.Event != got.Event {
			t.Fatalf("event mismatch:\nwant %+v\ngot  %+v", want.Event, got.Event)
		}
	case asp.KindMatch:
		if !reflect.DeepEqual(want.Match.Events, got.Match.Events) {
			t.Fatalf("match constituents mismatch:\nwant %+v\ngot  %+v", want.Match.Events, got.Match.Events)
		}
		if want.Match.TsB != got.Match.TsB || want.Match.TsE != got.Match.TsE {
			t.Fatalf("match interval mismatch: want [%d,%d] got [%d,%d]",
				want.Match.TsB, want.Match.TsE, got.Match.TsB, got.Match.TsE)
		}
	}
}

// downgrade rewrites a freshly encoded v3 payload to the given older
// version's layout by stripping the crc and seq fields — everything after
// them is byte-identical across versions (when no record carries trace
// context, also for v1).
func downgrade(t *testing.T, payload []byte, version byte) []byte {
	t.Helper()
	if payload[0] != frameVersion {
		t.Fatalf("downgrade wants a v%d payload, got v%d", frameVersion, payload[0])
	}
	_, n := binary.Uvarint(payload[5:]) // seq field
	if n <= 0 {
		t.Fatal("v3 payload without a decodable seq")
	}
	return append([]byte{version}, payload[5+n:]...)
}

// TestFrameRoundTripProperty: encode→decode is the identity for random
// batches of every record kind, including nested match constituents, and
// the sequence number survives the trip.
func TestFrameRoundTripProperty(t *testing.T) {
	table := testTable()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nodeID := rng.Intn(64)
		target := rng.Intn(16)
		seq := rng.Uint64() >> uint(rng.Intn(64)) // small and huge seqs alike
		batch := make([]asp.Record, rng.Intn(32))
		for i := range batch {
			batch[i] = randRecord(rng, table)
		}
		frame, err := AppendFrame(nil, table, seq, nodeID, target, batch)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		n := binary.LittleEndian.Uint32(frame)
		if int(n) != len(frame)-4 {
			t.Fatalf("trial %d: length prefix %d, frame body %d", trial, n, len(frame)-4)
		}
		hdr, got, err := DecodeFrame(frame[4:], table)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if hdr.NodeID != nodeID || hdr.Target != target {
			t.Fatalf("trial %d: addressed (%d,%d), decoded (%d,%d)", trial, nodeID, target, hdr.NodeID, hdr.Target)
		}
		if !hdr.HasSeq || hdr.Seq != seq {
			t.Fatalf("trial %d: seq %d in, (%d,%v) out", trial, seq, hdr.Seq, hdr.HasSeq)
		}
		if len(got) != len(batch) {
			t.Fatalf("trial %d: %d records in, %d out", trial, len(batch), len(got))
		}
		for i := range batch {
			recordsEqual(t, batch[i], got[i])
		}
	}
}

// TestFrameAppendsToDst: AppendFrame appends after existing bytes (the
// transport reuses one buffer per connection).
func TestFrameAppendsToDst(t *testing.T) {
	table := testTable()
	prefix := []byte("existing")
	frame, err := AppendFrame(append([]byte(nil), prefix...), table, 9, 3, 1, []asp.Record{{Kind: asp.KindEOS, Src: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(frame, prefix) {
		t.Fatalf("dst prefix clobbered: %q", frame[:len(prefix)])
	}
	n := binary.LittleEndian.Uint32(frame[len(prefix):])
	if int(n) != len(frame)-len(prefix)-4 {
		t.Fatalf("length prefix %d, body %d", n, len(frame)-len(prefix)-4)
	}
	if _, _, err := DecodeFrame(frame[len(prefix)+4:], table); err != nil {
		t.Fatalf("appended frame does not decode: %v", err)
	}
}

// TestFrameSpecialFloats: NaN and infinities survive the trip bit-exactly.
func TestFrameSpecialFloats(t *testing.T) {
	table := testTable()
	e := event.Event{Type: table.toLocal[0], Lat: math.NaN(), Lon: math.Inf(1), Value: math.Inf(-1), TS: 5}
	frame, err := AppendFrame(nil, table, 0, 0, 0, []asp.Record{{Kind: asp.KindEvent, TS: 5, Event: e}})
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeFrame(frame[4:], table)
	if err != nil {
		t.Fatal(err)
	}
	g := got[0].Event
	if !math.IsNaN(g.Lat) || !math.IsInf(g.Lon, 1) || !math.IsInf(g.Value, -1) {
		t.Fatalf("special floats corrupted: %+v", g)
	}
}

// TestDecodeAcceptsOldFrames: the record layout after the v3 header fields
// is unchanged, so stripping crc+seq and rewriting the version byte yields
// genuine v2 (and, without trace context, v1) frames — both must decode,
// with HasSeq reporting the missing sequence number.
func TestDecodeAcceptsOldFrames(t *testing.T) {
	table := testTable()
	rng := rand.New(rand.NewSource(21))
	for _, version := range []byte{frameVersionV1, frameVersionV2} {
		batch := make([]asp.Record, 16)
		for i := range batch {
			batch[i] = randRecord(rng, table)
			if version == frameVersionV1 {
				batch[i].TraceNs = 0 // v1 cannot carry the trace field
			}
		}
		frame, err := AppendFrame(nil, table, 42, 2, 1, batch)
		if err != nil {
			t.Fatal(err)
		}
		payload := downgrade(t, frame[4:], version)
		hdr, got, err := DecodeFrame(payload, table)
		if err != nil {
			t.Fatalf("v%d frame rejected: %v", version, err)
		}
		if hdr.NodeID != 2 || hdr.Target != 1 || len(got) != len(batch) {
			t.Fatalf("v%d decode drifted: (%d,%d,%d)", version, hdr.NodeID, hdr.Target, len(got))
		}
		if hdr.HasSeq {
			t.Fatalf("v%d frame claims a sequence number", version)
		}
		for i := range batch {
			recordsEqual(t, batch[i], got[i])
		}
	}
}

// TestV1FrameRejectsTraceFlag: the trace flag bit did not exist in v1; a
// v1 frame with it set is corruption, not a silently misread trace field.
func TestV1FrameRejectsTraceFlag(t *testing.T) {
	table := testTable()
	frame, err := AppendFrame(nil, table, 0, 0, 0, []asp.Record{{Kind: asp.KindEOS, TraceNs: 12345}})
	if err != nil {
		t.Fatal(err)
	}
	payload := downgrade(t, frame[4:], frameVersionV1) // flag bit now set inside a v1 frame
	if _, _, err := DecodeFrame(payload, table); err == nil {
		t.Fatal("v1 frame with the trace flag bit must be rejected")
	}
}

// TestChecksumDetectsBitFlips: flipping any single bit anywhere in a v3
// payload after the version byte must be rejected — this is the wire-
// corruption guarantee netcorrupt chaos leans on. (A flipped version byte
// can masquerade as an honest pre-checksum frame, which is inherent to
// retaining v1/v2 compatibility.)
func TestChecksumDetectsBitFlips(t *testing.T) {
	table := testTable()
	rng := rand.New(rand.NewSource(99))
	batch := make([]asp.Record, 8)
	for i := range batch {
		batch[i] = randRecord(rng, table)
	}
	frame, err := AppendFrame(nil, table, 7, 1, 0, batch)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	for off := 1; off < len(payload); off++ {
		bad := append([]byte(nil), payload...)
		bad[off] ^= 1 << uint(rng.Intn(8))
		if _, _, err := DecodeFrame(bad, table); err == nil {
			t.Fatalf("bit flip at payload byte %d went undetected", off)
		}
	}
}

// TestEncodeRejectsForeignType: an event type outside the job's stream
// list is a structured error, not silent corruption.
func TestEncodeRejectsForeignType(t *testing.T) {
	table := testTable()
	foreign := event.RegisterType("CodecForeignType")
	_, err := AppendFrame(nil, table, 0, 0, 0, []asp.Record{{Kind: asp.KindEvent, Event: event.Event{Type: foreign}}})
	if err == nil {
		t.Fatal("encoding a foreign event type should fail")
	}
}

// TestDecodeRejectsCorruption: version skew, truncation and trailing
// garbage all yield errors, never panics or silent data.
func TestDecodeRejectsCorruption(t *testing.T) {
	table := testTable()
	rng := rand.New(rand.NewSource(11))
	batch := make([]asp.Record, 8)
	for i := range batch {
		batch[i] = randRecord(rng, table)
	}
	frame, err := AppendFrame(nil, table, 0, 1, 0, batch)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]

	bad := append([]byte(nil), payload...)
	bad[0] = frameVersion + 1
	if _, _, err := DecodeFrame(bad, table); err == nil {
		t.Error("version skew accepted")
	}
	for cut := 1; cut < len(payload); cut += 7 {
		if _, got, err := DecodeFrame(payload[:cut], table); err == nil && len(got) == len(batch) {
			t.Errorf("truncation at %d accepted with full batch", cut)
		}
	}
	if _, _, err := DecodeFrame(append(append([]byte(nil), payload...), 0xFF), table); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// FuzzDecodeFrame drives the decoder with arbitrary payloads: it must
// never panic, and whatever it accepts must re-encode to an equivalent
// decode (decode∘encode∘decode = decode).
func FuzzDecodeFrame(f *testing.F) {
	table := testTable()
	rng := rand.New(rand.NewSource(3))
	seed := func(version byte, trace bool) []byte {
		batch := make([]asp.Record, rng.Intn(6))
		for j := range batch {
			batch[j] = randRecord(rng, table)
			if !trace {
				batch[j].TraceNs = 0
			}
		}
		frame, err := AppendFrame(nil, table, uint64(rng.Intn(1<<30)), rng.Intn(8), rng.Intn(4), batch)
		if err != nil {
			f.Fatal(err)
		}
		payload := append([]byte(nil), frame[4:]...)
		if version == frameVersion {
			return payload
		}
		_, n := binary.Uvarint(payload[5:])
		return append([]byte{version}, payload[5+n:]...)
	}
	for i := 0; i < 8; i++ {
		f.Add(seed(frameVersion, true))
	}
	// Old-version seeds: stripping crc+seq yields genuine v2/v1 frames.
	for i := 0; i < 4; i++ {
		f.Add(seed(frameVersionV2, true))
		f.Add(seed(frameVersionV1, false))
	}
	f.Add([]byte{})
	f.Add([]byte{frameVersion})
	f.Add([]byte{frameVersionV1})
	f.Fuzz(func(t *testing.T, payload []byte) {
		hdr, batch, err := DecodeFrame(payload, table)
		if err != nil {
			return
		}
		frame, err := AppendFrame(nil, table, hdr.Seq, hdr.NodeID, hdr.Target, batch)
		if err != nil {
			t.Fatalf("decoded batch failed to re-encode: %v", err)
		}
		hdr2, batch2, err := DecodeFrame(frame[4:], table)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if hdr2.NodeID != hdr.NodeID || hdr2.Target != hdr.Target || len(batch2) != len(batch) {
			t.Fatalf("re-decode drifted: (%d,%d,%d) vs (%d,%d,%d)",
				hdr.NodeID, hdr.Target, len(batch), hdr2.NodeID, hdr2.Target, len(batch2))
		}
	})
}
