package exchange

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestValidateAddrsDuplicates(t *testing.T) {
	if err := ValidateAddrs([]string{"127.0.0.1:7000", "127.0.0.1:7001"}); err != nil {
		t.Fatalf("distinct addresses rejected: %v", err)
	}
	err := ValidateAddrs([]string{"127.0.0.1:7000", "127.0.0.1:7001", "127.0.0.1:7000"})
	if err == nil {
		t.Fatal("duplicate addresses accepted")
	}
	if !strings.Contains(err.Error(), "workers 0 and 2") {
		t.Fatalf("error does not name the colliding workers: %v", err)
	}
	if err := ValidateAddrs([]string{"127.0.0.1:7000", ""}); err == nil {
		t.Fatal("empty address accepted")
	}
}

// TestDialUnreachablePeer: an unreachable peer yields a structured
// DialError naming the worker and address — promptly, not a hang.
func TestDialUnreachablePeer(t *testing.T) {
	// A listener that is closed immediately: the port is allocated but
	// nobody accepts, so the dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	tr := newTransport(context.Background(), transportCfg{me: 0, table: testTable(), net: defaultNetConfig()})
	defer tr.Close()
	start := time.Now()
	err = tr.Dial(map[int]string{1: dead}, 2*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	var de *DialError
	if !errors.As(err, &de) {
		t.Fatalf("want *DialError, got %T: %v", err, err)
	}
	if de.Worker != 1 || de.Addr != dead {
		t.Fatalf("DialError misattributed: %+v", de)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("dial failure took %v; the timeout bound is broken", elapsed)
	}
}

// TestDialCancellation: a cancelled transport context aborts dialing
// immediately — each dial runs under the transport context, so tearing an
// attempt down never waits out a connect timeout. (A true blackholed-peer
// timeout cannot be tested portably: sandboxed CI networks often answer
// SYNs for arbitrary addresses, so this exercises the same code path —
// the context governing DialContext — deterministically instead.)
func TestDialCancellation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the dial must not even start
	tr := newTransport(ctx, transportCfg{me: 0, table: testTable(), net: defaultNetConfig()})
	defer tr.Close()
	start := time.Now()
	err = tr.Dial(map[int]string{1: ln.Addr().String()}, 30*time.Second)
	if err == nil {
		t.Fatal("dial survived cancellation")
	}
	var de *DialError
	if !errors.As(err, &de) {
		t.Fatalf("want *DialError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not surfaced: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to abort the dial", elapsed)
	}
}
