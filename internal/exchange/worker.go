package exchange

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/sea"
	"cep2asp/internal/supervise"
	"cep2asp/internal/trace"
)

// buildJob constructs one process's slice of a distributed job from its
// spec: registers the canonical stream types, translates the pattern
// exactly as every other worker does (identical graph, identical
// fingerprint), and builds the environment with the distribution splice
// installed. Both workers and the coordinator (worker 0) use it.
func buildJob(spec *JobSpec, table *TypeTable, ck *asp.CheckpointSpec, inj *chaos.Injector, reg *obs.Registry, tr *Transport, tracer *trace.Tracer, log *slog.Logger) (*asp.Environment, *asp.Results, error) {
	if err := ValidateAddrs(spec.Workers); err != nil {
		return nil, nil, err
	}
	data := make(map[event.Type][]event.Event, len(spec.Streams))
	for i, st := range spec.Streams {
		lt := table.toLocal[i]
		// Event Type values are process-local; rewrite the sender's values
		// to ours. The coordinator's own events already match (no write —
		// the slices are shared with the caller).
		for j := range st.Events {
			if st.Events[j].Type != lt {
				st.Events[j].Type = lt
			}
		}
		data[lt] = st.Events
	}
	pat, err := sea.Parse(spec.Pattern)
	if err != nil {
		return nil, nil, fmt.Errorf("exchange: parsing pattern: %w", err)
	}
	var plan *core.Plan
	if spec.FCEP {
		plan, err = core.TranslateFCEP(pat, spec.Opts)
	} else {
		plan, err = core.Translate(pat, spec.Opts)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("exchange: translating pattern: %w", err)
	}
	cfg := asp.Config{
		DefaultParallelism: spec.Engine.DefaultParallelism,
		ChannelCapacity:    spec.Engine.ChannelCapacity,
		WatermarkInterval:  spec.Engine.WatermarkInterval,
		BatchSize:          spec.Engine.BatchSize,
		FlushTimeout:       time.Duration(spec.Engine.FlushTimeoutNs),
		MaxOperatorState:   spec.Engine.MaxOperatorState,
		Checkpoint:         ck,
		Metrics:            reg,
		Chaos:              inj,
		Trace:              tracer,
		Log:                log,
		ShutdownTimeout:    10 * time.Second,
		Dist: &asp.DistSpec{
			Worker:    spec.Me,
			Workers:   len(spec.Workers),
			Owner:     ModuloOwner(len(spec.Workers)),
			Transport: tr,
		},
	}
	env, res, err := core.Build(plan, core.BuildConfig{
		Engine:           cfg,
		Data:             data,
		StampIngest:      spec.StampIngest,
		Lateness:         event.Time(spec.Lateness),
		DedupSink:        spec.DedupSink,
		KeepMatches:      spec.KeepMatches,
		SourceRatePerSec: spec.SourceRatePerSec,
	})
	if err != nil {
		return nil, nil, err
	}
	return env, res, nil
}

// streamNames extracts the canonical type-name order of a spec.
func streamNames(spec *JobSpec) []string {
	names := make([]string, len(spec.Streams))
	for i, st := range spec.Streams {
		names[i] = st.Name
	}
	return names
}

// WorkerOptions configures one worker process (or in-process worker).
type WorkerOptions struct {
	// Name identifies the worker in logs and errors; defaults to its data
	// address.
	Name string
	// DataAddr is the data-plane listen address ("127.0.0.1:0" default).
	DataAddr string
	// Metrics, when set, instruments this worker's operators and network
	// peers (served per worker via obs.Serve).
	Metrics *obs.Registry
	// DialTimeout bounds control and peer dials (default 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds each data-plane frame write (default 10s,
	// negative disables).
	WriteTimeout time.Duration
	// StatsInterval is the metrics-federation push period — which doubles
	// as the worker's heartbeat, so the coordinator's liveness deadline
	// must comfortably exceed it (default 1s).
	StatsInterval time.Duration
	// Log, when set, receives structured progress events; every record
	// carries the worker's identity.
	Log *slog.Logger
}

// Worker hosts operator instances of distributed jobs: it joins a
// coordinator, builds each prepared job's graph, runs the locally-owned
// slice, and forwards checkpoint acknowledgements. One Worker serves many
// consecutive attempts (the coordinator re-prepares after failures) but
// dies with its process — recovery replaces dead workers with fresh ones.
type Worker struct {
	opts WorkerOptions
	ctrl *ctrlConn
	dl   *dataListener
	root context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	cur    *workerAttempt
	inj    *chaos.Injector
	killed bool

	done chan struct{}
	err  error
}

type workerAttempt struct {
	n      int
	spec   *JobSpec
	table  *TypeTable
	env    *asp.Environment
	tr     *Transport
	tracer *trace.Tracer
	cancel context.CancelFunc
	ctx    context.Context
	// ctrlNP is the chaos inject site on the control-plane link toward the
	// coordinator: an armed NetPartition window swallows this worker's
	// heartbeats and acks exactly like it swallows data frames, so only
	// the coordinator's failure detector can notice the silence.
	ctrlNP *chaos.NetPoint
}

// StartWorker joins the coordinator at coordAddr and serves jobs until the
// context is cancelled, the coordinator goes away, or the worker is killed
// by a chaos fault. It returns after the control handshake; job traffic is
// handled in the background (Wait blocks for termination).
func StartWorker(ctx context.Context, coordAddr string, opts WorkerOptions) (*Worker, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = defaultDialTimeout
	}
	if opts.StatsInterval <= 0 {
		opts.StatsInterval = time.Second
	}
	dl, err := newDataListener(opts.DataAddr)
	if err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = dl.Addr()
	}
	var d net.Dialer
	dialCtx, cancel := context.WithTimeout(ctx, opts.DialTimeout)
	c, err := d.DialContext(dialCtx, "tcp", coordAddr)
	cancel()
	if err != nil {
		dl.Close()
		return nil, fmt.Errorf("exchange: joining coordinator at %s: %w", coordAddr, err)
	}
	root, stop := context.WithCancel(ctx)
	w := &Worker{
		opts: opts,
		ctrl: newCtrlConn(c),
		dl:   dl,
		root: root,
		stop: stop,
		done: make(chan struct{}),
	}
	if err := w.ctrl.send(&Envelope{Kind: MsgHello, Name: opts.Name, DataAddr: dl.Addr()}); err != nil {
		w.Close()
		return nil, fmt.Errorf("exchange: hello to coordinator: %w", err)
	}
	go w.run()
	return w, nil
}

func (w *Worker) log() *slog.Logger {
	if w.opts.Log != nil {
		return w.opts.Log
	}
	return noLog
}

// Wait blocks until the worker terminates and returns its terminal error
// (nil for a clean Close).
func (w *Worker) Wait() error {
	<-w.done
	return w.err
}

// Close shuts the worker down: cancels any running attempt and closes its
// connections. Idempotent.
func (w *Worker) Close() {
	w.stop()
	w.ctrl.close()
	w.dl.Close()
	w.mu.Lock()
	cur := w.cur
	w.mu.Unlock()
	if cur != nil {
		cur.cancel()
		cur.tr.Close()
	}
}

// Kill simulates an abrupt process death for the KillWorker chaos fault:
// every network connection is severed without protocol goodbyes and the
// running attempt is cancelled, so the coordinator observes exactly what a
// crashed process would leave behind — dead TCP connections.
func (w *Worker) Kill(site string) {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.killed = true
	cur := w.cur
	inj := w.inj
	w.mu.Unlock()
	w.log().Warn("exchange: worker killed by chaos", "worker", w.opts.Name, "site", site)
	w.ctrl.close()
	w.dl.Close()
	if cur != nil {
		cur.tr.Close()
		cur.cancel()
	}
	w.stop()
	// The goroutine that hit the fault is parked on the injector's stall
	// channel (a thread inside a dying process); release it so the
	// cancelled attempt can drain.
	inj.ReleaseStalls()
}

// run is the control loop: it reacts to coordinator messages until the
// connection dies or the worker stops.
func (w *Worker) run() {
	defer close(w.done)
	defer w.Close()
	for {
		e, err := w.ctrl.recv()
		if err != nil {
			w.mu.Lock()
			killed := w.killed
			w.mu.Unlock()
			if w.root.Err() == nil && !killed {
				w.err = fmt.Errorf("exchange: worker %s lost coordinator: %w", w.opts.Name, err)
			}
			return
		}
		switch e.Kind {
		case MsgPrepare:
			w.handlePrepare(e)
		case MsgConnect:
			w.handleConnect(e)
		case MsgStart:
			w.handleStart(e)
		case MsgBarrier:
			if cur := w.current(e.Attempt); cur != nil {
				cur.env.InjectBarrier(e.CheckpointID)
			}
		case MsgAbort:
			if cur := w.current(e.Attempt); cur != nil {
				cur.cancel()
			}
		}
	}
}

func (w *Worker) current(attempt int) *workerAttempt {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur != nil && w.cur.n == attempt {
		return w.cur
	}
	return nil
}

func (w *Worker) handlePrepare(e *Envelope) {
	spec := e.Spec
	w.mu.Lock()
	prev := w.cur
	w.cur = nil
	w.mu.Unlock()
	if prev != nil {
		prev.cancel()
		prev.tr.Close()
	}
	var ctrlNP *chaos.NetPoint
	reply := func(err error) {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		if ctrlNP.Partitioned() {
			return // the coordinator's phase deadline must notice
		}
		w.ctrl.send(&Envelope{Kind: MsgReady, Attempt: e.Attempt, Err: msg})
	}
	if spec == nil {
		reply(errors.New("exchange: prepare without a job spec"))
		return
	}
	// The injector persists across attempts of this worker so fault hit
	// counters stay monotonic; fresh faults (attempt 0) re-arm it.
	w.mu.Lock()
	if len(spec.Faults) > 0 {
		w.inj = chaos.NewInjector(spec.Faults...)
		w.inj.SetOnKill(w.Kill)
	}
	inj := w.inj
	w.mu.Unlock()
	ctrlNP = inj.NetPoint(spec.Me, 0)

	table := NewTypeTable(streamNames(spec))
	ctx, cancel := context.WithCancel(w.root)
	tracer := trace.New(spec.TraceRate, spec.Me)
	nc := defaultNetConfig()
	nc.dialTimeout = w.opts.DialTimeout
	if w.opts.WriteTimeout != 0 {
		nc.writeTimeout = w.opts.WriteTimeout
	}
	tr := newTransport(ctx, transportCfg{
		me: spec.Me, attempt: spec.Attempt, table: table,
		reg: w.opts.Metrics, tracer: tracer, inj: inj,
		net: nc, log: w.log(),
	})
	var ck *asp.CheckpointSpec
	if spec.Checkpointing {
		ck = &asp.CheckpointSpec{
			Ack:      &ackForwarder{ctrl: w.ctrl, attempt: spec.Attempt, np: ctrlNP},
			Snapshot: spec.Snapshot,
		}
	}
	jobLog := w.log().With("worker", spec.Me, "attempt", spec.Attempt)
	env, _, err := buildJob(spec, table, ck, inj, w.opts.Metrics, tr, tracer, jobLog)
	if err != nil {
		cancel()
		tr.Close()
		reply(err)
		return
	}
	// Data-plane integrity faults detected on our receive side (checksum
	// mismatch, sequence gaps) abort the running attempt; the error then
	// rides the Done reply back to the coordinator as restartable.
	tr.OnFail(env.Fail)
	w.mu.Lock()
	w.cur = &workerAttempt{n: spec.Attempt, spec: spec, table: table, env: env, tr: tr, tracer: tracer, cancel: cancel, ctx: ctx, ctrlNP: ctrlNP}
	w.mu.Unlock()
	w.dl.setCurrent(tr)
	w.log().Info("exchange: worker prepared attempt",
		"name", w.opts.Name, "worker", spec.Me, "attempt", spec.Attempt, "workers", len(spec.Workers))
	reply(nil)
}

func (w *Worker) handleConnect(e *Envelope) {
	cur := w.current(e.Attempt)
	reply := func(err error) {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		if cur != nil && cur.ctrlNP.Partitioned() {
			return // the coordinator's phase deadline must notice
		}
		w.ctrl.send(&Envelope{Kind: MsgConnected, Attempt: e.Attempt, Err: msg})
	}
	if cur == nil {
		reply(fmt.Errorf("exchange: connect for unknown attempt %d", e.Attempt))
		return
	}
	addrs := make(map[int]string, len(cur.spec.Workers))
	for i, a := range cur.spec.Workers {
		addrs[i] = a
	}
	reply(cur.tr.Dial(addrs, w.opts.DialTimeout))
}

func (w *Worker) handleStart(e *Envelope) {
	cur := w.current(e.Attempt)
	if cur == nil {
		w.ctrl.send(&Envelope{Kind: MsgDone, Attempt: e.Attempt,
			Err: fmt.Sprintf("exchange: start for unknown attempt %d", e.Attempt)})
		return
	}
	go w.statsLoop(cur)
	go func() {
		err := cur.env.Execute(cur.ctx)
		msg, restartable := "", false
		if err != nil {
			msg = err.Error()
			var re supervise.RestartableError
			restartable = errors.As(err, &re) && re.Restartable()
		}
		// Final federation flush: short jobs may finish between ticker
		// firings, and the last snapshot carries the final counters. The
		// control conn serializes sends, so this lands before Done.
		w.pushStats(cur)
		w.log().Info("exchange: worker attempt done",
			"name", w.opts.Name, "worker", cur.spec.Me, "attempt", cur.n, "err", msg)
		if cur.ctrlNP.Partitioned() {
			return // a partitioned Done vanishes; the failure detector decides
		}
		w.ctrl.send(&Envelope{Kind: MsgDone, Attempt: cur.n, Err: msg, Restartable: restartable})
	}()
}

// statsLoop pushes this worker's observability snapshot to the coordinator
// while the attempt runs; handleStart sends one final flush before Done.
// The pushes double as the worker's heartbeat for the coordinator's
// failure detector.
func (w *Worker) statsLoop(cur *workerAttempt) {
	t := time.NewTicker(w.opts.StatsInterval)
	defer t.Stop()
	for {
		select {
		case <-cur.ctx.Done():
			return
		case <-t.C:
			w.pushStats(cur)
		}
	}
}

// pushStats sends one MsgStats envelope: the registry snapshot (histograms
// include bucket state for exact merging), process gauges, and the trace
// spans collected since the previous push.
func (w *Worker) pushStats(cur *workerAttempt) {
	if cur.ctrlNP.Partitioned() {
		return // blackholed heartbeat: silence is the whole point
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := &WorkerStats{
		Worker: cur.spec.Me, Name: w.opts.Name, Attempt: cur.n,
		Goroutines: runtime.NumGoroutine(), HeapBytes: ms.HeapAlloc,
		Snap:  w.opts.Metrics.Snapshot(),
		Spans: cur.tracer.Drain(),
	}
	w.ctrl.send(&Envelope{Kind: MsgStats, Attempt: cur.n, Stats: st})
}

// ackForwarder relays a worker's checkpoint acknowledgements to the
// coordinator process over the control connection. Send failures are
// dropped: a dead control connection already means the coordinator is
// failing the job.
type ackForwarder struct {
	ctrl    *ctrlConn
	attempt int
	// np gates the acks through the control-plane partition window: a
	// partitioned worker's checkpoint acks vanish like its heartbeats do.
	np *chaos.NetPoint
}

var _ checkpoint.AckSink = (*ackForwarder)(nil)

func (f *ackForwarder) Ack(id int64, task string, state []byte, pause time.Duration) {
	if f.np.Partitioned() {
		return
	}
	f.ctrl.send(&Envelope{
		Kind: MsgAck, Attempt: f.attempt,
		CheckpointID: id, Task: task, State: state, PauseNs: int64(pause),
	})
}

func (f *ackForwarder) FinishTask(task string, state []byte) {
	if f.np.Partitioned() {
		return
	}
	f.ctrl.send(&Envelope{Kind: MsgFinish, Attempt: f.attempt, Task: task, State: state})
}
