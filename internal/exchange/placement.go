package exchange

import (
	"fmt"
)

// ModuloOwner is the default placement function: instance i of every node
// runs on worker i mod workers. Because sources, unions and sinks are
// single-instance (instance 0), they all land on worker 0 — the
// coordinator — so input data is read and match results are collected
// where the job is driven, while the parallel instances of partitioned
// stateful operators (joins, aggregations, the keyed NFA) spread across
// the remaining workers, giving the key-partitioned network shuffle of
// optimization O3 real process boundaries to cross.
func ModuloOwner(workers int) func(node string, instance int) int {
	if workers < 1 {
		workers = 1
	}
	return func(_ string, instance int) int { return instance % workers }
}

// ValidateAddrs fail-fast checks a worker address list: every address must
// be non-empty and unique. Duplicate addresses would silently merge two
// workers' traffic into one process and hang the job waiting for the
// phantom worker.
func ValidateAddrs(addrs []string) error {
	seen := make(map[string]int, len(addrs))
	for i, a := range addrs {
		if a == "" {
			return fmt.Errorf("exchange: worker %d has an empty data address", i)
		}
		if j, dup := seen[a]; dup {
			return fmt.Errorf("exchange: workers %d and %d share data address %q", j, i, a)
		}
		seen[a] = i
	}
	return nil
}
