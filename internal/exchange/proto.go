package exchange

import (
	"encoding/gob"
	"io"
	"log/slog"
	"net"
	"sync"

	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/trace"
)

// The control plane is a single long-lived TCP connection per worker,
// carrying gob-encoded Envelopes. A distributed job runs in three phases so
// that no worker dials a peer that has not built its graph yet:
//
//	worker → coordinator   Hello      (once, on join)
//	coordinator → workers  Prepare    (job spec) … workers reply Ready
//	coordinator → workers  Connect    … workers dial peers, reply Connected
//	coordinator → workers  Start      … workers run, reply Done
//
// While a job runs, workers forward checkpoint acknowledgements (Ack,
// Finish) upstream and the coordinator broadcasts checkpoint barriers
// (Barrier) and aborts (Abort) downstream. Every per-attempt message
// carries the attempt number so messages of a superseded attempt are
// discarded instead of corrupting the next one.

// noLog swallows records from components whose owner did not configure a
// logger; the huge level threshold filters everything before formatting.
var noLog = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

// MsgKind discriminates control-plane envelopes.
type MsgKind int

const (
	MsgHello MsgKind = iota + 1
	MsgPrepare
	MsgReady
	MsgConnect
	MsgConnected
	MsgStart
	MsgBarrier
	MsgAck
	MsgFinish
	MsgDone
	MsgAbort
	MsgStats
)

func (k MsgKind) String() string {
	switch k {
	case MsgHello:
		return "hello"
	case MsgPrepare:
		return "prepare"
	case MsgReady:
		return "ready"
	case MsgConnect:
		return "connect"
	case MsgConnected:
		return "connected"
	case MsgStart:
		return "start"
	case MsgBarrier:
		return "barrier"
	case MsgAck:
		return "ack"
	case MsgFinish:
		return "finish"
	case MsgDone:
		return "done"
	case MsgAbort:
		return "abort"
	case MsgStats:
		return "stats"
	}
	return "msg(?)"
}

// Envelope is the one gob-encoded control-plane message type; which fields
// are meaningful depends on Kind. A flat struct keeps the wire format free
// of gob interface registration.
type Envelope struct {
	Kind    MsgKind
	Attempt int

	// Hello.
	Name     string
	DataAddr string

	// Prepare.
	Spec *JobSpec

	// Barrier and Ack: the checkpoint ID.
	CheckpointID int64
	// Ack / Finish: the acknowledging task and its serialized state.
	Task    string
	State   []byte
	PauseNs int64

	// Ready / Connected / Done: the phase outcome ("" = success).
	Err string
	// Done: whether the reported failure is restartable (worker-side
	// errors.As against supervise.RestartableError, flattened because the
	// concrete error types do not survive gob).
	Restartable bool

	// Stats: periodic metrics-federation push from a running worker.
	Stats *WorkerStats
}

// WorkerStats is one worker's periodic observability push: a full registry
// snapshot (histograms ship their bucket state for exact merging), process
// resource gauges, and the trace spans collected since the last push. The
// coordinator folds these into the /cluster/* surface and its job tracer.
type WorkerStats struct {
	Worker     int
	Name       string
	Attempt    int
	Goroutines int
	HeapBytes  uint64
	Snap       obs.Snapshot
	Spans      []trace.Span
}

// StreamSpec ships one input stream: its type name (the canonical identity
// across processes) and its full time-ordered event data. Event Type values
// inside Events are process-local to the sender; receivers rewrite them
// after registering Name locally.
type StreamSpec struct {
	Name   string
	Events []event.Event
}

// EngineSettings carries the asp.Config scalars every worker must share for
// the graphs to be identical (same fingerprint, same task IDs).
type EngineSettings struct {
	DefaultParallelism int
	ChannelCapacity    int
	WatermarkInterval  int
	BatchSize          int
	FlushTimeoutNs     int64
	MaxOperatorState   int64
}

// JobSpec is everything a worker needs to build and run its slice of a job:
// the pattern (as SEA source — parsed and translated identically
// everywhere), the translation options, the input streams, and the worker
// topology. Shipped in Prepare; also used internally by the coordinator to
// build its own (worker 0) slice.
type JobSpec struct {
	// Attempt numbers execution attempts of one job, starting at 0; data
	// connections and per-attempt control messages are tagged with it.
	Attempt int
	// Me is the receiving worker's index; Workers lists every worker's
	// data-plane address, indexed by worker (0 = coordinator).
	Me      int
	Workers []string

	Pattern string
	FCEP    bool
	Opts    core.Options

	Engine  EngineSettings
	Streams []StreamSpec

	StampIngest      bool
	Lateness         int64
	DedupSink        bool
	KeepMatches      bool
	SourceRatePerSec float64

	// TraceRate is the end-to-end tracing sample rate (0 disables, 1 traces
	// everything). Sampling is deterministic by event identity, so every
	// worker samples the same records without coordination.
	TraceRate float64

	// Checkpointing makes workers run the remote checkpoint protocol
	// (acknowledgements forwarded to the coordinator); Snapshot, when
	// non-nil, is restored before running (recovery attempts).
	Checkpointing bool
	Snapshot      *checkpoint.Snapshot

	// Faults arms deterministic chaos injection on the receiving worker.
	// Only shipped on attempt 0: a fault that killed a worker must not
	// re-fire on the replacement during replay.
	Faults []chaos.Fault
}

// ctrlConn wraps one control-plane connection with gob codecs. Sends are
// serialized by a mutex (the engine's ack forwarder and the worker's phase
// replies share the conn); receives happen from a single reader goroutine.
type ctrlConn struct {
	c   net.Conn
	dec *gob.Decoder

	wmu sync.Mutex
	enc *gob.Encoder
}

func newCtrlConn(c net.Conn) *ctrlConn {
	return &ctrlConn{c: c, dec: gob.NewDecoder(c), enc: gob.NewEncoder(c)}
}

func (cc *ctrlConn) send(e *Envelope) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return cc.enc.Encode(e)
}

func (cc *ctrlConn) recv() (*Envelope, error) {
	var e Envelope
	if err := cc.dec.Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

func (cc *ctrlConn) close() { cc.c.Close() }
