package exchange

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/supervise"
	"cep2asp/internal/trace"
)

// WorkerFailure reports a worker process that died mid-job (the control
// connection broke without a goodbye — a crash, a kill, a severed
// network). It is restartable: the coordinator replaces the worker and
// restores the job from the latest checkpoint.
type WorkerFailure struct {
	Worker int
	Name   string
	Err    error
}

func (f *WorkerFailure) Error() string {
	return fmt.Sprintf("exchange: worker %d (%s) died: %v", f.Worker, f.Name, f.Err)
}

func (f *WorkerFailure) Unwrap() error { return f.Err }

// Restartable marks the failure recoverable by a supervised restart.
func (f *WorkerFailure) Restartable() bool { return true }

// remoteFailure re-raises a failure a worker reported through Done,
// preserving its restartability across the wire.
type remoteFailure struct {
	worker      int
	msg         string
	restartable bool
}

func (f *remoteFailure) Error() string {
	return fmt.Sprintf("exchange: worker %d failed: %s", f.worker, f.msg)
}

func (f *remoteFailure) Restartable() bool { return f.restartable }

// CoordinatorOptions configures the job coordinator.
type CoordinatorOptions struct {
	// ListenAddr is the control-plane listen address workers join
	// ("127.0.0.1:0" default). DataAddr is the coordinator's own
	// data-plane address (it participates as worker 0).
	ListenAddr string
	DataAddr   string
	// Workers is the total worker count including the coordinator; the
	// coordinator waits for Workers-1 processes to join before running.
	Workers int
	// Metrics instruments the coordinator's slice and network peers.
	Metrics *obs.Registry
	// DialTimeout bounds peer dials (default 5s); JoinTimeout bounds
	// waiting for workers to join or rejoin (default 30s).
	DialTimeout time.Duration
	JoinTimeout time.Duration
	// WriteTimeout bounds each data-plane frame write (default 10s,
	// negative disables). A receiver that stops draining its socket would
	// otherwise park the sender forever once the kernel buffer fills.
	WriteTimeout time.Duration
	// Liveness is the failure-detection deadline: a worker silent on the
	// control plane for longer is declared dead and the job restarts from
	// the latest checkpoint (default 15s, negative disables). Workers
	// heartbeat via their stats pushes, so Liveness must comfortably
	// exceed the stats interval.
	Liveness time.Duration
	// PhaseTimeout bounds each choreography phase (prepare/connect/start
	// replies); a worker that never answers is named and the attempt
	// fails restartable instead of hanging (default 30s, negative
	// disables).
	PhaseTimeout time.Duration
	// Policy governs restarts after worker deaths and operator failures;
	// nil uses supervise.DefaultPolicy().
	Policy *supervise.Policy
	// Respawn, when set, is invoked once per missing worker before a
	// recovery attempt — the process-level supervisor hook that starts a
	// replacement worker (tests spawn one in-process; scripts fork a new
	// cep2asp-worker).
	Respawn func(attempt int) error
	// Log, when set, receives structured progress events.
	Log *slog.Logger
}

// Job describes one distributed pattern run.
type Job struct {
	Pattern string
	FCEP    bool
	Opts    core.Options

	Engine  EngineSettings
	Streams []StreamSpec

	StampIngest      bool
	Lateness         int64
	DedupSink        bool
	KeepMatches      bool
	SourceRatePerSec float64

	// CheckpointInterval enables distributed checkpointing at the given
	// period (0 = off; worker kills then restart from scratch).
	CheckpointInterval time.Duration
	// Faults arms deterministic chaos injection; each fault fires in
	// whichever process owns the targeted instance.
	Faults []chaos.Fault
	// CollectKeys returns the sink's canonical match keys on the result
	// (equivalence testing; requires DedupSink).
	CollectKeys bool
	// Timeout bounds each attempt (0 = none).
	Timeout time.Duration
	// TraceRate samples end-to-end traces at this rate (0 = off, 1 = all).
	// Sampling is deterministic by event identity, so every worker traces
	// the same records; workers push their spans to the coordinator, which
	// merges them into one job-wide trace (Coordinator.Tracer).
	TraceRate float64
}

// JobResult summarizes one completed distributed run.
type JobResult struct {
	Events        int64
	Elapsed       time.Duration
	ThroughputTps float64
	Total, Unique int64
	Keys          []string
	Checkpoints   int64
	Restarts      int
	// CheckpointStats lists every completed checkpoint of the final
	// attempt: wall-clock duration, alignment pause, state size.
	CheckpointStats []checkpoint.Stat
}

// workerSlot is the coordinator's view of one worker seat (index 1..W-1).
// A seat survives its occupant: when a worker dies the seat goes dead and
// the next Hello re-fills it.
type workerSlot struct {
	idx int

	mu       sync.Mutex
	name     string
	dataAddr string
	cc       *ctrlConn
	alive    bool

	// Metrics federation: the worker's most recent stats push and when it
	// arrived. Kept after job completion so post-run scrapes of /cluster/*
	// still see the final counters.
	lastStats *WorkerStats
	lastSeen  time.Time

	// lastHeard is the failure detector's input: the arrival time of ANY
	// envelope from this worker (stats heartbeats, acks, phase replies).
	// A seat silent past the liveness deadline is declared dead even if
	// its TCP connection still looks healthy — a blackholed peer delivers
	// no FIN.
	lastHeard time.Time

	// phase receives Ready/Connected/Done envelopes for the attempt logic.
	phase chan *Envelope
}

func (s *workerSlot) snapshot() (name, addr string, cc *ctrlConn, alive bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.name, s.dataAddr, s.cc, s.alive
}

// Coordinator drives distributed jobs: it seats joining workers, ships job
// specs, wires the data plane, triggers checkpoints, collects results at
// the local sink (all single-instance nodes — sources, unions, sinks —
// live on worker 0 under ModuloOwner), and supervises worker deaths with
// checkpoint-restore recovery.
type Coordinator struct {
	opts CoordinatorOptions
	ln   net.Listener
	dl   *dataListener

	mu         sync.Mutex
	slots      []*workerSlot
	curEnv     *asp.Environment
	curAttempt int
	failCh     chan error
	closed     bool

	// tracer is the current job's merged trace: the coordinator's own spans
	// plus every worker's pushed spans. Replaced per RunJob; kept after the
	// job so callers can export the trace. Nil when tracing is off.
	tracer *trace.Tracer

	joinCh chan struct{}
}

// NewCoordinator starts the control and data listeners and begins seating
// workers. Run jobs with RunJob; Close shuts everything down.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = defaultDialTimeout
	}
	if opts.JoinTimeout <= 0 {
		opts.JoinTimeout = 30 * time.Second
	}
	if opts.Liveness == 0 {
		opts.Liveness = 15 * time.Second
	}
	if opts.PhaseTimeout == 0 {
		opts.PhaseTimeout = 30 * time.Second
	}
	addr := opts.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("exchange: control listener: %w", err)
	}
	dl, err := newDataListener(opts.DataAddr)
	if err != nil {
		ln.Close()
		return nil, err
	}
	c := &Coordinator{
		opts:   opts,
		ln:     ln,
		dl:     dl,
		joinCh: make(chan struct{}, 64),
	}
	for i := 1; i < opts.Workers; i++ {
		c.slots = append(c.slots, &workerSlot{idx: i, phase: make(chan *Envelope, 16)})
	}
	go c.acceptLoop()
	// The coordinator is the cluster's federation point: its registry
	// serves /cluster/metrics and /cluster/topology from the statuses the
	// workers push. The provider survives job completion (and Close) so
	// post-run scrapes still see the final counters.
	opts.Metrics.SetClusterFn(c.ClusterStatuses)
	return c, nil
}

// ControlAddr returns the address workers join (-join flag).
func (c *Coordinator) ControlAddr() string { return c.ln.Addr().String() }

func (c *Coordinator) log() *slog.Logger {
	if c.opts.Log != nil {
		return c.opts.Log
	}
	return noLog
}

// Tracer returns the merged job trace (coordinator spans plus every pushed
// worker span) of the current or most recent traced job; nil when tracing
// was off.
func (c *Coordinator) Tracer() *trace.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// ClusterStatuses assembles the federated per-worker view: the coordinator
// itself as worker 0 (live registry snapshot) plus each seat's most recent
// stats push.
func (c *Coordinator) ClusterStatuses() []obs.WorkerStatus {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.mu.Lock()
	attempt := c.curAttempt
	slots := append([]*workerSlot(nil), c.slots...)
	c.mu.Unlock()
	out := []obs.WorkerStatus{{
		Worker: 0, Name: "coordinator", Attempt: attempt,
		Goroutines: runtime.NumGoroutine(), HeapBytes: ms.HeapAlloc,
		Snap: c.opts.Metrics.Snapshot(),
	}}
	for _, s := range slots {
		s.mu.Lock()
		st, seen := s.lastStats, s.lastSeen
		s.mu.Unlock()
		if st == nil {
			continue
		}
		out = append(out, obs.WorkerStatus{
			Worker: st.Worker, Name: st.Name, Attempt: st.Attempt,
			LastSeenMs: time.Since(seen).Milliseconds(),
			Goroutines: st.Goroutines, HeapBytes: st.HeapBytes,
			Snap: st.Snap,
		})
	}
	return out
}

// Close shuts the coordinator down, disconnecting all workers.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	slots := append([]*workerSlot(nil), c.slots...)
	c.mu.Unlock()
	c.ln.Close()
	c.dl.Close()
	for _, s := range slots {
		if _, _, cc, alive := s.snapshot(); alive && cc != nil {
			cc.close()
		}
	}
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.seat(conn)
	}
}

// seat reads a joining worker's Hello and assigns it the first dead seat.
func (c *Coordinator) seat(conn net.Conn) {
	cc := newCtrlConn(conn)
	conn.SetReadDeadline(time.Now().Add(c.opts.JoinTimeout))
	hello, err := cc.recv()
	if err != nil || hello.Kind != MsgHello || hello.DataAddr == "" {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	c.mu.Lock()
	var slot *workerSlot
	for _, s := range c.slots {
		s.mu.Lock()
		if !s.alive {
			s.name, s.dataAddr, s.cc, s.alive = hello.Name, hello.DataAddr, cc, true
			slot = s
		}
		s.mu.Unlock()
		if slot != nil {
			break
		}
	}
	c.mu.Unlock()
	if slot == nil {
		conn.Close() // all seats taken
		return
	}
	c.log().Info("exchange: worker joined",
		"worker", slot.idx, "name", hello.Name, "data_addr", hello.DataAddr)
	select {
	case c.joinCh <- struct{}{}:
	default:
	}
	go c.serveSlot(slot, cc)
}

// serveSlot reads one worker's control connection for its lifetime,
// dispatching checkpoint acks to the running environment and phase
// replies to the attempt logic. A read error is a worker death.
func (c *Coordinator) serveSlot(s *workerSlot, cc *ctrlConn) {
	for {
		e, err := cc.recv()
		if err != nil {
			s.mu.Lock()
			// Only the current occupant's death counts; a replaced
			// connection's EOF must not kill the replacement's seat.
			mine := s.cc == cc
			if mine {
				s.alive = false
			}
			name := s.name
			s.mu.Unlock()
			if mine {
				c.log().Warn("exchange: worker connection lost",
					"worker", s.idx, "name", name, "err", err)
				c.reportFailure(&WorkerFailure{Worker: s.idx, Name: name, Err: err})
			}
			return
		}
		s.mu.Lock()
		s.lastHeard = time.Now()
		s.mu.Unlock()
		switch e.Kind {
		case MsgAck, MsgFinish:
			c.forwardAck(e)
		case MsgStats:
			if e.Stats != nil {
				s.mu.Lock()
				s.lastStats, s.lastSeen = e.Stats, time.Now()
				s.mu.Unlock()
				c.Tracer().AddBatch(e.Stats.Spans)
			}
		case MsgReady, MsgConnected, MsgDone:
			select {
			case s.phase <- e:
			default: // stale flood; the attempt logic re-syncs by attempt tag
			}
		}
	}
}

// reportFailure delivers a failure to the attempt in flight, if any.
func (c *Coordinator) reportFailure(err error) {
	c.mu.Lock()
	ch := c.failCh
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- err:
		default:
		}
	}
}

// forwardAck feeds a worker's checkpoint acknowledgement into the running
// environment's coordinator (dropping stale attempts).
func (c *Coordinator) forwardAck(e *Envelope) {
	c.mu.Lock()
	env, at := c.curEnv, c.curAttempt
	c.mu.Unlock()
	if env == nil || e.Attempt != at {
		return
	}
	sink := env.AckSink()
	if sink == nil {
		return
	}
	switch e.Kind {
	case MsgAck:
		sink.Ack(e.CheckpointID, e.Task, e.State, time.Duration(e.PauseNs))
	case MsgFinish:
		sink.FinishTask(e.Task, e.State)
	}
}

// WaitForWorkers blocks until every worker seat is filled.
func (c *Coordinator) WaitForWorkers(ctx context.Context) error {
	deadline := time.NewTimer(c.opts.JoinTimeout)
	defer deadline.Stop()
	for {
		missing := 0
		for _, s := range c.slots {
			if _, _, _, alive := s.snapshot(); !alive {
				missing++
			}
		}
		if missing == 0 {
			return nil
		}
		select {
		case <-c.joinCh:
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			return fmt.Errorf("exchange: %d of %d workers missing after %v",
				missing, c.opts.Workers-1, c.opts.JoinTimeout)
		}
	}
}

// ensureWorkers refills dead seats, invoking the Respawn hook when set.
func (c *Coordinator) ensureWorkers(ctx context.Context, attempt int) error {
	missing := 0
	for _, s := range c.slots {
		if _, _, _, alive := s.snapshot(); !alive {
			missing++
		}
	}
	if missing > 0 && c.opts.Respawn != nil {
		for i := 0; i < missing; i++ {
			if err := c.opts.Respawn(attempt); err != nil {
				return fmt.Errorf("exchange: respawning worker: %w", err)
			}
		}
	}
	return c.WaitForWorkers(ctx)
}

// aliveSlots returns the currently occupied seats with their connections.
func (c *Coordinator) aliveSlots() []*workerSlot {
	var out []*workerSlot
	for _, s := range c.slots {
		if _, _, _, alive := s.snapshot(); alive {
			out = append(out, s)
		}
	}
	return out
}

// RunJob executes one distributed job to completion, supervising worker
// deaths and restartable failures under the configured policy: each
// recovery attempt replaces missing workers, restores the latest
// checkpoint, and replays.
func (c *Coordinator) RunJob(ctx context.Context, job Job) (*JobResult, error) {
	store := checkpoint.NewMemStore()
	var inj *chaos.Injector
	if len(job.Faults) > 0 {
		// Faults whose instance lives on the coordinator's own slice fire
		// locally; remote instances get them via the attempt-0 spec.
		inj = chaos.NewInjector(job.Faults...)
	}
	policy := supervise.DefaultPolicy()
	if c.opts.Policy != nil {
		policy = *c.opts.Policy
	}
	// One merged trace per job: the coordinator's own spans plus everything
	// the workers push. Kept on the coordinator after the job for export.
	c.mu.Lock()
	c.tracer = trace.New(job.TraceRate, 0)
	c.mu.Unlock()
	res := &JobResult{}
	start := time.Now()
	sup := supervise.Supervisor{
		Policy: policy,
		Log:    c.opts.Log,
		OnRestart: func(restart int, cause error, delay time.Duration) {
			if c.opts.Metrics != nil {
				c.opts.Metrics.RecordFailure(cause.Error())
				c.opts.Metrics.RecordRestart()
			}
		},
	}
	restarts, err := sup.Run(ctx, func(ctx context.Context, n int) error {
		return c.attempt(ctx, job, n, store, inj, res)
	})
	res.Restarts = restarts
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.ThroughputTps = float64(res.Events) / res.Elapsed.Seconds()
	}
	if err != nil {
		return res, err
	}
	return res, nil
}

// spec assembles the job spec for one worker index and attempt.
func (c *Coordinator) spec(job Job, attempt, me int, workers []string, snap *checkpoint.Snapshot) *JobSpec {
	s := &JobSpec{
		Attempt:          attempt,
		Me:               me,
		Workers:          workers,
		Pattern:          job.Pattern,
		FCEP:             job.FCEP,
		Opts:             job.Opts,
		Engine:           job.Engine,
		Streams:          job.Streams,
		StampIngest:      job.StampIngest,
		Lateness:         job.Lateness,
		DedupSink:        job.DedupSink,
		KeepMatches:      job.KeepMatches,
		SourceRatePerSec: job.SourceRatePerSec,
		TraceRate:        job.TraceRate,
		Checkpointing:    job.CheckpointInterval > 0,
		Snapshot:         snap,
	}
	if attempt == 0 {
		// Faults ship once: a fault that killed a worker must not re-fire
		// on its replacement during replay.
		s.Faults = job.Faults
	}
	return s
}

// attempt runs one execution attempt end to end: ensure workers, prepare,
// connect, start, await completion.
func (c *Coordinator) attempt(ctx context.Context, job Job, n int, store checkpoint.Store, inj *chaos.Injector, res *JobResult) (retErr error) {
	if err := c.ensureWorkers(ctx, n); err != nil {
		return err
	}
	var snap *checkpoint.Snapshot
	if n > 0 && job.CheckpointInterval > 0 {
		var err error
		if snap, err = store.Latest(); err != nil {
			return err
		}
		if snap != nil {
			c.log().Info("exchange: restoring checkpoint", "attempt", n, "checkpoint", snap.ID)
		} else {
			c.log().Info("exchange: no checkpoint; replaying from scratch", "attempt", n)
		}
	}

	slots := c.aliveSlots()
	workers := make([]string, c.opts.Workers)
	workers[0] = c.dl.Addr()
	for _, s := range slots {
		_, addr, _, _ := s.snapshot()
		workers[s.idx] = addr
	}
	if err := ValidateAddrs(workers); err != nil {
		return err
	}

	attemptCtx, cancel := context.WithCancel(ctx)
	if job.Timeout > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, job.Timeout)
	}
	defer cancel()

	// Build the local (worker 0) slice with the full-graph checkpoint
	// coordinator: remote acks are forwarded into it by serveSlot.
	spec0 := c.spec(job, n, 0, workers, snap)
	table := NewTypeTable(streamNames(spec0))
	tracer := c.Tracer()
	nc := defaultNetConfig()
	nc.dialTimeout = c.opts.DialTimeout
	if c.opts.WriteTimeout != 0 {
		nc.writeTimeout = c.opts.WriteTimeout
	}
	tr := newTransport(attemptCtx, transportCfg{
		me: 0, attempt: n, table: table,
		reg: c.opts.Metrics, tracer: tracer, inj: inj,
		net: nc, log: c.log(),
	})
	defer tr.Close()
	// Data-plane integrity faults (checksum, sequence gaps) detected on our
	// own receive side fail the attempt like any worker-reported failure.
	tr.OnFail(c.reportFailure)
	var ck *asp.CheckpointSpec
	if job.CheckpointInterval > 0 {
		ck = &asp.CheckpointSpec{
			Store:     store,
			Interval:  job.CheckpointInterval,
			Restore:   n > 0,
			OnTrigger: func(id int64) { c.broadcastBarrier(n, id) },
		}
	}
	env, sink, err := buildJob(spec0, table, ck, inj, c.opts.Metrics, tr, tracer,
		c.log().With("worker", 0, "attempt", n))
	if err != nil {
		return err // build errors are configuration bugs: not restartable
	}
	c.dl.setCurrent(tr)

	failCh := make(chan error, c.opts.Workers+2)
	c.mu.Lock()
	c.curEnv, c.curAttempt, c.failCh = env, n, failCh
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.curEnv, c.failCh = nil, nil
		c.mu.Unlock()
	}()

	// Phase 1: Prepare. Workers build the identical graph and install
	// their attempt transports before anyone dials.
	for _, s := range slots {
		_, _, cc, _ := s.snapshot()
		if err := cc.send(&Envelope{Kind: MsgPrepare, Attempt: n, Spec: c.spec(job, n, s.idx, workers, snap)}); err != nil {
			return &WorkerFailure{Worker: s.idx, Err: err}
		}
	}
	if err := c.awaitPhase(attemptCtx, slots, n, MsgReady, failCh); err != nil {
		return err
	}

	// Phase 2: Connect. Everyone (including us) dials every peer.
	for _, s := range slots {
		_, _, cc, _ := s.snapshot()
		if err := cc.send(&Envelope{Kind: MsgConnect, Attempt: n}); err != nil {
			return &WorkerFailure{Worker: s.idx, Err: err}
		}
	}
	addrs := make(map[int]string, len(workers))
	for i, a := range workers {
		addrs[i] = a
	}
	if err := tr.Dial(addrs, c.opts.DialTimeout); err != nil {
		return err // DialError: structured fail-fast, not restartable
	}
	if err := c.awaitPhase(attemptCtx, slots, n, MsgConnected, failCh); err != nil {
		return err
	}

	// Phase 3: Start everyone, run our own slice, await completion.
	for _, s := range slots {
		_, _, cc, _ := s.snapshot()
		if err := cc.send(&Envelope{Kind: MsgStart, Attempt: n}); err != nil {
			return &WorkerFailure{Worker: s.idx, Err: err}
		}
	}
	c.log().Info("exchange: attempt running", "attempt", n, "workers", c.opts.Workers)
	stopMonitor := c.monitorLiveness(slots)
	defer stopMonitor()
	execDone := make(chan error, 1)
	go func() { execDone <- env.Execute(attemptCtx) }()
	doneCh := make(chan *remoteFailure, len(slots))
	for _, s := range slots {
		go func(s *workerSlot) { doneCh <- c.awaitDone(attemptCtx, s, n) }(s)
	}

	var firstErr error
	fail := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
			cancel()
			c.abortAll(slots, n)
		}
	}
	localRunning, pending := true, len(slots)
	for localRunning || pending > 0 {
		select {
		case err := <-execDone:
			localRunning = false
			fail(err)
		case d := <-doneCh:
			pending--
			if d != nil {
				fail(d)
			}
		case err := <-failCh:
			fail(err)
		}
	}
	// A worker death racing normal completion: prefer the failure that
	// arrived during the run, then any late slot death already queued.
	if firstErr == nil {
		select {
		case err := <-failCh:
			fail(err)
		default:
		}
	}
	if firstErr != nil {
		return firstErr
	}

	res.Events = 0
	for _, st := range job.Streams {
		res.Events += int64(len(st.Events))
	}
	res.Total = sink.Total()
	res.Unique = sink.Unique()
	res.Checkpoints += env.CompletedCheckpoints()
	res.CheckpointStats = env.CheckpointStats()
	if job.CollectKeys {
		res.Keys = sink.Keys()
	}
	c.log().Info("exchange: attempt complete",
		"attempt", n, "matches", res.Total, "unique", res.Unique)
	return nil
}

// monitorLiveness is the coordinator-side failure detector: it watches
// every seat's lastHeard and declares a worker dead once it has been
// silent past the liveness deadline — catching blackholed peers whose TCP
// connections never deliver an error. A detected death closes the seat's
// control connection and reports a restartable WorkerFailure to the
// attempt in flight. Returns the stop function; no-op when disabled.
func (c *Coordinator) monitorLiveness(slots []*workerSlot) func() {
	liveness := c.opts.Liveness
	if liveness <= 0 || len(slots) == 0 {
		return func() {}
	}
	// Reset the clocks at run start: the time a worker spent seated before
	// this attempt must not count against it.
	now := time.Now()
	for _, s := range slots {
		s.mu.Lock()
		s.lastHeard = now
		s.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		period := liveness / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			for _, s := range slots {
				s.mu.Lock()
				age := time.Since(s.lastHeard)
				expired := s.alive && age > liveness
				name, cc := s.name, s.cc
				if expired {
					s.alive = false
				}
				s.mu.Unlock()
				if !expired {
					continue
				}
				c.opts.Metrics.RecordHeartbeatTimeout(age.Nanoseconds())
				c.log().Warn("exchange: worker heartbeat timeout",
					"worker", s.idx, "name", name, "silent_for", age.Round(time.Millisecond))
				if cc != nil {
					cc.close() // wake serveSlot; the seat re-fills on rejoin
				}
				c.reportFailure(&WorkerFailure{Worker: s.idx, Name: name,
					Err: fmt.Errorf("no heartbeat for %v (liveness deadline %v): worker unreachable or stalled",
						age.Round(time.Millisecond), liveness)})
			}
		}
	}()
	return func() { close(done) }
}

// awaitPhase collects one phase reply (Ready or Connected) from every
// slot, failing fast on phase errors, worker deaths, cancellation, or the
// phase deadline — a worker that never answers is named and the attempt
// fails restartable instead of hanging the choreography.
func (c *Coordinator) awaitPhase(ctx context.Context, slots []*workerSlot, attempt int, kind MsgKind, failCh chan error) error {
	var deadline <-chan time.Time
	if c.opts.PhaseTimeout > 0 {
		timer := time.NewTimer(c.opts.PhaseTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	for _, s := range slots {
		for {
			select {
			case e := <-s.phase:
				if e.Attempt != attempt {
					continue // stale reply from a superseded attempt
				}
				if e.Kind != kind {
					if e.Kind == MsgDone && e.Err != "" {
						return &remoteFailure{worker: s.idx, msg: e.Err, restartable: e.Restartable}
					}
					continue
				}
				if e.Err != "" {
					return fmt.Errorf("exchange: worker %d %s failed: %s", s.idx, kind, e.Err)
				}
			case err := <-failCh:
				return err
			case <-deadline:
				return c.phaseStalled(s, kind)
			case <-ctx.Done():
				return ctx.Err()
			}
			break
		}
	}
	return nil
}

// phaseStalled converts a phase-deadline expiry into a restartable
// failure naming the worker whose reply never came. The seat is marked
// dead and its control connection closed so recovery replaces the worker
// rather than re-asking a wedged process.
func (c *Coordinator) phaseStalled(s *workerSlot, kind MsgKind) error {
	s.mu.Lock()
	name, cc := s.name, s.cc
	s.alive = false
	s.mu.Unlock()
	if cc != nil {
		cc.close()
	}
	c.opts.Metrics.RecordHeartbeatTimeout(c.opts.PhaseTimeout.Nanoseconds())
	return &WorkerFailure{Worker: s.idx, Name: name,
		Err: fmt.Errorf("no %v reply within %v: choreography stalled", kind, c.opts.PhaseTimeout)}
}

// awaitDone waits for one worker's Done (nil on success), a failure, or
// cancellation (also nil — the canceller owns the error).
func (c *Coordinator) awaitDone(ctx context.Context, s *workerSlot, attempt int) *remoteFailure {
	for {
		select {
		case e := <-s.phase:
			if e.Attempt != attempt || e.Kind != MsgDone {
				continue
			}
			if e.Err != "" {
				return &remoteFailure{worker: s.idx, msg: e.Err, restartable: e.Restartable}
			}
			return nil
		case <-ctx.Done():
			return nil
		}
	}
}

// abortAll tells every live worker to cancel the attempt.
func (c *Coordinator) abortAll(slots []*workerSlot, attempt int) {
	for _, s := range slots {
		if _, _, cc, alive := s.snapshot(); alive {
			cc.send(&Envelope{Kind: MsgAbort, Attempt: attempt})
		}
	}
}

// broadcastBarrier ships a checkpoint barrier trigger to every worker
// (their sources inject it; workers without sources ignore it).
func (c *Coordinator) broadcastBarrier(attempt int, id int64) {
	c.mu.Lock()
	slots := append([]*workerSlot(nil), c.slots...)
	c.mu.Unlock()
	for _, s := range slots {
		if _, _, cc, alive := s.snapshot(); alive {
			cc.send(&Envelope{Kind: MsgBarrier, Attempt: attempt, CheckpointID: id})
		}
	}
}

// BuildStreams converts a per-type data map into the canonical stream
// list of a job spec (sorted by type name for a stable wire order).
func BuildStreams(data map[event.Type][]event.Event) []StreamSpec {
	names := make([]string, 0, len(data))
	byName := make(map[string]event.Type, len(data))
	for t := range data {
		n := event.TypeName(t)
		names = append(names, n)
		byName[n] = t
	}
	sortStrings(names)
	out := make([]StreamSpec, 0, len(names))
	for _, n := range names {
		out = append(out, StreamSpec{Name: n, Events: data[byName[n]]})
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
