package exchange

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"cep2asp/internal/core"
	"cep2asp/internal/obs"
	"cep2asp/internal/trace"
)

// TestTwoWorkerFederation is the metrics-federation acceptance test: after
// a 2-worker run, the coordinator's cluster view must contain both
// workers, the remote worker's federated snapshot must equal that
// worker's own registry, the per-worker Prometheus export must carry
// worker labels whose sink ingress sums to the job's match count, and the
// coordinator's tracer must hold spans from both processes including
// network hops.
func TestTwoWorkerFederation(t *testing.T) {
	regC := obs.NewRegistry()
	regW := obs.NewRegistry()

	coord, err := NewCoordinator(CoordinatorOptions{Workers: 2, Metrics: regC})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	w, err := StartWorker(context.Background(), coord.ControlAddr(), WorkerOptions{
		Name:    "fed-worker",
		Metrics: regW,
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	t.Cleanup(w.Close)
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(wctx); err != nil {
		t.Fatalf("waiting for workers: %v", err)
	}

	job := Job{
		Pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
			WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		Opts:      core.Options{UsePartitioning: true, Parallelism: 4},
		Engine:    testEngine(),
		Streams:   testStreams(t, false),
		DedupSink: true,
		Timeout:   60 * time.Second,
		TraceRate: 1,
	}
	res, err := coord.RunJob(context.Background(), job)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if res.Total == 0 {
		t.Fatal("degenerate case: no matches")
	}

	// The cluster provider is installed on the coordinator's registry.
	fn := regC.ClusterFn()
	if fn == nil {
		t.Fatal("coordinator did not install a cluster provider on its registry")
	}
	statuses := fn()
	if len(statuses) != 2 {
		t.Fatalf("cluster view has %d workers, want 2: %+v", len(statuses), statuses)
	}
	byWorker := make(map[int]obs.WorkerStatus)
	for _, st := range statuses {
		byWorker[st.Worker] = st
		if st.Goroutines <= 0 || st.HeapBytes == 0 {
			t.Fatalf("worker %d health not populated: %+v", st.Worker, st)
		}
	}
	remote, ok := byWorker[1]
	if !ok {
		t.Fatalf("worker 1 missing from cluster view: %+v", statuses)
	}
	if remote.Name != "fed-worker" {
		t.Fatalf("worker 1 reported name %q", remote.Name)
	}
	if remote.LastSeenMs < 0 || remote.LastSeenMs > 30_000 {
		t.Fatalf("worker 1 heartbeat age %dms implausible", remote.LastSeenMs)
	}

	// The federated snapshot must agree with the worker's own registry:
	// same per-operator ingress totals (the final stats push precedes Done,
	// and no records flow afterwards).
	ownIn := make(map[string]int64)
	for _, o := range regW.Snapshot().Operators {
		ownIn[fmt.Sprintf("%s/%d", o.Node, o.Instance)] = o.In
	}
	if len(remote.Snap.Operators) == 0 {
		t.Fatal("worker 1 federated snapshot has no operators")
	}
	for _, o := range remote.Snap.Operators {
		key := fmt.Sprintf("%s/%d", o.Node, o.Instance)
		if own, ok := ownIn[key]; !ok || own != o.In {
			t.Fatalf("federated snapshot diverges from worker registry at %s: federated %d, own %d",
				key, o.In, own)
		}
	}

	// Prometheus federation: both worker labels present, and the sink
	// ingress summed across workers equals the run's match count.
	var buf bytes.Buffer
	obs.WriteClusterPrometheus(&buf, statuses)
	text := buf.String()
	for _, label := range []string{`worker="0"`, `worker="1"`} {
		if !strings.Contains(text, label) {
			t.Fatalf("cluster export missing %s label:\n%s", label, text)
		}
	}
	var sinkIn int64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "cep2asp_operator_records_in_total{") ||
			!strings.Contains(line, `node="sink#`) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sinkIn += v
	}
	if sinkIn != res.Total {
		t.Fatalf("sink ingress across cluster sums to %d, run reported %d matches", sinkIn, res.Total)
	}

	// Trace federation: the coordinator's tracer must hold spans from both
	// processes, including the network hops between them.
	tr := coord.Tracer()
	if tr == nil {
		t.Fatal("no cluster tracer after a traced job")
	}
	workersSeen := make(map[int]bool)
	var nets int
	for _, s := range tr.Spans() {
		workersSeen[s.Worker] = true
		if s.Kind == trace.KindNet {
			nets++
		}
	}
	if !workersSeen[0] || !workersSeen[1] {
		t.Fatalf("trace spans cover workers %v, want both 0 and 1", workersSeen)
	}
	if nets == 0 {
		t.Fatal("2-worker traced run recorded no network-hop spans")
	}
}
