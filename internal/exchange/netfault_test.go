package exchange

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/core"
	"cep2asp/internal/obs"
	"cep2asp/internal/supervise"
)

// TestFlakyNetworkRecovery is the network fault-tolerance acceptance
// property: deterministic transport chaos — a dropped frame, a corrupted
// frame, a partition window — hits the worker→coordinator data link
// mid-run, the receiving side detects the damage (sequence gap or
// checksum mismatch), the job restarts from the latest checkpoint, and
// the recovered match set is identical to an unfailed single-process run.
func TestFlakyNetworkRecovery(t *testing.T) {
	o3 := core.Options{UsePartitioning: true, Parallelism: 4}
	cases := []struct {
		name    string
		pattern string
		fault   chaos.Fault
	}{
		{
			name: "SEQ/netcorrupt",
			pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			fault: chaos.Fault{Kind: chaos.NetCorrupt, From: 1, To: 0, AtHit: 40},
		},
		{
			name: "AND/netdrop",
			pattern: `PATTERN AND(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 50 AND v.value <= 50 AND q.id == v.id
				WITHIN 5 MINUTES SLIDE 1 MINUTE`,
			fault: chaos.Fault{Kind: chaos.NetDrop, From: 1, To: 0, AtHit: 40},
		},
		{
			name: "ITER/netpartition",
			pattern: `PATTERN ITER(QnVVelocity v, 3)
				WHERE v.value <= 60 AND v[i].id == v[i+1].id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			// A 30-send blackhole window: data frames and control messages
			// toward the coordinator vanish, then the link heals and the
			// first delivered frame exposes the sequence gap.
			fault: chaos.Fault{Kind: chaos.NetPartition, From: 1, To: 0, AtHit: 40, Times: 30},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job := Job{
				Pattern:            tc.pattern,
				Opts:               o3,
				Engine:             testEngine(),
				Streams:            testStreams(t, false),
				DedupSink:          true,
				KeepMatches:        true,
				CollectKeys:        true,
				CheckpointInterval: 20 * time.Millisecond,
				// Throttled sources stretch the run so the fault lands
				// mid-stream with checkpoints already completed.
				SourceRatePerSec: 600,
				Timeout:          60 * time.Second,
			}
			want := runSingleProcess(t, job)
			if len(want) == 0 {
				t.Fatal("degenerate case: unfailed run found no matches")
			}

			job.Faults = []chaos.Fault{tc.fault}
			coord := cluster(t, 2, CoordinatorOptions{})
			res, err := coord.RunJob(context.Background(), job)
			if err != nil {
				t.Fatalf("recovered run failed: %v", err)
			}
			if res.Restarts == 0 {
				t.Fatal("the net fault never forced a restart: detection is broken or the fault never fired")
			}
			got := sortedKeys(res.Keys)
			if len(got) != len(want) {
				t.Fatalf("recovered match set diverged: unfailed %d unique, recovered %d unique",
					len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("recovered match key %d diverged:\nunfailed  %s\nrecovered %s", i, want[i], got[i])
				}
			}
			t.Logf("recovered after %d restart(s), %d checkpoint(s)", res.Restarts, res.Checkpoints)
		})
	}
}

// TestNetResetHealsByReconnect: a mid-stream connection reset on the
// coordinator→worker data link is the transient tier of recovery — the
// sender still holds the unacked frame, so redial + retransmit heals the
// link in place. The job must complete with ZERO restarts, at least one
// recorded reconnect, and the exact unfailed match set.
func TestNetResetHealsByReconnect(t *testing.T) {
	job := Job{
		Pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
			WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		Opts:        core.Options{UsePartitioning: true, Parallelism: 4},
		Engine:      testEngine(),
		Streams:     testStreams(t, false),
		DedupSink:   true,
		KeepMatches: true,
		CollectKeys: true,
		Timeout:     60 * time.Second,
		Faults:      []chaos.Fault{{Kind: chaos.NetReset, From: 0, To: 1, AtHit: 20}},
	}
	want := runSingleProcess(t, job)
	if len(want) == 0 {
		t.Fatal("degenerate case: unfailed run found no matches")
	}

	reg := obs.NewRegistry()
	coord := cluster(t, 2, CoordinatorOptions{Metrics: reg})
	res, err := coord.RunJob(context.Background(), job)
	if err != nil {
		t.Fatalf("run with netreset failed: %v", err)
	}
	if res.Restarts != 0 {
		t.Fatalf("netreset escalated to %d restart(s); a reset must heal by reconnect alone", res.Restarts)
	}
	if h := reg.Health(); h.Reconnects < 1 {
		t.Fatalf("no reconnect recorded (health %+v); the reset fault never fired or healing bypassed the counter", h)
	}
	got := sortedKeys(res.Keys)
	if len(got) != len(want) {
		t.Fatalf("healed match set diverged: unfailed %d unique, healed %d unique", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("healed match key %d diverged:\nunfailed %s\nhealed   %s", i, want[i], got[i])
		}
	}
}

// TestHeartbeatDetectsBlackholedWorker: a worker whose every message
// toward the coordinator vanishes (an effectively permanent asymmetric
// partition) produces no TCP error anywhere — only the coordinator's
// heartbeat failure detector can notice. It must declare the worker dead
// within the liveness deadline, restart from the latest checkpoint with a
// respawned replacement, and still produce the unfailed match set.
func TestHeartbeatDetectsBlackholedWorker(t *testing.T) {
	job := Job{
		Pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
			WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		Opts:               core.Options{UsePartitioning: true, Parallelism: 4},
		Engine:             testEngine(),
		Streams:            testStreams(t, false),
		DedupSink:          true,
		KeepMatches:        true,
		CollectKeys:        true,
		CheckpointInterval: 20 * time.Millisecond,
		SourceRatePerSec:   600,
		Timeout:            60 * time.Second,
		// The window never exhausts within the job: worker 1 goes dark
		// toward the coordinator a few dozen sends into the run and stays
		// dark. Silence, not an error, is the only signal.
		Faults: []chaos.Fault{{Kind: chaos.NetPartition, From: 1, To: 0, AtHit: 30, Times: 1 << 40}},
	}
	want := runSingleProcess(t, job)
	if len(want) == 0 {
		t.Fatal("degenerate case: unfailed run found no matches")
	}

	reg := obs.NewRegistry()
	liveness := 700 * time.Millisecond
	var coordAddr string
	var respawns atomic.Int32
	coord, err := NewCoordinator(CoordinatorOptions{
		Workers:  2,
		Metrics:  reg,
		Liveness: liveness,
		Respawn: func(attempt int) error {
			n := respawns.Add(1)
			w, err := StartWorker(context.Background(), coordAddr, WorkerOptions{
				Name:          fmt.Sprintf("respawned-%d-%d", attempt, n),
				StatsInterval: 50 * time.Millisecond,
			})
			if err != nil {
				return err
			}
			t.Cleanup(w.Close)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coordAddr = coord.ControlAddr()
	w, err := StartWorker(context.Background(), coordAddr, WorkerOptions{
		Name: "blackholed", StatsInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(waitCtx); err != nil {
		t.Fatal(err)
	}

	res, err := coord.RunJob(context.Background(), job)
	if err != nil {
		t.Fatalf("run with blackholed worker failed: %v", err)
	}
	if res.Restarts == 0 {
		t.Fatal("blackholed worker was never detected: run completed without a restart")
	}
	if respawns.Load() == 0 {
		t.Fatal("recovery never respawned a worker")
	}
	h := reg.Health()
	if h.HeartbeatTimeouts < 1 {
		t.Fatalf("no heartbeat timeout recorded (health %+v); detection happened some other way", h)
	}
	// Detection latency is bounded: the detector ticks at liveness/4, so
	// silence is noticed within liveness + one tick (plus scheduling slack).
	if maxMs := (2 * liveness).Milliseconds(); h.DetectLatencyMs > maxMs {
		t.Fatalf("detection took %dms; the liveness deadline of %v is not enforced", h.DetectLatencyMs, liveness)
	}
	got := sortedKeys(res.Keys)
	if len(got) != len(want) {
		t.Fatalf("recovered match set diverged: unfailed %d unique, recovered %d unique", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("recovered match key %d diverged:\nunfailed  %s\nrecovered %s", i, want[i], got[i])
		}
	}
	t.Logf("detected in %dms (liveness %v), %d restart(s)", h.DetectLatencyMs, liveness, res.Restarts)
}

// TestWriteDeadlineBoundsBlackholedSend is the regression test for the
// per-frame write deadline: a peer that accepts the connection and then
// never reads eventually fills the kernel send buffer, and without a
// deadline the sending goroutine blocks forever (this test hangs on
// pre-deadline code). With the deadline the send must fail within a
// bounded window.
func TestWriteDeadlineBoundsBlackholedSend(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var hs [12]byte
		io.ReadFull(c, hs[:]) // consume the handshake, then never read again
		<-stop
	}()

	nc := defaultNetConfig()
	nc.writeTimeout = 150 * time.Millisecond
	nc.dialRetries = 0
	nc.reconnects = 0 // a reconnect would hand the sender a fresh, empty kernel buffer
	tr := newTransport(context.Background(), transportCfg{me: 0, table: testTable(), net: nc})
	defer tr.Close()
	if err := tr.Dial(map[int]string{1: ln.Addr().String()}, time.Second); err != nil {
		t.Fatal(err)
	}
	send, err := tr.Egress(1, "join", 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	batch := make([]asp.Record, 4096)
	for i := range batch {
		batch[i] = asp.Record{Kind: asp.KindEOS, Src: 7}
	}
	start := time.Now()
	for err == nil {
		if time.Since(start) > 60*time.Second {
			t.Fatal("blackholed send never failed: the write deadline is not applied")
		}
		err = send(batch)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("send failed with %v; want a write-deadline expiry", err)
	}
	t.Logf("blackholed send failed after %v: %v", time.Since(start).Round(time.Millisecond), err)
}

// TestPhaseDeadlineNamesStuckWorker is the regression test for the
// choreography deadlines: a worker that joins and then never answers the
// Prepare phase must not hang the job — the coordinator names it in a
// restartable failure once the phase deadline expires.
func TestPhaseDeadlineNamesStuckWorker(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorOptions{
		Workers:      2,
		PhaseTimeout: 300 * time.Millisecond,
		JoinTimeout:  2 * time.Second,
		Policy:       &supervise.Policy{MaxRestarts: 0}, // surface the first failure
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	// A wedged worker: joins with a valid Hello, then reads envelopes
	// forever without ever replying.
	conn, err := net.Dial("tcp", coord.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	cc := newCtrlConn(conn)
	if err := cc.send(&Envelope{Kind: MsgHello, Name: "wedged", DataAddr: "127.0.0.1:9"}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := cc.recv(); err != nil {
				return
			}
		}
	}()
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(waitCtx); err != nil {
		t.Fatal(err)
	}

	job := Job{
		Pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
			WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		Opts:    core.Options{UsePartitioning: true, Parallelism: 4},
		Engine:  testEngine(),
		Streams: testStreams(t, false),
		Timeout: 20 * time.Second,
	}
	start := time.Now()
	_, err = coord.RunJob(context.Background(), job)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("job with a wedged worker succeeded")
	}
	var wf *WorkerFailure
	if !errors.As(err, &wf) {
		t.Fatalf("want *WorkerFailure naming the stuck worker, got %T: %v", err, err)
	}
	if wf.Worker != 1 || wf.Name != "wedged" {
		t.Fatalf("failure misattributed: %+v", wf)
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("failure does not describe the stall: %v", err)
	}
	if !wf.Restartable() {
		t.Fatal("phase stall must be restartable")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("stall detection took %v; the phase deadline is not enforced", elapsed)
	}
}
