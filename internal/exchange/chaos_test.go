package exchange

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"cep2asp/internal/chaos"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

// killTarget finds a partitioned node in the job's graph whose instance 1
// lives on worker 1 under ModuloOwner — the instance whose chaos fault
// takes the whole worker process down.
func killTarget(t *testing.T, job Job) string {
	t.Helper()
	pat, err := sea.Parse(job.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	var plan *core.Plan
	if job.FCEP {
		plan, err = core.TranslateFCEP(pat, job.Opts)
	} else {
		plan, err = core.Translate(pat, job.Opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	data := make(map[event.Type][]event.Event, len(job.Streams))
	for _, st := range job.Streams {
		data[event.RegisterType(st.Name)] = st.Events
	}
	env, _, err := core.Build(plan, core.BuildConfig{Data: data})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range env.Nodes() {
		if n.Parallelism > 1 {
			return n.Name
		}
	}
	t.Fatal("no partitioned node in the plan; the kill needs a remote instance")
	return ""
}

// TestWorkerKillRecovery is the distributed fault-tolerance acceptance
// property: a chaos fault kills one worker process mid-run (its network
// connections are severed without goodbyes), the coordinator detects the
// death, a replacement worker is spawned, the job restores from the
// latest checkpoint and replays — and the recovered match set is
// identical to an unfailed single-process run. Covered for SEQ and NSEQ
// under both the decomposed (FASP) and monolithic-NFA (FCEP) engine
// modes.
func TestWorkerKillRecovery(t *testing.T) {
	o3 := core.Options{UsePartitioning: true, Parallelism: 4}
	cases := []struct {
		name    string
		pattern string
		fcep    bool
		pm10    bool
	}{
		{
			name: "SEQ/FASP",
			pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		},
		{
			name: "SEQ/FCEP",
			pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			fcep: true,
		},
		{
			name: "NSEQ/FASP",
			pattern: `PATTERN SEQ(QnVQuantity q, !PM10 x, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND x.value >= 90 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			pm10: true,
		},
		{
			name: "NSEQ/FCEP",
			pattern: `PATTERN SEQ(QnVQuantity q, !PM10 x, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND x.value >= 90 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			fcep: true,
			pm10: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job := Job{
				Pattern:            tc.pattern,
				FCEP:               tc.fcep,
				Opts:               o3,
				Engine:             testEngine(),
				Streams:            testStreams(t, tc.pm10),
				DedupSink:          true,
				KeepMatches:        true,
				CollectKeys:        true,
				CheckpointInterval: 20 * time.Millisecond,
				// Throttled sources stretch the run so checkpoints complete
				// before the kill and the kill lands mid-stream.
				SourceRatePerSec: 600,
				Timeout:          60 * time.Second,
			}
			want := runSingleProcess(t, job)
			if len(want) == 0 {
				t.Fatal("degenerate case: unfailed run found no matches")
			}

			job.Faults = []chaos.Fault{{
				Kind:     chaos.KillWorker,
				Node:     killTarget(t, job),
				Instance: 1, // 1 mod 2 → worker 1: a remote process dies
				AtHit:    30,
			}}

			// The hook closes over the coordinator address, which exists
			// only after construction; Respawn first fires on recovery,
			// long after the assignment below.
			var coordAddr string
			var respawns atomic.Int32
			coord := cluster(t, 2, CoordinatorOptions{
				Respawn: func(attempt int) error {
					n := respawns.Add(1)
					w, err := StartWorker(context.Background(), coordAddr, WorkerOptions{
						Name: fmt.Sprintf("respawned-%d-%d", attempt, n),
					})
					if err != nil {
						return err
					}
					t.Cleanup(w.Close)
					return nil
				},
			})
			coordAddr = coord.ControlAddr()

			res, err := coord.RunJob(context.Background(), job)
			if err != nil {
				t.Fatalf("recovered run failed: %v", err)
			}
			if res.Restarts == 0 {
				t.Fatal("the kill fault never fired: run completed without a restart")
			}
			if respawns.Load() == 0 {
				t.Fatal("recovery never respawned a worker")
			}
			got := sortedKeys(res.Keys)
			if len(got) != len(want) {
				t.Fatalf("recovered match set diverged: unfailed %d unique, recovered %d unique",
					len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("recovered match key %d diverged:\nunfailed  %s\nrecovered %s", i, want[i], got[i])
				}
			}
			t.Logf("recovered after %d restart(s), %d checkpoint(s) completed", res.Restarts, res.Checkpoints)
		})
	}
}

// sortedKeys is a tiny helper for set comparison in recovery tests.
func sortedKeys(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	return out
}
