package exchange

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/sea"
	"cep2asp/internal/workload"
)

// testEngine keeps the runs small and fast; tiny channels and batches
// force real backpressure over the network edges.
func testEngine() EngineSettings {
	return EngineSettings{
		DefaultParallelism: 1,
		ChannelCapacity:    8,
		WatermarkInterval:  64,
		BatchSize:          16,
	}
}

// testStreams synthesizes the traffic streams (plus PM10 for negation
// patterns) as a job spec stream list.
func testStreams(t *testing.T, withPM10 bool) []StreamSpec {
	t.Helper()
	q, v := workload.QnV(workload.QnVConfig{Sensors: 8, Minutes: 30, Seed: 42})
	data := map[event.Type][]event.Event{
		workload.TypeQuantity: q,
		workload.TypeVelocity: v,
	}
	if withPM10 {
		pm10, _, _, _ := workload.AirQuality(workload.AQConfig{Sensors: 8, Minutes: 30, Seed: 42})
		data[workload.TypePM10] = pm10
	}
	return BuildStreams(data)
}

// runSingleProcess executes the job in-process with no distribution layer
// at all — the ground truth the distributed run must reproduce.
func runSingleProcess(t *testing.T, job Job) []string {
	t.Helper()
	pat, err := sea.Parse(job.Pattern)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var plan *core.Plan
	if job.FCEP {
		plan, err = core.TranslateFCEP(pat, job.Opts)
	} else {
		plan, err = core.Translate(pat, job.Opts)
	}
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	data := make(map[event.Type][]event.Event, len(job.Streams))
	for _, st := range job.Streams {
		// Copy: the distributed run shares the same backing slices.
		data[event.RegisterType(st.Name)] = append([]event.Event(nil), st.Events...)
	}
	e := job.Engine
	env, res, err := core.Build(plan, core.BuildConfig{
		Engine: asp.Config{
			DefaultParallelism: e.DefaultParallelism,
			ChannelCapacity:    e.ChannelCapacity,
			WatermarkInterval:  e.WatermarkInterval,
			BatchSize:          e.BatchSize,
		},
		Data:        data,
		DedupSink:   true,
		KeepMatches: true,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := env.Execute(ctx); err != nil {
		t.Fatalf("single-process execute: %v", err)
	}
	keys := res.Keys()
	sort.Strings(keys)
	return keys
}

// cluster spins up an in-process coordinator plus workers-1 worker
// runtimes talking over real loopback TCP.
func cluster(t *testing.T, workers int, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	opts.Workers = workers
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	for i := 1; i < workers; i++ {
		w, err := StartWorker(context.Background(), coord.ControlAddr(), WorkerOptions{
			Name: fmt.Sprintf("testworker-%d", i),
		})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(w.Close)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(ctx); err != nil {
		t.Fatalf("waiting for workers: %v", err)
	}
	return coord
}

// TestDistributedEquivalence is the core acceptance property: a 2-worker
// localhost run produces the identical deduplicated match set as a
// single-process run, for SEQ, AND, ITER and NSEQ under both the
// decomposed (FASP) and monolithic-NFA (FCEP) translations. All patterns
// carry the sensor-id equi predicate so O3 partitioning spreads real
// operator instances across the process boundary.
func TestDistributedEquivalence(t *testing.T) {
	o3 := core.Options{UsePartitioning: true, Parallelism: 4}
	o3join := core.Options{UseIntervalJoin: true, UsePartitioning: true, Parallelism: 4}
	cases := []struct {
		name    string
		pattern string
		opts    core.Options
		fcep    bool
		pm10    bool
	}{
		{
			name: "SEQ/FASP",
			pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			opts: o3join,
		},
		{
			name: "SEQ/FCEP",
			pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			opts: o3,
			fcep: true,
		},
		{
			name: "AND/FASP",
			pattern: `PATTERN AND(QnVQuantity q, QnVVelocity v)
				WHERE q.value >= 50 AND v.value <= 50 AND q.id == v.id
				WITHIN 5 MINUTES SLIDE 1 MINUTE`,
			opts: o3,
		},
		{
			name: "ITER/FASP",
			pattern: `PATTERN ITER(QnVVelocity v, 3)
				WHERE v.value <= 60 AND v[i].id == v[i+1].id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			opts: o3,
		},
		{
			name: "ITER/FCEP",
			pattern: `PATTERN ITER(QnVVelocity v, 3)
				WHERE v.value <= 60 AND v[i].id == v[i+1].id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			opts: o3,
			fcep: true,
		},
		{
			name: "NSEQ/FASP",
			pattern: `PATTERN SEQ(QnVQuantity q, !PM10 x, QnVVelocity v)
				WHERE q.value >= 40 AND v.value <= 60 AND x.value >= 90 AND q.id == v.id
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			opts: o3,
			pm10: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job := Job{
				Pattern:     tc.pattern,
				FCEP:        tc.fcep,
				Opts:        tc.opts,
				Engine:      testEngine(),
				Streams:     testStreams(t, tc.pm10),
				DedupSink:   true,
				KeepMatches: true,
				CollectKeys: true,
				Timeout:     60 * time.Second,
			}
			want := runSingleProcess(t, job)

			coord := cluster(t, 2, CoordinatorOptions{})
			res, err := coord.RunJob(context.Background(), job)
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}
			got := append([]string(nil), res.Keys...)
			sort.Strings(got)
			if len(want) == 0 {
				t.Fatalf("degenerate case: single-process run found no matches")
			}
			if len(got) != len(want) {
				t.Fatalf("match set diverged: single-process %d unique, distributed %d unique", len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("match key %d diverged:\nsingle-process %s\ndistributed    %s", i, want[i], got[i])
				}
			}
		})
	}
}

// TestThreeWorkers spreads instances over two remote workers plus the
// coordinator to cover the many-peer wiring (every worker dials every
// other).
func TestThreeWorkers(t *testing.T) {
	job := Job{
		Pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
			WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		Opts:        core.Options{UsePartitioning: true, Parallelism: 6},
		Engine:      testEngine(),
		Streams:     testStreams(t, false),
		DedupSink:   true,
		KeepMatches: true,
		CollectKeys: true,
		Timeout:     60 * time.Second,
	}
	want := runSingleProcess(t, job)
	coord := cluster(t, 3, CoordinatorOptions{})
	res, err := coord.RunJob(context.Background(), job)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	got := append([]string(nil), res.Keys...)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("match set diverged: single-process %d unique, distributed %d unique", len(want), len(got))
	}
}

// TestSingleWorkerDegenerate: a 1-worker "cluster" is just the coordinator
// running everything locally through the distributed code path.
func TestSingleWorkerDegenerate(t *testing.T) {
	job := Job{
		Pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
			WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		Opts:        core.Options{UsePartitioning: true, Parallelism: 2},
		Engine:      testEngine(),
		Streams:     testStreams(t, false),
		DedupSink:   true,
		KeepMatches: true,
		CollectKeys: true,
		Timeout:     60 * time.Second,
	}
	want := runSingleProcess(t, job)
	coord := cluster(t, 1, CoordinatorOptions{})
	res, err := coord.RunJob(context.Background(), job)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	got := append([]string(nil), res.Keys...)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("match set diverged: single-process %d unique, distributed %d unique", len(want), len(got))
	}
}

// TestNetworkMetrics: a 2-worker run must account frames and bytes in
// both directions on both ends.
func TestNetworkMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	job := Job{
		Pattern: `PATTERN SEQ(QnVQuantity q, QnVVelocity v)
			WHERE q.value >= 40 AND v.value <= 60 AND q.id == v.id
			WITHIN 10 MINUTES SLIDE 1 MINUTE`,
		Opts:        core.Options{UsePartitioning: true, Parallelism: 4},
		Engine:      testEngine(),
		Streams:     testStreams(t, false),
		DedupSink:   true,
		KeepMatches: true,
		CollectKeys: true,
		Timeout:     60 * time.Second,
	}
	coord := cluster(t, 2, CoordinatorOptions{Metrics: reg})
	if _, err := coord.RunJob(context.Background(), job); err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	snap := reg.Snapshot()
	if len(snap.Nets) == 0 {
		t.Fatal("no network peers recorded")
	}
	var out, in int64
	for _, n := range snap.Nets {
		out += n.FramesOut
		in += n.FramesIn
	}
	if out == 0 || in == 0 {
		t.Fatalf("network edges idle: %d frames out, %d frames in", out, in)
	}
}
