// Package event defines the data and time model shared by both stream
// processing paradigms implemented in this repository: plain analytical
// stream processing (ASP) tuples and complex event processing (CEP) events.
//
// Following the paper (§2, "Data Model"), an event is a tuple with a creation
// timestamp, and both paradigms share one schema. The paper's evaluation uses
// a common POJO schema (id, lat, lon, ts, value) plus a child class per
// measurement type; we mirror that with a fixed struct carrying a Type tag.
// Composite events (pattern matches) are represented by Match, a tuple
// ce(e1..en, tsB, tsE) as defined in §2.
package event

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Type identifies an event type T ∈ ε (the universe of event types).
// Types are small integers so operators can switch on them cheaply; the
// registry in types.go maps them to names.
type Type int32

// Time is an event timestamp in milliseconds since an arbitrary epoch.
// Event time is discrete and strictly increasing per producer (§2).
type Time = int64

// Millisecond-based duration helpers. The paper specifies windows in
// minutes; generators emit one tuple per sensor per minute (QnV) or per
// 3-5 minutes (AQ).
const (
	Millisecond Time = 1
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// DurationToMillis converts a time.Duration to the engine's millisecond
// time unit, rounding down.
func DurationToMillis(d time.Duration) Time { return Time(d / time.Millisecond) }

// Event is a single stream tuple. It instantiates exactly the schema the
// paper's evaluation uses for all sources (§5.1.3): a sensor ID, coordinates,
// the event-time timestamp, and one measurement value, tagged with its event
// type.
//
// Two auxiliary fields extend the schema for engine-internal purposes:
//
//   - Ingest records the wall-clock creation time of the tuple
//     (nanoseconds); the paper derives detection latency from creation time
//     because all data is produced in the cloud (§5.1.3, "Metrics").
//   - AuxTS holds a derived timestamp attribute. The NSEQ mapping (§4.1,
//     "Negated Sequence") attaches an attribute ats to every T1 event: the
//     timestamp of the next T2 occurrence, or e1.ts+W if none occurred.
type Event struct {
	Type   Type
	ID     int64
	Lat    float64
	Lon    float64
	TS     Time
	Value  float64
	Ingest int64
	AuxTS  Time
}

// Attr names addressable from pattern predicates.
const (
	AttrID    = "id"
	AttrLat   = "lat"
	AttrLon   = "lon"
	AttrTS    = "ts"
	AttrValue = "value"
	AttrAuxTS = "ats"
)

// Attr returns the named attribute of e as a float64 (the predicate
// expression language is numeric). Unknown names return ok=false.
func (e Event) Attr(name string) (float64, bool) {
	switch name {
	case AttrID:
		return float64(e.ID), true
	case AttrLat:
		return e.Lat, true
	case AttrLon:
		return e.Lon, true
	case AttrTS:
		return float64(e.TS), true
	case AttrValue:
		return e.Value, true
	case AttrAuxTS:
		return float64(e.AuxTS), true
	default:
		return 0, false
	}
}

// String renders the event for logs and test failure messages.
func (e Event) String() string {
	return fmt.Sprintf("%s{id=%d ts=%d value=%g}", TypeName(e.Type), e.ID, e.TS, e.Value)
}

// Match is a composite event ce(e1,...,en, tsB, tsE): the ordered list of
// events that participated in a pattern match, together with the timestamps
// of the first and last occurred event (§2). Matches are also the unit
// flowing between consecutive joins when a nested pattern is decomposed
// (§4.2.2).
type Match struct {
	Events []Event
	TsB    Time // min event time over Events
	TsE    Time // max event time over Events
}

// NewMatch builds a match from its constituents, computing TsB/TsE.
func NewMatch(events ...Event) *Match {
	m := &Match{Events: events}
	m.recompute()
	return m
}

func (m *Match) recompute() {
	if len(m.Events) == 0 {
		m.TsB, m.TsE = 0, 0
		return
	}
	m.TsB, m.TsE = m.Events[0].TS, m.Events[0].TS
	for _, e := range m.Events[1:] {
		if e.TS < m.TsB {
			m.TsB = e.TS
		}
		if e.TS > m.TsE {
			m.TsE = e.TS
		}
	}
}

// Extend returns a new match with e appended. The receiver is not modified;
// constituent slices are copied so partial matches can branch safely
// (skip-till-any-match keeps the original partial alive).
func (m *Match) Extend(e Event) *Match {
	events := make([]Event, len(m.Events)+1)
	copy(events, m.Events)
	events[len(m.Events)] = e
	n := &Match{Events: events, TsB: m.TsB, TsE: m.TsE}
	if len(m.Events) == 0 {
		n.TsB, n.TsE = e.TS, e.TS
		return n
	}
	if e.TS < n.TsB {
		n.TsB = e.TS
	}
	if e.TS > n.TsE {
		n.TsE = e.TS
	}
	return n
}

// Concat returns the concatenation of two matches, as produced by a join of
// two (partial) matches.
func Concat(a, b *Match) *Match {
	events := make([]Event, 0, len(a.Events)+len(b.Events))
	events = append(events, a.Events...)
	events = append(events, b.Events...)
	n := &Match{Events: events, TsB: a.TsB, TsE: a.TsE}
	if b.TsB < n.TsB {
		n.TsB = b.TsB
	}
	if b.TsE > n.TsE {
		n.TsE = b.TsE
	}
	return n
}

// WrapMatch builds a match that takes ownership of the given constituent
// slice — no copy — computing TsB/TsE. The caller must not retain or mutate
// the slice afterwards; join operators use it to assemble matches into
// recycled buffers without the extra copies Concat would make.
func WrapMatch(events []Event) *Match {
	m := &Match{Events: events}
	m.recompute()
	return m
}

// Ingest returns the maximum wall-clock creation time over the match's
// constituents; detection latency is sink-time minus this value (§5.1.3).
func (m *Match) Ingest() int64 {
	var max int64
	for _, e := range m.Events {
		if e.Ingest > max {
			max = e.Ingest
		}
	}
	return max
}

// Key returns a canonical identity for duplicate elimination: the sorted
// list of constituent identities (type, id, timestamp). Two matches over
// the same event set are duplicates regardless of constituent order, which
// makes keys stable under join reordering (§4.2.2); sliding windows produce
// duplicates whenever a match fits several overlapping windows (§3.1.4,
// second impact).
func (m *Match) Key() string {
	parts := make([]string, len(m.Events))
	for i, e := range m.Events {
		parts[i] = fmt.Sprintf("%d:%d:%d", e.Type, e.ID, e.TS)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// String renders the match for logs and test failures.
func (m *Match) String() string {
	parts := make([]string, len(m.Events))
	for i, e := range m.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("ce[%s; tsB=%d tsE=%d]", strings.Join(parts, ", "), m.TsB, m.TsE)
}
