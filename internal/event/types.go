package event

import (
	"fmt"
	"sort"
	"sync"
)

// The type registry maps Type values to human-readable names. Event types in
// CEP either carry a type attribute or must be inferable (§2); we make the
// type explicit, as the paper's POJO child classes do.
//
// The registry is global because event types name schema-level concepts
// shared by generators, patterns, and operators across a process. Access is
// synchronized so tests and concurrent pipelines may register types freely.
var registry = struct {
	sync.RWMutex
	names  map[Type]string
	byName map[string]Type
	next   Type
}{
	names:  make(map[Type]string),
	byName: make(map[string]Type),
	next:   1,
}

// RegisterType returns the Type for name, allocating a fresh one on first
// use. Registration is idempotent: the same name always yields the same
// Type within a process.
func RegisterType(name string) Type {
	registry.Lock()
	defer registry.Unlock()
	if t, ok := registry.byName[name]; ok {
		return t
	}
	t := registry.next
	registry.next++
	registry.names[t] = name
	registry.byName[name] = t
	return t
}

// LookupType resolves a registered type name. ok is false if the name was
// never registered.
func LookupType(name string) (Type, bool) {
	registry.RLock()
	defer registry.RUnlock()
	t, ok := registry.byName[name]
	return t, ok
}

// TypeName returns the registered name of t, or a placeholder for unknown
// types.
func TypeName(t Type) string {
	registry.RLock()
	defer registry.RUnlock()
	if n, ok := registry.names[t]; ok {
		return n
	}
	return fmt.Sprintf("type(%d)", t)
}

// RegisteredTypes returns all registered type names, sorted. Intended for
// diagnostics and the cep2asp CLI.
func RegisteredTypes() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.byName))
	for n := range registry.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
