package event

import "math"

// Watermark sentinels. A watermark of time T asserts that no event with
// timestamp <= T will arrive afterwards; MaxWatermark therefore marks the
// end of a stream.
const (
	MinWatermark Time = math.MinInt64
	MaxWatermark Time = math.MaxInt64
)

// FloorDiv divides a by b rounding towards negative infinity, so pane and
// window indexes stay consistent for negative timestamps.
func FloorDiv(a, b Time) Time {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// PaneIndex returns the index of the slide-sized pane containing ts: panes
// partition the time axis into [k*slide, (k+1)*slide).
func PaneIndex(ts, slide Time) Time { return FloorDiv(ts, slide) }

// WindowsOf reports the range of sliding-window start indexes [kLo, kHi]
// whose window [k*slide, k*slide+size) contains ts.
func WindowsOf(ts, size, slide Time) (kLo, kHi Time) {
	kHi = FloorDiv(ts, slide)
	kLo = FloorDiv(ts-size, slide) + 1
	return kLo, kHi
}
