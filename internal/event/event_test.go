package event

import (
	"testing"
	"testing/quick"
)

func TestRegisterTypeIdempotent(t *testing.T) {
	a := RegisterType("TestQ")
	b := RegisterType("TestQ")
	if a != b {
		t.Fatalf("RegisterType not idempotent: %d vs %d", a, b)
	}
	if got := TypeName(a); got != "TestQ" {
		t.Fatalf("TypeName = %q, want TestQ", got)
	}
	if lt, ok := LookupType("TestQ"); !ok || lt != a {
		t.Fatalf("LookupType = %d,%v want %d,true", lt, ok, a)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := LookupType("never-registered-type"); ok {
		t.Fatal("LookupType returned ok for unknown name")
	}
	if got := TypeName(Type(1 << 30)); got == "" {
		t.Fatal("TypeName for unknown type should be non-empty placeholder")
	}
}

func TestRegisteredTypesSorted(t *testing.T) {
	RegisterType("ZZTest")
	RegisterType("AATest")
	names := RegisteredTypes()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("RegisteredTypes not sorted: %q > %q", names[i-1], names[i])
		}
	}
}

func TestEventAttr(t *testing.T) {
	e := Event{Type: 1, ID: 7, Lat: 52.5, Lon: 13.4, TS: 42, Value: 99.5, AuxTS: 50}
	tests := []struct {
		name string
		want float64
	}{
		{AttrID, 7},
		{AttrLat, 52.5},
		{AttrLon, 13.4},
		{AttrTS, 42},
		{AttrValue, 99.5},
		{AttrAuxTS, 50},
	}
	for _, tc := range tests {
		got, ok := e.Attr(tc.name)
		if !ok || got != tc.want {
			t.Errorf("Attr(%q) = %v,%v want %v,true", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := e.Attr("nope"); ok {
		t.Error("Attr of unknown name returned ok")
	}
}

func TestNewMatchTimestamps(t *testing.T) {
	m := NewMatch(
		Event{Type: 1, TS: 30},
		Event{Type: 2, TS: 10},
		Event{Type: 3, TS: 20},
	)
	if m.TsB != 10 || m.TsE != 30 {
		t.Fatalf("TsB,TsE = %d,%d want 10,30", m.TsB, m.TsE)
	}
}

func TestNewMatchEmpty(t *testing.T) {
	m := NewMatch()
	if m.TsB != 0 || m.TsE != 0 {
		t.Fatalf("empty match TsB,TsE = %d,%d want 0,0", m.TsB, m.TsE)
	}
}

func TestExtendDoesNotMutate(t *testing.T) {
	base := NewMatch(Event{Type: 1, TS: 5})
	ext1 := base.Extend(Event{Type: 2, TS: 9})
	ext2 := base.Extend(Event{Type: 3, TS: 1})
	if len(base.Events) != 1 {
		t.Fatalf("Extend mutated receiver: %d events", len(base.Events))
	}
	if ext1.TsE != 9 || ext1.TsB != 5 {
		t.Fatalf("ext1 TsB,TsE = %d,%d want 5,9", ext1.TsB, ext1.TsE)
	}
	if ext2.TsB != 1 || ext2.TsE != 5 {
		t.Fatalf("ext2 TsB,TsE = %d,%d want 1,5", ext2.TsB, ext2.TsE)
	}
}

func TestExtendFromEmpty(t *testing.T) {
	m := NewMatch().Extend(Event{Type: 1, TS: 77})
	if m.TsB != 77 || m.TsE != 77 {
		t.Fatalf("TsB,TsE = %d,%d want 77,77", m.TsB, m.TsE)
	}
}

func TestConcat(t *testing.T) {
	a := NewMatch(Event{Type: 1, TS: 10}, Event{Type: 2, TS: 20})
	b := NewMatch(Event{Type: 3, TS: 5})
	c := Concat(a, b)
	if len(c.Events) != 3 {
		t.Fatalf("Concat has %d events, want 3", len(c.Events))
	}
	if c.TsB != 5 || c.TsE != 20 {
		t.Fatalf("TsB,TsE = %d,%d want 5,20", c.TsB, c.TsE)
	}
	// Order is preserved: a's events first.
	if c.Events[0].Type != 1 || c.Events[2].Type != 3 {
		t.Fatal("Concat did not preserve constituent order")
	}
}

func TestMatchIngest(t *testing.T) {
	m := NewMatch(Event{Ingest: 5}, Event{Ingest: 42}, Event{Ingest: 17})
	if got := m.Ingest(); got != 42 {
		t.Fatalf("Ingest = %d, want 42", got)
	}
}

func TestMatchKeyDistinguishes(t *testing.T) {
	a := NewMatch(Event{Type: 1, ID: 1, TS: 10}, Event{Type: 2, ID: 1, TS: 20})
	b := NewMatch(Event{Type: 1, ID: 1, TS: 10}, Event{Type: 2, ID: 1, TS: 21})
	c := NewMatch(Event{Type: 1, ID: 1, TS: 10}, Event{Type: 2, ID: 1, TS: 20})
	if a.Key() == b.Key() {
		t.Fatal("different matches share a key")
	}
	if a.Key() != c.Key() {
		t.Fatal("identical matches have different keys")
	}
}

// Property: Concat timestamps always equal min/max over all constituents.
func TestConcatTimestampProperty(t *testing.T) {
	f := func(tsA, tsB, tsC, tsD int16) bool {
		a := NewMatch(Event{TS: Time(tsA)}, Event{TS: Time(tsB)})
		b := NewMatch(Event{TS: Time(tsC)}, Event{TS: Time(tsD)})
		c := Concat(a, b)
		min, max := c.Events[0].TS, c.Events[0].TS
		for _, e := range c.Events {
			if e.TS < min {
				min = e.TS
			}
			if e.TS > max {
				max = e.TS
			}
		}
		return c.TsB == min && c.TsE == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend never lowers TsE below the new event's timestamp and
// never raises TsB above it.
func TestExtendTimestampProperty(t *testing.T) {
	f := func(base []int16, add int16) bool {
		m := NewMatch()
		for _, ts := range base {
			m = m.Extend(Event{TS: Time(ts)})
		}
		n := m.Extend(Event{TS: Time(add)})
		return n.TsB <= Time(add) && n.TsE >= Time(add) && len(n.Events) == len(base)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
