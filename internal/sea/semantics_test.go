package sea

import (
	"sort"
	"testing"

	"cep2asp/internal/event"
)

// Test fixtures use minute-granularity timestamps and three registered
// types. Helper ev builds an event at minute m.
func semTypes(t *testing.T) (a, b, c event.Type) {
	t.Helper()
	return event.RegisterType("SA"), event.RegisterType("SB"), event.RegisterType("SC")
}

func ev(typ event.Type, id int64, minute int64, value float64) event.Event {
	return event.Event{Type: typ, ID: id, TS: minute * event.Minute, Value: value}
}

func matchKeys(ms []*event.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

func TestEvaluateSeqBasic(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	events := []event.Event{
		ev(ta, 1, 0, 1),
		ev(tb, 1, 2, 2),  // pairs with a@0
		ev(tb, 1, 10, 3), // too far for W=5
		ev(ta, 1, 9, 4),  // pairs with b@10
	}
	got := Evaluate(p, events)
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2: %v", len(got), got)
	}
}

func TestEvaluateSeqOrderRequired(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WITHIN 5 MINUTES`)
	events := []event.Event{
		ev(tb, 1, 0, 1), // b before a: no match
		ev(ta, 1, 2, 2),
	}
	if got := Evaluate(p, events); len(got) != 0 {
		t.Fatalf("got %d matches, want 0 (order violated)", len(got))
	}
}

func TestEvaluateSeqEqualTimestampExcluded(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WITHIN 5 MINUTES`)
	events := []event.Event{ev(ta, 1, 3, 1), ev(tb, 1, 3, 2)}
	if got := Evaluate(p, events); len(got) != 0 {
		t.Fatalf("strict order: equal timestamps must not match, got %d", len(got))
	}
}

func TestEvaluateConjunctionUnordered(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN AND(SA a, SB b) WITHIN 5 MINUTES`)
	events := []event.Event{
		ev(tb, 1, 0, 1),
		ev(ta, 1, 2, 2),
	}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("AND should match regardless of order, got %d", len(got))
	}
	// Constituents appear in pattern order (a, b) not time order.
	if got[0].Events[0].Type != ta {
		t.Fatal("constituent order should follow the pattern layout")
	}
}

func TestEvaluateConjunctionWindowBound(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN AND(SA a, SB b) WITHIN 5 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 1),
		ev(tb, 1, 7, 2), // never in the same 5-minute window
	}
	if got := Evaluate(p, events); len(got) != 0 {
		t.Fatalf("events 7 minutes apart must not match W=5, got %d", len(got))
	}
}

func TestEvaluateDisjunction(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN OR(SA a, SB b) WITHIN 5 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 1),
		ev(tb, 1, 2, 2),
		ev(ta, 2, 3, 3),
	}
	got := Evaluate(p, events)
	if len(got) != 3 {
		t.Fatalf("each occurrence is a match of OR, got %d want 3", len(got))
	}
}

func TestEvaluateDisjunctionBranchPredicates(t *testing.T) {
	ta, tb, _ := semTypes(t)
	_ = tb
	p := mustParse(t, `PATTERN OR(SA a, SB b) WHERE a.value > 10 AND b.value > 20 WITHIN 5 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 11), // passes a-branch
		ev(ta, 1, 1, 5),  // fails a-branch
		ev(tb, 1, 2, 25), // passes b-branch
		ev(tb, 1, 3, 15), // fails b-branch
	}
	got := Evaluate(p, events)
	if len(got) != 2 {
		t.Fatalf("branch predicates: got %d matches, want 2", len(got))
	}
}

func TestEvaluateIterExactM(t *testing.T) {
	ta, _, _ := semTypes(t)
	p := mustParse(t, `PATTERN ITER(SA e, 3) WITHIN 10 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 1), ev(ta, 1, 1, 2), ev(ta, 1, 2, 3), ev(ta, 1, 3, 4),
	}
	got := Evaluate(p, events)
	// C(4,3) = 4 increasing triples, all within one 10-minute window.
	if len(got) != 4 {
		t.Fatalf("got %d matches, want 4", len(got))
	}
	for _, m := range got {
		if len(m.Events) != 3 {
			t.Fatalf("iteration match has %d constituents, want 3", len(m.Events))
		}
		for i := 1; i < 3; i++ {
			if m.Events[i-1].TS >= m.Events[i].TS {
				t.Fatal("iteration constituents must be strictly increasing in time")
			}
		}
	}
}

func TestEvaluateIterPairwiseConstraint(t *testing.T) {
	ta, _, _ := semTypes(t)
	p := mustParse(t, `PATTERN ITER(SA e, 3) WHERE e[i].value < e[i+1].value WITHIN 10 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 1), ev(ta, 1, 1, 5), ev(ta, 1, 2, 3), ev(ta, 1, 3, 7),
	}
	got := Evaluate(p, events)
	// Increasing-value triples among values (1,5,3,7) with increasing ts:
	// (1,5,7), (1,3,7). Not (1,5,3), (5,3,7), etc.
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2: %v", len(got), got)
	}
}

func TestEvaluateIterThresholdAppliesToAll(t *testing.T) {
	ta, _, _ := semTypes(t)
	// Plain reference to an iteration alias quantifies universally.
	p := mustParse(t, `PATTERN ITER(SA e, 2) WHERE e.value < 10 WITHIN 10 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 5), ev(ta, 1, 1, 50), ev(ta, 1, 2, 7),
	}
	got := Evaluate(p, events)
	// Only (5,7): the 50 fails the threshold for any pair containing it.
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
}

func TestEvaluateNegatedSequenceBlocks(t *testing.T) {
	ta, tb, tc := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, !SB b, SC c) WITHIN 10 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 1),
		ev(tb, 1, 2, 2), // blocker between a and c
		ev(tc, 1, 4, 3),
		ev(ta, 1, 5, 4),
		ev(tc, 1, 7, 5), // a@5 -> c@7 clean; a@0 -> c@7 blocked by b@2
	}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1: %v", len(got), got)
	}
	m := got[0]
	if len(m.Events) != 2 || m.Events[0].TS != 5*event.Minute || m.Events[1].TS != 7*event.Minute {
		t.Fatalf("wrong surviving match: %v", m)
	}
}

func TestEvaluateNegatedSequenceBoundary(t *testing.T) {
	ta, tb, tc := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, !SB b, SC c) WITHIN 10 MINUTES`)
	// Blocker exactly at a.ts and at c.ts: interval is open (Eq. 14), so
	// these do NOT void the match.
	events := []event.Event{
		ev(ta, 1, 0, 1),
		ev(tb, 1, 0, 2),
		ev(tb, 1, 4, 2),
		ev(tc, 1, 4, 3),
	}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("open-interval boundary blockers must not void the match, got %d", len(got))
	}
}

func TestEvaluateNegationPredicateOnBlocker(t *testing.T) {
	ta, tb, tc := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, !SB b, SC c) WHERE b.value > 10 WITHIN 10 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 1),
		ev(tb, 1, 2, 5), // fails b.value > 10: not a blocker
		ev(tc, 1, 4, 3),
		ev(ta, 1, 5, 4),
		ev(tb, 1, 6, 20), // real blocker
		ev(tc, 1, 8, 5),
	}
	got := Evaluate(p, events)
	if len(got) != 1 {
		// a@0->c@4 survives (b@2 fails the predicate); a@0->c@8 and
		// a@5->c@8 are both blocked by b@6.
		t.Fatalf("got %d matches, want 1: %v", len(got), got)
	}
}

func TestEvaluateNegationEquiCorrelation(t *testing.T) {
	ta, tb, tc := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, !SB b, SC c) WHERE a.id == b.id WITHIN 10 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 1),
		ev(tb, 2, 2, 5), // different sensor: not a blocker for a(id=1)
		ev(tc, 9, 4, 3),
	}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("uncorrelated blocker must not void, got %d", len(got))
	}
	// Same id blocks.
	events[1].ID = 1
	got = Evaluate(p, events)
	if len(got) != 0 {
		t.Fatalf("correlated blocker must void, got %d", len(got))
	}
}

func TestEvaluateDedupAcrossWindows(t *testing.T) {
	ta, tb, _ := semTypes(t)
	// W=5, slide=1: the pair below fits in several overlapping windows but
	// must be reported once.
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	events := []event.Event{ev(ta, 1, 10, 1), ev(tb, 1, 11, 2)}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("duplicates across overlapping windows must be eliminated, got %d", len(got))
	}
}

func TestEvaluateWindowBoundaryW1Apart(t *testing.T) {
	ta, tb, _ := semTypes(t)
	// Theorem 2's worst case: a pair exactly W-1 apart is only caught by
	// the window starting at the earlier event. Slide=1min guarantees it.
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	events := []event.Event{ev(ta, 1, 3, 1), ev(tb, 1, 7, 2)} // 4 min apart < W
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("pair W-1 apart must be detected (Theorem 2), got %d", len(got))
	}
	// Exactly W apart: never in one half-open window.
	events = []event.Event{ev(ta, 1, 3, 1), ev(tb, 1, 8, 2)}
	if got := Evaluate(p, events); len(got) != 0 {
		t.Fatalf("pair exactly W apart must not match, got %d", len(got))
	}
}

func TestEvaluateMixedNesting(t *testing.T) {
	ta, tb, tc := semTypes(t)
	// SEQ(a, AND(b, c)): all of the AND must occur strictly after a.
	p := mustParse(t, `PATTERN SEQ(SA a, AND(SB b, SC c)) WITHIN 10 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 5, 1),
		ev(tb, 1, 3, 2), // before a: AND's tsB < a.ts -> no
		ev(tc, 1, 7, 3),
		ev(tb, 1, 6, 4), // after a: ok with c@7
	}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1: %v", len(got), got)
	}
}

func TestEvaluateEmptyAndNoMatchStreams(t *testing.T) {
	_, _, _ = semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WITHIN 5 MINUTES`)
	if got := Evaluate(p, nil); got != nil {
		t.Fatalf("empty stream should produce no matches, got %v", got)
	}
	other := event.RegisterType("SD")
	if got := Evaluate(p, []event.Event{ev(other, 1, 0, 1)}); len(got) != 0 {
		t.Fatalf("stream without relevant types should produce no matches")
	}
}

func TestEvaluateUnboundedIterPanics(t *testing.T) {
	_, _, _ = semTypes(t)
	p := mustParse(t, `PATTERN ITER(SA e, 2+) WITHIN 5 MINUTES`)
	defer func() {
		if recover() == nil {
			t.Fatal("Evaluate should panic on unbounded iteration")
		}
	}()
	Evaluate(p, []event.Event{ev(1, 1, 0, 1)})
}

func TestEvaluateCrossStreamPredicate(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WHERE a.value <= b.value AND a.id == b.id WITHIN 5 MINUTES`)
	events := []event.Event{
		ev(ta, 1, 0, 10),
		ev(tb, 1, 1, 20), // ok
		ev(tb, 1, 2, 5),  // value too small
		ev(tb, 2, 3, 30), // wrong id
	}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
}

func TestEvaluateNegativeTimestamps(t *testing.T) {
	ta, tb, _ := semTypes(t)
	p := mustParse(t, `PATTERN SEQ(SA a, SB b) WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	events := []event.Event{ev(ta, 1, -3, 1), ev(tb, 1, -1, 2)}
	got := Evaluate(p, events)
	if len(got) != 1 {
		t.Fatalf("negative timestamps: got %d matches, want 1", len(got))
	}
}
