package sea

import (
	"fmt"
	"sort"

	"cep2asp/internal/event"
)

// This file encodes the paper's formal operator semantics (§3.2, Eqs. 9-14)
// directly and naively: for every sliding window [tsB, tsB+W) (Eqs. 4-5) it
// enumerates the set of event combinations satisfying the pattern structure
// and predicates, then eliminates duplicates across overlapping windows.
//
// The encoding makes no attempt to be fast — it is the correctness oracle
// against which both execution paths (the decomposed ASP pipeline and the
// NFA under skip-till-any-match) are property-tested, implementing the
// semantic-equivalence notion of Negri et al. used in §4: equal output sets
// after duplicate elimination.

// Evaluate returns the deduplicated set of matches of p over the finite
// stream events, under explicit sliding windows and the
// skip-till-any-match selection policy. Events need not be sorted.
// Unbounded iterations are not supported by the oracle (their O2 mapping is
// approximate by design, §4.3.2); Evaluate panics on them to catch misuse
// in tests.
func Evaluate(p *Pattern, events []event.Event) []*event.Match {
	for _, l := range p.Leaves() {
		_ = l
	}
	if hasUnbounded(p.Root) {
		panic("sea: reference semantics does not define unbounded iteration")
	}
	sorted := make([]event.Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	e := &evaluator{p: p, negated: make(map[string]*EventLeaf)}
	for _, l := range p.Leaves() {
		if l.Negated {
			e.negated[l.Alias] = l
		}
	}
	e.splitWhere()

	seen := make(map[string]*event.Match)
	var out []*event.Match
	if len(sorted) == 0 {
		return nil
	}
	w, s := p.Window.Size, p.Window.Slide
	minTS, maxTS := sorted[0].TS, sorted[len(sorted)-1].TS
	// Windows [k*s, k*s+W) that intersect [minTS, maxTS].
	kLo := event.FloorDiv(minTS-w+1, s)
	kHi := event.FloorDiv(maxTS, s)
	for k := kLo; k <= kHi; k++ {
		tsB := k * s
		tsE := tsB + w
		ws := sliceWindow(sorted, tsB, tsE)
		if len(ws) == 0 {
			continue
		}
		for _, part := range e.evalNode(p.Root, ws) {
			if !e.accept(part, ws) {
				continue
			}
			m := part.toMatch()
			if _, dup := seen[m.Key()]; dup {
				continue
			}
			seen[m.Key()] = m
			out = append(out, m)
		}
	}
	return out
}

func hasUnbounded(n Node) bool {
	switch v := n.(type) {
	case *IterNode:
		return v.Unbounded
	case *SeqNode:
		for _, c := range v.Children {
			if hasUnbounded(c) {
				return true
			}
		}
	case *AndNode:
		for _, c := range v.Children {
			if hasUnbounded(c) {
				return true
			}
		}
	case *OrNode:
		for _, c := range v.Children {
			if hasUnbounded(c) {
				return true
			}
		}
	}
	return false
}

func sliceWindow(sorted []event.Event, tsB, tsE event.Time) []event.Event {
	lo := sort.Search(len(sorted), func(i int) bool { return sorted[i].TS >= tsB })
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i].TS >= tsE })
	return sorted[lo:hi]
}

// boundEvent is one constituent of a candidate binding.
type boundEvent struct {
	alias string
	e     event.Event
}

// negCheck defers a negation constraint: no event of leaf's type satisfying
// its predicates may occur in the open interval (after, before).
type negCheck struct {
	leaf   *EventLeaf
	after  event.Time
	before event.Time
}

// part is a (partial) binding produced by structural evaluation.
type part struct {
	order      []boundEvent
	tsB, tsE   event.Time
	negChecks  []negCheck
	pendingNeg *EventLeaf // negated leaf awaiting its right boundary
}

func (p part) toMatch() *event.Match {
	events := make([]event.Event, len(p.order))
	for i, b := range p.order {
		events[i] = b.e
	}
	return event.NewMatch(events...)
}

type evaluator struct {
	p       *Pattern
	negated map[string]*EventLeaf
	// WHERE conjuncts, split by rôle:
	positive []BoolExpr // conjuncts over positive aliases only
	negPreds []BoolExpr // conjuncts involving a negated alias
}

func (ev *evaluator) splitWhere() {
	for _, c := range Conjuncts(ev.p.Where) {
		neg := false
		for _, a := range Aliases(c) {
			if ev.negated[a] != nil {
				neg = true
			}
		}
		if neg {
			ev.negPreds = append(ev.negPreds, c)
		} else {
			ev.positive = append(ev.positive, c)
		}
	}
}

// evalNode enumerates the structural bindings of n over the window events ws
// (sorted by timestamp).
func (ev *evaluator) evalNode(n Node, ws []event.Event) []part {
	switch v := n.(type) {
	case *EventLeaf:
		var parts []part
		for _, e := range ws {
			if e.Type == v.Type {
				parts = append(parts, part{
					order: []boundEvent{{alias: v.Alias, e: e}},
					tsB:   e.TS, tsE: e.TS,
				})
			}
		}
		return parts
	case *IterNode:
		var ofType []event.Event
		for _, e := range ws {
			if e.Type == v.Leaf.Type {
				ofType = append(ofType, e)
			}
		}
		// All strictly increasing m-combinations (Eq. 12); ws is sorted,
		// and per-producer timestamps are discrete and increasing, so a
		// combination in index order with strictly increasing timestamps
		// is exactly what the definition demands.
		var parts []part
		combo := make([]event.Event, 0, v.M)
		var rec func(start int)
		rec = func(start int) {
			if len(combo) == v.M {
				p := part{order: make([]boundEvent, v.M), tsB: combo[0].TS, tsE: combo[v.M-1].TS}
				for i, e := range combo {
					p.order[i] = boundEvent{alias: v.Leaf.Alias, e: e}
				}
				parts = append(parts, p)
				return
			}
			for i := start; i < len(ofType); i++ {
				if len(combo) > 0 && ofType[i].TS <= combo[len(combo)-1].TS {
					continue
				}
				combo = append(combo, ofType[i])
				rec(i + 1)
				combo = combo[:len(combo)-1]
			}
		}
		rec(0)
		return parts
	case *SeqNode:
		return ev.evalSeq(v, ws)
	case *AndNode:
		parts := ev.evalNode(v.Children[0], ws)
		for _, c := range v.Children[1:] {
			next := ev.evalNode(c, ws)
			var combined []part
			for _, a := range parts {
				for _, b := range next {
					combined = append(combined, joinParts(a, b, false))
				}
			}
			parts = combined
		}
		return parts
	case *OrNode:
		var parts []part
		for _, c := range v.Children {
			parts = append(parts, ev.evalNode(c, ws)...)
		}
		return parts
	}
	panic(fmt.Sprintf("sea: evalNode: unknown node %T", n))
}

func (ev *evaluator) evalSeq(n *SeqNode, ws []event.Event) []part {
	var parts []part
	first := true
	for _, c := range n.Children {
		if leaf, ok := c.(*EventLeaf); ok && leaf.Negated {
			// Mark every current partial as awaiting the negation's right
			// boundary; the next positive child closes the interval.
			for i := range parts {
				parts[i].pendingNeg = leaf
			}
			continue
		}
		next := ev.evalNode(c, ws)
		if first {
			parts = next
			first = false
			continue
		}
		var combined []part
		for _, a := range parts {
			for _, b := range next {
				// Sequence order (Eq. 10), generalized to composite
				// components: all of a precedes all of b.
				if a.tsE >= b.tsB {
					continue
				}
				combined = append(combined, joinParts(a, b, true))
			}
		}
		parts = combined
	}
	return parts
}

// joinParts concatenates two partial bindings. When seq is true and a has a
// pending negation, the join closes the absence interval (a.tsE, b.tsB).
func joinParts(a, b part, seq bool) part {
	order := make([]boundEvent, 0, len(a.order)+len(b.order))
	order = append(order, a.order...)
	order = append(order, b.order...)
	out := part{
		order: order,
		tsB:   minTime(a.tsB, b.tsB),
		tsE:   maxTime(a.tsE, b.tsE),
	}
	out.negChecks = append(out.negChecks, a.negChecks...)
	out.negChecks = append(out.negChecks, b.negChecks...)
	if seq && a.pendingNeg != nil {
		out.negChecks = append(out.negChecks, negCheck{leaf: a.pendingNeg, after: a.tsE, before: b.tsB})
	}
	return out
}

func minTime(a, b event.Time) event.Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b event.Time) event.Time {
	if a > b {
		return a
	}
	return b
}

// accept applies the WHERE clause and negation checks to a complete
// structural binding.
func (ev *evaluator) accept(p part, ws []event.Event) bool {
	bind := make(map[string]event.Event, len(p.order))
	perAlias := make(map[string][]event.Event)
	for _, b := range p.order {
		if _, ok := bind[b.alias]; !ok {
			bind[b.alias] = b.e
		}
		perAlias[b.alias] = append(perAlias[b.alias], b.e)
	}

	for _, conj := range ev.positive {
		if !ev.holdsUniversally(conj, bind, perAlias) {
			return false
		}
	}

	for _, nc := range p.negChecks {
		for _, e := range ws {
			if e.Type != nc.leaf.Type {
				continue
			}
			if e.TS <= nc.after || e.TS >= nc.before {
				continue
			}
			if ev.blockerSatisfies(nc.leaf.Alias, e, bind) {
				return false // an occurrence voids the negated sequence
			}
		}
	}
	return true
}

// holdsUniversally evaluates one conjunct, universally quantified over the
// constituents of any iteration alias it references. Pairwise (indexed)
// conjuncts quantify over consecutive constituent pairs. Conjuncts touching
// aliases absent from the binding (other disjunction branches) hold
// vacuously via three-valued evaluation.
func (ev *evaluator) holdsUniversally(conj BoolExpr, bind map[string]event.Event, perAlias map[string][]event.Event) bool {
	refs := Aliases(conj)
	if HasIndexedRef(conj) {
		alias := refs[0]
		seq := perAlias[alias]
		if len(seq) == 0 {
			return true
		}
		pred, err := CompilePair(conj, alias)
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(seq); i++ {
			if !pred(seq[i], seq[i+1]) {
				return false
			}
		}
		return true
	}
	// Universal quantification over iteration constituents: expand every
	// referenced alias that has multiple constituents.
	var multi []string
	for _, a := range refs {
		if len(perAlias[a]) > 1 {
			multi = append(multi, a)
		}
	}
	if len(multi) == 0 {
		return EvalPartial(conj, bind)
	}
	local := make(map[string]event.Event, len(bind))
	for k, v := range bind {
		local[k] = v
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(multi) {
			return EvalPartial(conj, local)
		}
		for _, e := range perAlias[multi[i]] {
			local[multi[i]] = e
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// blockerSatisfies checks whether a candidate blocker event for the negated
// alias satisfies the negation predicates (per-event thresholds and equi
// correlations with bound aliases). An event failing them does not void the
// match.
func (ev *evaluator) blockerSatisfies(alias string, e event.Event, bind map[string]event.Event) bool {
	local := make(map[string]event.Event, len(bind)+1)
	for k, v := range bind {
		local[k] = v
	}
	local[alias] = e
	for _, conj := range ev.negPreds {
		touches := false
		for _, a := range Aliases(conj) {
			if a == alias {
				touches = true
			}
		}
		if !touches {
			continue
		}
		if !EvalPartial(conj, local) {
			return false
		}
	}
	return true
}
