package sea

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories of the PSL.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokBang
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokEQ // == or =
	tokNE // !=
	tokLT
	tokLE
	tokGT
	tokGE
)

type token struct {
	kind tokenKind
	text string  // identifier text (original case) or operator spelling
	num  float64 // value for tokNumber
	pos  int     // byte offset in the input, for error messages
	line int     // 1-based line number
	col  int     // 1-based column
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("%q", t.text)
	case tokNumber:
		return trimFloat(t.num)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// isKeyword reports whether the token is the given keyword,
// case-insensitively. PSL keywords are not reserved: an identifier in a
// non-keyword position keeps its identity.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// SyntaxError reports a PSL parse failure with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sea: syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lex tokenizes the PSL input. Comments run from "--" to end of line.
func lex(input string) ([]token, error) {
	var toks []token
	line, lineStart := 1, 0
	i := 0
	emit := func(kind tokenKind, text string, num float64, start int) {
		toks = append(toks, token{kind: kind, text: text, num: num, pos: start, line: line, col: start - lineStart + 1})
	}
	for i < len(input) {
		c := input[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			emit(tokIdent, input[start:i], 0, start)
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			start := i
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			v, err := strconv.ParseFloat(input[start:i], 64)
			if err != nil {
				return nil, &SyntaxError{Line: line, Col: start - lineStart + 1, Msg: fmt.Sprintf("bad number %q", input[start:i])}
			}
			emit(tokNumber, input[start:i], v, start)
		default:
			start := i
			two := ""
			if i+1 < len(input) {
				two = input[i : i+2]
			}
			switch {
			case two == "==":
				emit(tokEQ, "==", 0, start)
				i += 2
			case two == "!=" || two == "<>":
				emit(tokNE, "!=", 0, start)
				i += 2
			case two == "<=":
				emit(tokLE, "<=", 0, start)
				i += 2
			case two == ">=":
				emit(tokGE, ">=", 0, start)
				i += 2
			default:
				switch c {
				case '(':
					emit(tokLParen, "(", 0, start)
				case ')':
					emit(tokRParen, ")", 0, start)
				case '[':
					emit(tokLBracket, "[", 0, start)
				case ']':
					emit(tokRBracket, "]", 0, start)
				case ',':
					emit(tokComma, ",", 0, start)
				case '.':
					emit(tokDot, ".", 0, start)
				case '!':
					emit(tokBang, "!", 0, start)
				case '+':
					emit(tokPlus, "+", 0, start)
				case '-':
					emit(tokMinus, "-", 0, start)
				case '*':
					emit(tokStar, "*", 0, start)
				case '/':
					emit(tokSlash, "/", 0, start)
				case '=':
					emit(tokEQ, "=", 0, start)
				case '<':
					emit(tokLT, "<", 0, start)
				case '>':
					emit(tokGT, ">", 0, start)
				default:
					return nil, &SyntaxError{Line: line, Col: start - lineStart + 1, Msg: fmt.Sprintf("unexpected character %q", c)}
				}
				i++
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input), line: line, col: len(input) - lineStart + 1})
	return toks, nil
}
