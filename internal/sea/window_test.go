package sea

import (
	"testing"

	"cep2asp/internal/event"
)

// Window-semantics edge cases for the reference evaluator: non-unit slides,
// alignment, and Theorem 2 boundaries.

func TestEvaluateLargerSlideMissesStraddlers(t *testing.T) {
	// With slide = 5 min and W = 5 min (tumbling), a pair straddling a
	// window boundary is NOT detected — exactly why Theorem 2 demands a
	// small slide. The oracle encodes the sliding-window semantics
	// faithfully, including this incompleteness.
	ta := event.RegisterType("WTA")
	tb := event.RegisterType("WTB")
	p := mustParse(t, `PATTERN SEQ(WTA a, WTB b) WITHIN 5 MINUTES SLIDE 5 MINUTES`)
	events := []event.Event{
		{Type: ta, ID: 1, TS: 4 * event.Minute},
		{Type: tb, ID: 1, TS: 6 * event.Minute}, // next tumbling window
	}
	if got := Evaluate(p, events); len(got) != 0 {
		t.Fatalf("tumbling windows must miss the straddling pair, got %d", len(got))
	}
	// The same pair with slide 1 IS detected.
	p1 := mustParse(t, `PATTERN SEQ(WTA a, WTB b) WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	if got := Evaluate(p1, events); len(got) != 1 {
		t.Fatalf("slide-1 windows must catch the pair, got %d", len(got))
	}
}

func TestEvaluateWindowAlignment(t *testing.T) {
	// Windows start at multiples of the slide (Eq. 5 with the origin at
	// zero): a pair within W of each other but crossing every aligned
	// window boundary for a big slide is missed; aligned pairs are found.
	ta := event.RegisterType("WTA")
	tb := event.RegisterType("WTB")
	p := mustParse(t, `PATTERN SEQ(WTA a, WTB b) WITHIN 10 MINUTES SLIDE 2 MINUTES`)
	events := []event.Event{
		{Type: ta, ID: 1, TS: 3 * event.Minute},
		{Type: tb, ID: 1, TS: 11 * event.Minute}, // 8 min apart
	}
	// Window [2,12) contains both (start 2 is a multiple of slide 2).
	if got := Evaluate(p, events); len(got) != 1 {
		t.Fatalf("aligned window should catch the pair, got %d", len(got))
	}
}

func TestEvaluateSubMinuteTimestamps(t *testing.T) {
	// Non-minute-aligned data under slide-1-minute windows: a pair closer
	// than W may still be missed when no aligned window covers both —
	// the incompleteness Theorem 2's slide precondition rules out.
	ta := event.RegisterType("WTA")
	tb := event.RegisterType("WTB")
	p := mustParse(t, `PATTERN SEQ(WTA a, WTB b) WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	events := []event.Event{
		{Type: ta, ID: 1, TS: 30 * event.Second},                // 0.5 min
		{Type: tb, ID: 1, TS: 5*event.Minute + 15*event.Second}, // 5.25 min
	}
	// Span is 4.75 min < W, but windows [k, k+5) with integer-minute k:
	// need k <= 0.5 and k+5 > 5.25 -> k > 0.25: no integer k exists.
	if got := Evaluate(p, events); len(got) != 0 {
		t.Fatalf("misaligned pair should be missed by aligned windows, got %d", len(got))
	}
	// A finer slide recovers it.
	p2 := mustParse(t, `PATTERN SEQ(WTA a, WTB b) WITHIN 5 MINUTES SLIDE 15 SECONDS`)
	if got := Evaluate(p2, events); len(got) != 1 {
		t.Fatalf("fine slide should catch the pair, got %d", len(got))
	}
}

func TestEvaluateManyWindowsOneMatch(t *testing.T) {
	// Dedup must collapse a match visible in W/s overlapping windows.
	ta := event.RegisterType("WTA")
	tb := event.RegisterType("WTB")
	p := mustParse(t, `PATTERN SEQ(WTA a, WTB b) WITHIN 60 MINUTES SLIDE 1 MINUTE`)
	events := []event.Event{
		{Type: ta, ID: 1, TS: 100 * event.Minute},
		{Type: tb, ID: 1, TS: 101 * event.Minute},
	}
	if got := Evaluate(p, events); len(got) != 1 {
		t.Fatalf("got %d matches, want exactly 1 after dedup", len(got))
	}
}

func TestEvaluateIterAcrossWindows(t *testing.T) {
	// Iteration constituents spread wider than W never match, regardless
	// of pairwise gaps.
	tv := event.RegisterType("WTV")
	p := mustParse(t, `PATTERN ITER(WTV v, 3) WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	events := []event.Event{
		{Type: tv, ID: 1, TS: 0, Value: 1},
		{Type: tv, ID: 1, TS: 4 * event.Minute, Value: 2},
		{Type: tv, ID: 1, TS: 8 * event.Minute, Value: 3},
	}
	if got := Evaluate(p, events); len(got) != 0 {
		t.Fatalf("span 8 min > W=5: got %d matches, want 0", len(got))
	}
}
