package sea

import (
	"fmt"

	"cep2asp/internal/event"
)

// Layout maps pattern aliases to positions in a composite match's
// constituent slice. Translators fix a layout when they decompose a pattern
// into operators, allowing predicates to be compiled once into closures that
// index directly into the match.
type Layout map[string]int

// Predicate is a compiled boolean predicate over the constituents of a
// (partial) match.
type Predicate func(events []event.Event) bool

// PairPredicate is a compiled predicate over two consecutive iteration
// constituents (e[i], e[i+1]).
type PairPredicate func(a, b event.Event) bool

// CompileBool compiles e against the given layout. Every alias referenced by
// e must be present in the layout and no iteration-indexed references may
// appear (compile those with CompilePair). The returned closure performs no
// allocation.
func CompileBool(e BoolExpr, layout Layout) (Predicate, error) {
	switch v := e.(type) {
	case TrueExpr:
		return func([]event.Event) bool { return true }, nil
	case And:
		l, err := CompileBool(v.L, layout)
		if err != nil {
			return nil, err
		}
		r, err := CompileBool(v.R, layout)
		if err != nil {
			return nil, err
		}
		return func(es []event.Event) bool { return l(es) && r(es) }, nil
	case Or:
		l, err := CompileBool(v.L, layout)
		if err != nil {
			return nil, err
		}
		r, err := CompileBool(v.R, layout)
		if err != nil {
			return nil, err
		}
		return func(es []event.Event) bool { return l(es) || r(es) }, nil
	case Not:
		inner, err := CompileBool(v.E, layout)
		if err != nil {
			return nil, err
		}
		return func(es []event.Event) bool { return !inner(es) }, nil
	case Cmp:
		l, err := compileNum(v.L, layout)
		if err != nil {
			return nil, err
		}
		r, err := compileNum(v.R, layout)
		if err != nil {
			return nil, err
		}
		return compileCmp(v.Op, l, r), nil
	default:
		return nil, fmt.Errorf("sea: cannot compile expression %T", e)
	}
}

type numFn func(events []event.Event) float64

func compileCmp(op CmpOp, l, r numFn) Predicate {
	switch op {
	case CmpEQ:
		return func(es []event.Event) bool { return l(es) == r(es) }
	case CmpNE:
		return func(es []event.Event) bool { return l(es) != r(es) }
	case CmpLT:
		return func(es []event.Event) bool { return l(es) < r(es) }
	case CmpLE:
		return func(es []event.Event) bool { return l(es) <= r(es) }
	case CmpGT:
		return func(es []event.Event) bool { return l(es) > r(es) }
	case CmpGE:
		return func(es []event.Event) bool { return l(es) >= r(es) }
	}
	return func([]event.Event) bool { return false }
}

func compileNum(e NumExpr, layout Layout) (numFn, error) {
	switch v := e.(type) {
	case NumLit:
		val := v.V
		return func([]event.Event) float64 { return val }, nil
	case AttrRef:
		if v.Index != IndexNone {
			return nil, fmt.Errorf("sea: indexed reference %s outside iteration context", v)
		}
		pos, ok := layout[v.Alias]
		if !ok {
			return nil, fmt.Errorf("sea: alias %q not in layout", v.Alias)
		}
		attr := v.Attr
		// Resolve the attribute accessor once, at compile time.
		if _, ok := (event.Event{}).Attr(attr); !ok {
			return nil, fmt.Errorf("sea: unknown attribute %q", attr)
		}
		return func(es []event.Event) float64 {
			val, _ := es[pos].Attr(attr)
			return val
		}, nil
	case Arith:
		l, err := compileNum(v.L, layout)
		if err != nil {
			return nil, err
		}
		r, err := compileNum(v.R, layout)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case OpAdd:
			return func(es []event.Event) float64 { return l(es) + r(es) }, nil
		case OpSub:
			return func(es []event.Event) float64 { return l(es) - r(es) }, nil
		case OpMul:
			return func(es []event.Event) float64 { return l(es) * r(es) }, nil
		case OpDiv:
			return func(es []event.Event) float64 { return l(es) / r(es) }, nil
		}
	}
	return nil, fmt.Errorf("sea: cannot compile numeric expression %T", e)
}

// CompilePair compiles an iteration predicate referencing alias[i] and
// alias[i+1] into a closure over the consecutive pair. Plain (unindexed)
// references are rejected; mix per-event thresholds and pairwise constraints
// as separate conjuncts instead.
func CompilePair(e BoolExpr, alias string) (PairPredicate, error) {
	pred, err := CompileBool(rewriteIndexed(e, alias), Layout{pairSlotI: 0, pairSlotNext: 1})
	if err != nil {
		return nil, err
	}
	return func(a, b event.Event) bool {
		return pred([]event.Event{a, b})
	}, nil
}

// Internal alias names used when lowering indexed references onto a
// two-element layout.
const (
	pairSlotI    = "\x00i"
	pairSlotNext = "\x00i+1"
)

func rewriteIndexed(e BoolExpr, alias string) BoolExpr {
	switch v := e.(type) {
	case And:
		return And{L: rewriteIndexed(v.L, alias), R: rewriteIndexed(v.R, alias)}
	case Or:
		return Or{L: rewriteIndexed(v.L, alias), R: rewriteIndexed(v.R, alias)}
	case Not:
		return Not{E: rewriteIndexed(v.E, alias)}
	case Cmp:
		return Cmp{Op: v.Op, L: rewriteIndexedNum(v.L, alias), R: rewriteIndexedNum(v.R, alias)}
	}
	return e
}

func rewriteIndexedNum(e NumExpr, alias string) NumExpr {
	switch v := e.(type) {
	case AttrRef:
		if v.Alias != alias {
			return v
		}
		switch v.Index {
		case IndexI:
			return AttrRef{Alias: pairSlotI, Attr: v.Attr}
		case IndexNext:
			return AttrRef{Alias: pairSlotNext, Attr: v.Attr}
		}
		return v
	case Arith:
		return Arith{Op: v.Op, L: rewriteIndexedNum(v.L, alias), R: rewriteIndexedNum(v.R, alias)}
	}
	return e
}

// EvalPartial evaluates e under a partial binding using Kleene three-valued
// logic: conjuncts whose aliases are not all bound are unknown, and an
// unknown top-level result is treated as satisfied (vacuously true). The
// reference semantics uses this for disjunction branches, where only a
// subset of the pattern's aliases is bound (§3.2, disjunction).
func EvalPartial(e BoolExpr, bind map[string]event.Event) bool {
	v := evalTri(e, bind)
	return v != triFalse
}

type tri int

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

func evalTri(e BoolExpr, bind map[string]event.Event) tri {
	switch v := e.(type) {
	case TrueExpr:
		return triTrue
	case And:
		l, r := evalTri(v.L, bind), evalTri(v.R, bind)
		if l == triFalse || r == triFalse {
			return triFalse
		}
		if l == triUnknown || r == triUnknown {
			return triUnknown
		}
		return triTrue
	case Or:
		l, r := evalTri(v.L, bind), evalTri(v.R, bind)
		if l == triTrue || r == triTrue {
			return triTrue
		}
		if l == triUnknown || r == triUnknown {
			return triUnknown
		}
		return triFalse
	case Not:
		switch evalTri(v.E, bind) {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		default:
			return triUnknown
		}
	case Cmp:
		l, lok := evalNumPartial(v.L, bind)
		r, rok := evalNumPartial(v.R, bind)
		if !lok || !rok {
			return triUnknown
		}
		var res bool
		switch v.Op {
		case CmpEQ:
			res = l == r
		case CmpNE:
			res = l != r
		case CmpLT:
			res = l < r
		case CmpLE:
			res = l <= r
		case CmpGT:
			res = l > r
		case CmpGE:
			res = l >= r
		}
		if res {
			return triTrue
		}
		return triFalse
	}
	return triUnknown
}

func evalNumPartial(e NumExpr, bind map[string]event.Event) (float64, bool) {
	switch v := e.(type) {
	case NumLit:
		return v.V, true
	case AttrRef:
		if v.Index != IndexNone {
			// Pairwise iteration constraints are evaluated separately
			// against consecutive constituents; here they are unknown.
			return 0, false
		}
		ev, ok := bind[v.Alias]
		if !ok {
			return 0, false
		}
		val, ok := ev.Attr(v.Attr)
		return val, ok
	case Arith:
		l, lok := evalNumPartial(v.L, bind)
		r, rok := evalNumPartial(v.R, bind)
		if !lok || !rok {
			return 0, false
		}
		switch v.Op {
		case OpAdd:
			return l + r, true
		case OpSub:
			return l - r, true
		case OpMul:
			return l * r, true
		case OpDiv:
			return l / r, true
		}
	}
	return 0, false
}
