package sea

import (
	"testing"
	"testing/quick"

	"cep2asp/internal/event"
)

func TestCompileBoolBasic(t *testing.T) {
	// q.value >= 100 AND v.value <= 30
	expr := And{
		L: Cmp{Op: CmpGE, L: Ref("q", "value"), R: Lit(100)},
		R: Cmp{Op: CmpLE, L: Ref("v", "value"), R: Lit(30)},
	}
	pred, err := CompileBool(expr, Layout{"q": 0, "v": 1})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		q, v float64
		want bool
	}{
		{100, 30, true},
		{99, 30, false},
		{100, 31, false},
		{150, 10, true},
	}
	for _, tc := range tests {
		got := pred([]event.Event{{Value: tc.q}, {Value: tc.v}})
		if got != tc.want {
			t.Errorf("pred(q=%g, v=%g) = %v, want %v", tc.q, tc.v, got, tc.want)
		}
	}
}

func TestCompileArithmeticAndOps(t *testing.T) {
	// (a.value + 1) * 2 - 4 / 2 != a.id  ... exercises every arith op.
	expr := Cmp{
		Op: CmpNE,
		L: Arith{Op: OpSub,
			L: Arith{Op: OpMul, L: Arith{Op: OpAdd, L: Ref("a", "value"), R: Lit(1)}, R: Lit(2)},
			R: Arith{Op: OpDiv, L: Lit(4), R: Lit(2)},
		},
		R: Ref("a", "id"),
	}
	pred, err := CompileBool(expr, Layout{"a": 0})
	if err != nil {
		t.Fatal(err)
	}
	// (3+1)*2-2 = 6; id=6 -> equal -> NE false
	if pred([]event.Event{{Value: 3, ID: 6}}) {
		t.Error("NE returned true for equal values")
	}
	if !pred([]event.Event{{Value: 3, ID: 7}}) {
		t.Error("NE returned false for unequal values")
	}
}

func TestCompileOrNot(t *testing.T) {
	expr := Or{
		L: Not{E: Cmp{Op: CmpGT, L: Ref("a", "value"), R: Lit(5)}},
		R: Cmp{Op: CmpEQ, L: Ref("a", "id"), R: Lit(9)},
	}
	pred, err := CompileBool(expr, Layout{"a": 0})
	if err != nil {
		t.Fatal(err)
	}
	if !pred([]event.Event{{Value: 3, ID: 0}}) { // NOT(3>5) = true
		t.Error("want true via NOT branch")
	}
	if !pred([]event.Event{{Value: 10, ID: 9}}) { // id==9
		t.Error("want true via OR branch")
	}
	if pred([]event.Event{{Value: 10, ID: 1}}) {
		t.Error("want false")
	}
}

func TestCompileMissingAlias(t *testing.T) {
	_, err := CompileBool(Cmp{Op: CmpGT, L: Ref("zz", "value"), R: Lit(1)}, Layout{"a": 0})
	if err == nil {
		t.Fatal("CompileBool accepted alias missing from layout")
	}
}

func TestCompileIndexedOutsideIter(t *testing.T) {
	_, err := CompileBool(Cmp{Op: CmpLT, L: RefI("e", "value"), R: Lit(1)}, Layout{"e": 0})
	if err == nil {
		t.Fatal("CompileBool accepted indexed reference")
	}
}

func TestCompilePairIncreasing(t *testing.T) {
	// e[i].value < e[i+1].value — the paper's ITER_2 constraint.
	expr := Cmp{Op: CmpLT, L: RefI("e", "value"), R: RefNext("e", "value")}
	pred, err := CompilePair(expr, "e")
	if err != nil {
		t.Fatal(err)
	}
	if !pred(event.Event{Value: 1}, event.Event{Value: 2}) {
		t.Error("1 < 2 should hold")
	}
	if pred(event.Event{Value: 2}, event.Event{Value: 2}) {
		t.Error("2 < 2 should not hold")
	}
}

func TestCompilePairMixedRefs(t *testing.T) {
	// A pairwise predicate can also mention other plain aliases... but
	// those must be rejected since CompilePair only has the pair layout.
	expr := Cmp{Op: CmpLT, L: RefI("e", "value"), R: Ref("q", "value")}
	if _, err := CompilePair(expr, "e"); err == nil {
		t.Fatal("CompilePair accepted a foreign plain alias")
	}
}

func TestEvalPartialVacuous(t *testing.T) {
	// Conjuncts over unbound aliases are vacuously satisfied.
	expr := And{
		L: Cmp{Op: CmpGT, L: Ref("a", "value"), R: Lit(5)},
		R: Cmp{Op: CmpGT, L: Ref("b", "value"), R: Lit(5)},
	}
	bind := map[string]event.Event{"a": {Value: 10}}
	if !EvalPartial(expr, bind) {
		t.Error("partial binding should satisfy vacuously")
	}
	bind["a"] = event.Event{Value: 1}
	if EvalPartial(expr, bind) {
		t.Error("bound false conjunct must fail")
	}
}

func TestEvalPartialOrShortCircuit(t *testing.T) {
	// true OR unknown = true; false OR unknown = unknown -> treated true.
	expr := Or{
		L: Cmp{Op: CmpGT, L: Ref("a", "value"), R: Lit(5)},
		R: Cmp{Op: CmpGT, L: Ref("b", "value"), R: Lit(5)},
	}
	if !EvalPartial(expr, map[string]event.Event{"a": {Value: 10}}) {
		t.Error("true OR unknown should be true")
	}
	if !EvalPartial(expr, map[string]event.Event{"a": {Value: 1}}) {
		t.Error("false OR unknown is unknown, treated as satisfied")
	}
	// Fully bound false.
	if EvalPartial(expr, map[string]event.Event{"a": {Value: 1}, "b": {Value: 1}}) {
		t.Error("false OR false should fail")
	}
}

func TestEvalPartialNot(t *testing.T) {
	expr := Not{E: Cmp{Op: CmpGT, L: Ref("a", "value"), R: Lit(5)}}
	if EvalPartial(expr, map[string]event.Event{"a": {Value: 10}}) {
		t.Error("NOT true should be false")
	}
	if !EvalPartial(expr, map[string]event.Event{"a": {Value: 1}}) {
		t.Error("NOT false should be true")
	}
	// NOT unknown stays unknown -> satisfied.
	if !EvalPartial(expr, map[string]event.Event{}) {
		t.Error("NOT unknown should be treated as satisfied")
	}
}

// Property: for fully bound single-alias comparisons, compiled evaluation and
// partial evaluation agree.
func TestCompiledMatchesPartialProperty(t *testing.T) {
	ops := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	f := func(value float64, lit float64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		expr := Cmp{Op: op, L: Ref("a", "value"), R: NumLit{V: lit}}
		pred, err := CompileBool(expr, Layout{"a": 0})
		if err != nil {
			return false
		}
		e := event.Event{Value: value}
		return pred([]event.Event{e}) == EvalPartial(expr, map[string]event.Event{"a": e})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEquiPair(t *testing.T) {
	la, lat, ra, rat, ok := EquiPair(Cmp{Op: CmpEQ, L: Ref("q", "id"), R: Ref("v", "id")})
	if !ok || la != "q" || lat != "id" || ra != "v" || rat != "id" {
		t.Fatalf("EquiPair = %q.%q == %q.%q ok=%v", la, lat, ra, rat, ok)
	}
	// Not equi: different ops, same alias, literals, indexed refs.
	if _, _, _, _, ok := EquiPair(Cmp{Op: CmpLT, L: Ref("q", "id"), R: Ref("v", "id")}); ok {
		t.Error("LT accepted as equi pair")
	}
	if _, _, _, _, ok := EquiPair(Cmp{Op: CmpEQ, L: Ref("q", "id"), R: Ref("q", "value")}); ok {
		t.Error("same-alias equality accepted as equi pair")
	}
	if _, _, _, _, ok := EquiPair(Cmp{Op: CmpEQ, L: Ref("q", "id"), R: Lit(5)}); ok {
		t.Error("literal equality accepted as equi pair")
	}
	if _, _, _, _, ok := EquiPair(Cmp{Op: CmpEQ, L: RefI("q", "id"), R: Ref("v", "id")}); ok {
		t.Error("indexed ref accepted as equi pair")
	}
}

func TestConjunctsConjoinRoundTrip(t *testing.T) {
	a := Cmp{Op: CmpGT, L: Ref("x", "value"), R: Lit(1)}
	b := Cmp{Op: CmpLT, L: Ref("y", "value"), R: Lit(2)}
	c := Cmp{Op: CmpEQ, L: Ref("x", "id"), R: Ref("y", "id")}
	e := Conjoin([]BoolExpr{a, b, c})
	parts := Conjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts = %d parts, want 3", len(parts))
	}
	if len(Conjuncts(TrueExpr{})) != 0 {
		t.Fatal("Conjuncts(TRUE) should be empty")
	}
	if _, ok := Conjoin(nil).(TrueExpr); !ok {
		t.Fatal("Conjoin(nil) should be TRUE")
	}
}

func TestAliasesSorted(t *testing.T) {
	e := And{
		L: Cmp{Op: CmpGT, L: Ref("zeta", "value"), R: Lit(1)},
		R: Cmp{Op: CmpGT, L: Ref("alpha", "value"), R: Ref("zeta", "value")},
	}
	got := Aliases(e)
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Aliases = %v", got)
	}
}
