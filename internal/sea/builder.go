package sea

import "cep2asp/internal/event"

// Programmatic pattern construction, for users who prefer Go code over the
// PSL surface syntax. The helpers mirror the PSL operators one-to-one;
// Build validates the assembled pattern.

// E declares an event leaf of the named type bound to alias.
func E(typeName, alias string) *EventLeaf {
	return &EventLeaf{TypeName: typeName, Type: event.RegisterType(typeName), Alias: alias}
}

// NotE declares a negated event leaf; valid only as an inner element of Seq.
func NotE(typeName, alias string) *EventLeaf {
	l := E(typeName, alias)
	l.Negated = true
	return l
}

// Seq builds a sequence node; nested sequences flatten (associativity).
func Seq(children ...Node) Node { return flattenSeq(children) }

// Conj builds a conjunction node; nested conjunctions flatten.
func Conj(children ...Node) Node { return flattenAnd(children) }

// Disj builds a disjunction node; nested disjunctions flatten.
func Disj(children ...Node) Node { return flattenOr(children) }

// Iter builds a bounded iteration of exactly m occurrences.
func Iter(typeName, alias string, m int) Node {
	return &IterNode{Leaf: E(typeName, alias), M: m}
}

// IterAtLeast builds the unbounded (Kleene+ style) iteration of at least m
// occurrences, supported through optimization O2.
func IterAtLeast(typeName, alias string, m int) Node {
	return &IterNode{Leaf: E(typeName, alias), M: m, Unbounded: true}
}

// Ref builds an attribute reference alias.attr for predicate construction.
func Ref(alias, attr string) AttrRef { return AttrRef{Alias: alias, Attr: attr} }

// RefI and RefNext build the iteration-indexed references alias[i].attr and
// alias[i+1].attr.
func RefI(alias, attr string) AttrRef    { return AttrRef{Alias: alias, Attr: attr, Index: IndexI} }
func RefNext(alias, attr string) AttrRef { return AttrRef{Alias: alias, Attr: attr, Index: IndexNext} }

// Lit builds a numeric literal.
func Lit(v float64) NumLit { return NumLit{V: v} }

// Compare builds a comparison predicate.
func Compare(op CmpOp, l, r NumExpr) BoolExpr { return Cmp{Op: op, L: l, R: r} }

// AllOf conjoins predicates; an empty list is TRUE.
func AllOf(preds ...BoolExpr) BoolExpr { return Conjoin(preds) }

// AnyOf disjoins predicates; an empty list is TRUE.
func AnyOf(preds ...BoolExpr) BoolExpr {
	if len(preds) == 0 {
		return TrueExpr{}
	}
	e := preds[0]
	for _, p := range preds[1:] {
		e = Or{L: e, R: p}
	}
	return e
}

// Build assembles and validates a pattern. The slide defaults to one minute
// when zero, matching Parse.
func Build(name string, root Node, where BoolExpr, window Window, ret ...ReturnItem) (*Pattern, error) {
	if where == nil {
		where = TrueExpr{}
	}
	if window.Slide == 0 {
		window.Slide = event.Minute
		if window.Slide > window.Size {
			window.Slide = window.Size
		}
	}
	p := &Pattern{Name: name, Root: root, Where: where, Window: window, Return: ret}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}
