package sea

import (
	"fmt"
	"strings"

	"cep2asp/internal/event"
)

// Parse parses a PSL pattern specification (Listing 1 of the paper):
//
//	PATTERN SEQ(QnVQuantity q, QnVVelocity v)
//	WHERE q.value >= 100 AND v.value <= 30 AND q.id == v.id
//	WITHIN 15 MINUTES SLIDE 1 MINUTE
//	RETURN q.id, q.value AS quantity, v.value AS velocity
//
// Pattern operators: SEQ, AND, OR, ITER(T e, m) / ITER(T e, m+), and negated
// leaves inside SEQ written "!T e" or "NOT T e". The WITHIN clause is
// mandatory (§3.1.4, fourth impact); SLIDE defaults to one minute, the
// paper's evaluation-wide choice (§5.1.3). Event type names are registered
// on first use.
//
// The returned pattern has been validated (see Validate).
func Parse(input string) (*Pattern, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if err := Validate(pat); err != nil {
		return nil, err
	}
	return pat, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, found %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().isKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) parsePattern() (*Pattern, error) {
	if !p.acceptKeyword("PATTERN") {
		return nil, p.errf("pattern must start with PATTERN, found %s", p.cur())
	}
	root, err := p.parseNode(false)
	if err != nil {
		return nil, err
	}
	pat := &Pattern{Root: root, Where: TrueExpr{}}

	if p.acceptKeyword("WHERE") {
		expr, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		be, ok := expr.(BoolExpr)
		if !ok {
			return nil, p.errf("WHERE clause is not a boolean expression")
		}
		pat.Where = be
	}

	if !p.acceptKeyword("WITHIN") {
		return nil, p.errf("pattern requires a WITHIN clause (explicit windowing, paper §3.1.4), found %s", p.cur())
	}
	size, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	// SLIDE defaults to one minute, the paper's evaluation-wide choice
	// (§5.1.3), clamped to the window size for sub-minute windows.
	slide := event.Time(event.Minute)
	if slide > size {
		slide = size
	}
	if p.acceptKeyword("SLIDE") {
		slide, err = p.parseDuration()
		if err != nil {
			return nil, err
		}
	}
	pat.Window = Window{Size: size, Slide: slide}

	if p.acceptKeyword("RETURN") {
		items, err := p.parseReturn()
		if err != nil {
			return nil, err
		}
		pat.Return = items
	}

	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input: %s", p.cur())
	}
	return pat, nil
}

// parseNode parses a pattern structure node. allowNeg permits negated
// leaves, which are only meaningful as inner elements of a SEQ.
func (p *parser) parseNode(allowNeg bool) (Node, error) {
	t := p.cur()
	switch {
	case t.isKeyword("SEQ"):
		p.i++
		children, err := p.parseChildren(true)
		if err != nil {
			return nil, err
		}
		return flattenSeq(children), nil
	case t.isKeyword("AND"):
		p.i++
		children, err := p.parseChildren(false)
		if err != nil {
			return nil, err
		}
		return flattenAnd(children), nil
	case t.isKeyword("OR"):
		p.i++
		children, err := p.parseChildren(false)
		if err != nil {
			return nil, err
		}
		return flattenOr(children), nil
	case t.isKeyword("ITER"):
		p.i++
		return p.parseIter()
	case t.kind == tokBang || t.isKeyword("NOT"):
		if !allowNeg {
			return nil, p.errf("negation is only allowed inside a SEQ (negated sequence, paper §3.2)")
		}
		p.i++
		leaf, err := p.parseLeaf()
		if err != nil {
			return nil, err
		}
		leaf.Negated = true
		return leaf, nil
	case t.kind == tokIdent:
		return p.parseLeaf()
	default:
		return nil, p.errf("expected pattern operator or event type, found %s", t)
	}
}

func (p *parser) parseChildren(allowNeg bool) ([]Node, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var children []Node
	for {
		child, err := p.parseNode(allowNeg)
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if len(children) < 2 {
		return nil, p.errf("pattern operator needs at least two elements")
	}
	return children, nil
}

func (p *parser) parseIter() (Node, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	leaf, err := p.parseLeaf()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, "','"); err != nil {
		return nil, err
	}
	numTok, err := p.expect(tokNumber, "iteration count m")
	if err != nil {
		return nil, err
	}
	m := int(numTok.num)
	if float64(m) != numTok.num || m < 1 {
		return nil, p.errf("iteration count must be a positive integer, got %s", numTok)
	}
	unbounded := false
	if p.cur().kind == tokPlus {
		p.i++
		unbounded = true
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return &IterNode{Leaf: leaf, M: m, Unbounded: unbounded}, nil
}

func (p *parser) parseLeaf() (*EventLeaf, error) {
	typeTok, err := p.expect(tokIdent, "event type name")
	if err != nil {
		return nil, err
	}
	aliasTok, err := p.expect(tokIdent, "alias")
	if err != nil {
		return nil, err
	}
	return &EventLeaf{
		TypeName: typeTok.text,
		Type:     event.RegisterType(typeTok.text),
		Alias:    aliasTok.text,
	}, nil
}

// flattenSeq exploits associativity (§3.2): SEQ(T1, SEQ(T2, T3)) simplifies
// to SEQ(T1, T2, T3). AND and OR flatten likewise (also commutative, but the
// written order is preserved).
func flattenSeq(children []Node) Node {
	var flat []Node
	for _, c := range children {
		if s, ok := c.(*SeqNode); ok {
			flat = append(flat, s.Children...)
		} else {
			flat = append(flat, c)
		}
	}
	return &SeqNode{Children: flat}
}

func flattenAnd(children []Node) Node {
	var flat []Node
	for _, c := range children {
		if a, ok := c.(*AndNode); ok {
			flat = append(flat, a.Children...)
		} else {
			flat = append(flat, c)
		}
	}
	return &AndNode{Children: flat}
}

func flattenOr(children []Node) Node {
	var flat []Node
	for _, c := range children {
		if o, ok := c.(*OrNode); ok {
			flat = append(flat, o.Children...)
		} else {
			flat = append(flat, c)
		}
	}
	return &OrNode{Children: flat}
}

func (p *parser) parseDuration() (event.Time, error) {
	numTok, err := p.expect(tokNumber, "duration value")
	if err != nil {
		return 0, err
	}
	unitTok, err := p.expect(tokIdent, "time unit")
	if err != nil {
		return 0, err
	}
	var unit event.Time
	switch strings.ToUpper(unitTok.text) {
	case "MS", "MILLISECOND", "MILLISECONDS":
		unit = event.Millisecond
	case "S", "SEC", "SECOND", "SECONDS":
		unit = event.Second
	case "MIN", "MINUTE", "MINUTES":
		unit = event.Minute
	case "H", "HOUR", "HOURS":
		unit = event.Hour
	default:
		return 0, p.errf("unknown time unit %q", unitTok.text)
	}
	d := event.Time(numTok.num * float64(unit))
	if d <= 0 {
		return 0, p.errf("duration must be positive")
	}
	return d, nil
}

func (p *parser) parseReturn() ([]ReturnItem, error) {
	if p.cur().kind == tokStar {
		p.i++
		return nil, nil // RETURN * is the default: all attributes.
	}
	var items []ReturnItem
	for {
		aliasTok, err := p.expect(tokIdent, "alias")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
		attrTok, err := p.expect(tokIdent, "attribute")
		if err != nil {
			return nil, err
		}
		item := ReturnItem{Alias: aliasTok.text, Attr: strings.ToLower(attrTok.text)}
		if p.acceptKeyword("AS") {
			asTok, err := p.expect(tokIdent, "output name")
			if err != nil {
				return nil, err
			}
			item.As = asTok.text
		}
		items = append(items, item)
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		return items, nil
	}
}

// Expression parsing uses precedence climbing over a unified grammar; the
// parse tree separates boolean from numeric nodes naturally, and type
// mismatches (e.g. "q.value AND 3") surface as coercion errors.

// binding powers, loosest first
const (
	precOr = iota + 1
	precAnd
	precCmp
	precAdd
	precMul
)

func (p *parser) parseExpr(minPrec int) (any, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var prec int
		switch {
		case t.isKeyword("OR"):
			prec = precOr
		case t.isKeyword("AND"):
			prec = precAnd
		case t.kind == tokEQ, t.kind == tokNE, t.kind == tokLT, t.kind == tokLE, t.kind == tokGT, t.kind == tokGE:
			prec = precCmp
		case t.kind == tokPlus, t.kind == tokMinus:
			prec = precAdd
		case t.kind == tokStar, t.kind == tokSlash:
			prec = precMul
		default:
			return left, nil
		}
		if prec < minPrec {
			return left, nil
		}
		op := p.next()
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left, err = p.combine(op, left, right)
		if err != nil {
			return nil, err
		}
	}
}

func (p *parser) combine(op token, left, right any) (any, error) {
	switch {
	case op.isKeyword("OR"), op.isKeyword("AND"):
		lb, lok := left.(BoolExpr)
		rb, rok := right.(BoolExpr)
		if !lok || !rok {
			return nil, p.errf("%s requires boolean operands", strings.ToUpper(op.text))
		}
		if op.isKeyword("AND") {
			return And{L: lb, R: rb}, nil
		}
		return Or{L: lb, R: rb}, nil
	case op.kind == tokPlus, op.kind == tokMinus, op.kind == tokStar, op.kind == tokSlash:
		ln, lok := left.(NumExpr)
		rn, rok := right.(NumExpr)
		if !lok || !rok {
			return nil, p.errf("arithmetic requires numeric operands")
		}
		var aop ArithOp
		switch op.kind {
		case tokPlus:
			aop = OpAdd
		case tokMinus:
			aop = OpSub
		case tokStar:
			aop = OpMul
		default:
			aop = OpDiv
		}
		return Arith{Op: aop, L: ln, R: rn}, nil
	default: // comparison
		ln, lok := left.(NumExpr)
		rn, rok := right.(NumExpr)
		if !lok || !rok {
			return nil, p.errf("comparison requires numeric operands")
		}
		var cop CmpOp
		switch op.kind {
		case tokEQ:
			cop = CmpEQ
		case tokNE:
			cop = CmpNE
		case tokLT:
			cop = CmpLT
		case tokLE:
			cop = CmpLE
		case tokGT:
			cop = CmpGT
		default:
			cop = CmpGE
		}
		return Cmp{Op: cop, L: ln, R: rn}, nil
	}
}

func (p *parser) parseUnary() (any, error) {
	t := p.cur()
	switch {
	case t.isKeyword("NOT"), t.kind == tokBang:
		p.i++
		operand, err := p.parseExpr(precCmp)
		if err != nil {
			return nil, err
		}
		be, ok := operand.(BoolExpr)
		if !ok {
			return nil, p.errf("NOT requires a boolean operand")
		}
		return Not{E: be}, nil
	case t.kind == tokMinus:
		p.i++
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		ne, ok := operand.(NumExpr)
		if !ok {
			return nil, p.errf("unary minus requires a numeric operand")
		}
		return Arith{Op: OpSub, L: NumLit{V: 0}, R: ne}, nil
	case t.kind == tokNumber:
		p.i++
		return NumLit{V: t.num}, nil
	case t.isKeyword("TRUE"):
		p.i++
		return TrueExpr{}, nil
	case t.isKeyword("FALSE"):
		p.i++
		return Not{E: TrueExpr{}}, nil
	case t.kind == tokLParen:
		p.i++
		inner, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent:
		return p.parseAttrRef()
	default:
		return nil, p.errf("expected expression, found %s", t)
	}
}

func (p *parser) parseAttrRef() (any, error) {
	aliasTok := p.next()
	index := IndexNone
	if p.cur().kind == tokLBracket {
		p.i++
		idxTok, err := p.expect(tokIdent, "index variable 'i'")
		if err != nil {
			return nil, err
		}
		if !strings.EqualFold(idxTok.text, "i") {
			return nil, p.errf("only 'i' and 'i+1' are valid iteration indexes")
		}
		index = IndexI
		if p.cur().kind == tokPlus {
			p.i++
			oneTok, err := p.expect(tokNumber, "'1'")
			if err != nil {
				return nil, err
			}
			if oneTok.num != 1 {
				return nil, p.errf("only 'i' and 'i+1' are valid iteration indexes")
			}
			index = IndexNext
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return nil, err
	}
	attrTok, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return nil, err
	}
	return AttrRef{Alias: aliasTok.text, Attr: strings.ToLower(attrTok.text), Index: index}, nil
}
