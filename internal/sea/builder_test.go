package sea

import (
	"testing"

	"cep2asp/internal/event"
)

func TestBuildMirrorsParse(t *testing.T) {
	built, err := Build("b",
		Seq(E("BTA", "a"), NotE("BTB", "x"), E("BTC", "c")),
		AllOf(
			Compare(CmpGE, Ref("a", "value"), Lit(10)),
			Compare(CmpGT, Ref("x", "value"), Lit(50)),
		),
		Window{Size: 8 * event.Minute, Slide: event.Minute},
	)
	if err != nil {
		t.Fatal(err)
	}
	parsed := mustParse(t, `
		PATTERN SEQ(BTA a, !BTB x, BTC c)
		WHERE a.value >= 10 AND x.value > 50
		WITHIN 8 MINUTES SLIDE 1 MINUTE`)
	if built.String() != parsed.String() {
		t.Fatalf("builder and parser disagree:\n%s\nvs\n%s", built, parsed)
	}
}

func TestBuildDefaultSlide(t *testing.T) {
	p, err := Build("b", Seq(E("BTA", "a"), E("BTB", "b")), nil, Window{Size: 10 * event.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if p.Window.Slide != event.Minute {
		t.Fatalf("default slide = %d", p.Window.Slide)
	}
	// Sub-minute windows clamp the default slide.
	p, err = Build("b", Seq(E("BTA", "a"), E("BTB", "b")), nil, Window{Size: 30 * event.Second})
	if err != nil {
		t.Fatal(err)
	}
	if p.Window.Slide != 30*event.Second {
		t.Fatalf("clamped slide = %d, want window size", p.Window.Slide)
	}
}

func TestBuildValidates(t *testing.T) {
	_, err := Build("bad", Seq(E("BTA", "a"), E("BTB", "a")), nil, Window{Size: event.Minute})
	if err == nil {
		t.Fatal("duplicate alias accepted")
	}
	_, err = Build("bad", Seq(NotE("BTA", "a"), E("BTB", "b")), nil, Window{Size: event.Minute})
	if err == nil {
		t.Fatal("leading negation accepted")
	}
}

func TestIterBuilders(t *testing.T) {
	p, err := Build("it",
		Iter("BTV", "v", 3),
		Compare(CmpLT, RefI("v", "value"), RefNext("v", "value")),
		Window{Size: 10 * event.Minute},
	)
	if err != nil {
		t.Fatal(err)
	}
	it := p.Root.(*IterNode)
	if it.M != 3 || it.Unbounded {
		t.Fatalf("Iter = %+v", it)
	}
	p, err = Build("it+", IterAtLeast("BTV", "w", 2), nil, Window{Size: 10 * event.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Root.(*IterNode).Unbounded {
		t.Fatal("IterAtLeast not unbounded")
	}
}

func TestAnyOf(t *testing.T) {
	e := AnyOf(
		Compare(CmpGT, Ref("a", "value"), Lit(1)),
		Compare(CmpGT, Ref("b", "value"), Lit(2)),
	)
	if _, ok := e.(Or); !ok {
		t.Fatalf("AnyOf = %T, want Or", e)
	}
	if _, ok := AnyOf().(TrueExpr); !ok {
		t.Fatal("empty AnyOf should be TRUE")
	}
	if _, ok := AllOf().(TrueExpr); !ok {
		t.Fatal("empty AllOf should be TRUE")
	}
}

func TestDisjConjBuilders(t *testing.T) {
	p, err := Build("d",
		Disj(Conj(E("BTA", "a"), E("BTB", "b")), E("BTC", "c")),
		nil, Window{Size: 5 * event.Minute})
	if err != nil {
		t.Fatal(err)
	}
	or := p.Root.(*OrNode)
	if len(or.Children) != 2 {
		t.Fatalf("Disj children = %d", len(or.Children))
	}
	if _, ok := or.Children[0].(*AndNode); !ok {
		t.Fatalf("first branch = %T, want *AndNode", or.Children[0])
	}
}

func TestNumAliases(t *testing.T) {
	e := Arith{Op: OpAdd, L: Ref("zz", "value"), R: Ref("aa", "value")}
	got := NumAliases(e)
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Fatalf("NumAliases = %v", got)
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("PATTERN SEQ(BTA a,\n  %% b) WITHIN 1 MIN")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err = %T (%v), want *SyntaxError", err, err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Line)
	}
}

func TestLexerNumberForms(t *testing.T) {
	for _, src := range []string{
		`PATTERN SEQ(BTA a, BTB b) WHERE a.value > 1.5e2 WITHIN 1 MIN`,
		`PATTERN SEQ(BTA a, BTB b) WHERE a.value > .5 WITHIN 1 MIN`,
		`PATTERN SEQ(BTA a, BTB b) WHERE a.value > -3 WITHIN 1 MIN`,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestUnaryMinusEvaluates(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(BTA a, BTB b) WHERE a.value > -3 WITHIN 1 MIN`)
	pred, err := CompileBool(p.Where, Layout{"a": 0, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !pred([]event.Event{{Value: 0}, {}}) {
		t.Fatal("0 > -3 should hold")
	}
	if pred([]event.Event{{Value: -5}, {}}) {
		t.Fatal("-5 > -3 should not hold")
	}
}
