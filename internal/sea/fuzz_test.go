package sea

import (
	"strings"
	"testing"
)

// FuzzParse exercises the PSL front end: no input may panic the parser,
// and accepted patterns must survive a render→reparse round trip.
// Run longer with: go test -fuzz FuzzParse ./internal/sea
func FuzzParse(f *testing.F) {
	seeds := []string{
		`PATTERN SEQ(T1 e1, T2 e2, T3 e3) WHERE e1.value <= e2.value AND e3.value <= 10 WITHIN 4 MINUTES`,
		`PATTERN AND(Q q, V v) WHERE q.id == v.id WITHIN 15 MIN SLIDE 30 SECONDS`,
		`PATTERN OR(Q q, OR(V v, P p)) WITHIN 1 HOUR`,
		`PATTERN ITER(V v, 9+) WHERE v[i].value < v[i+1].value WITHIN 90 MINUTES`,
		`PATTERN SEQ(A a, !B b, C c) WHERE b.value > 10 AND a.id == b.id WITHIN 8 MIN RETURN a.id, c.value AS x`,
		`PATTERN SEQ(A a, AND(B b, C c)) WHERE (a.value + 1) * 2 >= b.value / 3 WITHIN 10 MIN`,
		`-- comment
		PATTERN SEQ(A a, B b) WITHIN 500 MS`,
		`PATTERN`,
		`PATTERN SEQ(`,
		`PATTERN SEQ(A a, B b) WHERE WITHIN 1 MIN`,
		`PATTERN SEQ(A a, B b) WITHIN -5 MINUTES`,
		"PATTERN SEQ(\x00 a, B b) WITHIN 1 MIN",
		`PATTERN SEQ(A a, B b) WHERE a.value > 1e308 WITHIN 1 MIN`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted patterns round-trip through their surface rendering.
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of accepted pattern failed: %v\noriginal: %q\nrendered: %q", err, src, rendered)
		}
		if got := p2.String(); got != rendered {
			// Allow formatting to stabilize after one round trip.
			p3, err := Parse(got)
			if err != nil || p3.String() != got {
				t.Fatalf("render not idempotent:\n1: %q\n2: %q", rendered, got)
			}
		}
		// Validation invariants on accepted patterns.
		if p.Window.Size <= 0 || p.Window.Slide <= 0 || p.Window.Slide > p.Window.Size {
			t.Fatalf("accepted pattern with invalid window: %+v", p.Window)
		}
		seen := map[string]bool{}
		for _, l := range p.Leaves() {
			if seen[l.Alias] {
				t.Fatalf("accepted pattern with duplicate alias %q", l.Alias)
			}
			seen[l.Alias] = true
		}
	})
}

// FuzzLexer feeds raw bytes to the tokenizer alone.
func FuzzLexer(f *testing.F) {
	f.Add("PATTERN SEQ(A a, B b) WHERE a.value >= 1.5e-3 WITHIN 1 MIN")
	f.Add("== != <= >= < > ( ) [ ] , . ! + - * / -- trail")
	f.Add(strings.Repeat("((((", 64))
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}
