// Package sea implements the Simple Event Algebra (SEA) of the paper's §3:
// the pattern AST (sequence, conjunction, disjunction, iteration, negated
// sequence, selection, projection, window), a SASE+-style declarative
// pattern specification language (Listing 1), a predicate expression
// language for WHERE clauses, and an executable encoding of the formal
// set-based operator semantics (Eqs. 9-14) used as a correctness oracle.
package sea

import (
	"fmt"
	"sort"
	"strings"
)

// IndexKind distinguishes plain alias references (e.value) from the indexed
// references used inside iteration patterns, where a predicate constrains
// consecutive constituents: e[i].value < e[i+1].value (paper §5.2.2,
// ITER_2's "constraint between subsequent events").
type IndexKind int

const (
	IndexNone IndexKind = iota // e.attr
	IndexI                     // e[i].attr
	IndexNext                  // e[i+1].attr
)

// CmpOp is a comparison operator in a predicate.
type CmpOp int

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// ArithOp is an arithmetic operator inside numeric expressions.
type ArithOp int

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// NumExpr is a numeric-valued expression node. The unexported marker method
// keeps the numeric and boolean expression kinds distinct at the type level,
// so the parser can reject ill-typed clauses like "a.value AND 3".
type NumExpr interface {
	fmt.Stringer
	collectAliases(set map[string]bool)
	numExpr()
}

// BoolExpr is a boolean-valued expression node. WHERE clauses are BoolExprs.
type BoolExpr interface {
	fmt.Stringer
	collectAliases(set map[string]bool)
	boolExpr()
}

// NumLit is a numeric literal.
type NumLit struct{ V float64 }

func (n NumLit) String() string                 { return trimFloat(n.V) }
func (n NumLit) collectAliases(map[string]bool) {}
func (NumLit) numExpr()                         {}

// AttrRef references an attribute of a bound event: alias.attr, optionally
// indexed for iteration predicates.
type AttrRef struct {
	Alias string
	Attr  string
	Index IndexKind
}

func (a AttrRef) String() string {
	switch a.Index {
	case IndexI:
		return a.Alias + "[i]." + a.Attr
	case IndexNext:
		return a.Alias + "[i+1]." + a.Attr
	}
	return a.Alias + "." + a.Attr
}

func (a AttrRef) collectAliases(set map[string]bool) { set[a.Alias] = true }
func (AttrRef) numExpr()                             {}

// Arith combines two numeric expressions.
type Arith struct {
	Op   ArithOp
	L, R NumExpr
}

func (a Arith) String() string {
	return "(" + a.L.String() + " " + a.Op.String() + " " + a.R.String() + ")"
}
func (a Arith) collectAliases(set map[string]bool) {
	a.L.collectAliases(set)
	a.R.collectAliases(set)
}
func (Arith) numExpr() {}

// Cmp compares two numeric expressions, producing a boolean.
type Cmp struct {
	Op   CmpOp
	L, R NumExpr
}

func (c Cmp) String() string { return c.L.String() + " " + c.Op.String() + " " + c.R.String() }
func (c Cmp) collectAliases(set map[string]bool) {
	c.L.collectAliases(set)
	c.R.collectAliases(set)
}
func (Cmp) boolExpr() {}

// And is a boolean conjunction.
type And struct{ L, R BoolExpr }

func (a And) String() string { return "(" + a.L.String() + " AND " + a.R.String() + ")" }
func (a And) collectAliases(set map[string]bool) {
	a.L.collectAliases(set)
	a.R.collectAliases(set)
}
func (And) boolExpr() {}

// Or is a boolean disjunction.
type Or struct{ L, R BoolExpr }

func (o Or) String() string { return "(" + o.L.String() + " OR " + o.R.String() + ")" }
func (o Or) collectAliases(set map[string]bool) {
	o.L.collectAliases(set)
	o.R.collectAliases(set)
}
func (Or) boolExpr() {}

// Not negates a boolean expression.
type Not struct{ E BoolExpr }

func (n Not) String() string                     { return "NOT " + n.E.String() }
func (n Not) collectAliases(set map[string]bool) { n.E.collectAliases(set) }
func (Not) boolExpr()                            {}

// TrueExpr is the neutral predicate; an absent WHERE clause parses to it.
type TrueExpr struct{}

func (TrueExpr) String() string                 { return "TRUE" }
func (TrueExpr) collectAliases(map[string]bool) {}
func (TrueExpr) boolExpr()                      {}

// Aliases returns the sorted set of aliases referenced by e.
func Aliases(e BoolExpr) []string {
	set := make(map[string]bool)
	e.collectAliases(set)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// NumAliases returns the sorted set of aliases referenced by a numeric
// expression.
func NumAliases(e NumExpr) []string {
	set := make(map[string]bool)
	e.collectAliases(set)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Conjuncts flattens nested Ands into the list of top-level conjuncts. The
// translator decomposes the WHERE clause this way to push single-alias
// predicates below joins and to pick equi-join keys (optimization O3).
func Conjuncts(e BoolExpr) []BoolExpr {
	if _, ok := e.(TrueExpr); ok {
		return nil
	}
	if a, ok := e.(And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []BoolExpr{e}
}

// Conjoin rebuilds a conjunction from parts; an empty list yields TrueExpr.
func Conjoin(parts []BoolExpr) BoolExpr {
	if len(parts) == 0 {
		return TrueExpr{}
	}
	e := parts[0]
	for _, p := range parts[1:] {
		e = And{L: e, R: p}
	}
	return e
}

// EquiPair reports whether e is an equality between single attributes of two
// different aliases — the shape that enables data partitioning by key
// (optimization O3, §4.3.3): e1.a_i == e2.a_j.
func EquiPair(e BoolExpr) (leftAlias, leftAttr, rightAlias, rightAttr string, ok bool) {
	c, isCmp := e.(Cmp)
	if !isCmp || c.Op != CmpEQ {
		return "", "", "", "", false
	}
	l, lok := c.L.(AttrRef)
	r, rok := c.R.(AttrRef)
	if !lok || !rok || l.Index != IndexNone || r.Index != IndexNone || l.Alias == r.Alias {
		return "", "", "", "", false
	}
	return l.Alias, l.Attr, r.Alias, r.Attr, true
}

// HasIndexedRef reports whether the expression contains iteration-indexed
// references (e[i] / e[i+1]).
func HasIndexedRef(e BoolExpr) bool {
	switch v := e.(type) {
	case Cmp:
		return numHasIndexed(v.L) || numHasIndexed(v.R)
	case And:
		return HasIndexedRef(v.L) || HasIndexedRef(v.R)
	case Or:
		return HasIndexedRef(v.L) || HasIndexedRef(v.R)
	case Not:
		return HasIndexedRef(v.E)
	}
	return false
}

func numHasIndexed(e NumExpr) bool {
	switch v := e.(type) {
	case AttrRef:
		return v.Index != IndexNone
	case Arith:
		return numHasIndexed(v.L) || numHasIndexed(v.R)
	}
	return false
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return strings.TrimSuffix(s, ".0")
}
