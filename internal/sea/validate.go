package sea

import (
	"fmt"

	"cep2asp/internal/event"
)

// firstUnknownAttr returns the first attribute name in e that the event
// schema does not define, or "" if all are known.
func firstUnknownAttr(e BoolExpr) string {
	switch v := e.(type) {
	case Cmp:
		if bad := firstUnknownAttrNum(v.L); bad != "" {
			return bad
		}
		return firstUnknownAttrNum(v.R)
	case And:
		if bad := firstUnknownAttr(v.L); bad != "" {
			return bad
		}
		return firstUnknownAttr(v.R)
	case Or:
		if bad := firstUnknownAttr(v.L); bad != "" {
			return bad
		}
		return firstUnknownAttr(v.R)
	case Not:
		return firstUnknownAttr(v.E)
	}
	return ""
}

func firstUnknownAttrNum(e NumExpr) string {
	switch v := e.(type) {
	case AttrRef:
		if _, ok := (event.Event{}).Attr(v.Attr); !ok {
			return v.Attr
		}
	case Arith:
		if bad := firstUnknownAttrNum(v.L); bad != "" {
			return bad
		}
		return firstUnknownAttrNum(v.R)
	}
	return ""
}

// ValidationError reports a semantically invalid pattern.
type ValidationError struct{ Msg string }

func (e *ValidationError) Error() string { return "sea: invalid pattern: " + e.Msg }

func invalidf(format string, args ...any) error {
	return &ValidationError{Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the semantic well-formedness rules of SEA patterns:
//
//   - aliases are unique across the pattern;
//   - negated leaves appear only as inner (neither first nor last) elements
//     of a sequence, forming the ternary negated sequence of Eq. 14 — unary
//     negation violates SEA's closure properties (§3.2) and is rejected;
//   - iteration counts are at least 1, and bounded iterations of m=1 are
//     permitted (they degenerate to a plain occurrence);
//   - WHERE references only declared aliases; iteration-indexed references
//     (e[i], e[i+1]) only target iteration aliases;
//   - predicates over a negated alias may constrain it alone or equate one
//     of its attributes with another alias' attribute (used for keying);
//     other cross-predicates involving negated aliases are not expressible
//     in the NSEQ mapping's next-occurrence UDF and are rejected;
//   - the window has a positive size and a positive slide no larger than
//     the size (Theorem 2's completeness precondition is checked against
//     stream rates at translation time, not here);
//   - RETURN items reference declared, non-negated aliases.
func Validate(p *Pattern) error {
	if p.Root == nil {
		return invalidf("empty pattern structure")
	}
	leaves := p.Leaves()
	if len(leaves) == 0 {
		return invalidf("pattern has no event leaves")
	}

	aliases := make(map[string]*EventLeaf, len(leaves))
	for _, l := range leaves {
		if l.Alias == "" {
			return invalidf("event leaf %s has no alias", l.TypeName)
		}
		if prev, dup := aliases[l.Alias]; dup {
			return invalidf("alias %q bound twice (types %s and %s)", l.Alias, prev.TypeName, l.TypeName)
		}
		aliases[l.Alias] = l
	}

	iterAliases := make(map[string]bool)
	if err := validateStructure(p.Root, true, iterAliases); err != nil {
		return err
	}

	if err := validateWhere(p, aliases, iterAliases); err != nil {
		return err
	}

	if p.Window.Size <= 0 {
		return invalidf("window size must be positive")
	}
	if p.Window.Slide <= 0 {
		return invalidf("window slide must be positive")
	}
	if p.Window.Slide > p.Window.Size {
		return invalidf("window slide (%d) exceeds window size (%d): matches spanning pane boundaries would be lost", p.Window.Slide, p.Window.Size)
	}

	for _, r := range p.Return {
		l, ok := aliases[r.Alias]
		if !ok {
			return invalidf("RETURN references unknown alias %q", r.Alias)
		}
		if l.Negated {
			return invalidf("RETURN references negated alias %q, which contributes no event to a match", r.Alias)
		}
		if _, ok := (event.Event{}).Attr(r.Attr); !ok {
			return invalidf("RETURN references unknown attribute %q", r.Attr)
		}
	}
	return nil
}

// validateStructure walks the tree checking negation placement and
// iteration bounds. topLevel tracks whether a bare negated leaf would be
// the whole pattern.
func validateStructure(n Node, topLevel bool, iterAliases map[string]bool) error {
	switch v := n.(type) {
	case *EventLeaf:
		if v.Negated {
			return invalidf("negation of %q must appear between two positive elements of a SEQ (negated sequence, Eq. 14)", v.Alias)
		}
		return nil
	case *IterNode:
		if v.M < 1 {
			return invalidf("iteration of %q needs m >= 1", v.Leaf.Alias)
		}
		if v.Leaf.Negated {
			return invalidf("iteration over a negated type is not part of SEA")
		}
		iterAliases[v.Leaf.Alias] = true
		return nil
	case *SeqNode:
		if len(v.Children) < 2 {
			return invalidf("SEQ needs at least two elements")
		}
		for i, c := range v.Children {
			leaf, isLeaf := c.(*EventLeaf)
			if isLeaf && leaf.Negated {
				if i == 0 || i == len(v.Children)-1 {
					return invalidf("negated element %q cannot be the first or last element of a SEQ (Eq. 14 bounds the absence interval by its neighbours)", leaf.Alias)
				}
				prev, prevLeafOK := v.Children[i-1].(*EventLeaf)
				if prevLeafOK && prev.Negated {
					return invalidf("consecutive negated elements (%q, %q) are not supported", prev.Alias, leaf.Alias)
				}
				continue
			}
			if err := validateStructure(c, false, iterAliases); err != nil {
				return err
			}
		}
		return nil
	case *AndNode:
		if len(v.Children) < 2 {
			return invalidf("AND needs at least two elements")
		}
		for _, c := range v.Children {
			if err := validateStructure(c, false, iterAliases); err != nil {
				return err
			}
		}
		return nil
	case *OrNode:
		if len(v.Children) < 2 {
			return invalidf("OR needs at least two elements")
		}
		for _, c := range v.Children {
			if err := validateStructure(c, false, iterAliases); err != nil {
				return err
			}
		}
		return nil
	default:
		return invalidf("unknown pattern node %T", n)
	}
}

func validateWhere(p *Pattern, aliases map[string]*EventLeaf, iterAliases map[string]bool) error {
	negated := make(map[string]bool)
	for a, l := range aliases {
		if l.Negated {
			negated[a] = true
		}
	}
	for _, conj := range Conjuncts(p.Where) {
		refs := Aliases(conj)
		for _, a := range refs {
			if _, ok := aliases[a]; ok {
				continue
			}
			// Indexed refs were rewritten nowhere yet; aliases come back
			// as-written, so unknown means truly undeclared.
			return invalidf("WHERE references unknown alias %q", a)
		}
		if bad := firstUnknownAttr(conj); bad != "" {
			return invalidf("WHERE references unknown attribute %q", bad)
		}
		if HasIndexedRef(conj) {
			for _, a := range refs {
				if !iterAliases[a] {
					return invalidf("indexed reference on %q, which is not an iteration alias", a)
				}
			}
			if len(refs) != 1 {
				return invalidf("indexed predicates must reference a single iteration alias, got %v", refs)
			}
		}
		// Cross-predicates with negated aliases: only single-alias
		// predicates or equi predicates are expressible in the NSEQ
		// next-occurrence UDF (§4.1, Negated Sequence discussion).
		var negRefs []string
		for _, a := range refs {
			if negated[a] {
				negRefs = append(negRefs, a)
			}
		}
		if len(negRefs) > 0 && len(refs) > 1 {
			if _, _, _, _, ok := EquiPair(conj); !ok {
				return invalidf("predicate %s correlates negated alias %q with other events; only per-event predicates and attribute equalities are supported on negated elements", conj, negRefs[0])
			}
		}
	}
	return nil
}
