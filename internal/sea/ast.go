package sea

import (
	"fmt"
	"strings"

	"cep2asp/internal/event"
)

// Node is a node of the pattern structure tree (the PATTERN clause).
type Node interface {
	fmt.Stringer
	// Leaves appends the event leaves of the subtree, in pattern order,
	// to dst and returns the extended slice. Negated leaves are included.
	Leaves(dst []*EventLeaf) []*EventLeaf
}

// EventLeaf binds one event occurrence: an event type plus the alias by
// which WHERE and RETURN clauses refer to it. Negated marks the leaf as the
// absent component of a negated sequence (§3.2, Eq. 14): it contributes no
// constituent to a match.
type EventLeaf struct {
	TypeName string
	Type     event.Type
	Alias    string
	Negated  bool
}

func (l *EventLeaf) String() string {
	if l.Negated {
		return "!" + l.TypeName + " " + l.Alias
	}
	return l.TypeName + " " + l.Alias
}

// Leaves implements Node.
func (l *EventLeaf) Leaves(dst []*EventLeaf) []*EventLeaf { return append(dst, l) }

// SeqNode is the sequence operator SEQ(c1, ..., cn): every child must occur,
// in strictly increasing timestamp order (Eq. 10). Sequences are associative
// (§3.2), so the parser flattens nested sequences. Children may be negated
// leaves, forming negated sequences (NSEQ); validation guarantees negated
// leaves never appear first or last.
type SeqNode struct{ Children []Node }

func (n *SeqNode) String() string { return renderNary("SEQ", n.Children) }

// Leaves implements Node.
func (n *SeqNode) Leaves(dst []*EventLeaf) []*EventLeaf { return naryLeaves(n.Children, dst) }

// AndNode is the conjunction operator AND(c1, ..., cn): every child must
// occur within the window, in any order (Eq. 9). Associative and
// commutative; parsed flat.
type AndNode struct{ Children []Node }

func (n *AndNode) String() string { return renderNary("AND", n.Children) }

// Leaves implements Node.
func (n *AndNode) Leaves(dst []*EventLeaf) []*EventLeaf { return naryLeaves(n.Children, dst) }

// OrNode is the disjunction operator OR(c1, ..., cn): any one child
// occurring within the window is a match (Eq. 11). Associative and
// commutative; parsed flat.
type OrNode struct{ Children []Node }

func (n *OrNode) String() string { return renderNary("OR", n.Children) }

// Leaves implements Node.
func (n *OrNode) Leaves(dst []*EventLeaf) []*EventLeaf { return naryLeaves(n.Children, dst) }

// IterNode is the iteration operator ITER_m(T e): exactly M events of one
// type in strictly increasing timestamp order (Eq. 12). With Unbounded set,
// the node denotes the Kleene+ style variation "at least M events"
// supported through optimization O2 (§4.3.2).
type IterNode struct {
	Leaf      *EventLeaf
	M         int
	Unbounded bool // at least M rather than exactly M
}

func (n *IterNode) String() string {
	plus := ""
	if n.Unbounded {
		plus = "+"
	}
	return fmt.Sprintf("ITER(%s, %d%s)", n.Leaf, n.M, plus)
}

// Leaves implements Node.
func (n *IterNode) Leaves(dst []*EventLeaf) []*EventLeaf { return append(dst, n.Leaf) }

func renderNary(op string, children []Node) string {
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = c.String()
	}
	return op + "(" + strings.Join(parts, ", ") + ")"
}

func naryLeaves(children []Node, dst []*EventLeaf) []*EventLeaf {
	for _, c := range children {
		dst = c.Leaves(dst)
	}
	return dst
}

// Window is the mandatory explicit window of every pattern (§3.1.2):
// time-based, sliding, with size W and slide s. Theorem 2 requires the slide
// to be at most the smallest inter-arrival time of the involved streams for
// completeness; the paper's evaluation uses a one-minute slide throughout
// (§5.1.3).
type Window struct {
	Size  event.Time
	Slide event.Time
}

func (w Window) String() string {
	return fmt.Sprintf("WITHIN %s SLIDE %s", formatDuration(w.Size), formatDuration(w.Slide))
}

func formatDuration(d event.Time) string {
	plural := func(n event.Time, unit string) string {
		if n == 1 {
			return fmt.Sprintf("1 %s", unit)
		}
		return fmt.Sprintf("%d %sS", n, unit)
	}
	switch {
	case d >= event.Hour && d%event.Hour == 0:
		return plural(d/event.Hour, "HOUR")
	case d >= event.Minute && d%event.Minute == 0:
		return plural(d/event.Minute, "MINUTE")
	case d >= event.Second && d%event.Second == 0:
		return plural(d/event.Second, "SECOND")
	default:
		return fmt.Sprintf("%d MS", d)
	}
}

// ReturnItem projects one attribute of a match into the output (RETURN
// clause). An empty Return list means RETURN *: the concatenation of all
// attributes of the participating events (§4.1, mapping directive).
type ReturnItem struct {
	Alias string
	Attr  string
	As    string
}

func (r ReturnItem) String() string {
	s := r.Alias + "." + r.Attr
	if r.As != "" {
		s += " AS " + r.As
	}
	return s
}

// Pattern is a complete SEA pattern: structure, predicates, window, and
// output definition (Listing 1).
type Pattern struct {
	Name   string
	Root   Node
	Where  BoolExpr
	Window Window
	Return []ReturnItem
}

// String renders the pattern in the PSL surface syntax.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("PATTERN " + p.Root.String())
	if _, isTrue := p.Where.(TrueExpr); !isTrue {
		b.WriteString("\nWHERE " + p.Where.String())
	}
	b.WriteString("\n" + p.Window.String())
	if len(p.Return) > 0 {
		parts := make([]string, len(p.Return))
		for i, r := range p.Return {
			parts[i] = r.String()
		}
		b.WriteString("\nRETURN " + strings.Join(parts, ", "))
	}
	return b.String()
}

// Leaves returns the pattern's event leaves in pattern order.
func (p *Pattern) Leaves() []*EventLeaf { return p.Root.Leaves(nil) }

// PositiveLeaves returns the leaves that contribute constituents to a match
// (all leaves except negated ones), in pattern order. This order defines the
// canonical constituent layout of the pattern's matches.
func (p *Pattern) PositiveLeaves() []*EventLeaf {
	var out []*EventLeaf
	for _, l := range p.Leaves() {
		if !l.Negated {
			out = append(out, l)
		}
	}
	return out
}

// Layout returns the canonical alias layout of the pattern's matches:
// positive leaves in pattern order, with iteration leaves occupying M
// consecutive slots (the alias maps to the first).
func (p *Pattern) Layout() Layout {
	layout := make(Layout)
	pos := 0
	var walk func(n Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case *EventLeaf:
			if !v.Negated {
				layout[v.Alias] = pos
				pos++
			}
		case *IterNode:
			layout[v.Leaf.Alias] = pos
			pos += v.M
		case *SeqNode:
			for _, c := range v.Children {
				walk(c)
			}
		case *AndNode:
			for _, c := range v.Children {
				walk(c)
			}
		case *OrNode:
			for _, c := range v.Children {
				walk(c)
			}
		}
	}
	walk(p.Root)
	return layout
}
