package sea

import (
	"strings"
	"testing"

	"cep2asp/internal/event"
)

func mustParse(t *testing.T, src string) *Pattern {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseListing2(t *testing.T) {
	// The paper's Listing 2 example, in our surface syntax.
	p := mustParse(t, `
		PATTERN SEQ(T1 e1, T2 e2, T3 e3)
		WHERE e1.value <= e2.value AND e3.value <= 10
		WITHIN 4 MINUTES`)
	seq, ok := p.Root.(*SeqNode)
	if !ok {
		t.Fatalf("root is %T, want *SeqNode", p.Root)
	}
	if len(seq.Children) != 3 {
		t.Fatalf("SEQ has %d children, want 3", len(seq.Children))
	}
	if p.Window.Size != 4*event.Minute {
		t.Fatalf("window size = %d, want %d", p.Window.Size, 4*event.Minute)
	}
	if p.Window.Slide != event.Minute {
		t.Fatalf("default slide = %d, want one minute", p.Window.Slide)
	}
	conjs := Conjuncts(p.Where)
	if len(conjs) != 2 {
		t.Fatalf("WHERE has %d conjuncts, want 2", len(conjs))
	}
}

func TestParseNestedSeqFlattens(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(T1 a, SEQ(T2 b, T3 c)) WITHIN 1 MINUTE`)
	seq := p.Root.(*SeqNode)
	if len(seq.Children) != 3 {
		t.Fatalf("nested SEQ did not flatten: %d children", len(seq.Children))
	}
}

func TestParseNestedAndOrFlatten(t *testing.T) {
	p := mustParse(t, `PATTERN AND(T1 a, AND(T2 b, T3 c)) WITHIN 1 MINUTE`)
	if n := p.Root.(*AndNode); len(n.Children) != 3 {
		t.Fatalf("nested AND did not flatten: %d children", len(n.Children))
	}
	p = mustParse(t, `PATTERN OR(T1 a, OR(T2 b, T3 c)) WITHIN 1 MINUTE`)
	if n := p.Root.(*OrNode); len(n.Children) != 3 {
		t.Fatalf("nested OR did not flatten: %d children", len(n.Children))
	}
}

func TestParseMixedNestingPreserved(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(T1 a, AND(T2 b, T3 c)) WITHIN 1 MINUTE`)
	seq := p.Root.(*SeqNode)
	if len(seq.Children) != 2 {
		t.Fatalf("SEQ(a, AND(b,c)) flattened wrongly: %d children", len(seq.Children))
	}
	if _, ok := seq.Children[1].(*AndNode); !ok {
		t.Fatalf("second child is %T, want *AndNode", seq.Children[1])
	}
}

func TestParseNegatedSequence(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(T1 a, !T2 b, T3 c) WITHIN 10 MINUTES`)
	seq := p.Root.(*SeqNode)
	leaf, ok := seq.Children[1].(*EventLeaf)
	if !ok || !leaf.Negated {
		t.Fatalf("middle child = %v, want negated leaf", seq.Children[1])
	}
	// NOT keyword spelling.
	p = mustParse(t, `PATTERN SEQ(T1 a, NOT T2 b, T3 c) WITHIN 10 MINUTES`)
	if !p.Root.(*SeqNode).Children[1].(*EventLeaf).Negated {
		t.Fatal("NOT spelling not recognized")
	}
}

func TestParseIter(t *testing.T) {
	p := mustParse(t, `PATTERN ITER(V v, 3) WHERE v[i].value < v[i+1].value WITHIN 15 MINUTES`)
	it := p.Root.(*IterNode)
	if it.M != 3 || it.Unbounded {
		t.Fatalf("ITER = m%d unbounded=%v, want m=3 bounded", it.M, it.Unbounded)
	}
	p = mustParse(t, `PATTERN ITER(V v, 5+) WITHIN 15 MINUTES`)
	it = p.Root.(*IterNode)
	if it.M != 5 || !it.Unbounded {
		t.Fatalf("ITER = m%d unbounded=%v, want m=5 unbounded", it.M, it.Unbounded)
	}
}

func TestParseReturnClause(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(Q q, V v) WITHIN 15 MINUTES RETURN q.id, v.value AS speed`)
	if len(p.Return) != 2 {
		t.Fatalf("RETURN has %d items, want 2", len(p.Return))
	}
	if p.Return[1].As != "speed" {
		t.Fatalf("AS = %q, want speed", p.Return[1].As)
	}
	// RETURN * is the default.
	p = mustParse(t, `PATTERN SEQ(Q q, V v) WITHIN 15 MINUTES RETURN *`)
	if len(p.Return) != 0 {
		t.Fatal("RETURN * should yield empty projection list")
	}
}

func TestParseSlide(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(Q q, V v) WITHIN 15 MINUTES SLIDE 30 SECONDS`)
	if p.Window.Slide != 30*event.Second {
		t.Fatalf("slide = %d, want %d", p.Window.Slide, 30*event.Second)
	}
}

func TestParseDurationUnits(t *testing.T) {
	tests := []struct {
		src  string
		want event.Time
	}{
		{"500 MS", 500},
		{"2 SECONDS", 2 * event.Second},
		{"1 MIN", event.Minute},
		{"3 HOURS", 3 * event.Hour},
	}
	for _, tc := range tests {
		p := mustParse(t, `PATTERN SEQ(Q q, V v) WITHIN `+tc.src)
		if p.Window.Size != tc.want {
			t.Errorf("WITHIN %s = %d, want %d", tc.src, p.Window.Size, tc.want)
		}
	}
}

func TestParsePredicatePrecedence(t *testing.T) {
	p := mustParse(t, `PATTERN AND(Q q, V v) WHERE q.value + 2 * 3 >= 10 AND v.value < 5 OR v.value > 100 WITHIN 1 MIN`)
	// OR binds loosest: (A AND B) OR C.
	or, ok := p.Where.(Or)
	if !ok {
		t.Fatalf("top = %T, want Or", p.Where)
	}
	if _, ok := or.L.(And); !ok {
		t.Fatalf("left of OR = %T, want And", or.L)
	}
	// 2*3 binds tighter than +.
	and := or.L.(And)
	cmp := and.L.(Cmp)
	arith, ok := cmp.L.(Arith)
	if !ok || arith.Op != OpAdd {
		t.Fatalf("left of >= is %v, want addition", cmp.L)
	}
	if inner, ok := arith.R.(Arith); !ok || inner.Op != OpMul {
		t.Fatalf("right addend %v, want multiplication", arith.R)
	}
}

func TestParseParenthesizedBool(t *testing.T) {
	p := mustParse(t, `PATTERN AND(Q q, V v) WHERE (q.value > 1 OR v.value > 2) AND q.id == v.id WITHIN 1 MIN`)
	and, ok := p.Where.(And)
	if !ok {
		t.Fatalf("top = %T, want And", p.Where)
	}
	if _, ok := and.L.(Or); !ok {
		t.Fatalf("left = %T, want Or", and.L)
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, `
		-- congestion pattern
		PATTERN SEQ(Q q, V v) -- two streams
		WITHIN 15 MINUTES`)
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"missing PATTERN", `SEQ(T1 a, T2 b) WITHIN 1 MIN`, "PATTERN"},
		{"missing WITHIN", `PATTERN SEQ(T1 a, T2 b)`, "WITHIN"},
		{"one element", `PATTERN SEQ(T1 a) WITHIN 1 MIN`, "at least two"},
		{"neg first", `PATTERN SEQ(!T1 a, T2 b) WITHIN 1 MIN`, "first or last"},
		{"neg last", `PATTERN SEQ(T1 a, !T2 b) WITHIN 1 MIN`, "first or last"},
		{"neg in AND", `PATTERN AND(T1 a, !T2 b) WITHIN 1 MIN`, "negation"},
		{"neg alone", `PATTERN NOT T1 a WITHIN 1 MIN`, "negation"},
		{"dup alias", `PATTERN SEQ(T1 a, T2 a) WITHIN 1 MIN`, "alias"},
		{"unknown alias", `PATTERN SEQ(T1 a, T2 b) WHERE c.value > 1 WITHIN 1 MIN`, "unknown alias"},
		{"bad iter count", `PATTERN ITER(T1 a, 0) WITHIN 1 MIN`, "positive integer"},
		{"indexed non-iter", `PATTERN SEQ(T1 a, T2 b) WHERE a[i].value < a[i+1].value WITHIN 1 MIN`, "iteration alias"},
		{"slide gt size", `PATTERN SEQ(T1 a, T2 b) WITHIN 1 MIN SLIDE 2 MIN`, "slide"},
		{"bool arith", `PATTERN SEQ(T1 a, T2 b) WHERE a.value AND 3 > 1 WITHIN 1 MIN`, "boolean"},
		{"cmp of bool", `PATTERN SEQ(T1 a, T2 b) WHERE (a.value > 1) > 2 WITHIN 1 MIN`, "numeric"},
		{"trailing", `PATTERN SEQ(T1 a, T2 b) WITHIN 1 MIN garbage garbage`, "trailing"},
		{"bad unit", `PATTERN SEQ(T1 a, T2 b) WITHIN 1 FORTNIGHT`, "unit"},
		{"unknown attr", `PATTERN SEQ(T1 a, T2 b) WHERE a.nope > 1 WITHIN 1 MIN`, ""},
		{"neg cross pred", `PATTERN SEQ(T1 a, !T2 b, T3 c) WHERE b.value > a.value WITHIN 1 MIN`, "negated"},
		{"consecutive neg", `PATTERN SEQ(T1 a, !T2 b, !T3 c, T4 d) WITHIN 1 MIN`, "consecutive"},
		{"return negated", `PATTERN SEQ(T1 a, !T2 b, T3 c) WITHIN 1 MIN RETURN b.value`, "negated"},
		{"return unknown", `PATTERN SEQ(T1 a, T2 b) WITHIN 1 MIN RETURN z.value`, "unknown"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// "unknown attr" is a compile-time rather than parse-time failure in some
// paths; make sure CompileBool rejects it.
func TestCompileUnknownAttr(t *testing.T) {
	_, err := CompileBool(Cmp{Op: CmpGT, L: AttrRef{Alias: "a", Attr: "nope"}, R: NumLit{V: 1}}, Layout{"a": 0})
	if err == nil {
		t.Fatal("CompileBool accepted unknown attribute")
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	src := `PATTERN SEQ(T1 e1, T2 e2) WHERE e1.value <= e2.value WITHIN 4 MINUTES`
	p := mustParse(t, src)
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p.String(), p2.String())
	}
}

func TestLayout(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(T1 a, !T2 b, ITER(T3 c, 3), T4 d) WITHIN 10 MIN`)
	layout := p.Layout()
	if layout["a"] != 0 {
		t.Errorf("layout[a] = %d, want 0", layout["a"])
	}
	if _, ok := layout["b"]; ok {
		t.Error("negated alias b should not be in layout")
	}
	if layout["c"] != 1 {
		t.Errorf("layout[c] = %d, want 1", layout["c"])
	}
	if layout["d"] != 4 {
		t.Errorf("layout[d] = %d, want 4 (after 3 iteration slots)", layout["d"])
	}
}

func TestPositiveLeaves(t *testing.T) {
	p := mustParse(t, `PATTERN SEQ(T1 a, !T2 b, T3 c) WITHIN 10 MIN`)
	pos := p.PositiveLeaves()
	if len(pos) != 2 || pos[0].Alias != "a" || pos[1].Alias != "c" {
		t.Fatalf("PositiveLeaves = %v", pos)
	}
	if all := p.Leaves(); len(all) != 3 {
		t.Fatalf("Leaves = %d, want 3", len(all))
	}
}
