package cep

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
)

// Recovery tests: the unary CEP operator's snapshot must capture in-flight
// partial matches, pending negated matches and blocker buffers, so a killed
// and restored FCEP run emits exactly an uninterrupted run's matches.

// buildFCEP wires a compiled program into an engine: unioned throttled
// sources, the single CEP operator, a dedup sink.
func buildFCEP(t *testing.T, env *asp.Environment, prog *nfa.Program, streams map[string][]event.Event) *asp.Results {
	t.Helper()
	op, err := NewOperator(prog)
	if err != nil {
		t.Fatal(err)
	}
	var sources []*asp.Stream
	for _, name := range []string{"sA", "sB", "sX"} {
		evs, ok := streams[name]
		if !ok {
			continue
		}
		sources = append(sources, env.Source(name, evs, false).Throttle(4000))
	}
	unioned := sources[0]
	if len(sources) > 1 {
		unioned = sources[0].Union("union", sources[1:]...)
	}
	res := asp.NewResults(true, true)
	unioned.Process("fcep", 1, nil, op).Sink("sink", res.Operator())
	return res
}

func TestKillRestoreCEPOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ta := event.RegisterType("CA")
	tb := event.RegisterType("CB")
	tx := event.RegisterType("CX")
	streams := map[string][]event.Event{
		"sA": genStream(rng, ta, 120, 400),
		"sB": genStream(rng, tb, 120, 400),
		"sX": genStream(rng, tx, 30, 400),
	}
	// SEQ(A, !X, B): partials, pending negated matches and blockers are all
	// exercised, covering every part of the machine snapshot.
	prog, err := Compile(mustPattern(t, `PATTERN SEQ(CA a, !CX x, CB b) WITHIN 10 MIN`),
		nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}

	oracleEnv := asp.NewEnvironment(asp.Config{WatermarkInterval: 16})
	oracleRes := buildFCEP(t, oracleEnv, prog, streams)
	if err := oracleEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := sortedKeys(oracleRes.Matches())
	if len(want) == 0 {
		t.Fatal("oracle produced no matches; test data is inert")
	}

	store := checkpoint.NewMemStore()
	ckEnv := asp.NewEnvironment(asp.Config{
		WatermarkInterval: 16,
		Checkpoint:        &asp.CheckpointSpec{Store: store, Interval: time.Millisecond},
	})
	buildFCEP(t, ckEnv, prog, streams)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if ids, _ := store.IDs(); len(ids) > 0 {
				time.Sleep(2 * time.Millisecond)
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
	}()
	if err := ckEnv.Execute(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if ids, _ := store.IDs(); len(ids) == 0 {
		t.Fatal("no complete checkpoint before the kill")
	}

	restEnv := asp.NewEnvironment(asp.Config{
		WatermarkInterval: 16,
		Checkpoint:        &asp.CheckpointSpec{Store: store, Restore: true},
	})
	restRes := buildFCEP(t, restEnv, prog, streams)
	if err := restEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := sortedKeys(restRes.Matches())
	if !equalKeySets(got, want) {
		t.Fatalf("restored FCEP run emitted %d matches, oracle %d", len(got), len(want))
	}
}

func TestMachineSnapshotRoundTrip(t *testing.T) {
	prog, err := Compile(mustPattern(t, `PATTERN SEQ(CA a, !CX x, CB b) WITHIN 10 MIN`),
		nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nfa.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	ta := event.RegisterType("CA")
	tx := event.RegisterType("CX")
	emit := func(*event.Match) { t.Fatal("unexpected emission") }
	m.OnEvent(event.Event{Type: ta, TS: 1 * event.Minute}, emit)
	m.OnEvent(event.Event{Type: tx, TS: 2 * event.Minute}, emit)
	if m.StateSize() != 2 {
		t.Fatalf("StateSize = %d, want 2 (one partial, one blocker)", m.StateSize())
	}

	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := nfa.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if m2.StateSize() != m.StateSize() {
		t.Fatalf("restored StateSize = %d, want %d", m2.StateSize(), m.StateSize())
	}
	// The restored machine must behave identically: B@3 completes a pending
	// match, but the blocker X@2 voids it; B@9 (after the blocker interval
	// window closes) plus A@1 spans < 10 min and is blocked too; a fresh
	// A@20 + B@25 survives.
	var out []*event.Match
	emit2 := func(ma *event.Match) { out = append(out, ma) }
	tb := event.RegisterType("CB")
	m2.OnEvent(event.Event{Type: tb, TS: 3 * event.Minute}, emit2)
	m2.OnEvent(event.Event{Type: ta, TS: 20 * event.Minute}, emit2)
	m2.OnEvent(event.Event{Type: tb, TS: 25 * event.Minute}, emit2)
	m2.OnWatermark(event.MaxWatermark, emit2)
	if len(out) != 1 || out[0].Events[0].TS != 20*event.Minute {
		t.Fatalf("restored machine matches = %v, want only A@20->B@25", out)
	}
}

func TestMachineRestoreRejectsDifferentProgram(t *testing.T) {
	prog1, err := Compile(mustPattern(t, `PATTERN SEQ(CA a, CB b) WITHIN 10 MIN`),
		nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := Compile(mustPattern(t, `PATTERN SEQ(CA a, CB b, CA c) WITHIN 10 MIN`),
		nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := nfa.NewMachine(prog1)
	ta := event.RegisterType("CA")
	m1.OnEvent(event.Event{Type: ta, TS: event.Minute}, func(*event.Match) {})
	data, err := m1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := nfa.NewMachine(prog2)
	if err := m2.Restore(data); err == nil {
		t.Fatal("Restore accepted a snapshot from a different program shape")
	}
}
