package cep

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
	"cep2asp/internal/supervise"
)

// The NFA operator under supervision: killing the fcep instance mid-run via
// chaos, then rebuilding and restoring from the latest aligned checkpoint
// through a supervise.Supervisor, must reproduce an uninterrupted run's match
// set. This drives the supervisor directly against asp — the same loop
// core.RunSupervised wires up — so the CEP machine snapshot is exercised
// under real panic/restart pressure, not only under a cooperative cancel.
func TestSupervisedCEPOperatorRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ta := event.RegisterType("CA")
	tb := event.RegisterType("CB")
	tx := event.RegisterType("CX")
	streams := map[string][]event.Event{
		"sA": genStream(rng, ta, 120, 400),
		"sB": genStream(rng, tb, 120, 400),
		"sX": genStream(rng, tx, 30, 400),
	}
	prog, err := Compile(mustPattern(t, `PATTERN SEQ(CA a, !CX x, CB b) WITHIN 10 MIN`),
		nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}

	oracleEnv := asp.NewEnvironment(asp.Config{WatermarkInterval: 16})
	oracleRes := buildFCEP(t, oracleEnv, prog, streams)
	if err := oracleEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := sortedKeys(oracleRes.Matches())
	if len(want) == 0 {
		t.Fatal("oracle produced no matches; test data is inert")
	}

	const kills = 2
	inj := chaos.NewInjector(chaos.Fault{
		Kind: chaos.Panic, Node: "fcep", Instance: -1,
		AtHit: 200, Times: kills,
	})
	store := checkpoint.NewMemStore()
	policy := supervise.DefaultPolicy()
	policy.InitialBackoff = time.Millisecond
	policy.MaxBackoff = 2 * time.Millisecond
	policy.Jitter = 0
	// The replayed record re-takes the fault after each restart; keep the
	// threshold above the kill count so nothing is quarantined.
	policy.PoisonThreshold = kills + 2

	sup := &supervise.Supervisor{Policy: policy}
	var res *asp.Results
	restarts, err := sup.Run(context.Background(), func(ctx context.Context, attempt int) error {
		env := asp.NewEnvironment(asp.Config{
			WatermarkInterval: 16,
			Chaos:             inj,
			Checkpoint: &asp.CheckpointSpec{
				Store: store, Interval: time.Millisecond, Restore: attempt > 0,
			},
		})
		res = buildFCEP(t, env, prog, streams)
		return env.Execute(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	if restarts != kills {
		t.Fatalf("restarts = %d, want %d", restarts, kills)
	}
	if fires := len(inj.Fires()); fires != kills {
		t.Fatalf("fault fired %d times, want %d", fires, kills)
	}
	got := sortedKeys(res.Matches())
	if !equalKeySets(got, want) {
		t.Fatalf("supervised FCEP run emitted %d matches, oracle %d", len(got), len(want))
	}
}
