package cep

import (
	"fmt"
	"time"

	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
)

// Builder assembles NFA programs in the style of FlinkCEP's functional
// pattern API (§2, "one non-declarative exception is the language model of
// FlinkCEP"). The operator choices mirror the ones the paper uses for
// equivalent workloads (§5.1.2): FollowedByAny corresponds to
// skip-till-any-match, FollowedBy to skip-till-next-match, Next to
// strict-contiguity; Times(m) with AllowCombinations expands bounded
// iteration; NotFollowedBy inserts a negation.
//
// Mixing contiguity modes within one pattern is not supported (the policy
// is program-wide, as in the paper's experiments which use one policy per
// run); the builder records the policy of the first chained connective and
// rejects conflicting ones.
type Builder struct {
	prog      *nfa.Program
	policy    nfa.Policy
	policySet bool
	err       error
	// pending negation: recorded on NotFollowedBy, attached when the next
	// positive stage arrives.
	pendingNeg *nfa.Negation
}

// Begin starts a pattern with a first stage accepting the given event type.
func Begin(name, typeName string) *Builder {
	b := &Builder{prog: &nfa.Program{Name: name}}
	b.prog.Stages = append(b.prog.Stages, nfa.Stage{
		Name: typeName,
		Type: event.RegisterType(typeName),
	})
	return b
}

func (b *Builder) setPolicy(p nfa.Policy) {
	if b.err != nil {
		return
	}
	if b.policySet && b.policy != p {
		b.err = fmt.Errorf("cep: mixed selection policies in one pattern (%s vs %s)", b.policy, p)
		return
	}
	b.policy, b.policySet = p, true
}

func (b *Builder) addStage(typeName string) {
	if b.err != nil {
		return
	}
	if b.pendingNeg != nil {
		b.prog.Negations = append(b.prog.Negations, *b.pendingNeg)
		b.pendingNeg = nil
	}
	b.prog.Stages = append(b.prog.Stages, nfa.Stage{
		Name: typeName,
		Type: event.RegisterType(typeName),
	})
}

// FollowedByAny chains a stage under skip-till-any-match (.followedByAny).
func (b *Builder) FollowedByAny(typeName string) *Builder {
	b.setPolicy(nfa.SkipTillAnyMatch)
	b.addStage(typeName)
	return b
}

// FollowedBy chains a stage under skip-till-next-match (.followedBy).
func (b *Builder) FollowedBy(typeName string) *Builder {
	b.setPolicy(nfa.SkipTillNextMatch)
	b.addStage(typeName)
	return b
}

// Next chains a stage under strict contiguity (.next).
func (b *Builder) Next(typeName string) *Builder {
	b.setPolicy(nfa.StrictContiguity)
	b.addStage(typeName)
	return b
}

// NotFollowedBy inserts a negation between the previous and the next
// positive stage (.notFollowedBy). A pattern must not end with it.
func (b *Builder) NotFollowedBy(typeName string) *Builder {
	if b.err != nil {
		return b
	}
	if b.pendingNeg != nil {
		b.err = fmt.Errorf("cep: consecutive NotFollowedBy stages are not supported")
		return b
	}
	b.pendingNeg = &nfa.Negation{
		Type:  event.RegisterType(typeName),
		After: len(b.prog.Stages) - 1,
	}
	return b
}

// Where attaches a predicate to the stage added last: it receives the
// candidate event. Simple conditions in FlinkCEP style.
func (b *Builder) Where(pred func(e event.Event) bool) *Builder {
	if b.err != nil {
		return b
	}
	if b.pendingNeg != nil {
		neg := b.pendingNeg
		prev := neg.Pred
		neg.Pred = func(match []event.Event, blocker event.Event) bool {
			if prev != nil && !prev(match, blocker) {
				return false
			}
			return pred(blocker)
		}
		return b
	}
	s := &b.prog.Stages[len(b.prog.Stages)-1]
	prev := s.Pred
	s.Pred = func(prefix []event.Event, e event.Event) bool {
		if prev != nil && !prev(prefix, e) {
			return false
		}
		return pred(e)
	}
	return b
}

// WherePrev attaches an iterative condition comparing the candidate with
// the previously accepted constituent (FlinkCEP IterativeCondition).
func (b *Builder) WherePrev(pred func(prev, e event.Event) bool) *Builder {
	if b.err != nil {
		return b
	}
	if b.pendingNeg != nil {
		b.err = fmt.Errorf("cep: WherePrev is not applicable to NotFollowedBy")
		return b
	}
	s := &b.prog.Stages[len(b.prog.Stages)-1]
	prevPred := s.Pred
	s.Pred = func(prefix []event.Event, e event.Event) bool {
		if prevPred != nil && !prevPred(prefix, e) {
			return false
		}
		if len(prefix) == 0 {
			return true
		}
		return pred(prefix[len(prefix)-1], e)
	}
	return b
}

// Times expands the stage added last into m consecutive stages of the same
// type and predicate — .times(m).allowCombinations() under
// skip-till-any-match (§5.1.2).
func (b *Builder) Times(m int) *Builder {
	if b.err != nil {
		return b
	}
	if b.pendingNeg != nil {
		b.err = fmt.Errorf("cep: Times is not applicable to NotFollowedBy")
		return b
	}
	if m < 1 {
		b.err = fmt.Errorf("cep: Times(%d) needs m >= 1", m)
		return b
	}
	last := b.prog.Stages[len(b.prog.Stages)-1]
	for i := 1; i < m; i++ {
		s := last
		s.Name = fmt.Sprintf("%s[%d]", last.Name, i)
		b.prog.Stages = append(b.prog.Stages, s)
	}
	return b
}

// KeyBy partitions the automaton's state by the given key extractor.
func (b *Builder) KeyBy(key func(event.Event) int64) *Builder {
	if b.err == nil {
		b.prog.Key = key
	}
	return b
}

// Within sets the implicit window and finishes the pattern.
func (b *Builder) Within(d time.Duration) (*nfa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.pendingNeg != nil {
		return nil, fmt.Errorf("cep: pattern cannot end with NotFollowedBy (negation needs a right boundary, Eq. 14)")
	}
	b.prog.Window = event.DurationToMillis(d)
	b.prog.Policy = b.policy
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}
