package cep

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
	"cep2asp/internal/sea"
)

func mustPattern(t *testing.T, src string) *sea.Pattern {
	t.Helper()
	p, err := sea.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileRejectsAndOr(t *testing.T) {
	for _, src := range []string{
		`PATTERN AND(CA a, CB b) WITHIN 5 MIN`,
		`PATTERN OR(CA a, CB b) WITHIN 5 MIN`,
		`PATTERN SEQ(CA a, AND(CB b, CC c)) WITHIN 5 MIN`,
	} {
		_, err := Compile(mustPattern(t, src), nfa.SkipTillAnyMatch, nil)
		if err == nil {
			t.Errorf("Compile(%q) succeeded; FCEP does not support AND/OR (Table 2)", src)
		}
	}
}

func TestCompileRejectsUnboundedIter(t *testing.T) {
	_, err := Compile(mustPattern(t, `PATTERN ITER(CA a, 3+) WITHIN 5 MIN`), nfa.SkipTillAnyMatch, nil)
	if err == nil {
		t.Fatal("Compile accepted unbounded iteration")
	}
}

func TestCompileSeqWithPredicates(t *testing.T) {
	p := mustPattern(t, `
		PATTERN SEQ(CA a, CB b)
		WHERE a.value >= 10 AND b.value > a.value
		WITHIN 5 MINUTES`)
	prog, err := Compile(p, nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(prog.Stages))
	}
	m, err := nfa.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out []*event.Match
	emit := func(ma *event.Match) { out = append(out, ma) }
	ta, _ := event.LookupType("CA")
	tb, _ := event.LookupType("CB")
	m.OnEvent(event.Event{Type: ta, TS: 0, Value: 5}, emit) // fails a pred
	m.OnEvent(event.Event{Type: ta, TS: 60000, Value: 20}, emit)
	m.OnEvent(event.Event{Type: tb, TS: 120000, Value: 15}, emit) // fails cross
	m.OnEvent(event.Event{Type: tb, TS: 180000, Value: 25}, emit)
	if len(out) != 1 {
		t.Fatalf("got %d matches, want 1", len(out))
	}
}

func TestCompileIterExpansion(t *testing.T) {
	p := mustPattern(t, `
		PATTERN ITER(CV v, 3)
		WHERE v[i].value < v[i+1].value
		WITHIN 10 MINUTES`)
	prog, err := Compile(p, nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stages) != 3 {
		t.Fatalf("iteration should expand to 3 stages, got %d", len(prog.Stages))
	}
}

func TestBuilderMirrorsCompile(t *testing.T) {
	prog, err := Begin("b", "CA").
		FollowedByAny("CB").
		Where(func(e event.Event) bool { return e.Value > 0 }).
		Within(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Policy != nfa.SkipTillAnyMatch || len(prog.Stages) != 2 {
		t.Fatalf("builder program wrong: %+v", prog)
	}
}

func TestBuilderMixedPoliciesRejected(t *testing.T) {
	_, err := Begin("b", "CA").FollowedByAny("CB").Next("CC").Within(time.Minute)
	if err == nil {
		t.Fatal("mixed policies accepted")
	}
}

func TestBuilderTrailingNegationRejected(t *testing.T) {
	_, err := Begin("b", "CA").FollowedByAny("CB").NotFollowedBy("CC").Within(time.Minute)
	if err == nil {
		t.Fatal("trailing NotFollowedBy accepted")
	}
}

func TestBuilderTimesAndNegation(t *testing.T) {
	prog, err := Begin("b", "CA").
		NotFollowedBy("CX").
		FollowedByAny("CB").Times(3).
		Within(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stages) != 4 {
		t.Fatalf("stages = %d, want 4 (1 + 3 expanded)", len(prog.Stages))
	}
	if len(prog.Negations) != 1 || prog.Negations[0].After != 0 {
		t.Fatalf("negation wrong: %+v", prog.Negations)
	}
}

// runFCEP executes a pattern via the unary CEP operator in the engine:
// union all sources, then the single operator — the paper's FCEP topology.
func runFCEP(t *testing.T, pat *sea.Pattern, streams map[string][]event.Event) []*event.Match {
	t.Helper()
	prog, err := Compile(pat, nfa.SkipTillAnyMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(prog)
	if err != nil {
		t.Fatal(err)
	}
	env := asp.NewEnvironment(asp.Config{WatermarkInterval: 1})
	var sources []*asp.Stream
	for name, evs := range streams {
		sources = append(sources, env.Source(name, evs, false))
	}
	unioned := sources[0]
	if len(sources) > 1 {
		unioned = sources[0].Union("union", sources[1:]...)
	}
	res := asp.NewResults(true, true)
	unioned.Process("fcep", 1, nil, op).Sink("sink", res.Operator())
	if err := env.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	return res.Matches()
}

func sortedKeys(ms []*event.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key()
	}
	sort.Strings(out)
	return out
}

func equalKeySets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// genStream produces a random minute-aligned stream for one type; on
// minute-aligned data, implicit windowing (span < W) and the oracle's
// slide-by-one-minute explicit windowing agree exactly.
func genStream(rng *rand.Rand, typ event.Type, n int, maxMinute int64) []event.Event {
	used := map[int64]bool{}
	var out []event.Event
	for len(out) < n {
		m := rng.Int63n(maxMinute)
		if used[m] {
			continue
		}
		used[m] = true
		out = append(out, event.Event{
			Type: typ, ID: 1, TS: m * event.Minute,
			Value: float64(rng.Intn(100)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// TestOracleEquivalenceSeq is the semantic-equivalence property of §4
// (Negri et al.): the NFA under skip-till-any-match and the formal
// set-semantics oracle produce identical deduplicated match sets.
func TestOracleEquivalenceSeq(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(OEA a, OEB b)
		WHERE a.value <= b.value
		WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("OEA")
	tb, _ := event.LookupType("OEB")
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		sa := genStream(rng, ta, 8, 30)
		sb := genStream(rng, tb, 8, 30)
		all := append(append([]event.Event{}, sa...), sb...)
		oracle := sortedKeys(sea.Evaluate(pat, all))
		fcep := sortedKeys(runFCEP(t, pat, map[string][]event.Event{"a": sa, "b": sb}))
		if !equalKeySets(oracle, fcep) {
			t.Fatalf("trial %d: oracle %v != fcep %v", trial, oracle, fcep)
		}
	}
}

func TestOracleEquivalenceIter(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN ITER(OEV v, 3)
		WHERE v[i].value < v[i+1].value
		WITHIN 10 MINUTES SLIDE 1 MINUTE`)
	tv, _ := event.LookupType("OEV")
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		sv := genStream(rng, tv, 10, 40)
		oracle := sortedKeys(sea.Evaluate(pat, sv))
		fcep := sortedKeys(runFCEP(t, pat, map[string][]event.Event{"v": sv}))
		if !equalKeySets(oracle, fcep) {
			t.Fatalf("trial %d: oracle %d matches != fcep %d matches", trial, len(oracle), len(fcep))
		}
	}
}

func TestOracleEquivalenceNseq(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(OEA a, !OEX x, OEB b)
		WHERE x.value > 50
		WITHIN 8 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("OEA")
	tb, _ := event.LookupType("OEB")
	tx, _ := event.LookupType("OEX")
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		sa := genStream(rng, ta, 6, 30)
		sb := genStream(rng, tb, 6, 30)
		sx := genStream(rng, tx, 6, 30)
		all := append(append(append([]event.Event{}, sa...), sb...), sx...)
		oracle := sortedKeys(sea.Evaluate(pat, all))
		fcep := sortedKeys(runFCEP(t, pat, map[string][]event.Event{"a": sa, "b": sb, "x": sx}))
		if !equalKeySets(oracle, fcep) {
			t.Fatalf("trial %d: oracle %v != fcep %v", trial, oracle, fcep)
		}
	}
}

func TestOracleEquivalenceSeq3(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(OEA a, OEB b, OEC c)
		WITHIN 6 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("OEA")
	tb, _ := event.LookupType("OEB")
	tc, _ := event.LookupType("OEC")
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		sa := genStream(rng, ta, 6, 25)
		sb := genStream(rng, tb, 6, 25)
		sc := genStream(rng, tc, 6, 25)
		all := append(append(append([]event.Event{}, sa...), sb...), sc...)
		oracle := sortedKeys(sea.Evaluate(pat, all))
		fcep := sortedKeys(runFCEP(t, pat, map[string][]event.Event{"a": sa, "b": sb, "c": sc}))
		if !equalKeySets(oracle, fcep) {
			t.Fatalf("trial %d: oracle %d != fcep %d", trial, len(oracle), len(fcep))
		}
	}
}

func TestOracleEquivalenceNseqCorrelated(t *testing.T) {
	// Blocker correlated with the preceding element by sensor id.
	pat := mustPattern(t, `
		PATTERN SEQ(OEA a, !OEX x, OEB b)
		WHERE x.id == a.id
		WITHIN 8 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("OEA")
	tb, _ := event.LookupType("OEB")
	tx, _ := event.LookupType("OEX")
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		var all []event.Event
		streams := map[string][]event.Event{}
		for name, typ := range map[string]event.Type{"a": ta, "b": tb, "x": tx} {
			s1 := genStream(rng, typ, 4, 30)
			s2 := genStream(rng, typ, 4, 30)
			for i := range s2 {
				s2[i].ID = 2
			}
			merged := append(s1, s2...)
			sort.Slice(merged, func(i, j int) bool { return merged[i].TS < merged[j].TS })
			streams[name] = merged
			all = append(all, merged...)
		}
		oracle := sortedKeys(sea.Evaluate(pat, all))
		fcep := sortedKeys(runFCEP(t, pat, streams))
		if !equalKeySets(oracle, fcep) {
			t.Fatalf("trial %d: oracle %d != fcep %d", trial, len(oracle), len(fcep))
		}
	}
}

func TestOracleEquivalencePoliciesNested(t *testing.T) {
	// Policy results nest: sc ⊆ stnm ⊆ stam on arbitrary compiled patterns.
	pat := mustPattern(t, `
		PATTERN SEQ(OEA a, OEB b)
		WHERE a.value <= b.value
		WITHIN 5 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("OEA")
	tb, _ := event.LookupType("OEB")
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(700 + trial)))
		sa := genStream(rng, ta, 8, 25)
		sb := genStream(rng, tb, 8, 25)
		run := func(policy nfa.Policy) map[string]bool {
			prog, err := Compile(pat, policy, nil)
			if err != nil {
				t.Fatal(err)
			}
			m, err := nfa.NewMachine(prog)
			if err != nil {
				t.Fatal(err)
			}
			set := map[string]bool{}
			emit := func(ma *event.Match) { set[ma.Key()] = true }
			merged := append(append([]event.Event{}, sa...), sb...)
			sort.Slice(merged, func(i, j int) bool { return merged[i].TS < merged[j].TS })
			for _, e := range merged {
				m.OnEvent(e, emit)
			}
			m.OnWatermark(event.MaxWatermark, emit)
			return set
		}
		stam := run(nfa.SkipTillAnyMatch)
		stnm := run(nfa.SkipTillNextMatch)
		sc := run(nfa.StrictContiguity)
		for k := range stnm {
			if !stam[k] {
				t.Fatalf("trial %d: stnm result not in stam", trial)
			}
		}
		for k := range sc {
			if !stam[k] {
				t.Fatalf("trial %d: sc result not in stam", trial)
			}
		}
	}
}
