// Package cep provides the paper's FCEP baseline: the unary CEP operator
// embedding an order-based NFA (internal/nfa) into the ASP dataflow engine
// (internal/asp), applied to the union of all input streams (§5.1.2). It
// compiles SEA patterns into NFA programs — supporting exactly the operator
// subset FlinkCEP supports (Table 2: SEQ, ITER, NSEQ; no AND, no OR) — and
// offers a FlinkCEP-style fluent builder.
package cep

import (
	"fmt"

	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
	"cep2asp/internal/sea"
)

// aliasInfo records which stages an alias occupies: iterations span m
// consecutive stages.
type aliasInfo struct {
	first, last int
	iter        bool
	m           int
}

// ErrUnsupported reports a pattern FCEP cannot express (Table 2).
type ErrUnsupported struct{ Feature string }

func (e *ErrUnsupported) Error() string {
	return "cep: the unary CEP operator does not support " + e.Feature + " (paper Table 2)"
}

// Compile translates a SEA pattern into an NFA program under the given
// selection policy. Patterns containing conjunction or disjunction are
// rejected, matching FlinkCEP's operator support (Table 2); so are
// unbounded iterations (FCEP expresses bounded iteration as
// .times(m).allowCombinations, §5.1.2).
//
// Key, when non-nil, partitions the automaton's state (FlinkCEP "can
// leverage partitioning by key and otherwise runs on a single thread").
func Compile(p *sea.Pattern, policy nfa.Policy, key func(event.Event) int64) (*nfa.Program, error) {
	prog := &nfa.Program{
		Name:   p.Name,
		Window: p.Window.Size,
		Policy: policy,
		Key:    key,
	}

	// Flatten the structure into positive stages and negation markers.
	aliases := make(map[string]*aliasInfo)
	negAlias := make(map[string]int) // alias -> negation index

	var elems []sea.Node
	switch root := p.Root.(type) {
	case *sea.SeqNode:
		elems = root.Children
	case *sea.IterNode, *sea.EventLeaf:
		elems = []sea.Node{root}
	case *sea.AndNode:
		return nil, &ErrUnsupported{Feature: "conjunction (AND)"}
	case *sea.OrNode:
		return nil, &ErrUnsupported{Feature: "disjunction (OR)"}
	default:
		return nil, fmt.Errorf("cep: unknown pattern node %T", root)
	}

	for _, el := range elems {
		switch v := el.(type) {
		case *sea.EventLeaf:
			if v.Negated {
				after := len(prog.Stages) - 1
				prog.Negations = append(prog.Negations, nfa.Negation{Type: v.Type, After: after})
				negAlias[v.Alias] = len(prog.Negations) - 1
				continue
			}
			aliases[v.Alias] = &aliasInfo{first: len(prog.Stages), last: len(prog.Stages)}
			prog.Stages = append(prog.Stages, nfa.Stage{Name: v.Alias, Type: v.Type})
		case *sea.IterNode:
			if v.Unbounded {
				return nil, &ErrUnsupported{Feature: "unbounded iteration (Kleene+); FCEP patterns use .times(m).allowCombinations"}
			}
			first := len(prog.Stages)
			for i := 0; i < v.M; i++ {
				prog.Stages = append(prog.Stages, nfa.Stage{
					Name: fmt.Sprintf("%s[%d]", v.Leaf.Alias, i),
					Type: v.Leaf.Type,
				})
			}
			aliases[v.Leaf.Alias] = &aliasInfo{first: first, last: first + v.M - 1, iter: true, m: v.M}
		case *sea.AndNode:
			return nil, &ErrUnsupported{Feature: "conjunction (AND)"}
		case *sea.OrNode:
			return nil, &ErrUnsupported{Feature: "disjunction (OR)"}
		case *sea.SeqNode:
			return nil, fmt.Errorf("cep: nested sequences should have been flattened by the parser")
		default:
			return nil, fmt.Errorf("cep: unknown pattern element %T", el)
		}
	}

	// Attach WHERE conjuncts to stages / negations.
	stagePreds := make([][]sea.Predicate, len(prog.Stages))
	for _, conj := range sea.Conjuncts(p.Where) {
		refs := sea.Aliases(conj)

		// Negation predicates: compiled against match constituents plus
		// the blocker in the final slot.
		if ni, isNeg := negatedConjunct(refs, negAlias); isNeg {
			layout := sea.Layout{}
			for a, info := range aliases {
				layout[a] = info.first
			}
			blockerSlot := len(prog.Stages)
			for a := range negAlias {
				layout[a] = blockerSlot
			}
			pred, err := sea.CompileBool(conj, layout)
			if err != nil {
				return nil, fmt.Errorf("cep: compiling negation predicate %s: %w", conj, err)
			}
			neg := &prog.Negations[ni]
			prev := neg.Pred
			// No shared scratch: one Program serves every parallel keyed
			// instance, so predicate closures must be reentrant.
			neg.Pred = func(match []event.Event, blocker event.Event) bool {
				if prev != nil && !prev(match, blocker) {
					return false
				}
				es := make([]event.Event, 0, blockerSlot+1)
				es = append(es, match...)
				es = append(es, blocker)
				return pred(es)
			}
			continue
		}

		if sea.HasIndexedRef(conj) {
			// Pairwise iteration constraint: attach at stages 2..m of the
			// iteration, comparing the previous constituent with the
			// candidate.
			alias := refs[0]
			info := aliases[alias]
			if info == nil || !info.iter {
				return nil, fmt.Errorf("cep: indexed predicate %s on non-iteration alias", conj)
			}
			pair, err := sea.CompilePair(conj, alias)
			if err != nil {
				return nil, fmt.Errorf("cep: compiling pairwise predicate %s: %w", conj, err)
			}
			for s := info.first + 1; s <= info.last; s++ {
				prevIdx := s - 1
				stagePreds[s] = append(stagePreds[s], func(es []event.Event) bool {
					return pair(es[prevIdx], es[len(es)-1])
				})
			}
			continue
		}

		// Plain conjunct: expand iteration aliases over every constituent
		// position (universal quantification) and attach each expansion at
		// the latest referenced stage, where all its events are available.
		combos, err := expandPositions(conj, refs, aliases)
		if err != nil {
			return nil, err
		}
		for _, c := range combos {
			stagePreds[c.stage] = append(stagePreds[c.stage], c.pred)
		}
	}

	for s := range stagePreds {
		preds := stagePreds[s]
		if len(preds) == 0 {
			continue
		}
		stageLen := s + 1
		prog.Stages[s].Pred = func(prefix []event.Event, e event.Event) bool {
			// No shared scratch: one Program serves every parallel keyed
			// instance, so predicate closures must be reentrant.
			es := make([]event.Event, 0, stageLen)
			es = append(es, prefix...)
			es = append(es, e)
			for _, pr := range preds {
				if !pr(es) {
					return false
				}
			}
			return true
		}
	}

	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

func negatedConjunct(refs []string, negAlias map[string]int) (int, bool) {
	for _, a := range refs {
		if ni, ok := negAlias[a]; ok {
			return ni, true
		}
	}
	return 0, false
}

type positioned struct {
	stage int
	pred  sea.Predicate
}

// expandPositions compiles one plain conjunct into per-stage predicates,
// enumerating every constituent position for iteration aliases so the
// constraint holds universally.
func expandPositions(conj sea.BoolExpr, refs []string, aliases map[string]*aliasInfo) ([]positioned, error) {
	choices := make([][]int, len(refs))
	for i, a := range refs {
		info := aliases[a]
		if info == nil {
			return nil, fmt.Errorf("cep: predicate references unknown alias %q", a)
		}
		for s := info.first; s <= info.last; s++ {
			choices[i] = append(choices[i], s)
		}
	}
	var out []positioned
	idx := make([]int, len(refs))
	for {
		layout := sea.Layout{}
		maxStage := 0
		for i, a := range refs {
			pos := choices[i][idx[i]]
			layout[a] = pos
			if pos > maxStage {
				maxStage = pos
			}
		}
		pred, err := sea.CompileBool(conj, layout)
		if err != nil {
			return nil, fmt.Errorf("cep: compiling predicate %s: %w", conj, err)
		}
		out = append(out, positioned{stage: maxStage, pred: pred})
		// Advance the odometer.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	return out, nil
}
