package cep

import (
	"bytes"
	"container/heap"
	"encoding/gob"
	"unsafe"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
)

// NewOperator adapts an NFA program to an asp.Operator — the single unary
// CEP operator of the hybrid approach (§1, approach 2). Attach it with
// Stream.Process after unioning all involved input streams.
//
// The order-based automaton requires its input in event-time order, but the
// union of several sources interleaves by arrival. Like FlinkCEP under
// event time, the operator therefore buffers arriving events in a priority
// queue and feeds them to the automaton in timestamp order once the
// watermark passes — buffering that contributes to the operator's state
// footprint, exactly as the paper describes (§5.2.1: "this evaluation
// process requires buffering of events").
func NewOperator(prog *nfa.Program) (func(int) asp.Operator, error) {
	// Fail fast: building one machine validates the program.
	if _, err := nfa.NewMachine(prog); err != nil {
		return nil, err
	}
	return func(int) asp.Operator {
		m, _ := nfa.NewMachine(prog)
		return &cepOperator{machine: m}
	}, nil
}

type eventHeap []event.Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].TS < h[j].TS }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event.Event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peekTS() event.Time { return h[0].TS }

type cepOperator struct {
	machine   *nfa.Machine
	buffer    eventHeap
	lastState int64
	// bufLost bounds matches lost to reorder-buffer drops; lastLost is the
	// portion of the combined (machine + buffer) loss bound already flushed
	// to the collector's recall account.
	bufLost  float64
	lastLost float64
}

func (o *cepOperator) OnRecord(_ int, r asp.Record, out *asp.Collector) {
	if r.Kind != asp.KindEvent {
		return // the CEP operator consumes plain events only
	}
	heap.Push(&o.buffer, r.Event)
	out.AddState(1)
}

func (o *cepOperator) OnWatermark(wm event.Time, out *asp.Collector) {
	emit := func(m *event.Match) { out.EmitMatch(m.TsE, m) }
	for o.buffer.Len() > 0 && o.buffer.peekTS() <= wm {
		e := heap.Pop(&o.buffer).(event.Event)
		out.AddState(-1)
		o.machine.OnEvent(e, emit)
	}
	o.machine.OnWatermark(wm, emit)
	o.reportState(out)
}

func (o *cepOperator) OnClose(*asp.Collector) {}

// cepOpState is the gob snapshot DTO of a cepOperator: the reorder buffer
// plus the automaton's own serialized state.
type cepOpState struct {
	Buffer  []event.Event
	Machine []byte
}

// SnapshotState implements asp.Snapshotter.
func (o *cepOperator) SnapshotState() ([]byte, error) {
	ms, err := o.machine.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cepOpState{Buffer: o.buffer, Machine: ms}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState implements asp.Snapshotter.
func (o *cepOperator) RestoreState(data []byte) error {
	var st cepOpState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if err := o.machine.Restore(st.Machine); err != nil {
		return err
	}
	o.buffer = st.Buffer
	heap.Init(&o.buffer)
	o.lastState = o.machine.StateSize()
	return nil
}

// BufferedState implements asp.StateCounter: reorder buffer plus automaton
// state, matching the AddState accounting of OnRecord/reportState.
func (o *cepOperator) BufferedState() int64 {
	return int64(len(o.buffer)) + o.machine.StateSize()
}

// Hold implements asp.WatermarkHolder: negated matches are emitted
// retrospectively with their (past) last-constituent timestamps.
func (o *cepOperator) Hold() event.Time { return o.machine.Hold() }

func (o *cepOperator) reportState(out *asp.Collector) {
	cur := o.machine.StateSize()
	if delta := cur - o.lastState; delta != 0 {
		out.AddState(delta)
		o.lastState = cur
	}
	o.flushLost(out)
	// The live state gauge (partial matches plus reorder buffer — the
	// paper's key memory signal for the monolithic NFA operator, §5.2.1,
	// Fig. 5) is published by the engine from StateStats after every
	// watermark, uniformly with the ASP window operators.
}

// StateStats implements asp.StateAccountant: the reorder buffer plus the
// automaton's units, with bytes approximated from the total constituent
// events held.
func (o *cepOperator) StateStats() asp.StateStats {
	return asp.StateStats{
		Records: int64(len(o.buffer)) + o.machine.StateSize(),
		Bytes: (int64(len(o.buffer)) + o.machine.StateElems()) *
			int64(unsafe.Sizeof(event.Event{})),
	}
}

// SetStateBudget implements asp.SelfShedder: skip-till-any-match state can
// multiply within a single OnEvent call, so the automaton caps itself at
// insertion time. The cap tracks the reorder buffer dynamically — buffer
// plus machine together never exceed max.
func (o *cepOperator) SetStateBudget(max, low int64, onShed func(int64)) {
	o.machine.SetBudget(
		func() int64 { return max - int64(len(o.buffer)) },
		func() int64 { return low - int64(len(o.buffer)) },
		onShed,
	)
}

// ShedOldest implements asp.Shedder for the engine's post-call checks:
// the automaton's oldest partials and pending matches go first, then —
// only for programs without negations — the oldest events still parked in
// the reorder buffer. Buffered events of a negated program are never shed:
// a dropped blocker would fabricate matches, violating the subset
// property.
func (o *cepOperator) ShedOldest(target int64, out *asp.Collector) int64 {
	return o.shed(target, out, o.machine.ShedTo)
}

// ShedLowestValue implements asp.ValueShedder: the automaton evicts in
// completion-score order (hopeless partials first, near-complete ones
// last); the reorder-buffer fallback stays oldest-first — buffered events
// have not touched the automaton yet, so age is the only signal.
func (o *cepOperator) ShedLowestValue(target int64, out *asp.Collector) int64 {
	return o.shed(target, out, o.machine.ShedLowestValue)
}

// SetShedStrategy implements asp.ShedStrategySetter, switching the
// automaton's victim selection at runtime.
func (o *cepOperator) SetShedStrategy(patternAware bool) {
	o.machine.SetPatternAware(patternAware)
}

func (o *cepOperator) shed(target int64, out *asp.Collector, shedMachine func(int64) int64) int64 {
	var dropped int64
	msTarget := target - int64(len(o.buffer))
	if msTarget < 0 {
		msTarget = 0
	}
	if d := shedMachine(msTarget); d > 0 {
		o.lastState -= d // keep the reportState diff consistent
		out.AddState(-d)
		dropped += d
	}
	if !o.machine.Negated() {
		for int64(len(o.buffer))+o.machine.StateSize() > target && len(o.buffer) > 0 {
			e := heap.Pop(&o.buffer).(event.Event) // min-heap by TS: pops the oldest event
			o.bufLost += o.machine.LostEventBound(e)
			out.AddState(-1)
			dropped++
		}
	}
	o.flushLost(out)
	return dropped
}

// flushLost forwards the growth of the combined loss bound (automaton
// evictions plus reorder-buffer drops) to the collector's recall account.
func (o *cepOperator) flushLost(out *asp.Collector) {
	total := o.machine.LostMatchBound() + o.bufLost
	if d := total - o.lastLost; d > 0 {
		out.AddLostMatches(d)
		o.lastLost = total
	}
}
