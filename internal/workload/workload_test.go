package workload

import (
	"math"
	"testing"
	"testing/quick"

	"cep2asp/internal/event"
)

func TestQnVShape(t *testing.T) {
	cfg := QnVConfig{Sensors: 7, Minutes: 13, Seed: 3}
	q, v := QnV(cfg)
	if len(q) != 7*13 || len(v) != 7*13 {
		t.Fatalf("sizes %d/%d, want %d", len(q), len(v), 7*13)
	}
	if cfg.Events() != len(q)+len(v) {
		t.Fatalf("Events() = %d, want %d", cfg.Events(), len(q)+len(v))
	}
	// One tuple per sensor per minute, correct types, values in [0,100).
	perMinute := map[event.Time]int{}
	for _, e := range q {
		if e.Type != TypeQuantity {
			t.Fatal("wrong type in quantity stream")
		}
		if e.Value < 0 || e.Value >= 100 {
			t.Fatalf("value %g out of [0,100)", e.Value)
		}
		perMinute[e.TS]++
	}
	for ts, n := range perMinute {
		if n != 7 {
			t.Fatalf("minute %d has %d tuples, want 7", ts, n)
		}
	}
}

func TestQnVDeterministicAcrossTypes(t *testing.T) {
	q1, v1 := QnV(QnVConfig{Sensors: 4, Minutes: 20, Seed: 9})
	q2, v2 := QnV(QnVConfig{Sensors: 4, Minutes: 20, Seed: 9})
	for i := range q1 {
		if q1[i] != q2[i] || v1[i] != v2[i] {
			t.Fatal("QnV not deterministic for fixed seed")
		}
	}
	q3, _ := QnV(QnVConfig{Sensors: 4, Minutes: 20, Seed: 10})
	same := true
	for i := range q1 {
		if q1[i].Value != q3[i].Value {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical values")
	}
}

func TestQnVUniformValues(t *testing.T) {
	q, _ := QnV(QnVConfig{Sensors: 50, Minutes: 100, Seed: 5})
	var sum float64
	for _, e := range q {
		sum += e.Value
	}
	mean := sum / float64(len(q))
	if math.Abs(mean-50) > 2 {
		t.Fatalf("mean value %g, want ~50 (uniform [0,100))", mean)
	}
	// A threshold passes the expected fraction.
	var pass int
	for _, e := range q {
		if e.Value < 10 {
			pass++
		}
	}
	frac := float64(pass) / float64(len(q))
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("threshold fraction %g, want ~0.1", frac)
	}
}

func TestAirQualityInterArrival(t *testing.T) {
	pm10, pm25, temp, hum := AirQuality(AQConfig{Sensors: 10, Minutes: 300, Seed: 2})
	for name, s := range map[string][]event.Event{"pm10": pm10, "pm25": pm25, "temp": temp, "hum": hum} {
		if len(s) == 0 {
			t.Fatalf("%s stream empty", name)
		}
		for i := 1; i < len(s); i++ {
			if s[i-1].TS > s[i].TS {
				t.Fatalf("%s stream not time-ordered", name)
			}
		}
		per := map[int64][]event.Time{}
		for _, e := range s {
			per[e.ID] = append(per[e.ID], e.TS)
		}
		if len(per) != 10 {
			t.Fatalf("%s has %d sensors, want 10", name, len(per))
		}
		for id, tss := range per {
			for i := 1; i < len(tss); i++ {
				gap := tss[i] - tss[i-1]
				if gap < 3*event.Minute || gap > 5*event.Minute {
					t.Fatalf("%s sensor %d gap %d outside [3,5] minutes", name, id, gap)
				}
			}
		}
	}
}

func TestAirQualityRateLowerThanQnV(t *testing.T) {
	// AQ sensors report every 3-5 minutes vs QnV's every minute — the
	// frequency difference O1 exploits (§4.3.1).
	q, _ := QnV(QnVConfig{Sensors: 10, Minutes: 300, Seed: 2})
	pm10, _, _, _ := AirQuality(AQConfig{Sensors: 10, Minutes: 300, Seed: 2})
	if len(pm10)*3 > len(q) {
		t.Fatalf("AQ rate too high: %d vs QnV %d", len(pm10), len(q))
	}
}

func TestSlice(t *testing.T) {
	q, _ := QnV(QnVConfig{Sensors: 2, Minutes: 10, Seed: 1})
	if got := Slice(q, 5); len(got) != 5 {
		t.Fatalf("Slice(5) = %d", len(got))
	}
	if got := Slice(q, 1000); len(got) != len(q) {
		t.Fatalf("Slice beyond length should return all")
	}
}

func TestDescribe(t *testing.T) {
	q, _ := QnV(QnVConfig{Sensors: 3, Minutes: 10, Seed: 1})
	st := Describe(q)
	if st.Events != 30 || st.Sensors != 3 {
		t.Fatalf("Describe = %+v", st)
	}
	if st.MeanRate != 3 { // 3 sensors emit per minute
		t.Fatalf("MeanRate = %g, want 3", st.MeanRate)
	}
	if empty := Describe(nil); empty.Events != 0 {
		t.Fatalf("Describe(nil) = %+v", empty)
	}
}

// Property: per-sensor timestamps are strictly increasing in every stream
// (the discrete, increasing producer clock of §2).
func TestPerSensorMonotonicProperty(t *testing.T) {
	f := func(seed int64, sensors, minutes uint8) bool {
		s := int(sensors%20) + 1
		m := int(minutes%50) + 2
		q, v := QnV(QnVConfig{Sensors: s, Minutes: m, Seed: seed})
		for _, stream := range [][]event.Event{q, v} {
			last := map[int64]event.Time{}
			for _, e := range stream {
				if prev, ok := last[e.ID]; ok && e.TS <= prev {
					return false
				}
				last[e.ID] = e.TS
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
