// Package workload synthesizes the paper's two evaluation data sources
// (§5.1.3). The original QnV traffic data is no longer publicly available
// (paper footnote 3), and the AirQuality archive is impractical to pin, so
// both are replaced by seeded synthetic generators that preserve every
// property the evaluation exploits:
//
//   - the common schema (id, lat, lon, ts, value) with one child type per
//     measurement;
//   - per-sensor inter-arrival times — one minute for QnV quantity and
//     velocity, three to five minutes for the SDS011/DHT22 air-quality
//     sensors;
//   - controllable key counts (sensors) and data volume;
//   - value distributions that make filter selectivities controllable:
//     values are uniform in [0, 100), so a threshold t yields selectivity
//     t/100 exactly in expectation.
//
// All generators are deterministic given their seed.
package workload

import (
	"math/rand"
	"sort"

	"cep2asp/internal/event"
)

// Registered event types of the two data sources.
var (
	TypeQuantity = event.RegisterType("QnVQuantity")
	TypeVelocity = event.RegisterType("QnVVelocity")
	TypePM10     = event.RegisterType("PM10")
	TypePM25     = event.RegisterType("PM25")
	TypeTemp     = event.RegisterType("Temp")
	TypeHum      = event.RegisterType("Hum")
)

// QnVConfig shapes the synthetic traffic-sensor streams: Sensors road
// segments, each emitting one Quantity and one Velocity tuple per minute
// for Minutes minutes.
type QnVConfig struct {
	Sensors int
	Minutes int
	Seed    int64
}

// Events returns the total tuple count the configuration produces across
// both streams.
func (c QnVConfig) Events() int { return 2 * c.Sensors * c.Minutes }

// QnV generates the quantity and velocity streams, each time-ordered.
func QnV(cfg QnVConfig) (quantity, velocity []event.Event) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	quantity = make([]event.Event, 0, cfg.Sensors*cfg.Minutes)
	velocity = make([]event.Event, 0, cfg.Sensors*cfg.Minutes)
	for m := 0; m < cfg.Minutes; m++ {
		ts := int64(m) * event.Minute
		for s := 0; s < cfg.Sensors; s++ {
			id := int64(s + 1)
			lat, lon := sensorCoords(id)
			quantity = append(quantity, event.Event{
				Type: TypeQuantity, ID: id, Lat: lat, Lon: lon,
				TS: ts, Value: rng.Float64() * 100,
			})
			velocity = append(velocity, event.Event{
				Type: TypeVelocity, ID: id, Lat: lat, Lon: lon,
				TS: ts, Value: rng.Float64() * 100,
			})
		}
	}
	return quantity, velocity
}

// AQConfig shapes the synthetic air-quality streams: Sensors stations, each
// emitting PM10, PM2.5, Temp and Hum tuples with a random 3-5 minute
// inter-arrival per station, over Minutes minutes.
type AQConfig struct {
	Sensors int
	Minutes int
	Seed    int64
}

// AirQuality generates the four air-quality streams, each time-ordered.
func AirQuality(cfg AQConfig) (pm10, pm25, temp, hum []event.Event) {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	gen := func(typ event.Type, offset int64) []event.Event {
		var out []event.Event
		for s := 0; s < cfg.Sensors; s++ {
			id := int64(s + 1)
			lat, lon := sensorCoords(id)
			// Each station has its own phase so stations do not emit in
			// lock step.
			for m := rng.Int63n(3); m < int64(cfg.Minutes); m += 3 + rng.Int63n(3) {
				out = append(out, event.Event{
					Type: typ, ID: id, Lat: lat, Lon: lon,
					TS: m*event.Minute + offset, Value: rng.Float64() * 100,
				})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
		return out
	}
	return gen(TypePM10, 0), gen(TypePM25, 0), gen(TypeTemp, 0), gen(TypeHum, 0)
}

// sensorCoords places sensors on a deterministic grid around Hessen,
// Germany — the QnV data's region — so coordinate attributes carry
// realistic values.
func sensorCoords(id int64) (lat, lon float64) {
	return 50.0 + float64(id%50)*0.02, 8.2 + float64(id/50%50)*0.03
}

// Disorder perturbs a time-ordered stream's arrival order: each event is
// delayed by a random number of positions corresponding to at most
// maxDelay of event time, producing the out-of-order arrivals real sensor
// feeds exhibit (network jitter, batching). Event timestamps are
// unchanged; feed the result to an out-of-order source with a lateness of
// at least maxDelay. Deterministic for a given seed.
func Disorder(events []event.Event, maxDelay event.Time, seed int64) []event.Event {
	if maxDelay <= 0 {
		return events
	}
	rng := rand.New(rand.NewSource(seed + 13))
	type keyed struct {
		arrival event.Time
		e       event.Event
	}
	ks := make([]keyed, len(events))
	for i, e := range events {
		// Arrival = event time plus a random network delay in [0,
		// maxDelay]. Sorting by arrival bounds every event's lateness: any
		// earlier-arriving event f satisfies f.TS <= f.arrival <=
		// e.arrival <= e.TS + maxDelay.
		ks[i] = keyed{arrival: e.TS + rng.Int63n(int64(maxDelay)+1), e: e}
	}
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].arrival < ks[j].arrival })
	out := make([]event.Event, len(events))
	for i, k := range ks {
		out[i] = k.e
	}
	return out
}

// MaxDisorder measures a stream's actual event-time disorder: the largest
// gap by which an event trails the maximum timestamp seen before it.
func MaxDisorder(events []event.Event) event.Time {
	var max, worst event.Time
	for i, e := range events {
		if i == 0 || e.TS > max {
			max = e.TS
			continue
		}
		if d := max - e.TS; d > worst {
			worst = d
		}
	}
	return worst
}

// Slice limits a stream to at most n events (for scaled-down benchmarks).
func Slice(events []event.Event, n int) []event.Event {
	if n >= len(events) {
		return events
	}
	return events[:n]
}

// Stats summarizes a stream for experiment reports.
type Stats struct {
	Events   int
	Sensors  int
	FromTS   event.Time
	ToTS     event.Time
	MeanRate float64 // events per minute
}

// Describe computes stream statistics.
func Describe(events []event.Event) Stats {
	if len(events) == 0 {
		return Stats{}
	}
	ids := make(map[int64]bool)
	for _, e := range events {
		ids[e.ID] = true
	}
	st := Stats{
		Events:  len(events),
		Sensors: len(ids),
		FromTS:  events[0].TS,
		ToTS:    events[len(events)-1].TS,
	}
	if mins := float64(st.ToTS-st.FromTS)/float64(event.Minute) + 1; mins > 0 {
		st.MeanRate = float64(st.Events) / mins
	}
	return st
}
