package metrics

import (
	"testing"
	"time"
)

func TestSamplerCollects(t *testing.T) {
	s := NewSampler(5 * time.Millisecond)
	calls := 0
	s.StateFn = func() int64 { calls++; return int64(calls) }
	s.Start()
	// Burn a little CPU and memory so the samples have content.
	waste := make([][]byte, 0, 64)
	deadline := time.Now().Add(60 * time.Millisecond)
	for time.Now().Before(deadline) {
		waste = append(waste, make([]byte, 1<<14))
		if len(waste) > 32 {
			waste = waste[:0]
		}
	}
	samples := s.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	for i, sm := range samples {
		if sm.HeapBytes == 0 {
			t.Fatalf("sample %d has zero heap", i)
		}
		if sm.CPUPct < 0 || sm.CPUPct > 100 {
			t.Fatalf("sample %d CPU%% out of range: %g", i, sm.CPUPct)
		}
		if i > 0 && sm.At <= samples[i-1].At {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
	if samples[len(samples)-1].State == 0 {
		t.Fatal("StateFn not polled")
	}
}

func TestSamplerSnapshotWhileRunning(t *testing.T) {
	s := NewSampler(2 * time.Millisecond)
	s.Start()
	time.Sleep(15 * time.Millisecond)
	snap := s.Samples()
	final := s.Stop()
	if len(snap) == 0 {
		t.Fatal("snapshot empty")
	}
	if len(final) < len(snap) {
		t.Fatalf("final (%d) shorter than snapshot (%d)", len(final), len(snap))
	}
}

func TestSamplerDefaultPeriod(t *testing.T) {
	s := NewSampler(0)
	if s.Period <= 0 {
		t.Fatal("default period not applied")
	}
}

func TestPeak(t *testing.T) {
	samples := []Sample{
		{HeapBytes: 10, CPUPct: 5},
		{HeapBytes: 30, CPUPct: 1},
		{HeapBytes: 20, CPUPct: 9},
	}
	heap, cpu := Peak(samples)
	if heap != 30 || cpu != 9 {
		t.Fatalf("Peak = %d, %g; want 30, 9", heap, cpu)
	}
	if h, c := Peak(nil); h != 0 || c != 0 {
		t.Fatalf("Peak(nil) = %d, %g", h, c)
	}
}
