package metrics

import (
	"testing"
	"time"
)

func TestSamplerCollects(t *testing.T) {
	s := NewSampler(5 * time.Millisecond)
	calls := 0
	s.StateFn = func() int64 { calls++; return int64(calls) }
	s.Start()
	// Burn a little CPU and memory so the samples have content.
	waste := make([][]byte, 0, 64)
	deadline := time.Now().Add(60 * time.Millisecond)
	for time.Now().Before(deadline) {
		waste = append(waste, make([]byte, 1<<14))
		if len(waste) > 32 {
			waste = waste[:0]
		}
	}
	samples := s.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	for i, sm := range samples {
		if sm.HeapBytes == 0 {
			t.Fatalf("sample %d has zero heap", i)
		}
		if sm.CPUPct < 0 || sm.CPUPct > 100 {
			t.Fatalf("sample %d CPU%% out of range: %g", i, sm.CPUPct)
		}
		if i > 0 && sm.At <= samples[i-1].At {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
	if samples[len(samples)-1].State == 0 {
		t.Fatal("StateFn not polled")
	}
}

func TestSamplerSnapshotWhileRunning(t *testing.T) {
	s := NewSampler(2 * time.Millisecond)
	s.Start()
	time.Sleep(15 * time.Millisecond)
	snap := s.Samples()
	final := s.Stop()
	if len(snap) == 0 {
		t.Fatal("snapshot empty")
	}
	if len(final) < len(snap) {
		t.Fatalf("final (%d) shorter than snapshot (%d)", len(final), len(snap))
	}
}

func TestSamplerDefaultPeriod(t *testing.T) {
	s := NewSampler(0)
	if s.Period <= 0 {
		t.Fatal("default period not applied")
	}
}

func TestSamplerPollsCheckpointCount(t *testing.T) {
	s := NewSampler(2 * time.Millisecond)
	var n int64
	s.CheckpointCountFn = func() int64 { n++; return n }
	s.Start()
	time.Sleep(15 * time.Millisecond)
	samples := s.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	last := samples[len(samples)-1]
	if last.Checkpoints == 0 {
		t.Fatal("CheckpointCountFn not polled into samples")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Checkpoints < samples[i-1].Checkpoints {
			t.Fatalf("checkpoint counts not monotone at %d", i)
		}
	}
}

func TestRecordCheckpointsRoundTrip(t *testing.T) {
	s := NewSampler(time.Millisecond)
	if got := s.Checkpoints(); len(got) != 0 {
		t.Fatalf("fresh sampler has %d checkpoint points", len(got))
	}
	points := []CheckpointPoint{
		{ID: 1, At: 10 * time.Millisecond, Duration: time.Millisecond, AlignPause: 100 * time.Microsecond, Bytes: 512},
		{ID: 2, At: 20 * time.Millisecond, Duration: 2 * time.Millisecond, AlignPause: 200 * time.Microsecond, Bytes: 768},
	}
	s.RecordCheckpoints(points)
	got := s.Checkpoints()
	if len(got) != 2 || got[0] != points[0] || got[1] != points[1] {
		t.Fatalf("Checkpoints = %+v; want %+v", got, points)
	}
	// The accessor must return a copy, not the internal slice.
	got[0].Bytes = 0
	if s.Checkpoints()[0].Bytes != 512 {
		t.Fatal("Checkpoints exposed internal storage")
	}
	// Re-recording replaces the series rather than appending.
	s.RecordCheckpoints(points[:1])
	if len(s.Checkpoints()) != 1 {
		t.Fatal("RecordCheckpoints did not replace the previous series")
	}
}

func TestPeak(t *testing.T) {
	samples := []Sample{
		{HeapBytes: 10, CPUPct: 5},
		{HeapBytes: 30, CPUPct: 1},
		{HeapBytes: 20, CPUPct: 9},
	}
	heap, cpu := Peak(samples)
	if heap != 30 || cpu != 9 {
		t.Fatalf("Peak = %d, %g; want 30, 9", heap, cpu)
	}
	if h, c := Peak(nil); h != 0 || c != 0 {
		t.Fatalf("Peak(nil) = %d, %g", h, c)
	}
}

// Regression: Stop used to close a nil (Stop-before-Start) or already
// closed (double-Stop) channel and panic; it must be idempotent.
func TestSamplerStopIdempotent(t *testing.T) {
	s := NewSampler(time.Millisecond)
	if got := s.Stop(); len(got) != 0 {
		t.Fatalf("Stop before Start returned %d samples", len(got))
	}
	s.Start()
	s.Start() // Start while running is a no-op, not a second goroutine
	time.Sleep(8 * time.Millisecond)
	first := s.Stop()
	second := s.Stop()
	if len(second) != len(first) {
		t.Fatalf("second Stop returned %d samples, first %d", len(second), len(first))
	}
	// The sampler restarts cleanly after a Stop.
	s.Start()
	time.Sleep(8 * time.Millisecond)
	if again := s.Stop(); len(again) < len(first) {
		t.Fatalf("restart collected %d samples, fewer than before (%d)", len(again), len(first))
	}
	s.Stop()
}
