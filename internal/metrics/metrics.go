// Package metrics provides the measurement instruments of the evaluation
// (§5.1.3 and §5.2.4): sustained throughput, detection latency (collected
// at the sinks by the asp package), and process-level resource sampling —
// memory and CPU usage over time, standing in for the paper's cluster
// dashboards in Figure 5.
package metrics

import (
	"runtime"
	rtm "runtime/metrics"
	"sync"
	"time"

	"cep2asp/internal/obs"
)

// Sample is one point of the resource-usage time series.
type Sample struct {
	At          time.Duration // offset from sampler start
	HeapBytes   uint64        // live heap (runtime.MemStats.HeapAlloc)
	CPUPct      float64       // process CPU utilization, 0-100 per core set
	State       int64         // engine-reported buffered elements, if wired
	Checkpoints int64         // completed checkpoints so far, if wired
	// Operators is the per-operator/per-edge observability snapshot taken
	// at the same instant, when an obs registry is wired (ObsFn) — resource
	// series and operator series share one timeline.
	Operators *obs.Snapshot
}

// CheckpointPoint is one completed checkpoint in a run's overhead series:
// when it completed (offset from run start), how long trigger-to-complete
// took, the worst per-instance alignment stall, and the serialized size.
type CheckpointPoint struct {
	ID         int64
	At         time.Duration
	Duration   time.Duration
	AlignPause time.Duration
	Bytes      int64
}

// Sampler periodically records memory and CPU usage. CPU utilization is
// derived from runtime/metrics CPU-class deltas: (total - idle) cpu-seconds
// over wall time, normalized by GOMAXPROCS.
type Sampler struct {
	Period time.Duration
	// StateFn, when set, is polled for the engine's buffered-element count.
	StateFn func() int64
	// CheckpointCountFn, when set, is polled for the number of completed
	// checkpoints, correlating state/heap swings with checkpoint activity.
	CheckpointCountFn func() int64
	// ObsFn, when set, is polled for the engine's per-operator metrics
	// snapshot (typically obs.Registry.Snapshot), aligning operator series
	// with the resource series.
	ObsFn func() obs.Snapshot

	mu          sync.Mutex
	samples     []Sample
	checkpoints []CheckpointPoint
	stop        chan struct{}
	done        chan struct{}
	stopped     bool
}

// NewSampler creates a sampler with the given period (default 250ms).
func NewSampler(period time.Duration) *Sampler {
	if period <= 0 {
		period = 250 * time.Millisecond
	}
	return &Sampler{Period: period}
}

// Start begins sampling in a background goroutine; call Stop to finish.
// Calling Start while the sampler is already running is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil && !s.stopped {
		return // already running
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.stopped = false
	go s.loop()
}

// Stop ends sampling and returns the collected series. It is idempotent:
// calling it again — or calling it before Start — returns the series
// collected so far instead of panicking on a nil or closed channel.
func (s *Sampler) Stop() []Sample {
	s.mu.Lock()
	var done chan struct{}
	if s.stop != nil && !s.stopped {
		close(s.stop)
		s.stopped = true
		done = s.done
	}
	s.mu.Unlock()
	if done != nil {
		<-done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// Samples returns a snapshot of the series collected so far.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

var cpuMetricNames = []string{
	"/cpu/classes/total:cpu-seconds",
	"/cpu/classes/idle:cpu-seconds",
}

func readCPU() (total, idle float64, ok bool) {
	samples := make([]rtm.Sample, len(cpuMetricNames))
	for i, n := range cpuMetricNames {
		samples[i].Name = n
	}
	rtm.Read(samples)
	if samples[0].Value.Kind() != rtm.KindFloat64 || samples[1].Value.Kind() != rtm.KindFloat64 {
		return 0, 0, false
	}
	return samples[0].Value.Float64(), samples[1].Value.Float64(), true
}

func (s *Sampler) loop() {
	defer close(s.done)
	start := time.Now()
	lastWall := start
	lastTotal, lastIdle, cpuOK := readCPU()
	ticker := time.NewTicker(s.Period)
	defer ticker.Stop()
	var ms runtime.MemStats
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			runtime.ReadMemStats(&ms)
			sample := Sample{At: now.Sub(start), HeapBytes: ms.HeapAlloc}
			if cpuOK {
				total, idle, ok := readCPU()
				wall := now.Sub(lastWall).Seconds()
				if ok && wall > 0 {
					busy := (total - lastTotal) - (idle - lastIdle)
					procs := float64(runtime.GOMAXPROCS(0))
					pct := busy / (wall * procs) * 100
					if pct < 0 {
						pct = 0
					}
					if pct > 100 {
						pct = 100
					}
					sample.CPUPct = pct
					lastTotal, lastIdle = total, idle
				}
				lastWall = now
			}
			if s.StateFn != nil {
				sample.State = s.StateFn()
			}
			if s.CheckpointCountFn != nil {
				sample.Checkpoints = s.CheckpointCountFn()
			}
			if s.ObsFn != nil {
				snap := s.ObsFn()
				sample.Operators = &snap
			}
			s.mu.Lock()
			s.samples = append(s.samples, sample)
			s.mu.Unlock()
		}
	}
}

// RecordCheckpoints stores the run's per-checkpoint overhead series,
// typically converted from the coordinator's stats after the run finishes.
func (s *Sampler) RecordCheckpoints(points []CheckpointPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkpoints = append(s.checkpoints[:0], points...)
}

// Checkpoints returns the recorded per-checkpoint overhead series.
func (s *Sampler) Checkpoints() []CheckpointPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CheckpointPoint, len(s.checkpoints))
	copy(out, s.checkpoints)
	return out
}

// Peak returns the maximum heap and CPU observed in a series.
func Peak(samples []Sample) (heap uint64, cpu float64) {
	for _, s := range samples {
		if s.HeapBytes > heap {
			heap = s.HeapBytes
		}
		if s.CPUPct > cpu {
			cpu = s.CPUPct
		}
	}
	return heap, cpu
}
