// Package csvio reads and writes event streams as CSV files — the exchange
// format the paper's evaluation uses ("we extract a fixed time frame of the
// data as CSV files and employ a simple source operator for reading",
// §5.1.2). The column layout mirrors the common schema: one row per tuple,
//
//	type,id,lat,lon,ts,value
//
// with ts in milliseconds and type as the registered event type name.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"cep2asp/internal/event"
)

// Header is the canonical column list.
var Header = []string{"type", "id", "lat", "lon", "ts", "value"}

// Write streams events to w as CSV with a header row.
func Write(w io.Writer, events []event.Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header); err != nil {
		return fmt.Errorf("csvio: writing header: %w", err)
	}
	row := make([]string, 6)
	for i, e := range events {
		row[0] = event.TypeName(e.Type)
		row[1] = strconv.FormatInt(e.ID, 10)
		row[2] = strconv.FormatFloat(e.Lat, 'g', -1, 64)
		row[3] = strconv.FormatFloat(e.Lon, 'g', -1, 64)
		row[4] = strconv.FormatInt(e.TS, 10)
		row[5] = strconv.FormatFloat(e.Value, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile writes events to a CSV file, creating or truncating it.
func WriteFile(path string, events []event.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	defer f.Close()
	if err := Write(f, events); err != nil {
		return err
	}
	return f.Close()
}

// Read parses a CSV event stream. Event type names are registered on first
// use; a header row matching Header is skipped if present. Rows must carry
// exactly six columns.
func Read(r io.Reader) ([]event.Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	var out []event.Event
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		line++
		if line == 1 && isHeader(row) {
			continue
		}
		e, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		out = append(out, e)
	}
}

// ReadFile reads a CSV event stream from a file.
func ReadFile(path string) ([]event.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// ReadGrouped reads a CSV stream and splits it by event type, preserving
// per-type order — the shape core.BuildConfig.Data expects.
func ReadGrouped(r io.Reader) (map[event.Type][]event.Event, error) {
	events, err := Read(r)
	if err != nil {
		return nil, err
	}
	out := make(map[event.Type][]event.Event)
	for _, e := range events {
		out[e.Type] = append(out[e.Type], e)
	}
	return out, nil
}

func isHeader(row []string) bool {
	for i, h := range Header {
		if row[i] != h {
			return false
		}
	}
	return true
}

func parseRow(row []string) (event.Event, error) {
	var e event.Event
	e.Type = event.RegisterType(row[0])
	var err error
	if e.ID, err = strconv.ParseInt(row[1], 10, 64); err != nil {
		return e, fmt.Errorf("id %q: %w", row[1], err)
	}
	if e.Lat, err = strconv.ParseFloat(row[2], 64); err != nil {
		return e, fmt.Errorf("lat %q: %w", row[2], err)
	}
	if e.Lon, err = strconv.ParseFloat(row[3], 64); err != nil {
		return e, fmt.Errorf("lon %q: %w", row[3], err)
	}
	if e.TS, err = strconv.ParseInt(row[4], 10, 64); err != nil {
		return e, fmt.Errorf("ts %q: %w", row[4], err)
	}
	if e.Value, err = strconv.ParseFloat(row[5], 64); err != nil {
		return e, fmt.Errorf("value %q: %w", row[5], err)
	}
	return e, nil
}
