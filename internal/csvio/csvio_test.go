package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"cep2asp/internal/event"
	"cep2asp/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	q, _ := workload.QnV(workload.QnVConfig{Sensors: 4, Minutes: 10, Seed: 3})
	var buf bytes.Buffer
	if err := Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(q) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(q))
	}
	for i := range q {
		// Ingest/AuxTS are engine-internal and not serialized.
		want := q[i]
		want.Ingest, want.AuxTS = 0, 0
		if got[i] != want {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.csv")
	_, v := workload.QnV(workload.QnVConfig{Sensors: 2, Minutes: 5, Seed: 1})
	if err := WriteFile(path, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v) {
		t.Fatalf("file round trip: %d events, want %d", len(got), len(v))
	}
}

func TestReadWithoutHeader(t *testing.T) {
	in := "CsvT,7,50.1,8.2,60000,42.5\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 || got[0].TS != 60000 || got[0].Value != 42.5 {
		t.Fatalf("parsed %+v", got)
	}
	if event.TypeName(got[0].Type) != "CsvT" {
		t.Fatal("type name not registered")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"CsvT,notanint,1,2,3,4\n",
		"CsvT,1,x,2,3,4\n",
		"CsvT,1,2,x,3,4\n",
		"CsvT,1,2,3,x,4\n",
		"CsvT,1,2,3,4,x\n",
		"CsvT,1,2,3\n", // wrong arity
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestReadGrouped(t *testing.T) {
	q, v := workload.QnV(workload.QnVConfig{Sensors: 2, Minutes: 5, Seed: 1})
	all := append(append([]event.Event{}, q...), v...)
	var buf bytes.Buffer
	if err := Write(&buf, all); err != nil {
		t.Fatal(err)
	}
	grouped, err := ReadGrouped(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != 2 {
		t.Fatalf("groups = %d, want 2", len(grouped))
	}
	if len(grouped[workload.TypeQuantity]) != len(q) {
		t.Fatalf("quantity group = %d, want %d", len(grouped[workload.TypeQuantity]), len(q))
	}
	// Per-type order preserved.
	for i := 1; i < len(grouped[workload.TypeVelocity]); i++ {
		if grouped[workload.TypeVelocity][i-1].TS > grouped[workload.TypeVelocity][i].TS {
			t.Fatal("grouped stream lost its order")
		}
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream read back %d events", len(got))
	}
}

// Property: any event with finite attributes survives a round trip.
func TestRoundTripProperty(t *testing.T) {
	typ := event.RegisterType("CsvProp")
	f := func(id int64, lat, lon float64, ts int64, value float64) bool {
		e := event.Event{Type: typ, ID: id, Lat: lat, Lon: lon, TS: ts, Value: value}
		var buf bytes.Buffer
		if err := Write(&buf, []event.Event{e}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0] == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
