package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// unset marks a watermark or event-time gauge that has not been written yet
// (mirrors event.MinWatermark without importing the event package).
const unset = math.MinInt64

// Registry collects the instruments of one running dataflow: one
// OperatorMetrics per operator instance, one EdgeMetrics per graph edge,
// plus named histograms (e.g. the sink's detection latency). The engine
// attaches a registry through asp.Config.Metrics; a nil registry disables
// all instrumentation.
//
// Registration happens once, before the dataflow starts; the write-path
// methods on the returned handles are lock-free. Snapshot may be called
// concurrently with a running dataflow (the live HTTP endpoints do).
type Registry struct {
	mu    sync.RWMutex
	ops   []*OperatorMetrics
	edges []*EdgeMetrics
	pools []*PoolMetrics
	hists []*namedHist
	// nets instruments network exchange peers. Like the health counters
	// they survive ResetGraph: connections outlive individual execution
	// attempts (the supervisor rebuilds the graph, not the mesh).
	nets []*NetMetrics

	// maxEventTime is the largest event timestamp emitted by any source,
	// the reference point for per-operator watermark lag.
	maxEventTime atomic.Int64

	// Job-level supervision health. These survive ResetGraph: they describe
	// the job across execution attempts, not one graph instance.
	restarts, failures, deadLetters atomic.Int64
	// deadLettersDropped counts dead letters evicted from a capped DLQ
	// (drop-oldest): quarantine history lost to the queue bound.
	deadLettersDropped atomic.Int64
	// Network fault tolerance counters: transient data-link reconnects
	// (heals that needed no restart), heartbeat liveness expiries (fatal
	// detections), partitions healed by a first post-blackhole delivery,
	// and the latency of the last failure detection.
	reconnects, heartbeatTimeouts, partitionsHealed atomic.Int64
	lastDetectNs                                    atomic.Int64
	lastMu                                          sync.Mutex
	lastFailure                                     string

	// clusterFn, when set, provides per-worker cluster status for the
	// /cluster/* endpoints. The distributed coordinator installs it; it
	// survives ResetGraph and job completion so post-run scrapes still see
	// the last run's cluster.
	clusterMu sync.Mutex
	clusterFn func() []WorkerStatus

	// overloadFn, when set, pulls the executing environment's job-level
	// overload counters (shed totals, peak state, recall estimate) at
	// snapshot time. The engine installs it per execution; ResetGraph
	// clears it so a long-lived registry never reports a finished run's
	// counters as live.
	overloadMu sync.Mutex
	overloadFn func() OverloadStats
}

// OverloadStats is the job-level bounded-state degradation summary pulled
// from the executing environment at snapshot time. Armed distinguishes a
// run with overload configured (all counters meaningful, even when zero)
// from an ordinary run.
type OverloadStats struct {
	Armed bool `json:"armed"`
	// ShedRecords totals accounting units evicted under the Shed policy;
	// PeakState is the largest job-wide buffered element count observed.
	ShedRecords int64 `json:"shed_records"`
	PeakState   int64 `json:"peak_state"`
	// Matches counts matches delivered to terminal nodes; LostBound is
	// the accumulated upper bound on matches evicted state could still
	// have produced; RecallEstimate is the guaranteed lower bound on
	// achieved recall the two imply.
	Matches        int64   `json:"matches"`
	LostBound      float64 `json:"lost_match_bound"`
	RecallEstimate float64 `json:"recall_estimate"`
}

type namedHist struct {
	name string
	h    *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.maxEventTime.Store(unset)
	return r
}

// ResetGraph drops all operator and edge instruments and the max-event-time
// gauge, keeping named histograms. The engine calls it when a new execution
// attaches, so a long-lived registry (live HTTP endpoint across benchmark
// runs) always describes the currently executing graph.
func (r *Registry) ResetGraph() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ops = nil
	r.edges = nil
	r.pools = nil
	r.maxEventTime.Store(unset)
	r.mu.Unlock()
	r.overloadMu.Lock()
	r.overloadFn = nil
	r.overloadMu.Unlock()
}

// SetOverloadSource installs the pull function for job-level overload
// counters; the engine calls it when an execution attaches. Nil-safe.
func (r *Registry) SetOverloadSource(fn func() OverloadStats) {
	if r == nil {
		return
	}
	r.overloadMu.Lock()
	r.overloadFn = fn
	r.overloadMu.Unlock()
}

// Operator registers and returns the instrument handle for one operator
// instance.
func (r *Registry) Operator(node string, instance int) *OperatorMetrics {
	if r == nil {
		return nil
	}
	m := &OperatorMetrics{Node: node, Instance: instance, reg: r}
	m.Watermark.Store(unset)
	r.mu.Lock()
	r.ops = append(r.ops, m)
	r.mu.Unlock()
	return m
}

// Edge registers and returns the instrument handle for one graph edge.
// capacity is the edge's total buffering (channel capacity x receiver
// instances); queueLen, when non-nil, is polled at snapshot time for the
// current queue depth.
func (r *Registry) Edge(from, to string, capacity int, queueLen func() int) *EdgeMetrics {
	if r == nil {
		return nil
	}
	e := &EdgeMetrics{From: from, To: to, Capacity: capacity, queueLen: queueLen}
	r.mu.Lock()
	r.edges = append(r.edges, e)
	r.mu.Unlock()
	return e
}

// Net registers (or finds — registration is idempotent per peer) the
// instrument handle for one network exchange peer: frame and byte counters
// for traffic to and from that peer. Net handles survive ResetGraph.
func (r *Registry) Net(peer string) *NetMetrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nets {
		if n.Peer == peer {
			return n
		}
	}
	n := &NetMetrics{Peer: peer}
	r.nets = append(r.nets, n)
	return n
}

// Pool registers and returns the instrument handle for one buffer pool:
// Hits counts buffers served from the pool, Misses fresh allocations.
func (r *Registry) Pool(name string) *PoolMetrics {
	if r == nil {
		return nil
	}
	p := &PoolMetrics{Name: name}
	r.mu.Lock()
	r.pools = append(r.pools, p)
	r.mu.Unlock()
	return p
}

// RegisterHistogram exposes a named histogram (nanosecond samples) through
// the registry's snapshot and export surfaces, replacing any previous
// histogram of the same name. Named histograms survive ResetGraph.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, nh := range r.hists {
		if nh.name == name {
			nh.h = h
			return
		}
	}
	r.hists = append(r.hists, &namedHist{name: name, h: h})
}

// ObserveEventTime advances the registry-wide maximum source event time.
func (r *Registry) ObserveEventTime(ts int64) {
	if r == nil {
		return
	}
	for {
		cur := r.maxEventTime.Load()
		if ts <= cur || r.maxEventTime.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// MaxEventTime returns the largest source event time observed, or math.MinInt64
// when no source reported yet.
func (r *Registry) MaxEventTime() int64 {
	if r == nil {
		return unset
	}
	return r.maxEventTime.Load()
}

// RecordFailure counts one job failure and retains its description as the
// last-failure message (nil-safe).
func (r *Registry) RecordFailure(desc string) {
	if r == nil {
		return
	}
	r.failures.Add(1)
	r.lastMu.Lock()
	r.lastFailure = desc
	r.lastMu.Unlock()
}

// RecordRestart counts one supervised restart (nil-safe).
func (r *Registry) RecordRestart() {
	if r == nil {
		return
	}
	r.restarts.Add(1)
}

// RecordDeadLetter counts one record routed to the dead-letter queue
// (nil-safe).
func (r *Registry) RecordDeadLetter() {
	if r == nil {
		return
	}
	r.deadLetters.Add(1)
}

// RecordDeadLetterDropped counts one dead letter evicted from a capped
// DLQ under drop-oldest (nil-safe).
func (r *Registry) RecordDeadLetterDropped() {
	if r == nil {
		return
	}
	r.deadLettersDropped.Add(1)
}

// RecordReconnect counts one transparent data-link reconnect: a transient
// network fault healed in place, with no job restart (nil-safe).
func (r *Registry) RecordReconnect() {
	if r == nil {
		return
	}
	r.reconnects.Add(1)
}

// RecordHeartbeatTimeout counts one liveness-deadline expiry and retains
// the detection latency — how long the peer had been silent when the
// failure detector fired (nil-safe).
func (r *Registry) RecordHeartbeatTimeout(latencyNs int64) {
	if r == nil {
		return
	}
	r.heartbeatTimeouts.Add(1)
	r.lastDetectNs.Store(latencyNs)
}

// RecordPartitionHealed counts one network partition that healed: the
// first successful delivery after a blackhole window (nil-safe).
func (r *Registry) RecordPartitionHealed() {
	if r == nil {
		return
	}
	r.partitionsHealed.Add(1)
}

// Health returns the job-level supervision counters.
func (r *Registry) Health() HealthSnapshot {
	if r == nil {
		return HealthSnapshot{}
	}
	r.lastMu.Lock()
	last := r.lastFailure
	r.lastMu.Unlock()
	return HealthSnapshot{
		Restarts:           r.restarts.Load(),
		Failures:           r.failures.Load(),
		DeadLetters:        r.deadLetters.Load(),
		DeadLettersDropped: r.deadLettersDropped.Load(),
		Reconnects:         r.reconnects.Load(),
		HeartbeatTimeouts:  r.heartbeatTimeouts.Load(),
		PartitionsHealed:   r.partitionsHealed.Load(),
		DetectLatencyMs:    r.lastDetectNs.Load() / 1e6,
		LastFailure:        last,
	}
}

// OperatorMetrics instruments one operator instance. The engine updates the
// exported atomics directly from the instance's goroutine; other fields are
// written through the helper methods. All writes are lock-free.
type OperatorMetrics struct {
	Node     string
	Instance int

	// In / Out count data records (events and composites) entering and
	// leaving the instance; Late counts data records arriving with an event
	// time at or below the instance's current watermark — candidates for
	// dropping by window operators downstream of the merge.
	In, Out, Late atomic.Int64
	// Proc is the per-record processing-time histogram (nanoseconds spent
	// inside OnRecord).
	Proc Histogram
	// Watermark is the instance's current output watermark (event-time ms).
	Watermark atomic.Int64
	// Partials gauges retained state in accounting units: partial matches
	// for the NFA operator — the paper's key memory signal (§5.2.1) —
	// buffered records for joins and window buffers, groups for
	// aggregations. The engine publishes it from each operator's
	// StateAccountant after every watermark.
	Partials atomic.Int64
	// StateBytes gauges the approximate byte footprint of the retained
	// state (element counts x element size, maintained incrementally).
	StateBytes atomic.Int64
	// Shed counts accounting units this instance evicted under the Shed
	// overload policy — quantified, never-silent degradation.
	Shed atomic.Int64

	reg *Registry
}

// ObserveEventTime forwards a source-emitted event time to the registry's
// max-event-time gauge (sources call this; nil-safe).
func (m *OperatorMetrics) ObserveEventTime(ts int64) {
	if m != nil {
		m.reg.ObserveEventTime(ts)
	}
}

// EdgeMetrics instruments one graph edge (all parallel senders and
// receivers combined).
type EdgeMetrics struct {
	From, To string
	// Capacity is the edge's total buffering across receiver instances.
	Capacity int
	// Sent counts records pushed into the edge (data, watermarks, barriers).
	Sent atomic.Int64
	// BlockedNanos accumulates time senders spent blocked on a full channel
	// — the engine's backpressure signal for this edge.
	BlockedNanos atomic.Int64
	// Batch records the size of each channel transfer in records. With edge
	// batching enabled one transfer carries up to Config.BatchSize records;
	// the distribution shows how full batches actually run (idle flushes and
	// barrier/EOS flushes truncate them).
	Batch Histogram

	queueLen func() int
}

// NetMetrics instruments the data-plane traffic exchanged with one network
// peer of a distributed execution (nil-safe field access via the atomics).
type NetMetrics struct {
	// Peer names the remote end, e.g. "w1" or its data address.
	Peer string
	// FramesOut/BytesOut count frames written to the peer; FramesIn/BytesIn
	// count frames received from it. Bytes include frame headers.
	FramesOut, BytesOut, FramesIn, BytesIn atomic.Int64
	// Reconnects counts mid-run re-dials of the outbound link to this peer
	// after a write failure — transient faults healed without a restart.
	Reconnects atomic.Int64
}

// SentFrame counts one written frame of n bytes (nil-safe).
func (n *NetMetrics) SentFrame(bytes int) {
	if n != nil {
		n.FramesOut.Add(1)
		n.BytesOut.Add(int64(bytes))
	}
}

// RecvFrame counts one received frame of n bytes (nil-safe).
func (n *NetMetrics) RecvFrame(bytes int) {
	if n != nil {
		n.FramesIn.Add(1)
		n.BytesIn.Add(int64(bytes))
	}
}

// Reconnect counts one mid-run re-dial of the link to this peer (nil-safe).
func (n *NetMetrics) Reconnect() {
	if n != nil {
		n.Reconnects.Add(1)
	}
}

// PoolMetrics instruments one engine buffer pool (nil-safe methods).
type PoolMetrics struct {
	Name string
	// Hits counts buffers recycled from the pool; Misses counts fresh
	// allocations because the pool was empty (or the GC emptied it).
	Hits, Misses atomic.Int64
}

// Hit counts one recycled buffer (nil-safe).
func (p *PoolMetrics) Hit() {
	if p != nil {
		p.Hits.Add(1)
	}
}

// Miss counts one fresh allocation (nil-safe).
func (p *PoolMetrics) Miss() {
	if p != nil {
		p.Misses.Add(1)
	}
}

// Queued returns the edge's current queue depth (sum over receiver
// instance channels), or 0 when not wired.
func (e *EdgeMetrics) Queued() int {
	if e == nil || e.queueLen == nil {
		return 0
	}
	return e.queueLen()
}

// OperatorSnapshot is one operator instance's metrics at a point in time.
type OperatorSnapshot struct {
	Node     string `json:"node"`
	Instance int    `json:"instance"`
	In       int64  `json:"in"`
	Out      int64  `json:"out"`
	Late     int64  `json:"late"`
	// Watermark is the instance's current watermark (event-time ms);
	// WatermarkValid is false before the first watermark.
	Watermark      int64 `json:"watermark"`
	WatermarkValid bool  `json:"watermark_valid"`
	// WatermarkLagMs is max source event time minus the watermark, clamped
	// to >= 0; 0 when either side is unset.
	WatermarkLagMs int64 `json:"watermark_lag_ms"`
	Partials       int64 `json:"partials"`
	StateBytes     int64 `json:"state_bytes"`
	Shed           int64 `json:"shed"`
	// Per-record processing time, nanoseconds.
	ProcCount int64 `json:"proc_count"`
	ProcSum   int64 `json:"proc_sum_ns"`
	ProcP50   int64 `json:"proc_p50_ns"`
	ProcP90   int64 `json:"proc_p90_ns"`
	ProcP99   int64 `json:"proc_p99_ns"`
	ProcMax   int64 `json:"proc_max_ns"`
}

// EdgeSnapshot is one edge's metrics at a point in time.
type EdgeSnapshot struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	Capacity     int     `json:"capacity"`
	Queued       int     `json:"queued"`
	FillPct      float64 `json:"fill_pct"`
	Sent         int64   `json:"sent"`
	BlockedNanos int64   `json:"blocked_ns"`
	// Batch transfer statistics: number of channel transfers and the
	// distribution of records per transfer.
	Batches   int64 `json:"batches"`
	BatchP50  int64 `json:"batch_p50"`
	BatchP99  int64 `json:"batch_p99"`
	BatchMax  int64 `json:"batch_max"`
	BatchMean int64 `json:"batch_mean"`
}

// PoolSnapshot is one buffer pool's counters at a point in time.
type PoolSnapshot struct {
	Name   string `json:"name"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
}

// NetSnapshot is one network peer's traffic counters at a point in time.
type NetSnapshot struct {
	Peer       string `json:"peer"`
	FramesOut  int64  `json:"frames_out"`
	BytesOut   int64  `json:"bytes_out"`
	FramesIn   int64  `json:"frames_in"`
	BytesIn    int64  `json:"bytes_in"`
	Reconnects int64  `json:"reconnects,omitempty"`
}

// HistogramSnapshot is one named histogram's summary at a point in time.
// State carries the full bucket contents — omitted from JSON surfaces but
// shipped by the gob-encoded federation push, so the coordinator can Merge
// worker histograms exactly instead of folding lossy quantiles.
type HistogramSnapshot struct {
	Name  string         `json:"name"`
	Count int64          `json:"count"`
	Sum   int64          `json:"sum_ns"`
	Mean  int64          `json:"mean_ns"`
	P50   int64          `json:"p50_ns"`
	P90   int64          `json:"p90_ns"`
	P99   int64          `json:"p99_ns"`
	Max   int64          `json:"max_ns"`
	State HistogramState `json:"-"`
}

// HealthSnapshot is the job-level supervision state at a point in time:
// how often the job failed and was restarted, how many records were
// dead-lettered, and the last failure's description.
type HealthSnapshot struct {
	Restarts    int64 `json:"restarts"`
	Failures    int64 `json:"failures"`
	DeadLetters int64 `json:"dead_letters"`
	// DeadLettersDropped counts dead letters evicted from a capped DLQ
	// (drop-oldest).
	DeadLettersDropped int64 `json:"dead_letters_dropped"`
	// Network fault tolerance: transparent data-link reconnects, heartbeat
	// liveness expiries, healed partition windows, and the silence duration
	// at which the last liveness expiry fired (the detection latency).
	Reconnects        int64  `json:"reconnects,omitempty"`
	HeartbeatTimeouts int64  `json:"heartbeat_timeouts,omitempty"`
	PartitionsHealed  int64  `json:"partitions_healed,omitempty"`
	DetectLatencyMs   int64  `json:"detect_latency_ms,omitempty"`
	LastFailure       string `json:"last_failure,omitempty"`
}

// Snapshot is a consistent-enough point-in-time view of every registered
// instrument, suitable for polling on the resource-sampler timeline.
type Snapshot struct {
	MaxEventTime int64               `json:"max_event_time"`
	Operators    []OperatorSnapshot  `json:"operators"`
	Edges        []EdgeSnapshot      `json:"edges"`
	Pools        []PoolSnapshot      `json:"pools,omitempty"`
	Nets         []NetSnapshot       `json:"nets,omitempty"`
	Histograms   []HistogramSnapshot `json:"histograms,omitempty"`
	Health       HealthSnapshot      `json:"health"`
	// Overload carries the job-level bounded-state degradation summary;
	// Overload.Armed is false on runs without overload configured.
	Overload OverloadStats `json:"overload"`
}

// Snapshot captures the current value of every instrument. Safe to call
// while the dataflow runs. Nil-safe: a nil registry yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{MaxEventTime: unset}
	}
	r.mu.RLock()
	ops := append([]*OperatorMetrics(nil), r.ops...)
	edges := append([]*EdgeMetrics(nil), r.edges...)
	pools := append([]*PoolMetrics(nil), r.pools...)
	nets := append([]*NetMetrics(nil), r.nets...)
	hists := append([]*namedHist(nil), r.hists...)
	r.mu.RUnlock()

	r.overloadMu.Lock()
	ovFn := r.overloadFn
	r.overloadMu.Unlock()

	maxET := r.maxEventTime.Load()
	s := Snapshot{MaxEventTime: maxET, Health: r.Health()}
	if ovFn != nil {
		s.Overload = ovFn()
	}
	for _, m := range ops {
		wm := m.Watermark.Load()
		os := OperatorSnapshot{
			Node: m.Node, Instance: m.Instance,
			In: m.In.Load(), Out: m.Out.Load(), Late: m.Late.Load(),
			Watermark: wm, WatermarkValid: wm != unset,
			Partials:   m.Partials.Load(),
			StateBytes: m.StateBytes.Load(),
			Shed:       m.Shed.Load(),
			ProcCount:  m.Proc.Count(), ProcSum: m.Proc.Sum(),
			ProcP50: m.Proc.Quantile(0.50), ProcP90: m.Proc.Quantile(0.90),
			ProcP99: m.Proc.Quantile(0.99), ProcMax: m.Proc.Max(),
		}
		if wm != unset && maxET != unset && maxET > wm {
			os.WatermarkLagMs = maxET - wm
		}
		s.Operators = append(s.Operators, os)
	}
	for _, e := range edges {
		q := e.Queued()
		es := EdgeSnapshot{
			From: e.From, To: e.To, Capacity: e.Capacity, Queued: q,
			Sent: e.Sent.Load(), BlockedNanos: e.BlockedNanos.Load(),
			Batches: e.Batch.Count(), BatchP50: e.Batch.Quantile(0.50),
			BatchP99: e.Batch.Quantile(0.99), BatchMax: e.Batch.Max(),
			BatchMean: e.Batch.Mean(),
		}
		if e.Capacity > 0 {
			es.FillPct = float64(q) / float64(e.Capacity) * 100
		}
		s.Edges = append(s.Edges, es)
	}
	for _, p := range pools {
		s.Pools = append(s.Pools, PoolSnapshot{
			Name: p.Name, Hits: p.Hits.Load(), Misses: p.Misses.Load(),
		})
	}
	for _, n := range nets {
		s.Nets = append(s.Nets, NetSnapshot{
			Peer:      n.Peer,
			FramesOut: n.FramesOut.Load(), BytesOut: n.BytesOut.Load(),
			FramesIn: n.FramesIn.Load(), BytesIn: n.BytesIn.Load(),
			Reconnects: n.Reconnects.Load(),
		})
	}
	for _, nh := range hists {
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name: nh.name, Count: nh.h.Count(), Sum: nh.h.Sum(), Mean: nh.h.Mean(),
			P50: nh.h.Quantile(0.50), P90: nh.h.Quantile(0.90),
			P99: nh.h.Quantile(0.99), Max: nh.h.Max(),
			State: nh.h.State(),
		})
	}
	return s
}
