package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// WritePrometheus renders the registry's current snapshot in the Prometheus
// text exposition format (version 0.0.4). Counters carry a _total suffix;
// histograms are rendered as summaries with quantile labels; durations are
// converted to seconds as the Prometheus base unit.
func WritePrometheus(w io.Writer, s Snapshot) {
	writeHeader := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	writeHeader("cep2asp_operator_records_in_total", "counter", "Data records received by an operator instance.")
	for _, o := range s.Operators {
		fmt.Fprintf(w, "cep2asp_operator_records_in_total{%s} %d\n", opLabels(o), o.In)
	}
	writeHeader("cep2asp_operator_records_out_total", "counter", "Data records emitted by an operator instance.")
	for _, o := range s.Operators {
		fmt.Fprintf(w, "cep2asp_operator_records_out_total{%s} %d\n", opLabels(o), o.Out)
	}
	writeHeader("cep2asp_operator_late_records_total", "counter", "Data records that arrived at or below the instance's watermark.")
	for _, o := range s.Operators {
		fmt.Fprintf(w, "cep2asp_operator_late_records_total{%s} %d\n", opLabels(o), o.Late)
	}
	writeHeader("cep2asp_operator_watermark_ms", "gauge", "Current output watermark of the instance (event-time ms).")
	for _, o := range s.Operators {
		if o.WatermarkValid {
			fmt.Fprintf(w, "cep2asp_operator_watermark_ms{%s} %d\n", opLabels(o), o.Watermark)
		}
	}
	writeHeader("cep2asp_operator_watermark_lag_ms", "gauge", "Max source event time minus the instance's watermark (event-time ms).")
	for _, o := range s.Operators {
		if o.WatermarkValid {
			fmt.Fprintf(w, "cep2asp_operator_watermark_lag_ms{%s} %d\n", opLabels(o), o.WatermarkLagMs)
		}
	}
	writeHeader("cep2asp_operator_partial_matches", "gauge", "Operator-held state in accounting units (NFA partial matches, join/window buffers, aggregation groups).")
	for _, o := range s.Operators {
		fmt.Fprintf(w, "cep2asp_operator_partial_matches{%s} %d\n", opLabels(o), o.Partials)
	}
	writeHeader("cep2asp_operator_state_bytes", "gauge", "Approximate byte footprint of the instance's retained state.")
	for _, o := range s.Operators {
		fmt.Fprintf(w, "cep2asp_operator_state_bytes{%s} %d\n", opLabels(o), o.StateBytes)
	}
	writeHeader("cep2asp_operator_shed_records_total", "counter", "Accounting units evicted by the instance under the Shed overload policy.")
	for _, o := range s.Operators {
		fmt.Fprintf(w, "cep2asp_operator_shed_records_total{%s} %d\n", opLabels(o), o.Shed)
	}
	writeHeader("cep2asp_operator_proc_seconds", "summary", "Per-record processing time inside OnRecord.")
	for _, o := range s.Operators {
		l := opLabels(o)
		fmt.Fprintf(w, "cep2asp_operator_proc_seconds{%s,quantile=\"0.5\"} %g\n", l, secs(o.ProcP50))
		fmt.Fprintf(w, "cep2asp_operator_proc_seconds{%s,quantile=\"0.9\"} %g\n", l, secs(o.ProcP90))
		fmt.Fprintf(w, "cep2asp_operator_proc_seconds{%s,quantile=\"0.99\"} %g\n", l, secs(o.ProcP99))
		fmt.Fprintf(w, "cep2asp_operator_proc_seconds_sum{%s} %g\n", l, secs(o.ProcSum))
		fmt.Fprintf(w, "cep2asp_operator_proc_seconds_count{%s} %d\n", l, o.ProcCount)
	}

	writeHeader("cep2asp_edge_queue_depth", "gauge", "Records queued on the edge's receiver channels.")
	for _, e := range s.Edges {
		fmt.Fprintf(w, "cep2asp_edge_queue_depth{%s} %d\n", edgeLabels(e), e.Queued)
	}
	writeHeader("cep2asp_edge_capacity", "gauge", "Total buffering capacity of the edge.")
	for _, e := range s.Edges {
		fmt.Fprintf(w, "cep2asp_edge_capacity{%s} %d\n", edgeLabels(e), e.Capacity)
	}
	writeHeader("cep2asp_edge_sent_total", "counter", "Records pushed into the edge.")
	for _, e := range s.Edges {
		fmt.Fprintf(w, "cep2asp_edge_sent_total{%s} %d\n", edgeLabels(e), e.Sent)
	}
	writeHeader("cep2asp_edge_blocked_seconds_total", "counter", "Time senders spent blocked on the edge's full channels (backpressure).")
	for _, e := range s.Edges {
		fmt.Fprintf(w, "cep2asp_edge_blocked_seconds_total{%s} %g\n", edgeLabels(e), secs(e.BlockedNanos))
	}
	writeHeader("cep2asp_edge_batch_records", "summary", "Records per channel transfer on the edge (edge batching).")
	for _, e := range s.Edges {
		l := edgeLabels(e)
		fmt.Fprintf(w, "cep2asp_edge_batch_records{%s,quantile=\"0.5\"} %d\n", l, e.BatchP50)
		fmt.Fprintf(w, "cep2asp_edge_batch_records{%s,quantile=\"0.99\"} %d\n", l, e.BatchP99)
		fmt.Fprintf(w, "cep2asp_edge_batch_records_sum{%s} %d\n", l, e.Sent)
		fmt.Fprintf(w, "cep2asp_edge_batch_records_count{%s} %d\n", l, e.Batches)
	}

	writeHeader("cep2asp_pool_hits_total", "counter", "Buffers recycled from an engine buffer pool.")
	for _, p := range s.Pools {
		fmt.Fprintf(w, "cep2asp_pool_hits_total{pool=\"%s\"} %d\n", escapeLabel(p.Name), p.Hits)
	}
	writeHeader("cep2asp_pool_misses_total", "counter", "Fresh allocations because an engine buffer pool was empty.")
	for _, p := range s.Pools {
		fmt.Fprintf(w, "cep2asp_pool_misses_total{pool=\"%s\"} %d\n", escapeLabel(p.Name), p.Misses)
	}

	if len(s.Nets) > 0 {
		writeHeader("cep2asp_net_frames_out_total", "counter", "Data-plane frames written to a network exchange peer.")
		for _, n := range s.Nets {
			fmt.Fprintf(w, "cep2asp_net_frames_out_total{peer=\"%s\"} %d\n", escapeLabel(n.Peer), n.FramesOut)
		}
		writeHeader("cep2asp_net_bytes_out_total", "counter", "Data-plane bytes (frames incl. headers) written to a network exchange peer.")
		for _, n := range s.Nets {
			fmt.Fprintf(w, "cep2asp_net_bytes_out_total{peer=\"%s\"} %d\n", escapeLabel(n.Peer), n.BytesOut)
		}
		writeHeader("cep2asp_net_frames_in_total", "counter", "Data-plane frames received from a network exchange peer.")
		for _, n := range s.Nets {
			fmt.Fprintf(w, "cep2asp_net_frames_in_total{peer=\"%s\"} %d\n", escapeLabel(n.Peer), n.FramesIn)
		}
		writeHeader("cep2asp_net_bytes_in_total", "counter", "Data-plane bytes (frames incl. headers) received from a network exchange peer.")
		for _, n := range s.Nets {
			fmt.Fprintf(w, "cep2asp_net_bytes_in_total{peer=\"%s\"} %d\n", escapeLabel(n.Peer), n.BytesIn)
		}
	}

	if s.MaxEventTime != unset {
		writeHeader("cep2asp_stream_max_event_time_ms", "gauge", "Largest event time emitted by any source (event-time ms).")
		fmt.Fprintf(w, "cep2asp_stream_max_event_time_ms %d\n", s.MaxEventTime)
	}

	writeHeader("cep2asp_job_failures_total", "counter", "Job execution failures (isolated operator panics and other run-fatal errors).")
	fmt.Fprintf(w, "cep2asp_job_failures_total %d\n", s.Health.Failures)
	writeHeader("cep2asp_job_restarts_total", "counter", "Supervised restarts performed after restartable failures.")
	fmt.Fprintf(w, "cep2asp_job_restarts_total %d\n", s.Health.Restarts)
	writeHeader("cep2asp_job_dead_letters_total", "counter", "Poison records routed to the dead-letter queue.")
	fmt.Fprintf(w, "cep2asp_job_dead_letters_total %d\n", s.Health.DeadLetters)
	writeHeader("cep2asp_job_dead_letters_dropped_total", "counter", "Dead letters evicted from the capped dead-letter queue (drop-oldest).")
	fmt.Fprintf(w, "cep2asp_job_dead_letters_dropped_total %d\n", s.Health.DeadLettersDropped)
	if s.Health.LastFailure != "" {
		writeHeader("cep2asp_job_last_failure_info", "gauge", "Description of the most recent job failure.")
		fmt.Fprintf(w, "cep2asp_job_last_failure_info{error=\"%s\"} 1\n", escapeLabel(s.Health.LastFailure))
	}

	for _, h := range s.Histograms {
		name := "cep2asp_" + sanitizeMetricName(h.Name) + "_seconds"
		writeHeader(name, "summary", "Named latency histogram.")
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", name, secs(h.P50))
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %g\n", name, secs(h.P90))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", name, secs(h.P99))
		fmt.Fprintf(w, "%s_sum %g\n", name, secs(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

func opLabels(o OperatorSnapshot) string {
	return fmt.Sprintf(`node="%s",instance="%d"`, escapeLabel(o.Node), o.Instance)
}

func edgeLabels(e EdgeSnapshot) string {
	return fmt.Sprintf(`from="%s",to="%s"`, escapeLabel(e.From), escapeLabel(e.To))
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeMetricName maps an arbitrary histogram name to the Prometheus
// metric-name alphabet [a-zA-Z0-9_].
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// topology is the JSON document served at /debug/topology: the DAG with
// per-node aggregated metrics and live per-edge queue fill.
type topology struct {
	MaxEventTime int64          `json:"max_event_time"`
	Nodes        []topoNode     `json:"nodes"`
	Edges        []EdgeSnapshot `json:"edges"`
	Health       HealthSnapshot `json:"health"`
}

type topoNode struct {
	Name        string             `json:"name"`
	Parallelism int                `json:"parallelism"`
	In          int64              `json:"in"`
	Out         int64              `json:"out"`
	Late        int64              `json:"late"`
	Watermark   int64              `json:"watermark"`
	WmValid     bool               `json:"watermark_valid"`
	WmLagMs     int64              `json:"watermark_lag_ms"`
	Partials    int64              `json:"partials"`
	StateBytes  int64              `json:"state_bytes"`
	Shed        int64              `json:"shed"`
	ProcP99     int64              `json:"proc_p99_ns"`
	Instances   []OperatorSnapshot `json:"instances"`
}

// Topology aggregates a snapshot into the DAG view: instances grouped under
// their node (registration order preserved), watermark = min over instances,
// lag = max over instances.
func Topology(s Snapshot) any {
	t := topology{MaxEventTime: s.MaxEventTime, Edges: s.Edges, Health: s.Health}
	if t.Edges == nil {
		t.Edges = []EdgeSnapshot{}
	}
	idx := map[string]int{}
	for _, o := range s.Operators {
		i, ok := idx[o.Node]
		if !ok {
			i = len(t.Nodes)
			idx[o.Node] = i
			t.Nodes = append(t.Nodes, topoNode{Name: o.Node})
		}
		n := &t.Nodes[i]
		n.Parallelism++
		n.In += o.In
		n.Out += o.Out
		n.Late += o.Late
		n.Partials += o.Partials
		n.StateBytes += o.StateBytes
		n.Shed += o.Shed
		if o.WatermarkValid && (!n.WmValid || o.Watermark < n.Watermark) {
			n.Watermark, n.WmValid = o.Watermark, true
		}
		if o.WatermarkLagMs > n.WmLagMs {
			n.WmLagMs = o.WatermarkLagMs
		}
		if o.ProcP99 > n.ProcP99 {
			n.ProcP99 = o.ProcP99
		}
		n.Instances = append(n.Instances, o)
	}
	if t.Nodes == nil {
		t.Nodes = []topoNode{}
	}
	return t
}

// Handler serves the registry's live metrics: /metrics in Prometheus text
// format and /debug/topology as JSON.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/topology", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Topology(r.Snapshot()))
	})
	return mux
}

// Serve starts the live metrics endpoint on addr (":0" picks a free port)
// and returns the server plus the bound address. Shut it down with
// srv.Close when the run finishes.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
